(* The benchmark harness: regenerates every evaluation artifact of the
   paper (one table per figure, EXP-1..EXP-10, EXP-3M, EXP-A and EXP-F; see
   DESIGN.md for the index) and then runs Bechamel micro-benchmarks over
   the framework's computational kernels.

   The thirteen experiments are independent, so the tables phase runs them
   on a pool of OCaml 5 domains (one experiment per domain at a time);
   tables are printed in experiment order once all have finished.  Every
   run also writes a machine-readable BENCH_results.json (schema in
   README.md) with per-experiment wall time, simulation counters and —
   unless skipped — the Bechamel ns/run estimates.

   Usage:  dune exec bench/main.exe                 (everything)
           dune exec bench/main.exe -- quick        (small experiment sizes)
           dune exec bench/main.exe -- tables       (skip microbenchmarks)
           dune exec bench/main.exe -- -j N         (worker-domain count)   *)

module Obs = Codesign_obs
module Registry = Codesign_experiments.Registry
module Kernel = Codesign_sim.Kernel

(* ------------------------------------------------------------------ *)
(* domain-parallel experiment tables                                   *)
(* ------------------------------------------------------------------ *)

type exp_result = {
  entry : Registry.entry;
  table : string;
  measured : Obs.Bench_report.experiment;
}

(* Runs one experiment on the calling domain, attributing the simulation
   work it causes via the domain-local kernel counters.  Experiments run
   with internal jobs:1 — the tables phase is already parallel across
   experiments, so nesting another fan-out per experiment would only
   oversubscribe the machine. *)
let run_one ~quick (entry : Registry.entry) =
  let before = Kernel.domain_totals () in
  let t0 = Obs.Clock.now_ns () in
  let table = entry.Registry.run ~quick ~jobs:1 () in
  let wall_s = Obs.Clock.elapsed_s ~since:t0 in
  let after = Kernel.domain_totals () in
  {
    entry;
    table;
    measured =
      {
        Obs.Bench_report.name = entry.Registry.exp_id;
        wall_s;
        events = after.Kernel.d_events - before.Kernel.d_events;
        activations = after.Kernel.d_activations - before.Kernel.d_activations;
        scheduled = after.Kernel.d_scheduled - before.Kernel.d_scheduled;
        kernels = after.Kernel.d_kernels - before.Kernel.d_kernels;
        table_checksum = Obs.Checksum.of_string table;
      };
  }

let run_tables ~quick ~jobs =
  let entries = Array.of_list Registry.all in
  let t0 = Obs.Clock.now_ns () in
  let results =
    Codesign_par.Domain_pool.map ~jobs
      ~name:(fun i -> entries.(i).Registry.exp_id)
      (run_one ~quick) entries
  in
  let tables_wall_s = Obs.Clock.elapsed_s ~since:t0 in
  (Array.to_list results, tables_wall_s)

let print_tables ~jobs results tables_wall_s =
  print_endline
    "=================================================================";
  print_endline
    " Reproduction of: The Design of Mixed Hardware/Software Systems";
  print_endline " (Adams & Thomas, DAC 1996) -- experiment tables";
  print_endline
    "=================================================================\n";
  List.iter
    (fun r ->
      print_endline r.table;
      Printf.printf "(%s generated in %.2fs, %d kernel events)\n\n"
        r.measured.Obs.Bench_report.name r.measured.Obs.Bench_report.wall_s
        r.measured.Obs.Bench_report.events)
    results;
  Printf.printf "(tables phase: %.2fs on %d worker domain%s)\n\n"
    tables_wall_s jobs
    (if jobs = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the framework's computational kernels  *)
(* ------------------------------------------------------------------ *)

module B = Codesign_ir.Behavior
module Tgff = Codesign_workloads.Tgff
module Kernels = Codesign_workloads.Kernels
open Codesign

let bench_event_kernel () =
  let k = Codesign_sim.Kernel.create () in
  for i = 0 to 9 do
    Codesign_sim.Kernel.spawn k (fun () ->
        for _ = 1 to 100 do
          Codesign_sim.Kernel.wait (1 + i)
        done)
  done;
  ignore (Codesign_sim.Kernel.run k)

let fir_proc, fir_binds =
  let _, p, b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  (p, b)

let fir_image, fir_layout = Codesign_isa.Codegen.compile fir_proc
let fir_code = (Codesign_isa.Asm.assemble fir_image).Codesign_isa.Asm.code

let bench_iss () =
  let cpu = Codesign_isa.Cpu.create fir_code in
  Codesign_isa.Codegen.bind fir_layout cpu fir_binds;
  ignore (Codesign_isa.Cpu.run cpu)

(* The execution-tier pair for the same kernel.  [iss/fir-kernel]
   above is the cold one-shot cost — CPU construction, symbolic
   binding, interpreted run.  The two steady-state benches below reuse
   one CPU and pre-resolved (address, value) binding writes across
   iterations, the shape of every repeated-execution consumer (the
   co-simulation loop creates a CPU once per assignment and reruns it
   per quantum), so each isolates its execution tier:
   [iss/fir-kernel-step] reruns the precise interpreter,
   [iss/fir-kernel-block] reruns the block-compiled tier against the
   warm decoded-block cache.  block-vs-step quotes the pure tier win;
   block-vs-cold additionally amortizes construction and decode — the
   deploy-once-execute-many economics the block tier exists for. *)
let fir_writes = Codesign_isa.Codegen.resolve fir_layout fir_binds

let fir_rerun cpu run =
  Codesign_isa.Cpu.reset cpu;
  List.iter (fun (a, v) -> Codesign_isa.Cpu.write_mem cpu a v) fir_writes;
  ignore (run cpu)

let fir_step_cpu = Codesign_isa.Cpu.create fir_code
let fir_block_cpu = Codesign_isa.Cpu.create fir_code
let bench_iss_step () = fir_rerun fir_step_cpu (fun c -> Codesign_isa.Cpu.run c)

let bench_iss_block () =
  fir_rerun fir_block_cpu (fun c -> Codesign_isa.Cpu.run_compiled c)

let dct_block =
  let g = B.elaborate (Kernels.dct8 ()) in
  List.hd g.Codesign_ir.Cdfg.blocks

let bench_list_schedule () =
  ignore
    (Codesign_hls.Sched.list_schedule dct_block
       ~resources:[ ("mul", 2); ("alu", 2) ])

let bench_hls_full () = ignore (Codesign_hls.Hls.synthesize_block dct_block)

let part_graph =
  Tgff.generate { Tgff.default_spec with Tgff.seed = 42; n_tasks = 12 }

let bench_partition_kl () = ignore (Partition.kl part_graph)

let cosynth_pb =
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 1; n_tasks = 6; layers = 3;
        deadline_factor = 1.2 }
  in
  let exec =
    Array.map
      (fun (t : Codesign_ir.Task_graph.task) ->
        [| max 1 (t.Codesign_ir.Task_graph.sw_cycles / 4);
           max 1 (t.Codesign_ir.Task_graph.sw_cycles / 2);
           t.Codesign_ir.Task_graph.sw_cycles |])
      g.Codesign_ir.Task_graph.tasks
  in
  Cosynth.problem g
    [ { Cosynth.pt_name = "fast"; price = 100 };
      { Cosynth.pt_name = "mid"; price = 40 };
      { Cosynth.pt_name = "slow"; price = 15 } ]
    ~exec

let bench_sos () = ignore (Cosynth.sos cosynth_pb)

let bench_cosim_tlm () =
  ignore (Cosim.run_echo_system ~level:Cosim.Transaction ~items:4 ~work:4 ())

let bench_asip () = ignore (Asip.design fir_proc fir_binds)

(* A 16-wide, 4-stage registered mixing pipeline (xor/and/not layers
   between DFF ranks): 192 combinational gates + 64 flops, a
   representative mix for the netlist-simulation kernels.  The same
   circuit runs on the compiled backend and on the pre-compile
   interpreted reference, so the pair quotes the compile step's win. *)
module NB = Codesign_rtl.Netlist.Builder

let logic_sim_net =
  let b = NB.create ~name:"bench_pipe" () in
  let ins = List.init 16 (fun i -> NB.input b (Printf.sprintf "i%d" i)) in
  let rec rounds k nets =
    if k = 0 then nets
    else
      let arr = Array.of_list nets in
      let w = Array.length arr in
      let mixed =
        List.mapi
          (fun idx x ->
            NB.xor2 b x
              (NB.and2 b arr.((idx + 3) mod w) (NB.not1 b arr.((idx + 7) mod w))))
          nets
      in
      rounds (k - 1) (List.map (NB.dff b) mixed)
  in
  let outs = rounds 4 ins in
  List.iteri (fun i n -> NB.output b (Printf.sprintf "o%d" i) n) outs;
  NB.finish b

module L = Codesign_rtl.Logic_sim

let logic_sim_compiled = L.create logic_sim_net
let logic_sim_interp = L.Interp.create logic_sim_net

let bench_logic_sim () =
  L.set_input logic_sim_compiled "i0" 1;
  for _ = 1 to 100 do
    L.clock_cycle logic_sim_compiled
  done

let bench_logic_sim_interp () =
  L.Interp.set_input logic_sim_interp "i0" 1;
  for _ = 1 to 100 do
    L.Interp.clock_cycle logic_sim_interp
  done

(* The raw event-wheel drain: push 1k events at scattered times, then
   pop them back through the allocation-free [pop_into] path the kernel
   dispatch loop uses. *)
let bench_event_drain () =
  let q = Codesign_sim.Event_queue.create () in
  for i = 1 to 1000 do
    Codesign_sim.Event_queue.push q ~time:(i * 7919 land 1023) ignore
  done;
  let slot = Codesign_sim.Event_queue.slot () in
  while Codesign_sim.Event_queue.pop_into q ~limit:max_int slot do
    slot.Codesign_sim.Event_queue.s_thunk ()
  done

(* The fault-campaign sweep through both engines, on a deliberately
   boot-heavy shape (warm-up >> injection window): the fork engine pays
   for the warm-up once per mechanism and replays it from a checkpoint
   for every rate cell, while the rerun reference re-executes it from
   cycle zero each time.  Both must produce byte-identical reports
   (asserted in test_snapshot and CI); here we only measure the cost. *)
module Campaign = Codesign_fault.Campaign

let bench_campaign_fork () =
  ignore (Campaign.sweep ~seed:42 ~ops:64 ~warmup:512 Campaign.Fork)

let bench_campaign_rerun () =
  ignore (Campaign.sweep ~seed:42 ~ops:64 ~warmup:512 Campaign.Rerun)

(* The domain-parallel pairs: the same fork-engine sweep sharded one
   mechanism per worker domain, and the same fuzz corpus sharded one
   case per worker — each must produce byte-identical reports to its
   serial twin (asserted in test_parallel and CI), so the pair quotes
   the pure scheduling win.  Always 4 domains, not capped at the core
   count: on a multi-core host the pair measures the scaling, on a
   single-core host it honestly measures the pool's overhead — the
   jobs-independent reports mean it can never trade correctness either
   way. *)
let par_jobs = 4

let bench_campaign_parallel () =
  ignore (Campaign.sweep ~seed:42 ~ops:64 ~warmup:512 ~jobs:par_jobs
            Campaign.Fork)

module Fuzz = Codesign_fuzz.Fuzz

let bench_fuzz_serial () = ignore (Fuzz.run ~seed:42 ~count:48 ~jobs:1 ())

let bench_fuzz_parallel () =
  ignore (Fuzz.run ~seed:42 ~count:48 ~jobs:par_jobs ())

(* The budgeted-run pair: the same 1k-wakeup network drained by a raw
   Kernel.run and by Budget.run_kernel with generous fuel and a wall
   deadline (so the ?stop polling path is exercised but never fires).
   The pair quotes the whole price of supervision on the kernel hot
   path — kept near zero by polling the wall clock only every 256
   events and leaving the stop-free dispatch loop untouched. *)
module Budget = Codesign_resil.Budget

let budget_net () =
  let k = Codesign_sim.Kernel.create () in
  for p = 0 to 9 do
    Codesign_sim.Kernel.spawn k (fun () ->
        for _ = 1 to 100 do
          Codesign_sim.Kernel.wait (1 + (p mod 7))
        done)
  done;
  k

let bench_kernel_unbudgeted () =
  ignore (Codesign_sim.Kernel.run (budget_net ()))

let bench_kernel_budgeted () =
  ignore
    (Budget.run_kernel
       (Budget.create ~fuel:1_000_000 ~deadline_ms:60_000 ())
       (budget_net ()))

(* The partitioned-vs-serial kernel pair: the same wide pipeline mesh
   (every hop a latency channel, so every cut has lookahead) on one
   event wheel and on a 4-partition conservative plan, one domain per
   partition.  The two runs are byte-identical in every observable
   (EXP-P asserts this); the pair quotes what the LBTS barrier rounds
   and domain hand-offs cost on top of the serial dispatch — on a
   single-core host this is pure overhead, which is the honest number
   to publish. *)
let mesh_net = Codesign_workloads.Apps.mesh ~stages:3 ~lanes:4 ~count:8 ~work:4 ()

let mesh_map =
  Codesign_workloads.Apps.mesh_partition ~stages:3 ~lanes:4 ~partitions:4 ()

let bench_mesh_serial () = ignore (Cosim.run_network mesh_net)

let bench_mesh_partitioned () =
  ignore (Cosim.run_network ~partition:mesh_map mesh_net)

(* Returns the (name, ns/run OLS estimate) rows alongside printing them,
   so the JSON artifact carries the same numbers as the text report. *)
let run_microbenchmarks () =
  let open Bechamel in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"codesign"
      [
        test "event-kernel/1k-wakeups" bench_event_kernel;
        test "iss/fir-kernel" bench_iss;
        test "iss/fir-kernel-step" bench_iss_step;
        test "iss/fir-kernel-block" bench_iss_block;
        test "hls/list-schedule-dct8" bench_list_schedule;
        test "hls/full-synthesis-dct8" bench_hls_full;
        test "partition/kl-12-tasks" bench_partition_kl;
        test "cosynth/sos-6-tasks" bench_sos;
        test "cosim/tlm-echo" bench_cosim_tlm;
        test "asip/design-fir" bench_asip;
        test "logic_sim/pipe-100-cycles" bench_logic_sim;
        test "logic_sim/pipe-100-cycles-interp" bench_logic_sim_interp;
        test "event-drain/1k-events" bench_event_drain;
        test "fault/campaign-fork" bench_campaign_fork;
        test "fault/campaign-rerun" bench_campaign_rerun;
        test "fault/campaign-parallel" bench_campaign_parallel;
        test "fuzz/corpus-48-serial" bench_fuzz_serial;
        test "fuzz/corpus-48-parallel" bench_fuzz_parallel;
        test "resil/1k-wakeups-unbudgeted" bench_kernel_unbudgeted;
        test "resil/1k-wakeups-budgeted" bench_kernel_budgeted;
        test "kernel/mesh-serial" bench_mesh_serial;
        test "kernel/mesh-partitioned" bench_mesh_partitioned;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "Micro-benchmarks (monotonic clock, ns per run):";
  let clock =
    Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock)
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ e ] -> rows := (name, e) :: !rows
      | _ -> ())
    clock;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %12.0f ns\n" name est)
    rows;
  rows

(* ------------------------------------------------------------------ *)

let report_path = "BENCH_results.json"

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "quick" args in
  let tables_only = List.mem "tables" args in
  let jobs =
    let rec find = function
      | ("-j" | "--jobs") :: n :: _ -> (
          match int_of_string_opt n with
          | Some j -> j
          | None ->
              Printf.eprintf "bench: -j expects an integer, got %S\n" n;
              exit 2)
      | _ :: rest -> find rest
      | [] ->
          min (List.length Registry.all)
            (max 1 (Domain.recommended_domain_count ()))
    in
    max 1 (find args)
  in
  let results, tables_wall_s = run_tables ~quick ~jobs in
  print_tables ~jobs results tables_wall_s;
  let micros =
    if tables_only then []
    else
      List.map
        (fun (name, est) ->
          { Obs.Bench_report.m_name = name; ns_per_run = est })
        (run_microbenchmarks ())
  in
  let report =
    {
      Obs.Bench_report.schema_version = Obs.Bench_report.schema_version;
      mode = (if quick then "quick" else "full");
      domains = jobs;
      tables_wall_s;
      experiments = List.map (fun r -> r.measured) results;
      microbenchmarks = micros;
    }
  in
  Obs.Bench_report.write ~path:report_path report;
  Printf.printf "\n(wrote %s: %d experiments, %d microbenchmarks)\n"
    report_path
    (List.length report.Obs.Bench_report.experiments)
    (List.length report.Obs.Bench_report.microbenchmarks)
