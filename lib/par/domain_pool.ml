module K = Codesign_sim.Kernel

type failure = { index : int; task : string; message : string; attempts : int }

exception Worker_error of failure list

let () =
  Printexc.register_printer (function
    | Worker_error failures ->
        let one { index; task; message; attempts } =
          Printf.sprintf "task %d%s: %s%s" index
            (if task = "" then "" else Printf.sprintf " %S" task)
            message
            (if attempts > 1 then Printf.sprintf " (after %d attempts)" attempts
             else "")
        in
        Some
          (Printf.sprintf "Domain_pool.Worker_error(%s)"
             (String.concat "; " (List.map one failures)))
    | _ -> None)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Run one task, retrying in place on the claiming worker.  Retrying on
   the same worker (rather than re-queueing) keeps the result array's
   write pattern — and hence the observable outcome — independent of
   worker scheduling. *)
let attempt_task ~retries f x =
  let rec go attempt =
    match f x with
    | r -> Ok r
    | exception e ->
        if attempt >= retries then Error (Printexc.to_string e, attempt + 1)
        else go (attempt + 1)
  in
  go 0

let run_pool ?jobs ~retries f tasks =
  let n = Array.length tasks in
  let jobs =
    min (max 1 (match jobs with Some j -> j | None -> default_jobs ())) (max 1 n)
  in
  let results = Array.make n None in
  if jobs <= 1 then
    Array.iteri (fun i x -> results.(i) <- Some (attempt_task ~retries f x)) tasks
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (attempt_task ~retries f tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    (* Helpers return the kernel-counter delta their tasks contributed;
       the caller folds each one into its own domain totals after the
       join, so measurement wrappers see jobs-independent totals. *)
    let helper () =
      let before = K.domain_totals () in
      worker ();
      K.diff_totals ~after:(K.domain_totals ()) ~before
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn helper) in
    worker ();
    List.iter (fun d -> K.merge_domain_totals (Domain.join d)) helpers
  end;
  Array.map (function Some r -> r | None -> assert false) results

let map_result ?jobs ?(name = fun _ -> "") ?(retries = 0) f tasks =
  let outcomes = run_pool ?jobs ~retries f tasks in
  Array.mapi
    (fun i outcome ->
      match outcome with
      | Ok r -> Ok r
      | Error (message, attempts) ->
          Error { index = i; task = name i; message; attempts })
    outcomes

let map ?jobs ?(name = fun _ -> "") f tasks =
  let outcomes = run_pool ?jobs ~retries:0 f tasks in
  let failures =
    Array.to_list outcomes
    |> List.mapi (fun i outcome ->
           match outcome with
           | Ok _ -> None
           | Error (message, attempts) ->
               Some { index = i; task = name i; message; attempts })
    |> List.filter_map Fun.id
  in
  if failures <> [] then raise (Worker_error failures);
  Array.map (function Ok r -> r | Error _ -> assert false) outcomes
