module K = Codesign_sim.Kernel

exception
  Worker_error of { index : int; task : string; message : string }

let () =
  Printexc.register_printer (function
    | Worker_error { index; task; message } ->
        Some
          (Printf.sprintf "Domain_pool.Worker_error(task %d%s: %s)" index
             (if task = "" then "" else Printf.sprintf " %S" task)
             message)
    | _ -> None)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Scan for the lowest-index failure; raise it or extract the results.
   Shared by the serial and pooled paths so [jobs] cannot change what a
   caller observes. *)
let finish ~name results errors =
  Array.iteri
    (fun i err ->
      match err with
      | Some message -> raise (Worker_error { index = i; task = name i; message })
      | None -> ())
    errors;
  Array.map (function Some r -> r | None -> assert false) results

let map ?jobs ?(name = fun _ -> "") f tasks =
  let n = Array.length tasks in
  let jobs =
    min (max 1 (match jobs with Some j -> j | None -> default_jobs ())) (max 1 n)
  in
  let results = Array.make n None in
  let errors = Array.make n None in
  if jobs <= 1 then begin
    Array.iteri
      (fun i x ->
        match f x with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some (Printexc.to_string e))
      tasks;
    finish ~name results errors
  end
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f tasks.(i) with
          | r -> results.(i) <- Some r
          | exception e -> errors.(i) <- Some (Printexc.to_string e));
          loop ()
        end
      in
      loop ()
    in
    (* Helpers return the kernel-counter delta their tasks contributed;
       the caller folds each one into its own domain totals after the
       join, so measurement wrappers see jobs-independent totals. *)
    let helper () =
      let before = K.domain_totals () in
      worker ();
      K.diff_totals ~after:(K.domain_totals ()) ~before
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn helper) in
    worker ();
    List.iter (fun d -> K.merge_domain_totals (Domain.join d)) helpers;
    finish ~name results errors
  end
