(** Domain-parallel driver for a {!Codesign_sim.Partition} plan: one
    OCaml domain per partition, one barrier round per
    [Partition.next_bound].

    The coordinator domain drains the mailboxes and publishes each
    round's safe bound; every partition then dispatches its own wheel up
    to the bound on its own domain (partition 0 on the coordinator).
    Partitions share no mutable simulation state within a round — all
    cross-partition traffic travels through latency-channel mailboxes
    keyed by (lane, send sequence) — so the dispatch order, statistics
    and traces are byte-identical to {!Codesign_sim.Partition.run_serial}
    and to the single-wheel serial kernel, regardless of domain
    scheduling.

    Worker kernel-counter deltas are folded back into the calling
    domain with {!Codesign_sim.Kernel.merge_domain_totals} (the
    [Domain_pool] discipline), so measurement layers see
    partition-count-independent totals.

    A plan with one partition short-circuits to [run_serial] without
    spawning domains. *)

val run :
  ?until:int ->
  ?expect_quiescent:bool ->
  ?check_deadlock:bool ->
  Codesign_sim.Partition.t ->
  Codesign_sim.Kernel.stats
(** Run the LBTS loop to completion (or [until]); same optional
    arguments and {!Codesign_sim.Kernel.Deadlock} behaviour as
    [Kernel.run], applied collectively across partitions.  An exception
    raised inside any partition's processes is re-raised here after all
    domains are joined. *)
