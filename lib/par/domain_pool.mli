(** The shared worker-domain pool: deterministic fan-out of an indexed
    task array over [Domain.spawn].

    Every embarrassingly parallel hot loop in the framework — the
    fault-campaign sweep, the fuzz corpus, the EXP-3M mixed-level grid
    and the bench harness's experiment tables — runs through {!map}, so
    there is exactly one pool implementation and one determinism
    argument:

    - {b Results merge by index.}  Workers pull the next unclaimed index
      from a shared atomic counter (self-balancing: an expensive task
      occupies one domain while the others drain the rest), but each
      result is stored at its task's index and the returned array is in
      task order.  Output is therefore independent of worker scheduling,
      and [map ~jobs:n f tasks] is observationally [Array.map f tasks]
      for every [n] — provided [f] touches no shared mutable state,
      which is the contract every caller in this repo satisfies (each
      task builds its own kernels/worlds from its own seed).

    - {b Per-domain kernel counters merge back.}  Each worker domain
      measures the {!Codesign_sim.Kernel.domain_totals} delta its tasks
      contributed and the pool folds every delta into the calling
      domain's totals after the join (commutative sums, so the merged
      value is deterministic too).  A measurement layer wrapped around a
      [map] call sees the same event/activation/scheduled/kernel totals
      at any [jobs].

    - {b Worker exceptions surface, they never hang the pool.}  An
      exception inside [f] is caught on the worker, the remaining tasks
      still run, every domain is joined, counters are merged — and then
      {e every} failure is re-raised as one {!Worker_error} carrying
      the index-ordered failure list.  The serial path wraps exceptions
      identically, so error behaviour does not depend on [jobs] either.
      {!map_result} is the non-raising variant: per-task [result]s with
      optional in-place retries, the building block for graceful
      degradation ({!Codesign_fault.Campaign}, {!Codesign_fuzz}). *)

type failure = {
  index : int;  (** index of the failing task in the input array *)
  task : string;  (** caller-supplied label ([""] when unnamed) *)
  message : string;  (** [Printexc.to_string] of the last exception *)
  attempts : int;  (** attempts made, >= 1 (1 unless [retries] > 0) *)
}

exception Worker_error of failure list
(** Raised by {!map} (on the calling domain, after all workers have been
    joined) when tasks raised: the complete failure list in ascending
    index order — never empty, never a partial view. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count ())]: what callers should
    use when the user did not pick a [--jobs] value. *)

val map : ?jobs:int -> ?name:(int -> string) -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every element of [tasks] on a
    pool of [jobs] domains (the calling domain works too; [jobs - 1]
    helpers are spawned, and never more than there are tasks) and
    returns the results in task order.  [jobs] defaults to
    {!default_jobs} and is clamped to at least 1; [jobs <= 1] runs
    entirely on the calling domain with no spawns.  [name] labels tasks
    for {!Worker_error} messages. *)

val map_result :
  ?jobs:int ->
  ?name:(int -> string) ->
  ?retries:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, failure) result array
(** Like {!map} but failures come back as data instead of an exception:
    task [i]'s slot is [Error failure] after [f tasks.(i)] raised on
    every attempt.  [retries] (default 0) re-runs a raising task up to
    that many extra times {e on the worker that claimed it} — in-place
    retry keeps the outcome independent of worker scheduling, so the
    jobs-invariance contract above extends to retried and failed tasks
    ([failure.attempts] included). *)
