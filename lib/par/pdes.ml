module K = Codesign_sim.Kernel
module P = Codesign_sim.Partition

(* Domain-parallel driver for a Partition plan: one domain per
   partition, synchronized with a coordinator-published round counter.

   Round protocol: the coordinator computes the next safe bound
   (Partition.next_bound — the only place cross-partition mailboxes are
   drained, so it must run while every worker is parked), publishes
   (round, bound) under the mutex, runs partition 0 itself, and waits
   for the n-1 workers to check in.  Workers dispatch their own wheel
   only — all cross-wheel traffic travels through the latency-channel
   mailboxes — so no two domains ever touch the same kernel
   concurrently.  Determinism does not depend on domain scheduling:
   within a round the partitions share no mutable state, and injection
   order at the next barrier is fixed by the (lane, seq) keys, not by
   which worker posted first. *)

let run ?until ?expect_quiescent ?check_deadlock plan =
  let n = P.partitions plan in
  if n <= 1 then P.run_serial ?until ?expect_quiescent ?check_deadlock plan
  else begin
    let limit = match until with Some u -> u | None -> max_int in
    let m = Mutex.create () in
    let cv = Condition.create () in
    (* -1 terminates the workers; rounds count up from 1. *)
    let round = ref 0 in
    let bound = ref 0 in
    let done_count = ref 0 in
    let failed : exn option ref = ref None in
    let worker i () =
      let before = K.domain_totals () in
      let last = ref 0 in
      let running = ref true in
      while !running do
        Mutex.lock m;
        while !round <> -1 && !round = !last do
          Condition.wait cv m
        done;
        if !round = -1 then begin
          running := false;
          Mutex.unlock m
        end
        else begin
          last := !round;
          let b = !bound in
          Mutex.unlock m;
          (try P.run_round plan i ~bound:b
           with e ->
             Mutex.lock m;
             if !failed = None then failed := Some e;
             Mutex.unlock m);
          Mutex.lock m;
          incr done_count;
          Condition.broadcast cv;
          Mutex.unlock m
        end
      done;
      K.diff_totals ~after:(K.domain_totals ()) ~before
    in
    let helpers = List.init (n - 1) (fun j -> Domain.spawn (worker (j + 1))) in
    let finishing = ref None in
    (try
       let continue_ = ref true in
       while !continue_ && !failed = None do
         match P.next_bound plan ~limit with
         | None -> continue_ := false
         | Some b ->
             Mutex.lock m;
             bound := b;
             done_count := 0;
             incr round;
             Condition.broadcast cv;
             Mutex.unlock m;
             P.run_round plan 0 ~bound:b;
             Mutex.lock m;
             while !done_count < n - 1 do
               Condition.wait cv m
             done;
             Mutex.unlock m
       done
     with e -> if !finishing = None then finishing := Some e);
    Mutex.lock m;
    round := -1;
    Condition.broadcast cv;
    Mutex.unlock m;
    List.iter (fun d -> K.merge_domain_totals (Domain.join d)) helpers;
    (match !finishing with Some e -> raise e | None -> ());
    (match !failed with Some e -> raise e | None -> ());
    P.finish ?until ?expect_quiescent ?check_deadlock plan
  end
