(** A small deterministic PRNG (SplitMix64), self-contained so that
    simulated annealing, workload generation and every experiment are
    bit-reproducible across runs and platforms.  No global state: each
    consumer owns its generator. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val reseed : t -> int -> unit
(** Reset the generator in place to exactly the state [create seed]
    would produce — the forked fault campaigns reuse one generator
    across checkpoint restores this way instead of allocating a fresh
    one per fork. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element.  @raise Invalid_argument on empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val split : t -> t
(** An independent generator derived from this one's stream. *)
