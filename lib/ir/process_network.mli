(** Static structure of a network of communicating processes.

    This is the specification form for Type II systems modelled at the
    [send]/[receive]/[wait] abstraction level (paper Fig. 3, ref [3]):
    each process is a {!Behavior.proc}, channels are typed point-to-point
    FIFOs, and a {i mapping} assigns each process to a software or
    hardware implementation.  Execution semantics live in
    {!Codesign.Cosim}; this module only owns the structure and its
    static sanity checks. *)

type mapping =
  | Sw  (** runs on the instruction-set processor *)
  | Hw  (** synthesised to a dedicated hardware thread *)

type channel = {
  cname : string;
  src : string;  (** producing process name *)
  dst : string;  (** consuming process name *)
  depth : int;  (** FIFO depth; 0 = rendezvous *)
  latency : int;
      (** delivery latency in cycles; 0 = immediate (blocking FIFO or
          rendezvous).  A [latency > 0] channel is a delay line
          ({!Codesign_sim.Channel}) and doubles as the lookahead that
          lets the channel cross a partition boundary in a partitioned
          co-simulation run. *)
}

type t = {
  name : string;
  procs : (Behavior.proc * mapping) list;
  channels : channel list;
}

val make :
  ?name:string -> (Behavior.proc * mapping) list -> channel list -> t
(** Validates: process names unique; channel names unique; channel
    endpoints name existing processes and differ; depth and latency
    non-negative; every channel a process sends on / receives from in
    its behaviour is declared with that process as the matching
    endpoint.  @raise Invalid_argument otherwise. *)

val find_proc : t -> string -> Behavior.proc * mapping
(** @raise Invalid_argument on unknown name, listing the processes the
    network does declare. *)

val find_channel : t -> string -> channel
(** @raise Invalid_argument on unknown name, listing the channels the
    network does declare. *)

val channels_between : t -> string -> string -> channel list
(** Channels with the given (src, dst) process pair. *)

val cut_channels : t -> channel list
(** Channels that cross the HW/SW boundary under the current mapping —
    the communication the partitioners try to minimise. *)

val remap : t -> (string * mapping) list -> t
(** Functional update of process mappings; unknown names are ignored. *)

val sw_procs : t -> Behavior.proc list
val hw_procs : t -> Behavior.proc list

val comm_graph : t -> Graph_algo.t * string array
(** Process-level communication graph (one node per process, one edge per
    channel) plus the node-index-to-name table. *)

val pp : Format.formatter -> t -> unit
