type mapping = Sw | Hw

type channel = {
  cname : string;
  src : string;
  dst : string;
  depth : int;
  latency : int;
}

type t = {
  name : string;
  procs : (Behavior.proc * mapping) list;
  channels : channel list;
}

(* Channels a behaviour sends on / receives from. *)
let rec stmt_chans s =
  match s with
  | Behavior.Send (ch, _) -> ([ ch ], [])
  | Behavior.Recv (_, ch) -> ([], [ ch ])
  | Behavior.If (_, t, e) -> stmts_chans (t @ e)
  | Behavior.While (_, b, _) | Behavior.For (_, _, _, b) -> stmts_chans b
  | _ -> ([], [])

and stmts_chans l =
  List.fold_left
    (fun (s, r) st ->
      let s', r' = stmt_chans st in
      (s @ s', r @ r'))
    ([], []) l

let make ?(name = "net") procs channels =
  let names = List.map (fun (p, _) -> p.Behavior.name) procs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Process_network.make: duplicate process names";
  let cnames = List.map (fun c -> c.cname) channels in
  if List.length (List.sort_uniq compare cnames) <> List.length cnames then
    invalid_arg "Process_network.make: duplicate channel names";
  List.iter
    (fun c ->
      if not (List.mem c.src names) then
        invalid_arg
          (Printf.sprintf "Process_network.make: channel %s src %s unknown"
             c.cname c.src);
      if not (List.mem c.dst names) then
        invalid_arg
          (Printf.sprintf "Process_network.make: channel %s dst %s unknown"
             c.cname c.dst);
      if c.src = c.dst then
        invalid_arg
          (Printf.sprintf "Process_network.make: channel %s is a self-loop"
             c.cname);
      if c.depth < 0 then
        invalid_arg "Process_network.make: negative channel depth";
      if c.latency < 0 then
        invalid_arg "Process_network.make: negative channel latency")
    channels;
  (* every channel used in a behaviour must be declared consistently *)
  List.iter
    (fun (p, _) ->
      let sends, recvs = stmts_chans p.Behavior.body in
      List.iter
        (fun ch ->
          match List.find_opt (fun c -> c.cname = ch) channels with
          | Some c when c.src = p.Behavior.name -> ()
          | Some c ->
              invalid_arg
                (Printf.sprintf
                   "Process_network.make: %s sends on %s but channel src is \
                    %s"
                   p.Behavior.name ch c.src)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Process_network.make: %s sends on undeclared channel %s"
                   p.Behavior.name ch))
        sends;
      List.iter
        (fun ch ->
          match List.find_opt (fun c -> c.cname = ch) channels with
          | Some c when c.dst = p.Behavior.name -> ()
          | Some c ->
              invalid_arg
                (Printf.sprintf
                   "Process_network.make: %s receives on %s but channel dst \
                    is %s"
                   p.Behavior.name ch c.dst)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Process_network.make: %s receives on undeclared channel \
                    %s"
                   p.Behavior.name ch))
        recvs)
    procs;
  { name; procs; channels }

let find_proc t name =
  match List.find_opt (fun (p, _) -> p.Behavior.name = name) t.procs with
  | Some pm -> pm
  | None ->
      invalid_arg
        (Printf.sprintf
           "Process_network.find_proc: no process %S in network %s (has: %s)"
           name t.name
           (String.concat ", "
              (List.map (fun (p, _) -> p.Behavior.name) t.procs)))

let find_channel t cname =
  match List.find_opt (fun c -> c.cname = cname) t.channels with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf
           "Process_network.find_channel: no channel %S in network %s \
            (has: %s)"
           cname t.name
           (String.concat ", " (List.map (fun c -> c.cname) t.channels)))

let channels_between t src dst =
  List.filter (fun c -> c.src = src && c.dst = dst) t.channels

let mapping_of t name = snd (find_proc t name)

let cut_channels t =
  List.filter (fun c -> mapping_of t c.src <> mapping_of t c.dst) t.channels

let remap t updates =
  let procs =
    List.map
      (fun (p, m) ->
        match List.assoc_opt p.Behavior.name updates with
        | Some m' -> (p, m')
        | None -> (p, m))
      t.procs
  in
  { t with procs }

let sw_procs t =
  List.filter_map (fun (p, m) -> if m = Sw then Some p else None) t.procs

let hw_procs t =
  List.filter_map (fun (p, m) -> if m = Hw then Some p else None) t.procs

let comm_graph t =
  let names = Array.of_list (List.map (fun (p, _) -> p.Behavior.name) t.procs) in
  let index name =
    let rec find i =
      if names.(i) = name then i else find (i + 1)
    in
    find 0
  in
  let edges = List.map (fun c -> (index c.src, index c.dst)) t.channels in
  (Graph_algo.create ~n:(Array.length names) ~edges, names)

let pp fmt t =
  let m = function Sw -> "SW" | Hw -> "HW" in
  Format.fprintf fmt "@[<v>process network %s:@," t.name;
  List.iter
    (fun (p, mp) ->
      Format.fprintf fmt "  %-16s [%s] %d stmts@," p.Behavior.name (m mp)
        (Behavior.static_stmts p))
    t.procs;
  List.iter
    (fun c ->
      (* latency shown only when nonzero, keeping historic output for
         immediate channels byte-identical *)
      Format.fprintf fmt "  chan %-12s %s -> %s (depth %d%s)@," c.cname c.src
        c.dst c.depth
        (if c.latency > 0 then Printf.sprintf ", latency %d" c.latency else ""))
    t.channels;
  Format.fprintf fmt "@]"
