type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let reseed t seed = t.state <- Int64.of_int seed

(* SplitMix64 step *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_nonneg t =
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t = Stdlib.float_of_int (next_nonneg t) /. 4611686018427387904.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
