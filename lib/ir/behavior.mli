(** A small behavioural specification language — the "common specification"
    from which both hardware and software implementations are derived.

    The same [proc] can be:
    - interpreted directly ({!run}) to obtain reference semantics,
    - compiled to assembly for the instruction-set processor
      ({!Codesign_isa.Codegen} — the software path), or
    - elaborated into a {!Cdfg.t} ({!elaborate}) and pushed through
      high-level synthesis ({!Codesign_hls.Hls} — the hardware path).

    Differential testing of the three paths against each other is the
    framework's core correctness argument (see [test/test_behavior.ml]).

    Semantics: all values are boxed OCaml [int]s treated as 32-bit-ish
    integers (no overflow wrapping is performed; workloads stay in
    range).  [Div]/[Rem] by zero yield 0, matching the ISS.  Booleans are
    0/1.  Arrays are fixed-size, zero-initialised, with index clamping to
    bounds (again matching the ISS's protected mode). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Eq
  | Ne

type expr =
  | Int of int
  | Var of string
  | Idx of string * expr  (** array element read *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr  (** logical: 0 -> 1, nonzero -> 0 *)
  | Ext of int * expr * expr * expr
      (** application-specific extension operation (ASIP rewrite):
          [Ext (op, acc, a, b)] evaluates to the extension's semantics
          applied to the three operands; compiles to a [Custom]
          read-modify-write instruction whose destination register is
          preloaded with [acc].  Interpreted via {!run}'s [ext]
          evaluator; rejected by {!elaborate} (the rewrite exists only
          on the software path). *)

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr  (** [Store (a, i, v)]: [a.(i) <- v] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list * int
      (** condition, body, expected trip count (estimation only) *)
  | For of string * expr * expr * stmt list
      (** [For (v, lo, hi, body)] runs body for v = lo .. hi-1 *)
  | PortOut of int * expr  (** write a value to an output port *)
  | PortIn of string * int  (** read an input port into a variable *)
  | Send of string * expr  (** send on a named channel *)
  | Recv of string * string  (** [Recv (v, ch)]: receive from [ch] into [v] *)

type proc = {
  name : string;
  params : string list;  (** inputs bound before execution *)
  arrays : (string * int) list;  (** array name, fixed length *)
  results : string list;  (** variables read back after execution *)
  body : stmt list;
}

(** Environment connecting a running behaviour to the outside world. *)
type io = {
  port_in : int -> int;
  port_out : int -> int -> unit;
  send : string -> int -> unit;
  recv : string -> int;
}

val null_io : io
(** Ports read 0, writes and channel traffic are discarded;
    [recv] returns 0. *)

val eval_bin : binop -> int -> int -> int
(** The reference arithmetic: [Div]/[Rem] by zero yield 0, shift amounts
    are masked to 5 bits, comparisons yield 0/1.  Exposed so other
    implementation paths (constant folding in {!Codesign_isa.Codegen},
    the differential fuzzer oracle) share one definition. *)

val clamp_index : int -> int -> int
(** [clamp_index len i] clamps [i] into [0, len-1] — the protected-mode
    array-access rule every execution level implements. *)

val collecting_io : unit -> io * (int * int) list ref
(** An [io] whose [port_out] appends [(port, value)] to the returned list
    (in program order); other operations behave as {!null_io}. *)

val run :
  ?io:io ->
  ?ext:(int -> int -> int -> int -> int) ->
  ?tick:(unit -> unit) ->
  ?fuel:int ->
  proc ->
  (string * int) list ->
  (string * int) list
(** [run p bindings] interprets [p] with [params] bound from [bindings]
    (missing params default to 0) and returns the [results] variables.
    [ext] evaluates {!Ext} nodes as [ext op acc a b] (default: raises);
    [tick] is called once per executed statement (timed co-simulation
    hook); [fuel] bounds total statement executions (default
    [10_000_000]).
    @raise Invalid_argument on unbound arrays or exhausted fuel. *)

val elaborate : proc -> Cdfg.t
(** Structural elaboration into a CDFG: every loop body and branch arm
    becomes a block whose [trip] is the product of enclosing expected
    trip counts ([For] over constant bounds contributes [hi-lo]; [While]
    contributes its annotation; branch arms contribute 1 each).  Channel
    and port operations become [Read]/[Write] ops on reserved names
    ["port:N"] / ["chan:C"]. *)

val static_stmts : proc -> int
(** Static statement count (a code-size proxy). *)

val vars_of : proc -> string list
(** All scalar variable names mentioned, sorted, params first. *)

val pp : Format.formatter -> proc -> unit
(** Pretty-prints the behaviour in a C-like concrete syntax. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
