(** Execution budgets: bound any run in simulated fuel {e and} wall
    time, and get a structured outcome instead of a hang or a raise.

    A budget pairs an optional fuel allowance (simulated time units for
    a kernel, instruction steps for a CPU, clock cycles for an RTL
    simulator) with an optional absolute wall-clock deadline.  The
    runners below ({!run_kernel}, {!run_cpu}, {!run_logic}) consume it
    and return {!outcome}: [Done] when the workload finished inside the
    budget, [Exhausted] when a bound was hit with work remaining — the
    caller decides whether that means retry from a snapshot
    ({!Supervisor}), a degraded report cell
    ({!Codesign_obs.Degraded}), or an error.

    Determinism: fuel bounds are in simulated units, so fuel-exhausted
    outcomes are pure functions of the workload.  Deadlines read the
    monotonic clock and are inherently racy with respect to simulated
    progress — use them as a safety net (CI, the service daemon), never
    as part of a byte-compared report. *)

type exhausted =
  | Fuel  (** the simulated-units allowance ran out *)
  | Deadline  (** the wall-clock deadline passed *)

val exhausted_name : exhausted -> string
(** ["fuel"] / ["deadline"]. *)

type 'a outcome = Done of 'a | Exhausted of exhausted

type t

val create : ?fuel:int -> ?deadline_ms:int -> unit -> t
(** [fuel] is an allowance of simulated units (unbounded when absent);
    [deadline_ms] fixes an absolute deadline [deadline_ms] milliseconds
    from now on the monotonic clock (none when absent).
    @raise Invalid_argument on a non-positive fuel or deadline. *)

val unlimited : unit -> t
(** No bounds: every runner returns [Done]. *)

val with_fuel : t -> fuel:int -> t
(** A fresh fuel allowance sharing [t]'s absolute deadline — the
    campaign shape: one wall deadline over the whole sweep, a fuel
    window per cell. *)

val is_unlimited : t -> bool

val spend : t -> int -> unit
(** Consume fuel (clamped at zero). *)

val fuel_left : t -> int option

val past_deadline : t -> bool
(** Has the wall deadline passed?  A pure read of the monotonic clock —
    safe from any domain, used by {!Codesign_fuzz} to cut off queued
    cases. *)

val check : t -> (unit, exhausted) result
(** [Error Fuel] when the allowance is spent, else [Error Deadline]
    when the deadline has passed, else [Ok ()]. *)

val stop_poll : t -> unit -> bool
(** A predicate for {!Codesign_sim.Kernel.run}'s [?stop]: true once the
    deadline passes.  Reads the wall clock only every 256th call so the
    per-event cost is a decrement.  (Fuel is enforced via [until], not
    via this predicate.) *)

val run_kernel :
  t ->
  ?expect_quiescent:bool ->
  ?check_deadlock:bool ->
  Codesign_sim.Kernel.t ->
  Codesign_sim.Kernel.stats outcome
(** Run the kernel for at most [fuel] simulated time units (window
    starting at the kernel's current clock) under the wall deadline.
    [Done stats] iff the event queue drained inside both bounds.  On
    [Exhausted Fuel] the full fuel window is charged (the kernel clock
    coasts to the bound, matching {!Codesign_sim.Kernel.run}'s
    bounded-run contract); on [Exhausted Deadline] the clock stays at
    the interruption point.  Either way the kernel is intact — state
    can be inspected, snapshot or restored. *)

val run_cpu : t -> Codesign_isa.Cpu.t -> Codesign_isa.Cpu.status outcome
(** Run the ISS until it halts/traps or the budget runs out, on the
    block-compiled tier ({!Codesign_isa.Cpu.run_blocks}; fuel = steps
    per that function's contract — retired instructions, interrupt
    entries and trapping accesses; the deadline is checked between
    4096-step slices).  [Done status] is never [Running]. *)

val run_logic :
  t -> Codesign_rtl.Logic_sim.t -> cycles:int -> int outcome
(** Clock the compiled netlist [cycles] times under the budget (fuel =
    clock cycles; deadline checked between 1024-cycle chunks).  [Done
    n] / [Exhausted _] with [n] cycles actually run recoverable via
    {!Codesign_rtl.Logic_sim.cycles_run}. *)
