module K = Codesign_sim.Kernel
module Cpu = Codesign_isa.Cpu
module Logic_sim = Codesign_rtl.Logic_sim
module Clock = Codesign_obs.Clock

type exhausted = Fuel | Deadline

let exhausted_name = function Fuel -> "fuel" | Deadline -> "deadline"

type 'a outcome = Done of 'a | Exhausted of exhausted

type t = {
  mutable fuel : int option;
  deadline_ns : int64 option;
  mutable poll_countdown : int;
}

(* How many stop_poll calls between wall-clock reads.  One monotonic
   read per 256 events keeps the deadline check off the dispatch hot
   path while bounding overshoot to a few microseconds of events. *)
let poll_period = 256

let create ?fuel ?deadline_ms () =
  (match fuel with
  | Some f when f <= 0 -> invalid_arg "Budget.create: non-positive fuel"
  | _ -> ());
  (match deadline_ms with
  | Some d when d <= 0 -> invalid_arg "Budget.create: non-positive deadline"
  | _ -> ());
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_int (ms * 1_000_000)))
      deadline_ms
  in
  { fuel; deadline_ns; poll_countdown = poll_period }

let unlimited () = { fuel = None; deadline_ns = None; poll_countdown = poll_period }

let with_fuel t ~fuel =
  if fuel <= 0 then invalid_arg "Budget.with_fuel: non-positive fuel";
  { fuel = Some fuel; deadline_ns = t.deadline_ns; poll_countdown = poll_period }

let is_unlimited t = t.fuel = None && t.deadline_ns = None

let spend t n =
  match t.fuel with
  | None -> ()
  | Some f -> t.fuel <- Some (max 0 (f - n))

let fuel_left t = t.fuel

let past_deadline t =
  match t.deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Clock.now_ns ()) d >= 0

let check t =
  match t.fuel with
  | Some 0 -> Error Fuel
  | _ -> if past_deadline t then Error Deadline else Ok ()

let stop_poll t =
  match t.deadline_ns with
  | None -> fun () -> false
  | Some _ ->
      fun () ->
        t.poll_countdown <- t.poll_countdown - 1;
        if t.poll_countdown > 0 then false
        else begin
          t.poll_countdown <- poll_period;
          past_deadline t
        end

let run_kernel t ?(expect_quiescent = false) ?(check_deadlock = false) k =
  let until = Option.map (fun f -> K.now k + f) t.fuel in
  let stop = match t.deadline_ns with None -> None | Some _ -> Some (stop_poll t) in
  let before = K.now k in
  let stats = K.run ?until ?stop ~expect_quiescent ~check_deadlock k in
  spend t (K.now k - before);
  if K.has_pending_events k then
    (* Bounded runs coast the clock to [until], so reaching the fuel
       bound and being deadline-stopped are distinguished by whether the
       clock made it there. *)
    match until with
    | Some u when K.now k >= u -> Exhausted Fuel
    | _ -> Exhausted Deadline
  else Done stats (* drained: finished even if the deadline just passed *)

(* Slice sizes: big enough that the per-slice deadline read is noise,
   small enough that a deadline cuts a spinning model off promptly. *)
let cpu_slice = 4096
let logic_chunk = 1024

let run_cpu t cpu =
  let rec go () =
    match Cpu.status cpu with
    | (Cpu.Halted | Cpu.Trapped _) as s -> Done s
    | Cpu.Running -> (
        match check t with
        | Error e -> Exhausted e
        | Ok () ->
            let slice =
              match t.fuel with
              | None -> cpu_slice
              | Some f -> min cpu_slice f
            in
            (* the block-compiled tier charges fuel under the same
               contract as run_fast (one step per retired instruction,
               interrupt entry or trapping access), so budget outcomes
               are tier-independent *)
            let ran = Cpu.run_blocks cpu ~fuel:slice in
            spend t ran;
            (* run_blocks returning short without a status change cannot
               happen, but guard against a zero-progress loop anyway. *)
            if ran = 0 && Cpu.status cpu = Cpu.Running then Exhausted Fuel
            else go ())
  in
  go ()

let run_logic t sim ~cycles =
  let rec go remaining ran =
    if remaining = 0 then Done ran
    else
      match check t with
      | Error e -> Exhausted e
      | Ok () ->
          let chunk =
            let c = min logic_chunk remaining in
            match t.fuel with None -> c | Some f -> min c f
          in
          for _ = 1 to chunk do
            Logic_sim.clock_cycle sim
          done;
          spend t chunk;
          go (remaining - chunk) (ran + chunk)
  in
  if cycles < 0 then invalid_arg "Budget.run_logic: negative cycles"
  else go cycles 0
