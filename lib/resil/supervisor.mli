(** Restart-from-snapshot supervision.

    A supervisor runs a body against a checkpointed world (a kernel
    snapshot plus whatever model state rides along — see the fork
    discipline in {!Codesign_sim.Kernel}).  When the body fails — by
    returning [Error], or by raising, which is how a trapped CPU or a
    {!Codesign_sim.Kernel.Deadlock} surfaces — the supervisor calls
    [restore] to rewind the world to its checkpoint and retries under a
    {!Policy}.  The policy's [max_retries] is the restart-intensity
    cap: once total attempts exceed it the supervisor gives up and
    reports every error it saw, newest last, leaving the world restored
    to the checkpoint (so the caller can still reuse it for the next
    cell).

    Each attempt receives its 0-based index so the body can
    re-deterministize per attempt (e.g. [Injector.reinit] before
    re-spawning processes), keeping retried runs byte-identical to
    first runs. *)

type 'a outcome =
  | Completed of { value : 'a; attempts : int }  (** attempts >= 1 *)
  | Gave_up of { attempts : int; errors : string list }
      (** every attempt's error, in attempt order *)

val run :
  ?policy:Policy.t ->
  ?rng:Codesign_ir.Rng.t ->
  ?wait:(int -> unit) ->
  restore:(unit -> unit) ->
  (attempt:int -> ('a, string) result) ->
  'a outcome
(** [run ~restore body] runs [body ~attempt:0]; on failure restores and
    retries per [policy] (default {!Policy.default}).  Exceptions from
    [body] are caught and recorded as [Printexc.to_string]; [restore]
    runs after {e every} failed attempt, including the last, so a
    [Gave_up] world is back at its checkpoint.  [wait] receives the
    policy backoff delay before each retry (default: none — supervision
    is a harness-level loop, not simulated time). *)
