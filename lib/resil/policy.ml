(* Bounded retry with deterministic backoff.  See policy.mli for the
   timing contract; the short version is that a jitter-free policy
   performs no Rng draws and a zero delay performs no wait, so the
   rebased retry loops in lib/fault reproduce their historic schedules
   exactly. *)

module Rng = Codesign_ir.Rng

type backoff =
  | No_backoff
  | Constant of int
  | Linear of int
  | Exponential of { base : int; factor : int; cap : int }

type t = { max_retries : int; backoff : backoff; jitter : int }

let validate t =
  if t.max_retries < 0 then invalid_arg "Policy.create: negative max_retries";
  if t.jitter < 0 then invalid_arg "Policy.create: negative jitter";
  (match t.backoff with
  | No_backoff -> ()
  | Constant d | Linear d ->
      if d < 0 then invalid_arg "Policy.create: negative backoff delay"
  | Exponential { base; factor; cap } ->
      if base <= 0 || factor <= 0 || cap < 0 then
        invalid_arg "Policy.create: exponential base/factor must be positive");
  t

let create ?(max_retries = 3)
    ?(backoff = Exponential { base = 8; factor = 2; cap = 512 }) ?(jitter = 0)
    () =
  validate { max_retries; backoff; jitter }

let no_retry = { max_retries = 0; backoff = No_backoff; jitter = 0 }
let default = create ()

let base_delay t ~attempt =
  match t.backoff with
  | No_backoff -> 0
  | Constant d -> d
  | Linear base -> base * (attempt + 1)
  | Exponential { base; factor; cap } ->
      (* Iterate rather than exponentiate: caps long before overflow. *)
      let rec grow d n = if n <= 0 || d >= cap then min d cap else grow (d * factor) (n - 1) in
      grow base attempt

let delay ?rng t ~attempt =
  let d = base_delay t ~attempt in
  match rng with
  | Some rng when t.jitter > 0 -> d + Rng.int rng (t.jitter + 1)
  | _ -> d

let schedule t ?rng () =
  List.init t.max_retries (fun attempt -> delay ?rng t ~attempt)

type 'e exhausted = { attempts : int; last_error : 'e }

let retry t ?rng ?(wait = fun _ -> ()) ?(on_retry = fun ~attempt:_ ~delay:_ -> ())
    f =
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e when attempt >= t.max_retries ->
        Error { attempts = attempt + 1; last_error = e }
    | Error _ ->
        let d = delay ?rng t ~attempt in
        on_retry ~attempt ~delay:d;
        if d > 0 then wait d;
        go (attempt + 1)
  in
  go 0
