type 'a outcome =
  | Completed of { value : 'a; attempts : int }
  | Gave_up of { attempts : int; errors : string list }

let run ?(policy = Policy.default) ?rng ?wait ~restore body =
  let errors = ref [] in
  let attempt_once ~attempt =
    let result =
      match body ~attempt with
      | Ok _ as ok -> ok
      | Error e -> Error e
      | exception exn -> Error (Printexc.to_string exn)
    in
    (match result with
    | Ok _ -> ()
    | Error e ->
        errors := e :: !errors;
        restore ());
    result
  in
  match Policy.retry policy ?rng ?wait attempt_once with
  | Ok value -> Completed { value; attempts = List.length !errors + 1 }
  | Error { Policy.attempts; _ } ->
      Gave_up { attempts; errors = List.rev !errors }
