(** Retry policies: one bounded-retry-with-backoff vocabulary shared by
    every recovery loop in the framework.

    Before this module each layer hard-coded its own loop — the tlm
    sweep cell retried bus transfers with a literal budget and a
    [backoff * (n + 1)] wait, the ARQ channel retransmitted with a
    literal frame budget, the campaign supervisor re-ran trapped cells
    ad hoc.  A {!t} names the whole family: how many retries, what
    delay grows between them, and how much deterministic jitter (drawn
    from a caller-supplied {!Codesign_ir.Rng} — usually the campaign
    stream, so the schedule is a pure function of the seed) is added on
    top.

    Timing contract: {!delay} with [jitter = 0] performs {e no} Rng
    draw, so a policy without jitter never perturbs a seeded stream —
    which is how the rebased {!Codesign_fault.Faulty_chan} and tlm
    retry loops reproduce their pre-policy behaviour byte for byte. *)

type backoff =
  | No_backoff  (** retry immediately *)
  | Constant of int  (** the same delay before every retry *)
  | Linear of int  (** [base * (attempt + 1)]: the historic tlm ramp *)
  | Exponential of { base : int; factor : int; cap : int }
      (** [min cap (base * factor^attempt)] *)

type t = {
  max_retries : int;
      (** retries after the first attempt; total attempts = max_retries + 1 *)
  backoff : backoff;
  jitter : int;
      (** max extra delay per retry, drawn uniformly from [0, jitter]
          when an Rng is supplied; 0 = deterministic schedule, no draw *)
}

val create : ?max_retries:int -> ?backoff:backoff -> ?jitter:int -> unit -> t
(** Defaults: [max_retries = 3],
    [backoff = Exponential {base = 8; factor = 2; cap = 512}],
    [jitter = 0].
    @raise Invalid_argument on a negative count/delay or a
    non-positive exponential base/factor. *)

val no_retry : t
(** One attempt, no delays. *)

val default : t
(** [create ()]. *)

val delay : ?rng:Codesign_ir.Rng.t -> t -> attempt:int -> int
(** Delay before retry [attempt] (0-based retry index).  Draws exactly
    one Rng value iff [jitter > 0] and [rng] is supplied, so equal
    seeds give equal schedules. *)

val schedule : t -> ?rng:Codesign_ir.Rng.t -> unit -> int list
(** The full backoff schedule, [max_retries] delays in attempt order. *)

type 'e exhausted = { attempts : int; last_error : 'e }
(** The budget ran out: [attempts] were made (>= 1), the last one
    failing with [last_error]. *)

val retry :
  t ->
  ?rng:Codesign_ir.Rng.t ->
  ?wait:(int -> unit) ->
  ?on_retry:(attempt:int -> delay:int -> unit) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e exhausted) result
(** [retry p f] runs [f ~attempt:0], and on [Error _] retries up to
    [p.max_retries] times, calling [on_retry] then [wait delay] (only
    when the delay is positive — a zero delay performs no wait, so
    [No_backoff] policies add nothing to simulated time) before each
    retry.  [wait] defaults to ignoring the delay (harness-level
    retries); pass {!Codesign_sim.Kernel.wait} from inside a process
    for simulated-time backoff.  [f] is expected to return [Error];
    exceptions propagate to the caller ({!Supervisor} is the layer that
    converts exceptions into retries). *)
