(** The machine-readable benchmark artifact ([BENCH_results.json]).

    One record per harness run: per-experiment wall time and simulation
    counters (from {!Codesign_sim.Kernel.domain_totals} deltas), plus
    Bechamel ns/run estimates when the microbenchmark phase ran.  The
    schema is versioned so downstream perf-trajectory tooling can evolve
    with it; {!of_json} validates everything it reads, making the
    written file round-trippable by construction. *)

type experiment = {
  name : string;  (** "EXP-1" .. "EXP-10", "EXP-A" *)
  wall_s : float;  (** host wall-clock seconds for the table *)
  events : int;  (** kernel events dispatched by this experiment *)
  activations : int;  (** process activations *)
  scheduled : int;  (** events pushed *)
  kernels : int;  (** simulation kernels created *)
  table_checksum : string;  (** {!Checksum.of_string} of the table text *)
}

type micro = {
  m_name : string;  (** Bechamel test name, e.g. "codesign/iss/fir-kernel" *)
  ns_per_run : float;  (** OLS estimate, monotonic clock *)
}

type t = {
  schema_version : int;  (** currently {!schema_version} *)
  mode : string;  (** "quick" or "full" problem sizes *)
  domains : int;  (** worker-domain pool size used for the tables *)
  tables_wall_s : float;  (** wall seconds for the whole tables phase *)
  experiments : experiment list;
  microbenchmarks : micro list;  (** empty when the phase was skipped *)
}

val schema_version : int

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Validates field presence and types; unknown fields are ignored
    (forward compatibility). *)

val write : path:string -> t -> unit
(** Pretty-printed, trailing newline, atomic enough for a bench
    artifact (plain create-and-rename-free write). *)

val read : path:string -> (t, string) result
