type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing: plain recursive descent over the input string              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true
                                     | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error ("expected " ^ word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let cp = parse_hex4 () in
              (* UTF-8 encode the BMP code point (surrogate pairs are
                 passed through as two 3-byte sequences — tolerable for
                 the ASCII-dominated data this library carries) *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | _ -> error "bad escape");
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if floaty then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
