(** Stable content checksums for regression tracking.

    FNV-1a (64-bit): not cryptographic, but deterministic across runs,
    OCaml versions and platforms — unlike [Hashtbl.hash] — which is what
    a perf-trajectory artifact needs so table drift is detectable by
    diffing two [BENCH_results.json] files. *)

val fnv1a64 : string -> int64

val hex : int64 -> string
(** 16 lowercase hex digits. *)

val of_string : string -> string
(** [hex (fnv1a64 s)] — the form stored in benchmark reports. *)
