type failure = {
  f_category : string;
  f_seed : int;
  f_detail : string;
  f_program : string option;
  f_shrunk_stmts : int option;
}

type t = {
  schema_version : int;
  seed : int;
  count : int;
  behavior_cases : int;
  ladder_cases : int;
  taskgraph_cases : int;
  fault_cases : int;
  rtl_blocks : int;
  wall_s : float;
  failures : failure list;
  degraded : (int * Degraded.t) list;
}

let schema_version = 2
let min_schema_version = 1

(* ------------------------------------------------------------------ *)

let failure_to_json (f : failure) =
  Json.Obj
    ([
       ("category", Json.Str f.f_category);
       ("seed", Json.Int f.f_seed);
       ("detail", Json.Str f.f_detail);
     ]
    @ (match f.f_program with
      | Some p -> [ ("program", Json.Str p) ]
      | None -> [])
    @
    match f.f_shrunk_stmts with
    | Some n -> [ ("shrunk_stmts", Json.Int n) ]
    | None -> [])

let to_json (r : t) =
  Json.Obj
    [
      ("schema_version", Json.Int r.schema_version);
      ("seed", Json.Int r.seed);
      ("count", Json.Int r.count);
      ("behavior_cases", Json.Int r.behavior_cases);
      ("ladder_cases", Json.Int r.ladder_cases);
      ("taskgraph_cases", Json.Int r.taskgraph_cases);
      ("fault_cases", Json.Int r.fault_cases);
      ("rtl_blocks", Json.Int r.rtl_blocks);
      ("wall_s", Json.Float r.wall_s);
      ("failures", Json.List (List.map failure_to_json r.failures));
      ( "degraded",
        Json.List
          (List.map
             (fun (case_seed, d) ->
               match Degraded.to_json d with
               | Json.Obj fields ->
                   Json.Obj (("case_seed", Json.Int case_seed) :: fields)
               | j -> j)
             r.degraded) );
    ]

(* ------------------------------------------------------------------ *)
(* validating reader                                                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let opt_field name conv j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let failure_of_json j =
  let* f_category = field "category" Json.to_str j in
  let* f_seed = field "seed" Json.to_int j in
  let* f_detail = field "detail" Json.to_str j in
  let* f_program = opt_field "program" Json.to_str j in
  let* f_shrunk_stmts = opt_field "shrunk_stmts" Json.to_int j in
  Ok { f_category; f_seed; f_detail; f_program; f_shrunk_stmts }

let all_of conv items =
  List.fold_right
    (fun item acc ->
      let* tail = acc in
      let* head = conv item in
      Ok (head :: tail))
    items (Ok [])

let degraded_of_json j =
  let* case_seed = field "case_seed" Json.to_int j in
  let* d =
    match Degraded.of_json j with
    | Ok d -> Ok d
    | Error e -> Error (Printf.sprintf "field \"degraded\": %s" e)
  in
  Ok (case_seed, d)

let of_json j =
  let* version = field "schema_version" Json.to_int j in
  if version < min_schema_version || version > schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* seed = field "seed" Json.to_int j in
    let* count = field "count" Json.to_int j in
    let* behavior_cases = field "behavior_cases" Json.to_int j in
    let* ladder_cases = field "ladder_cases" Json.to_int j in
    let* taskgraph_cases = field "taskgraph_cases" Json.to_int j in
    let* fault_cases = opt_field "fault_cases" Json.to_int j in
    let fault_cases = Option.value fault_cases ~default:0 in
    let* rtl_blocks = field "rtl_blocks" Json.to_int j in
    let* wall_s = field "wall_s" Json.to_float j in
    let* fs = field "failures" Json.to_list j in
    let* failures = all_of failure_of_json fs in
    let* degraded =
      (* absent in v1 files *)
      match Json.member "degraded" j with
      | None -> Ok []
      | Some v -> (
          match Json.to_list v with
          | None -> Error "field \"degraded\" has the wrong type"
          | Some items -> all_of degraded_of_json items)
    in
    Ok
      {
        schema_version = version;
        seed;
        count;
        behavior_cases;
        ladder_cases;
        taskgraph_cases;
        fault_cases;
        rtl_blocks;
        wall_s;
        failures;
        degraded;
      }

(* ------------------------------------------------------------------ *)

let write ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json r));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse text with
      | Error e -> Error e
      | Ok j -> of_json j)
