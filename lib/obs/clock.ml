let now_ns () = Monotonic_clock.now ()

let elapsed_s ~since =
  Int64.to_float (Int64.sub (now_ns ()) since) /. 1e9

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s ~since:t0)
