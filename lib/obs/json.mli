(** A dependency-free JSON tree: emitter and parser.

    Exists so the measurement layer can write machine-readable artifacts
    ([BENCH_results.json], [--json] CLI output) without pulling a JSON
    package into the build.  Covers the whole of RFC 8259 except that
    emitted numbers are OCaml [int]/[float] (no bignums), and non-finite
    floats are rejected at emission — benchmark data must be
    serialisable losslessly or not at all. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise.  [pretty] (default [false]) adds newlines and two-space
    indentation.  @raise Invalid_argument on NaN or infinite floats. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed; any
    other trailing input is an error).  Integral number literals without
    ['.'], ['e'] or ['E'] become {!Int}; everything else {!Float}. *)

(** {2 Accessors} — each returns [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] for missing field or non-object). *)

val to_int : t -> int option
val to_float : t -> float option
(** {!Int} values are accepted and converted by [to_float]. *)

val to_bool : t -> bool option

val to_str : t -> string option
val to_list : t -> t list option
