type cell = {
  mechanism : string;
  rate : float;
  ops : int;
  faulted_ops : int;
  injected : int;
  detected : int;
  recovered_ops : int;
  lost_ops : int;
  retries : int;
  watchdog_bites : int;
  degraded_to : string option;
  sim_cycles : int;
  cycle_overhead : float;
  recovery_rate : float;
  mean_detect_latency : float;
  checksum_ok : bool;
  degraded : Degraded.t option;
}

type drill = {
  d_site : string;
  d_mechanism : string;
  d_injected : int;
  d_detected : int;
  d_recovered : int;
}

type t = {
  schema_version : int;
  seed : int;
  ops_per_cell : int;
  warmup_per_cell : int;
  rates : float list;
  cells : cell list;
  drills : drill list;
}

let schema_version = 3
let min_schema_version = 2

(* ------------------------------------------------------------------ *)

let cell_to_json (c : cell) =
  Json.Obj
    ([
       ("mechanism", Json.Str c.mechanism);
       ("rate", Json.Float c.rate);
       ("ops", Json.Int c.ops);
       ("faulted_ops", Json.Int c.faulted_ops);
       ("injected", Json.Int c.injected);
       ("detected", Json.Int c.detected);
       ("recovered_ops", Json.Int c.recovered_ops);
       ("lost_ops", Json.Int c.lost_ops);
       ("retries", Json.Int c.retries);
       ("watchdog_bites", Json.Int c.watchdog_bites);
     ]
    @ (match c.degraded_to with
      | Some l -> [ ("degraded_to", Json.Str l) ]
      | None -> [])
    @ [
        ("sim_cycles", Json.Int c.sim_cycles);
        ("cycle_overhead", Json.Float c.cycle_overhead);
        ("recovery_rate", Json.Float c.recovery_rate);
        ("mean_detect_latency", Json.Float c.mean_detect_latency);
        ("checksum_ok", Json.Bool c.checksum_ok);
      ]
    @
    match c.degraded with
    | Some d -> [ ("degraded", Degraded.to_json d) ]
    | None -> [])

let drill_to_json (d : drill) =
  Json.Obj
    [
      ("site", Json.Str d.d_site);
      ("mechanism", Json.Str d.d_mechanism);
      ("injected", Json.Int d.d_injected);
      ("detected", Json.Int d.d_detected);
      ("recovered", Json.Int d.d_recovered);
    ]

let to_json (r : t) =
  Json.Obj
    [
      ("schema_version", Json.Int r.schema_version);
      ("seed", Json.Int r.seed);
      ("ops_per_cell", Json.Int r.ops_per_cell);
      ("warmup_per_cell", Json.Int r.warmup_per_cell);
      ("rates", Json.List (List.map (fun x -> Json.Float x) r.rates));
      ("cells", Json.List (List.map cell_to_json r.cells));
      ("drills", Json.List (List.map drill_to_json r.drills));
    ]

(* ------------------------------------------------------------------ *)
(* validating reader                                                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let opt_field name conv j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let all_of conv items =
  List.fold_right
    (fun item acc ->
      let* tail = acc in
      let* head = conv item in
      Ok (head :: tail))
    items (Ok [])

let cell_of_json j =
  let* mechanism = field "mechanism" Json.to_str j in
  let* rate = field "rate" Json.to_float j in
  let* ops = field "ops" Json.to_int j in
  let* faulted_ops = field "faulted_ops" Json.to_int j in
  let* injected = field "injected" Json.to_int j in
  let* detected = field "detected" Json.to_int j in
  let* recovered_ops = field "recovered_ops" Json.to_int j in
  let* lost_ops = field "lost_ops" Json.to_int j in
  let* retries = field "retries" Json.to_int j in
  let* watchdog_bites = field "watchdog_bites" Json.to_int j in
  let* degraded_to = opt_field "degraded_to" Json.to_str j in
  let* sim_cycles = field "sim_cycles" Json.to_int j in
  let* cycle_overhead = field "cycle_overhead" Json.to_float j in
  let* recovery_rate = field "recovery_rate" Json.to_float j in
  let* mean_detect_latency = field "mean_detect_latency" Json.to_float j in
  let* checksum_ok = field "checksum_ok" Json.to_bool j in
  let* degraded =
    match Json.member "degraded" j with
    | None -> Ok None
    | Some v -> (
        match Degraded.of_json v with
        | Ok d -> Ok (Some d)
        | Error e -> Error (Printf.sprintf "field \"degraded\": %s" e))
  in
  Ok
    {
      mechanism;
      rate;
      ops;
      faulted_ops;
      injected;
      detected;
      recovered_ops;
      lost_ops;
      retries;
      watchdog_bites;
      degraded_to;
      sim_cycles;
      cycle_overhead;
      recovery_rate;
      mean_detect_latency;
      checksum_ok;
      degraded;
    }

let drill_of_json j =
  let* d_site = field "site" Json.to_str j in
  let* d_mechanism = field "mechanism" Json.to_str j in
  let* d_injected = field "injected" Json.to_int j in
  let* d_detected = field "detected" Json.to_int j in
  let* d_recovered = field "recovered" Json.to_int j in
  Ok { d_site; d_mechanism; d_injected; d_detected; d_recovered }

let of_json j =
  let* version = field "schema_version" Json.to_int j in
  if version < min_schema_version || version > schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* seed = field "seed" Json.to_int j in
    let* ops_per_cell = field "ops_per_cell" Json.to_int j in
    let* warmup_per_cell = field "warmup_per_cell" Json.to_int j in
    let* rs = field "rates" Json.to_list j in
    let* rates =
      all_of
        (fun x ->
          match Json.to_float x with
          | Some f -> Ok f
          | None -> Error "field \"rates\" has the wrong type")
        rs
    in
    let* cs = field "cells" Json.to_list j in
    let* cells = all_of cell_of_json cs in
    let* ds = field "drills" Json.to_list j in
    let* drills = all_of drill_of_json ds in
    Ok
      {
        schema_version = version;
        seed;
        ops_per_cell;
        warmup_per_cell;
        rates;
        cells;
        drills;
      }

(* ------------------------------------------------------------------ *)

let write ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json r));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse text with
      | Error e -> Error e
      | Ok j -> of_json j)
