(** Machine-readable results of a fault-injection campaign
    ([lib/fault]), following the same schema discipline as
    {!Bench_report} and {!Fuzz_report}: a versioned JSON object with a
    validating reader.

    Unlike {!Fuzz_report} this schema deliberately carries {e no wall
    time}: every field is a function of the seed and the campaign
    parameters alone, so two runs with the same seed must produce
    byte-identical files — that is the replay contract CI checks.

    A {!cell} is one (mechanism, fault-rate) point of the sweep: a
    fixed number of data-transfer operations pushed through one Fig. 3
    interface level while the injector perturbs the transport.  A
    {!drill} is one of the targeted site drills (memory scrubbing,
    interrupt lines, CPU traps, RTL stuck-at faults) that exercise the
    injector sites the transfer sweep cannot reach. *)

type cell = {
  mechanism : string;
      (** "pin" | "tlm" | "token" | "degrade" — the interface level and
          its recovery mechanism (see {!Codesign_fault.Campaign}) *)
  rate : float;  (** per-decision-point fault probability *)
  ops : int;  (** transfer operations attempted *)
  faulted_ops : int;  (** ops during which >= 1 perturbation landed *)
  injected : int;  (** effective perturbation events *)
  detected : int;  (** perturbations the mechanism itself detected *)
  recovered_ops : int;  (** faulted ops whose data still arrived intact *)
  lost_ops : int;  (** ops whose sink word is wrong at audit time *)
  retries : int;  (** retry / retransmit attempts spent *)
  watchdog_bites : int;  (** watchdog expiries (pin-level hangs) *)
  degraded_to : string option;
      (** final level of the graceful-degradation ladder, when the
          mechanism is "degrade" *)
  sim_cycles : int;  (** simulated cycles to finish the workload *)
  cycle_overhead : float;
      (** (cycles - fault-free cycles) / fault-free cycles, same
          mechanism at rate 0 *)
  recovery_rate : float;  (** recovered_ops / faulted_ops (1.0 if none) *)
  mean_detect_latency : float;
      (** mean cycles from injection to detection; undetected faults are
          charged the end-of-run audit time *)
  checksum_ok : bool;  (** FNV-1a over the sink matches the expected *)
  degraded : Degraded.t option;
      (** schema v3: present iff the cell's supervised run exhausted
          its retry/budget policy and was declared dead — counters
          above are then zeroed placeholders, not measurements *)
}

type drill = {
  d_site : string;  (** "memory" | "irq" | "cpu" | "rtl" *)
  d_mechanism : string;  (** protection mechanism (or "none") *)
  d_injected : int;
  d_detected : int;
  d_recovered : int;
}

type t = {
  schema_version : int;
  seed : int;
  ops_per_cell : int;
  warmup_per_cell : int;
      (** fault-free warm-up transfers run before each cell's injection
          window opens (schema v2; cells report only the windowed ops) *)
  rates : float list;  (** fault rates swept (cells also cover rate 0) *)
  cells : cell list;
  drills : drill list;
}

val schema_version : int
(** 3.  v2 added [warmup_per_cell] when the campaign moved to a
    warm-up + injection-window structure (fork-from-checkpoint); v3
    added the optional per-cell [degraded] record (supervised
    campaigns that complete despite dead cells).  The reader accepts
    v2 files ([degraded] absent = [None] everywhere). *)

val min_schema_version : int
(** 2 — oldest version {!of_json} accepts. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val write : path:string -> t -> unit
(** Pretty-printed JSON, trailing newline.  Deterministic: same [t]
    value, byte-identical file. *)

val read : path:string -> (t, string) result
