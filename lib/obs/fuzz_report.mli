(** Machine-readable results of a differential-fuzzer run ([lib/fuzz]),
    following the same schema discipline as {!Bench_report}: a versioned
    JSON object with a validating reader, so CI can archive failures and
    a later session can re-shrink a saved counterexample.

    A {!failure} carries everything needed to reproduce: the exact
    per-case seed (replay with [codesign_cli fuzz --seed <case_seed>
    --count 1]), the category that failed, a human-readable detail of
    the first disagreement, and — for behaviour cases — the shrunk
    counterexample program in {!Codesign_ir.Behavior.pp} concrete
    syntax. *)

type failure = {
  f_category : string;  (** "behavior" | "ladder" | "taskgraph" | "fault" *)
  f_seed : int;  (** per-case seed: replay with [--seed N --count 1] *)
  f_detail : string;  (** first disagreement, human-readable *)
  f_program : string option;  (** shrunk counterexample (behaviour cases) *)
  f_shrunk_stmts : int option;  (** static statements after shrinking *)
}

type t = {
  schema_version : int;
  seed : int;  (** base seed of the run; case [i] uses [seed + i] *)
  count : int;
  behavior_cases : int;
  ladder_cases : int;
  taskgraph_cases : int;
  fault_cases : int;
      (** fault-injected oracle cases ([--fault] mode; 0 when the mode
          is off, and when reading pre-fault-mode report files) *)
  rtl_blocks : int;  (** FSMD blocks differentially executed *)
  wall_s : float;
  failures : failure list;
  degraded : (int * Degraded.t) list;
      (** schema v2: cases whose harness died after its retry policy or
          was cut off by the wall deadline, keyed by case seed — the
          category counters above count only completed cases.
          [Degraded.elapsed] is 0 (no simulated clock spans a fuzz
          case). *)
}

val schema_version : int
(** 2.  v2 added [degraded] (supervised runs that complete despite
    dead or deadline-cut cases).  The reader accepts v1 files
    ([degraded] absent = []). *)

val min_schema_version : int
(** 1 — oldest version {!of_json} accepts. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Validates field presence, types and [schema_version]. *)

val write : path:string -> t -> unit
(** Pretty-printed JSON, trailing newline. *)

val read : path:string -> (t, string) result
