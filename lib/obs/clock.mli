(** Monotonic wall-clock timing for the measurement layer.

    Backed by [CLOCK_MONOTONIC] (via the bechamel C stub already baked
    into the toolchain), so measurements are immune to NTP steps and
    comparable with the Bechamel ns/run estimates reported alongside
    them.  Simulated time never touches this module — the kernel remains
    bit-reproducible; this clock only measures the host. *)

val now_ns : unit -> int64
(** Monotonic timestamp in nanoseconds (epoch unspecified; only
    differences are meaningful). *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since a {!now_ns} mark. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the wall seconds it
    took. *)
