type t = { error : string; attempts : int; elapsed : int }

let to_json d =
  Json.Obj
    [
      ("error", Json.Str d.error);
      ("attempts", Json.Int d.attempts);
      ("elapsed", Json.Int d.elapsed);
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let of_json j =
  let* error = field "error" Json.to_str j in
  let* attempts = field "attempts" Json.to_int j in
  let* elapsed = field "elapsed" Json.to_int j in
  Ok { error; attempts; elapsed }
