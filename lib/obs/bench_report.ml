type experiment = {
  name : string;
  wall_s : float;
  events : int;
  activations : int;
  scheduled : int;
  kernels : int;
  table_checksum : string;
}

type micro = { m_name : string; ns_per_run : float }

type t = {
  schema_version : int;
  mode : string;
  domains : int;
  tables_wall_s : float;
  experiments : experiment list;
  microbenchmarks : micro list;
}

let schema_version = 1

(* ------------------------------------------------------------------ *)

let experiment_to_json (e : experiment) =
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("wall_s", Json.Float e.wall_s);
      ("events", Json.Int e.events);
      ("activations", Json.Int e.activations);
      ("scheduled", Json.Int e.scheduled);
      ("kernels", Json.Int e.kernels);
      ("table_checksum", Json.Str e.table_checksum);
    ]

let micro_to_json (m : micro) =
  Json.Obj
    [ ("name", Json.Str m.m_name); ("ns_per_run", Json.Float m.ns_per_run) ]

let to_json (r : t) =
  Json.Obj
    [
      ("schema_version", Json.Int r.schema_version);
      ("mode", Json.Str r.mode);
      ("domains", Json.Int r.domains);
      ("tables_wall_s", Json.Float r.tables_wall_s);
      ("experiments", Json.List (List.map experiment_to_json r.experiments));
      ( "microbenchmarks",
        Json.List (List.map micro_to_json r.microbenchmarks) );
    ]

(* ------------------------------------------------------------------ *)
(* validating reader                                                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let experiment_of_json j =
  let* name = field "name" Json.to_str j in
  let* wall_s = field "wall_s" Json.to_float j in
  let* events = field "events" Json.to_int j in
  let* activations = field "activations" Json.to_int j in
  let* scheduled = field "scheduled" Json.to_int j in
  let* kernels = field "kernels" Json.to_int j in
  let* table_checksum = field "table_checksum" Json.to_str j in
  Ok { name; wall_s; events; activations; scheduled; kernels; table_checksum }

let micro_of_json j =
  let* m_name = field "name" Json.to_str j in
  let* ns_per_run = field "ns_per_run" Json.to_float j in
  Ok { m_name; ns_per_run }

let all_of conv items =
  List.fold_right
    (fun item acc ->
      let* tail = acc in
      let* head = conv item in
      Ok (head :: tail))
    items (Ok [])

let of_json j =
  let* version = field "schema_version" Json.to_int j in
  if version <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d" version)
  else
    let* mode = field "mode" Json.to_str j in
    let* domains = field "domains" Json.to_int j in
    let* tables_wall_s = field "tables_wall_s" Json.to_float j in
    let* exps = field "experiments" Json.to_list j in
    let* experiments = all_of experiment_of_json exps in
    let* micros = field "microbenchmarks" Json.to_list j in
    let* microbenchmarks = all_of micro_of_json micros in
    Ok
      {
        schema_version = version;
        mode;
        domains;
        tables_wall_s;
        experiments;
        microbenchmarks;
      }

(* ------------------------------------------------------------------ *)

let write ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (to_json r));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
      match Json.parse text with
      | Error e -> Error e
      | Ok j -> of_json j)
