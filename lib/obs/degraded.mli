(** The degraded-cell record shared by {!Fault_report} (schema v3) and
    {!Fuzz_report} (schema v2): how a supervised task died after its
    retry budget was spent, recorded so the run can {e complete} with
    partial results instead of aborting.

    Determinism contract: [elapsed] is {e simulated} time at the final
    failure (0 where no simulated clock applies, e.g. fuzz harness
    failures) — never wall time — so a degraded report is still a pure
    function of seed + policy and byte-identical at any [--jobs]. *)

type t = {
  error : string;  (** the last attempt's error *)
  attempts : int;  (** attempts made before giving up (>= 1; 0 = never
                       started, e.g. cut off by a wall deadline) *)
  elapsed : int;  (** simulated time units at the final failure *)
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
