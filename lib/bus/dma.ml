module K = Codesign_sim.Kernel

type start_status = Started | Queued | Rejected of string

type job = { src : int; dst : int; len : int }

type t = {
  kernel : K.t;
  irq : (Interrupt.t * int) option;
  jobs : job Codesign_sim.Channel.t;
  mutable src_reg : int;
  mutable dst_reg : int;
  mutable len_reg : int;
  mutable status : int;
  mutable busy : bool;
  mutable transfers : int;
  mutable words : int;
}

let create ?irq kernel (bus : Bus.iface) () =
  let t =
    {
      kernel;
      irq;
      jobs = Codesign_sim.Channel.create ~depth:4 ~name:"dma.jobs" kernel ();
      src_reg = 0;
      dst_reg = 0;
      len_reg = 0;
      status = 0;
      busy = false;
      transfers = 0;
      words = 0;
    }
  in
  K.spawn ~name:"dma" kernel (fun () ->
      let rec serve () =
        let job = Codesign_sim.Channel.recv t.jobs in
        for i = 0 to job.len - 1 do
          let v = bus.Bus.bus_read (job.src + i) in
          bus.Bus.bus_write (job.dst + i) v;
          t.words <- t.words + 1
        done;
        (* stay busy while queued descriptors remain: [busy] answers
           "will a new start be serviced immediately?" *)
        t.busy <- Codesign_sim.Channel.occupancy t.jobs > 0;
        t.status <- 1;
        t.transfers <- t.transfers + 1;
        (match t.irq with
        | Some (ic, line) -> Interrupt.raise_line ic line
        | None -> ());
        serve ()
      in
      serve ());
  t

let start t ~src ~dst ~len =
  if len < 0 then Rejected "negative length"
  else if not (Codesign_sim.Channel.try_send t.jobs { src; dst; len }) then
    Rejected "descriptor queue full"
  else begin
    let was_busy = t.busy in
    t.busy <- true;
    t.status <- 0;
    if was_busy then Queued else Started
  end

let region ~name ~base t =
  let dev_read = function
    | 0 -> t.src_reg
    | 1 -> t.dst_reg
    | 2 -> t.len_reg
    | 3 -> if t.busy then 1 else 0
    | 4 -> t.status
    | _ -> 0
  in
  let dev_write off v =
    match off with
    | 0 -> t.src_reg <- v
    | 1 -> t.dst_reg <- v
    | 2 -> t.len_reg <- v
    | 3 ->
        if v land 1 = 1 then
          (* register-level starts have no return channel; a rejected
             start is simply dropped, as real hardware would *)
          ignore (start t ~src:t.src_reg ~dst:t.dst_reg ~len:t.len_reg)
    | 4 -> t.status <- 0
    | _ -> ()
  in
  Memory_map.device ~name ~base ~size:5
    (Memory_map.simple_handlers dev_read dev_write)

let busy t = t.busy
let transfers_completed t = t.transfers
let words_moved t = t.words
