module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel

type level = Pin | Transaction | Driver | Message

let all_levels = [ Pin; Transaction; Driver; Message ]

let level_name = function
  | Pin -> "pin/signal"
  | Transaction -> "bus transaction"
  | Driver -> "driver call"
  | Message -> "send/receive/wait"

let short_name = function
  | Pin -> "pin"
  | Transaction -> "tlm"
  | Driver -> "driver"
  | Message -> "message"

let level_of_string s =
  match String.lowercase_ascii s with
  | "pin" -> Ok Pin
  | "tlm" | "transaction" -> Ok Transaction
  | "driver" -> Ok Driver
  | "message" | "msg" -> Ok Message
  | other ->
      Error
        (Printf.sprintf
           "unknown interface level %S (expected pin | tlm | driver | \
            message)"
           other)

let rank = function Pin -> 0 | Transaction -> 1 | Driver -> 2 | Message -> 3

type stats = {
  ops : int;
  reads : int;
  writes : int;
  stalls : int;
  busy_cycles : int;
}

let zero_stats = { ops = 0; reads = 0; writes = 0; stalls = 0; busy_cycles = 0 }

type t = {
  level : level;
  lookahead : int;
  read : int -> int;
  write : int -> int -> unit;
  wait_ready : int -> unit;
  stats : unit -> stats;
  save : (unit -> unit -> unit) option;
}

type snap = { owner : t; apply : unit -> unit }

let snapshot t =
  match t.save with
  | Some save -> { owner = t; apply = save () }
  | None ->
      invalid_arg
        (Printf.sprintf
           "Transport.snapshot: the %s backend has no snapshot support"
           (short_name t.level))

let restore t s =
  if s.owner != t then
    invalid_arg "Transport.restore: snapshot belongs to a different transport";
  s.apply ()

(* ------------------------------------------------------------------ *)
(* bus-backed rungs                                                    *)
(* ------------------------------------------------------------------ *)

let of_bus_iface ~level ?(lookahead = 0) ?(poll_interval = 8) ?save
    (iface : Bus.iface) =
  {
    level;
    lookahead;
    read = iface.Bus.bus_read;
    write = iface.Bus.bus_write;
    wait_ready =
      (fun addr ->
        let rec poll () =
          if iface.Bus.bus_read addr > 0 then ()
          else begin
            K.wait poll_interval;
            poll ()
          end
        in
        poll ());
    stats =
      (fun () ->
        let s = iface.Bus.bus_stats () in
        {
          ops = s.Bus.reads + s.Bus.writes;
          reads = s.Bus.reads;
          writes = s.Bus.writes;
          stalls = s.Bus.stalls;
          busy_cycles = s.Bus.busy_cycles;
        });
    save;
  }

let pin ?setup_cycles ?poll_interval kernel map =
  let b = Bus.Pin.create ?setup_cycles kernel map in
  (* Every pin access costs at least the setup handshake, so that is the
     rung's guaranteed lookahead. *)
  let lookahead = match setup_cycles with Some c -> c | None -> 1 in
  of_bus_iface ~level:Pin ~lookahead ?poll_interval
    ~save:(fun () ->
      let s = Bus.Pin.snapshot b in
      fun () -> Bus.Pin.restore b s)
    (Bus.pin_iface b)

let tlm ?read_latency ?write_latency ?poll_interval kernel map =
  let b = Bus.Tlm.create ?read_latency ?write_latency kernel map in
  let lookahead =
    min
      (match read_latency with Some c -> c | None -> 2)
      (match write_latency with Some c -> c | None -> 2)
  in
  of_bus_iface ~level:Transaction ~lookahead ?poll_interval
    ~save:(fun () ->
      let s = Bus.Tlm.snapshot b in
      fun () -> Bus.Tlm.restore b s)
    (Bus.tlm_iface b)

(* ------------------------------------------------------------------ *)
(* driver-call rung                                                    *)
(* ------------------------------------------------------------------ *)

let driver ?(call_cost = 6) ?(poll_interval = 8) map =
  let reads = ref 0 and writes = ref 0 in
  {
    level = Driver;
    lookahead = call_cost;
    read =
      (fun addr ->
        incr reads;
        K.wait call_cost;
        Memory_map.read map addr);
    write =
      (fun addr v ->
        incr writes;
        K.wait call_cost;
        Memory_map.write map addr v);
    wait_ready =
      (fun addr ->
        (* device readiness is observed functionally: the status spins
           are not driver entries and generate no bus traffic *)
        let rec poll () =
          if Memory_map.read map addr > 0 then ()
          else begin
            K.wait poll_interval;
            poll ()
          end
        in
        poll ());
    stats =
      (fun () ->
        {
          ops = !reads + !writes;
          reads = !reads;
          writes = !writes;
          stalls = 0;
          busy_cycles = 0;
        });
    save =
      Some
        (fun () ->
          let r = !reads and w = !writes in
          fun () ->
            reads := r;
            writes := w);
  }

(* ------------------------------------------------------------------ *)
(* send/receive/wait rung                                              *)
(* ------------------------------------------------------------------ *)

type msg_endpoint = Recv_ep of int Ch.t | Send_ep of int Ch.t

let message ?(recv = []) ?(send = []) () =
  let endpoints =
    List.map (fun (base, c) -> (base, Recv_ep c)) recv
    @ List.map (fun (base, c) -> (base, Send_ep c)) send
  in
  let lookup addr =
    (* [addr] may be a status (base) or data (base + 1) register *)
    match List.assoc_opt addr endpoints with
    | Some ep -> (ep, `Status)
    | None -> (
        match List.assoc_opt (addr - 1) endpoints with
        | Some ep -> (ep, `Data)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Transport.message: address %d is bound to no channel \
                  endpoint"
                 addr))
  in
  let would_proceed = function
    | Recv_ep c -> Ch.occupancy c > 0
    (* a latency channel is a delay line: sends always proceed *)
    | Send_ep c -> Ch.latency c > 0 || Ch.occupancy c < Ch.depth c
  in
  (* The rung's lookahead is the weakest guarantee over its endpoints:
     the minimum declared channel latency (0 if any endpoint is an
     immediate channel, or if there are none). *)
  let ep_latency = function Recv_ep c | Send_ep c -> Ch.latency c in
  let lookahead =
    match endpoints with
    | [] -> 0
    | (_, e0) :: rest ->
        List.fold_left
          (fun acc (_, e) -> min acc (ep_latency e))
          (ep_latency e0) rest
  in
  {
    level = Message;
    lookahead;
    read =
      (fun addr ->
        match lookup addr with
        | ep, `Status -> if would_proceed ep then 1 else 0
        | Recv_ep c, `Data -> Ch.recv c
        | Send_ep _, `Data ->
            invalid_arg "Transport.message: read from a send endpoint");
    write =
      (fun addr v ->
        match lookup addr with
        | Send_ep c, `Data -> Ch.send c v
        | Recv_ep _, `Data ->
            invalid_arg "Transport.message: write to a receive endpoint"
        | _, `Status ->
            invalid_arg "Transport.message: write to a status register");
    (* data operations block on the channel themselves; a separate wait
       would double-count the synchronisation *)
    wait_ready = (fun _ -> ());
    stats = (fun () -> zero_stats);
    (* the record itself is stateless: every bit of state lives in the
       bound channels, which their owner snapshots directly *)
    save = Some (fun () -> fun () -> ());
  }

(* ------------------------------------------------------------------ *)
(* transactors                                                         *)
(* ------------------------------------------------------------------ *)

let view t ~as_ =
  if rank as_ < rank t.level then
    invalid_arg
      (Printf.sprintf
         "Transport.view: cannot present a %s transport at the more \
          detailed %s level"
         (short_name t.level) (short_name as_))
  else { t with level = as_ }

module Mailbox = struct
  type t = {
    fifo : int Queue.t;
    depth : int;
    mutable delivered : int;
  }

  let create ?(name = "mailbox") ?(depth = 4) kernel chan =
    let t = { fifo = Queue.create (); depth; delivered = 0 } in
    (* the pump never terminates by itself — it is infrastructure, not a
       process under test, so it must not count towards deadlock *)
    K.spawn ~name ~daemon:true kernel (fun () ->
        let rec pump () =
          let v = Ch.recv chan in
          let rec wait_space () =
            if Queue.length t.fifo >= t.depth then begin
              K.wait 8;
              wait_space ()
            end
          in
          wait_space ();
          Queue.push v t.fifo;
          t.delivered <- t.delivered + 1;
          pump ()
        in
        pump ());
    t

  let region ~name ~base t =
    let dev_read = function
      | 0 -> Queue.length t.fifo
      | 1 -> ( match Queue.take_opt t.fifo with Some v -> v | None -> 0)
      | _ -> 0
    in
    Memory_map.device ~name ~base ~size:2
      (Memory_map.simple_handlers dev_read (fun _ _ -> ()))

  let delivered t = t.delivered
end

let stream_to_channel ?(name = "stream_pump") kernel t ~base ~count chan =
  K.spawn ~name kernel (fun () ->
      for _ = 1 to count do
        t.wait_ready base;
        Ch.send chan (t.read (base + 1))
      done)
