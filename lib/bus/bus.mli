(** The system bus, modelled at the two abstraction levels of the
    paper's Fig. 3 ladder that involve bus activity:

    - {!Tlm}: transaction-level — an access is one blocking call that
      charges a fixed base latency plus arbitration.  Device wait states
      are {i ignored} (that is the abstraction's approximation, and the
      source of its timing error against the pin-level reference).
    - {!Pin}: pin/cycle-level — the bus is a set of {!Codesign_sim.Signal}
      wires driven through an explicit clocked request/acknowledge
      protocol; device wait states stretch the acknowledge, so timing is
      exact.  Costs many kernel events per transfer.

    Both decode through the same {!Memory_map}, so they are functionally
    interchangeable; co-simulation experiments (EXP-3) swap one for the
    other and measure the accuracy/speed trade-off.

    Arbitration is first-come-first-served and fair in both models. *)

type stats = {
  reads : int;
  writes : int;
  stalls : int;  (** accesses that had to wait for the bus *)
  busy_cycles : int;  (** cycles the bus spent occupied *)
}

(** Transaction-level model. *)
module Tlm : sig
  type t

  val create :
    ?read_latency:int ->
    ?write_latency:int ->
    Codesign_sim.Kernel.t ->
    Memory_map.t ->
    t
  (** Latencies default to 2 cycles each. *)

  val read : t -> int -> int
  (** Blocking; must run inside a kernel process. *)

  val write : t -> int -> int -> unit

  val stats : t -> stats

  (** Snapshot/restore of the model's mutable state: traffic counters
      and arbiter occupancy.  The {!Memory_map} behind the bus is
      snapshotted separately by its owner.  Restore drops any processes
      queued on the arbiter (see {!Codesign_sim.Kernel.snapshot} for
      the fork discipline). *)

  type snap

  val snapshot : t -> snap
  val restore : t -> snap -> unit
end

(** Pin-accurate model. *)
module Pin : sig
  type t

  val create :
    ?setup_cycles:int -> Codesign_sim.Kernel.t -> Memory_map.t -> t
  (** [setup_cycles] (default 1) models address/turnaround phases added
      to every transfer on top of device wait states.  The model drives
      its own bus clock with period 1 kernel tick per cycle. *)

  val read : t -> int -> int
  val write : t -> int -> int -> unit
  val stats : t -> stats

  (** {3 Snapshot / restore}

      Captures the five bus wires, the arbiter and the traffic
      counters.  Only an {e idle} bus can be snapshotted — the slave
      process's position in the request/acknowledge handshake lives in
      an uncapturable effect continuation, so mid-transaction state
      cannot be forked.  {!restore} rewinds the wires (dropping all
      waiters, which abandons the current slave process) and spawns a
      fresh slave for the forked timeline; the abandoned slave stays
      blocked forever and is invisible to [expect_quiescent] runs. *)

  type snap

  val snapshot : t -> snap
  (** @raise Invalid_argument if the bus is mid-transaction (arbiter
      held or processes queued on it). *)

  val restore : t -> snap -> unit

  (** Observable wires, for glue logic and waveform-style assertions. *)

  val addr_wire : t -> int Codesign_sim.Signal.t
  val data_wire : t -> int Codesign_sim.Signal.t
  val req_wire : t -> int Codesign_sim.Signal.t
  val ack_wire : t -> int Codesign_sim.Signal.t
  val we_wire : t -> int Codesign_sim.Signal.t
end

(** A common face over both models so clients (CPU wrappers, DMA,
    drivers) are abstraction-level-agnostic. *)
type iface = {
  bus_read : int -> int;
  bus_write : int -> int -> unit;
  bus_stats : unit -> stats;
}

val tlm_iface : Tlm.t -> iface
val pin_iface : Pin.t -> iface

val zero_iface : Memory_map.t -> iface
(** Zero-delay functional access (the "OS message" rung of the ladder
    uses no bus at all; this iface exists for completeness and tests). *)
