(** The system address map shared by every bus model.

    The map is a set of non-overlapping regions.  RAM regions are backed
    by arrays owned by the map; device regions delegate to handler
    callbacks (typically closing over a {!Device} instance).  Both bus
    abstraction levels ({!Bus.Tlm} and {!Bus.Pin}) decode through the
    same map, so moving between abstraction levels never changes
    functional behaviour — only timing fidelity. *)

type handlers = {
  dev_read : int -> int;  (** offset within the region *)
  dev_write : int -> int -> unit;
  (* Pin-accurate models can add wait states; the TLM ignores this. *)
  wait_states : int -> int;  (** extra bus cycles for the access at offset *)
}

type region_kind =
  | Ram of int array
  | Rom of int array
  | Device of handlers

type region = { name : string; base : int; size : int; kind : region_kind }

type t

val create : region list -> t
(** @raise Invalid_argument on overlapping or empty regions. *)

val regions : t -> region list

val decode : t -> int -> (region * int) option
(** Region and offset for an address, or [None] for unmapped space. *)

val read : t -> int -> int
(** Functional read (no timing).  ROM/RAM return the cell; devices call
    [dev_read].  @raise Invalid_argument on unmapped addresses, naming
    every mapped window (name + address range). *)

val write : t -> int -> int -> unit
(** Functional write.  Writes to ROM raise; unmapped addresses raise,
    naming every mapped window (name + address range). *)

val wait_states : t -> int -> int
(** Device wait states at an address (0 for memory and unmapped). *)

(** {2 Snapshot / restore}

    A snapshot copies the backing array of every RAM and ROM region
    (ROMs are included because their backing arrays are shared with the
    caller and could be mutated externally).  Device regions hold their
    state behind handler closures and are {e not} captured — a device
    whose state matters across forks must expose its own
    snapshot/restore. *)

type snap

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Rewind every RAM/ROM region's contents.
    @raise Invalid_argument if a snapshotted region is missing or has a
    different size (snapshot from a different map shape). *)

val ram : name:string -> base:int -> size:int -> region
val rom : name:string -> base:int -> int array -> region
val device : name:string -> base:int -> size:int -> handlers -> region

val simple_handlers :
  ?wait_states:(int -> int) -> (int -> int) -> (int -> int -> unit) -> handlers
(** Build handlers from read/write functions; wait states default 0. *)
