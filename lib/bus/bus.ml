module K = Codesign_sim.Kernel
module S = Codesign_sim.Signal

type stats = { reads : int; writes : int; stalls : int; busy_cycles : int }

(* FIFO-fair mutual exclusion shared by both models. *)
module Arbiter = struct
  type t = {
    mutable busy : bool;
    waiters : (unit -> unit) Queue.t;
    mutable stall_count : int;
  }

  let create () = { busy = false; waiters = Queue.create (); stall_count = 0 }

  let acquire t =
    if t.busy then begin
      t.stall_count <- t.stall_count + 1;
      K.suspend ~register:(fun resume -> Queue.push resume t.waiters)
      (* ownership is handed over directly by [release] *)
    end
    else t.busy <- true

  let release t =
    if Queue.is_empty t.waiters then t.busy <- false
    else (Queue.pop t.waiters) ()

  let idle t = (not t.busy) && Queue.is_empty t.waiters

  type snap = { s_busy : bool; s_stall_count : int }

  let snapshot t = { s_busy = t.busy; s_stall_count = t.stall_count }

  let restore t s =
    t.busy <- s.s_busy;
    t.stall_count <- s.s_stall_count;
    Queue.clear t.waiters
end

module Tlm = struct
  type t = {
    kernel : K.t;
    map : Memory_map.t;
    read_latency : int;
    write_latency : int;
    arb : Arbiter.t;
    mutable reads : int;
    mutable writes : int;
    mutable busy_cycles : int;
  }

  let create ?(read_latency = 2) ?(write_latency = 2) kernel map =
    {
      kernel;
      map;
      read_latency;
      write_latency;
      arb = Arbiter.create ();
      reads = 0;
      writes = 0;
      busy_cycles = 0;
    }

  let read t addr =
    Arbiter.acquire t.arb;
    K.wait t.read_latency;
    let v = Memory_map.read t.map addr in
    t.reads <- t.reads + 1;
    t.busy_cycles <- t.busy_cycles + t.read_latency;
    Arbiter.release t.arb;
    v

  let write t addr v =
    Arbiter.acquire t.arb;
    K.wait t.write_latency;
    Memory_map.write t.map addr v;
    t.writes <- t.writes + 1;
    t.busy_cycles <- t.busy_cycles + t.write_latency;
    Arbiter.release t.arb

  let stats t =
    {
      reads = t.reads;
      writes = t.writes;
      stalls = t.arb.Arbiter.stall_count;
      busy_cycles = t.busy_cycles;
    }

  type snap = {
    s_arb : Arbiter.snap;
    s_reads : int;
    s_writes : int;
    s_busy_cycles : int;
  }

  let snapshot t =
    {
      s_arb = Arbiter.snapshot t.arb;
      s_reads = t.reads;
      s_writes = t.writes;
      s_busy_cycles = t.busy_cycles;
    }

  let restore t s =
    Arbiter.restore t.arb s.s_arb;
    t.reads <- s.s_reads;
    t.writes <- s.s_writes;
    t.busy_cycles <- s.s_busy_cycles
end

module Pin = struct
  type t = {
    kernel : K.t;
    map : Memory_map.t;
    setup_cycles : int;
    arb : Arbiter.t;
    addr : int S.t;
    wdata_rdata : int S.t;  (** shared data bus *)
    req : int S.t;
    ack : int S.t;
    we : int S.t;
    mutable reads : int;
    mutable writes : int;
    mutable busy_cycles : int;
  }

  (* The slave side: an autonomous process decoding every request.  One
     request at a time is guaranteed by the arbiter.  A named function
     so [restore] can spawn a fresh slave for a forked timeline. *)
  let spawn_slave t =
    K.spawn ~name:"bus.slave" t.kernel (fun () ->
        let rec serve () =
          ignore (S.await t.req (fun v -> v = 1));
          let a = S.read t.addr in
          let ws = Memory_map.wait_states t.map a in
          K.wait (t.setup_cycles + ws);
          if S.read t.we = 1 then
            Memory_map.write t.map a (S.read t.wdata_rdata)
          else S.write t.wdata_rdata (Memory_map.read t.map a);
          K.wait 1;
          S.pulse t.ack 1;
          (* wait for the master to drop the request, then complete *)
          ignore (S.await t.req (fun v -> v = 0));
          S.write t.ack 0;
          serve ()
        in
        serve ())

  let create ?(setup_cycles = 1) kernel map =
    let t =
      {
        kernel;
        map;
        setup_cycles;
        arb = Arbiter.create ();
        addr = S.create ~name:"bus.addr" kernel 0;
        wdata_rdata = S.create ~name:"bus.data" kernel 0;
        req = S.create ~name:"bus.req" kernel 0;
        ack = S.create ~name:"bus.ack" kernel 0;
        we = S.create ~name:"bus.we" kernel 0;
        reads = 0;
        writes = 0;
        busy_cycles = 0;
      }
    in
    spawn_slave t;
    t

  let transfer t addr ~we ~value =
    Arbiter.acquire t.arb;
    let start = K.now t.kernel in
    S.write t.addr addr;
    S.write t.we (if we then 1 else 0);
    if we then S.write t.wdata_rdata value;
    S.pulse t.req 1;
    ignore (S.await t.ack (fun v -> v = 1));
    let result = if we then 0 else S.read t.wdata_rdata in
    S.write t.req 0;
    ignore (S.await t.ack (fun v -> v = 0));
    (* bus turnaround: the handshake release costs a cycle that the
       transaction-level model's fixed latency does not account for *)
    K.wait 1;
    t.busy_cycles <- t.busy_cycles + (K.now t.kernel - start);
    Arbiter.release t.arb;
    result

  let read t addr =
    let v = transfer t addr ~we:false ~value:0 in
    t.reads <- t.reads + 1;
    v

  let write t addr v =
    ignore (transfer t addr ~we:true ~value:v);
    t.writes <- t.writes + 1

  let stats t =
    {
      reads = t.reads;
      writes = t.writes;
      stalls = t.arb.Arbiter.stall_count;
      busy_cycles = t.busy_cycles;
    }

  type snap = {
    s_arb : Arbiter.snap;
    s_addr : int S.snap;
    s_data : int S.snap;
    s_req : int S.snap;
    s_ack : int S.snap;
    s_we : int S.snap;
    s_reads : int;
    s_writes : int;
    s_busy_cycles : int;
  }

  let snapshot t =
    if not (Arbiter.idle t.arb) then
      invalid_arg "Bus.Pin.snapshot: bus is mid-transaction (arbiter busy)";
    {
      s_arb = Arbiter.snapshot t.arb;
      s_addr = S.snapshot t.addr;
      s_data = S.snapshot t.wdata_rdata;
      s_req = S.snapshot t.req;
      s_ack = S.snapshot t.ack;
      s_we = S.snapshot t.we;
      s_reads = t.reads;
      s_writes = t.writes;
      s_busy_cycles = t.busy_cycles;
    }

  let restore t s =
    Arbiter.restore t.arb s.s_arb;
    S.restore t.addr s.s_addr;
    S.restore t.wdata_rdata s.s_data;
    S.restore t.req s.s_req;
    S.restore t.ack s.s_ack;
    S.restore t.we s.s_we;
    t.reads <- s.s_reads;
    t.writes <- s.s_writes;
    t.busy_cycles <- s.s_busy_cycles;
    (* restoring the wires dropped every waiter, abandoning the old
       slave process wherever it was blocked; serve the forked timeline
       with a fresh one *)
    spawn_slave t

  let addr_wire t = t.addr
  let data_wire t = t.wdata_rdata
  let req_wire t = t.req
  let ack_wire t = t.ack
  let we_wire t = t.we
end

type iface = {
  bus_read : int -> int;
  bus_write : int -> int -> unit;
  bus_stats : unit -> stats;
}

let tlm_iface b =
  {
    bus_read = Tlm.read b;
    bus_write = Tlm.write b;
    bus_stats = (fun () -> Tlm.stats b);
  }

let pin_iface b =
  {
    bus_read = Pin.read b;
    bus_write = Pin.write b;
    bus_stats = (fun () -> Pin.stats b);
  }

let zero_iface map =
  let reads = ref 0 and writes = ref 0 in
  {
    bus_read =
      (fun a ->
        incr reads;
        Memory_map.read map a);
    bus_write =
      (fun a v ->
        incr writes;
        Memory_map.write map a v);
    bus_stats =
      (fun () ->
        { reads = !reads; writes = !writes; stalls = 0; busy_cycles = 0 });
  }
