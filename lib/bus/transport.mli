(** First-class HW/SW interface levels — the Fig. 3 ladder as a value.

    A {!t} is one rung of the paper's interface-abstraction hierarchy
    packaged behind a uniform signature: [read]/[write] move a word
    between master and the addressed endpoint, [wait_ready] blocks the
    caller until the endpoint's status register reports readiness, and
    [stats]/[level] expose what the model cost and which rung it is.
    The record generalises {!Bus.iface} (which covered only the two bus
    rungs) so the whole ladder — pin-accurate bus, transaction-level
    bus, driver call, kernel-channel message — is an extension point
    instead of a [match] statement: co-simulation pipelines, fault
    injectors and transactors all take a {!t} and never ask which
    backend is behind it.

    {2 Endpoint convention}

    An endpoint occupies a small register window: its {e status}
    register lives at the endpoint's base address (nonzero = ready) and
    its {e data} register at base + 1.  {!Device.Stream_src} /
    {!Device.Stream_sink} regions follow this layout, as do the
    {!Mailbox} transactor regions below.

    {2 The four backends}

    - {!pin} — every access is a full request/acknowledge handshake on
      a {!Bus.Pin} bus (wait states visible; the timing reference);
    - {!tlm} — every access is an atomic fixed-latency {!Bus.Tlm}
      transfer;
    - {!driver} — a lumped driver call: readiness is observed
      functionally (free status polls), the data access costs a fixed
      overhead and bypasses the bus entirely;
    - {!message} — endpoints are kernel channels; accesses are blocking
      sends/receives with no bus traffic at all (the OS
      send/receive/wait rung).

    {2 Transactors}

    The paper's "bus interface model": adapters that let a producer at
    one rung serve a consumer at another.  {!view} re-labels a detailed
    transport for a more abstract caller (message- or TLM-level
    software driving a pin bus).  {!Mailbox} bridges a message stream
    onto the bus so a pin/TLM/driver master can consume it, and
    {!stream_to_channel} pumps a bus-mapped stream into a channel so
    message-level software can [recv] it. *)

module Kernel := Codesign_sim.Kernel
module Channel := Codesign_sim.Channel

(** {1 Levels} *)

type level = Pin | Transaction | Driver | Message

val all_levels : level list
(** Most detailed first: [[Pin; Transaction; Driver; Message]]. *)

val level_name : level -> string
(** Paper-facing name ("pin/signal", "bus transaction", ...). *)

val short_name : level -> string
(** CLI spelling: "pin" | "tlm" | "driver" | "message". *)

val level_of_string : string -> (level, string) result
(** Inverse of {!short_name}; also accepts "msg" and "transaction". *)

val rank : level -> int
(** Ladder position, 0 (pin, most detailed) .. 3 (message). *)

(** {1 The transport record} *)

type stats = {
  ops : int;  (** operations charged to the interface (reads+writes) *)
  reads : int;
  writes : int;
  stalls : int;  (** arbitration stalls (bus backends only) *)
  busy_cycles : int;  (** cycles the medium was occupied *)
}

val zero_stats : stats

type t = {
  level : level;
  lookahead : int;
      (** the backend's guaranteed minimum latency between initiating an
          access and its earliest remote effect — the lookahead a
          conservative partitioned run ({!Codesign_sim.Partition}) can
          claim when this transport is the only traffic crossing a
          partition boundary.  Per rung: {!pin} its [setup_cycles],
          {!tlm} [min read_latency write_latency], {!driver} its
          [call_cost], {!message} the minimum declared channel latency
          over its endpoints (0 when any endpoint is an immediate
          channel).  0 means "no guarantee": the transport cannot cut a
          partition boundary. *)
  read : int -> int;  (** fetch the word at an address (blocking) *)
  write : int -> int -> unit;  (** store a word at an address (blocking) *)
  wait_ready : int -> unit;
      (** block until the status register at the given address reads
          nonzero, polling with the backend's own access mechanism *)
  stats : unit -> stats;
  save : (unit -> unit -> unit) option;
      (** snapshot capability: [save ()] captures the backend's mutable
          state and returns the thunk that restores it.  [None] for
          backends without snapshot support.  Use through {!snapshot} /
          {!restore} rather than directly. *)
}

(** {1 Snapshot / restore}

    Backend state captured per rung: {!pin} the full {!Bus.Pin} state
    (wires, arbiter, counters — the bus must be idle); {!tlm} the
    {!Bus.Tlm} counters and arbiter; {!driver} its access counters;
    {!message} nothing (the record is stateless — the bound channels are
    snapshotted by whoever owns them).  The {!Memory_map} behind a bus
    rung is never captured here; snapshot it separately.  {!view} and
    record-update wrappers share the underlying [save], but a snapshot
    must be restored through the same record value it was taken from. *)

type snap

val snapshot : t -> snap
(** @raise Invalid_argument if the transport has no [save] capability
    (e.g. a bare {!of_bus_iface} adoption without [?save]). *)

val restore : t -> snap -> unit
(** @raise Invalid_argument if [snap] was taken from a different
    transport record. *)

(** {1 Backends} *)

val pin :
  ?setup_cycles:int ->
  ?poll_interval:int ->
  Kernel.t ->
  Memory_map.t ->
  t
(** Pin-accurate: wraps a fresh {!Bus.Pin} over the map (this spawns
    the bus-slave decoder process).  [wait_ready] status spins are real
    bus handshakes, [poll_interval] (default 8) cycles apart. *)

val tlm :
  ?read_latency:int ->
  ?write_latency:int ->
  ?poll_interval:int ->
  Kernel.t ->
  Memory_map.t ->
  t
(** Transaction-level: wraps a fresh {!Bus.Tlm} over the map.  Status
    spins are timed bus transfers. *)

val driver : ?call_cost:int -> ?poll_interval:int -> Memory_map.t -> t
(** Driver-call: [read]/[write] charge [call_cost] (default 6) cycles
    and then access the map directly — one lumped driver entry, no
    individual bus events.  [wait_ready] polls the map functionally
    (free reads, [poll_interval] cycles apart): device readiness is
    observed, not transacted. *)

val message :
  ?recv:(int * int Channel.t) list ->
  ?send:(int * int Channel.t) list ->
  unit ->
  t
(** Send/receive/wait: each [(base, chan)] binding maps the endpoint at
    [base] onto a kernel channel.  Reading a bound endpoint's data
    register performs a blocking [Channel.recv]; writing a bound
    endpoint's data register performs a blocking [Channel.send];
    reading the status register reports whether the data operation
    would proceed without blocking (a latency channel's send endpoint is
    always ready — it is a delay line).  [wait_ready] is a no-op (the data
    operations already block) and [stats] is {!zero_stats}: message
    traffic is kernel channel activity, not bus operations.  Accessing
    an unbound address raises [Invalid_argument]. *)

val of_bus_iface :
  level:level ->
  ?lookahead:int ->
  ?poll_interval:int ->
  ?save:(unit -> unit -> unit) ->
  Bus.iface ->
  t
(** Adopt a legacy {!Bus.iface} (or any read/write/stats triple — the
    fault layer's wrapped media enter here) as a transport at the given
    rung.  [lookahead] defaults to 0 (no partition-boundary guarantee);
    [save] (default absent) supplies the snapshot capability for
    whatever state hides behind the iface closures. *)

(** {1 Transactors} *)

val view : t -> as_:level -> t
(** The same medium presented to a caller at a more abstract rung: a
    message- or TLM-level master driving a pin-accurate bus sees its
    blocking calls expand into full handshakes underneath.  Only the
    label changes — timing and statistics are the wrapped backend's.
    Raises [Invalid_argument] when [as_] is more detailed than the
    transport's own level (abstraction can be added, not invented). *)

(** A bus-mapped mailbox fed by a kernel channel: the message→bus
    transactor.  A pump process drains the channel into a bounded FIFO
    behind a status/data register window, so any bus-level master can
    poll and read a message producer's stream without knowing a channel
    exists. *)
module Mailbox : sig
  type t

  val create :
    ?name:string -> ?depth:int -> Kernel.t -> int Channel.t -> t
  (** Spawns the pump process (default FIFO [depth] 4). *)

  val region : name:string -> base:int -> t -> Memory_map.region
  (** Status at [base] (FIFO occupancy), data at [base + 1]
      (destructive read; 0 when empty). *)

  val delivered : t -> int
  (** Words the pump has moved out of the channel so far. *)
end

val stream_to_channel :
  ?name:string ->
  Kernel.t ->
  t ->
  base:int ->
  count:int ->
  int Channel.t ->
  unit
(** The bus→message transactor: spawns a pump that performs
    [wait_ready base; read (base + 1)] through the given transport
    [count] times, forwarding each word into the channel — a bus-mapped
    stream made consumable by message-level software. *)
