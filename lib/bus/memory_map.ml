type handlers = {
  dev_read : int -> int;
  dev_write : int -> int -> unit;
  wait_states : int -> int;
}

type region_kind = Ram of int array | Rom of int array | Device of handlers
type region = { name : string; base : int; size : int; kind : region_kind }
type t = { sorted : region array }

let create regions =
  List.iter
    (fun r ->
      if r.size <= 0 then
        invalid_arg ("Memory_map: empty region " ^ r.name);
      if r.base < 0 then
        invalid_arg ("Memory_map: negative base for " ^ r.name);
      match r.kind with
      | Ram a | Rom a ->
          if Array.length a <> r.size then
            invalid_arg
              ("Memory_map: backing array size mismatch for " ^ r.name)
      | Device _ -> ())
    regions;
  let sorted =
    Array.of_list (List.sort (fun a b -> compare a.base b.base) regions)
  in
  Array.iteri
    (fun i r ->
      if i > 0 then begin
        let prev = sorted.(i - 1) in
        if prev.base + prev.size > r.base then
          invalid_arg
            (Printf.sprintf "Memory_map: regions %s and %s overlap" prev.name
               r.name)
      end)
    sorted;
  { sorted }

let regions t = Array.to_list t.sorted

let decode t addr =
  (* binary search for the region containing addr *)
  let lo = ref 0 and hi = ref (Array.length t.sorted - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.sorted.(mid) in
    if addr < r.base then hi := mid - 1
    else if addr >= r.base + r.size then lo := mid + 1
    else begin
      found := Some (r, addr - r.base);
      lo := !hi + 1
    end
  done;
  !found

(* one line of mapped windows so a decode miss is debuggable from the
   message alone *)
let describe_windows t =
  if Array.length t.sorted = 0 then "no mapped regions"
  else
    String.concat ", "
      (Array.to_list
         (Array.map
            (fun r ->
              Printf.sprintf "%s [0x%x..0x%x]" r.name r.base
                (r.base + r.size - 1))
            t.sorted))

let unmapped t what addr =
  invalid_arg
    (Printf.sprintf "Memory_map.%s: unmapped address %d (0x%x); mapped: %s"
       what addr addr (describe_windows t))

let read t addr =
  match decode t addr with
  | None -> unmapped t "read" addr
  | Some (r, off) -> (
      match r.kind with
      | Ram a | Rom a -> a.(off)
      | Device h -> h.dev_read off)

let write t addr v =
  match decode t addr with
  | None -> unmapped t "write" addr
  | Some (r, off) -> (
      match r.kind with
      | Ram a -> a.(off) <- v
      | Rom _ ->
          invalid_arg
            (Printf.sprintf "Memory_map.write: write to ROM %s" r.name)
      | Device h -> h.dev_write off v)

let wait_states t addr =
  match decode t addr with
  | Some ({ kind = Device h; _ }, off) -> h.wait_states off
  | _ -> 0

type snap = (string * int array) list

let snapshot t =
  Array.to_list t.sorted
  |> List.filter_map (fun r ->
         match r.kind with
         | Ram a | Rom a -> Some (r.name, Array.copy a)
         | Device _ -> None)

let restore t s =
  List.iter
    (fun (name, saved) ->
      match
        Array.find_opt (fun r -> r.name = name) t.sorted
      with
      | Some { kind = Ram a | Rom a; _ } when Array.length a = Array.length saved
        ->
          Array.blit saved 0 a 0 (Array.length a)
      | _ ->
          invalid_arg
            ("Memory_map.restore: no matching memory region " ^ name))
    s

let ram ~name ~base ~size = { name; base; size; kind = Ram (Array.make size 0) }
let rom ~name ~base data =
  { name; base; size = Array.length data; kind = Rom data }

let device ~name ~base ~size handlers =
  { name; base; size; kind = Device handlers }

let simple_handlers ?(wait_states = fun _ -> 0) dev_read dev_write =
  { dev_read; dev_write; wait_states }
