(** A descriptor-driven DMA engine — the bulk-transfer path that lets a
    co-processor or device move data without CPU involvement.

    Register window (word offsets): 0 SRC, 1 DST, 2 LEN,
    3 CTRL (write 1 to start), 4 STATUS (1 = done, any write clears).

    The engine is a kernel process performing word-by-word bus transfers
    through a {!Bus.iface}, so it competes for the bus with the CPU
    exactly like real hardware; completion optionally raises an
    interrupt line. *)

type t

type start_status =
  | Started  (** engine was idle; the transfer begins immediately *)
  | Queued  (** engine busy; descriptor accepted into the job queue *)
  | Rejected of string
      (** descriptor refused (queue full, negative length); the string
          says why.  Typed rather than an exception so callers — and
          fault-injection campaigns — can branch on it. *)

val create :
  ?irq:Interrupt.t * int ->
  Codesign_sim.Kernel.t ->
  Bus.iface ->
  unit ->
  t

val region : name:string -> base:int -> t -> Memory_map.region

val busy : t -> bool
val transfers_completed : t -> int
val words_moved : t -> int

val start : t -> src:int -> dst:int -> len:int -> start_status
(** Programmatic start (equivalent to writing the registers).  If the
    engine is busy the descriptor is queued (up to the queue depth of
    4); an over-full queue or a negative length yields [Rejected] —
    never an exception. *)
