module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module Pn = Codesign_ir.Process_network
module C = Codesign_ir.Cdfg
module Tg = Codesign_ir.Task_graph
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm
module Cpu = Codesign_isa.Cpu
module Hls = Codesign_hls.Hls
module Controller = Codesign_hls.Controller
module F = Codesign_rtl.Fsmd
module Cosim = Codesign.Cosim
module Partition = Codesign.Partition
module Cost = Codesign.Cost
module Tgff = Codesign_workloads.Tgff
module Checksum = Codesign_obs.Checksum

type outcome = { rtl_blocks : int; error : string option }

(* The shrinker can delete the statements that mention a result
   variable; keep [results] consistent with what the program still
   names, like {!B.vars_of} (and [Codegen.result]) require. *)
let normalize (p : B.proc) =
  let vars = B.vars_of p in
  { p with B.results = List.filter (fun v -> List.mem v vars) p.B.results }

let trace_checksum trace results =
  Checksum.of_string
    (String.concat ";"
       (List.map (fun (p, v) -> Printf.sprintf "%d:%d" p v) trace
       @ List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) results))

(* ------------------------------------------------------------------ *)
(* pretty disagreement details                                         *)
(* ------------------------------------------------------------------ *)

let show_list show l =
  let n = List.length l in
  let shown = List.filteri (fun i _ -> i < 16) l in
  "["
  ^ String.concat "; " (List.map show shown)
  ^ (if n > 16 then Printf.sprintf "; ...%d more" (n - 16) else "")
  ^ "]"

let show_trace = show_list (fun (p, v) -> Printf.sprintf "%d:%d" p v)
let show_results = show_list (fun (n, v) -> Printf.sprintf "%s=%d" n v)

let compare_level ~level ~ref_trace ~ref_results trace results =
  if trace <> ref_trace then
    Some
      (Printf.sprintf "%s port trace differs: interp %s vs %s %s" level
         (show_trace ref_trace) level (show_trace trace))
  else if results <> ref_results then
    Some
      (Printf.sprintf "%s results differ: interp %s vs %s %s" level
         (show_results ref_results) level (show_results results))
  else None

(* ------------------------------------------------------------------ *)
(* individual levels                                                   *)
(* ------------------------------------------------------------------ *)

let is_fuel_message m =
  let needle = "fuel exhausted" in
  let nl = String.length needle and ml = String.length m in
  let rec at i = i + nl <= ml && (String.sub m i nl = needle || at (i + 1)) in
  at 0

let run_interp ~fuel p =
  let io, out = B.collecting_io () in
  match B.run ~io ~fuel p [] with
  | results -> Ok (List.rev !out, results)
  | exception Invalid_argument m when is_fuel_message m -> Error `Fuel
  | exception e ->
      Error (`Raised (Printf.sprintf "interpreter raised %s" (Printexc.to_string e)))

(* Both execution tiers of the ISS run every case: the reference step
   loop ([Cpu.run]) is the oracle leg compared against the interpreter,
   and the block-compiled tier ([Cpu.run_compiled]) must agree with the
   step tier on the complete observable state — status (including trap
   messages), cycles, instret, final pc, registers, data memory and the
   port trace — whatever the outcome. *)
let tiers_disagree (step_cpu : Cpu.t) (blk_cpu : Cpu.t) step_trace blk_trace =
  let show_status = function
    | Cpu.Running -> "running"
    | Cpu.Halted -> "halted"
    | Cpu.Trapped m -> "trapped: " ^ m
  in
  let field name show a b =
    if a = b then None
    else
      Some
        (Printf.sprintf "iss-block %s differs: step %s vs block %s" name
           (show a) (show b))
  in
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  field "status" show_status (Cpu.status step_cpu) (Cpu.status blk_cpu)
  <|> (fun () ->
  field "port trace" show_trace step_trace blk_trace)
  <|> (fun () ->
  field "cycles" string_of_int (Cpu.cycles step_cpu) (Cpu.cycles blk_cpu))
  <|> (fun () ->
  field "instret" string_of_int (Cpu.instret step_cpu) (Cpu.instret blk_cpu))
  <|> (fun () -> field "pc" string_of_int (Cpu.pc step_cpu) (Cpu.pc blk_cpu))
  <|> (fun () ->
  let regs c = List.init 32 (Cpu.reg c) in
  field "regs" (show_list string_of_int) (regs step_cpu) (regs blk_cpu))
  <|> fun () ->
  let rec mem_diff a =
    if a >= 65536 then None
    else
      let va = Cpu.read_mem step_cpu a and vb = Cpu.read_mem blk_cpu a in
      if va <> vb then
        Some (Printf.sprintf "iss-block mem[%d] differs: step %d vs block %d" a va vb)
      else mem_diff (a + 1)
  in
  mem_diff 0

let run_iss ~transform_asm ~fuel p =
  match
    let items, lay = Codegen.compile p in
    let items = transform_asm items in
    (Asm.assemble items, lay)
  with
  | exception Invalid_argument m -> Error ("iss compile/assemble: " ^ m)
  | img, lay -> (
      let run_tier runner =
        let out = ref [] in
        let env =
          {
            Cpu.default_env with
            Cpu.port_out = (fun pt v -> out := (pt, v) :: !out);
          }
        in
        let cpu = Cpu.create ~env img.Asm.code in
        (* a generous statement->instruction expansion bound: agreement
           with an interpreter run of [fuel] statements never needs
           more *)
        ignore (runner ~fuel:(40 * fuel) cpu);
        (cpu, List.rev !out)
      in
      let step_cpu, trace = run_tier (fun ~fuel c -> Cpu.run ~fuel c) in
      let blk_cpu, blk_trace =
        run_tier (fun ~fuel c -> Cpu.run_compiled ~fuel c)
      in
      match tiers_disagree step_cpu blk_cpu trace blk_trace with
      | Some m -> Error m
      | None -> (
          match Cpu.status step_cpu with
          | Cpu.Halted ->
              Ok
                ( trace,
                  List.map
                    (fun v -> (v, Codegen.result lay step_cpu v))
                    p.B.results )
          | Cpu.Trapped m -> Error ("iss trapped: " ^ m)
          | Cpu.Running -> assert false))

let run_net ~mapping p =
  match
    let net = Pn.make ~name:p.B.name [ (p, mapping) ] [] in
    Cosim.run_network net
  with
  | exception e ->
      Error (Printf.sprintf "run_network raised %s" (Printexc.to_string e))
  | r when r.Cosim.net_outcome <> Cosim.Net_completed ->
      let p, m =
        match r.Cosim.net_outcome with
        | Cosim.Net_trapped (p, m) -> (p, m)
        | Cosim.Net_completed -> assert false
      in
      Error (Printf.sprintf "net: %s trapped: %s" p m)
  | r ->
      let trace =
        List.filter_map
          (fun (pr, pt, v) -> if pr = p.B.name then Some (pt, v) else None)
          r.Cosim.port_writes
      in
      let results =
        Option.value ~default:[] (List.assoc_opt p.B.name r.Cosim.sw_results)
      in
      Ok (trace, results)

(* One memory-free CDFG block through schedule/bind/controller to an
   executable FSMD, compared against the reference DFG evaluation. *)
let run_rtl_block pname (b : C.block) sched sched_name =
  let envf name =
    Int64.to_int
      (Checksum.fnv1a64 (pname ^ "/" ^ b.C.label ^ "/" ^ name))
    land 15
  in
  match Controller.eval_block_reference b ~env:envf with
  | exception Invalid_argument m ->
      Some (Printf.sprintf "block %s: reference eval: %s" b.C.label m)
  | expected -> (
      match Hls.synthesize_block ~name:b.C.label ~scheduler:sched b with
      | exception Invalid_argument m ->
          Some
            (Printf.sprintf "block %s (%s): synthesis: %s" b.C.label
               sched_name m)
      | fsmd, report -> (
          let outs : (string, int) Hashtbl.t = Hashtbl.create 8 in
          let env =
            {
              F.null_env with
              F.input = envf;
              output = (fun nm v -> Hashtbl.replace outs nm v);
            }
          in
          let init =
            List.filter_map
              (fun (o : C.op) ->
                match o.C.opcode with
                | C.Read nm when not (String.contains nm ':') ->
                    Some (nm, envf nm)
                | _ -> None)
              b.C.ops
          in
          match F.run ~env ~regs:init fsmd with
          | exception Invalid_argument m ->
              Some
                (Printf.sprintf "block %s (%s): fsmd run: %s" b.C.label
                   sched_name m)
          | r ->
              if r.F.cycles <> report.Hls.latency then
                Some
                  (Printf.sprintf
                     "block %s (%s): fsmd ran %d cycles but the HLS report \
                      claims %d"
                     b.C.label sched_name r.F.cycles report.Hls.latency)
              else
                List.fold_left
                  (fun acc (nm, v) ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                        let actual =
                          if String.contains nm ':' then
                            Hashtbl.find_opt outs nm
                          else List.assoc_opt nm r.F.final_regs
                        in
                        if actual <> Some v then
                          Some
                            (Printf.sprintf
                               "block %s (%s): %s = %s, reference says %d"
                               b.C.label sched_name nm
                               (match actual with
                               | Some a -> string_of_int a
                               | None -> "<missing>")
                               v)
                        else None)
                  None expected))

let check_rtl p =
  match B.elaborate p with
  | exception Invalid_argument m -> (0, Some ("elaborate: " ^ m))
  | cdfg ->
      let memory_free (b : C.block) =
        b.C.ops <> []
        && List.for_all
             (fun (o : C.op) ->
               match o.C.opcode with
               | C.Load _ | C.Store _ -> false
               | _ -> true)
             b.C.ops
      in
      (* [eval_block_reference] models io names as registers (writes
         forward to later reads, last write wins) while the FSMD reads
         ports externally and leaves same-port writes unordered in the
         schedule — so any io access after a write to the same name is
         outside the per-block contract.  Port-write ordering is still
         verified end-to-end by the interpreter/ISS/network levels. *)
      let io_hazard_free (b : C.block) =
        let written : (string, unit) Hashtbl.t = Hashtbl.create 4 in
        List.for_all
          (fun (o : C.op) ->
            match o.C.opcode with
            | C.Read nm when String.contains nm ':' ->
                not (Hashtbl.mem written nm)
            | C.Write nm when String.contains nm ':' ->
                if Hashtbl.mem written nm then false
                else begin
                  Hashtbl.add written nm ();
                  true
                end
            | _ -> true)
          b.C.ops
      in
      let blocks =
        List.filter
          (fun b -> memory_free b && io_hazard_free b)
          cdfg.C.blocks
      in
      let checked = ref 0 and err = ref None in
      List.iter
        (fun b ->
          List.iter
            (fun (sched, sched_name) ->
              if !err = None then begin
                incr checked;
                err := run_rtl_block p.B.name b sched sched_name
              end)
            [
              (Hls.List_sched Hls.default_resources, "list");
              (Hls.Asap_sched, "asap");
            ])
        blocks;
      (!checked, !err)

(* ------------------------------------------------------------------ *)
(* the cross-level behaviour check                                     *)
(* ------------------------------------------------------------------ *)

let check_behavior ?(transform_asm = fun items -> items) ?(fuel = 300_000) p =
  let p = normalize p in
  match run_interp ~fuel p with
  | Error `Fuel -> { rtl_blocks = 0; error = None } (* vacuous: no oracle *)
  | Error (`Raised m) -> { rtl_blocks = 0; error = Some m }
  | Ok (ref_trace, ref_results) -> (
      let cmp level = function
        | Error m -> Some m
        | Ok (trace, results) ->
            compare_level ~level ~ref_trace ~ref_results trace results
      in
      match cmp "iss" (run_iss ~transform_asm ~fuel p) with
      | Some e -> { rtl_blocks = 0; error = Some e }
      | None -> (
          (* only reached when the compiled code agrees and halts, so
             the fuel-less co-simulated CPU below cannot run away *)
          match cmp "net-sw" (run_net ~mapping:Pn.Sw p) with
          | Some e -> { rtl_blocks = 0; error = Some e }
          | None -> (
              let hw_err =
                match run_net ~mapping:Pn.Hw p with
                | Error m -> Some m
                | Ok (trace, _) ->
                    (* hardware processes expose no result variables;
                       the epilogue port stream carries the outcome *)
                    if trace <> ref_trace then
                      Some
                        (Printf.sprintf
                           "net-hw port trace differs: interp %s vs net-hw %s"
                           (show_trace ref_trace) (show_trace trace))
                    else None
              in
              match hw_err with
              | Some e -> { rtl_blocks = 0; error = Some e }
              | None ->
                  let rtl_blocks, error = check_rtl p in
                  { rtl_blocks; error })))

(* ------------------------------------------------------------------ *)
(* the abstraction ladder                                              *)
(* ------------------------------------------------------------------ *)

let check_ladder rng =
  let items, work, src_period, sink_period = Gen.echo_params rng in
  let where =
    Printf.sprintf "(items=%d work=%d src=%d sink=%d)" items work src_period
      sink_period
  in
  match
    List.map
      (fun level ->
        Cosim.run_echo_system ~level ~items ~work ~src_period ~sink_period ())
      [ Cosim.Pin; Cosim.Transaction; Cosim.Driver; Cosim.Message ]
  with
  | exception e ->
      Some (Printf.sprintf "echo system raised %s %s" (Printexc.to_string e) where)
  | [ pin; tlm; drv; msg ] ->
      let levels = [ pin; tlm; drv; msg ] in
      let bad_outcome =
        List.find_opt (fun m -> m.Cosim.outcome <> Cosim.Completed) levels
      in
      let bad_checksum =
        List.find_opt (fun m -> m.Cosim.checksum <> pin.Cosim.checksum) levels
      in
      let chain name get l =
        let rec go = function
          | a :: (b :: _ as rest) ->
              if get a < get b then
                Some
                  (Printf.sprintf "%s not non-increasing up the ladder: %s %d < %s %d %s"
                     name
                     (Cosim.level_name a.Cosim.level)
                     (get a)
                     (Cosim.level_name b.Cosim.level)
                     (get b) where)
              else go rest
          | _ -> None
        in
        go l
      in
      let ( <|> ) a b = match a with Some _ -> a | None -> b () in
      (match bad_outcome with
      | Some m ->
          let reason =
            match m.Cosim.outcome with
            | Cosim.Not_halted r | Cosim.Exhausted r -> r
            | Cosim.Completed -> assert false
          in
          Some
            (Printf.sprintf "did not complete at %s: %s %s"
               (Cosim.level_name m.Cosim.level) reason where)
      | None -> None)
      <|> (fun () ->
      match bad_checksum with
      | Some m ->
          Some
            (Printf.sprintf "checksum differs at %s: %d vs pin %d %s"
               (Cosim.level_name m.Cosim.level)
               m.Cosim.checksum pin.Cosim.checksum where)
      | None -> None)
      <|> (fun () -> chain "events" (fun m -> m.Cosim.events) levels)
      <|> (fun () -> chain "activations" (fun m -> m.Cosim.activations) levels)
      <|> fun () ->
      (* abstracted timing is an estimate that can land on either side
         of the pin-accurate count, so simulated time is held to the
         same relative-error bounds the flow tests use rather than to
         strict monotonicity *)
      let timing_err m =
        abs_float
          (float_of_int (m.Cosim.sim_cycles - pin.Cosim.sim_cycles)
          /. float_of_int (max 1 pin.Cosim.sim_cycles))
      in
      let bound m limit =
        if timing_err m >= limit then
          Some
            (Printf.sprintf
               "%s sim time err %.3f >= %.1f vs pin (%d vs %d) %s"
               (Cosim.level_name m.Cosim.level)
               (timing_err m) limit m.Cosim.sim_cycles pin.Cosim.sim_cycles
               where)
        else None
      in
      (match bound tlm 0.5 with Some e -> Some e | None -> bound drv 1.0)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* mixed-level assignments                                             *)
(* ------------------------------------------------------------------ *)

let all_levels = [ Cosim.Pin; Cosim.Transaction; Cosim.Driver; Cosim.Message ]

let bump = function
  | Cosim.Pin -> Cosim.Transaction
  | Cosim.Transaction -> Cosim.Driver
  | Cosim.Driver -> Cosim.Message
  | Cosim.Message -> Cosim.Message

(* Raising a component must never make simulation dearer — except the
   sink interface's step onto Message, which swaps a passive bus-mapped
   device for an active endpoint process and may add its (small)
   scheduling cost; that edge is excluded from the oracle's
   monotonicity claim and covered by the property tests' bound
   instead. *)
let check_mixed rng =
  let items, work, src_period, sink_period = Gen.echo_params rng in
  let pick () = List.nth all_levels (Rng.int rng 4) in
  let a = { Cosim.src = pick (); cpu = pick (); sink = pick () } in
  let raises =
    (if a.Cosim.src <> Cosim.Message then
       [ { a with Cosim.src = bump a.Cosim.src } ]
     else [])
    @ (if a.Cosim.cpu <> Cosim.Message then
         [ { a with Cosim.cpu = bump a.Cosim.cpu } ]
       else [])
    @
    match a.Cosim.sink with
    | Cosim.Pin | Cosim.Transaction ->
        [ { a with Cosim.sink = bump a.Cosim.sink } ]
    | Cosim.Driver | Cosim.Message -> []
  in
  let partner =
    match raises with
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let where =
    Printf.sprintf "(items=%d work=%d src=%d sink=%d)" items work src_period
      sink_period
  in
  let run levels =
    Cosim.run_echo_assignment ~levels ~items ~work ~src_period ~sink_period
      ()
  in
  match
    let pin = run (Cosim.pure Cosim.Pin) in
    let m = run a in
    let m' = Option.map run partner in
    (pin, m, m')
  with
  | exception e ->
      Some
        (Printf.sprintf "mixed echo system raised %s %s"
           (Printexc.to_string e) where)
  | pin, m, m' ->
      let ( <|> ) a b = match a with Some _ -> a | None -> b () in
      let basic (m : Cosim.metrics) =
        let name = Cosim.assignment_name m.Cosim.assignment in
        (match m.Cosim.outcome with
        | Cosim.Completed -> None
        | Cosim.Not_halted r | Cosim.Exhausted r ->
            Some
              (Printf.sprintf "mixed %s did not complete: %s %s" name r
                 where))
        <|> (fun () ->
        if m.Cosim.checksum <> pin.Cosim.checksum then
          Some
            (Printf.sprintf "mixed %s checksum %d <> pin %d %s" name
               m.Cosim.checksum pin.Cosim.checksum where)
        else None)
        <|> fun () ->
        let msg_only =
          m.Cosim.assignment.Cosim.src = Cosim.Message
          && m.Cosim.assignment.Cosim.sink = Cosim.Message
        in
        if (m.Cosim.bus_ops = 0) <> msg_only then
          Some
            (Printf.sprintf
               "mixed %s bus_ops %d inconsistent with its interfaces %s"
               name m.Cosim.bus_ops where)
        else None
      in
      basic m
      <|> (fun () -> Option.bind m' basic)
      <|> (fun () ->
      (* temporal decoupling must be functionally invisible: the same
         assignment run with a 64-cycle quantum completes with the same
         checksum (timing metrics may legitimately differ) *)
      match
        Cosim.run_echo_assignment ~levels:a ~items ~work ~src_period
          ~sink_period ~quantum:64 ()
      with
      | exception e ->
          Some
            (Printf.sprintf "quantum=64 echo system raised %s %s"
               (Printexc.to_string e) where)
      | mq ->
          if mq.Cosim.outcome <> Cosim.Completed then
            Some
              (Printf.sprintf "quantum=64 %s did not complete %s"
                 (Cosim.assignment_name a) where)
          else if mq.Cosim.checksum <> m.Cosim.checksum then
            Some
              (Printf.sprintf "quantum=64 %s checksum %d <> quantum=1 %d %s"
                 (Cosim.assignment_name a) mq.Cosim.checksum m.Cosim.checksum
                 where)
          else None)
      <|> fun () ->
      Option.bind m' (fun m' ->
          let worse what get =
            if get m' > get m then
              Some
                (Printf.sprintf
                   "%s grew raising a component: %s %d -> %s %d %s" what
                   (Cosim.assignment_name m.Cosim.assignment)
                   (get m)
                   (Cosim.assignment_name m'.Cosim.assignment)
                   (get m') where)
            else None
          in
          match worse "events" (fun m -> m.Cosim.events) with
          | Some e -> Some e
          | None -> worse "activations" (fun m -> m.Cosim.activations))

(* ------------------------------------------------------------------ *)
(* task-graph / partitioner cross-checks                               *)
(* ------------------------------------------------------------------ *)

let check_taskgraph rng =
  let spec = Gen.tgff_spec rng in
  let g = Tgff.generate spec in
  let max_area =
    if Rng.bool rng then None
    else
      let all_hw = Cost.evaluate g (Cost.all_hw g) in
      Some (1 + Rng.int rng (max 1 all_hw.Cost.hw_area))
  in
  let sa_seed = Rng.int rng 100_000 in
  let run_alg name =
    match name with
    | "greedy" -> Partition.greedy ?max_area g
    | "kl" -> Partition.kl ?max_area g
    | "gclp" -> Partition.gclp ?max_area g
    | "sa" -> Partition.simulated_annealing ?max_area ~seed:sa_seed g
    | _ -> assert false
  in
  let where name =
    Printf.sprintf "(%s, tgff seed=%d n=%d%s)" name spec.Tgff.seed
      spec.Tgff.n_tasks
      (match max_area with
      | Some a -> Printf.sprintf " budget=%d" a
      | None -> "")
  in
  let optimum =
    if Tg.n_tasks g <= 10 then Some (Partition.exhaustive ?max_area g)
    else None
  in
  let all_sw_latency = (Cost.evaluate g (Cost.all_sw g)).Cost.latency in
  let check_one name =
    match run_alg name with
    | exception e ->
        Some
          (Printf.sprintf "partitioner raised %s %s" (Printexc.to_string e)
             (where name))
    | r ->
        if not (Partition.respects_budget ~max_area g r.Partition.partition)
        then Some ("area budget violated " ^ where name)
        else if Cost.evaluate g r.Partition.partition <> r.Partition.eval then
          Some ("reported eval differs from recomputation " ^ where name)
        else if r.Partition.eval.Cost.latency <= 0 then
          Some ("non-positive latency " ^ where name)
        else if r.Partition.eval.Cost.all_sw_latency <> all_sw_latency then
          Some ("all-SW latency inconsistent " ^ where name)
        else if
          (run_alg name).Partition.objective <> r.Partition.objective
        then Some ("non-deterministic result " ^ where name)
        else
          match optimum with
          | Some ex
            when ex.Partition.objective > r.Partition.objective +. 1e-9 ->
              Some
                (Printf.sprintf
                   "heuristic beat the exhaustive optimum: %g < %g %s"
                   r.Partition.objective ex.Partition.objective (where name))
          | _ -> None
  in
  List.fold_left
    (fun acc name -> match acc with Some _ -> acc | None -> check_one name)
    None
    [ "greedy"; "kl"; "gclp"; "sa" ]
