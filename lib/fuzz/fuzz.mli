(** The fuzzing campaign driver.

    {!run} executes [count] cases.  Case [i] derives its own generator
    from [seed + i], so any failure is replayable in isolation:
    [run ~seed:(seed + i) ~count:1 ()] regenerates exactly the failing
    input.  The low bits of the case seed pick the domain — one case in
    sixteen exercises the echo-system abstraction ladder, two in
    sixteen the task-graph partitioners, the rest generated behaviours
    through {!Diff.check_behavior}.

    A disagreeing behaviour is first minimised with {!Shrink.minimize}
    (keeping the oracle's verdict as the predicate) and reported with
    its pretty-printed source and shrunk statement count.

    [fault] (default off) additionally routes two of the sixteen
    dispatch slots to the fault-injection oracles of
    {!Codesign_fault.Oracle}: one checks campaign-cell determinism and
    accounting invariants, the other pushes a generated behaviour's
    output trace through the fault-injected ARQ channel transport —
    and shrinks the behaviour on divergence, so fault-triggered
    counterexamples minimise exactly like functional ones.

    [jobs] (default 1) shards the corpus over a
    {!Codesign_par.Domain_pool}, one task per case.  Each case already
    owns an independent generator derived from the root seed
    ([Rng.create (seed + i)]) and builds its own simulation worlds, so
    the per-case outcomes are pure functions of the case seed; the pool
    merges them back by case index, which makes the resulting
    {!Codesign_obs.Fuzz_report.t} — counters, failure list and failure
    order — identical at every [jobs] (only [wall_s] reflects the real
    elapsed time).  Enforced by [test/test_parallel.ml] and the CI
    [cmp] step.

    [policy] and [deadline_ms] make the run degrade instead of abort: a
    case whose harness {e raises} is retried in place up to
    [policy.max_retries] times on the worker that claimed it, and a
    case still failing — or not yet started when the wall deadline
    passes — is recorded in the report's [degraded] list (keyed by case
    seed, with the error and attempt count) while the campaign
    completes.  The category counters count completed cases only.
    With the default {!Codesign_resil.Policy.no_retry} and no deadline,
    a raising harness degrades after one attempt.  Degraded entries are
    jobs-invariant; deadline cut-offs are inherently wall-dependent and
    meant as a CI safety net, not for byte-compared runs.

    [transform_asm] is threaded through to {!Diff.check_behavior} for
    bug-injection tests. *)

val run :
  ?seed:int ->
  ?count:int ->
  ?fault:bool ->
  ?jobs:int ->
  ?policy:Codesign_resil.Policy.t ->
  ?deadline_ms:int ->
  ?transform_asm:
    (Codesign_isa.Asm.item list -> Codesign_isa.Asm.item list) ->
  unit ->
  Codesign_obs.Fuzz_report.t
(** Defaults: [seed = 42], [count = 200], [fault = false], [jobs = 1],
    [policy = Codesign_resil.Policy.no_retry], no deadline. *)
