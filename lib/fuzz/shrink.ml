module B = Codesign_ir.Behavior

(* All traversals below visit statements and expression nodes in the
   same pre-order, so a position computed by flattening the original
   program addresses the same node during an edit. *)

let rec flat_stmts stmts =
  List.concat_map
    (fun s ->
      s
      ::
      (match s with
      | B.If (_, a, b) -> flat_stmts a @ flat_stmts b
      | B.While (_, body, _) -> flat_stmts body
      | B.For (_, _, _, body) -> flat_stmts body
      | _ -> []))
    stmts

(* Replace the statement at pre-order position [target] with the
   statement list [f s]; the replacement's children are not visited. *)
let rec edit_stmts target counter f stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
      let here = !counter in
      incr counter;
      let s' =
        if here = target then f s
        else
          match s with
          | B.If (c, a, b) ->
              let a = edit_stmts target counter f a in
              let b = edit_stmts target counter f b in
              [ B.If (c, a, b) ]
          | B.While (c, body, t) ->
              [ B.While (c, edit_stmts target counter f body, t) ]
          | B.For (v, lo, hi, body) ->
              [ B.For (v, lo, hi, edit_stmts target counter f body) ]
          | s -> [ s ]
      in
      s' @ edit_stmts target counter f rest

let rec flat_expr e =
  e
  ::
  (match e with
  | B.Int _ | B.Var _ -> []
  | B.Idx (_, i) -> flat_expr i
  | B.Bin (_, x, y) -> flat_expr x @ flat_expr y
  | B.Neg x | B.Not x -> flat_expr x
  | B.Ext (_, a, x, y) -> flat_expr a @ flat_expr x @ flat_expr y)

let rec exprs_of_stmt s =
  match s with
  | B.Assign (_, e) | B.PortOut (_, e) | B.Send (_, e) -> [ e ]
  | B.Store (_, i, v) -> [ i; v ]
  | B.If (c, a, b) -> (c :: exprs_of_block a) @ exprs_of_block b
  | B.While (c, body, _) -> c :: exprs_of_block body
  | B.For (_, lo, hi, body) -> lo :: hi :: exprs_of_block body
  | B.PortIn _ | B.Recv _ -> []

and exprs_of_block b = List.concat_map exprs_of_stmt b

let rec map_expr target counter repl e =
  let here = !counter in
  incr counter;
  if here = target then repl
  else
    match e with
    | B.Int _ | B.Var _ -> e
    | B.Idx (a, i) -> B.Idx (a, map_expr target counter repl i)
    | B.Bin (op, x, y) ->
        let x = map_expr target counter repl x in
        let y = map_expr target counter repl y in
        B.Bin (op, x, y)
    | B.Neg x -> B.Neg (map_expr target counter repl x)
    | B.Not x -> B.Not (map_expr target counter repl x)
    | B.Ext (o, a, x, y) ->
        let a = map_expr target counter repl a in
        let x = map_expr target counter repl x in
        let y = map_expr target counter repl y in
        B.Ext (o, a, x, y)

(* explicit recursion: the expression counter must advance in program
   order, which [List.map] does not guarantee *)
let rec map_block g stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
      let s = map_stmt g s in
      s :: map_block g rest

and map_stmt g s =
  match s with
  | B.Assign (v, e) -> B.Assign (v, g e)
  | B.Store (a, i, v) ->
      let i = g i in
      let v = g v in
      B.Store (a, i, v)
  | B.If (c, a, b) ->
      let c = g c in
      let a = map_block g a in
      let b = map_block g b in
      B.If (c, a, b)
  | B.While (c, body, t) ->
      let c = g c in
      B.While (c, map_block g body, t)
  | B.For (v, lo, hi, body) ->
      let lo = g lo in
      let hi = g hi in
      B.For (v, lo, hi, map_block g body)
  | B.PortOut (p, e) -> B.PortOut (p, g e)
  | B.Send (c, e) -> B.Send (c, g e)
  | (B.PortIn _ | B.Recv _) as s -> s

let stmt_variants s =
  match s with
  | B.If (_, a, b) -> [ []; a; b ]
  | B.While (_, body, _) -> [ []; body ]
  | B.For (_, _, _, body) -> [ []; body ]
  | _ -> [ [] ]

let expr_choices e =
  let subs =
    match e with
    | B.Int _ | B.Var _ -> []
    | B.Idx (_, i) -> [ i ]
    | B.Bin (_, x, y) -> [ x; y ]
    | B.Neg x | B.Not x -> [ x ]
    | B.Ext (_, a, x, y) -> [ a; x; y ]
  in
  let consts = match e with B.Int _ -> [] | _ -> [ B.Int 0; B.Int 1 ] in
  List.filter (fun c -> c <> e) (subs @ consts)

let candidates (p : B.proc) : B.proc Seq.t =
  let stmt_cands =
    List.to_seq (flat_stmts p.B.body)
    |> Seq.mapi (fun k s -> (k, s))
    |> Seq.concat_map (fun (k, s) ->
           List.to_seq (stmt_variants s)
           |> Seq.map (fun v ->
                  let counter = ref 0 in
                  {
                    p with
                    B.body = edit_stmts k counter (fun _ -> v) p.B.body;
                  }))
  in
  let expr_cands =
    List.to_seq (List.concat_map flat_expr (exprs_of_block p.B.body))
    |> Seq.mapi (fun j e -> (j, e))
    |> Seq.concat_map (fun (j, e) ->
           List.to_seq (expr_choices e)
           |> Seq.map (fun repl ->
                  let counter = ref 0 in
                  { p with B.body = map_block (map_expr j counter repl) p.B.body }))
  in
  Seq.append stmt_cands expr_cands

let minimize ?(max_evals = 2000) ~keep p0 =
  let evals = ref 0 in
  let keep p =
    if !evals >= max_evals then false
    else begin
      incr evals;
      keep p
    end
  in
  let rec loop p =
    if !evals >= max_evals then p
    else
      match Seq.find keep (candidates p) with
      | Some p' -> loop p'
      | None -> p
  in
  loop p0
