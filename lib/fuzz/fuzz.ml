module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module Fuzz_report = Codesign_obs.Fuzz_report
module Clock = Codesign_obs.Clock

let pp_program p = Format.asprintf "%a" B.pp p

(* Case [i] runs from generator [seed + i]: the whole campaign is one
   flat space of independently replayable cases. *)
let dispatch case_seed = case_seed land 15

let run ?(seed = 42) ?(count = 200) ?(fault = false) ?transform_asm () =
  let t0 = Clock.now_ns () in
  let failures = ref [] in
  let behavior_cases = ref 0
  and ladder_cases = ref 0
  and taskgraph_cases = ref 0
  and fault_cases = ref 0
  and rtl_blocks = ref 0 in
  let fail ~category ~case_seed ?program ?shrunk_stmts detail =
    failures :=
      {
        Fuzz_report.f_category = category;
        f_seed = case_seed;
        f_detail = detail;
        f_program = program;
        f_shrunk_stmts = shrunk_stmts;
      }
      :: !failures
  in
  let behavior_case ~case_seed rng =
    incr behavior_cases;
    let p = Gen.behavior rng in
    let check q = Diff.check_behavior ?transform_asm q in
    let outcome = check p in
    rtl_blocks := !rtl_blocks + outcome.Diff.rtl_blocks;
    match outcome.Diff.error with
    | None -> ()
    | Some _ ->
        let keep q = (check q).Diff.error <> None in
        let small = Diff.normalize (Shrink.minimize ~keep p) in
        let detail =
          match (check small).Diff.error with
          | Some d -> d
          | None -> "unstable failure: shrunk program agrees"
        in
        fail ~category:"behavior" ~case_seed ~program:(pp_program small)
          ~shrunk_stmts:(B.static_stmts small) detail
  in
  (* Fault mode (off by default): slot 3 checks the fault-campaign
     machinery's own invariants, slot 4 pushes a generated behaviour's
     output trace through the fault-injected ARQ transport — a failing
     transport case shrinks like any behaviour case. *)
  let fault_campaign_case ~case_seed rng =
    incr fault_cases;
    Option.iter
      (fun d -> fail ~category:"fault" ~case_seed d)
      (Codesign_fault.Oracle.check_campaign rng)
  in
  let fault_transport_case ~case_seed rng =
    incr fault_cases;
    let p = Gen.behavior rng in
    let check q = Codesign_fault.Oracle.check_transport ~seed:case_seed q in
    match check p with
    | None -> ()
    | Some _ ->
        let keep q = check q <> None in
        let small = Diff.normalize (Shrink.minimize ~keep p) in
        let detail =
          match check small with
          | Some d -> d
          | None -> "unstable failure: shrunk program agrees"
        in
        fail ~category:"fault" ~case_seed ~program:(pp_program small)
          ~shrunk_stmts:(B.static_stmts small) detail
  in
  for i = 0 to count - 1 do
    let case_seed = seed + i in
    let rng = Rng.create case_seed in
    match dispatch case_seed with
    | 0 ->
        incr ladder_cases;
        (* pure rungs first, then a mixed grid point from the same
           case's stream — one failure per case, ladder category *)
        Option.iter
          (fun d -> fail ~category:"ladder" ~case_seed d)
          (match Diff.check_ladder rng with
          | Some d -> Some d
          | None -> Diff.check_mixed rng)
    | 1 | 2 ->
        incr taskgraph_cases;
        Option.iter
          (fun d -> fail ~category:"taskgraph" ~case_seed d)
          (Diff.check_taskgraph rng)
    | 3 when fault -> fault_campaign_case ~case_seed rng
    | 4 when fault -> fault_transport_case ~case_seed rng
    | _ -> behavior_case ~case_seed rng
  done;
  {
    Fuzz_report.schema_version = Fuzz_report.schema_version;
    seed;
    count;
    behavior_cases = !behavior_cases;
    ladder_cases = !ladder_cases;
    taskgraph_cases = !taskgraph_cases;
    fault_cases = !fault_cases;
    rtl_blocks = !rtl_blocks;
    wall_s = Clock.elapsed_s ~since:t0;
    failures = List.rev !failures;
  }
