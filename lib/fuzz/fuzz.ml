module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module Fuzz_report = Codesign_obs.Fuzz_report
module Degraded = Codesign_obs.Degraded
module Clock = Codesign_obs.Clock

let pp_program p = Format.asprintf "%a" B.pp p

(* Case [i] runs from generator [seed + i]: the whole campaign is one
   flat space of independently replayable cases.  Each case owns its
   generator and builds its own kernels/worlds, so cases are also the
   unit of domain-parallelism — [run ~jobs:n] shards them over a
   {!Codesign_par.Domain_pool} and merges the per-case outcomes by
   index, reproducing the serial report exactly. *)
let dispatch case_seed = case_seed land 15

type category = Behavior | Ladder | Taskgraph | Fault_cat

(* Everything one case contributes to the report, in case order. *)
type case_result = {
  cr_category : category;
  cr_rtl_blocks : int;
  cr_failures : Fuzz_report.failure list;
}

let failure ~category ~case_seed ?program ?shrunk_stmts detail =
  {
    Fuzz_report.f_category = category;
    f_seed = case_seed;
    f_detail = detail;
    f_program = program;
    f_shrunk_stmts = shrunk_stmts;
  }

let behavior_case ?transform_asm ~case_seed rng =
  let p = Gen.behavior rng in
  let check q = Diff.check_behavior ?transform_asm q in
  let outcome = check p in
  let failures =
    match outcome.Diff.error with
    | None -> []
    | Some _ ->
        let keep q = (check q).Diff.error <> None in
        let small = Diff.normalize (Shrink.minimize ~keep p) in
        let detail =
          match (check small).Diff.error with
          | Some d -> d
          | None -> "unstable failure: shrunk program agrees"
        in
        [
          failure ~category:"behavior" ~case_seed
            ~program:(pp_program small)
            ~shrunk_stmts:(B.static_stmts small) detail;
        ]
  in
  {
    cr_category = Behavior;
    cr_rtl_blocks = outcome.Diff.rtl_blocks;
    cr_failures = failures;
  }

let ladder_case ~case_seed rng =
  (* pure rungs first, then a mixed grid point from the same case's
     stream — one failure per case, ladder category *)
  let failures =
    match
      (match Diff.check_ladder rng with
      | Some d -> Some d
      | None -> Diff.check_mixed rng)
    with
    | None -> []
    | Some d -> [ failure ~category:"ladder" ~case_seed d ]
  in
  { cr_category = Ladder; cr_rtl_blocks = 0; cr_failures = failures }

let taskgraph_case ~case_seed rng =
  let failures =
    match Diff.check_taskgraph rng with
    | None -> []
    | Some d -> [ failure ~category:"taskgraph" ~case_seed d ]
  in
  { cr_category = Taskgraph; cr_rtl_blocks = 0; cr_failures = failures }

(* Fault mode (off by default): slot 3 checks the fault-campaign
   machinery's own invariants, slot 4 pushes a generated behaviour's
   output trace through the fault-injected ARQ transport — a failing
   transport case shrinks like any behaviour case. *)
let fault_campaign_case ~case_seed rng =
  let failures =
    match Codesign_fault.Oracle.check_campaign rng with
    | None -> []
    | Some d -> [ failure ~category:"fault" ~case_seed d ]
  in
  { cr_category = Fault_cat; cr_rtl_blocks = 0; cr_failures = failures }

let fault_transport_case ~case_seed rng =
  let p = Gen.behavior rng in
  let check q = Codesign_fault.Oracle.check_transport ~seed:case_seed q in
  let failures =
    match check p with
    | None -> []
    | Some _ ->
        let keep q = check q <> None in
        let small = Diff.normalize (Shrink.minimize ~keep p) in
        let detail =
          match check small with
          | Some d -> d
          | None -> "unstable failure: shrunk program agrees"
        in
        [
          failure ~category:"fault" ~case_seed ~program:(pp_program small)
            ~shrunk_stmts:(B.static_stmts small) detail;
        ]
  in
  { cr_category = Fault_cat; cr_rtl_blocks = 0; cr_failures = failures }

let run_case ?transform_asm ~fault case_seed =
  let rng = Rng.create case_seed in
  match dispatch case_seed with
  | 0 -> ladder_case ~case_seed rng
  | 1 | 2 -> taskgraph_case ~case_seed rng
  | 3 when fault -> fault_campaign_case ~case_seed rng
  | 4 when fault -> fault_transport_case ~case_seed rng
  | _ -> behavior_case ?transform_asm ~case_seed rng

let run ?(seed = 42) ?(count = 200) ?(fault = false) ?(jobs = 1)
    ?(policy = Codesign_resil.Policy.no_retry) ?deadline_ms ?transform_asm () =
  let t0 = Clock.now_ns () in
  let budget = Codesign_resil.Budget.create ?deadline_ms () in
  let cases = Array.init count (fun i -> seed + i) in
  (* Degradation instead of abort: a case whose harness raises is
     retried in place per [policy]; still failing (or queued past the
     wall deadline) it becomes a [degraded] report entry keyed by its
     case seed, and the campaign completes.  [Budget.past_deadline] is
     a pure monotonic-clock read, safe from any worker domain. *)
  let attempt case_seed =
    if Codesign_resil.Budget.past_deadline budget then
      Error (case_seed, { Degraded.error = "deadline exceeded"; attempts = 0; elapsed = 0 })
    else Ok (run_case ?transform_asm ~fault case_seed)
  in
  let outcomes =
    Codesign_par.Domain_pool.map_result ~jobs
      ~name:(fun i -> Printf.sprintf "fuzz case seed %d" cases.(i))
      ~retries:policy.Codesign_resil.Policy.max_retries attempt cases
  in
  let results =
    Array.to_list outcomes
    |> List.filter_map (function Ok (Ok r) -> Some r | _ -> None)
  in
  let degraded =
    Array.to_list outcomes
    |> List.filter_map (function
         | Ok (Ok _) -> None
         | Ok (Error cut_off) -> Some cut_off
         | Error { Codesign_par.Domain_pool.index; message; attempts; _ } ->
             Some
               (cases.(index), { Degraded.error = message; attempts; elapsed = 0 }))
  in
  let count_cat c =
    List.fold_left
      (fun acc r -> if r.cr_category = c then acc + 1 else acc)
      0 results
  in
  {
    Fuzz_report.schema_version = Fuzz_report.schema_version;
    seed;
    count;
    behavior_cases = count_cat Behavior;
    ladder_cases = count_cat Ladder;
    taskgraph_cases = count_cat Taskgraph;
    fault_cases = count_cat Fault_cat;
    rtl_blocks = List.fold_left (fun acc r -> acc + r.cr_rtl_blocks) 0 results;
    wall_s = Clock.elapsed_s ~since:t0;
    failures = List.concat_map (fun r -> r.cr_failures) results;
    degraded;
  }
