(** The differential oracle: one generated input, every abstraction
    level, zero disagreement.

    {!check_behavior} runs a closed behaviour through the four
    implementation paths that claim identical function:

    + the {!Codesign_ir.Behavior} interpreter (reference),
    + {!Codesign_isa.Codegen} + the cycle-counting CPU ISS — on {e both}
      execution tiers: the reference step loop is the leg compared
      against the interpreter, and the block-compiled tier
      ({!Codesign_isa.Cpu.run_compiled}) must additionally agree with
      the step tier on the complete machine state — status and trap
      message, cycles, instret, final pc, registers, data memory and
      port trace — whatever the outcome,
    + {!Codesign.Cosim.run_network} with the process mapped to software
      (ISS under the co-simulation kernel) and again mapped to hardware
      (timed behavioural thread),
    + {!Codesign_hls.Hls.synthesize_block} + {!Codesign_rtl.Fsmd.run}
      for every memory-free, io-hazard-free data-flow block, under two
      schedulers, against
      {!Codesign_hls.Controller.eval_block_reference}.

    Outcomes are compared as FNV-1a checksums over the (port, value)
    output trace and the result variables; any mismatch (or a trap,
    or an FSMD whose cycle count disagrees with its HLS report) is a
    disagreement.

    {!check_ladder} runs the echo system at all four Fig. 3 levels and
    asserts the paper's ladder invariants: identical functional
    checksum, events and activations non-increasing up the ladder, and
    simulated-time estimates within the flow tests' relative-error
    bounds of the pin-accurate count (abstracted timing can land on
    either side of it, so strict monotonicity only holds for simulator
    effort).

    {!check_taskgraph} cross-checks the partitioners on a random task
    graph: reported evaluations match a recomputation, budgets are
    respected, runs are deterministic, and on small graphs no heuristic
    beats {!Codesign.Partition.exhaustive}. *)

type outcome = {
  rtl_blocks : int;  (** FSMD blocks differentially executed *)
  error : string option;  (** [Some detail] on the first disagreement *)
}

val normalize : Codesign_ir.Behavior.proc -> Codesign_ir.Behavior.proc
(** Restrict [results] to variables the program still mentions — shrink
    candidates can delete every use of a result variable, and
    [Codegen.result] rejects unknown names. *)

val trace_checksum : (int * int) list -> (string * int) list -> string
(** FNV-1a hex over the port trace and result bindings (the functional
    fingerprint compared across levels). *)

val check_behavior :
  ?transform_asm:
    (Codesign_isa.Asm.item list -> Codesign_isa.Asm.item list) ->
  ?fuel:int ->
  Codesign_ir.Behavior.proc ->
  outcome
(** [transform_asm] edits the compiled program before assembly — the
    bug-injection hook the test suite uses to prove the oracle catches
    a miscompile.  [fuel] (default 300_000) bounds interpreter
    statements; a behaviour that exhausts it is reported as agreeing
    (vacuously) so the shrinker never chases infinite loops. *)

val check_ladder : Codesign_ir.Rng.t -> string option

val check_mixed : Codesign_ir.Rng.t -> string option
(** The mixed-assignment rung of the oracle: one random Fig. 3 grid
    point (plus a partner with a single component raised along an axis
    where cost must not grow) run through
    {!Codesign.Cosim.run_echo_assignment}.  Checks completion, checksum
    agreement with the pure-pin reference, [bus_ops = 0] exactly when
    both interfaces are at Message, that the same assignment rerun with
    a 64-cycle temporal-decoupling quantum still completes with the
    same checksum, and that events/activations did not increase for the
    raised partner. *)

val check_taskgraph : Codesign_ir.Rng.t -> string option
