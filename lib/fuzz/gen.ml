module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module Tgff = Codesign_workloads.Tgff

(* Assignable scalar pool.  Induction variables (i/j/k, one per For
   nesting level) may be assigned with low probability — the reference
   semantics allow a body to steer its own loop — and while-counter
   variables (w0..) are never assignment targets, which is what makes
   every generated While terminate. *)
let scalars = [ "v0"; "v1"; "v2"; "v3"; "v4"; "v5" ]
let inductions = [| "i"; "j"; "k" |]
let max_loop_depth = 3
let max_expr_depth = 4
let n_ports = 4

let binops =
  [
    B.Add; B.Sub; B.Mul; B.Div; B.Rem; B.And; B.Or; B.Xor; B.Shl; B.Shr;
    B.Lt; B.Le; B.Eq; B.Ne;
  ]

let rec expr rng ~vars ~arrays depth =
  let leaf () =
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> B.Int (Rng.int_in rng (-8) 8)
    | 3 -> B.Int (Rng.pick rng [ -1000000; -31; 0; 1; 2; 31; 1000000 ])
    | _ -> B.Var (Rng.pick rng vars)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 12 with
    | 0 | 1 -> leaf ()
    | 2 when arrays <> [] ->
        let a, _len = Rng.pick rng arrays in
        (* indices draw from the full expression space: out-of-bounds
           values exercise the clamp on every level *)
        B.Idx (a, expr rng ~vars ~arrays (depth - 1))
    | 2 | 3 -> B.Neg (expr rng ~vars ~arrays (depth - 1))
    | 4 -> B.Not (expr rng ~vars ~arrays (depth - 1))
    | _ ->
        B.Bin
          ( Rng.pick rng binops,
            expr rng ~vars ~arrays (depth - 1),
            expr rng ~vars ~arrays (depth - 1) )

(* A dynamically-computed but small loop bound: mask or modulus keeps
   the trip count low while still exercising the evaluate-once rule. *)
let bounded_dynamic_expr rng ~vars ~arrays =
  let e = expr rng ~vars ~arrays 2 in
  if Rng.bool rng then B.Bin (B.And, e, B.Int 7)
  else B.Bin (B.Rem, e, B.Int 5)

let behavior rng =
  let n_arrays = Rng.int rng 3 in
  let arrays =
    List.init n_arrays (fun k ->
        (Printf.sprintf "a%d" k, Rng.int_in rng 2 8))
  in
  let budget = ref (Rng.int_in rng 8 25) in
  let next_while = ref 0 in
  let rec stmts rng ~vars ~depth n =
    if n <= 0 || !budget <= 0 then []
    else
      let s = stmt rng ~vars ~depth in
      s @ stmts rng ~vars ~depth (n - 1)
  and stmt rng ~vars ~depth =
    decr budget;
    let e ?(d = max_expr_depth) () = expr rng ~vars ~arrays d in
    match Rng.int rng 14 with
    | 0 | 1 | 2 | 3 ->
        let target =
          if Rng.int rng 8 = 0 && depth > 0 then
            inductions.(Rng.int rng depth) (* steer an enclosing loop *)
          else Rng.pick rng scalars
        in
        [ B.Assign (target, e ()) ]
    | 4 | 5 when arrays <> [] ->
        let a, _ = Rng.pick rng arrays in
        [ B.Store (a, e ~d:2 (), e ()) ]
    | 4 | 5 -> [ B.Assign (Rng.pick rng scalars, e ()) ]
    | 6 | 7 ->
        let nthen = Rng.int_in rng 1 3 and nelse = Rng.int rng 3 in
        [
          B.If
            ( e ~d:3 (),
              stmts rng ~vars ~depth nthen,
              stmts rng ~vars ~depth nelse );
        ]
    | 8 when depth < max_loop_depth ->
        let w = Printf.sprintf "w%d" !next_while in
        incr next_while;
        let trip = Rng.int_in rng 0 5 in
        let body = stmts rng ~vars ~depth:(depth + 1) (Rng.int_in rng 1 3) in
        [
          B.Assign (w, B.Int 0);
          B.While
            ( B.Bin (B.Lt, B.Var w, B.Int trip),
              body @ [ B.Assign (w, B.Bin (B.Add, B.Var w, B.Int 1)) ],
              trip );
        ]
    | 9 | 10 when depth < max_loop_depth ->
        let v = inductions.(depth) in
        let lo = B.Int (Rng.int_in rng (-2) 3) in
        let hi =
          if Rng.int rng 3 = 0 then bounded_dynamic_expr rng ~vars ~arrays
          else B.Int (Rng.int_in rng (-1) 7)
        in
        let body =
          stmts rng ~vars:(v :: vars) ~depth:(depth + 1)
            (Rng.int_in rng 1 3)
        in
        [ B.For (v, lo, hi, body) ]
    | 11 -> [ B.PortOut (Rng.int rng n_ports, e ()) ]
    | 12 -> [ B.PortIn (Rng.pick rng scalars, Rng.int rng n_ports) ]
    | _ -> [ B.Assign (Rng.pick rng scalars, e ()) ]
  in
  let body = stmts rng ~vars:scalars ~depth:0 (Rng.int_in rng 3 10) in
  let draft = { B.name = "fz"; params = []; arrays; results = []; body } in
  let results = B.vars_of draft in
  (* stream the results out of port 0 so a pure port trace determines
     the outcome even where result variables are not observable *)
  let epilogue = List.map (fun v -> B.PortOut (0, B.Var v)) results in
  { draft with B.results; body = body @ epilogue }

let echo_params rng =
  let items = Rng.int_in rng 2 24 in
  let work = Rng.int_in rng 1 12 in
  let src_period = Rng.int_in rng 80 400 in
  let sink_period = Rng.int_in rng 40 200 in
  (items, work, src_period, sink_period)

let net_spec rng =
  let module Pn = Codesign_ir.Process_network in
  let layers = Rng.int_in rng 2 4 in
  let widths = Array.init layers (fun _ -> Rng.int_in rng 1 3) in
  let count = Rng.int_in rng 3 10 in
  let pname l k = Printf.sprintf "n%d_%d" l k in
  (* Feed-forward edges only: every channel goes from a layer to a
     strictly later one, so the DAG is acyclic; and every channel has
     latency >= 1, so sends never block and each partition cut has
     positive lookahead.  Each proc performs exactly [count] rounds,
     receiving one value per in-channel and sending one per out-channel
     per round, so channel traffic is exactly matched — the generated
     network always terminates, for any channel depths. *)
  let chans = ref [] and n_chans = ref 0 in
  for l = 0 to layers - 2 do
    for k = 0 to widths.(l) - 1 do
      for _ = 1 to Rng.int_in rng 1 2 do
        let l' = Rng.int_in rng (l + 1) (layers - 1) in
        let c =
          {
            Pn.cname = Printf.sprintf "e%d" !n_chans;
            src = pname l k;
            dst = pname l' (Rng.int rng widths.(l'));
            depth = Rng.int_in rng 1 3;
            latency = Rng.int_in rng 1 4;
          }
        in
        incr n_chans;
        chans := c :: !chans
      done
    done
  done;
  let chans = List.rev !chans in
  let add a b = B.Bin (B.Add, a, b) in
  let mac acc x =
    (* (acc * 3 + x) >> 1, the transform flavour of the workloads *)
    B.Bin (B.Shr, add (B.Bin (B.Mul, acc, B.Int 3)) x, B.Int 1)
  in
  let procs =
    List.concat
      (List.init layers (fun l ->
           List.init widths.(l) (fun k ->
               let me = pname l k in
               let ins = List.filter (fun c -> c.Pn.dst = me) chans in
               let outs = List.filter (fun c -> c.Pn.src = me) chans in
               let mix = Rng.int_in rng 1 6 in
               let round =
                 if ins = [] then
                   (* source: a deterministic per-proc sample stream *)
                   B.Assign
                     ( "acc",
                       B.Bin
                         ( B.Sub,
                           B.Bin
                             ( B.Rem,
                               B.Bin (B.Mul, B.Var "p", B.Int (7 + mix)),
                               B.Int 23 ),
                           B.Int 5 ) )
                   :: []
                 else
                   B.Assign ("acc", B.Int mix)
                   :: List.concat_map
                        (fun c ->
                          [
                            B.Recv ("x", c.Pn.cname);
                            B.Assign ("acc", mac (B.Var "acc") (B.Var "x"));
                          ])
                        ins
               in
               let round =
                 round
                 @ List.map (fun c -> B.Send (c.Pn.cname, B.Var "acc")) outs
                 @ [ B.Assign ("sum", add (B.Var "sum") (B.Var "acc")) ]
               in
               let body =
                 [
                   B.Assign ("sum", B.Int 0);
                   B.For ("p", B.Int 0, B.Int count, round);
                   B.PortOut (1, B.Var "sum");
                 ]
               in
               ( {
                   B.name = me;
                   params = [];
                   arrays = [];
                   results = [ "sum" ];
                   body;
                 },
                 Pn.Hw ))))
  in
  Pn.make ~name:"fuzznet" procs chans

let tgff_spec rng =
  let n_tasks = Rng.int_in rng 4 14 in
  {
    Tgff.seed = Rng.int rng 1_000_000;
    n_tasks;
    layers = Rng.int_in rng 2 (min 5 n_tasks);
    edge_prob = 0.3 +. (0.5 *. Rng.float rng);
    skip_prob = 0.3 *. Rng.float rng;
    sw_cycles_range =
      (let lo = Rng.int_in rng 50 500 in
       (lo, lo + Rng.int_in rng 100 2000));
    words_range =
      (let lo = Rng.int_in rng 1 4 in
       (lo, lo + Rng.int_in rng 0 16));
    deadline_factor = (if Rng.bool rng then 0.0 else 0.5 +. Rng.float rng);
    modifiable_prob = 0.4 *. Rng.float rng;
  }
