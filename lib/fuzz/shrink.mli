(** Greedy structural minimisation of a disagreeing behaviour.

    {!minimize} repeatedly tries size-reducing edits — deleting a
    statement, unwrapping a compound statement into one of its arms,
    replacing an expression by a subexpression or a small constant —
    and commits the first edit whose result still satisfies [keep]
    (i.e. still disagrees), restarting from the smaller program.  It
    stops at a local minimum or after [max_evals] calls to [keep]
    (default 2000), whichever comes first.

    Every edit strictly reduces a (node count, non-constant leaf)
    measure, so the process terminates even without the evaluation
    cap. *)

val minimize :
  ?max_evals:int ->
  keep:(Codesign_ir.Behavior.proc -> bool) ->
  Codesign_ir.Behavior.proc ->
  Codesign_ir.Behavior.proc
