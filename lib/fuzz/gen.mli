(** Seeded random generation of well-formed fuzzing inputs.

    {!behavior} draws a closed {!Codesign_ir.Behavior.proc} — no
    parameters, no channels, no extension ops — that almost always
    terminates quickly: [While] loops are counter-bounded with a
    protected counter variable, [For] bounds are small constants or
    dynamically-computed values masked into a small range, and loop
    nesting is capped.  The one deliberate exception is the low-
    probability "steer an enclosing induction variable" assignment,
    which can pin a [For] below its bound forever; the differential
    oracle bounds every execution with fuel and treats exhaustion as a
    vacuously-agreeing case, so those draws cost time, not soundness.
    Array indices are deliberately {e not} kept in bounds: the
    protected-mode clamp is part of the semantics under test.  Every generated program ends by streaming its result
    variables out of port 0, so implementations that only expose a port
    trace (hardware-mapped processes) are comparable to the ones that
    also expose result variables.

    All draws come from the given {!Codesign_ir.Rng.t}; equal generator
    states give equal programs. *)

val behavior : Codesign_ir.Rng.t -> Codesign_ir.Behavior.proc

val echo_params : Codesign_ir.Rng.t -> int * int * int * int
(** (items, work, src_period, sink_period) for
    {!Codesign.Cosim.run_echo_system}, drawn from ranges around the
    defaults so device wait states stay material. *)

val net_spec : Codesign_ir.Rng.t -> Codesign_ir.Process_network.t
(** A random feed-forward process network for differential testing of
    the partitioned kernel: 2-4 layers of 1-3 hardware processes,
    channels only from a layer to a strictly later one (acyclic), every
    channel a latency channel (latency 1-4, so any partition cut has
    positive lookahead and sends never block), and exactly matched
    SDF-style traffic — each process runs a fixed round count, receiving
    one value per in-channel and sending one per out-channel per round —
    so the network always terminates for any channel depths and any
    partition map.  Every process accumulates a checksum in result
    variable ["sum"] and emits it on port 1. *)

val tgff_spec : Codesign_ir.Rng.t -> Codesign_workloads.Tgff.spec
(** A random task-graph spec: 4-14 tasks, 2-5 layers, varying edge
    densities, cycle ranges and deadline tightness. *)
