(** The deterministic fault source every wrapper in this library draws
    from, and the single accounting sink they report back to.

    One injector owns one {!Codesign_ir.Rng} stream (seeded, replayable)
    and one fault [rate].  Wrappers call {!fires} at each {e decision
    point} (a bus transfer, a token send, a memory-scrub tick, ...) to
    ask whether a fault lands there, and {!shape} for the follow-up
    draws that pick the fault's kind, bit position, duration and so on.
    Because every draw comes from the same stream in program order, a
    campaign is a pure function of its seed.

    Accounting distinguishes {e effective} perturbations — the wrapper
    actually altered data, dropped a response, raised a spurious line —
    from mere decision draws: only the former call {!injected_event}.
    When a recovery mechanism notices a perturbation it calls
    {!detected_event}, which pops the oldest pending injection stamp at
    that site (FIFO) and accumulates injection-to-detection latency.
    Whatever is left pending at the end of a run was never detected
    in-flight; {!charge_pending} lets the campaign charge those the
    end-of-run audit time, which is how pin-level's "you only find out
    at the end" shows up as a huge mean latency. *)

type site =
  | Bus  (** bus transfers: flips, drops, stuck-at lines *)
  | Mem  (** memory words: bit flips *)
  | Irq  (** interrupt lines: lost / spurious *)
  | Cpu  (** CPU steps: spurious traps, register flips *)
  | Chan  (** simulation channels: drop / duplicate / corrupt tokens *)
  | Gate  (** RTL netlist gates: stuck-at-0/1 *)

val site_name : site -> string

type t

val create : ?rate:float -> ?active:bool -> seed:int -> unit -> t
(** [rate] (default 0.0) is the per-decision-point fault probability.
    [active] (default [true]) gates the whole injector: while inactive,
    {!fires} answers [false] without drawing — see {!set_active}.
    @raise Invalid_argument unless [0.0 <= rate <= 1.0]. *)

val reinit : t -> rate:float -> seed:int -> unit
(** Reset the injector in place to the state [create ~rate ~active:false
    ~seed ()] would produce: reseeds the Rng stream, zeroes every
    counter and pending queue, and deactivates.  The forked fault
    campaigns reuse one injector across checkpoint restores this way.
    @raise Invalid_argument unless [0.0 <= rate <= 1.0]. *)

val rate : t -> float

val set_active : t -> bool -> unit
(** Open or close the injection window.  While inactive, {!fires} is
    [false] and consumes {e no} Rng draw — so a warm-up phase run before
    activation leaves the fault stream untouched, and the faults landed
    in the window are a pure function of (seed, window ops) regardless
    of how the world reached the window. *)

val is_active : t -> bool

val fires : t -> bool
(** One decision draw: [true] with probability [rate].  When active,
    always consumes exactly one Rng draw, so control flow downstream of
    the answer does not perturb the stream for later decision points;
    when inactive, answers [false] and draws nothing. *)

val shape : t -> Codesign_ir.Rng.t
(** The stream for follow-up draws (fault kind, bit index, ...). *)

val injected_event : t -> site -> time:int -> unit
(** Record one effective perturbation, stamped with the sim time. *)

val detected_event : t -> site -> time:int -> unit
(** A mechanism detected a perturbation at [site]: pops the oldest
    pending stamp there (FIFO) and adds [time - stamp] to the latency
    sum.  A detection with no pending stamp (e.g. a parity check tripped
    twice over one fault) still counts as detected, with zero latency. *)

val injected : t -> int
(** Total effective perturbations. *)

val injected_at : t -> site -> int
val detected : t -> int
val latency_sum : t -> int

val pending : t -> int
(** Injections not yet detected. *)

val charge_pending : t -> time:int -> unit
(** Resolve every pending stamp at [time] {e without} counting them as
    detected — they were found by the audit, not by a mechanism — but
    charging their latency, so [mean latency = latency_sum / injected]
    reflects how long faults lived before {e anything} noticed. *)
