module K = Codesign_sim.Kernel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module T = Codesign_bus.Transport
module Interrupt = Codesign_bus.Interrupt
module N = Codesign_rtl.Netlist
module L = Codesign_rtl.Logic_sim
module Cpu = Codesign_isa.Cpu
module Isa = Codesign_isa.Isa
module Checksum = Codesign_obs.Checksum
module FR = Codesign_obs.Fault_report
module Degraded = Codesign_obs.Degraded
module Policy = Codesign_resil.Policy
module Budget = Codesign_resil.Budget
module Supervisor = Codesign_resil.Supervisor

type mechanism = Pin | Tlm | Token | Degrade

let mechanism_name = function
  | Pin -> "pin"
  | Tlm -> "tlm"
  | Token -> "token"
  | Degrade -> "degrade"

let mechanisms = [ Pin; Tlm; Token; Degrade ]
let default_rates = [ 0.02; 0.05; 0.1 ]
let default_ops = 240
let quick_ops = 96

type engine = Rerun | Fork

let engine_name = function Rerun -> "rerun" | Fork -> "fork"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "rerun" -> Ok Rerun
  | "fork" -> Ok Fork
  | other ->
      Error
        (Printf.sprintf "unknown campaign engine %S (expected rerun | fork)"
           other)

let default_warmup ops = ops / 2

(* Chaos harness faults: a sweep task whose master is sabotaged at its
   first windowed op, exercising the supervision path end to end. *)
type chaos = Chaos_trap | Chaos_hang

let chaos_name = function Chaos_trap -> "trap" | Chaos_hang -> "hang"
let chaos_label c = "chaos-" ^ chaos_name c

let chaos_of_string s =
  match String.lowercase_ascii s with
  | "trap" -> Ok Chaos_trap
  | "hang" -> Ok Chaos_hang
  | other ->
      Error
        (Printf.sprintf "unknown chaos mode %S (expected trap | hang)" other)

(* Cell supervision defaults: two restarts from the checkpoint, no
   backoff (each attempt is deterministic, so pacing buys nothing), and
   a fuel window matching the historic hard K.run bound. *)
let default_policy = Policy.create ~max_retries:2 ~backoff:Policy.No_backoff ()
let default_cell_fuel = 200_000_000

(* ------------------------------------------------------------------ *)
(* the transfer sweep                                                  *)
(* ------------------------------------------------------------------ *)

let src_base = 0
let sink_base = 0x1000
let pattern i = ((i * 37) + 11) land 1023 lor 1

(* tlm retry policy *)
let retry_budget = 3
let backoff = 8

(* degrade escalation thresholds *)
let bite_threshold = 2
let give_up_threshold = 2

type level = L_pin | L_tlm | L_token

let level_name = function L_pin -> "pin" | L_tlm -> "tlm" | L_token -> "token"

(* The world one (mechanism, workload) pair runs in.  Both engines
   build it identically; the fork engine additionally checkpoints it at
   the warm-up boundary and rewinds it once per rate.  The injector is
   created inactive at rate 0 and {!Injector.reinit}'d before every
   cell in both engines, so the two fault streams are literally the
   same stream. *)
type world = {
  k : K.t;
  inj : Injector.t;
  map : M.t;
  mechanism : mechanism;
  fb_pin : Faulty_bus.t option;
  fb_tlm : Faulty_bus.t option;
  rel : Faulty_chan.t option;
  wd : Watchdog.t;
  warmup : int;
  total : int;  (* warmup + windowed ops *)
  chaos : chaos option;  (* sabotage the master at its first windowed op *)
}

let make_world ?chaos ~warmup ~ops mechanism : world =
  let total = warmup + ops in
  let k = K.create () in
  let inj = Injector.create ~rate:0.0 ~active:false ~seed:0 () in
  let data = Array.init total pattern in
  let map =
    M.create
      [
        M.rom ~name:"src" ~base:src_base data;
        M.ram ~name:"sink" ~base:sink_base ~size:total;
      ]
  in
  let uses_pin = mechanism = Pin || mechanism = Degrade in
  let uses_tlm = mechanism = Tlm || mechanism = Degrade in
  let uses_token = mechanism = Token || mechanism = Degrade in
  let fb_pin =
    if uses_pin then Some (Faulty_bus.create k inj (T.pin k map)) else None
  in
  let fb_tlm =
    if uses_tlm then Some (Faulty_bus.create k inj (T.tlm k map)) else None
  in
  let rel = if uses_token then Some (Faulty_chan.create k inj ()) else None in
  let wd = Watchdog.create k ~timeout:800 ~on_bite:(fun _ -> ()) in
  { k; inj; map; mechanism; fb_pin; fb_tlm; rel; wd; warmup; total; chaos }

(* Per-cell accounting, fresh for every cell in both engines. *)
type cell_state = {
  mutable retries : int;
  mutable give_ups : int;
  faulted : bool array;  (* over the full [total] index range *)
  mutable done_at : int;
  mutable level : level;
}

let fresh_state (w : world) : cell_state =
  {
    retries = 0;
    give_ups = 0;
    faulted = Array.make w.total false;
    done_at = 0;
    level =
      (match w.mechanism with
      | Pin | Degrade -> L_pin
      | Tlm -> L_tlm
      | Token -> L_token);
  }

let pin_op fb i =
  let v = Faulty_bus.raw_read fb (src_base + i) in
  Faulty_bus.raw_write fb (sink_base + i) v

(* The tlm recovery mechanism as a named policy: [retry_budget] retries
   with the historic linear [backoff * (attempt + 1)] ramp — the exact
   schedule (8, 16, 24) the old hand-rolled loops spent. *)
let tlm_policy =
  Policy.create ~max_retries:retry_budget ~backoff:(Policy.Linear backoff) ()

let tlm_op st fb i =
  let on_retry ~attempt:_ ~delay:_ = st.retries <- st.retries + 1 in
  match Faulty_bus.read_retry fb ~policy:tlm_policy ~on_retry (src_base + i) with
  | Error _ -> st.give_ups <- st.give_ups + 1
  | Ok v -> (
      match
        Faulty_bus.write_retry fb ~policy:tlm_policy ~on_retry (sink_base + i) v
      with
      | Ok () -> ()
      | Error _ -> st.give_ups <- st.give_ups + 1)

let token_op w st rel i =
  (* the OS-message rung reads the source functionally: no bus *)
  let v = M.read w.map (src_base + i) in
  if not (Faulty_chan.send rel ~idx:i v) then st.give_ups <- st.give_ups + 1

let spawn_sink (w : world) =
  match w.rel with
  | None -> ()
  | Some rel ->
      K.spawn ~name:"campaign.sink" w.k (fun () ->
          let rec loop () =
            match Faulty_chan.recv rel with
            | Some (idx, v) ->
                if idx >= 0 && idx < w.total then
                  M.write w.map (sink_base + idx) v;
                loop ()
            | None -> ()
          in
          loop ())

(* Transfers [lo, hi): the warm-up run passes [finish:false] so the
   watchdog generation and the token stream are left exactly where a
   straight-through run would have them at the same point.  The
   watchdog is kicked (and the injection window opened) only from
   [warmup] on, so the warm-up schedules no timer events and the event
   heap genuinely drains to empty at the checkpoint. *)
let spawn_master (w : world) (st : cell_state) ~lo ~hi ~finish =
  K.spawn ~name:"campaign.master" w.k (fun () ->
      for i = lo to hi - 1 do
        (match w.chaos with
        | Some Chaos_trap when i = w.warmup ->
            failwith (Printf.sprintf "chaos: injected trap at op %d" i)
        | Some Chaos_hang when i = w.warmup ->
            (* spin in simulated time forever: only a fuel bound or the
               wall deadline ends this attempt *)
            while true do
              K.wait 10_000
            done
        | _ -> ());
        if i = w.warmup then Injector.set_active w.inj true;
        if i >= w.warmup then Watchdog.kick w.wd;
        let before = Injector.injected w.inj in
        (match st.level with
        | L_pin -> pin_op (Option.get w.fb_pin) i
        | L_tlm -> tlm_op st (Option.get w.fb_tlm) i
        | L_token -> token_op w st (Option.get w.rel) i);
        if Injector.injected w.inj > before then st.faulted.(i) <- true;
        if w.mechanism = Degrade then begin
          if st.level = L_pin && Watchdog.bites w.wd >= bite_threshold then
            st.level <- L_tlm
          else if st.level = L_tlm && st.give_ups >= give_up_threshold then
            st.level <- L_token
        end
      done;
      if finish then begin
        Watchdog.stop w.wd;
        (match w.rel with Some rel -> Faulty_chan.close rel | None -> ());
        st.done_at <- K.now w.k
      end)

(* Audit a finished cell: recompute the expected sink image over the
   whole range (warm-up transfers are fault-free, so they contribute
   nothing to the fault columns) and assemble the report row.  [ops]
   reports the injection window only. *)
let audit (w : world) (st : cell_state) ~rate : FR.cell =
  let done_at = if st.done_at = 0 then K.now w.k else st.done_at in
  let lost = ref 0 in
  let buf_exp = Buffer.create 256 and buf_got = Buffer.create 256 in
  for i = 0 to w.total - 1 do
    let got = M.read w.map (sink_base + i) in
    Buffer.add_string buf_exp (string_of_int (pattern i));
    Buffer.add_char buf_exp ',';
    Buffer.add_string buf_got (string_of_int got);
    Buffer.add_char buf_got ',';
    if got <> pattern i then begin
      incr lost;
      (* an op the per-op accounting missed is still a faulted op *)
      st.faulted.(i) <- true
    end
  done;
  let faulted_ops =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 st.faulted
  in
  Injector.charge_pending w.inj ~time:done_at;
  let injected = Injector.injected w.inj in
  let retries =
    st.retries
    + match w.rel with Some rel -> Faulty_chan.retransmissions rel | None -> 0
  in
  {
    FR.mechanism = mechanism_name w.mechanism;
    rate;
    ops = w.total - w.warmup;
    faulted_ops;
    injected;
    detected = Injector.detected w.inj;
    recovered_ops = faulted_ops - !lost;
    lost_ops = !lost;
    retries;
    watchdog_bites = Watchdog.bites w.wd;
    degraded_to =
      (if w.mechanism = Degrade then Some (level_name st.level) else None);
    sim_cycles = done_at;
    cycle_overhead = 0.0;
    recovery_rate =
      (if faulted_ops = 0 then 1.0
       else float_of_int (faulted_ops - !lost) /. float_of_int faulted_ops);
    mean_detect_latency =
      (if injected = 0 then 0.0
       else
         float_of_int (Injector.latency_sum w.inj) /. float_of_int injected);
    checksum_ok =
      Checksum.of_string (Buffer.contents buf_got)
      = Checksum.of_string (Buffer.contents buf_exp);
    degraded = None;
  }

(* The report row for a cell the supervisor declared dead: counters are
   zeroed placeholders, the [degraded] record carries what is actually
   known (last error, attempts spent, simulated time at the final
   failure). *)
let degraded_cell ~label ~rate ~ops ~error ~attempts ~elapsed : FR.cell =
  {
    FR.mechanism = label;
    rate;
    ops;
    faulted_ops = 0;
    injected = 0;
    detected = 0;
    recovered_ops = 0;
    lost_ops = 0;
    retries = 0;
    watchdog_bites = 0;
    degraded_to = None;
    sim_cycles = 0;
    cycle_overhead = 0.0;
    recovery_rate = 0.0;
    mean_detect_latency = 0.0;
    checksum_ok = false;
    degraded = Some { Degraded.error; attempts; elapsed };
  }

let is_degraded (c : FR.cell) = c.FR.degraded <> None

let with_overhead ~baseline (c : FR.cell) =
  if is_degraded c || is_degraded baseline then c
  else
    let base = float_of_int baseline.FR.sim_cycles in
    let overhead =
      if base <= 0.0 then 0.0
      else (float_of_int c.FR.sim_cycles -. base) /. base
    in
    { c with FR.cycle_overhead = overhead }

(* ------------------------------------------------------------------ *)
(* the two engines                                                     *)
(* ------------------------------------------------------------------ *)

(* Reference engine: build the world from scratch and run warm-up +
   window straight through.  One construction and one warm-up per
   cell. *)
let rerun_cell ~seed ~warmup ~ops ~rate mechanism : FR.cell =
  let w = make_world ~warmup ~ops mechanism in
  Injector.reinit w.inj ~rate ~seed;
  let st = fresh_state w in
  spawn_sink w;
  spawn_master w st ~lo:0 ~hi:w.total ~finish:true;
  ignore (K.run ~until:default_cell_fuel ~expect_quiescent:true w.k);
  audit w st ~rate

(* One supervised rerun-engine attempt: each attempt rebuilds the world
   from scratch (restart-from-zero is the rerun engine's notion of
   restore), bounded by a fresh fuel window under the sweep deadline.
   [elapsed] records simulated time at the failure point for the
   degraded record. *)
let rerun_attempt ?chaos ~seed ~warmup ~ops ~rate ~budget ~cell_fuel ~elapsed
    mechanism =
  let w = make_world ?chaos ~warmup ~ops mechanism in
  Injector.reinit w.inj ~rate ~seed;
  let st = fresh_state w in
  spawn_sink w;
  spawn_master w st ~lo:0 ~hi:w.total ~finish:true;
  match
    Budget.run_kernel (Budget.with_fuel budget ~fuel:cell_fuel)
      ~expect_quiescent:true w.k
  with
  | Budget.Done _ -> Ok (audit w st ~rate)
  | Budget.Exhausted e ->
      elapsed := K.now w.k;
      Error ("budget exhausted: " ^ Budget.exhausted_name e)
  | exception e ->
      elapsed := K.now w.k;
      Error (Printexc.to_string e)

(* Everything the fork engine rewinds between cells.  The injector is
   not part of the checkpoint: it is reinitialised per cell (exactly as
   the rerun engine does), which is what makes the two engines draw the
   same fault stream. *)
type world_snap = {
  ws_k : K.snap;
  ws_map : M.snap;
  ws_pin : Faulty_bus.snap option;
  ws_tlm : Faulty_bus.snap option;
  ws_rel : Faulty_chan.snap option;
  ws_wd : Watchdog.snap;
}

let snapshot_world (w : world) : world_snap =
  {
    ws_k = K.snapshot w.k;
    ws_map = M.snapshot w.map;
    ws_pin = Option.map Faulty_bus.snapshot w.fb_pin;
    ws_tlm = Option.map Faulty_bus.snapshot w.fb_tlm;
    ws_rel = Option.map Faulty_chan.snapshot w.rel;
    ws_wd = Watchdog.snapshot w.wd;
  }

let restore_world (w : world) (s : world_snap) =
  (* kernel first: rewinding the clock and emptying the heap before the
     transport restores lets the bus slave they re-spawn land its start
     event at the warm-up boundary, in the restored heap *)
  K.restore w.k s.ws_k;
  (match (w.fb_pin, s.ws_pin) with
  | Some fb, Some snap -> Faulty_bus.restore fb snap
  | _ -> ());
  (match (w.fb_tlm, s.ws_tlm) with
  | Some fb, Some snap -> Faulty_bus.restore fb snap
  | _ -> ());
  (match (w.rel, s.ws_rel) with
  | Some rel, Some snap -> Faulty_chan.restore rel snap
  | _ -> ());
  M.restore w.map s.ws_map;
  Watchdog.restore w.wd s.ws_wd

(* Fork engine: build the world once, run the fault-free warm-up to
   quiescence (empty event heap), checkpoint, then rewind + re-spawn
   per cell.  The inactive injector draws nothing during warm-up, so
   the faults landed in each window are a pure function of (seed, rate,
   window ops) — byte-identical to the rerun engine's.

   Each cell runs under a {!Supervisor}: a trapped or fuel-exhausted
   attempt rewinds to the warm-up checkpoint and retries per [policy]
   (the injector is reinitialised inside the attempt, so a retry draws
   the identical fault stream); a cell that exhausts its restart
   intensity becomes a [degraded] row instead of aborting the sweep. *)
let fork_cells ?chaos ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel
    ~label mechanism : FR.cell list =
  let w = make_world ?chaos ~warmup ~ops mechanism in
  spawn_sink w;
  spawn_master w (fresh_state w) ~lo:0 ~hi:w.warmup ~finish:false;
  (* deadline-only bound on the warm-up: no fuel, so a drained warm-up
     leaves the clock exactly where an unbounded run would (the
     checkpoint time is part of the byte-identity contract) *)
  (match Budget.run_kernel budget ~expect_quiescent:true w.k with
  | Budget.Done _ -> ()
  | Budget.Exhausted e ->
      failwith ("warmup budget exhausted: " ^ Budget.exhausted_name e));
  let checkpoint = snapshot_world w in
  let restore () = restore_world w checkpoint in
  let fork rate =
    if Budget.past_deadline budget then
      degraded_cell ~label ~rate ~ops ~error:"deadline exceeded" ~attempts:0
        ~elapsed:0
    else begin
      let elapsed = ref 0 in
      let attempt ~attempt:_ =
        restore ();
        Injector.reinit w.inj ~rate ~seed;
        let st = fresh_state w in
        (* sink before master, as in [make_world]-then-run: same-time
           start events keep the same relative order on both engines *)
        spawn_sink w;
        spawn_master w st ~lo:w.warmup ~hi:w.total ~finish:true;
        match
          Budget.run_kernel (Budget.with_fuel budget ~fuel:cell_fuel)
            ~expect_quiescent:true w.k
        with
        | Budget.Done _ -> Ok (audit w st ~rate)
        | Budget.Exhausted e ->
            elapsed := K.now w.k;
            Error ("budget exhausted: " ^ Budget.exhausted_name e)
        | exception e ->
            elapsed := K.now w.k;
            Error (Printexc.to_string e)
      in
      match Supervisor.run ~policy ~restore attempt with
      | Supervisor.Completed { value; _ } -> value
      | Supervisor.Gave_up { attempts; errors } ->
          let error =
            match List.rev errors with last :: _ -> last | [] -> "unknown"
          in
          degraded_cell ~label ~rate ~ops ~error ~attempts ~elapsed:!elapsed
    end
  in
  let baseline = fork 0.0 in
  baseline :: List.map (fun rate -> with_overhead ~baseline (fork rate)) rates

let run_cell ~seed ~ops ?warmup ~rate mechanism =
  let warmup = match warmup with Some n -> n | None -> default_warmup ops in
  let baseline = rerun_cell ~seed ~warmup ~ops ~rate:0.0 mechanism in
  with_overhead ~baseline (rerun_cell ~seed ~warmup ~ops ~rate mechanism)

(* ------------------------------------------------------------------ *)
(* drills                                                              *)
(* ------------------------------------------------------------------ *)

let drill_memory ~seed : FR.drill list =
  let words = 64 and steps = 60 and scrub_every = 8 in
  let golden = Array.init words pattern in
  (* unprotected: upsets accumulate until the audit *)
  let inj = Injector.create ~rate:0.25 ~seed () in
  let arr = Array.init words pattern in
  for step = 1 to steps do
    if Injector.fires inj then Faulty_core.mem_flip inj arr ~time:step
  done;
  let wrong = ref 0 in
  Array.iteri (fun i v -> if v <> golden.(i) then incr wrong) arr;
  let plain_injected = Injector.injected inj in
  let plain =
    {
      FR.d_site = "memory";
      d_mechanism = "none";
      d_injected = plain_injected;
      d_detected = 0;
      d_recovered = plain_injected - !wrong;
    }
  in
  (* protected: three copies, periodic majority-vote scrub *)
  let inj = Injector.create ~rate:0.25 ~seed:(seed + 1) () in
  let a = Array.init words pattern
  and b = Array.init words pattern
  and c = Array.init words pattern in
  for step = 1 to steps do
    if Injector.fires inj then
      Faulty_core.mem_flip inj
        (Codesign_ir.Rng.pick (Injector.shape inj) [ a; b; c ])
        ~time:step;
    if step mod scrub_every = 0 then
      ignore (Faulty_core.scrub3 inj a b c ~time:step)
  done;
  ignore (Faulty_core.scrub3 inj a b c ~time:steps);
  let wrong = ref 0 in
  Array.iteri (fun i v -> if v <> golden.(i) then incr wrong) a;
  let tmr_injected = Injector.injected inj in
  let tmr =
    {
      FR.d_site = "memory";
      d_mechanism = "tmr-scrub";
      d_injected = tmr_injected;
      d_detected = Injector.detected inj;
      d_recovered = tmr_injected - !wrong;
    }
  in
  [ plain; tmr ]

let drill_irq ~seed : FR.drill list =
  let events = 40 and period = 50 in
  let k = K.create () in
  let inj = Injector.create ~rate:0.2 ~seed () in
  let ic = Interrupt.create () in
  let fi = Faulty_core.Irq.create k inj ic in
  let real = ref 0 and handled = ref 0 in
  let polled = ref 0 and rejected = ref 0 in
  let dev_done = ref false in
  K.spawn ~name:"irq.device" k (fun () ->
      for _ = 1 to events do
        K.wait period;
        incr real;
        (* line 3 carries real events; line 5 has no device behind it *)
        Faulty_core.Irq.raise_line fi 3;
        Faulty_core.Irq.tick fi 5
      done;
      dev_done := true);
  K.spawn ~name:"irq.handler" k (fun () ->
      let rec loop () =
        K.wait (period / 2);
        (* validation: an interrupt with no cause behind it is rejected *)
        if Interrupt.pending ic land (1 lsl 5) <> 0 then begin
          Interrupt.ack ic 5;
          incr rejected;
          Injector.detected_event inj Injector.Irq ~time:(K.now k)
        end;
        if Interrupt.pending ic land (1 lsl 3) <> 0 then begin
          Interrupt.ack ic 3;
          incr handled
        end;
        (* polling fallback: the device's status count says we missed one *)
        if !real > !handled && Interrupt.pending ic land (1 lsl 3) = 0 then begin
          incr handled;
          incr polled;
          Injector.detected_event inj Injector.Irq ~time:(K.now k)
        end;
        if not (!dev_done && !handled >= !real && Interrupt.pending ic = 0)
        then loop ()
      in
      loop ());
  ignore (K.run ~until:(events * period * 4) ~expect_quiescent:true k);
  let injected = Injector.injected inj in
  [
    {
      FR.d_site = "irq";
      d_mechanism = "validate+poll";
      d_injected = injected;
      d_detected = Injector.detected inj;
      d_recovered = min injected (!polled + !rejected);
    };
  ]

let drill_cpu ~seed : FR.drill list =
  (* sum 1..10 into mem[0]: the workload a supervisor re-runs on faults *)
  let prog : Isa.program =
    [|
      Isa.Li (1, 0);
      Isa.Li (2, 1);
      Isa.Li (3, 10);
      Isa.Alu (Isa.Add, 1, 1, 2);
      Isa.Alui (Isa.Add, 2, 2, 1);
      Isa.B (Isa.Ge, 3, 2, 3);
      Isa.Sw (1, 0, 0);
      Isa.Halt;
    |]
  in
  let expected = 55 in
  let inj = Injector.create ~rate:0.02 ~seed () in
  let episodes = 12 and attempt_budget = 5 and step_cap = 2000 in
  let traps_seen = ref 0 and recovered_events = ref 0 in
  for _ = 1 to episodes do
    let before = Injector.injected inj in
    let rec attempt n =
      if n >= attempt_budget then false
      else begin
        let cpu = Cpu.create ~mem_words:16 prog in
        let steps = ref 0 in
        while Cpu.status cpu = Cpu.Running && !steps < step_cap do
          ignore (Faulty_core.cpu_step inj cpu);
          incr steps
        done;
        match Cpu.status cpu with
        | Cpu.Halted when Cpu.read_mem cpu 0 = expected -> true
        | Cpu.Trapped _ ->
            (* the supervisor observes the trap and re-runs *)
            incr traps_seen;
            Injector.detected_event inj Injector.Cpu ~time:(Cpu.cycles cpu);
            attempt (n + 1)
        | _ -> attempt (n + 1)
      end
    in
    if attempt 0 then
      recovered_events := !recovered_events + (Injector.injected inj - before)
  done;
  [
    {
      FR.d_site = "cpu";
      d_mechanism = "supervisor-rerun";
      d_injected = Injector.injected inj;
      d_detected = !traps_seen;
      d_recovered = !recovered_events;
    };
  ]

let drill_rtl () : FR.drill list =
  let base = N.decoder ~width:4 ~match_value:9 () in
  let vectors = 16 in
  let eval_all n =
    let sim = L.create n in
    Array.init vectors (fun v ->
        List.iteri
          (fun j (nm, _) -> L.set_input sim nm ((v lsr j) land 1))
          n.N.inputs;
        L.eval sim;
        L.output sim "hit")
  in
  let golden = eval_all base in
  let masked_count n faults =
    (* count (gate, polarity) stuck-at faults invisible at the outputs *)
    List.fold_left
      (fun acc (g, value) ->
        let out = eval_all (Tmr.stuck_at n ~gate:g ~value) in
        if out = golden then acc + 1 else acc)
      0 faults
  in
  let faults_of count =
    List.concat_map
      (fun g -> [ (g, 0); (g, 1) ])
      (List.init count (fun g -> g))
  in
  let plain_faults = faults_of (N.gate_count base) in
  let plain_masked = masked_count base plain_faults in
  let tmr_net = Tmr.triplicate base in
  let tmr_faults = faults_of (Tmr.replica_gates base) in
  let tmr_masked = masked_count tmr_net tmr_faults in
  [
    {
      FR.d_site = "rtl";
      d_mechanism = "none";
      d_injected = List.length plain_faults;
      d_detected = List.length plain_faults - plain_masked;
      d_recovered = plain_masked;
    };
    {
      FR.d_site = "rtl";
      d_mechanism = "tmr-vote";
      d_injected = List.length tmr_faults;
      d_detected = List.length tmr_faults - tmr_masked;
      d_recovered = tmr_masked;
    };
  ]

(* ------------------------------------------------------------------ *)

(* All the cells of one sweep task, in report order: the rate-0
   baseline first, then each rate.  Self-contained — builds its own
   world(s) from [seed] and touches nothing shared — so tasks are the
   unit of domain-parallelism: each pool worker constructs, warms up
   and (on the fork engine) checkpoints/rewinds its own private
   snapshot copy. *)
let rerun_cells ?chaos ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel
    ~label mechanism : FR.cell list =
  let cell rate =
    if Budget.past_deadline budget then
      degraded_cell ~label ~rate ~ops ~error:"deadline exceeded" ~attempts:0
        ~elapsed:0
    else begin
      let elapsed = ref 0 in
      let attempt ~attempt:_ =
        rerun_attempt ?chaos ~seed ~warmup ~ops ~rate ~budget ~cell_fuel
          ~elapsed mechanism
      in
      (* restart-from-zero: every attempt rebuilds the world, so there
         is nothing to rewind between attempts *)
      match Supervisor.run ~policy ~restore:(fun () -> ()) attempt with
      | Supervisor.Completed { value; _ } -> value
      | Supervisor.Gave_up { attempts; errors } ->
          let error =
            match List.rev errors with last :: _ -> last | [] -> "unknown"
          in
          degraded_cell ~label ~rate ~ops ~error ~attempts ~elapsed:!elapsed
    end
  in
  let baseline = cell 0.0 in
  baseline :: List.map (fun rate -> with_overhead ~baseline (cell rate)) rates

(* A sweep task: one of the four mechanisms, or an injected chaos
   harness fault (a pin-level world whose master is sabotaged). *)
type task = T_mech of mechanism | T_chaos of chaos

let task_label = function
  | T_mech m -> mechanism_name m
  | T_chaos c -> chaos_label c

let task_cells ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel engine task
    : FR.cell list =
  let chaos, mechanism =
    match task with
    | T_mech m -> (None, m)
    | T_chaos c -> (Some c, Pin)
  in
  let label = task_label task in
  match engine with
  | Fork ->
      fork_cells ?chaos ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel
        ~label mechanism
  | Rerun ->
      rerun_cells ?chaos ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel
        ~label mechanism

let sweep ?(seed = 42) ?(ops = default_ops) ?warmup ?(rates = default_rates)
    ?(jobs = 1) ?(policy = default_policy) ?(cell_fuel = default_cell_fuel)
    ?deadline_ms ?chaos engine : FR.cell list =
  let warmup = match warmup with Some n -> n | None -> default_warmup ops in
  (* One wall deadline over the whole sweep (no sweep-level fuel); each
     cell takes a fresh [cell_fuel] window under it. *)
  let budget = Budget.create ?deadline_ms () in
  let tasks =
    Array.of_list
      (List.map (fun m -> T_mech m) mechanisms
      @ match chaos with None -> [] | Some c -> [ T_chaos c ])
  in
  Codesign_par.Domain_pool.map_result ~jobs
    ~name:(fun i -> task_label tasks.(i))
    (task_cells ~seed ~warmup ~ops ~rates ~policy ~budget ~cell_fuel engine)
    tasks
  |> Array.to_list
  |> List.concat_map (function
       | Ok cells -> cells
       | Error { Codesign_par.Domain_pool.task; message; attempts; _ } ->
           (* the whole task died outside cell supervision (e.g. its
              warm-up): emit its full expected grid as degraded rows so
              the report keeps its shape *)
           List.map
             (fun rate ->
               degraded_cell ~label:task ~rate ~ops ~error:message ~attempts
                 ~elapsed:0)
             (0.0 :: rates))

let run ?(seed = 42) ?(ops = default_ops) ?warmup ?(rates = default_rates)
    ?(engine = Fork) ?(jobs = 1) ?(policy = default_policy)
    ?(cell_fuel = default_cell_fuel) ?deadline_ms ?chaos () : FR.t =
  let warmup = match warmup with Some n -> n | None -> default_warmup ops in
  let cells =
    sweep ~seed ~ops ~warmup ~rates ~jobs ~policy ~cell_fuel ?deadline_ms
      ?chaos engine
  in
  let drills =
    drill_memory ~seed @ drill_irq ~seed @ drill_cpu ~seed @ drill_rtl ()
  in
  {
    FR.schema_version = FR.schema_version;
    seed;
    ops_per_cell = ops;
    warmup_per_cell = warmup;
    rates;
    cells;
    drills;
  }
