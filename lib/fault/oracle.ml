module B = Codesign_ir.Behavior
module Rng = Codesign_ir.Rng
module K = Codesign_sim.Kernel
module FR = Codesign_obs.Fault_report

(* ------------------------------------------------------------------ *)
(* campaign-cell properties                                            *)
(* ------------------------------------------------------------------ *)

let cell_invariant (c : FR.cell) =
  if c.FR.faulted_ops > c.FR.ops then
    Some
      (Printf.sprintf "%s: faulted_ops %d > ops %d" c.FR.mechanism
         c.FR.faulted_ops c.FR.ops)
  else if c.FR.lost_ops > c.FR.faulted_ops then
    Some
      (Printf.sprintf "%s: lost_ops %d > faulted_ops %d" c.FR.mechanism
         c.FR.lost_ops c.FR.faulted_ops)
  else if c.FR.recovered_ops <> c.FR.faulted_ops - c.FR.lost_ops then
    Some (Printf.sprintf "%s: recovered_ops inconsistent" c.FR.mechanism)
  else if c.FR.recovery_rate < 0.0 || c.FR.recovery_rate > 1.0 then
    Some
      (Printf.sprintf "%s: recovery_rate %g outside [0,1]" c.FR.mechanism
         c.FR.recovery_rate)
  else if c.FR.rate = 0.0 && (c.FR.lost_ops > 0 || not c.FR.checksum_ok) then
    Some
      (Printf.sprintf "%s: losses at fault rate 0 (lost=%d checksum_ok=%b)"
         c.FR.mechanism c.FR.lost_ops c.FR.checksum_ok)
  else None

let check_campaign rng =
  let mechanism = Rng.pick rng Campaign.mechanisms in
  let rate = Rng.pick rng [ 0.0; 0.02; 0.08; 0.15 ] in
  let cell_seed = Rng.int rng 1_000_000 in
  let ops = 32 + Rng.int rng 32 in
  let c1 = Campaign.run_cell ~seed:cell_seed ~ops ~rate mechanism in
  let c2 = Campaign.run_cell ~seed:cell_seed ~ops ~rate mechanism in
  if c1 <> c2 then
    Some
      (Printf.sprintf
         "campaign cell not deterministic (mechanism=%s rate=%g seed=%d)"
         (Campaign.mechanism_name mechanism)
         rate cell_seed)
  else cell_invariant c1

(* ------------------------------------------------------------------ *)
(* fault-injected transport of a generated behaviour's output trace    *)
(* ------------------------------------------------------------------ *)

let check_transport ~seed (p : B.proc) =
  let io, outs = B.collecting_io () in
  match B.run ~io ~fuel:300_000 p [] with
  | exception Invalid_argument _ ->
      (* fuel exhaustion / unbound arrays: vacuously agreeing, like
         Diff.check_behavior *)
      None
  | _ ->
      (* newest-first accumulator -> program order; cap the trace so one
         output-heavy behaviour cannot dominate a fuzz run *)
      let rec take n = function
        | x :: xs when n > 0 -> x :: take (n - 1) xs
        | _ -> []
      in
      let reference = take 400 (List.rev !outs) in
      let rng = Rng.create seed in
      let rate = Rng.pick rng [ 0.02; 0.08; 0.15 ] in
      let k = K.create () in
      let inj = Injector.create ~rate ~seed:(Rng.int rng 1_000_000) () in
      let rel = Faulty_chan.create k inj () in
      let received = ref [] in
      let sent = ref 0 in
      K.spawn ~name:"transport.rx" k (fun () ->
          let rec loop () =
            match Faulty_chan.recv rel with
            | Some (_, v) ->
                received := v :: !received;
                loop ()
            | None -> ()
          in
          loop ());
      K.spawn ~name:"transport.tx" k (fun () ->
          List.iteri
            (fun j (port, v) ->
              (* each (port, value) pair travels as two tokens *)
              if Faulty_chan.send rel ~idx:(2 * j) port then incr sent;
              if Faulty_chan.send rel ~idx:((2 * j) + 1) v then incr sent)
            reference;
          Faulty_chan.close rel);
      ignore (K.run ~until:50_000_000 ~expect_quiescent:true k);
      let flat =
        List.concat_map (fun (port, v) -> [ port; v ]) reference
      in
      let got = List.rev !received in
      if !sent <> List.length flat then
        Some
          (Printf.sprintf
             "ARQ gave up under rate %g: sent %d of %d tokens (seed %d)" rate
             !sent (List.length flat) seed)
      else if got <> flat then
        Some
          (Printf.sprintf
             "fault-injected transport diverged: %d tokens arrived, %d sent, \
              first mismatch at %d (rate %g, seed %d)"
             (List.length got) (List.length flat)
             (let rec first i = function
                | [], [] -> -1
                | x :: xs, y :: ys -> if x = y then first (i + 1) (xs, ys) else i
                | _ -> i
              in
              first 0 (got, flat))
             rate seed)
      else None
