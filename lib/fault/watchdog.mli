(** A kernel watchdog timer: the classic last-line-of-defence against a
    hung interface.

    The supervised workload calls {!kick} at every liveness point (e.g.
    once per completed bus operation).  If [timeout] simulated cycles
    pass without a kick, [on_bite] runs once and the watchdog disarms
    until the next kick — so one hang produces exactly one bite, however
    long it lasts, and a workload that hangs forever still lets the
    simulation terminate (the watchdog schedules bare {!Kernel.at}
    callbacks rather than parking a process, so it never holds the event
    queue open by itself).

    Stale expiry events are invalidated with a generation counter, the
    same pattern {!Codesign_bus.Device.Timer} uses. *)

type t

val create :
  Codesign_sim.Kernel.t -> timeout:int -> on_bite:(t -> unit) -> t
(** Created disarmed; the first {!kick} arms it.
    @raise Invalid_argument if [timeout <= 0]. *)

val kick : t -> unit
(** Feed the dog: (re)arms a fresh [timeout] window. *)

val stop : t -> unit
(** Disarm; pending expiry events become inert. *)

val bites : t -> int
(** Expiries so far. *)

(** {2 Snapshot / restore}

    Captures the generation counter, armed flag and bite count.  Expiry
    events already scheduled on the kernel are {e not} captured here —
    they live in the event heap ({!Codesign_sim.Event_queue.snapshot})
    and are generation-guarded, so a restored watchdog ignores any stale
    expiry that survives in a restored heap. *)

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
