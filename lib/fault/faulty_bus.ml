module K = Codesign_sim.Kernel
module Rng = Codesign_ir.Rng
module T = Codesign_bus.Transport
module Checksum = Codesign_obs.Checksum

type error = Corrupt | Timeout
type kind = Flip of int | Drop | Stuck

type t = {
  k : K.t;
  inj : Injector.t;
  tr : T.t;
  hang : int;
  timeout : int;
  stuck_cycles : int;
  mutable stuck_until : int;
  mutable stuck_bit : int;
  mutable stuck_val : int;
}

let create ?(hang = 2000) ?(timeout = 64) ?(stuck_cycles = 600) k inj tr =
  {
    k;
    inj;
    tr;
    hang;
    timeout;
    stuck_cycles;
    stuck_until = 0;
    stuck_bit = 0;
    stuck_val = 0;
  }

let stuck_active t = K.now t.k < t.stuck_until

type snap = {
  s_stuck_until : int;
  s_stuck_bit : int;
  s_stuck_val : int;
  s_tr : T.snap;
}

let snapshot t =
  {
    s_stuck_until = t.stuck_until;
    s_stuck_bit = t.stuck_bit;
    s_stuck_val = t.stuck_val;
    s_tr = T.snapshot t.tr;
  }

let restore t s =
  t.stuck_until <- s.s_stuck_until;
  t.stuck_bit <- s.s_stuck_bit;
  t.stuck_val <- s.s_stuck_val;
  T.restore t.tr s.s_tr

(* Campaign data fits in the low 10 bits, so faults there always alter
   the word visibly. *)
let data_bits = 10

let tag_of v = Checksum.fnv1a64 (string_of_int v)

(* Force the stuck line's bit; report to the injector iff it actually
   alters the word on the wire. *)
let apply_stuck t v =
  if not (stuck_active t) then v
  else
    let v' =
      if t.stuck_val = 1 then v lor (1 lsl t.stuck_bit)
      else v land lnot (1 lsl t.stuck_bit)
    in
    if v' <> v then
      Injector.injected_event t.inj Injector.Bus ~time:(K.now t.k);
    v'

let draw_kind t =
  if not (Injector.fires t.inj) then None
  else
    let rng = Injector.shape t.inj in
    let r = Rng.int rng 100 in
    if r < 60 then Some (Flip (Rng.int rng data_bits))
    else if r < 85 then Some Drop
    else begin
      t.stuck_until <- K.now t.k + t.stuck_cycles;
      t.stuck_bit <- Rng.int rng data_bits;
      t.stuck_val <- (if Rng.bool rng then 1 else 0);
      Some Stuck
    end

let inj t = Injector.injected_event t.inj Injector.Bus ~time:(K.now t.k)
let det t = Injector.detected_event t.inj Injector.Bus ~time:(K.now t.k)

(* ------------------------------------------------------------------ *)
(* raw (pin-level) view: silent corruption, hangs on drops             *)
(* ------------------------------------------------------------------ *)

let raw_read t a =
  let v = apply_stuck t (t.tr.T.read a) in
  match draw_kind t with
  | None -> v
  | Some (Flip b) ->
      inj t;
      v lxor (1 lsl b)
  | Some Drop ->
      inj t;
      K.wait t.hang;
      0
  | Some Stuck -> apply_stuck t v

let raw_write t a v =
  let v = apply_stuck t v in
  match draw_kind t with
  | None -> t.tr.T.write a v
  | Some (Flip b) ->
      inj t;
      t.tr.T.write a (v lxor (1 lsl b))
  | Some Drop ->
      inj t;
      K.wait t.hang
  | Some Stuck -> t.tr.T.write a (apply_stuck t v)

(* ------------------------------------------------------------------ *)
(* checked (bus-transaction) view: parity tags + bounded timeouts      *)
(* ------------------------------------------------------------------ *)

let check t ~tag v =
  if tag_of v <> tag then begin
    det t;
    Error Corrupt
  end
  else Ok v

let read t a =
  let true_v = t.tr.T.read a in
  let tag = tag_of true_v in
  let v = apply_stuck t true_v in
  match draw_kind t with
  | None -> check t ~tag v
  | Some (Flip b) ->
      inj t;
      check t ~tag (v lxor (1 lsl b))
  | Some Drop ->
      inj t;
      K.wait t.timeout;
      det t;
      Error Timeout
  | Some Stuck -> check t ~tag (apply_stuck t v)

let write t a v =
  let deliver v' =
    t.tr.T.write a v';
    (* read-back verify; an open stuck window corrupts this too *)
    let r = apply_stuck t (t.tr.T.read a) in
    if r <> v then begin
      det t;
      Error Corrupt
    end
    else Ok ()
  in
  let v0 = apply_stuck t v in
  match draw_kind t with
  | None -> deliver v0
  | Some (Flip b) ->
      inj t;
      deliver (v0 lxor (1 lsl b))
  | Some Drop ->
      inj t;
      K.wait t.timeout;
      det t;
      Error Timeout
  | Some Stuck -> deliver (apply_stuck t v0)

(* ------------------------------------------------------------------ *)
(* checked transfers under a retry policy                              *)
(* ------------------------------------------------------------------ *)

module Policy = Codesign_resil.Policy

let error_name = function Corrupt -> "corrupt" | Timeout -> "timeout"

let retry_op ~policy ?rng ?(on_retry = fun ~attempt:_ ~delay:_ -> ()) op =
  Policy.retry policy ?rng ~wait:K.wait ~on_retry (fun ~attempt:_ -> op ())

let read_retry t ~policy ?rng ?on_retry a =
  retry_op ~policy ?rng ?on_retry (fun () -> read t a)

let write_retry t ~policy ?rng ?on_retry a v =
  retry_op ~policy ?rng ?on_retry (fun () -> write t a v)

(* ------------------------------------------------------------------ *)
(* the faulty medium as a transport                                    *)
(* ------------------------------------------------------------------ *)

let raw_transport t =
  {
    t.tr with
    T.read = raw_read t;
    write = raw_write t;
    wait_ready =
      (fun addr ->
        let rec poll () =
          if raw_read t addr > 0 then ()
          else begin
            K.wait 8;
            poll ()
          end
        in
        poll ());
  }
