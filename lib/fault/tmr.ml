module N = Codesign_rtl.Netlist

let stuck_at (n : N.t) ~gate ~value =
  if value <> 0 && value <> 1 then
    invalid_arg "Tmr.stuck_at: value must be 0 or 1";
  if gate < 0 || gate >= List.length n.gates then
    invalid_arg "Tmr.stuck_at: gate index out of range";
  let gates =
    List.mapi
      (fun i (g : N.gate) ->
        if i = gate then { N.kind = N.Buf; inputs = [ value ]; output = g.output }
        else g)
      n.gates
  in
  let n' = { n with N.gates } in
  N.validate n';
  n'

let replica_gates (n : N.t) = 3 * N.gate_count n

let triplicate (n : N.t) =
  let input_nets = List.map snd n.inputs in
  let is_shared net = net < 2 || List.mem net input_nets in
  let counter = ref n.n_nets in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  (* per-replica renaming of internal nets; constants and primary
     inputs are shared across the three copies *)
  let maps = Array.init 3 (fun _ -> Hashtbl.create 16) in
  let map r net =
    if is_shared net then net
    else
      match Hashtbl.find_opt maps.(r) net with
      | Some id -> id
      | None ->
          let id = fresh () in
          Hashtbl.add maps.(r) net id;
          id
  in
  let replica r =
    List.map
      (fun (g : N.gate) ->
        { g with N.inputs = List.map (map r) g.inputs; output = map r g.output })
      n.gates
  in
  (* replica gates first (replica 0, 1, 2, each in original gate order):
     the ordering contract fault campaigns rely on *)
  let replicas = replica 0 @ replica 1 @ replica 2 in
  let voter_gates = ref [] in
  let emit kind inputs =
    let out = fresh () in
    voter_gates := { N.kind; inputs; output = out } :: !voter_gates;
    out
  in
  let vote net =
    let a = map 0 net and b = map 1 net and c = map 2 net in
    let ab = emit N.And [ a; b ] in
    let ac = emit N.And [ a; c ] in
    let bc = emit N.And [ b; c ] in
    let o = emit N.Or [ ab; ac ] in
    emit N.Or [ o; bc ]
  in
  let outputs = List.map (fun (name, net) -> (name, vote net)) n.outputs in
  let t =
    {
      N.name = n.name ^ "_tmr";
      n_nets = !counter;
      gates = replicas @ List.rev !voter_gates;
      inputs = n.inputs;
      outputs;
    }
  in
  N.validate t;
  t
