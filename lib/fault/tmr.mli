(** Triple modular redundancy for gate-level netlists, plus the
    stuck-at fault model it exists to mask.

    {!triplicate} builds three replicas of every gate (including state:
    [Dff]s are replicated, so the three copies hold independent state)
    sharing the primary inputs, and votes each primary output through a
    bitwise majority [(a&b) | (a&c) | (b&c)].  Gate ordering contract:
    the first [3 * gate_count original] gates of the result are the
    replica gates, replica 0 first, each in the original's gate order;
    the voter gates follow.  A fault campaign that injects only into the
    replica region is therefore guaranteed by construction to be masked
    — the voters themselves are the classic single point of failure and
    are left out of the protected claim.

    {!stuck_at} is the injection: it rewires one gate's output to a
    constant (a [Buf] from net 0 or 1), which models a stuck-at-0/1
    output line while keeping the netlist valid (same driver count, same
    net ids). *)

val stuck_at : Codesign_rtl.Netlist.t -> gate:int -> value:int -> Codesign_rtl.Netlist.t
(** [stuck_at n ~gate ~value] replaces gate [gate] (index into
    [n.gates]) by a buffer driving its output net from const-[value].
    @raise Invalid_argument if [gate] is out of range or [value] is not
    0 or 1. *)

val triplicate : Codesign_rtl.Netlist.t -> Codesign_rtl.Netlist.t
(** The TMR-protected netlist (validated).  Same primary input and
    output names as the original. *)

val replica_gates : Codesign_rtl.Netlist.t -> int
(** [3 * gate_count original]: faults injected at gate indices below
    this bound in [triplicate original] hit a replica, not a voter. *)
