(** Fault-mode oracles for the differential fuzzer ([lib/fuzz]'s
    [--fault] mode): properties of the fault machinery itself that must
    hold for {e every} seed.

    {!check_campaign} re-runs one randomly chosen sweep cell twice and
    checks (a) determinism — identical cells from identical seeds — and
    (b) the accounting invariants every cell must satisfy (losses never
    exceed faulted ops, faulted ops never exceed ops, a zero fault rate
    is loss-free with a clean checksum, rates stay within [0, 1]).

    {!check_transport} is the shrinkable one: it runs a generated
    behaviour's output trace through the ARQ pipe of {!Faulty_chan}
    under fault injection and demands the trace arrive intact and in
    order — the retry budget is sized so the protocol must win at the
    rates drawn here.  Any divergence is a minimisable counterexample
    (the behaviour is the shrink candidate). *)

val check_campaign : Codesign_ir.Rng.t -> string option
(** [None] when all properties hold; [Some detail] otherwise. *)

val check_transport :
  seed:int -> Codesign_ir.Behavior.proc -> string option
(** Deterministic in [(seed, proc)]. *)
