module Rng = Codesign_ir.Rng

type site = Bus | Mem | Irq | Cpu | Chan | Gate

let site_name = function
  | Bus -> "bus"
  | Mem -> "memory"
  | Irq -> "irq"
  | Cpu -> "cpu"
  | Chan -> "channel"
  | Gate -> "gate"

let site_index = function
  | Bus -> 0
  | Mem -> 1
  | Irq -> 2
  | Cpu -> 3
  | Chan -> 4
  | Gate -> 5

let n_sites = 6

type t = {
  rng : Rng.t;
  mutable rate : float;
  mutable active : bool;
  injected_by : int array;
  (* oldest-first pending injection stamps, one queue per site *)
  pending_by : int Queue.t array;
  mutable detected : int;
  mutable latency_sum : int;
}

let check_rate rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Injector: rate must be within [0, 1]"

let create ?(rate = 0.0) ?(active = true) ~seed () =
  check_rate rate;
  {
    rng = Rng.create seed;
    rate;
    active;
    injected_by = Array.make n_sites 0;
    pending_by = Array.init n_sites (fun _ -> Queue.create ());
    detected = 0;
    latency_sum = 0;
  }

let reinit t ~rate ~seed =
  check_rate rate;
  Rng.reseed t.rng seed;
  t.rate <- rate;
  t.active <- false;
  Array.fill t.injected_by 0 n_sites 0;
  Array.iter Queue.clear t.pending_by;
  t.detected <- 0;
  t.latency_sum <- 0

let rate t = t.rate
let set_active t on = t.active <- on
let is_active t = t.active
let fires t = t.active && Rng.float t.rng < t.rate
let shape t = t.rng

let injected_event t site ~time =
  let i = site_index site in
  t.injected_by.(i) <- t.injected_by.(i) + 1;
  Queue.push time t.pending_by.(i)

let detected_event t site ~time =
  t.detected <- t.detected + 1;
  let q = t.pending_by.(site_index site) in
  match Queue.take_opt q with
  | None -> ()
  | Some stamp -> t.latency_sum <- t.latency_sum + max 0 (time - stamp)

let injected t = Array.fold_left ( + ) 0 t.injected_by
let injected_at t site = t.injected_by.(site_index site)
let detected t = t.detected
let latency_sum t = t.latency_sum

let pending t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.pending_by

let charge_pending t ~time =
  Array.iter
    (fun q ->
      Queue.iter
        (fun stamp -> t.latency_sum <- t.latency_sum + max 0 (time - stamp))
        q;
      Queue.clear q)
    t.pending_by
