module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module Rng = Codesign_ir.Rng
module Checksum = Codesign_obs.Checksum
module Policy = Codesign_resil.Policy

type frame = { seq : int; idx : int; v : int; last : bool; tag : int }

type t = {
  k : K.t;
  inj : Injector.t;
  data : frame Ch.t;
  ack : (int * int) Ch.t;  (* (seq, ack tag) *)
  retries : int;
  end_retries : int;
  ack_timeout : int;
  poll : int;
  link_delay : int;
  mutable next_seq : int;
  mutable expected : int;
  mutable retrans : int;
}

let low24 i64 = Int64.to_int (Int64.logand i64 0xFFFFFFL)

let tag_of ~seq ~idx ~v ~last =
  low24 (Checksum.fnv1a64 (Printf.sprintf "%d:%d:%d:%b" seq idx v last))

let ack_tag seq = low24 (Checksum.fnv1a64 (Printf.sprintf "ack:%d" seq))

let create ?(retries = 8) ?(end_retries = 20) ?(ack_timeout = 40) ?(poll = 4)
    ?(link_delay = 2) k inj () =
  {
    k;
    inj;
    (* deep enough that stop-and-wait traffic (plus retransmit storms
       around close) can never fill them: a blocked receiver must only
       ever be blocked on [recv], or sender and receiver can deadlock
       on two full channels *)
    data = Ch.create ~depth:64 ~name:"fault.data" k ();
    ack = Ch.create ~depth:64 ~name:"fault.ack" k ();
    retries;
    end_retries;
    ack_timeout;
    poll;
    link_delay;
    next_seq = 0;
    expected = 0;
    retrans = 0;
  }

let retransmissions t = t.retrans

type snap = {
  s_data : frame Ch.snap;
  s_ack : (int * int) Ch.snap;
  s_next_seq : int;
  s_expected : int;
  s_retrans : int;
}

let snapshot t =
  {
    s_data = Ch.snapshot t.data;
    s_ack = Ch.snapshot t.ack;
    s_next_seq = t.next_seq;
    s_expected = t.expected;
    s_retrans = t.retrans;
  }

let restore t s =
  Ch.restore t.data s.s_data;
  Ch.restore t.ack s.s_ack;
  t.next_seq <- s.s_next_seq;
  t.expected <- s.s_expected;
  t.retrans <- s.s_retrans
let inj_event t = Injector.injected_event t.inj Injector.Chan ~time:(K.now t.k)
let det_event t = Injector.detected_event t.inj Injector.Chan ~time:(K.now t.k)

(* The faulty medium, data direction: drop / duplicate / corrupt. *)
let link_send_data t f =
  K.wait t.link_delay;
  if not (Injector.fires t.inj) then Ch.send t.data f
  else begin
    inj_event t;
    let rng = Injector.shape t.inj in
    let r = Rng.int rng 100 in
    if r < 40 then () (* dropped *)
    else if r < 60 then begin
      Ch.send t.data f;
      Ch.send t.data f (* duplicated *)
    end
    else
      (* corrupted payload; the tag is now stale *)
      Ch.send t.data { f with v = f.v lxor (1 lsl Rng.int rng 10) }
  end

(* Ack direction: a faulty ack is simply lost.  Non-blocking: the
   receiver must never block on anything but [recv]. *)
let link_send_ack t seq =
  if Injector.fires t.inj then inj_event t (* dropped ack *)
  else ignore (Ch.try_send t.ack (seq, ack_tag seq))

(* [count_detect] is off for the end-of-stream frame: once the receiver
   has taken END and exited, nobody acks retransmits of it, and those
   timeouts would read as fault detections that never happened. *)
let send_frame t ~seq ~idx ~v ~last ~budget ~count_detect =
  let tag = tag_of ~seq ~idx ~v ~last in
  let f = { seq; idx; v; last; tag } in
  let transmit_once ~attempt:_ =
    link_send_data t f;
    let deadline = K.now t.k + t.ack_timeout in
    let rec await () =
      match Ch.try_recv t.ack with
      | Some (aseq, atag) ->
          if atag <> ack_tag aseq then begin
            (* corrupt ack *)
            det_event t;
            await ()
          end
          else if aseq = seq then true
          else await () (* stale ack from an earlier frame *)
      | None ->
          if K.now t.k >= deadline then false
          else begin
            K.wait t.poll;
            await ()
          end
    in
    if await () then Ok ()
    else begin
      (* ack timeout: the sender just detected a loss *)
      if count_detect then det_event t;
      Error ()
    end
  in
  (* Stop-and-wait retransmission as a retry policy: the budget caps
     retransmits (total transmissions = budget + 1), back-to-back — the
     ack timeout already spent the simulated time, so no extra backoff. *)
  let policy = Policy.create ~max_retries:budget ~backoff:Policy.No_backoff () in
  let on_retry ~attempt:_ ~delay:_ = t.retrans <- t.retrans + 1 in
  match Policy.retry policy ~on_retry transmit_once with
  | Ok () -> true
  | Error (_ : unit Policy.exhausted) -> false

let send t ~idx v =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  send_frame t ~seq ~idx ~v ~last:false ~budget:t.retries ~count_detect:true

let close t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* a larger budget than data frames: losing END leaves the receiver
     blocked (harmless at quiescence) but we try hard to end cleanly *)
  ignore
    (send_frame t ~seq ~idx:(-1) ~v:0 ~last:true ~budget:t.end_retries
       ~count_detect:false)

let rec recv t =
  let f = Ch.recv t.data in
  if f.tag <> tag_of ~seq:f.seq ~idx:f.idx ~v:f.v ~last:f.last then begin
    (* corrupt frame: discard without ack; the sender will time out *)
    det_event t;
    recv t
  end
  else if f.seq < t.expected then begin
    (* duplicate (or retransmit after a lost ack): re-ack, discard *)
    det_event t;
    link_send_ack t f.seq;
    recv t
  end
  else begin
    (* in stop-and-wait, seq > expected means the sender gave up on an
       earlier frame; resync so the stream keeps flowing *)
    t.expected <- f.seq + 1;
    link_send_ack t f.seq;
    if f.last then None else Some (f.idx, f.v)
  end
