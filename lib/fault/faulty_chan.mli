(** A reliable message pipe over a faulty simulation channel: the
    token-level (send/receive/wait) rung of Fig. 3 under fault
    injection, and the recovery mechanism that rung answers with.

    The underlying medium may {b drop}, {b duplicate} or {b corrupt}
    any token (data frames and acknowledgements both ride it).  On top
    sits a stop-and-wait ARQ: every frame carries a sequence number and
    an FNV-1a tag ({!Codesign_obs.Checksum}); the receiver discards
    corrupt frames (no ack — the sender times out), re-acks duplicates,
    and delivers in order; the sender retransmits on ack timeout up to a
    bounded retry budget.

    Corrupt frames and duplicates are detected at the receiver, dropped
    frames and lost acks at the sender's timeout — each detection is
    reported to the shared {!Injector}, so token-level detection latency
    is measured the same way as the bus mechanisms'. *)

type t

val create :
  ?retries:int ->
  ?end_retries:int ->
  ?ack_timeout:int ->
  ?poll:int ->
  ?link_delay:int ->
  Codesign_sim.Kernel.t ->
  Injector.t ->
  unit ->
  t
(** Defaults: [retries = 8] retransmissions per data frame,
    [end_retries = 20] for the end-of-stream frame (losing END leaves
    the receiver blocked, so {!close} tries harder), [ack_timeout =
    40], [poll = 4], [link_delay = 2].  Retransmission loops are
    {!Codesign_resil.Policy} retries with [No_backoff] — the ack
    timeout is the pacing. *)

val send : t -> idx:int -> int -> bool
(** Send one [(idx, value)] item reliably; blocks (inside a kernel
    process) until acknowledged or the retry budget is exhausted.
    [false] means the item was given up on — a lost item. *)

val close : t -> unit
(** Reliably deliver the end-of-stream marker (a generous retry budget
    of its own), so {!recv} is guaranteed to return [None]. *)

val recv : t -> (int * int) option
(** Blocking receive of the next in-order item; [None] on end of
    stream.  Must run inside a kernel process. *)

val retransmissions : t -> int

(** {2 Snapshot / restore}

    Captures both link channels (buffered frames + counters; blocked
    endpoints are abandoned on restore, per
    {!Codesign_sim.Channel.restore}) and the ARQ state (sequence
    numbers, retransmission count).  Because sequence numbering
    continues from wherever the snapshot left it, a forked timeline's
    frames stay in protocol with a freshly re-spawned receiver.  The
    shared {!Injector} is not captured. *)

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
