(** Fault models and recovery mechanisms for the sites the bus/channel
    wrappers cannot reach: memory words, CPU steps, interrupt lines.

    {b Memory}: {!mem_flip} flips one random bit of one random word;
    {!scrub3} is the matching mechanism — a majority-vote scrub across
    three copies that repairs any word where one copy disagrees (each
    repair is a detection).

    {b CPU}: {!cpu_step} wraps {!Codesign_isa.Cpu.step}; a firing
    decision point either forces a spurious trap (detected immediately
    by whoever inspects the status) or silently flips a register bit
    (found only by the result audit).

    {b Interrupts}: {!Irq.raise_line} may lose the event on the wire;
    {!Irq.tick} may inject a spurious one.  The recovery drill pairs
    this with handler-side validation plus a polling fallback. *)

val mem_flip : Injector.t -> int array -> time:int -> unit
(** One random single-bit upset; reported as an injected [Mem] event. *)

val scrub3 :
  Injector.t -> int array -> int array -> int array -> time:int -> int
(** Majority-vote scrub: every word of the three equal-length copies is
    replaced by the bitwise majority; returns the number of repaired
    copies (each reported as a detected [Mem] event). *)

val cpu_step : Injector.t -> Codesign_isa.Cpu.t -> int
(** {!Codesign_isa.Cpu.step} with a fault decision point in front;
    returns the step's cycles.  Injection times are CPU cycle counts
    (the drill runs the ISS standalone). *)

(** A fault-injecting shim over an interrupt controller. *)
module Irq : sig
  type t

  val create :
    Codesign_sim.Kernel.t -> Injector.t -> Codesign_bus.Interrupt.t -> t

  val raise_line : t -> int -> unit
  (** Deliver a device interrupt — unless the wire eats it (lost). *)

  val tick : t -> int -> unit
  (** A decision point for spurious interrupts on the given line. *)

  val lost : t -> int
  val spurious : t -> int
end
