(** The fault-injection campaign: sweep fault rate x recovery mechanism
    over one fixed transfer workload, and drill the remaining injector
    sites, producing an {!Codesign_obs.Fault_report.t}.

    {b The sweep.}  Each cell moves [ops] words from a source ROM to a
    sink RAM across a faulty medium, using one rung of the Fig. 3
    interface ladder and that rung's recovery mechanism:

    - ["pin"]: pin-accurate bus, raw transfers.  No checks exist at this
      level — corruption is silent, a dropped response hangs the master
      until a {!Watchdog} bite, and faults surface only in the end-of-run
      audit.
    - ["tlm"]: transaction-level bus with parity-checked transfers,
      read-back-verified writes and bounded retry+backoff
      ({!Faulty_bus}).  Recovers transients; persistent stuck-at windows
      outlive the retry budget.
    - ["token"]: OS-message rung — no bus at all; items travel a
      stop-and-wait ARQ over a faulty channel ({!Faulty_chan}).
    - ["degrade"]: the graceful-degradation ladder.  Starts pin-level;
      repeated watchdog bites escalate to tlm, repeated retry give-ups
      escalate to token; the report records where it ended up.

    The audit recomputes the expected sink image and scores each cell:
    recovery rate (faulted ops that still arrived intact), detection
    latency (injection-to-detection, end-of-run audit charged to
    whatever no mechanism caught) and cycle overhead versus the same
    mechanism fault-free.

    {b The drills} cover memory scrubbing ({!Faulty_core.scrub3} vs
    nothing), interrupt lines (handler validation + polling fallback),
    CPU faults (supervisor retry on trap / wrong result), and RTL
    stuck-at faults (every single stuck-at on a TMR replica gate vs the
    bare netlist, exhaustive over input vectors).

    Everything is a pure function of [seed] and the parameters: no wall
    clock anywhere, so equal seeds give byte-identical reports. *)

type mechanism = Pin | Tlm | Token | Degrade

val mechanism_name : mechanism -> string
val mechanisms : mechanism list
(** In ladder order: [Pin; Tlm; Token; Degrade]. *)

val default_rates : float list
val default_ops : int
val quick_ops : int

val run_cell :
  seed:int -> ops:int -> rate:float -> mechanism ->
  Codesign_obs.Fault_report.cell
(** One sweep point ([cycle_overhead] computed against an internal
    rate-0 run of the same mechanism). *)

val run :
  ?seed:int -> ?ops:int -> ?rates:float list -> unit ->
  Codesign_obs.Fault_report.t
(** The full campaign.  Defaults: [seed = 42], [ops = default_ops],
    [rates = default_rates]. *)
