(** The fault-injection campaign: sweep fault rate x recovery mechanism
    over one fixed transfer workload, and drill the remaining injector
    sites, producing an {!Codesign_obs.Fault_report.t}.

    {b The sweep.}  Each cell moves [warmup + ops] words from a source
    ROM to a sink RAM across a faulty medium, using one rung of the
    Fig. 3 interface ladder and that rung's recovery mechanism.  The
    first [warmup] transfers are fault-free (the injector is inactive
    and draws nothing); faults land only in the [ops]-transfer
    injection window, and the report's per-cell [ops] counts the window
    alone:

    - ["pin"]: pin-accurate bus, raw transfers.  No checks exist at this
      level — corruption is silent, a dropped response hangs the master
      until a {!Watchdog} bite, and faults surface only in the end-of-run
      audit.
    - ["tlm"]: transaction-level bus with parity-checked transfers,
      read-back-verified writes and bounded retry+backoff
      ({!Faulty_bus}).  Recovers transients; persistent stuck-at windows
      outlive the retry budget.
    - ["token"]: OS-message rung — no bus at all; items travel a
      stop-and-wait ARQ over a faulty channel ({!Faulty_chan}).
    - ["degrade"]: the graceful-degradation ladder.  Starts pin-level;
      repeated watchdog bites escalate to tlm, repeated retry give-ups
      escalate to token; the report records where it ended up.

    The audit recomputes the expected sink image and scores each cell:
    recovery rate (faulted ops that still arrived intact), detection
    latency (injection-to-detection, end-of-run audit charged to
    whatever no mechanism caught) and cycle overhead versus the same
    mechanism fault-free.

    {b The drills} cover memory scrubbing ({!Faulty_core.scrub3} vs
    nothing), interrupt lines (handler validation + polling fallback),
    CPU faults (supervisor retry on trap / wrong result), and RTL
    stuck-at faults (every single stuck-at on a TMR replica gate vs the
    bare netlist, exhaustive over input vectors).

    {b The engines.}  The warm-up + window structure exists so the
    sweep can {e fork from a checkpoint}: the {!Fork} engine builds each
    mechanism's world once, runs the warm-up to quiescence, snapshots
    every stateful substrate (kernel, memory map, faulty buses, ARQ
    channel, watchdog) and rewinds that checkpoint once per rate; the
    {!Rerun} engine rebuilds the world and repeats the warm-up for
    every cell.  Because the inactive injector consumes no Rng draws
    during warm-up, and the per-fork re-spawns preserve same-time event
    order, both engines produce byte-identical reports — Rerun is kept
    as the reference the fork path is checked against (in CI and in the
    property tests).

    {b Supervision.}  Every cell runs under a
    {!Codesign_resil.Supervisor}: an attempt that traps, deadlocks or
    exhausts its [cell_fuel] window is rolled back (fork engine: rewind
    to the warm-up checkpoint; rerun engine: rebuild from zero) and
    retried per [policy]; a cell that spends its restart intensity is
    emitted as a zeroed row carrying a
    {!Codesign_obs.Degraded.t} record — the sweep {e completes} with
    partial results instead of aborting.  [deadline_ms] adds a wall
    deadline over the whole sweep: cells not yet started when it passes
    degrade immediately with ["deadline exceeded"].  [chaos] appends a
    sabotaged fifth task (mechanism ["chaos-trap"] / ["chaos-hang"])
    whose master fails at its first windowed op — the supervision
    path's own fault-injection harness, used by the chaos CI smoke.

    Everything except wall-deadline cut-offs is a pure function of
    [seed] and the parameters: no wall clock anywhere, so equal seeds
    give byte-identical reports — including degraded rows, whose
    [elapsed] is simulated time.  The engine is deliberately {e not}
    recorded in the report.  (The two engines may differ in a degraded
    {e hang} cell's [elapsed]: the fork engine's fuel window starts at
    the checkpoint time, the rerun engine's at zero.) *)

type mechanism = Pin | Tlm | Token | Degrade

val mechanism_name : mechanism -> string
val mechanisms : mechanism list
(** In ladder order: [Pin; Tlm; Token; Degrade]. *)

type engine =
  | Rerun  (** rebuild world + warm-up from scratch for every cell *)
  | Fork  (** warm up once per mechanism, fork each cell off a checkpoint *)

val engine_name : engine -> string
val engine_of_string : string -> (engine, string) result

type chaos =
  | Chaos_trap  (** master raises at its first windowed op *)
  | Chaos_hang  (** master spins in simulated time forever *)

val chaos_name : chaos -> string
(** ["trap"] / ["hang"]. *)

val chaos_of_string : string -> (chaos, string) result

val default_rates : float list
val default_ops : int
val quick_ops : int

val default_policy : Codesign_resil.Policy.t
(** Per-cell restart policy when [?policy] is omitted: 2 restarts, no
    backoff. *)

val default_cell_fuel : int
(** Simulated-time window per cell attempt when [?cell_fuel] is
    omitted (the historic hard run bound, 200M units). *)

val default_warmup : int -> int
(** Warm-up transfers used when [?warmup] is omitted: [ops / 2]. *)

val run_cell :
  seed:int -> ops:int -> ?warmup:int -> rate:float -> mechanism ->
  Codesign_obs.Fault_report.cell
(** One sweep point ([cycle_overhead] computed against an internal
    rate-0 run of the same mechanism), on the reference (rerun)
    engine.  [warmup] defaults to [default_warmup ops]. *)

val sweep :
  ?seed:int -> ?ops:int -> ?warmup:int -> ?rates:float list -> ?jobs:int ->
  ?policy:Codesign_resil.Policy.t -> ?cell_fuel:int -> ?deadline_ms:int ->
  ?chaos:chaos -> engine -> Codesign_obs.Fault_report.cell list
(** The transfer sweep alone (no drills), on the given engine — what
    the fork-vs-rerun microbenchmarks and identity checks exercise.
    Cell order: for each mechanism in ladder order (then the [chaos]
    task, when present), the rate-0 baseline then each rate in [rates].

    [jobs] (default 1) shards the sweep over a
    {!Codesign_par.Domain_pool} with one task per mechanism; each worker
    domain builds, warms up and (on {!Fork}) checkpoints its own private
    world, and results merge back in ladder order.  Every cell is a pure
    function of [(seed, rate, ops, warmup, mechanism, policy,
    cell_fuel)] — wall deadlines aside — so the cell list — and hence
    the report JSON — is byte-identical at every [jobs] (enforced by
    [test/test_parallel.ml], [test/test_resil.ml] and the CI [cmp]
    step), degraded cells included.

    [policy] (default {!default_policy}) caps per-cell restarts,
    [cell_fuel] (default {!default_cell_fuel}) bounds each attempt in
    simulated time, [deadline_ms] bounds the whole sweep in wall time,
    [chaos] injects a deliberately failing task (see the header). *)

val run :
  ?seed:int -> ?ops:int -> ?warmup:int -> ?rates:float list ->
  ?engine:engine -> ?jobs:int -> ?policy:Codesign_resil.Policy.t ->
  ?cell_fuel:int -> ?deadline_ms:int -> ?chaos:chaos -> unit ->
  Codesign_obs.Fault_report.t
(** The full campaign.  Defaults: [seed = 42], [ops = default_ops],
    [warmup = default_warmup ops], [rates = default_rates],
    [engine = Fork], [jobs = 1], [policy = default_policy],
    [cell_fuel = default_cell_fuel], no deadline, no chaos.  [jobs]
    parallelises the sweep exactly as in {!sweep}; the drills always
    run serially on the calling domain (and are not supervised — they
    are plain in-process measurements). *)
