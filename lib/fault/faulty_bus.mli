(** A fault-injecting wrapper around a {!Codesign_bus.Transport.t},
    with two views of the same faulty medium — one per rung of the
    Fig. 3 interface ladder:

    {b Raw (pin-level)} [raw_read]/[raw_write]: what a pin-accurate
    master sees.  Corruption is silent (the flipped word is simply what
    arrives), and a dropped response hangs the master for [hang] cycles
    before the line floats to 0 — only an external watchdog notices.

    {b Checked (bus-transaction level)} [read]/[write]: transfers carry
    a parity tag (FNV-1a over the true datum, {!Codesign_obs.Checksum}),
    so corruption comes back as [Error Corrupt] after a normal-latency
    transfer, and a dropped response comes back as [Error Timeout] after
    a bounded [timeout] wait.  Checked writes read the word back and
    verify.  Typed errors are what make bounded retry+backoff possible
    one layer up.

    Fault mix per firing decision point: transient bit flip (common),
    dropped response (less common), stuck-at data line (rare but
    persistent — the line holds a bit at a fixed value for
    [stuck_cycles], defeating retries that fit inside the window).
    Every {e effective} perturbation — data actually altered or a
    response actually dropped — is reported to the injector;
    [Error _] results report detections. *)

type error =
  | Corrupt  (** parity mismatch on the transferred word *)
  | Timeout  (** no response within the bounded wait *)

type t

val create :
  ?hang:int ->
  ?timeout:int ->
  ?stuck_cycles:int ->
  Codesign_sim.Kernel.t ->
  Injector.t ->
  Codesign_bus.Transport.t ->
  t
(** Defaults: [hang = 2000], [timeout = 64], [stuck_cycles = 600].
    Any transport backend can be made faulty — the injector perturbs
    whatever medium is behind it. *)

val raw_read : t -> int -> int
val raw_write : t -> int -> int -> unit
val read : t -> int -> (int, error) result
val write : t -> int -> int -> (unit, error) result

val stuck_active : t -> bool
(** A stuck-at window is currently open. *)

val error_name : error -> string
(** ["corrupt"] / ["timeout"]. *)

(** {2 Checked transfers under a retry policy}

    The bounded-retry idiom the checked view exists for, packaged: the
    transfer is re-attempted per {!Codesign_resil.Policy}, backoff
    spent as {e simulated} time ({!Codesign_sim.Kernel.wait} — call
    from inside a process), jitter drawn from the caller's [rng].  On
    exhaustion the typed error of the last attempt comes back wrapped
    in {!Codesign_resil.Policy.exhausted} with the attempt count —
    what the campaign's tlm mechanism records as [retries]/[lost]. *)

val read_retry :
  t ->
  policy:Codesign_resil.Policy.t ->
  ?rng:Codesign_ir.Rng.t ->
  ?on_retry:(attempt:int -> delay:int -> unit) ->
  int ->
  (int, error Codesign_resil.Policy.exhausted) result

val write_retry :
  t ->
  policy:Codesign_resil.Policy.t ->
  ?rng:Codesign_ir.Rng.t ->
  ?on_retry:(attempt:int -> delay:int -> unit) ->
  int ->
  int ->
  (unit, error Codesign_resil.Policy.exhausted) result

val raw_transport : t -> Codesign_bus.Transport.t
(** The faulty medium itself as a transport (raw, pin-style view):
    reads and writes pass through the injector, [wait_ready] polls
    through faulty reads.  This is what plugs into
    {!Codesign.Cosim.run_echo_assignment}'s [wrap] hook to fault an
    arbitrary level assignment. *)

(** {2 Snapshot / restore}

    Captures the stuck-at window state plus the wrapped transport's
    snapshot (see {!Codesign_bus.Transport.snapshot} — the transport
    must carry the [save] capability).  The shared {!Injector} is not
    captured; forked campaigns {!Injector.reinit} it per fork. *)

type snap

val snapshot : t -> snap
val restore : t -> snap -> unit
