module K = Codesign_sim.Kernel
module Rng = Codesign_ir.Rng
module Cpu = Codesign_isa.Cpu
module Interrupt = Codesign_bus.Interrupt

(* ------------------------------------------------------------------ *)
(* memory words                                                        *)
(* ------------------------------------------------------------------ *)

let mem_flip inj arr ~time =
  let rng = Injector.shape inj in
  let i = Rng.int rng (Array.length arr) in
  let b = Rng.int rng 10 in
  arr.(i) <- arr.(i) lxor (1 lsl b);
  Injector.injected_event inj Injector.Mem ~time

let scrub3 inj a b c ~time =
  if Array.length a <> Array.length b || Array.length b <> Array.length c then
    invalid_arg "Faulty_core.scrub3: copies differ in length";
  let repaired = ref 0 in
  for i = 0 to Array.length a - 1 do
    let m = a.(i) land b.(i) lor (a.(i) land c.(i)) lor (b.(i) land c.(i)) in
    List.iter
      (fun arr ->
        if arr.(i) <> m then begin
          arr.(i) <- m;
          incr repaired;
          Injector.detected_event inj Injector.Mem ~time
        end)
      [ a; b; c ]
  done;
  !repaired

(* ------------------------------------------------------------------ *)
(* CPU steps                                                           *)
(* ------------------------------------------------------------------ *)

let cpu_step inj cpu =
  (if Injector.fires inj then begin
     let rng = Injector.shape inj in
     let time = Cpu.cycles cpu in
     Injector.injected_event inj Injector.Cpu ~time;
     if Rng.int rng 100 < 40 then Cpu.trap cpu "injected: spurious trap"
     else begin
       (* silent register upset: only the result audit can see this *)
       let r = Rng.int_in rng 1 (Codesign_isa.Isa.n_regs - 1) in
       Cpu.set_reg cpu r (Cpu.reg cpu r lxor (1 lsl Rng.int rng 10))
     end
   end);
  Cpu.step cpu

(* ------------------------------------------------------------------ *)
(* interrupt lines                                                     *)
(* ------------------------------------------------------------------ *)

module Irq = struct
  type t = {
    k : K.t;
    inj : Injector.t;
    ic : Interrupt.t;
    mutable lost : int;
    mutable spurious : int;
  }

  let create k inj ic = { k; inj; ic; lost = 0; spurious = 0 }

  let raise_line t l =
    if Injector.fires t.inj then begin
      Injector.injected_event t.inj Injector.Irq ~time:(K.now t.k);
      t.lost <- t.lost + 1
    end
    else Interrupt.raise_line t.ic l

  let tick t l =
    if Injector.fires t.inj then begin
      Injector.injected_event t.inj Injector.Irq ~time:(K.now t.k);
      t.spurious <- t.spurious + 1;
      Interrupt.raise_line t.ic l
    end

  let lost t = t.lost
  let spurious t = t.spurious
end
