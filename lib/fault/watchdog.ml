module K = Codesign_sim.Kernel

type t = {
  k : K.t;
  timeout : int;
  on_bite : t -> unit;
  mutable generation : int;
  mutable armed : bool;
  mutable bites : int;
}

let create k ~timeout ~on_bite =
  if timeout <= 0 then invalid_arg "Watchdog.create: timeout must be > 0";
  { k; timeout; on_bite; generation = 0; armed = false; bites = 0 }

let arm t =
  t.generation <- t.generation + 1;
  t.armed <- true;
  let gen = t.generation in
  K.at t.k
    ~time:(K.now t.k + t.timeout)
    (fun () ->
      if t.armed && t.generation = gen then begin
        (* bite, then disarm until the next kick: one bite per hang *)
        t.armed <- false;
        t.bites <- t.bites + 1;
        t.on_bite t
      end)

let kick t = arm t

let stop t =
  t.armed <- false;
  t.generation <- t.generation + 1

let bites t = t.bites

type snap = { s_generation : int; s_armed : bool; s_bites : int }

let snapshot t =
  { s_generation = t.generation; s_armed = t.armed; s_bites = t.bites }

let restore t s =
  t.generation <- s.s_generation;
  t.armed <- s.s_armed;
  t.bites <- s.s_bites
