(** Two-phase (levelized) compiled logic simulation of {!Netlist}
    circuits.

    A simulator instance owns the net value state.  At {!create} the
    topologically ordered combinational gates are lowered into a flat
    int-array program (opcode + operand net ids, fixed stride), so the
    steady-state evaluation loop touches only int arrays — no list
    traversal, no per-gate pattern match, no allocation.  Combinational
    evaluation propagates input values through that program;
    {!clock_cycle} additionally latches every DFF, implementing standard
    synchronous semantics (all flops update simultaneously from their
    pre-clock D values).

    The pre-compile gate-list interpreter survives as {!Interp}, the
    differential reference the equivalence property tests and the
    before/after microbenchmarks run against. *)

type t

val create : Netlist.t -> t
(** Validates, topo-orders and compiles the netlist.
    @raise Invalid_argument if the combinational part is cyclic. *)

val set_input : t -> string -> int -> unit
(** Values are truthy: any nonzero is 1.  @raise Invalid_argument
    naming the offending signal on an unknown input name. *)

val eval : t -> unit
(** Propagate combinational logic from current inputs and flop states. *)

val output : t -> string -> int
(** Read a primary output (after {!eval}).  @raise Invalid_argument
    naming the offending signal on an unknown output name. *)

val net : t -> int -> int
(** Read any net by id. *)

val clock_cycle : t -> unit
(** One synchronous cycle: evaluate, then latch all DFFs from their D
    inputs, then evaluate again so outputs reflect the new state. *)

val cycles_run : t -> int

val reset : t -> unit
(** Clear all net values and flop states to 0 (constant-1 net stays 1). *)

val run_vectors :
  ?reset:bool -> t -> inputs:string list -> int list list ->
  (string * int list) list
(** Apply each input vector (values parallel to [inputs]), run
    {!clock_cycle}, and collect each primary output's waveform.  By
    default the simulator is {!reset} first so repeated calls are
    independent experiments; pass [~reset:false] to deliberately carry
    DFF/net state over from a previous run. *)

(** {2 Snapshot / restore}

    The complete mutable state of a compiled simulator is the net-value
    array (DFF states live in it — each flop's Q is just a net) plus
    the cycle counter; the compiled program, flop index arrays and name
    tables are immutable after {!create}.  A snapshot copies exactly
    that state, so [snapshot; perturb; restore] is observational
    identity. *)

type snap

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Rewind net values (including every DFF) and the cycle counter.
    @raise Invalid_argument if the snapshot came from a simulator over
    a netlist with a different net count. *)

(** The pre-compile interpreted evaluator (gate records, [List.nth]
    operand lookup), kept verbatim as a differential reference: the
    equivalence property tests run random netlists through both
    backends, and the [logic_sim] microbenchmarks quote compiled
    vs. interpreted throughput.  Not intended for production callers. *)
module Interp : sig
  type t

  val create : Netlist.t -> t
  val set_input : t -> string -> int -> unit
  (** @raise Not_found on unknown input name (historical behaviour). *)

  val eval : t -> unit
  val output : t -> string -> int
  val clock_cycle : t -> unit
  val cycles_run : t -> int
  val reset : t -> unit

  val run_vectors :
    t -> inputs:string list -> int list list -> (string * int list) list
  (** Always resets first, matching the compiled default. *)

  type snap

  val snapshot : t -> snap
  val restore : t -> snap -> unit
end
