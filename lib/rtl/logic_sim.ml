(* Shared front end: topologically order the combinational gates (DFF
   outputs are state elements, not combinational dependencies). *)
let topo_comb_order (net : Netlist.t) =
  let gates = Array.of_list net.Netlist.gates in
  let n = Array.length gates in
  let producer = Hashtbl.create 64 in
  Array.iteri
    (fun gi g ->
      if g.Netlist.kind <> Netlist.Dff then
        Hashtbl.replace producer g.Netlist.output gi)
    gates;
  let edges = ref [] in
  Array.iteri
    (fun gi (g : Netlist.gate) ->
      List.iter
        (fun i ->
          match Hashtbl.find_opt producer i with
          | Some src -> edges := (src, gi) :: !edges
          | None -> ())
        g.Netlist.inputs)
    gates;
  let g = Codesign_ir.Graph_algo.create ~n ~edges:!edges in
  match Codesign_ir.Graph_algo.topo_sort g with
  | None -> invalid_arg "Logic_sim: combinational cycle in netlist"
  | Some order ->
      Array.of_list
        (List.filter_map
           (fun gi ->
             if gates.(gi).Netlist.kind <> Netlist.Dff then Some gates.(gi)
             else None)
           order)

(* ------------------------------------------------------------------ *)
(* the compiled evaluator                                              *)
(* ------------------------------------------------------------------ *)

(* Gate opcodes of the compiled program (a closed int enum: the gate
   kind match happens once, at compile time, not per gate per cycle). *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_nand = 3
let op_nor = 4
let op_not = 5
let op_buf = 6
let op_mux = 7

let opcode = function
  | Netlist.And -> op_and
  | Netlist.Or -> op_or
  | Netlist.Xor -> op_xor
  | Netlist.Nand -> op_nand
  | Netlist.Nor -> op_nor
  | Netlist.Not -> op_not
  | Netlist.Buf -> op_buf
  | Netlist.Mux -> op_mux
  | Netlist.Dff -> assert false

(* One fixed-stride record per combinational gate, topo order:
   [opcode; output net; in0; in1; in2] (unused operand slots are 0,
   which is the constant-0 net and thus always a valid index). *)
let stride = 5

type t = {
  net : Netlist.t;
  values : int array;  (** current value of every net *)
  prog : int array;  (** compiled combinational program, [stride] per gate *)
  n_gates : int;  (** combinational gates in [prog] *)
  dff_d : int array;  (** D-input net id per flop *)
  dff_q : int array;  (** Q-output net id per flop *)
  dff_tmp : int array;  (** preallocated sample buffer for two-phase latch *)
  input_ids : (string, int) Hashtbl.t;
  output_ids : (string, int) Hashtbl.t;
  mutable cycles : int;
}

let compile_order (order : Netlist.gate array) =
  let n = Array.length order in
  let prog = Array.make (n * stride) 0 in
  Array.iteri
    (fun i (g : Netlist.gate) ->
      let base = i * stride in
      prog.(base) <- opcode g.Netlist.kind;
      prog.(base + 1) <- g.Netlist.output;
      List.iteri (fun j inp -> prog.(base + 2 + j) <- inp) g.Netlist.inputs)
    order;
  prog

let create net =
  Netlist.validate net;
  let values = Array.make net.Netlist.n_nets 0 in
  if net.Netlist.n_nets > 1 then values.(1) <- 1;
  let order = topo_comb_order net in
  let dffs =
    Array.of_list
      (List.filter
         (fun (g : Netlist.gate) -> g.Netlist.kind = Netlist.Dff)
         net.Netlist.gates)
  in
  let name_table pairs =
    let tbl = Hashtbl.create (List.length pairs) in
    List.iter (fun (n, id) -> Hashtbl.replace tbl n id) pairs;
    tbl
  in
  {
    net;
    values;
    prog = compile_order order;
    n_gates = Array.length order;
    dff_d =
      Array.map (fun (g : Netlist.gate) -> List.hd g.Netlist.inputs) dffs;
    dff_q = Array.map (fun (g : Netlist.gate) -> g.Netlist.output) dffs;
    dff_tmp = Array.make (Array.length dffs) 0;
    input_ids = name_table net.Netlist.inputs;
    output_ids = name_table net.Netlist.outputs;
    cycles = 0;
  }

let unknown_name t kind name =
  invalid_arg
    (Printf.sprintf "Logic_sim.%s: unknown %s %S in netlist %s"
       (match kind with `Input -> "set_input" | `Output -> "output")
       (match kind with `Input -> "input" | `Output -> "output")
       name t.net.Netlist.name)

let set_input t name v =
  match Hashtbl.find_opt t.input_ids name with
  | Some id -> t.values.(id) <- (if v <> 0 then 1 else 0)
  | None -> unknown_name t `Input name

let eval t =
  let p = t.prog and v = t.values in
  let n = t.n_gates in
  for i = 0 to n - 1 do
    let base = i * stride in
    let op = p.(base) in
    let out = p.(base + 1) in
    let a = v.(p.(base + 2)) in
    v.(out) <-
      (if op <= op_xor then
         let b = v.(p.(base + 3)) in
         if op = op_and then a land b
         else if op = op_or then a lor b
         else a lxor b
       else if op <= op_nor then
         let b = v.(p.(base + 3)) in
         if op = op_nand then 1 - (a land b) else 1 - (a lor b)
       else if op = op_not then 1 - a
       else if op = op_buf then a
       else if a = 0 then v.(p.(base + 3))
       else v.(p.(base + 4)))
  done

let output t name =
  match Hashtbl.find_opt t.output_ids name with
  | Some id -> t.values.(id)
  | None -> unknown_name t `Output name

let net t i = t.values.(i)

let clock_cycle t =
  eval t;
  (* sample all D inputs first, then update all Q outputs, into a buffer
     preallocated at [create] — no per-cycle allocation *)
  let nd = Array.length t.dff_d in
  for i = 0 to nd - 1 do
    t.dff_tmp.(i) <- t.values.(t.dff_d.(i))
  done;
  for i = 0 to nd - 1 do
    t.values.(t.dff_q.(i)) <- t.dff_tmp.(i)
  done;
  eval t;
  t.cycles <- t.cycles + 1

let cycles_run t = t.cycles

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  if Array.length t.values > 1 then t.values.(1) <- 1;
  t.cycles <- 0

type snap = { s_values : int array; s_cycles : int }

let snapshot t = { s_values = Array.copy t.values; s_cycles = t.cycles }

let restore t s =
  if Array.length s.s_values <> Array.length t.values then
    invalid_arg "Logic_sim.restore: snapshot from a different netlist";
  Array.blit s.s_values 0 t.values 0 (Array.length t.values);
  t.cycles <- s.s_cycles

let run_vectors ?(reset = true) t ~inputs vectors =
  if reset then
    (* fresh DFF/net state per call: vector responses must not depend on
       whatever a previous [run_vectors] left latched *)
    (Array.fill t.values 0 (Array.length t.values) 0;
     if Array.length t.values > 1 then t.values.(1) <- 1;
     t.cycles <- 0);
  let outs = List.map (fun (n, _) -> (n, ref [])) t.net.Netlist.outputs in
  List.iter
    (fun vec ->
      List.iter2 (fun name v -> set_input t name v) inputs vec;
      clock_cycle t;
      List.iter (fun (n, acc) -> acc := output t n :: !acc) outs)
    vectors;
  List.map (fun (n, acc) -> (n, List.rev !acc)) outs

(* ------------------------------------------------------------------ *)
(* the interpreted reference evaluator                                 *)
(* ------------------------------------------------------------------ *)

module Interp = struct
  type t = {
    net : Netlist.t;
    values : int array;
    order : Netlist.gate array;
    dffs : Netlist.gate array;
    mutable cycles : int;
  }

  let create net =
    Netlist.validate net;
    let values = Array.make net.Netlist.n_nets 0 in
    if net.Netlist.n_nets > 1 then values.(1) <- 1;
    let dffs =
      Array.of_list
        (List.filter
           (fun (g : Netlist.gate) -> g.Netlist.kind = Netlist.Dff)
           net.Netlist.gates)
    in
    { net; values; order = topo_comb_order net; dffs; cycles = 0 }

  let set_input t name v =
    let id = List.assoc name t.net.Netlist.inputs in
    t.values.(id) <- (if v <> 0 then 1 else 0)

  let eval_gate t (g : Netlist.gate) =
    let v i = t.values.(List.nth g.Netlist.inputs i) in
    let r =
      match g.Netlist.kind with
      | Netlist.And -> v 0 land v 1
      | Netlist.Or -> v 0 lor v 1
      | Netlist.Xor -> v 0 lxor v 1
      | Netlist.Nand -> 1 - (v 0 land v 1)
      | Netlist.Nor -> 1 - (v 0 lor v 1)
      | Netlist.Not -> 1 - v 0
      | Netlist.Buf -> v 0
      | Netlist.Mux -> if v 0 = 0 then v 1 else v 2
      | Netlist.Dff -> assert false
    in
    t.values.(g.Netlist.output) <- r

  let eval t = Array.iter (eval_gate t) t.order

  let output t name = t.values.(List.assoc name t.net.Netlist.outputs)

  let clock_cycle t =
    eval t;
    let ds =
      Array.map
        (fun (g : Netlist.gate) -> t.values.(List.hd g.Netlist.inputs))
        t.dffs
    in
    Array.iteri (fun i g -> t.values.(g.Netlist.output) <- ds.(i)) t.dffs;
    eval t;
    t.cycles <- t.cycles + 1

  let cycles_run t = t.cycles

  type snap = { s_values : int array; s_cycles : int }

  let snapshot t = { s_values = Array.copy t.values; s_cycles = t.cycles }

  let restore t s =
    if Array.length s.s_values <> Array.length t.values then
      invalid_arg "Logic_sim.Interp.restore: snapshot from a different netlist";
    Array.blit s.s_values 0 t.values 0 (Array.length t.values);
    t.cycles <- s.s_cycles

  let reset t =
    Array.fill t.values 0 (Array.length t.values) 0;
    if Array.length t.values > 1 then t.values.(1) <- 1;
    t.cycles <- 0

  let run_vectors t ~inputs vectors =
    reset t;
    let outs = List.map (fun (n, _) -> (n, ref [])) t.net.Netlist.outputs in
    List.iter
      (fun vec ->
        List.iter2 (fun name v -> set_input t name v) inputs vec;
        clock_cycle t;
        List.iter (fun (n, acc) -> acc := output t n :: !acc) outs)
      vectors;
    List.map (fun (n, acc) -> (n, List.rev !acc)) outs
end
