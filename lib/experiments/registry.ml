(** The canonical index of every reproduction experiment.

    One list shared by the bench harness, the CLI and the test suite, so
    "the experiments" is defined in exactly one place.  Each entry
    carries the paper-facing id used in tables and [BENCH_results.json]
    ("EXP-1".."EXP-10", "EXP-A", "EXP-F") and the short CLI spelling
    ("exp1".."exp10", "expA", "expF").

    Every [run] closure is self-contained — it builds its own workloads
    and simulation kernels and touches no shared mutable state — so
    entries may safely run concurrently on separate domains. *)

type entry = {
  exp_id : string;  (** "EXP-1" .. "EXP-10", "EXP-A" *)
  cli_name : string;  (** "exp1" .. "exp10", "expA" *)
  run : quick:bool -> jobs:int -> unit -> string;
      (** renders the experiment table; [jobs] is the worker-domain
          count for experiments with internal {!Codesign_par}
          parallelism (EXP-3M's 64-assignment grid today — the others
          ignore it).  Tables are byte-identical at every [jobs]. *)
}

let all =
  [
    { exp_id = "EXP-1"; cli_name = "exp1";
      run = (fun ~quick ~jobs:_ () -> Exp_fig1.run ~quick ()) };
    { exp_id = "EXP-2"; cli_name = "exp2";
      run = (fun ~quick ~jobs:_ () -> Exp_fig2.run ~quick ()) };
    { exp_id = "EXP-3"; cli_name = "exp3";
      run = (fun ~quick ~jobs:_ () -> Exp_fig3.run ~quick ()) };
    { exp_id = "EXP-3M"; cli_name = "exp3m";
      run = (fun ~quick ~jobs () -> Exp_fig3m.run ~quick ~jobs ()) };
    { exp_id = "EXP-4"; cli_name = "exp4";
      run = (fun ~quick ~jobs:_ () -> Exp_fig4.run ~quick ()) };
    { exp_id = "EXP-5"; cli_name = "exp5";
      run = (fun ~quick ~jobs:_ () -> Exp_fig5.run ~quick ()) };
    { exp_id = "EXP-6"; cli_name = "exp6";
      run = (fun ~quick ~jobs:_ () -> Exp_fig6.run ~quick ()) };
    { exp_id = "EXP-7"; cli_name = "exp7";
      run = (fun ~quick ~jobs:_ () -> Exp_fig7.run ~quick ()) };
    { exp_id = "EXP-8"; cli_name = "exp8";
      run = (fun ~quick ~jobs:_ () -> Exp_fig8.run ~quick ()) };
    { exp_id = "EXP-9"; cli_name = "exp9";
      run = (fun ~quick ~jobs:_ () -> Exp_fig9.run ~quick ()) };
    { exp_id = "EXP-10"; cli_name = "exp10";
      run = (fun ~quick ~jobs:_ () -> Exp_criteria.run ~quick ()) };
    { exp_id = "EXP-A"; cli_name = "expA";
      run = (fun ~quick ~jobs:_ () -> Exp_ablation.run ~quick ()) };
    { exp_id = "EXP-F"; cli_name = "expF";
      run = (fun ~quick ~jobs:_ () -> Exp_fault.run ~quick ()) };
    { exp_id = "EXP-P"; cli_name = "expP";
      run = (fun ~quick ~jobs:_ () -> Exp_partition.run ~quick ()) };
  ]

let ids = List.map (fun e -> e.exp_id) all

let find name =
  List.find_opt
    (fun e -> e.cli_name = name || e.exp_id = name)
    all
