(** EXP-F — fault-injection campaign (paper §5 comparison criteria).

    The paper's criteria ask how a co-design system behaves when the
    HW/SW interface misbehaves.  {!Codesign_fault.Campaign} answers
    quantitatively: the same transfer workload runs at three Fig. 3
    interface rungs (plus a graceful-degradation ladder) under a seeded
    fault injector, and the table reports what each rung's recovery
    mechanism salvages.  The qualitative claim being measured: pin-level
    fails hard (faults surface only at the end-of-run audit), the
    transaction level recovers transients but loses persistent stuck-at
    windows, and the token/OS level degrades gracefully — recovery rate
    strictly improves up the ladder at every fault rate. *)

open Codesign
module Campaign = Codesign_fault.Campaign
module FR = Codesign_obs.Fault_report

let report ?(quick = false) ?(seed = 42) () =
  let ops = if quick then Campaign.quick_ops else Campaign.default_ops in
  Campaign.run ~seed ~ops ()

let render (r : FR.t) =
  let cell_rows =
    List.map
      (fun (c : FR.cell) ->
        [
          c.FR.mechanism;
          Report.ff c.FR.rate;
          Report.fi c.FR.faulted_ops;
          Report.fi c.FR.injected;
          Report.fi c.FR.detected;
          Report.fi c.FR.lost_ops;
          Report.fp c.FR.recovery_rate;
          Report.ff c.FR.mean_detect_latency;
          Report.fp c.FR.cycle_overhead;
          (* a supervision-degraded cell (gave up after its restarts)
             shows dead(attempts); otherwise the graceful-degradation
             ladder label, exactly as before *)
          (match c.FR.degraded with
          | Some d ->
              Printf.sprintf "dead(%d)" d.Codesign_obs.Degraded.attempts
          | None -> (
              match c.FR.degraded_to with Some l -> l | None -> "-"));
        ])
      r.FR.cells
  in
  let sweep =
    Report.table
      ~title:
        (Printf.sprintf
           "EXP-F: fault-injection sweep (%d ops/cell, seed %d)"
           r.FR.ops_per_cell r.FR.seed)
      ~headers:
        [ "mechanism"; "rate"; "faulted"; "injected"; "detected"; "lost";
          "recovery"; "latency"; "overhead"; "degraded" ]
      cell_rows
  in
  let drill_rows =
    List.map
      (fun (d : FR.drill) ->
        [
          d.FR.d_site;
          d.FR.d_mechanism;
          Report.fi d.FR.d_injected;
          Report.fi d.FR.d_detected;
          Report.fi d.FR.d_recovered;
        ])
      r.FR.drills
  in
  let drills =
    Report.table ~title:"EXP-F: site drills"
      ~headers:[ "site"; "mechanism"; "injected"; "detected"; "recovered" ]
      drill_rows
  in
  sweep ^ "\n" ^ drills

let run ?(quick = false) () = render (report ~quick ())

(* invariants asserted by the test suite: at every swept fault rate the
   recovery rate strictly improves up the interface ladder.  Defaults to
   the full campaign: at quick size the 2% cell sees so few faults that
   tlm recovers them all and ties token, breaking strictness — and the
   full sweep still runs in tens of milliseconds. *)
let shape_holds ?(quick = false) () =
  let r = report ~quick () in
  let cell mechanism rate =
    List.find_opt
      (fun (c : FR.cell) -> c.FR.mechanism = mechanism && c.FR.rate = rate)
      r.FR.cells
  in
  List.for_all
    (fun rate ->
      match (cell "pin" rate, cell "tlm" rate, cell "token" rate) with
      | Some pin, Some tlm, Some token ->
          pin.FR.recovery_rate < tlm.FR.recovery_rate
          && tlm.FR.recovery_rate < token.FR.recovery_rate
          && pin.FR.mean_detect_latency > tlm.FR.mean_detect_latency
      | _ -> false)
    r.FR.rates
  && List.for_all
       (fun (c : FR.cell) -> c.FR.rate > 0.0 || c.FR.checksum_ok)
       r.FR.cells
