(** EXP-3 — paper Fig. 3 / §3.1: the HW/SW interface abstraction ladder.

    The same embedded application (sensor -> software transform -> sink)
    is co-simulated at the four Fig. 3 abstraction levels.  The paper's
    claim: modelling at the pins "is most accurate for evaluating
    performance, but is computationally expensive", while modelling at
    the process/OS level "is much more efficient computationally, but
    may not be useful for evaluating performance".  The table shows the
    monotone trade: kernel events fall by orders of magnitude as the
    abstraction rises, while timing error against the pin-level
    reference grows. *)

open Codesign

let levels = [ Cosim.Pin; Cosim.Transaction; Cosim.Driver; Cosim.Message ]

let run ?(quick = false) () =
  let items = if quick then 8 else 32 in
  let work = if quick then 4 else 12 in
  let ms =
    List.map (fun level -> Cosim.run_echo_system ~level ~items ~work ()) levels
  in
  let reference = List.hd ms in
  let rows =
    List.map
      (fun (m : Cosim.metrics) ->
        let err =
          abs_float
            (float_of_int (m.Cosim.sim_cycles - reference.Cosim.sim_cycles)
            /. float_of_int reference.Cosim.sim_cycles)
        in
        [
          Cosim.level_name m.Cosim.level;
          Report.fi m.Cosim.events;
          Report.fi m.Cosim.activations;
          Report.fi m.Cosim.bus_ops;
          Report.fi m.Cosim.sim_cycles;
          Report.fp err;
          Report.fi m.Cosim.checksum;
        ])
      ms
  in
  Report.table
    ~title:
      (Printf.sprintf
         "EXP-3 (Fig. 3 / SS3.1): co-simulation abstraction ladder (%d \
          items, work %d)"
         items work)
    ~headers:
      [ "abstraction"; "events"; "activations"; "bus ops"; "sim cycles";
        "timing err"; "checksum" ]
    rows

(* invariants asserted by the test suite *)
let shape_holds ?(quick = true) () =
  let items = if quick then 8 else 32 in
  let work = if quick then 4 else 12 in
  let ms =
    List.map (fun level -> Cosim.run_echo_system ~level ~items ~work ()) levels
  in
  match ms with
  | [ pin; tlm; drv; msg ] ->
      List.for_all (fun m -> m.Cosim.outcome = Cosim.Completed) ms
      && pin.Cosim.events > tlm.Cosim.events
      && tlm.Cosim.events >= drv.Cosim.events
      && drv.Cosim.events > msg.Cosim.events
      && pin.Cosim.checksum = msg.Cosim.checksum
  | _ -> false
