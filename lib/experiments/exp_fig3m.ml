(** EXP-3M — paper Fig. 3 / §3.1: the {e mixed}-level grid.

    The paper's point about the interface-abstraction hierarchy is not
    only that a whole system can be simulated at any one rung, but that
    a real co-simulator assigns a level {e per component} to trade
    accuracy against speed where it matters.  This experiment sweeps
    every per-component assignment of the echo system —
    source-interface × software-model × sink-interface, 4³ = 64 grid
    points — and groups them by ladder position (the sum of the three
    component ranks, 0 = all-pin .. 9 = all-message).

    The claims the table demonstrates: the functional checksum never
    moves anywhere on the grid; mean simulation cost (kernel events)
    falls monotonically with ladder position, interpolating between the
    pure-pin and pure-message corners; and bus operations vanish exactly
    when both interfaces reach the message rung.  Within one position
    the spread (min..max) is wide — which component is abstracted
    matters as much as how many, the software model dominating — and
    that per-component choice is precisely what a fixed single-level
    simulator cannot express. *)

open Codesign

let levels = [ Cosim.Pin; Cosim.Transaction; Cosim.Driver; Cosim.Message ]

let grid () =
  List.concat_map
    (fun src ->
      List.concat_map
        (fun cpu -> List.map (fun sink -> { Cosim.src; cpu; sink }) levels)
        levels)
    levels

(* The 64 grid points are independent co-simulations (each builds its
   own kernel and media), so the sweep fans out over the shared
   {!Codesign_par.Domain_pool}; results merge by grid index, making the
   table a pure function of (items, work) at every [jobs]. *)
let run_grid ?(jobs = 1) ~items ~work () =
  let points = Array.of_list (grid ()) in
  Codesign_par.Domain_pool.map ~jobs
    ~name:(fun i -> Cosim.assignment_name points.(i))
    (fun a -> (a, Cosim.run_echo_assignment ~levels:a ~items ~work ()))
    points
  |> Array.to_list

let params ~quick = if quick then (8, 4) else (32, 12)

let run ?(quick = false) ?(jobs = 1) () =
  let items, work = params ~quick in
  let all = run_grid ~jobs ~items ~work () in
  let positions = List.init 10 (fun p -> p) in
  let rows =
    List.map
      (fun p ->
        let ms =
          List.filter_map
            (fun (a, m) ->
              if Cosim.ladder_position a = p then Some m else None)
            all
        in
        let n = List.length ms in
        let events = List.map (fun m -> m.Cosim.events) ms in
        let min_e = List.fold_left min max_int events in
        let max_e = List.fold_left max 0 events in
        let mean_e = List.fold_left ( + ) 0 events / n in
        let mean_bus =
          List.fold_left (fun acc m -> acc + m.Cosim.bus_ops) 0 ms / n
        in
        let checksums =
          List.sort_uniq compare (List.map (fun m -> m.Cosim.checksum) ms)
        in
        [
          string_of_int p;
          string_of_int n;
          Report.fi min_e;
          Report.fi mean_e;
          Report.fi max_e;
          Report.fi mean_bus;
          (match checksums with
          | [ c ] -> Report.fi c
          | _ -> "DISAGREE");
        ])
      positions
  in
  Report.table
    ~title:
      (Printf.sprintf
         "EXP-3M (Fig. 3 / SS3.1): mixed-level grid, 64 src:cpu:sink \
          assignments (%d items, work %d)"
         items work)
    ~headers:
      [ "ladder pos"; "n"; "events min"; "events mean"; "events max";
        "bus ops mean"; "checksum" ]
    rows

(* invariants asserted by the test suite *)
let shape_holds ?(quick = true) () =
  let items, work = params ~quick in
  let all = run_grid ~items ~work () in
  let pin = List.assoc (Cosim.pure Cosim.Pin) all in
  let completed =
    List.for_all (fun (_, m) -> m.Cosim.outcome = Cosim.Completed) all
  in
  let checksum_constant =
    List.for_all (fun (_, m) -> m.Cosim.checksum = pin.Cosim.checksum) all
  in
  let bus_ops_consistent =
    List.for_all
      (fun (a, m) ->
        (m.Cosim.bus_ops = 0)
        = (a.Cosim.src = Cosim.Message && a.Cosim.sink = Cosim.Message))
      all
  in
  (* mean kernel-event cost is monotone in the ladder position *)
  let mean_events p =
    let es =
      List.filter_map
        (fun (a, m) ->
          if Cosim.ladder_position a = p then Some m.Cosim.events else None)
        all
    in
    List.fold_left ( + ) 0 es / List.length es
  in
  let means = List.init 10 mean_events in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  (* the pure diagonal reproduces the single-level runner exactly *)
  let pure_identical =
    List.for_all
      (fun level ->
        let via_grid = List.assoc (Cosim.pure level) all in
        let direct = Cosim.run_echo_system ~level ~items ~work () in
        via_grid = direct)
      levels
  in
  completed && checksum_constant && bus_ops_consistent
  && non_increasing means && pure_identical
