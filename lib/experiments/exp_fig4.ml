(** EXP-4 — paper Fig. 4 / §4.1: the embedded microprocessor system and
    Chinook-style interface co-synthesis [11].

    For the canonical embedded configuration (microprocessor + sensor +
    transmitter + glue logic) we synthesise both halves of the HW/SW
    interface in polled and in interrupt-driven mode, then co-simulate
    each complete system (generated drivers running on the ISS over the
    TLM bus against live device models) and verify the data stream.

    Expected shape: the polled drivers need less glue hardware (no
    synchroniser flops) but burn more processor cycles busy-waiting; the
    interrupt drivers add hardware (synchronisers, ISR code bytes) and
    spend fewer instructions per transfer. *)

module K = Codesign_sim.Kernel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module Device = Codesign_bus.Device
module Interrupt = Codesign_bus.Interrupt
module Is = Codesign_bus.Interface_synth
module Cpu = Codesign_isa.Cpu
module Asm = Codesign_isa.Asm
module I = Codesign_isa.Isa
open Codesign

let spec ~irq_mode =
  {
    Is.dname = "io";
    base = 0x10000;
    addr_bits = 20;
    ports =
      [
        {
          Is.pname = "sensor";
          direction = Is.In_port;
          data_offset = 1;
          status_offset = Some 0;
          mode = (if irq_mode then Is.Irq_driven 0 else Is.Polled);
        };
        {
          Is.pname = "tx";
          direction = Is.Out_port;
          data_offset = 0x11;
          status_offset = Some 0x10;
          mode = Is.Polled;
        };
      ];
  }

let echo_entry items =
  [
    Asm.Ins (I.Li (10, items));
    Asm.Label "echo_loop";
    Asm.Ins (I.Jal (31, "io_sensor_read"));
    Asm.Ins (I.Jal (31, "io_tx_write"));
    Asm.Ins (I.Alui (I.Sub, 10, 10, 1));
    Asm.Ins (I.B (I.Ne, 10, 0, "echo_loop"));
    Asm.Ins I.Halt;
  ]

type outcome = {
  mode : string;
  driver_bytes : int;
  has_isr : bool;
  glue_gates : int;
  glue_area : int;
  sync_flops : int;
  cpu_instructions : int;
  bus_reads : int;
  sim_cycles : int;
  transferred : int list;
}

let run_mode ~irq_mode ~items =
  let driver, glue = Is.synthesize (spec ~irq_mode) in
  let entry = Is.program ~entry:(echo_entry items) driver in
  let k = K.create () in
  let ic = Interrupt.create () in
  let src_irq = if irq_mode then Some (ic, 0) else None in
  let src =
    Device.Stream_src.create ?irq:src_irq ~depth:4 ~period:120 ~count:items
      ~gen:(fun i -> (i * 5) + 1)
      k ()
  in
  let sink = Device.Stream_sink.create ~period:40 k () in
  let map =
    M.create
      [
        Device.Stream_src.region ~name:"src" ~base:0x10000 src;
        Device.Stream_sink.region ~name:"sink" ~base:0x10010 sink;
        Interrupt.region ~name:"intc" ~base:0x1FF00 ic;
      ]
  in
  let bus = Bus.Tlm.create k map in
  let iface = Bus.tlm_iface bus in
  let img = Asm.assemble entry in
  let env =
    {
      Cpu.default_env with
      Cpu.mem_read =
        (fun a -> if a >= 0x10000 then Some (iface.Bus.bus_read a) else None);
      mem_write =
        (fun a v ->
          if a >= 0x10000 then begin
            iface.Bus.bus_write a v;
            true
          end
          else false);
    }
  in
  let cpu = Cpu.create ~env img.Asm.code in
  Interrupt.on_change ic (fun level -> Cpu.set_irq cpu level);
  let done_at = ref 0 in
  K.spawn ~name:"cpu" k (fun () ->
      while Cpu.status cpu = Cpu.Running do
        let cy = Cpu.step cpu in
        if cy > 0 then K.wait cy
      done;
      done_at := K.now k);
  ignore (K.run ~expect_quiescent:true k);
  (if Cpu.status cpu <> Cpu.Halted then
     let status =
       match Cpu.status cpu with
       | Cpu.Running -> "still running"
       | Cpu.Trapped m -> "trapped: " ^ m
       | Cpu.Halted -> assert false
     in
     failwith
       (Printf.sprintf
          "Exp_fig4: CPU did not halt in %s mode (%s at pc %d, kernel time %d)"
          (if irq_mode then "interrupt" else "polled")
          status (Cpu.pc cpu) (K.now k)));
  {
    mode = (if irq_mode then "interrupt" else "polled");
    driver_bytes = driver.Is.code_bytes;
    has_isr = driver.Is.isr <> None;
    glue_gates = glue.Is.gate_count;
    glue_area = glue.Is.area;
    sync_flops = glue.Is.sync_flops;
    cpu_instructions = Cpu.instret cpu;
    bus_reads = (iface.Bus.bus_stats ()).Bus.reads;
    sim_cycles = !done_at;
    transferred = Codesign_bus.Device.Stream_sink.accepted sink;
  }

let run ?(quick = false) () =
  let items = if quick then 4 else 16 in
  let polled = run_mode ~irq_mode:false ~items in
  let irq = run_mode ~irq_mode:true ~items in
  let expected = List.init items (fun i -> (i * 5) + 1) in
  let row (o : outcome) =
    [
      o.mode;
      Report.fi o.driver_bytes;
      (if o.has_isr then "yes" else "no");
      Report.fi o.glue_gates;
      Report.fi o.glue_area;
      Report.fi o.sync_flops;
      Report.fi o.cpu_instructions;
      Report.fi o.bus_reads;
      Report.fi o.sim_cycles;
      (if o.transferred = expected then "ok" else "CORRUPT");
    ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "EXP-4 (Fig. 4 / SS4.1): interface co-synthesis for the embedded \
          microprocessor system (%d transfers, co-simulated end-to-end)"
         items)
    ~headers:
      [ "driver mode"; "driver bytes"; "isr"; "glue gates"; "glue area";
        "sync flops"; "cpu instrs"; "bus reads"; "sim cycles"; "data" ]
    [ row polled; row irq ]

let shape_holds ?(quick = true) () =
  let items = if quick then 4 else 16 in
  let polled = run_mode ~irq_mode:false ~items in
  let irq = run_mode ~irq_mode:true ~items in
  let expected = List.init items (fun i -> (i * 5) + 1) in
  polled.transferred = expected
  && irq.transferred = expected
  && irq.driver_bytes > polled.driver_bytes
  && irq.sync_flops > polled.sync_flops
  && irq.bus_reads < polled.bus_reads
