(** EXP-P — conservative partitioned co-simulation (ROADMAP PDES item).

    The pipeline-mesh workload ({!Codesign_workloads.Apps.mesh}) runs on
    the partitioned kernel at 1, 2 and 4 partitions under a lane-based
    partition map.  Expected shape: every observable — end time, event
    and activation counts, the checksum over port writes and channel
    traffic — is byte-identical at every partition count (conservative
    synchronisation with channel-latency lookahead replays the serial
    dispatch order exactly); only wall time may move, and that is the
    bench pair's business, not this table's. *)

open Codesign
module Apps = Codesign_workloads.Apps
module Checksum = Codesign_obs.Checksum

let result_sig (r : Cosim.network_result) =
  let pw =
    List.map (fun (p, port, v) -> Printf.sprintf "%s:%d:%d" p port v)
      r.Cosim.port_writes
  in
  let cs =
    List.map
      (fun (name, (s : Codesign_sim.Channel.stats)) ->
        Printf.sprintf "%s:%d:%d:%d:%d" name s.sends s.messages
          s.blocked_sends s.recv_blocks)
      r.Cosim.chan_stats
  in
  Printf.sprintf "t=%d|%s|%s" r.Cosim.end_time (String.concat ";" pw)
    (String.concat ";" cs)

let run ?(quick = false) () =
  let stages = if quick then 2 else 4 in
  let lanes = 4 in
  let count = if quick then 8 else 24 in
  let work = if quick then 4 else 8 in
  let hop_latency = 4 in
  let net = Apps.mesh ~stages ~lanes ~count ~work ~hop_latency () in
  let boundary_messages partition (r : Cosim.network_result) =
    let part name =
      match List.assoc_opt name partition with Some p -> p | None -> 0
    in
    List.fold_left
      (fun acc (c : Codesign_ir.Process_network.channel) ->
        if part c.src <> part c.dst then
          acc
          + (List.assoc c.cname r.Cosim.chan_stats).Codesign_sim.Channel
              .messages
        else acc)
      0 net.Codesign_ir.Process_network.channels
  in
  let rows =
    List.map
      (fun partitions ->
        let partition =
          if partitions = 1 then []
          else Apps.mesh_partition ~stages ~lanes ~partitions ()
        in
        let r =
          if partitions = 1 then Cosim.run_network net
          else Cosim.run_network ~partition net
        in
        [
          string_of_int partitions;
          Report.fi r.Cosim.end_time;
          Report.fi r.Cosim.net_events;
          Report.fi r.Cosim.net_activations;
          Report.fi (boundary_messages partition r);
          Checksum.of_string (result_sig r);
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "EXP-P: conservative partitioned kernel — %dx%d pipeline mesh, \
          %d items, hop latency %d (every column except boundary msgs \
          must be partition-invariant)"
         stages lanes count hop_latency)
    ~headers:
      [ "partitions"; "end time"; "events"; "activations";
        "boundary msgs"; "checksum" ]
    ~align:[ Report.R; R; R; R; R; R ]
    rows

let shape_holds ?(quick = true) () =
  let stages = if quick then 2 else 3 in
  let lanes = 2 in
  let net = Apps.mesh ~stages ~lanes ~count:6 ~work:4 () in
  let serial = Cosim.run_network net in
  let partitioned =
    Cosim.run_network
      ~partition:(Apps.mesh_partition ~stages ~lanes ~partitions:2 ())
      net
  in
  result_sig serial = result_sig partitioned
  && serial.Cosim.net_events = partitioned.Cosim.net_events
  && serial.Cosim.net_activations = partitioned.Cosim.net_activations
