(** Full applications assembled from behaviours and channels — the
    system-level workloads of the co-simulation and multi-threaded
    co-processor experiments.

    All processes are pure {!Codesign_ir.Behavior} values; mapping (SW
    vs HW) is chosen by the caller and can be changed with
    {!Codesign_ir.Process_network.remap}. *)

val producer : ?name:string -> chan:string -> count:int -> unit -> Codesign_ir.Behavior.proc
(** Sends [count] deterministic samples ([(7i mod 23) - 5]) on [chan]. *)

val transform :
  ?name:string ->
  in_chan:string ->
  out_chan:string ->
  count:int ->
  ?work:int ->
  unit ->
  Codesign_ir.Behavior.proc
(** Receives [count] items, applies a MAC-flavoured transform iterated
    [work] times (default 8) per item, and forwards the result. *)

val consumer :
  ?name:string -> chan:string -> count:int -> port:int -> unit -> Codesign_ir.Behavior.proc
(** Receives [count] items, accumulates, and writes the final sum to an
    output [port]; result variable ["acc"]. *)

val pipeline :
  ?stages:int ->
  ?count:int ->
  ?work:int ->
  ?depth:int ->
  unit ->
  Codesign_ir.Process_network.t
(** producer -> [stages] transforms -> consumer (default 2 transforms,
    16 items, FIFO depth 2); everything initially mapped to software.
    The consumer's output port is 1. *)

val fork_join :
  ?workers:int ->
  ?items:int ->
  ?work:int ->
  unit ->
  Codesign_ir.Process_network.t
(** A splitter distributing [items] round-robin to [workers] transform
    workers (default 3), merged by a joiner that emits the checksum on
    port 1 — the multi-threaded co-processor shape of paper Fig. 9. *)

val mesh :
  ?stages:int ->
  ?lanes:int ->
  ?count:int ->
  ?work:int ->
  ?hop_latency:int ->
  unit ->
  Codesign_ir.Process_network.t
(** A wide [stages] x [lanes] pipeline mesh (defaults 3 x 4, 16 items,
    work 8): every lane is a producer -> transform chain -> consumer
    pipeline, but each hop rotates one lane left, weaving the lanes into
    a single connected network.  All hops are latency channels
    ([hop_latency], default 4, must be >= 1), so any lane-wise partition
    of the mesh has per-link lookahead — the workload for the
    partitioned-vs-serial kernel benchmarks.  Everything is mapped to
    hardware; each consumer emits on port 1 and its expected sum is
    {!expected_pipeline_output} (identical producer streams, rotation is
    a permutation).
    @raise Invalid_argument on stages/lanes < 1 or hop_latency < 1. *)

val mesh_partition :
  ?stages:int ->
  ?lanes:int ->
  partitions:int ->
  unit ->
  (string * int) list
(** Lane-based partition map for {!mesh} (same [stages]/[lanes]
    defaults): process of lane [l] -> partition [l mod partitions].
    Every inter-stage hop crosses a boundary when [partitions > 1]. *)

val expected_pipeline_output : count:int -> work:int -> stages:int -> int
(** Reference output of {!pipeline}'s consumer port (computed with plain
    OCaml arithmetic, for asserting co-simulation correctness). *)
