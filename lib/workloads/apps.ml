module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network

let i k = B.Int k
let v x = B.Var x
let ( +: ) a b = B.Bin (B.Add, a, b)
let ( *: ) a b = B.Bin (B.Mul, a, b)
let ( >>: ) a b = B.Bin (B.Shr, a, b)
let ( %: ) a b = B.Bin (B.Rem, a, b)
let ( -: ) a b = B.Bin (B.Sub, a, b)

let sample_expr idx = ((idx *: i 7) %: i 23) -: i 5

let producer ?(name = "producer") ~chan ~count () =
  {
    B.name;
    params = [];
    arrays = [];
    results = [];
    body =
      [ B.For ("p", i 0, i count, [ B.Send (chan, sample_expr (v "p")) ]) ];
  }

(* one MAC-ish round: acc = (acc * 3 + x) >> 1, iterated [work] times *)
let transform ?(name = "transform") ~in_chan ~out_chan ~count ?(work = 8) ()
    =
  {
    B.name;
    params = [];
    arrays = [];
    results = [];
    body =
      [
        B.For
          ( "p",
            i 0,
            i count,
            [
              B.Recv ("x", in_chan);
              B.Assign ("acc", v "x");
              B.For
                ( "w",
                  i 0,
                  i work,
                  [ B.Assign ("acc", ((v "acc" *: i 3) +: v "x") >>: i 1) ]
                );
              B.Send (out_chan, v "acc");
            ] );
      ];
  }

let consumer ?(name = "consumer") ~chan ~count ~port () =
  {
    B.name;
    params = [];
    arrays = [];
    results = [ "acc" ];
    body =
      [
        B.Assign ("acc", i 0);
        B.For
          ( "p",
            i 0,
            i count,
            [ B.Recv ("x", chan); B.Assign ("acc", v "acc" +: v "x") ] );
        B.PortOut (port, v "acc");
      ];
  }

let pipeline ?(stages = 2) ?(count = 16) ?(work = 8) ?(depth = 2) () =
  if stages < 1 then invalid_arg "Apps.pipeline: stages < 1";
  let chan k = Printf.sprintf "c%d" k in
  let procs =
    (producer ~chan:(chan 0) ~count (), Pn.Sw)
    :: List.init stages (fun s ->
           ( transform
               ~name:(Printf.sprintf "stage%d" s)
               ~in_chan:(chan s)
               ~out_chan:(chan (s + 1))
               ~count ~work (),
             Pn.Sw ))
    @ [ (consumer ~chan:(chan stages) ~count ~port:1 (), Pn.Sw) ]
  in
  let channels =
    List.init (stages + 1) (fun k ->
        {
          Pn.cname = chan k;
          src = (if k = 0 then "producer" else Printf.sprintf "stage%d" (k - 1));
          dst =
            (if k = stages then "consumer" else Printf.sprintf "stage%d" k);
          depth;
          latency = 0;
        })
  in
  Pn.make ~name:"pipeline" procs channels

let fork_join ?(workers = 3) ?(items = 12) ?(work = 16) () =
  if workers < 1 then invalid_arg "Apps.fork_join: workers < 1";
  let per_worker = items / workers in
  if per_worker * workers <> items then
    invalid_arg "Apps.fork_join: items must divide evenly among workers";
  let in_chan w = Printf.sprintf "w%d_in" w in
  let out_chan w = Printf.sprintf "w%d_out" w in
  (* splitter: round-robin distribution *)
  let splitter =
    {
      B.name = "splitter";
      params = [];
      arrays = [];
      results = [];
      body =
        [
          B.For
            ( "r",
              i 0,
              i per_worker,
              List.init workers (fun w ->
                  B.Send
                    ( in_chan w,
                      sample_expr ((v "r" *: i workers) +: i w) )) );
        ];
    }
  in
  let worker w =
    transform
      ~name:(Printf.sprintf "worker%d" w)
      ~in_chan:(in_chan w) ~out_chan:(out_chan w) ~count:per_worker ~work ()
  in
  let joiner =
    {
      B.name = "joiner";
      params = [];
      arrays = [];
      results = [ "acc" ];
      body =
        [
          B.Assign ("acc", i 0);
          B.For
            ( "r",
              i 0,
              i per_worker,
              List.concat
                (List.init workers (fun w ->
                     [
                       B.Recv ("x", out_chan w);
                       B.Assign ("acc", v "acc" +: v "x");
                     ])) );
          B.PortOut (1, v "acc");
        ];
    }
  in
  let procs =
    (splitter, Pn.Sw)
    :: List.init workers (fun w -> (worker w, Pn.Hw))
    @ [ (joiner, Pn.Sw) ]
  in
  let channels =
    List.concat
      (List.init workers (fun w ->
           [
             {
               Pn.cname = in_chan w;
               src = "splitter";
               dst = Printf.sprintf "worker%d" w;
               depth = 2;
               latency = 0;
             };
             {
               Pn.cname = out_chan w;
               src = Printf.sprintf "worker%d" w;
               dst = "joiner";
               depth = 2;
               latency = 0;
             };
           ]))
  in
  Pn.make ~name:"fork_join" procs channels

(* A wide N-stage x M-lane pipeline mesh.  Every lane runs the same
   producer -> stage^N -> consumer chain, but each hop rotates one lane
   to the left, so all lanes are woven into a single connected network —
   partitioning it by lane actually exercises cross-partition traffic on
   every hop.  Hops are latency channels (delay lines), giving a
   partitioned run [hop_latency] of lookahead per link; because every
   producer emits the identical sample stream and the rotation is a
   permutation, each consumer still accumulates exactly the serial
   pipeline's total. *)
let mesh ?(stages = 3) ?(lanes = 4) ?(count = 16) ?(work = 8)
    ?(hop_latency = 4) () =
  if stages < 1 then invalid_arg "Apps.mesh: stages < 1";
  if lanes < 1 then invalid_arg "Apps.mesh: lanes < 1";
  if hop_latency < 1 then invalid_arg "Apps.mesh: hop_latency < 1";
  let chan s l = Printf.sprintf "c%d_%d" s l in
  let stage_name s l = Printf.sprintf "s%d_%d" s l in
  let producer_name l = Printf.sprintf "producer%d" l in
  let consumer_name l = Printf.sprintf "consumer%d" l in
  let procs =
    List.init lanes (fun l ->
        (producer ~name:(producer_name l) ~chan:(chan 0 l) ~count (), Pn.Hw))
    @ List.concat
        (List.init stages (fun s ->
             List.init lanes (fun l ->
                 ( transform ~name:(stage_name s l) ~in_chan:(chan s l)
                     ~out_chan:(chan (s + 1) ((l + 1) mod lanes))
                     ~count ~work (),
                   Pn.Hw ))))
    @ List.init lanes (fun l ->
          ( consumer ~name:(consumer_name l) ~chan:(chan stages l) ~count
              ~port:1 (),
            Pn.Hw ))
  in
  let channels =
    List.concat
      (List.init (stages + 1) (fun s ->
           List.init lanes (fun l ->
               let src =
                 if s = 0 then producer_name l
                 else stage_name (s - 1) ((l - 1 + lanes) mod lanes)
               in
               let dst =
                 if s = stages then consumer_name l else stage_name s l
               in
               {
                 Pn.cname = chan s l;
                 src;
                 dst;
                 depth = 2;
                 latency = hop_latency;
               })))
  in
  Pn.make ~name:"mesh" procs channels

(* Lane-based partition map for {!mesh}: every process of lane [l] goes
   to partition [l mod partitions], so each inter-stage hop (which
   rotates lanes) crosses a boundary whenever partitions > 1. *)
let mesh_partition ?(stages = 3) ?(lanes = 4) ~partitions () =
  if partitions < 1 then invalid_arg "Apps.mesh_partition: partitions < 1";
  let part l = l mod partitions in
  List.init lanes (fun l -> (Printf.sprintf "producer%d" l, part l))
  @ List.concat
      (List.init stages (fun s ->
           List.init lanes (fun l -> (Printf.sprintf "s%d_%d" s l, part l))))
  @ List.init lanes (fun l -> (Printf.sprintf "consumer%d" l, part l))

let expected_pipeline_output ~count ~work ~stages =
  let transform_item x =
    let acc = ref x in
    for _ = 1 to work do
      acc := ((!acc * 3) + x) asr 1
    done;
    !acc
  in
  let rec through n x = if n = 0 then x else through (n - 1) (transform_item x) in
  let total = ref 0 in
  for p = 0 to count - 1 do
    total := !total + through stages ((p * 7 mod 23) - 5)
  done;
  !total
