type watched = { wname : string; width : int; code : string }

type t = {
  kernel : Kernel.t;
  timescale : string;
  mutable watchlist : watched list;  (** reversed *)
  mutable records : (int * string * int) list;  (** reversed: time, code, v *)
  mutable next_code : int;
}

let create ?(timescale = "1ns") kernel =
  { kernel; timescale; watchlist = []; records = []; next_code = 0 }

(* VCD identifier codes: printable ASCII starting at '!' *)
let code_of_int n =
  let base = 94 and first = 33 in
  let rec go n acc =
    let c = Char.chr (first + (n mod base)) in
    let acc = String.make 1 c ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

let watch t ?(width = 32) (s : int Signal.t) =
  let code = code_of_int t.next_code in
  t.next_code <- t.next_code + 1;
  t.watchlist <- { wname = Signal.name s; width; code } :: t.watchlist;
  (* initial value at watch time *)
  t.records <- (Kernel.now t.kernel, code, Signal.read s) :: t.records;
  Kernel.spawn ~name:("vcd:" ^ Signal.name s) ~daemon:true t.kernel (fun () ->
      let rec follow () =
        let v = Signal.await_change s in
        t.records <- (Kernel.now t.kernel, code, v) :: t.records;
        follow ()
      in
      follow ())

let changes t =
  let by_code =
    List.map (fun w -> (w.code, w.wname)) t.watchlist
  in
  List.rev_map
    (fun (time, code, v) -> (time, List.assoc code by_code, v))
    t.records

let binary_of ~width v =
  (* values wider than the declared width are masked, not truncated to a
     misleading prefix *)
  let v = if width < Sys.int_size then v land ((1 lsl width) - 1) else v in
  let buf = Bytes.make width '0' in
  for i = 0 to width - 1 do
    if (v lsr i) land 1 = 1 then Bytes.set buf (width - 1 - i) '1'
  done;
  Bytes.to_string buf

let value_change w v =
  if w.width = 1 then Printf.sprintf "%d%s\n" (if v <> 0 then 1 else 0) w.code
  else Printf.sprintf "b%s %s\n" (binary_of ~width:w.width v) w.code

let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "$timescale %s $end\n$scope module codesign $end\n"
       t.timescale);
  let watches = List.rev t.watchlist in
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" w.width w.code w.wname))
    watches;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let records = List.rev t.records in
  let watch_of code = List.find (fun w -> w.code = code) watches in
  (* $dumpvars: the initial value of every watched signal (the record
     pushed at watch time), so viewers show defined values from time 0
     instead of 'x' until the first change. *)
  let initials = Hashtbl.create 8 in
  List.iter
    (fun (_, code, v) ->
      if not (Hashtbl.mem initials code) then Hashtbl.add initials code v)
    records;
  Buffer.add_string buf "$dumpvars\n";
  List.iter
    (fun w ->
      match Hashtbl.find_opt initials w.code with
      | Some v -> Buffer.add_string buf (value_change w v)
      | None -> ())
    watches;
  Buffer.add_string buf "$end\n";
  (* change section: everything after each signal's initial record,
     grouped by time *)
  let seen = Hashtbl.create 8 in
  let current_time = ref (-1) in
  List.iter
    (fun (time, code, v) ->
      if not (Hashtbl.mem seen code) then Hashtbl.add seen code ()
      else begin
        if time <> !current_time then begin
          Buffer.add_string buf (Printf.sprintf "#%d\n" time);
          current_time := time
        end;
        Buffer.add_string buf (value_change (watch_of code) v)
      end)
    records;
  Buffer.contents buf
