open Effect
open Effect.Deep

exception Not_in_process
exception Deadlock of string

type stats = {
  events : int;
  scheduled : int;
  activations : int;
  spawned : int;
  end_time : int;
}

type t = {
  q : Event_queue.t;
  mutable now : int;
  mutable events : int;
  mutable activations : int;
  mutable spawned : int;
  mutable next_block_id : int;
  blocked : (int, string * bool) Hashtbl.t;  (** id -> (name, daemon) *)
  mutable tracer : (int -> string -> unit) option;
  mutable next_lane : int;  (** arrival-lane key allocator *)
}

(* Cumulative per-domain counters across every kernel run in this domain.
   The bench harness runs one experiment per domain and reads the deltas,
   so these must be domain-local, not global. *)
type domain_totals = {
  d_events : int;
  d_activations : int;
  d_scheduled : int;
  d_kernels : int;
}

type totals_cell = {
  mutable c_events : int;
  mutable c_activations : int;
  mutable c_scheduled : int;
  mutable c_kernels : int;
}

let totals_key =
  Domain.DLS.new_key (fun () ->
      { c_events = 0; c_activations = 0; c_scheduled = 0; c_kernels = 0 })

let domain_totals () =
  let c = Domain.DLS.get totals_key in
  {
    d_events = c.c_events;
    d_activations = c.c_activations;
    d_scheduled = c.c_scheduled;
    d_kernels = c.c_kernels;
  }

let diff_totals ~after ~before =
  {
    d_events = after.d_events - before.d_events;
    d_activations = after.d_activations - before.d_activations;
    d_scheduled = after.d_scheduled - before.d_scheduled;
    d_kernels = after.d_kernels - before.d_kernels;
  }

let merge_domain_totals d =
  let c = Domain.DLS.get totals_key in
  c.c_events <- c.c_events + d.d_events;
  c.c_activations <- c.c_activations + d.d_activations;
  c.c_scheduled <- c.c_scheduled + d.d_scheduled;
  c.c_kernels <- c.c_kernels + d.d_kernels

type _ Effect.t +=
  | Wait : int -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Whoami : string Effect.t

let create () =
  (Domain.DLS.get totals_key).c_kernels <-
    (Domain.DLS.get totals_key).c_kernels + 1;
  {
    q = Event_queue.create ();
    now = 0;
    events = 0;
    activations = 0;
    spawned = 0;
    next_block_id = 0;
    blocked = Hashtbl.create 16;
    tracer = None;
    next_lane = 0;
  }

let now k = k.now

let at k ~time thunk =
  if time < k.now then
    invalid_arg
      (Printf.sprintf "Kernel.at: time %d is in the past (now %d)" time k.now);
  Event_queue.push k.q ~time thunk

let at_keyed k ~time ~key ~seq thunk =
  if time < k.now then
    invalid_arg
      (Printf.sprintf "Kernel.at_keyed: time %d is in the past (now %d)" time
         k.now);
  Event_queue.push_keyed k.q ~time ~key ~seq thunk

let alloc_lane k =
  let l = k.next_lane in
  k.next_lane <- l + 1;
  l

let spawn ?(name = "proc") ?(daemon = false) k fn =
  k.spawned <- k.spawned + 1;
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait n ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  if n < 0 then
                    discontinue cont
                      (Invalid_argument "Kernel.wait: negative delay")
                  else
                    at k ~time:(k.now + n) (fun () ->
                        k.activations <- k.activations + 1;
                        continue cont ()))
          | Yield ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  at k ~time:k.now (fun () ->
                      k.activations <- k.activations + 1;
                      continue cont ()))
          | Suspend register ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  let id = k.next_block_id in
                  k.next_block_id <- id + 1;
                  Hashtbl.replace k.blocked id (name, daemon);
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        invalid_arg
                          ("Kernel: process " ^ name ^ " resumed twice");
                      resumed := true;
                      Hashtbl.remove k.blocked id;
                      at k ~time:k.now (fun () ->
                          k.activations <- k.activations + 1;
                          continue cont ())))
          | Whoami ->
              Some (fun (cont : (a, unit) continuation) -> continue cont name)
          | _ -> None);
    }
  in
  at k ~time:k.now (fun () ->
      k.activations <- k.activations + 1;
      match_with fn () handler)

let in_process f = try f () with Effect.Unhandled _ -> raise Not_in_process

let wait n = in_process (fun () -> perform (Wait n))
let yield () = in_process (fun () -> perform Yield)
let suspend ~register = in_process (fun () -> perform (Suspend register))
let self_name () = try perform Whoami with Effect.Unhandled _ -> "?"

let stats k =
  {
    events = k.events;
    scheduled = Event_queue.pushed_total k.q;
    activations = k.activations;
    spawned = k.spawned;
    end_time = k.now;
  }

let blocked_non_daemon k =
  Hashtbl.fold
    (fun _ (n, daemon) acc -> if daemon then acc else n :: acc)
    k.blocked []

let run ?until ?stop ?(expect_quiescent = false) ?(check_deadlock = false) k =
  let events0 = k.events
  and activations0 = k.activations
  and scheduled0 = Event_queue.pushed_total k.q in
  (* One reused slot keeps the steady-state dispatch loop allocation-free:
     pop_into merges the peek / bound-compare / pop of the old loop into a
     single heap operation per event. *)
  let limit = match until with Some u -> u | None -> max_int in
  let slot = Event_queue.slot () in
  let stopped =
    match stop with
    | None ->
        (* Hot path: no per-event predicate call. *)
        while Event_queue.pop_into k.q ~limit slot do
          k.now <- slot.Event_queue.s_time;
          k.events <- k.events + 1;
          slot.Event_queue.s_thunk ()
        done;
        false
    | Some stop ->
        let halted = ref false in
        while (not !halted) && not (stop ()) do
          if Event_queue.pop_into k.q ~limit slot then begin
            k.now <- slot.Event_queue.s_time;
            k.events <- k.events + 1;
            slot.Event_queue.s_thunk ()
          end
          else halted := true
        done;
        not !halted
  in
  (* With a bound, simulated time always advances to the bound — even
     when future events remain queued past it — so that repeated bounded
     runs keep a consistent clock for subsequent [at]/[wait] calls.  A
     [stop]ped run is an interruption, not a completed window: the clock
     stays wherever dispatch was cut off so a restore/resume sees a
     consistent timeline. *)
  (if not stopped then
     match until with Some u when u > k.now -> k.now <- u | _ -> ());
  let totals = Domain.DLS.get totals_key in
  totals.c_events <- totals.c_events + (k.events - events0);
  totals.c_activations <- totals.c_activations + (k.activations - activations0);
  totals.c_scheduled <-
    totals.c_scheduled + (Event_queue.pushed_total k.q - scheduled0);
  let stuck = blocked_non_daemon k in
  if
    (not stopped)
    && Event_queue.is_empty k.q
    && stuck <> []
    && (not expect_quiescent)
    && (until = None || check_deadlock)
  then begin
    let names = List.sort_uniq compare stuck |> String.concat ", " in
    raise (Deadlock names)
  end;
  stats k

let has_pending_events k = not (Event_queue.is_empty k.q)

let next_event_time k = Event_queue.min_time k.q

(* One barrier round of the partitioned (LBTS) loop: dispatch every
   event up to [horizon] and stop, leaving the clock at the last
   dispatched event.  No coasting, no deadlock check — the Partition
   driver owns both across the whole set of wheels.  Per-domain totals
   are settled here because a horizon run may execute on a worker
   domain whose DLS deltas are merged after the join. *)
let run_horizon k ~horizon =
  let events0 = k.events
  and activations0 = k.activations
  and scheduled0 = Event_queue.pushed_total k.q in
  let slot = Event_queue.slot () in
  while Event_queue.pop_into k.q ~limit:horizon slot do
    k.now <- slot.Event_queue.s_time;
    k.events <- k.events + 1;
    slot.Event_queue.s_thunk ()
  done;
  let totals = Domain.DLS.get totals_key in
  totals.c_events <- totals.c_events + (k.events - events0);
  totals.c_activations <- totals.c_activations + (k.activations - activations0);
  totals.c_scheduled <-
    totals.c_scheduled + (Event_queue.pushed_total k.q - scheduled0)

let coast k ~time = if time > k.now then k.now <- time

type snap = {
  s_q : Event_queue.snap;
  s_now : int;
  s_events : int;
  s_activations : int;
  s_spawned : int;
  s_next_block_id : int;
  s_next_lane : int;
  s_blocked : (int, string * bool) Hashtbl.t;
}

let snapshot k =
  {
    s_q = Event_queue.snapshot k.q;
    s_now = k.now;
    s_events = k.events;
    s_activations = k.activations;
    s_spawned = k.spawned;
    s_next_block_id = k.next_block_id;
    s_next_lane = k.next_lane;
    s_blocked = Hashtbl.copy k.blocked;
  }

let restore k s =
  Event_queue.restore k.q s.s_q;
  k.now <- s.s_now;
  k.events <- s.s_events;
  k.activations <- s.s_activations;
  k.spawned <- s.s_spawned;
  k.next_block_id <- s.s_next_block_id;
  k.next_lane <- s.s_next_lane;
  Hashtbl.reset k.blocked;
  Hashtbl.iter (fun id v -> Hashtbl.replace k.blocked id v) s.s_blocked

let trace k sink = k.tracer <- Some sink

let emit k msg =
  match k.tracer with None -> () | Some sink -> sink k.now msg
