(** Conservative partitioning of one process network over several event
    wheels (Chandy–Misra-style, with channel latencies as lookahead).

    A plan owns one {!Kernel} per partition plus a cross-partition
    mailbox per partition.  Channels and signals whose endpoints live on
    different partitions are {e routed}: their sends post (timestamp,
    lane, sequence, thunk) records to the destination mailbox instead of
    scheduling locally.  Execution proceeds in barrier rounds (an LBTS —
    lower bound on timestamp — loop):

    + drain every mailbox into its wheel with keyed injection
      ({!Kernel.at_keyed}), which restores each arrival's serial
      dispatch position;
    + compute the global safe bound [min(limit, emin + lmin - 1)] where
      [emin] is the earliest pending event anywhere and [lmin] the
      minimum routed-link latency;
    + let every partition dispatch up to the bound (serially here, or
      one domain per partition in [Codesign_par.Pdes]).

    Any event generated during a round lands at [>= emin + lmin], i.e.
    strictly past the bound, so it is injected before any wheel reaches
    its timestamp — no partition ever executes ahead of a message it has
    yet to receive.  Because injected arrivals carry the same (lane,
    sequence) keys a serial run would give them, the partitioned
    dispatch order — and hence every statistic, trace and checksum — is
    byte-identical to the single-wheel reference.

    Zero-lookahead links cannot cross a boundary: [emin + 0 - 1] would
    never pass [emin] and the loop would livelock, so {!route_channel}
    and {!route_signal} raise a documented [Invalid_argument] naming the
    offending channel/signal instead. *)

type t

val create : partitions:int -> t
(** A plan with [partitions] fresh kernels.
    @raise Invalid_argument when [partitions < 1]. *)

val partitions : t -> int

val kernel : t -> int -> Kernel.t
(** [kernel t i] is partition [i]'s wheel: spawn processes and create
    channels/signals for partition [i] on it. *)

val route_channel : t -> src:int -> dst:int -> 'a Channel.t -> unit
(** Declare that [c]'s sender lives on partition [src] and its receiver
    on [dst], and install the mailbox route.  The channel must have been
    created on [dst]'s kernel (delivery executes there).
    @raise Invalid_argument when the channel's latency is 0 (zero
    lookahead across a boundary — named in the message) or a partition
    id is out of range. *)

val route_signal : t -> src:int -> dst:int -> 'a Signal.t -> unit
(** Like {!route_channel} for a signal written on [src] and observed on
    [dst]. *)

val next_bound : t -> limit:int -> int option
(** Drain all mailboxes (keyed injection) and compute the next safe
    dispatch bound, or [None] when every wheel is exhausted up to
    [limit].  One call per barrier round. *)

val run_round : t -> int -> bound:int -> unit
(** Dispatch partition [i] up to [bound]
    ({!Kernel.run_horizon}).  Rounds for distinct partitions may run on
    distinct domains; within a round no partition may start before
    {!next_bound} returned. *)

val finish :
  ?until:int ->
  ?expect_quiescent:bool ->
  ?check_deadlock:bool ->
  t ->
  Kernel.stats
(** After the loop: coast every partition to [until] (when given), run
    the collective deadlock check with {!Kernel.run}'s semantics
    (raises {!Kernel.Deadlock} with the sorted blocked-process names),
    and return the merged statistics — counter sums, [end_time] the
    maximum over partitions. *)

val run_serial :
  ?until:int ->
  ?expect_quiescent:bool ->
  ?check_deadlock:bool ->
  t ->
  Kernel.stats
(** The reference driver: the full LBTS loop on the calling domain,
    partitions dispatched in index order each round.  Byte-identical in
    every observable to [Codesign_par.Pdes.run] on the same plan. *)
