type entry = { time : int; key : int; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable pushed : int;
}

let dummy = { time = 0; key = 0; seq = 0; thunk = ignore }

let create () = { heap = Array.make 64 dummy; len = 0; next_seq = 0; pushed = 0 }

(* Ordering: time, then key, then seq.  Ordinary events all carry
   [key = max_int] and a queue-assigned monotone [seq], so among
   themselves the queue is the historic stable (time, insertion-order)
   priority queue.  Keyed events — the cross-partition "arrival lane" —
   carry a caller-assigned (key, seq) pair, so their position within a
   timestamp is a property of the communication itself, not of when the
   event was physically pushed onto this wheel. *)
let before a b =
  a.time < b.time
  || (a.time = b.time
      && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let insert t e =
  if t.len = Array.length t.heap then begin
    let h = Array.make (2 * t.len) dummy in
    Array.blit t.heap 0 h 0 t.len;
    t.heap <- h
  end;
  t.pushed <- t.pushed + 1;
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && before t.heap.(!i) t.heap.((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let push t ~time thunk =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  let e = { time; key = max_int; seq = t.next_seq; thunk } in
  t.next_seq <- t.next_seq + 1;
  insert t e

let push_keyed t ~time ~key ~seq thunk =
  if time < 0 then invalid_arg "Event_queue.push_keyed: negative time";
  if key < 0 || key = max_int then
    invalid_arg "Event_queue.push_keyed: key must be in [0, max_int)";
  insert t { time; key; seq; thunk }

let sift_down t =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.len && before t.heap.(l) t.heap.(!m) then m := l;
    if r < t.len && before t.heap.(r) t.heap.(!m) then m := r;
    if !m = !i then continue_ := false
    else begin
      swap t !i !m;
      i := !m
    end
  done

let remove_top t =
  let top = t.heap.(0) in
  t.len <- t.len - 1;
  t.heap.(0) <- t.heap.(t.len);
  t.heap.(t.len) <- dummy;
  sift_down t;
  top

let pop t =
  if t.len = 0 then None
  else begin
    let top = remove_top t in
    Some (top.time, top.thunk)
  end

type slot = { mutable s_time : int; mutable s_thunk : unit -> unit }

let slot () = { s_time = 0; s_thunk = ignore }

let pop_into t ~limit out =
  t.len > 0
  && t.heap.(0).time <= limit
  && begin
       let top = remove_top t in
       out.s_time <- top.time;
       out.s_thunk <- top.thunk;
       true
     end

type snap = {
  s_heap : entry array;
  s_len : int;
  s_next_seq : int;
  s_pushed : int;
}

let snapshot t =
  {
    s_heap = Array.sub t.heap 0 t.len;
    s_len = t.len;
    s_next_seq = t.next_seq;
    s_pushed = t.pushed;
  }

let restore t s =
  let cap = max 64 s.s_len in
  if Array.length t.heap < cap then t.heap <- Array.make cap dummy;
  Array.blit s.s_heap 0 t.heap 0 s.s_len;
  Array.fill t.heap s.s_len (Array.length t.heap - s.s_len) dummy;
  t.len <- s.s_len;
  t.next_seq <- s.s_next_seq;
  t.pushed <- s.s_pushed

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
let min_time t = if t.len = 0 then max_int else t.heap.(0).time
let size t = t.len
let is_empty t = t.len = 0
let pushed_total t = t.pushed
