(** Blocking point-to-point channels: the [send]/[receive]/[wait]
    abstraction level of the paper's Fig. 3 (ref [3]).

    A channel with [depth = 0] is a rendezvous: [send] blocks until a
    receiver arrives (and vice versa).  With [depth > 0] it is a bounded
    FIFO: [send] blocks only when full, [recv] only when empty.  All
    queuing is strictly FIFO, so communication schedules are
    deterministic.

    Per-channel traffic counters feed the co-simulation experiments
    (message counts are the "event" currency at this abstraction
    level). *)

type 'a t

type stats = {
  sends : int;  (** completed message transfers *)
  send_blocks : int;  (** times a sender had to block *)
  recv_blocks : int;  (** times a receiver had to block *)
}

val create : ?depth:int -> ?name:string -> Kernel.t -> unit -> 'a t
(** [depth] defaults to 0 (rendezvous).  @raise Invalid_argument on
    negative depth. *)

val name : 'a t -> string
val depth : 'a t -> int
val stats : 'a t -> stats

val send : 'a t -> 'a -> unit
(** Blocking send; must run inside a kernel process when it blocks. *)

val recv : 'a t -> 'a
(** Blocking receive. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send: true on success (room in buffer or a waiting
    receiver). *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val occupancy : 'a t -> int
(** Messages currently buffered. *)

(** {2 Snapshot / restore}

    A snapshot copies the buffered messages and the traffic counters.
    Blocked senders/receivers hold one-shot effect continuations and
    cannot be captured: {!restore} {e abandons} any processes currently
    waiting on the channel (their resume thunks are dropped, they are
    never woken).  The supported fork discipline is to snapshot at
    quiescence and re-spawn the channel's communicating processes after
    each restore — see {!Kernel.snapshot}. *)

type 'a snap

val snapshot : 'a t -> 'a snap

val restore : 'a t -> 'a snap -> unit
(** Rewind buffer contents and counters; drop all current waiters. *)
