(** Blocking point-to-point channels: the [send]/[receive]/[wait]
    abstraction level of the paper's Fig. 3 (ref [3]).

    A channel with [depth = 0] is a rendezvous: [send] blocks until a
    receiver arrives (and vice versa).  With [depth > 0] it is a bounded
    FIFO: [send] blocks only when full, [recv] only when empty.  All
    queuing is strictly FIFO, so communication schedules are
    deterministic.

    A channel with [latency > 0] is a {e delay line}: [send] never
    blocks and the value arrives at the receiving side exactly [latency]
    ticks later ([depth] is ignored in this mode — in-flight capacity is
    unbounded).  The declared latency is the channel's {e lookahead}:
    when the channel crosses a partition boundary ({!Partition}), the
    conservative synchronization loop uses it as the guaranteed gap
    between a send and its earliest effect, so every partition can
    safely dispatch that far ahead.  Delivery is ordered by (channel
    lane, send sequence) in the destination wheel's arrival lane
    ({!Kernel.at_keyed}), making arrival order a property of the
    communication rather than of which wheel hosts the receiver — the
    keystone of the partitioned-equals-serial guarantee.

    Per-channel traffic counters feed the co-simulation experiments
    (message counts are the "event" currency at this abstraction
    level). *)

type 'a t

type stats = {
  sends : int;  (** completed send operations *)
  messages : int;  (** values actually obtained by receivers *)
  blocked_sends : int;  (** times a sender had to block *)
  recv_blocks : int;  (** times a receiver had to block *)
}
(** [sends - messages] is the traffic still in flight (buffered or
    travelling through a latency channel); [blocked_sends] separates
    rendezvous/full-FIFO back-pressure from free-running buffered
    traffic, so partition-boundary channels are observable. *)

val create :
  ?depth:int -> ?latency:int -> ?name:string -> Kernel.t -> unit -> 'a t
(** [depth] defaults to 0 (rendezvous); [latency] defaults to 0
    (immediate).  @raise Invalid_argument on negative depth or
    latency. *)

val name : 'a t -> string
val depth : 'a t -> int

val latency : 'a t -> int
(** Declared delivery latency — the channel's lookahead. *)

val lane : 'a t -> int
(** Arrival-lane key in the hosting kernel (creation order). *)

val stats : 'a t -> stats

val set_route : 'a t -> (int -> (unit -> unit) -> unit) -> unit
(** Install a cross-partition route: every subsequent send hands its
    (send sequence, delivery thunk) to the route instead of scheduling
    locally; the {!Partition} driver posts it to the destination
    partition's mailbox for keyed injection at the next barrier.
    @raise Invalid_argument when the channel has zero lookahead
    ([latency = 0], named in the message) — such a channel cannot cross
    a partition boundary without livelocking the LBTS loop. *)

val send : 'a t -> 'a -> unit
(** Blocking send; must run inside a kernel process when it blocks.
    Never blocks on a [latency > 0] channel. *)

val recv : 'a t -> 'a
(** Blocking receive. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send: true on success (room in buffer, a waiting
    receiver, or a latency channel — which always accepts). *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val occupancy : 'a t -> int
(** Messages currently buffered (for a latency channel: arrived but not
    yet received). *)

(** {2 Snapshot / restore}

    A snapshot copies the buffered messages and the traffic counters.
    Blocked senders/receivers hold one-shot effect continuations and
    cannot be captured: {!restore} {e abandons} any processes currently
    waiting on the channel (their resume thunks are dropped, they are
    never woken).  The supported fork discipline is to snapshot at
    quiescence and re-spawn the channel's communicating processes after
    each restore — see {!Kernel.snapshot}. *)

type 'a snap

val snapshot : 'a t -> 'a snap

val restore : 'a t -> 'a snap -> unit
(** Rewind buffer contents and counters; drop all current waiters. *)
