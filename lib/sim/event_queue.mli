(** A deterministic time-ordered event queue.

    Events are thunks ordered by (timestamp, key, sequence).  Ordinary
    {!push}ed events all carry the sentinel key [max_int] and a
    queue-assigned monotone sequence number, so among themselves the
    queue is a stable priority queue — events at equal timestamps fire
    in insertion order.  This stability is what makes the whole
    simulation framework reproducible run-to-run.

    {!push_keyed} is the {e arrival lane} used by latency channels and
    the partitioned kernel: the caller assigns the (key, seq) pair, so
    an event's position within its timestamp is a property of the
    communication that produced it (which channel, which send) rather
    than of when it was physically inserted into this particular wheel.
    That is what lets a cross-partition arrival — injected at a barrier,
    long after local events at the same timestamp were pushed — fire in
    exactly the place it would have occupied on a single serial wheel. *)

type t

val create : unit -> t

val push : t -> time:int -> (unit -> unit) -> unit
(** Schedule a thunk in the ordinary lane ([key = max_int], next
    insertion sequence).  @raise Invalid_argument on negative time. *)

val push_keyed : t -> time:int -> key:int -> seq:int -> (unit -> unit) -> unit
(** Schedule a thunk in the arrival lane: at its timestamp it fires
    before every ordinary event and is ordered against other keyed
    events by (key, seq).  Callers must keep (key, seq) pairs unique per
    timestamp (the latency machinery uses one key per channel and a
    per-channel send counter).  @raise Invalid_argument on negative time
    or a key outside [0, max_int). *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest event (ties broken by insertion
    order), or [None] when empty. *)

type slot = { mutable s_time : int; mutable s_thunk : unit -> unit }
(** A caller-owned out-cell for {!pop_into}: reusing one slot across a
    whole dispatch loop makes the steady-state drain allocation-free
    (no option/tuple per event). *)

val slot : unit -> slot
(** A fresh slot (initially time 0 / no-op thunk). *)

val pop_into : t -> limit:int -> slot -> bool
(** [pop_into t ~limit out] removes the earliest event into [out] and
    returns [true] iff the queue is nonempty and that event's time is
    [<= limit] — merging the peek-compare-pop sequence of a bounded
    dispatch loop into one call.  On [false] the queue is untouched.
    Pass [limit:max_int] for an unbounded drain. *)

val peek_time : t -> int option
(** Timestamp of the earliest event without removing it. *)

val min_time : t -> int
(** Timestamp of the earliest event, or [max_int] when empty — a
    non-allocating {!peek_time} for hot loops. *)

val size : t -> int

val is_empty : t -> bool

val pushed_total : t -> int
(** Number of pushes over the queue's lifetime (an event-count metric). *)

(** {2 Snapshot / restore}

    A snapshot copies the heap structure (times, sequence numbers,
    push counter) but shares the event {e thunks} with the live queue:
    closures cannot be deep-copied.  Restoring therefore re-arms the
    same thunks, which is only sound when every pending thunk is
    re-entrant — bare {!Kernel.at} callbacks and process-start events
    qualify; a thunk wrapping a one-shot effect continuation (a resumed
    {!Kernel.wait}/[suspend]) does not and would raise "resumed twice"
    when the restored copy fires after the original already ran.  The
    fault campaigns sidestep this entirely by snapshotting only at
    quiescence, when the heap is empty. *)

type snap

val snapshot : t -> snap
(** Capture heap contents, insertion-sequence counter and push total. *)

val restore : t -> snap -> unit
(** Rewind the queue to [snap]; events pushed since are discarded. *)
