(** Value-change-dump (VCD) recording of {!Signal} activity.

    The standard waveform interchange format, so pin-level co-simulations
    can be inspected with ordinary EDA wave viewers.  A recorder watches
    any number of integer signals; every value change is timestamped
    with kernel time.  Watchers are daemon processes (see
    {!Kernel.spawn}), so a simulation that ends with only watchers
    blocked is quiescent — no [expect_quiescent:true] needed.

    Typical use:

    {[
      let vcd = Vcd.create kernel in
      Vcd.watch vcd ~width:20 (Bus.Pin.addr_wire bus);
      Vcd.watch vcd ~width:1 (Bus.Pin.req_wire bus);
      ... run ...
      print_string (Vcd.dump vcd)
    ]} *)

type t

val create : ?timescale:string -> Kernel.t -> t
(** [timescale] defaults to ["1ns"]. *)

val watch : t -> ?width:int -> int Signal.t -> unit
(** Record every (waking) change of the signal under its {!Signal.name}.
    [width] (default 32) is the declared bit width.  The initial value
    is recorded at the watch time. *)

val changes : t -> (int * string * int) list
(** Raw records: (time, signal name, new value), in occurrence order. *)

val dump : t -> string
(** Render the VCD document ([$date]-free, so output is deterministic).
    Each signal's value at watch time appears in an initial
    [$dumpvars ... $end] section; subsequent changes follow under
    [#time] markers.  Vector values wider than the declared width are
    masked to it. *)
