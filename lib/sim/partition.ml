module K = Kernel

type post = { p_time : int; p_key : int; p_seq : int; p_run : unit -> unit }

type mailbox = {
  mb_lock : Mutex.t;
  mutable mb_posts : post list;  (** in reverse posting order *)
}

type t = {
  kernels : K.t array;
  mailboxes : mailbox array;
  mutable links : (string * int) list;  (** routed endpoint names, latency *)
  mutable lmin : int;  (** min link latency; max_int when no links *)
}

let create ~partitions =
  if partitions < 1 then invalid_arg "Partition.create: need >= 1 partition";
  {
    kernels = Array.init partitions (fun _ -> K.create ());
    mailboxes =
      Array.init partitions (fun _ ->
          { mb_lock = Mutex.create (); mb_posts = [] });
    links = [];
    lmin = max_int;
  }

let partitions t = Array.length t.kernels
let kernel t i = t.kernels.(i)

let check_link t ~what ~name ~src ~dst ~latency =
  let n = Array.length t.kernels in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg (Printf.sprintf "Partition: %s %S links partition %d -> %d, outside [0, %d)" what name src dst n);
  if latency < 1 then
    invalid_arg
      (Printf.sprintf
         "Partition: %s %S has zero lookahead (latency 0) across a partition \
          boundary (%d -> %d)%s; declare latency >= 1 or colocate the \
          endpoints"
         what name src dst
         (if src = dst then " — a partition self-loop cannot make progress"
          else ""));
  t.links <- (name, latency) :: t.links;
  if latency < t.lmin then t.lmin <- latency

(* Route a channel whose sender lives on partition [src] and receiver on
   partition [dst]: sends post their (time, lane, seq, deliver) record to
   the destination mailbox instead of scheduling locally.  The channel
   object itself must have been created on [dst]'s kernel (delivery runs
   there). *)
let route_channel t ~src ~dst c =
  check_link t ~what:"channel" ~name:(Channel.name c) ~src ~dst
    ~latency:(Channel.latency c);
  let ksrc = t.kernels.(src) and mb = t.mailboxes.(dst) in
  let lane = Channel.lane c and lat = Channel.latency c in
  Channel.set_route c (fun seq deliver ->
      let p = { p_time = K.now ksrc + lat; p_key = lane; p_seq = seq; p_run = deliver } in
      Mutex.lock mb.mb_lock;
      mb.mb_posts <- p :: mb.mb_posts;
      Mutex.unlock mb.mb_lock)

let route_signal t ~src ~dst s =
  check_link t ~what:"signal" ~name:(Signal.name s) ~src ~dst
    ~latency:(Signal.latency s);
  let ksrc = t.kernels.(src) and mb = t.mailboxes.(dst) in
  let lane = Signal.lane s and lat = Signal.latency s in
  Signal.set_route s (fun seq apply ->
      let p = { p_time = K.now ksrc + lat; p_key = lane; p_seq = seq; p_run = apply } in
      Mutex.lock mb.mb_lock;
      mb.mb_posts <- p :: mb.mb_posts;
      Mutex.unlock mb.mb_lock)

(* Barrier step: drain every mailbox into its wheel (keyed injection
   restores the serial dispatch position), then compute the next safe
   bound.  Safety argument: let emin be the earliest pending event across
   all wheels.  Any event a partition generates while dispatching up to
   bound B either stays local (scheduled normally, >= its creation time)
   or crosses a link with latency >= lmin, arriving at >= emin + lmin.
   With B = min(limit, emin + lmin - 1) every cross-partition arrival
   lands strictly after B, so it is injected at the next round's drain
   before any wheel has passed its timestamp — no partition ever
   dispatches ahead of a message it has yet to receive.  Each round
   dispatches the emin event, so emin strictly increases and the loop
   terminates.  A links-free plan gets B = limit in one round. *)
let next_bound t ~limit =
  Array.iteri
    (fun i mb ->
      Mutex.lock mb.mb_lock;
      let posts = mb.mb_posts in
      mb.mb_posts <- [];
      Mutex.unlock mb.mb_lock;
      let k = t.kernels.(i) in
      List.iter
        (fun p ->
          K.at_keyed k
            ~time:(max p.p_time (K.now k))
            ~key:p.p_key ~seq:p.p_seq p.p_run)
        (List.rev posts))
    t.mailboxes;
  let emin =
    Array.fold_left (fun acc k -> min acc (K.next_event_time k)) max_int
      t.kernels
  in
  if emin = max_int || emin > limit then None
  else if t.lmin = max_int then Some limit
  else if emin >= max_int - t.lmin then Some limit
  else Some (min limit (emin + t.lmin - 1))

let run_round t i ~bound = K.run_horizon t.kernels.(i) ~horizon:bound

(* Post-loop settlement shared by the serial and domain-parallel
   drivers: coast everyone to the bound, run the collective deadlock
   check, and merge per-partition statistics. *)
let finish ?until ?(expect_quiescent = false) ?(check_deadlock = false) t =
  (match until with
  | Some u -> Array.iter (fun k -> K.coast k ~time:u) t.kernels
  | None -> ());
  let drained =
    Array.for_all (fun k -> not (K.has_pending_events k)) t.kernels
  in
  let stuck =
    Array.to_list t.kernels |> List.concat_map K.blocked_non_daemon
  in
  if
    drained && stuck <> []
    && (not expect_quiescent)
    && (until = None || check_deadlock)
  then begin
    let names = List.sort_uniq compare stuck |> String.concat ", " in
    raise (K.Deadlock names)
  end;
  Array.fold_left
    (fun acc k ->
      let s = K.stats k in
      {
        K.events = acc.K.events + s.K.events;
        scheduled = acc.K.scheduled + s.K.scheduled;
        activations = acc.K.activations + s.K.activations;
        spawned = acc.K.spawned + s.K.spawned;
        end_time = max acc.K.end_time s.K.end_time;
      })
    { K.events = 0; scheduled = 0; activations = 0; spawned = 0; end_time = 0 }
    t.kernels

let run_serial ?until ?expect_quiescent ?check_deadlock t =
  let limit = match until with Some u -> u | None -> max_int in
  let continue_ = ref true in
  while !continue_ do
    match next_bound t ~limit with
    | None -> continue_ := false
    | Some bound ->
        for i = 0 to Array.length t.kernels - 1 do
          run_round t i ~bound
        done
  done;
  finish ?until ?expect_quiescent ?check_deadlock t
