(** The discrete-event co-simulation kernel.

    Processes are cooperative coroutines implemented with OCaml 5 effect
    handlers: a process is an ordinary function that calls the blocking
    primitives {!wait} / {!suspend} / {!yield}; the kernel captures the
    continuation and resumes it when simulated time or a wake-up
    condition arrives.  This mirrors the structure of an HDL simulator's
    process model while letting hardware models, instruction-set
    simulators and abstract software processes coexist on one event
    wheel — the co-simulation backplane of the paper's §3.1.

    Determinism: events at the same timestamp fire in schedule order, and
    nothing reads wall-clock time, so simulations are bit-reproducible.

    The blocking primitives must only be called from within a process
    body spawned on some kernel; calling them elsewhere raises
    [Not_in_process]. *)

type t

exception Not_in_process
(** Raised when {!wait} etc. are performed outside a kernel process. *)

exception Deadlock of string
(** Raised by {!run} when [expect_quiescent] is false and every
    non-daemon process is blocked with no pending events (the string
    lists blocked process names).  Daemon processes (see {!spawn}) never
    count towards deadlock. *)

type stats = {
  events : int;  (** events dispatched by the wheel *)
  scheduled : int;  (** events pushed over the kernel lifetime *)
  activations : int;  (** process resumptions (incl. first runs) *)
  spawned : int;  (** processes created *)
  end_time : int;  (** simulation time when {!run} returned *)
}

val create : unit -> t

val now : t -> int
(** Current simulation time. *)

val spawn : ?name:string -> ?daemon:bool -> t -> (unit -> unit) -> unit
(** Register a process; it first runs when {!run} reaches the current
    time.  A process function returning normally terminates the
    process.  A [daemon] process (default [false]) is a background
    observer — e.g. a {!Vcd} watcher — whose suspensions are excluded
    from {!Deadlock} detection: a simulation whose only remaining
    blocked processes are daemons is quiescent, not deadlocked. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule a bare callback (not a process: it must not block) at an
    absolute time >= now. *)

val at_keyed : t -> time:int -> key:int -> seq:int -> (unit -> unit) -> unit
(** Schedule a bare callback in the {e arrival lane}
    ({!Event_queue.push_keyed}): at its timestamp it fires before every
    ordinary event and is ordered against other keyed events by
    (key, seq) — a property of the communication, not of which wheel or
    when the event was physically pushed.  {!Channel} and {!Signal} use
    this for declared-latency delivery so that a partitioned run
    ({!Partition}) dispatches in exactly the serial order.
    @raise Invalid_argument on a time in the past or a key outside
    [0, max_int). *)

val alloc_lane : t -> int
(** Allocate the next arrival-lane key of this kernel (0, 1, 2, ...).
    Channels and signals take one lane each at creation, in creation
    order, so the relative lane order of any subset is the same whether
    they were created on one shared wheel or spread over per-partition
    wheels in the same overall order. *)

val run :
  ?until:int ->
  ?stop:(unit -> bool) ->
  ?expect_quiescent:bool ->
  ?check_deadlock:bool ->
  t ->
  stats
(** Dispatch events until the queue is empty or simulated time would
    exceed [until].  When [until] is given, simulated time always ends
    at [max now until] — even if undispatched events remain queued past
    the bound — so repeated bounded runs keep a consistent clock for
    subsequent {!at}/{!wait} calls.

    [stop] is polled before each dispatch; when it returns [true] the
    run returns immediately with events still queued, the clock left at
    the last dispatched event (no coasting to [until]) and no deadlock
    check — an interrupted run is not a completed window.  Use
    {!has_pending_events} to distinguish "stopped early" from "drained".
    The predicate costs one call per event, paid only when supplied —
    the [stop]-less dispatch loop is unchanged.
    {!Codesign_resil.Budget} uses this to impose wall-clock deadlines.  If non-daemon processes remain
    blocked at quiescence and [expect_quiescent] is [false] (the
    default) and no [until] was given, raises {!Deadlock}; with
    [expect_quiescent:true] (or an [until] bound) blocked processes are
    abandoned silently.  [check_deadlock:true] (default [false]) extends
    deadlock detection to bounded runs: if the event queue drained
    completely before the bound and non-daemon processes are still
    blocked, the run raises {!Deadlock} instead of silently coasting to
    [until] — the audit co-simulation and fault campaigns use on
    bounded runs ({!blocked_non_daemon} is the non-raising query).
    Returns run statistics.  [run] may be called again after adding
    more work. *)

val has_pending_events : t -> bool
(** [true] iff undispatched events remain queued — after a bounded or
    [stop]ped {!run}, the sign that the simulation was cut off rather
    than drained. *)

val next_event_time : t -> int
(** Timestamp of this kernel's earliest pending event, or [max_int] when
    its wheel is empty.  The {!Partition} LBTS loop takes the minimum
    over all partitions to compute the next global safe bound. *)

val run_horizon : t -> horizon:int -> unit
(** One barrier round of the partitioned loop: dispatch every event with
    time <= [horizon], leaving the clock at the last dispatched event.
    Unlike {!run} this neither coasts to the bound nor checks for
    deadlock — the {!Partition} driver owns both decisions across the
    whole set of wheels after the final round.  Per-domain totals are
    settled per call, so a round run on a worker domain contributes a
    mergeable delta. *)

val coast : t -> time:int -> unit
(** Advance the clock to [time] if it is ahead of [now] (no events are
    dispatched).  The {!Partition} driver uses it to settle every
    partition on the common end time after the last round. *)

val blocked_non_daemon : t -> string list
(** Names of the non-daemon processes currently blocked in {!suspend}
    (unsorted, one entry per blocked process).  Empty for a quiescent or
    deadlock-free kernel; after a bounded {!run}, a non-empty result
    with an empty event queue means the simulation can never make
    progress again — the condition [check_deadlock] turns into
    {!Deadlock}. *)

val stats : t -> stats
(** Statistics so far (also valid mid-run, from within a process). *)

(** {2 Per-domain cumulative counters}

    Every {!run} adds its dispatched-event / activation / scheduling
    counts to counters local to the calling domain, so a measurement
    layer can attribute simulation work to whatever ran on this domain
    (the bench harness runs one experiment per domain and reads the
    deltas) without threading kernel handles through the code under
    measurement. *)

type domain_totals = {
  d_events : int;  (** events dispatched by kernels on this domain *)
  d_activations : int;  (** process resumptions on this domain *)
  d_scheduled : int;  (** events pushed by runs on this domain *)
  d_kernels : int;  (** kernels created on this domain *)
}

val domain_totals : unit -> domain_totals
(** Cumulative totals for the calling domain (monotonically
    nondecreasing; snapshot before/after a workload and subtract). *)

val diff_totals :
  after:domain_totals -> before:domain_totals -> domain_totals
(** Componentwise [after - before]: the delta a workload contributed
    between two {!domain_totals} snapshots. *)

val merge_domain_totals : domain_totals -> unit
(** Add a delta into the calling domain's cumulative totals.  Used by
    {!Codesign_par.Domain_pool} after joining its worker domains: each
    worker's delta is folded back into the spawning domain, so a
    measurement layer on the caller sees the same totals whether a
    workload ran serially or was sharded over domains.  Addition is
    commutative, so the merged totals do not depend on worker
    scheduling. *)

(** {2 Blocking primitives (call only inside a process)} *)

val wait : int -> unit
(** Advance this process's time by a non-negative delta. *)

val yield : unit -> unit
(** Reschedule after events already pending at the current time — a
    delta-cycle boundary. *)

val suspend : register:((unit -> unit) -> unit) -> unit
(** The general blocking primitive: captures the continuation and passes
    a [resume] thunk to [register]; calling [resume] (exactly once, at
    any later point) reschedules the process at the then-current time.
    {!Signal} and {!Channel} are built on this. *)

val self_name : unit -> string
(** Name of the currently running process ("?" for callbacks). *)

(** {2 Snapshot / restore}

    A kernel snapshot captures the clock, the event heap (see the
    {!Event_queue} caveats — pending thunks are shared, not copied, so
    a snapshot is only truly forkable when the heap holds re-entrant
    thunks or nothing at all), the per-kernel statistics counters and
    the blocked-process table.  It does {e not} capture the tracer sink
    or the per-domain cumulative totals, and it cannot capture the
    insides of blocked processes: effect continuations are one-shot, so
    a process blocked in {!suspend} at snapshot time belongs to the
    timeline it was captured on.  The supported fork discipline —
    used by the fault campaigns — is therefore: drain to quiescence
    (empty heap), snapshot, and after each {!restore} re-[spawn] fresh
    instances of whatever processes the forked world needs, abandoning
    the old blocked ones (their {!Signal}/{!Channel} wait-queue entries
    are dropped by the corresponding restores, and their [blocked]
    entries were part of the snapshot, so [expect_quiescent] runs are
    unaffected). *)

type snap

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Rewind clock, heap and counters to [snap].  Processes spawned since
    the snapshot lose their pending start events; processes blocked
    since are abandoned (never resumed). *)

(** {2 Tracing} *)

val trace : t -> (int -> string -> unit) -> unit
(** Install a trace sink receiving (time, message). *)

val emit : t -> string -> unit
(** Emit a trace message at the current time (no-op without a sink). *)
