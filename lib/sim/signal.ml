type 'a t = {
  kernel : Kernel.t;
  name : string;
  latency : int;
  lane : int;
  mutable value : 'a;
  mutable waiters : (unit -> unit) list;  (** in reverse arrival order *)
  mutable writes : int;
  mutable write_seq : int;
  mutable route : (int -> (unit -> unit) -> unit) option;
}

let create ?(latency = 0) ?(name = "sig") kernel value =
  if latency < 0 then invalid_arg "Signal.create: negative latency";
  {
    kernel;
    name;
    latency;
    (* Lanes are allocated for every signal so lane numbering depends
       only on creation order — see Channel.create. *)
    lane = Kernel.alloc_lane kernel;
    value;
    waiters = [];
    writes = 0;
    write_seq = 0;
    route = None;
  }

let read s = s.value
let name s = s.name
let latency s = s.latency
let lane s = s.lane
let write_count s = s.writes

let set_route s route =
  if s.latency < 1 then
    invalid_arg
      (Printf.sprintf
         "Signal.set_route: signal %S has zero lookahead (latency 0); a \
          routed signal needs latency >= 1"
         s.name);
  s.route <- Some route

let wake s =
  s.writes <- s.writes + 1;
  let ws = List.rev s.waiters in
  s.waiters <- [];
  List.iter (fun resume -> resume ()) ws

let apply_write s v =
  if s.value <> v then begin
    s.value <- v;
    wake s
  end

let apply_pulse s v =
  s.value <- v;
  wake s

(* A latency write takes effect at the receiving side [latency] ticks
   later; the change-detection compare happens at apply time (against
   whatever the value is then), matching wire propagation delay.
   Scheduling goes through the arrival lane keyed by (signal lane, write
   sequence) so a cross-partition write injected at a barrier applies in
   exactly its serial position. *)
let defer s apply =
  let seq = s.write_seq in
  s.write_seq <- seq + 1;
  match s.route with
  | None ->
      Kernel.at_keyed s.kernel
        ~time:(Kernel.now s.kernel + s.latency)
        ~key:s.lane ~seq apply
  | Some route -> route seq apply

let write s v =
  if s.latency = 0 then apply_write s v
  else defer s (fun () -> apply_write s v)

let pulse s v =
  if s.latency = 0 then apply_pulse s v
  else defer s (fun () -> apply_pulse s v)

let await_change s =
  Kernel.suspend ~register:(fun resume -> s.waiters <- resume :: s.waiters);
  s.value

let rec await s pred =
  if pred s.value then s.value
  else begin
    ignore (await_change s);
    await s pred
  end

type 'a snap = { s_value : 'a; s_writes : int; s_write_seq : int }

let snapshot s =
  { s_value = s.value; s_writes = s.writes; s_write_seq = s.write_seq }

let restore s snap =
  s.value <- snap.s_value;
  s.writes <- snap.s_writes;
  s.write_seq <- snap.s_write_seq;
  (* Waiters hold one-shot continuations from the snapshot's timeline;
     abandon them — forked worlds re-spawn their processes. *)
  s.waiters <- []

let rec posedge s =
  ignore (await_change s);
  if s.value = 0 then posedge s
