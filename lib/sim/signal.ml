type 'a t = {
  kernel : Kernel.t;
  name : string;
  mutable value : 'a;
  mutable waiters : (unit -> unit) list;  (** in reverse arrival order *)
  mutable writes : int;
}

let create ?(name = "sig") kernel value =
  { kernel; name; value; waiters = []; writes = 0 }

let read s = s.value
let name s = s.name
let write_count s = s.writes

let wake s =
  s.writes <- s.writes + 1;
  let ws = List.rev s.waiters in
  s.waiters <- [];
  List.iter (fun resume -> resume ()) ws

let write s v =
  if s.value <> v then begin
    s.value <- v;
    wake s
  end

let pulse s v =
  s.value <- v;
  wake s

let await_change s =
  Kernel.suspend ~register:(fun resume -> s.waiters <- resume :: s.waiters);
  s.value

let rec await s pred =
  if pred s.value then s.value
  else begin
    ignore (await_change s);
    await s pred
  end

type 'a snap = { s_value : 'a; s_writes : int }

let snapshot s = { s_value = s.value; s_writes = s.writes }

let restore s snap =
  s.value <- snap.s_value;
  s.writes <- snap.s_writes;
  (* Waiters hold one-shot continuations from the snapshot's timeline;
     abandon them — forked worlds re-spawn their processes. *)
  s.waiters <- []

let rec posedge s =
  ignore (await_change s);
  if s.value = 0 then posedge s
