type stats = { sends : int; send_blocks : int; recv_blocks : int }

type 'a t = {
  kernel : Kernel.t;
  name : string;
  cap : int;
  buffer : 'a Queue.t;
  waiting_senders : ('a * (unit -> unit)) Queue.t;
  waiting_receivers : ('a option ref * (unit -> unit)) Queue.t;
  mutable sends : int;
  mutable send_blocks : int;
  mutable recv_blocks : int;
}

let create ?(depth = 0) ?(name = "chan") kernel () =
  if depth < 0 then invalid_arg "Channel.create: negative depth";
  {
    kernel;
    name;
    cap = depth;
    buffer = Queue.create ();
    waiting_senders = Queue.create ();
    waiting_receivers = Queue.create ();
    sends = 0;
    send_blocks = 0;
    recv_blocks = 0;
  }

let name c = c.name
let depth c = c.cap
let occupancy c = Queue.length c.buffer

let stats c =
  { sends = c.sends; send_blocks = c.send_blocks; recv_blocks = c.recv_blocks }

type 'a snap = {
  s_buffer : 'a list;  (** front first *)
  s_sends : int;
  s_send_blocks : int;
  s_recv_blocks : int;
}

let snapshot c =
  {
    s_buffer = List.of_seq (Queue.to_seq c.buffer);
    s_sends = c.sends;
    s_send_blocks = c.send_blocks;
    s_recv_blocks = c.recv_blocks;
  }

let restore c s =
  Queue.clear c.buffer;
  List.iter (fun v -> Queue.push v c.buffer) s.s_buffer;
  (* Waiting senders/receivers hold one-shot continuations belonging to
     the timeline the snapshot was taken on; they are abandoned, never
     resumed.  Forked worlds re-spawn their communicating processes. *)
  Queue.clear c.waiting_senders;
  Queue.clear c.waiting_receivers;
  c.sends <- s.s_sends;
  c.send_blocks <- s.s_send_blocks;
  c.recv_blocks <- s.s_recv_blocks

(* After removing from the buffer, a blocked sender (if any) can deposit
   its value. *)
let refill c =
  if
    (not (Queue.is_empty c.waiting_senders))
    && Queue.length c.buffer < c.cap
  then begin
    let v, resume = Queue.pop c.waiting_senders in
    Queue.push v c.buffer;
    resume ()
  end

let try_send c v =
  if not (Queue.is_empty c.waiting_receivers) then begin
    (* Direct hand-off: buffer is necessarily empty when receivers wait. *)
    let cell, resume = Queue.pop c.waiting_receivers in
    cell := Some v;
    c.sends <- c.sends + 1;
    resume ();
    true
  end
  else if Queue.length c.buffer < c.cap then begin
    Queue.push v c.buffer;
    c.sends <- c.sends + 1;
    true
  end
  else false

let send c v =
  if not (try_send c v) then begin
    c.send_blocks <- c.send_blocks + 1;
    Kernel.suspend ~register:(fun resume ->
        Queue.push (v, resume) c.waiting_senders);
    c.sends <- c.sends + 1
  end

let try_recv c =
  if not (Queue.is_empty c.buffer) then begin
    let v = Queue.pop c.buffer in
    refill c;
    Some v
  end
  else if c.cap = 0 && not (Queue.is_empty c.waiting_senders) then begin
    (* rendezvous hand-off from a blocked sender *)
    let v, resume = Queue.pop c.waiting_senders in
    resume ();
    Some v
  end
  else None

let recv c =
  (* The non-blocking paths mirror [try_recv] but skip its option
     round-trip, so a receive that finds data ready allocates nothing. *)
  if not (Queue.is_empty c.buffer) then begin
    let v = Queue.pop c.buffer in
    refill c;
    v
  end
  else if c.cap = 0 && not (Queue.is_empty c.waiting_senders) then begin
    (* rendezvous hand-off from a blocked sender *)
    let v, resume = Queue.pop c.waiting_senders in
    resume ();
    v
  end
  else begin
    c.recv_blocks <- c.recv_blocks + 1;
    let cell = ref None in
    Kernel.suspend ~register:(fun resume ->
        Queue.push (cell, resume) c.waiting_receivers);
    match !cell with
    | Some v -> v
    | None -> (
        (* Resumed without a direct hand-off: a sender refilled the
           buffer while we were queued. *)
        match try_recv c with
        | Some v -> v
        | None -> assert false)
  end
