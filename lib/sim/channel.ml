type stats = {
  sends : int;
  messages : int;
  blocked_sends : int;
  recv_blocks : int;
}

type 'a t = {
  kernel : Kernel.t;
  name : string;
  cap : int;
  latency : int;
  lane : int;
  buffer : 'a Queue.t;
  waiting_senders : ('a * (unit -> unit)) Queue.t;
  waiting_receivers : ('a option ref * (unit -> unit)) Queue.t;
  mutable sends : int;
  mutable messages : int;
  mutable blocked_sends : int;
  mutable recv_blocks : int;
  mutable send_seq : int;
  mutable route : (int -> (unit -> unit) -> unit) option;
}

let create ?(depth = 0) ?(latency = 0) ?(name = "chan") kernel () =
  if depth < 0 then invalid_arg "Channel.create: negative depth";
  if latency < 0 then invalid_arg "Channel.create: negative latency";
  {
    kernel;
    name;
    cap = depth;
    latency;
    (* Every channel takes a lane even when it never uses one, so lane
       numbering depends only on creation order — the same network built
       on one wheel or on per-partition wheels assigns any channel subset
       the same relative lane order. *)
    lane = Kernel.alloc_lane kernel;
    buffer = Queue.create ();
    waiting_senders = Queue.create ();
    waiting_receivers = Queue.create ();
    sends = 0;
    messages = 0;
    blocked_sends = 0;
    recv_blocks = 0;
    send_seq = 0;
    route = None;
  }

let name c = c.name
let depth c = c.cap
let latency c = c.latency
let lane c = c.lane
let occupancy c = Queue.length c.buffer

let set_route c route =
  if c.latency < 1 then
    invalid_arg
      (Printf.sprintf
         "Channel.set_route: channel %S has zero lookahead (latency 0); a \
          routed channel needs latency >= 1"
         c.name);
  c.route <- Some route

let stats c =
  {
    sends = c.sends;
    messages = c.messages;
    blocked_sends = c.blocked_sends;
    recv_blocks = c.recv_blocks;
  }

type 'a snap = {
  s_buffer : 'a list;  (** front first *)
  s_sends : int;
  s_messages : int;
  s_blocked_sends : int;
  s_recv_blocks : int;
  s_send_seq : int;
}

let snapshot c =
  {
    s_buffer = List.of_seq (Queue.to_seq c.buffer);
    s_sends = c.sends;
    s_messages = c.messages;
    s_blocked_sends = c.blocked_sends;
    s_recv_blocks = c.recv_blocks;
    s_send_seq = c.send_seq;
  }

let restore c s =
  Queue.clear c.buffer;
  List.iter (fun v -> Queue.push v c.buffer) s.s_buffer;
  (* Waiting senders/receivers hold one-shot continuations belonging to
     the timeline the snapshot was taken on; they are abandoned, never
     resumed.  Forked worlds re-spawn their communicating processes. *)
  Queue.clear c.waiting_senders;
  Queue.clear c.waiting_receivers;
  c.sends <- s.s_sends;
  c.messages <- s.s_messages;
  c.blocked_sends <- s.s_blocked_sends;
  c.recv_blocks <- s.s_recv_blocks;
  c.send_seq <- s.s_send_seq

(* After removing from the buffer, a blocked sender (if any) can deposit
   its value. *)
let refill c =
  if
    (not (Queue.is_empty c.waiting_senders))
    && Queue.length c.buffer < c.cap
  then begin
    let v, resume = Queue.pop c.waiting_senders in
    Queue.push v c.buffer;
    resume ()
  end

(* Receiver side of a latency channel: the message materialises at the
   destination [latency] ticks after the send.  A waiting receiver gets
   a direct hand-off; otherwise the value parks in the (unbounded for
   this mode) buffer. *)
let arrive c v =
  if not (Queue.is_empty c.waiting_receivers) then begin
    let cell, resume = Queue.pop c.waiting_receivers in
    cell := Some v;
    c.messages <- c.messages + 1;
    resume ()
  end
  else Queue.push v c.buffer

(* A latency send never blocks: the channel behaves as a delay line with
   unbounded in-flight capacity (depth is ignored), which is exactly the
   decoupling that gives a partitioned run its lookahead.  Delivery goes
   through the arrival lane keyed by (channel lane, send sequence), so
   its dispatch position at the destination timestamp is a property of
   the communication — identical whether the arrival was pushed locally
   (serial wheel) or injected at a partition barrier. *)
let send_latent c v =
  c.sends <- c.sends + 1;
  let seq = c.send_seq in
  c.send_seq <- seq + 1;
  let deliver () = arrive c v in
  match c.route with
  | None ->
      Kernel.at_keyed c.kernel
        ~time:(Kernel.now c.kernel + c.latency)
        ~key:c.lane ~seq deliver
  | Some route -> route seq deliver

let try_send c v =
  if c.latency > 0 then begin
    send_latent c v;
    true
  end
  else if not (Queue.is_empty c.waiting_receivers) then begin
    (* Direct hand-off: buffer is necessarily empty when receivers wait. *)
    let cell, resume = Queue.pop c.waiting_receivers in
    cell := Some v;
    c.sends <- c.sends + 1;
    c.messages <- c.messages + 1;
    resume ();
    true
  end
  else if Queue.length c.buffer < c.cap then begin
    Queue.push v c.buffer;
    c.sends <- c.sends + 1;
    true
  end
  else false

let send c v =
  if not (try_send c v) then begin
    c.blocked_sends <- c.blocked_sends + 1;
    Kernel.suspend ~register:(fun resume ->
        Queue.push (v, resume) c.waiting_senders);
    c.sends <- c.sends + 1
  end

let try_recv c =
  if not (Queue.is_empty c.buffer) then begin
    let v = Queue.pop c.buffer in
    c.messages <- c.messages + 1;
    refill c;
    Some v
  end
  else if c.cap = 0 && not (Queue.is_empty c.waiting_senders) then begin
    (* rendezvous hand-off from a blocked sender *)
    let v, resume = Queue.pop c.waiting_senders in
    c.messages <- c.messages + 1;
    resume ();
    Some v
  end
  else None

let recv c =
  (* The non-blocking paths mirror [try_recv] but skip its option
     round-trip, so a receive that finds data ready allocates nothing. *)
  if not (Queue.is_empty c.buffer) then begin
    let v = Queue.pop c.buffer in
    c.messages <- c.messages + 1;
    refill c;
    v
  end
  else if c.cap = 0 && not (Queue.is_empty c.waiting_senders) then begin
    (* rendezvous hand-off from a blocked sender *)
    let v, resume = Queue.pop c.waiting_senders in
    c.messages <- c.messages + 1;
    resume ();
    v
  end
  else begin
    c.recv_blocks <- c.recv_blocks + 1;
    let cell = ref None in
    Kernel.suspend ~register:(fun resume ->
        Queue.push (cell, resume) c.waiting_receivers);
    match !cell with
    | Some v -> v
    | None -> (
        (* Resumed without a direct hand-off: a sender refilled the
           buffer while we were queued. *)
        match try_recv c with
        | Some v -> v
        | None -> assert false)
  end
