(** Broadcast signals (wires) over the simulation kernel.

    A signal holds a value; writers update it instantaneously and wake
    every process blocked on it.  Waking happens through the kernel's
    event wheel at the current timestamp, so readers observe the value in
    the delta cycle after the write — the usual HDL signal discipline.

    Used for pin-level bus modelling (request/grant/ready wires,
    interrupt lines) and for clock generation in RTL co-simulation. *)

type 'a t

val create : ?latency:int -> ?name:string -> Kernel.t -> 'a -> 'a t
(** [create k init] makes a signal with initial value [init].
    [latency] (default 0) is a propagation delay: writes take effect
    that many ticks later, which also serves as the signal's lookahead
    when it crosses a partition boundary ({!Partition}).
    @raise Invalid_argument on negative latency. *)

val read : 'a t -> 'a

val write : 'a t -> 'a -> unit
(** Set the value; wakes waiters only if the value changed (structural
    equality).  On a [latency > 0] signal the write lands — and the
    change compare happens — [latency] ticks later, ordered by (signal
    lane, write sequence) in the arrival lane ({!Kernel.at_keyed}). *)

val pulse : 'a t -> 'a -> unit
(** Set the value and wake waiters even if it is unchanged — models a
    momentary strobe.  Delayed like {!write} on a latency signal. *)

val name : 'a t -> string

val latency : 'a t -> int
(** Declared propagation delay — the signal's lookahead. *)

val lane : 'a t -> int
(** Arrival-lane key in the hosting kernel (creation order). *)

val set_route : 'a t -> (int -> (unit -> unit) -> unit) -> unit
(** Install a cross-partition route (see {!Channel.set_route}).
    @raise Invalid_argument when the signal has zero lookahead
    ([latency = 0], named in the message). *)

val write_count : 'a t -> int
(** Number of waking writes so far (a signal-activity metric). *)

val await_change : 'a t -> 'a
(** Block until the next (value-changing or pulsed) write; returns the
    new value.  Must run inside a kernel process. *)

val await : 'a t -> ('a -> bool) -> 'a
(** Block until the predicate holds (returns immediately if it already
    does). *)

val posedge : int t -> unit
(** Block until a waking write leaves the value nonzero, skipping writes
    that leave it zero — a rising-edge wait for clock-like signals. *)

(** {2 Snapshot / restore}

    A snapshot captures the value and the write counter.  Processes
    blocked in {!await_change}/{!await}/{!posedge} hold one-shot
    continuations and cannot be captured: {!restore} drops the current
    waiter list, abandoning them — see {!Kernel.snapshot} for the fork
    discipline. *)

type 'a snap

val snapshot : 'a t -> 'a snap

val restore : 'a t -> 'a snap -> unit
(** Rewind value and write count; drop all current waiters. *)
