(** Basic-block discovery and decoding for the block-compiled ISS tier.

    Decodes each basic block of an {!Isa.program} exactly once into a
    flat int-array micro-op program (the fixed-stride record idiom
    {!Codesign_rtl.Logic_sim} uses for netlists) and caches it keyed by
    entry pc.  {!Cpu.run_blocks} executes whole blocks per dispatch.

    The cache is never invalidated: a program array is immutable after
    {!Cpu.create} (the ISA has no store-to-code path), so decoded
    blocks cannot go stale.  A branch into the middle of an existing
    block decodes a fresh overlapping block at the target pc — decoding
    has no architectural side effects, so overlap is harmless. *)

val stride : int
(** Ints per decoded record: [op; x; y; z; lat; pc].  [lat] is the
    precomputed base latency (taken-branch +1 added by the executor);
    [pc] is the instruction's own index — resume point at a fuel
    boundary and trap location for memory accesses. *)

(** {1 Micro-opcodes}

    A closed int enum.  [uop_alu]/[uop_alui]/[uop_b] are base values to
    which the operator index is added. *)

val uop_alu : int
(** +alu index; x=dest, y=src a, z=src b *)

val uop_alui : int
(** +alu index; x=dest, y=src a, z=immediate *)

val uop_li : int
(** x=dest, y=immediate *)

val uop_lw : int
(** x=dest, y=addr reg, z=offset *)

val uop_sw : int
(** x=src reg, y=addr reg, z=offset *)

val uop_nop : int

val uop_b : int
(** +cond index (Eq=0, Ne=1, Lt=2, Ge=3); x=a, y=b, z=target pc *)

val uop_j : int
(** x=target pc *)

val uop_jal : int
(** x=link dest, y=target pc *)

val uop_jr : int
(** x=register holding target pc *)

val uop_halt : int

val uop_end : int
(** Block fell off without a terminator (unsafe instruction, end of
    code, or {!max_block_instrs} reached); x = pc slot = next pc. *)

val max_block_instrs : int
(** Upper bound on instructions decoded into one block (terminator
    included), bounding worst-case fuel overshoot checks. *)

type block = {
  uops : int array;  (** [n * stride] ints, records back to back *)
  n : int;  (** number of records *)
  full_instrs : int;
      (** instructions a complete untrapped walk of the block retires
          ([n] minus the end record, if any) — the whole-block fast
          path's instret/fuel charge *)
  full_cycles : int;
      (** cycles of that complete walk excluding the taken-branch +1
          (the sum of the records' lat fields) *)
}

type entry =
  | Unsafe
      (** the instruction at this pc (In/Out/Custom/Ei/Di/Rti, or one
          naming an out-of-range register) needs the precise
          {!Cpu.step} fallback *)
  | Block of block

type cache

val create : latency:(int Isa.instr -> int) -> Isa.program -> cache
(** Empty cache for [code]; nothing is decoded until {!get}. *)

val get : cache -> pc:int -> entry
(** Entry for the block starting at [pc], decoding and caching it on
    first request.  [pc] must be in range for the program. *)

val entries : cache -> entry option array
(** The lazily-filled per-pc entry table itself (length = program
    length; [None] = not yet decoded — call {!get}).  Exposed so the
    dispatcher's hit path is a plain array load instead of a call. *)

val blocks_compiled : cache -> int
(** Number of distinct blocks decoded so far (Unsafe entries not
    counted). *)
