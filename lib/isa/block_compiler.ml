(* Basic-block discovery and decoding for the block-compiled ISS tier.

   The same move {!Codesign_rtl.Logic_sim} makes for netlists, applied
   to the instruction stream: instead of re-matching the instruction
   variant (and re-reading the latency table) on every executed step,
   each basic block is decoded exactly once into a flat int-array
   micro-op program — one fixed-stride record per instruction — and
   cached keyed by its entry pc.  {!Cpu.run_blocks} then executes whole
   blocks per dispatch with a single cycles/instret update at block
   exit.

   A block is a maximal straight-line run of {e pipeline-safe}
   instructions (Alu/Alui/Li/Lw/Sw/Nop) ending at the first
   control-flow instruction (B/J/Jal/Jr/Halt — executed as the block's
   terminator), at the first {e unsafe} instruction
   (In/Out/Custom/Ei/Di/Rti — environment hooks and interrupt-visible
   state, left to the precise {!Cpu.step} fallback), at the end of the
   code array, or at {!max_block_instrs}.  Lw/Sw stay in blocks even
   though they call the memory-mapped-I/O hooks: the executor re-checks
   trap status and the pending-interrupt condition after each of them,
   so a hook that traps the core or raises the request line cuts the
   block at exactly the instruction boundary {!Cpu.step} would have
   seen it.

   Cache invalidation: there is none, by construction.  The program
   array belongs to the CPU and is never mutated after {!Cpu.create}
   (the ISA has no store-to-code path), so a decoded block can never go
   stale; a different program means a different CPU and a fresh cache.
   Blocks are keyed by entry pc only — a branch into the middle of an
   existing block simply decodes a new (overlapping) block starting at
   the target, which is correct because decoding has no side effects on
   the architectural state. *)

(* One fixed-stride record per decoded instruction:
   [op; x; y; z; lat; pc].  Operand meaning depends on [op] (see the
   executor in cpu.ml); [lat] is the precomputed base latency (the
   taken-branch +1 is added by the executor); [pc] is the instruction's
   own index — the resume point when execution must stop {e before}
   this record (fuel boundary), and the trap location for its memory
   accesses. *)
let stride = 6

(* Micro-opcodes: a closed int enum, densest cases first. *)
let uop_alu = 0 (* + alu_index op: d=x, a=y, b=z *)
let uop_alui = 12 (* + alu_index op: d=x, a=y, imm=z *)
let uop_li = 24 (* d=x, imm=y *)
let uop_lw = 25 (* d=x, a=y, off=z *)
let uop_sw = 26 (* s=x, a=y, off=z *)
let uop_nop = 27
let uop_b = 28 (* + cond_index c: a=x, b=y, tgt=z *)
let uop_j = 32 (* tgt=x *)
let uop_jal = 33 (* d=x, tgt=y *)
let uop_jr = 34 (* r=x *)
let uop_halt = 35
let uop_end = 36 (* next pc = x (= the record's own pc field) *)

let alu_index = function
  | Isa.Add -> 0
  | Isa.Sub -> 1
  | Isa.Mul -> 2
  | Isa.Div -> 3
  | Isa.Rem -> 4
  | Isa.And -> 5
  | Isa.Or -> 6
  | Isa.Xor -> 7
  | Isa.Shl -> 8
  | Isa.Shr -> 9
  | Isa.Slt -> 10
  | Isa.Seq -> 11

let cond_index = function Isa.Eq -> 0 | Isa.Ne -> 1 | Isa.Lt -> 2 | Isa.Ge -> 3

let max_block_instrs = 64

type block = {
  uops : int array;
  n : int;  (** records in [uops] *)
  full_instrs : int;
      (** instructions retired by a complete, untrapped walk of the
          block ([n] minus the end record, if any) *)
  full_cycles : int;
      (** cycles of that complete walk, excluding the taken-branch
          penalty — the sum of the records' lat fields *)
}

type entry =
  | Unsafe
      (** the instruction at this pc needs the {!Cpu.step} fallback *)
  | Block of block

type cache = {
  code : Isa.program;
  latency : int Isa.instr -> int;
  entries : entry option array;  (** indexed by entry pc; lazily filled *)
  mutable compiled : int;  (** blocks decoded so far *)
}

let create ~latency code =
  {
    code;
    latency;
    entries = Array.make (Array.length code) None;
    compiled = 0;
  }

let blocks_compiled c = c.compiled
let entries c = c.entries

let unsafe = function
  | Isa.In _ | Isa.Out _ | Isa.Custom _ | Isa.Ei | Isa.Di | Isa.Rti -> true
  | _ -> false

(* Register operands must be in range for the executor's unchecked
   register file accesses; an instruction naming a bogus register is
   left to [Cpu.step], which raises the same [Invalid_argument] a
   direct interpretation would. *)
let reg_ok r = r >= 0 && r < Isa.n_regs

let regs_ok = function
  | Isa.Alu (_, d, a, b) -> reg_ok d && reg_ok a && reg_ok b
  | Isa.Alui (_, d, a, _) -> reg_ok d && reg_ok a
  | Isa.Li (d, _) -> reg_ok d
  | Isa.Lw (d, a, _) -> reg_ok d && reg_ok a
  | Isa.Sw (s, a, _) -> reg_ok s && reg_ok a
  | Isa.B (_, a, b, _) -> reg_ok a && reg_ok b
  | Isa.Jal (d, _) -> reg_ok d
  | Isa.Jr r -> reg_ok r
  | Isa.J _ | Isa.Nop | Isa.Halt -> true
  | Isa.In _ | Isa.Out _ | Isa.Custom _ | Isa.Ei | Isa.Di | Isa.Rti -> true

let needs_step_fallback i = unsafe i || not (regs_ok i)

let compile_block c entry_pc =
  let code = c.code in
  let len = Array.length code in
  (* worst case: max_block_instrs straight-line records + one end record *)
  let buf = Array.make ((max_block_instrs + 1) * stride) 0 in
  let n = ref 0 in
  let emit op x y z lat pc =
    let base = !n * stride in
    buf.(base) <- op;
    buf.(base + 1) <- x;
    buf.(base + 2) <- y;
    buf.(base + 3) <- z;
    buf.(base + 4) <- lat;
    buf.(base + 5) <- pc;
    incr n
  in
  let rec scan pc count =
    if count >= max_block_instrs || pc >= len || needs_step_fallback code.(pc)
    then
      (* resumption point for the dispatcher: next pc in both operand
         and pc slots, so the fuel-boundary path needs no special
         case *)
      emit uop_end pc 0 0 0 pc
    else begin
      let i = code.(pc) in
      let lat = c.latency i in
      match i with
      | Isa.Alu (op, d, a, b) ->
          emit (uop_alu + alu_index op) d a b lat pc;
          scan (pc + 1) (count + 1)
      | Isa.Alui (op, d, a, imm) ->
          emit (uop_alui + alu_index op) d a imm lat pc;
          scan (pc + 1) (count + 1)
      | Isa.Li (d, imm) ->
          emit uop_li d imm 0 lat pc;
          scan (pc + 1) (count + 1)
      | Isa.Lw (d, a, off) ->
          emit uop_lw d a off lat pc;
          scan (pc + 1) (count + 1)
      | Isa.Sw (s, a, off) ->
          emit uop_sw s a off lat pc;
          scan (pc + 1) (count + 1)
      | Isa.Nop ->
          emit uop_nop 0 0 0 lat pc;
          scan (pc + 1) (count + 1)
      | Isa.B (cond, a, b, tgt) -> emit (uop_b + cond_index cond) a b tgt lat pc
      | Isa.J tgt -> emit uop_j tgt 0 0 lat pc
      | Isa.Jal (d, tgt) -> emit uop_jal d tgt 0 lat pc
      | Isa.Jr r -> emit uop_jr r 0 0 lat pc
      | Isa.Halt -> emit uop_halt 0 0 0 lat pc
      | Isa.In _ | Isa.Out _ | Isa.Custom _ | Isa.Ei | Isa.Di | Isa.Rti ->
          assert false (* [unsafe] cut the block above *)
    end
  in
  scan entry_pc 0;
  let full_instrs = ref 0 and full_cycles = ref 0 in
  for i = 0 to !n - 1 do
    if buf.(i * stride) <> uop_end then incr full_instrs;
    full_cycles := !full_cycles + buf.((i * stride) + 4)
  done;
  {
    uops = Array.sub buf 0 (!n * stride);
    n = !n;
    full_instrs = !full_instrs;
    full_cycles = !full_cycles;
  }

let get c ~pc =
  match c.entries.(pc) with
  | Some e -> e
  | None ->
      let e =
        if needs_step_fallback c.code.(pc) then Unsafe
        else begin
          c.compiled <- c.compiled + 1;
          Block (compile_block c pc)
        end
      in
      c.entries.(pc) <- Some e;
      e
