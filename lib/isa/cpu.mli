(** The cycle-counting instruction-set simulator (ISS).

    Executes an assembled {!Isa.program} over a word-addressed data
    memory, counting cycles from a pluggable latency table.  The CPU is
    simulation-framework-agnostic: it never touches the event kernel
    itself.  Co-simulation drives it by calling {!step} from a kernel
    process and advancing simulated time by the cycles each step reports;
    port-I/O hooks may themselves blockon channels or bus transactions,
    which suspends the whole CPU — exactly the behaviour of a core
    stalled on a bus.

    Interrupts: a level-sensitive request line ({!set_irq}).  When
    enabled ([Ei]) and the line is high, the CPU saves PC and jumps to
    the vector (instruction index 1 by convention, settable); [Rti]
    restores the saved PC and re-enables interrupts. *)

type status =
  | Running
  | Halted
  | Trapped of string
      (** PC or memory access out of range, or fuel exhausted *)

(** Hooks connecting the core to its environment. *)
type env = {
  port_in : int -> int;  (** [In] instruction *)
  port_out : int -> int -> unit;  (** [Out] instruction *)
  custom : int -> int -> int -> int -> int;
      (** [Custom (ext, rd, a, b)]: called as [custom ext old_rd rs1 rs2];
          the old destination value enables accumulator-style
          (read-modify-write) extension instructions *)
  custom_latency : int -> int;  (** per-extension-opcode cycles *)
  mem_read : int -> int option;
      (** memory-mapped I/O intercept for [Lw]: [Some v] claims the
          address (e.g. a bus transaction), [None] falls through to
          internal memory *)
  mem_write : int -> int -> bool;
      (** memory-mapped I/O intercept for [Sw]: [true] claims the
          address *)
}

val default_env : env
(** Ports read 0 / discard, custom opcodes return 0 in 1 cycle, no
    memory-mapped I/O. *)

type t

val create :
  ?mem_words:int ->
  ?env:env ->
  ?latency:(int Isa.instr -> int) ->
  ?irq_vector:int ->
  Isa.program ->
  t
(** [mem_words] defaults to 65536; [latency] to {!Isa.default_latency};
    [irq_vector] to 1. *)

val reset : t -> unit
(** Clears registers, PC, cycle count, interrupt state (including a
    latched request line) and any {!on_retire} callback; memory is
    preserved.  A reset CPU takes no interrupt until {!set_irq} drives
    the line again. *)

val status : t -> status
val cycles : t -> int
val pc : t -> int
val instret : t -> int
(** Instructions retired. *)

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit

val read_mem : t -> int -> int
(** Out-of-range addresses trap the CPU (status becomes [Trapped]) and
    read as 0 — an anomaly is data for the supervisor, not a host
    exception. *)

val write_mem : t -> int -> int -> unit
(** Out-of-range addresses trap the CPU; the write is discarded. *)

val trap : t -> string -> unit
(** Force [Trapped reason] from outside the core — the hook fault
    injectors and supervisors use to model spurious traps. *)

val set_irq : t -> bool -> unit
(** Drive the interrupt request line. *)

val irq_enabled : t -> bool

val step : t -> int
(** Execute one instruction (or take a pending interrupt).  Returns the
    cycles the step consumed (0 when already halted/trapped).  Status
    may change as a side effect. *)

val run_fast : t -> fuel:int -> int
(** The inner dispatch loop of {!run}: execute up to [fuel] steps
    without per-step bookkeeping beyond {!step} itself, stopping early
    on [Halted]/[Trapped].  Returns the number of steps executed;
    unlike {!run} it does not turn fuel exhaustion into a trap, so
    slicing callers (budget supervisors, fuzzing oracles) can
    interleave bounded bursts with their own checks.  Semantically
    identical to calling {!step} in a loop.

    {b Fuel contract} (shared with {!run_blocks} and
    {!Codesign_resil.Budget.run_cpu}): one fuel step is one retired
    instruction, {e or} one interrupt entry, {e or} one trapping memory
    access — every call to {!step} that did work.  {!instret} counts
    only retired instructions, so after an IRQ-heavy run
    [steps > instret] by exactly the number of interrupt entries (plus
    one if the run ended in a trap). *)

val run : ?fuel:int -> t -> status
(** Step until [Halted] or [Trapped]; [fuel] bounds the step count
    (default 50 million, counted per the fuel contract of {!run_fast})
    and exhaustion traps.  Implemented on {!run_fast}. *)

val run_blocks : t -> fuel:int -> int
(** The block-compiled tier: same observable semantics and same fuel
    contract as {!run_fast}, typically several times faster.  Basic
    blocks are decoded once (lazily, via {!Block_compiler}) into flat
    micro-op records and executed whole per dispatch, with
    cycles/instret updated once at block exit.  Interrupts are polled
    at block boundaries and after every [Lw]/[Sw] (the only in-block
    instructions whose hooks can raise the request line), so interrupt
    entry points, port traces and trap locations are identical to the
    step tier.  Instructions with environment-visible or
    interrupt-visible work ([In]/[Out]/[Custom]/[Ei]/[Di]/[Rti]) and
    interrupt entries fall back to {!step}.  When an {!on_retire}
    callback is installed the whole run falls back to {!run_fast} so
    per-instruction attribution observes an up-to-date cycle counter.
    The decoded-block cache lives on the CPU, is built on first
    dispatch, survives {!reset} and is never invalidated (the program
    is immutable). *)

val run_compiled : ?fuel:int -> t -> status
(** {!run} on the block-compiled tier: step until [Halted]/[Trapped]
    via {!run_blocks}; fuel exhaustion traps. *)

val blocks_compiled : t -> int
(** Distinct basic blocks decoded so far by the block tier (0 if
    {!run_blocks} has not run). *)

val on_retire : t -> (pc:int -> cycles:int -> unit) -> unit
(** Install a retirement callback (used by the profiler): called after
    every completed instruction with its PC and cycle cost. *)

(** {2 Snapshot / restore}

    A snapshot deep-copies the complete architectural state: registers,
    data memory, PC, cycle/instret counters, status and interrupt state
    (request line, enable, in-ISR flag, saved EPC).  It does {e not}
    capture the program (immutable and shared), the environment hooks,
    the latency table or an installed {!on_retire} callback — those
    belong to the harness around the core, not to the core's state, and
    a fork that needs different hooks installs its own. *)

type snap

val snapshot : t -> snap

val restore : t -> snap -> unit
(** Rewind architectural state to [snap].
    @raise Invalid_argument if the snapshot came from a CPU with a
    different memory size. *)
