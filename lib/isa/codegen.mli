(** The software implementation path: compiles a {!Codesign_ir.Behavior}
    process to host assembly.

    The generated code follows a simple, predictable discipline so its
    cycle counts are a stable software-cost model for the partitioners:

    - scalar variables and arrays live in a static data segment
      (word-addressed, base {!default_base});
    - expressions evaluate on a register stack (r8-r27); programs whose
      expressions nest deeper than 20 are rejected;
    - every loop head and join point is labelled, so the profiler can
      attribute cycles to source constructs;
    - channel operations compile to port I/O on the ports given in
      [chan_ports] — in co-simulation these ports are wired to bus
      transactions or kernel channels.

    The compiled code matches {!Codesign_ir.Behavior.run} semantics
    exactly — it is differentially fuzzed against the interpreter (see
    [lib/fuzz]).  In particular:

    - array indices are clamped into bounds like the interpreter's
      protected mode: constant indices are clamped at compile time,
      indices provably in bounds by a small interval analysis compile
      without overhead, and everything else gets a 2-branch runtime
      clamp (scratch register r7);
    - a [For] bound is evaluated once, before the loop (non-constant
      bounds are hoisted into registers r1-r6, one per nesting level;
      deeper dynamic-bound nesting is rejected), and the induction
      variable is written only at the top of iterations that run, so
      the final increment is not observable after the loop. *)

type layout = {
  base : int;  (** data segment base (word address) *)
  var_addr : (string * int) list;  (** scalar -> absolute word address *)
  arr_addr : (string * int) list;  (** array -> base word address *)
  data_words : int;  (** total data segment size *)
}

val default_base : int
(** 4096. *)

val layout_of : ?base:int -> Codesign_ir.Behavior.proc -> layout
(** Address assignment only (no code). *)

val compile :
  ?base:int ->
  ?chan_ports:(string * int) list ->
  Codesign_ir.Behavior.proc ->
  Asm.item list * layout
(** Compile to symbolic assembly ending in [halt].
    @raise Invalid_argument on expression nesting deeper than the
    register stack, or on a channel operation with no port mapping. *)

val resolve : layout -> (string * int) list -> (int * int) list
(** Resolves symbolic parameter bindings to [(absolute word address,
    value)] writes; array cells use the ["name[index]"] key convention
    of {!Codesign_ir.Behavior.run}.  Unknown scalars are tolerated
    (dropped), unknown arrays raise.  Callers that rerun the same
    workload many times (benchmarks, steady-state co-simulation) can
    resolve once and replay the writes without re-parsing the keys.
    @raise Invalid_argument on an unknown array name. *)

val bind : layout -> Cpu.t -> (string * int) list -> unit
(** [resolve] + the writes, in one step. *)

val result : layout -> Cpu.t -> string -> int
(** Reads a scalar variable back from CPU memory. *)

val read_array : layout -> Cpu.t -> string -> int -> int
(** Reads one array cell back from CPU memory. *)

exception Trapped of { proc : string; pc : int; msg : string }
(** The CPU trapped while executing a compiled behaviour: which
    behaviour, the program counter at the trap, and the CPU's trap
    message.  Raised by {!run_compiled} (and by
    [Codesign.Hotspot.analyze], which profiles through it) instead of a
    bare [Failure] so callers can distinguish a trapping workload from
    other failures and report the faulting site. *)

val run_compiled :
  ?env:Cpu.env ->
  ?fuel:int ->
  Codesign_ir.Behavior.proc ->
  (string * int) list ->
  (string * int) list * Cpu.t
(** Convenience: compile, assemble, bind, run to halt, and return the
    [results] variables plus the CPU (for cycle counts).
    @raise Trapped if the CPU traps. *)
