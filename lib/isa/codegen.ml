module B = Codesign_ir.Behavior

type layout = {
  base : int;
  var_addr : (string * int) list;
  arr_addr : (string * int) list;
  data_words : int;
}

let default_base = 4096

(* Expression register stack. *)
let stack_base = 8
let stack_top = 27

(* Scratch register for array-index clamping; registers r1..r6 hold the
   hoisted bounds of dynamically-bounded for loops, one per nesting
   level. *)
let clamp_scratch = 7
let bound_base = 1
let bound_top = 6

(* Constant folding with the reference semantics of {!B.eval_bin}. *)
let rec const_eval (e : B.expr) =
  match e with
  | B.Int i -> Some i
  | B.Neg e -> Option.map (fun v -> -v) (const_eval e)
  | B.Not e -> Option.map (fun v -> if v = 0 then 1 else 0) (const_eval e)
  | B.Bin (op, a, b) -> (
      match (const_eval a, const_eval b) with
      | Some a, Some b -> Some (B.eval_bin op a b)
      | _ -> None)
  | B.Var _ | B.Idx _ | B.Ext _ -> None

let rec assigns_var v (s : B.stmt) =
  match s with
  | B.Assign (x, _) | B.PortIn (x, _) | B.Recv (x, _) -> x = v
  | B.Store _ | B.PortOut _ | B.Send _ -> false
  | B.If (_, t, e) ->
      List.exists (assigns_var v) t || List.exists (assigns_var v) e
  | B.While (_, b, _) -> List.exists (assigns_var v) b
  | B.For (x, _, _, b) -> x = v || List.exists (assigns_var v) b

(* Interval analysis over an environment of known variable ranges (for
   induction variables with constant bounds that the loop body does not
   reassign).  Used to elide the bounds clamp on array accesses that are
   provably in bounds, so the common in-bounds kernels keep their exact
   instruction sequences and cycle counts. *)
let rec range renv (e : B.expr) : (int * int) option =
  match const_eval e with
  | Some i -> Some (i, i)
  | None -> (
      match e with
      | B.Int _ -> None (* unreachable: handled by const_eval *)
      | B.Var v -> List.assoc_opt v renv
      | B.Not _ -> Some (0, 1)
      | B.Neg e ->
          Option.map (fun (l, h) -> (-h, -l)) (range renv e)
      | B.Idx _ | B.Ext _ -> None
      | B.Bin (op, a, b) -> (
          let ra = range renv a and rb = range renv b in
          match (op, ra, rb) with
          | (B.Lt | B.Le | B.Eq | B.Ne), _, _ -> Some (0, 1)
          | B.Add, Some (la, ha), Some (lb, hb) -> Some (la + lb, ha + hb)
          | B.Sub, Some (la, ha), Some (lb, hb) -> Some (la - hb, ha - lb)
          | B.Mul, Some (la, ha), Some (lb, hb) ->
              let ps = [ la * lb; la * hb; ha * lb; ha * hb ] in
              Some
                ( List.fold_left min (List.hd ps) ps,
                  List.fold_left max (List.hd ps) ps )
          | B.And, Some (la, ha), _ when la >= 0 ->
              (* x land y clears bits of a non-negative x *)
              Some (0, ha)
          | B.And, _, Some (lb, hb) when lb >= 0 -> Some (0, hb)
          | B.Div, Some (la, ha), Some (lb, hb) when la >= 0 && lb > 0 ->
              Some (la / hb, ha / lb)
          | B.Rem, Some (la, _), Some (lb, hb) when lb > 0 ->
              let m = hb - 1 in
              if la >= 0 then Some (0, m) else Some (-m, m)
          | B.Shr, Some (la, ha), _ -> (
              match const_eval b with
              | Some k ->
                  let k = k land 31 in
                  Some (la asr k, ha asr k)
              | None -> None)
          | _ -> None))

let layout_of ?(base = default_base) (p : B.proc) =
  let vars = B.vars_of p in
  let next = ref base in
  let var_addr =
    List.map
      (fun v ->
        let a = !next in
        incr next;
        (v, a))
      vars
  in
  let arr_addr =
    List.map
      (fun (a, len) ->
        let addr = !next in
        next := !next + len;
        (a, addr))
      p.B.arrays
  in
  { base; var_addr; arr_addr; data_words = !next - base }

let compile ?(base = default_base) ?(chan_ports = []) (p : B.proc) =
  let lay = layout_of ~base p in
  (* variables can also appear first on the left-hand side of assignments
     inside generated code paths not covered by vars_of; vars_of already
     collects all, so lookup failures are internal errors. *)
  let var_addr v =
    match List.assoc_opt v lay.var_addr with
    | Some a -> a
    | None -> invalid_arg ("Codegen: unknown variable " ^ v)
  in
  let arr_addr a =
    match List.assoc_opt a lay.arr_addr with
    | Some x -> x
    | None -> invalid_arg ("Codegen: unknown array " ^ a)
  in
  let chan_port c =
    match List.assoc_opt c chan_ports with
    | Some p -> p
    | None -> invalid_arg ("Codegen: no port mapping for channel " ^ c)
  in
  let arr_len a =
    match List.assoc_opt a p.B.arrays with
    | Some len -> len
    | None -> invalid_arg ("Codegen: unknown array " ^ a)
  in
  let items = ref [] in
  let emit i = items := Asm.Ins i :: !items in
  let label l = items := Asm.Label l :: !items in
  let next_label = ref 0 in
  let fresh prefix =
    incr next_label;
    Printf.sprintf "%s_%d" prefix !next_label
  in
  (* Clamp the index in [r] into [0, len-1], matching the interpreter's
     protected-mode array accesses. *)
  let clamp_reg r len =
    let lpos = fresh "clamp" and lok = fresh "clamp" in
    emit (Isa.B (Isa.Ge, r, 0, lpos));
    emit (Isa.Li (r, 0));
    label lpos;
    emit (Isa.Li (clamp_scratch, len));
    emit (Isa.B (Isa.Lt, r, clamp_scratch, lok));
    emit (Isa.Li (r, len - 1));
    label lok
  in
  let provably_in_bounds renv idx len =
    match range renv idx with
    | Some (l, h) -> l >= 0 && h < len
    | None -> false
  in
  (* Evaluate the index of array [a] into the register for stack [level],
     clamped into bounds; constant indices clamp at compile time and
     proven-in-bounds indices skip the runtime clamp. *)
  let rec index_expr renv level a idx =
    let rd = stack_base + level in
    let len = arr_len a in
    match const_eval idx with
    | Some i ->
        if rd > stack_top then
          invalid_arg "Codegen: expression too deep for register stack";
        emit (Isa.Li (rd, B.clamp_index len i))
    | None ->
        expr renv level idx;
        if not (provably_in_bounds renv idx len) then clamp_reg rd len
  (* Evaluate [e] into the register for stack [level]. *)
  and expr renv level (e : B.expr) =
    let rd = stack_base + level in
    if rd > stack_top then
      invalid_arg "Codegen: expression too deep for register stack";
    (match e with
    | B.Int i -> emit (Isa.Li (rd, i))
    | B.Var v -> emit (Isa.Lw (rd, 0, var_addr v))
    | B.Idx (a, idx) ->
        index_expr renv level a idx;
        (* rd holds the (clamped) index; add array base, then load *)
        emit (Isa.Alui (Isa.Add, rd, rd, arr_addr a));
        emit (Isa.Lw (rd, rd, 0))
    | B.Neg e ->
        expr renv level e;
        emit (Isa.Alu (Isa.Sub, rd, 0, rd))
    | B.Not e ->
        expr renv level e;
        emit (Isa.Alui (Isa.Seq, rd, rd, 0))
    | B.Ext (op, acc, a, b) ->
        expr renv level acc;
        expr renv (level + 1) a;
        expr renv (level + 2) b;
        if rd + 2 > stack_top then
          invalid_arg "Codegen: expression too deep for register stack";
        emit (Isa.Custom (op, rd, rd + 1, rd + 2))
    | B.Bin (op, a, b) -> (
        expr renv level a;
        expr renv (level + 1) b;
        let rs = rd + 1 in
        if rs > stack_top then
          invalid_arg "Codegen: expression too deep for register stack";
        let simple o = emit (Isa.Alu (o, rd, rd, rs)) in
        match op with
        | B.Add -> simple Isa.Add
        | B.Sub -> simple Isa.Sub
        | B.Mul -> simple Isa.Mul
        | B.Div -> simple Isa.Div
        | B.Rem -> simple Isa.Rem
        | B.And -> simple Isa.And
        | B.Or -> simple Isa.Or
        | B.Xor -> simple Isa.Xor
        | B.Shl -> simple Isa.Shl
        | B.Shr -> simple Isa.Shr
        | B.Lt -> simple Isa.Slt
        | B.Eq -> simple Isa.Seq
        | B.Le ->
            (* a <= b == !(b < a) *)
            emit (Isa.Alu (Isa.Slt, rd, rs, rd));
            emit (Isa.Alui (Isa.Seq, rd, rd, 0))
        | B.Ne ->
            emit (Isa.Alu (Isa.Seq, rd, rd, rs));
            emit (Isa.Alui (Isa.Seq, rd, rd, 0))))
  in
  let store_var v level = emit (Isa.Sw (stack_base + level, 0, var_addr v)) in
  (* [renv] maps induction variables to known value ranges; [fdepth]
     counts enclosing dynamically-bounded for loops (their hoisted
     bounds live in r1..r6). *)
  let rec stmt renv fdepth (s : B.stmt) =
    match s with
    | B.Assign (v, e) ->
        expr renv 0 e;
        store_var v 0
    | B.Store (a, i, e) ->
        index_expr renv 0 a i;
        expr renv 1 e;
        emit (Isa.Alui (Isa.Add, stack_base, stack_base, arr_addr a));
        emit (Isa.Sw (stack_base + 1, stack_base, 0))
    | B.If (c, t, []) ->
        let lend = fresh "endif" in
        expr renv 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lend));
        List.iter (stmt renv fdepth) t;
        label lend
    | B.If (c, t, e) ->
        let lelse = fresh "else" and lend = fresh "endif" in
        expr renv 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lelse));
        List.iter (stmt renv fdepth) t;
        emit (Isa.J lend);
        label lelse;
        List.iter (stmt renv fdepth) e;
        label lend
    | B.While (c, body, _) ->
        let lhead = fresh "while" and lend = fresh "endwhile" in
        label lhead;
        expr renv 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lend));
        List.iter (stmt renv fdepth) body;
        emit (Isa.J lhead);
        label lend
    | B.For (v, lo, hi, body) ->
        let lhead = fresh "for" and lend = fresh "endfor" in
        (* The interpreter evaluates the bound once, before the loop;
           a non-constant bound is hoisted into a dedicated register so
           body writes to its variables cannot re-bound the loop. *)
        let bound =
          match const_eval hi with
          | Some h -> `Const h
          | None ->
              let breg = bound_base + fdepth in
              if breg > bound_top then
                invalid_arg
                  "Codegen: dynamically-bounded for loops nest too deep";
              expr renv 0 hi;
              emit (Isa.Alu (Isa.Add, breg, stack_base, 0));
              `Reg breg
        in
        expr renv 0 lo;
        (* r8 carries the candidate induction value; like the
           interpreter, the variable itself is only written at the top
           of iterations that actually run, so the final increment never
           leaks into it. *)
        label lhead;
        (match bound with
        | `Const h -> emit (Isa.Li (stack_base + 1, h))
        | `Reg breg -> emit (Isa.Alu (Isa.Add, stack_base + 1, breg, 0)));
        (* exit when v >= hi *)
        emit (Isa.B (Isa.Ge, stack_base, stack_base + 1, lend));
        store_var v 0;
        let renv' =
          let renv = List.remove_assoc v renv in
          match (const_eval lo, const_eval hi) with
          | Some l, Some h
            when h > l && not (List.exists (assigns_var v) body) ->
              (v, (l, h - 1)) :: renv
          | _ -> renv
        in
        let fdepth' =
          match bound with `Const _ -> fdepth | `Reg _ -> fdepth + 1
        in
        List.iter (stmt renv' fdepth') body;
        emit (Isa.Lw (stack_base, 0, var_addr v));
        emit (Isa.Alui (Isa.Add, stack_base, stack_base, 1));
        emit (Isa.J lhead);
        label lend
    | B.PortOut (port, e) ->
        expr renv 0 e;
        emit (Isa.Out (port, stack_base))
    | B.PortIn (v, port) ->
        emit (Isa.In (stack_base, port));
        store_var v 0
    | B.Send (ch, e) ->
        expr renv 0 e;
        emit (Isa.Out (chan_port ch, stack_base))
    | B.Recv (v, ch) ->
        emit (Isa.In (stack_base, chan_port ch));
        store_var v 0
  in
  List.iter (stmt [] 0) p.B.body;
  emit Isa.Halt;
  (List.rev !items, lay)

let resolve lay bindings =
  List.filter_map
    (fun (k, v) ->
      match String.index_opt k '[' with
      | None -> (
          match List.assoc_opt k lay.var_addr with
          | Some a -> Some (a, v)
          | None -> None (* tolerate extra bindings, like Behavior.run *))
      | Some i -> (
          let name = String.sub k 0 i in
          let idx =
            int_of_string (String.sub k (i + 1) (String.length k - i - 2))
          in
          match List.assoc_opt name lay.arr_addr with
          | Some a -> Some (a + idx, v)
          | None -> invalid_arg ("Codegen.bind: unknown array " ^ name)))
    bindings

let bind lay cpu bindings =
  List.iter (fun (a, v) -> Cpu.write_mem cpu a v) (resolve lay bindings)

let result lay cpu v =
  match List.assoc_opt v lay.var_addr with
  | Some a -> Cpu.read_mem cpu a
  | None -> invalid_arg ("Codegen.result: unknown variable " ^ v)

let read_array lay cpu a i =
  match List.assoc_opt a lay.arr_addr with
  | Some addr -> Cpu.read_mem cpu (addr + i)
  | None -> invalid_arg ("Codegen.read_array: unknown array " ^ a)

exception Trapped of { proc : string; pc : int; msg : string }

let () =
  Printexc.register_printer (function
    | Trapped { proc; pc; msg } ->
        Some
          (Printf.sprintf "Codegen.Trapped(proc %S, pc %d): %s" proc pc msg)
    | _ -> None)

let run_compiled ?(env = Cpu.default_env) ?fuel (p : B.proc) bindings =
  let items, lay = compile p in
  let img = Asm.assemble items in
  let cpu = Cpu.create ~env img.Asm.code in
  bind lay cpu bindings;
  (match Cpu.run ?fuel cpu with
  | Cpu.Halted -> ()
  | Cpu.Trapped msg ->
      raise (Trapped { proc = p.B.name; pc = Cpu.pc cpu; msg })
  | Cpu.Running -> assert false);
  (List.map (fun v -> (v, result lay cpu v)) p.B.results, cpu)
