type status = Running | Halted | Trapped of string

type env = {
  port_in : int -> int;
  port_out : int -> int -> unit;
  custom : int -> int -> int -> int -> int;
  custom_latency : int -> int;
  mem_read : int -> int option;
  mem_write : int -> int -> bool;
}

let default_env =
  {
    port_in = (fun _ -> 0);
    port_out = (fun _ _ -> ());
    custom = (fun _ _ _ _ -> 0);
    custom_latency = (fun _ -> 1);
    mem_read = (fun _ -> None);
    mem_write = (fun _ _ -> false);
  }

type t = {
  code : Isa.program;
  mem : int array;
  regs : int array;
  env : env;
  plain_mem : bool;
      (* both memory hooks are the defaults (pure no-ops), so the block
         tier may access [mem] directly and skip the per-access
         trap/interrupt recheck — nothing can perturb core state inside
         a block *)
  latency : int Isa.instr -> int;
  irq_vector : int;
  mutable pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable status : status;
  mutable irq_line : bool;
  mutable irq_enable : bool;
  mutable in_isr : bool;
  mutable epc : int;
  mutable retire_cb : (pc:int -> cycles:int -> unit) option;
  mutable blocks : Block_compiler.cache option;
      (* decoded-block cache for [run_blocks]; built lazily on first
         block dispatch and never invalidated — [code] is immutable for
         the life of the CPU, so it survives [reset] *)
}

let create ?(mem_words = 65536) ?(env = default_env)
    ?(latency = Isa.default_latency) ?(irq_vector = 1) code =
  {
    code;
    mem = Array.make mem_words 0;
    regs = Array.make Isa.n_regs 0;
    env;
    plain_mem =
      env.mem_read == default_env.mem_read
      && env.mem_write == default_env.mem_write;
    latency;
    irq_vector;
    pc = 0;
    cycles = 0;
    instret = 0;
    status = Running;
    irq_line = false;
    irq_enable = false;
    in_isr = false;
    epc = 0;
    retire_cb = None;
    blocks = None;
  }

let reset t =
  Array.fill t.regs 0 Isa.n_regs 0;
  t.pc <- 0;
  t.cycles <- 0;
  t.instret <- 0;
  t.status <- Running;
  t.irq_enable <- false;
  t.in_isr <- false;
  t.epc <- 0;
  (* a latched request line or retirement callback from the previous run
     must not leak into the next one: a stale high line would fire an
     interrupt right after the first [Ei] *)
  t.irq_line <- false;
  t.retire_cb <- None

type snap = {
  s_mem : int array;
  s_regs : int array;
  s_pc : int;
  s_cycles : int;
  s_instret : int;
  s_status : status;
  s_irq_line : bool;
  s_irq_enable : bool;
  s_in_isr : bool;
  s_epc : int;
}

let snapshot t =
  {
    s_mem = Array.copy t.mem;
    s_regs = Array.copy t.regs;
    s_pc = t.pc;
    s_cycles = t.cycles;
    s_instret = t.instret;
    s_status = t.status;
    s_irq_line = t.irq_line;
    s_irq_enable = t.irq_enable;
    s_in_isr = t.in_isr;
    s_epc = t.epc;
  }

let restore t s =
  if Array.length s.s_mem <> Array.length t.mem then
    invalid_arg "Cpu.restore: snapshot from a CPU with a different mem size";
  Array.blit s.s_mem 0 t.mem 0 (Array.length t.mem);
  Array.blit s.s_regs 0 t.regs 0 (Array.length t.regs);
  t.pc <- s.s_pc;
  t.cycles <- s.s_cycles;
  t.instret <- s.s_instret;
  t.status <- s.s_status;
  t.irq_line <- s.s_irq_line;
  t.irq_enable <- s.s_irq_enable;
  t.in_isr <- s.s_in_isr;
  t.epc <- s.s_epc

let status t = t.status
let cycles t = t.cycles
let pc t = t.pc
let instret t = t.instret
let reg t r = t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- v

let trap t reason = t.status <- Trapped reason

let read_mem t a =
  if a < 0 || a >= Array.length t.mem then begin
    trap t (Printf.sprintf "Cpu.read_mem: address %d out of range" a);
    0
  end
  else t.mem.(a)

let write_mem t a v =
  if a < 0 || a >= Array.length t.mem then
    trap t (Printf.sprintf "Cpu.write_mem: address %d out of range" a)
  else t.mem.(a) <- v

let set_irq t level = t.irq_line <- level
let irq_enabled t = t.irq_enable
let on_retire t cb = t.retire_cb <- Some cb

let alu op a b =
  match op with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.Div -> if b = 0 then 0 else a / b
  | Isa.Rem -> if b = 0 then 0 else a mod b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl (b land 31)
  | Isa.Shr -> a asr (b land 31)
  | Isa.Slt -> if a < b then 1 else 0
  | Isa.Seq -> if a = b then 1 else 0

let cond c a b =
  match c with
  | Isa.Eq -> a = b
  | Isa.Ne -> a <> b
  | Isa.Lt -> a < b
  | Isa.Ge -> a >= b

exception Trap of string

let step t =
  match t.status with
  | Halted | Trapped _ -> 0
  | Running -> (
      (* take a pending interrupt between instructions *)
      if t.irq_line && t.irq_enable && not t.in_isr then begin
        let intr_pc = t.pc in
        t.epc <- t.pc;
        t.pc <- t.irq_vector;
        t.in_isr <- true;
        t.irq_enable <- false;
        t.cycles <- t.cycles + 2;
        (* interrupt entry overhead: 2 cycles attributed to the
           interrupted pc, so [Profiler.total_cycles] tracks [cycles]
           exactly even on IRQ workloads *)
        (match t.retire_cb with
        | Some cb -> cb ~pc:intr_pc ~cycles:2
        | None -> ());
        2
      end
      else if t.pc < 0 || t.pc >= Array.length t.code then begin
        t.status <- Trapped (Printf.sprintf "pc %d out of range" t.pc);
        0
      end
      else
        let i = t.code.(t.pc) in
        let this_pc = t.pc in
        let next = t.pc + 1 in
        try
          (* the execute match returns the step's latency directly: no
             [ref] cell and no bounds-check closure allocated per step *)
          let lat0 = t.latency i in
          let lat =
            match i with
            | Isa.Alu (op, d, a, b) ->
                set_reg t d (alu op t.regs.(a) t.regs.(b));
                t.pc <- next;
                lat0
            | Isa.Alui (op, d, a, imm) ->
                set_reg t d (alu op t.regs.(a) imm);
                t.pc <- next;
                lat0
            | Isa.Li (d, imm) ->
                set_reg t d imm;
                t.pc <- next;
                lat0
            | Isa.Lw (d, a, off) ->
                let addr = t.regs.(a) + off in
                (match t.env.mem_read addr with
                | Some v -> set_reg t d v
                | None ->
                    if addr < 0 || addr >= Array.length t.mem then
                      raise
                        (Trap
                           (Printf.sprintf "mem access %d at pc %d" addr
                              this_pc));
                    set_reg t d t.mem.(addr));
                t.pc <- next;
                lat0
            | Isa.Sw (s, a, off) ->
                let addr = t.regs.(a) + off in
                if not (t.env.mem_write addr t.regs.(s)) then begin
                  if addr < 0 || addr >= Array.length t.mem then
                    raise
                      (Trap
                         (Printf.sprintf "mem access %d at pc %d" addr
                            this_pc));
                  t.mem.(addr) <- t.regs.(s)
                end;
                t.pc <- next;
                lat0
            | Isa.B (c, a, b, tgt) ->
                if cond c t.regs.(a) t.regs.(b) then begin
                  t.pc <- tgt;
                  lat0 + 1 (* taken-branch penalty *)
                end
                else begin
                  t.pc <- next;
                  lat0
                end
            | Isa.J tgt ->
                t.pc <- tgt;
                lat0
            | Isa.Jal (d, tgt) ->
                set_reg t d next;
                t.pc <- tgt;
                lat0
            | Isa.Jr r ->
                t.pc <- t.regs.(r);
                lat0
            | Isa.In (d, port) ->
                set_reg t d (t.env.port_in port);
                t.pc <- next;
                lat0
            | Isa.Out (port, s) ->
                t.env.port_out port t.regs.(s);
                t.pc <- next;
                lat0
            | Isa.Custom (e, d, a, b) ->
                set_reg t d (t.env.custom e t.regs.(d) t.regs.(a) t.regs.(b));
                t.pc <- next;
                t.env.custom_latency e
            | Isa.Ei ->
                t.irq_enable <- true;
                t.pc <- next;
                lat0
            | Isa.Di ->
                t.irq_enable <- false;
                t.pc <- next;
                lat0
            | Isa.Rti ->
                t.pc <- t.epc;
                t.in_isr <- false;
                t.irq_enable <- true;
                lat0
            | Isa.Nop ->
                t.pc <- next;
                lat0
            | Isa.Halt ->
                (* pc stays on the Halt instruction: advancing past the
                   end of the code array leaked an out-of-range pc into
                   snapshots and fuzz comparisons *)
                t.status <- Halted;
                lat0
          in
          t.cycles <- t.cycles + lat;
          t.instret <- t.instret + 1;
          (match t.retire_cb with
          | Some cb -> cb ~pc:this_pc ~cycles:lat
          | None -> ());
          lat
        with Trap msg ->
          t.status <- Trapped msg;
          0)

let run_fast t ~fuel =
  let steps = ref 0 in
  while t.status = Running && !steps < fuel do
    ignore (step t);
    incr steps
  done;
  !steps

let run ?(fuel = 50_000_000) t =
  ignore (run_fast t ~fuel);
  if t.status = Running then t.status <- Trapped "fuel exhausted";
  t.status

(* ------------------------------------------------------------------ *)
(* the block-compiled tier                                             *)
(* ------------------------------------------------------------------ *)

module Bc = Block_compiler

(* Index mappings fixed by [Block_compiler.alu_index] /
   [Block_compiler.cond_index]; the fuzzed three-way equivalence suite
   in test_compiled.ml pins them against the variant-based [alu]. *)
let alu_apply idx a b =
  match idx with
  | 0 -> a + b
  | 1 -> a - b
  | 2 -> a * b
  | 3 -> if b = 0 then 0 else a / b
  | 4 -> if b = 0 then 0 else a mod b
  | 5 -> a land b
  | 6 -> a lor b
  | 7 -> a lxor b
  | 8 -> a lsl (b land 31)
  | 9 -> a asr (b land 31)
  | 10 -> if a < b then 1 else 0
  | _ -> if a = b then 1 else 0

let cond_apply idx a b =
  match idx with 0 -> a = b | 1 -> a <> b | 2 -> a < b | _ -> a >= b

(* Execute one decoded block.  [t.pc]/[t.cycles]/[t.instret] are
   written only at block exit; every exit path (terminator, end-record,
   fuel boundary, trap, hook-raised IRQ) leaves [t.pc] exactly where a
   [step] loop would have.  Returns the fuel steps consumed — retired
   instructions plus one for a trapping memory access, matching what
   the same instructions would have cost through [run_fast].

   The walk is a tail recursion over (record index, retired-so-far,
   cycles-so-far) with every piece of state an explicit argument of a
   top-level function: int accumulators instead of refs, and no local
   closures, keep the hot loop allocation-free — the same discipline as
   [Logic_sim.eval].  [steps] both counts retired instructions so far
   and charges fuel; the two only diverge on the trapping exit, which
   charges one extra fuel step for the access that retired nothing.
   Reads of the uop array use [Array.unsafe_get]: every index is
   produced by [Block_compiler.compile_block] over its own fixed-stride
   records, never by guest data. *)
let exec_finish t retired cy fuel_steps =
  t.cycles <- t.cycles + cy;
  t.instret <- t.instret + retired;
  fuel_steps

let exec_trap_mem t addr pcrec steps cy =
  (* pc stays on the faulting instruction — same as [step]'s [Trap]
     path *)
  t.status <- Trapped (Printf.sprintf "mem access %d at pc %d" addr pcrec);
  t.pc <- pcrec;
  exec_finish t steps cy (steps + 1)

let rec exec_uops t u max_steps i steps cy =
  let base = i * 6 in
  if steps >= max_steps then begin
    (* fuel boundary: resume at this record's own pc *)
    t.pc <- Array.unsafe_get u (base + 5);
    exec_finish t steps cy steps
  end
  else
    let op = Array.unsafe_get u base in
    let regs = t.regs in
    if op < Bc.uop_alui then begin
      (* reg-reg ALU *)
      let v =
        alu_apply op
          regs.(Array.unsafe_get u (base + 2))
          regs.(Array.unsafe_get u (base + 3))
      in
      let d = Array.unsafe_get u (base + 1) in
      if d <> 0 then regs.(d) <- v;
      exec_uops t u max_steps (i + 1) (steps + 1)
        (cy + Array.unsafe_get u (base + 4))
    end
    else if op < Bc.uop_li then begin
      (* reg-imm ALU *)
      let v =
        alu_apply (op - Bc.uop_alui)
          regs.(Array.unsafe_get u (base + 2))
          (Array.unsafe_get u (base + 3))
      in
      let d = Array.unsafe_get u (base + 1) in
      if d <> 0 then regs.(d) <- v;
      exec_uops t u max_steps (i + 1) (steps + 1)
        (cy + Array.unsafe_get u (base + 4))
    end
    else if op = Bc.uop_li then begin
      let d = Array.unsafe_get u (base + 1) in
      if d <> 0 then regs.(d) <- Array.unsafe_get u (base + 2);
      exec_uops t u max_steps (i + 1) (steps + 1)
        (cy + Array.unsafe_get u (base + 4))
    end
    else if op = Bc.uop_lw then begin
      let addr =
        regs.(Array.unsafe_get u (base + 2)) + Array.unsafe_get u (base + 3)
      in
      let mem = t.mem in
      if t.plain_mem then
        if addr >= 0 && addr < Array.length mem then begin
          let d = Array.unsafe_get u (base + 1) in
          if d <> 0 then regs.(d) <- mem.(addr);
          exec_uops t u max_steps (i + 1) (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
        end
        else exec_trap_mem t addr (Array.unsafe_get u (base + 5)) steps cy
      else
        (* hook-backed access: complete it, then re-check trap status
           and the pending-interrupt condition — the hook may have
           trapped the core or raised the request line, and [step]
           would see either at the next instruction boundary *)
        let ok =
          match t.env.mem_read addr with
          | Some v ->
              let d = Array.unsafe_get u (base + 1) in
              if d <> 0 then regs.(d) <- v;
              true
          | None ->
              if addr < 0 || addr >= Array.length mem then false
              else begin
                let d = Array.unsafe_get u (base + 1) in
                if d <> 0 then regs.(d) <- mem.(addr);
                true
              end
        in
        if not ok then
          exec_trap_mem t addr (Array.unsafe_get u (base + 5)) steps cy
        else if
          t.status <> Running || (t.irq_line && t.irq_enable && not t.in_isr)
        then begin
          t.pc <- Array.unsafe_get u (base + 5) + 1;
          exec_finish t (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
            (steps + 1)
        end
        else
          exec_uops t u max_steps (i + 1) (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
    end
    else if op = Bc.uop_sw then begin
      let addr =
        regs.(Array.unsafe_get u (base + 2)) + Array.unsafe_get u (base + 3)
      in
      let mem = t.mem in
      if t.plain_mem then
        if addr >= 0 && addr < Array.length mem then begin
          mem.(addr) <- regs.(Array.unsafe_get u (base + 1));
          exec_uops t u max_steps (i + 1) (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
        end
        else exec_trap_mem t addr (Array.unsafe_get u (base + 5)) steps cy
      else
        let ok =
          if t.env.mem_write addr regs.(Array.unsafe_get u (base + 1)) then
            true
          else if addr < 0 || addr >= Array.length mem then false
          else begin
            mem.(addr) <- regs.(Array.unsafe_get u (base + 1));
            true
          end
        in
        if not ok then
          exec_trap_mem t addr (Array.unsafe_get u (base + 5)) steps cy
        else if
          t.status <> Running || (t.irq_line && t.irq_enable && not t.in_isr)
        then begin
          t.pc <- Array.unsafe_get u (base + 5) + 1;
          exec_finish t (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
            (steps + 1)
        end
        else
          exec_uops t u max_steps (i + 1) (steps + 1)
            (cy + Array.unsafe_get u (base + 4))
    end
    else if op = Bc.uop_nop then
      exec_uops t u max_steps (i + 1) (steps + 1)
        (cy + Array.unsafe_get u (base + 4))
    else if op < Bc.uop_j then begin
      (* conditional branch: always the block terminator *)
      let taken =
        cond_apply (op - Bc.uop_b)
          regs.(Array.unsafe_get u (base + 1))
          regs.(Array.unsafe_get u (base + 2))
      in
      if taken then begin
        t.pc <- Array.unsafe_get u (base + 3);
        (* taken-branch penalty *)
        exec_finish t (steps + 1)
          (cy + Array.unsafe_get u (base + 4) + 1)
          (steps + 1)
      end
      else begin
        t.pc <- Array.unsafe_get u (base + 5) + 1;
        exec_finish t (steps + 1)
          (cy + Array.unsafe_get u (base + 4))
          (steps + 1)
      end
    end
    else if op = Bc.uop_j then begin
      t.pc <- Array.unsafe_get u (base + 1);
      exec_finish t (steps + 1) (cy + Array.unsafe_get u (base + 4)) (steps + 1)
    end
    else if op = Bc.uop_jal then begin
      let d = Array.unsafe_get u (base + 1) in
      if d <> 0 then regs.(d) <- Array.unsafe_get u (base + 5) + 1;
      t.pc <- Array.unsafe_get u (base + 2);
      exec_finish t (steps + 1) (cy + Array.unsafe_get u (base + 4)) (steps + 1)
    end
    else if op = Bc.uop_jr then begin
      t.pc <- regs.(Array.unsafe_get u (base + 1));
      exec_finish t (steps + 1) (cy + Array.unsafe_get u (base + 4)) (steps + 1)
    end
    else if op = Bc.uop_halt then begin
      t.status <- Halted;
      t.pc <- Array.unsafe_get u (base + 5);
      exec_finish t (steps + 1) (cy + Array.unsafe_get u (base + 4)) (steps + 1)
    end
    else begin
      (* uop_end: block fell off without a terminator *)
      t.pc <- Array.unsafe_get u (base + 1);
      exec_finish t steps cy steps
    end

(* Whole-block fast path, taken when memory is hook-free ([plain_mem])
   and the remaining fuel covers the block's worst case ([n] steps).
   Under those premises nothing can stop the walk mid-block except a
   trapping memory access, so the per-record fuel check and the
   cycles/instret accumulators disappear: each record is just operand
   loads plus the operation, and the block exit charges the
   precomputed [full_cycles]/[full_instrs] totals in one update.
   Register-file accesses are unchecked as well — every register index
   was validated at decode time ([Block_compiler.regs_ok]; blocks with
   out-of-range registers never compile) — and memory accesses go
   unchecked behind their explicit bounds test.  The trap exit is the
   one slow case: it reconstructs the partial cycle sum by re-walking
   the lat fields of the records already executed.

   Block chaining: a terminator that leaves the core Running jumps
   straight into the successor block through [exec_chain] when that
   block is already decoded and the remaining fuel covers its worst
   case, skipping the dispatcher round trip entirely (the dominant
   cost for short loop bodies).  This is sound because the dispatcher's
   re-checks cannot change outcome mid-chain under [plain_mem]: the
   pending-interrupt condition was false at dispatch and only unsafe
   instructions (Ei/Di/Rti — never inside a block) or hooks (absent)
   can make it true, and a non-Running status exits the chain by
   construction.  [acc] threads the fuel consumed by earlier blocks of
   the chain so every continuation is a tail call. *)
let exec_fast_trap t u acc i addr =
  let cy = ref 0 in
  for k = 0 to i - 1 do
    cy := !cy + Array.unsafe_get u ((k * 6) + 4)
  done;
  let pcrec = Array.unsafe_get u ((i * 6) + 5) in
  t.status <- Trapped (Printf.sprintf "mem access %d at pc %d" addr pcrec);
  t.pc <- pcrec;
  t.cycles <- t.cycles + !cy;
  t.instret <- t.instret + i;
  acc + i + 1

let rec exec_fast t entries fuel_left acc u fc fi i =
  let base = i * 6 in
  let op = Array.unsafe_get u base in
  let regs = t.regs in
  if op < Bc.uop_li then begin
    (* reg-reg and reg-imm ALU share one inlined operator dispatch —
       a direct jump table on the alu index, no out-of-line call *)
    let a = Array.unsafe_get regs (Array.unsafe_get u (base + 2)) in
    let y = Array.unsafe_get u (base + 3) in
    let imm = op >= Bc.uop_alui in
    let idx = if imm then op - Bc.uop_alui else op in
    let b = if imm then y else Array.unsafe_get regs y in
    let v =
      match idx with
      | 0 -> a + b
      | 1 -> a - b
      | 2 -> a * b
      | 3 -> if b = 0 then 0 else a / b
      | 4 -> if b = 0 then 0 else a mod b
      | 5 -> a land b
      | 6 -> a lor b
      | 7 -> a lxor b
      | 8 -> a lsl (b land 31)
      | 9 -> a asr (b land 31)
      | 10 -> if a < b then 1 else 0
      | _ -> if a = b then 1 else 0
    in
    let d = Array.unsafe_get u (base + 1) in
    if d <> 0 then Array.unsafe_set regs d v;
    exec_fast t entries fuel_left acc u fc fi (i + 1)
  end
  else if op = Bc.uop_li then begin
    let d = Array.unsafe_get u (base + 1) in
    if d <> 0 then Array.unsafe_set regs d (Array.unsafe_get u (base + 2));
    exec_fast t entries fuel_left acc u fc fi (i + 1)
  end
  else if op = Bc.uop_lw then begin
    let addr =
      Array.unsafe_get regs (Array.unsafe_get u (base + 2))
      + Array.unsafe_get u (base + 3)
    in
    let mem = t.mem in
    if addr >= 0 && addr < Array.length mem then begin
      let d = Array.unsafe_get u (base + 1) in
      if d <> 0 then Array.unsafe_set regs d (Array.unsafe_get mem addr);
      exec_fast t entries fuel_left acc u fc fi (i + 1)
    end
    else exec_fast_trap t u acc i addr
  end
  else if op = Bc.uop_sw then begin
    let addr =
      Array.unsafe_get regs (Array.unsafe_get u (base + 2))
      + Array.unsafe_get u (base + 3)
    in
    let mem = t.mem in
    if addr >= 0 && addr < Array.length mem then begin
      Array.unsafe_set mem addr
        (Array.unsafe_get regs (Array.unsafe_get u (base + 1)));
      exec_fast t entries fuel_left acc u fc fi (i + 1)
    end
    else exec_fast_trap t u acc i addr
  end
  else if op = Bc.uop_nop then exec_fast t entries fuel_left acc u fc fi (i + 1)
  else if op < Bc.uop_j then begin
    let taken =
      cond_apply (op - Bc.uop_b)
        (Array.unsafe_get regs (Array.unsafe_get u (base + 1)))
        (Array.unsafe_get regs (Array.unsafe_get u (base + 2)))
    in
    let pc =
      if taken then begin
        t.cycles <- t.cycles + fc + 1;
        Array.unsafe_get u (base + 3)
      end
      else begin
        t.cycles <- t.cycles + fc;
        Array.unsafe_get u (base + 5) + 1
      end
    in
    t.pc <- pc;
    t.instret <- t.instret + fi;
    exec_chain t entries (fuel_left - fi) (acc + fi) pc
  end
  else if op = Bc.uop_j then begin
    let pc = Array.unsafe_get u (base + 1) in
    t.pc <- pc;
    t.cycles <- t.cycles + fc;
    t.instret <- t.instret + fi;
    exec_chain t entries (fuel_left - fi) (acc + fi) pc
  end
  else if op = Bc.uop_jal then begin
    let d = Array.unsafe_get u (base + 1) in
    if d <> 0 then Array.unsafe_set regs d (Array.unsafe_get u (base + 5) + 1);
    let pc = Array.unsafe_get u (base + 2) in
    t.pc <- pc;
    t.cycles <- t.cycles + fc;
    t.instret <- t.instret + fi;
    exec_chain t entries (fuel_left - fi) (acc + fi) pc
  end
  else if op = Bc.uop_jr then begin
    let pc = Array.unsafe_get regs (Array.unsafe_get u (base + 1)) in
    t.pc <- pc;
    t.cycles <- t.cycles + fc;
    t.instret <- t.instret + fi;
    exec_chain t entries (fuel_left - fi) (acc + fi) pc
  end
  else if op = Bc.uop_halt then begin
    t.status <- Halted;
    t.pc <- Array.unsafe_get u (base + 5);
    t.cycles <- t.cycles + fc;
    t.instret <- t.instret + fi;
    acc + fi
  end
  else begin
    (* uop_end *)
    let pc = Array.unsafe_get u (base + 1) in
    t.pc <- pc;
    t.cycles <- t.cycles + fc;
    t.instret <- t.instret + fi;
    exec_chain t entries (fuel_left - fi) (acc + fi) pc
  end

and exec_chain t entries fuel_left acc pc =
  if pc >= 0 && pc < Array.length entries then
    match Array.unsafe_get entries pc with
    | Some (Bc.Block blk) when fuel_left >= blk.Bc.n ->
        exec_fast t entries fuel_left acc blk.Bc.uops blk.Bc.full_cycles
          blk.Bc.full_instrs 0
    | _ ->
        (* undecoded, unsafe, or not enough fuel left: back to the
           dispatcher *)
        acc
  else acc

let exec_block t entries (blk : Bc.block) ~max_steps =
  if t.plain_mem && max_steps >= blk.Bc.n then
    exec_fast t entries max_steps 0 blk.Bc.uops blk.Bc.full_cycles
      blk.Bc.full_instrs 0
  else exec_uops t blk.Bc.uops max_steps 0 0 0

(* A pattern match instead of [t.status = Running]: [status] carries a
   string payload, so [=] is a generic-equality call — too expensive
   for a per-dispatch check. *)
let is_running t = match t.status with Running -> true | _ -> false

let run_blocks t ~fuel =
  match t.retire_cb with
  | Some _ ->
      (* per-instruction attribution must observe an up-to-date [cycles]
         at every retirement, so profiled runs stay on the reference
         tier *)
      run_fast t ~fuel
  | None ->
      let cache =
        match t.blocks with
        | Some c -> c
        | None ->
            let c = Bc.create ~latency:t.latency t.code in
            t.blocks <- Some c;
            c
      in
      let entries = Bc.entries cache in
      let code_len = Array.length t.code in
      let steps = ref 0 in
      while is_running t && !steps < fuel do
        if
          t.pc < 0 || t.pc >= code_len
          || (t.irq_line && t.irq_enable && not t.in_isr)
        then begin
          (* out-of-range pc trap and interrupt entry go through [step]
             so their semantics (and fuel charge) are identical by
             construction *)
          ignore (step t);
          incr steps
        end
        else begin
          (* hit path is a plain table load — [t.pc] was bounds-checked
             above and [entries] has one slot per pc *)
          match Array.unsafe_get entries t.pc with
          | Some (Bc.Block blk) ->
              steps := !steps + exec_block t entries blk ~max_steps:(fuel - !steps)
          | Some Bc.Unsafe ->
              ignore (step t);
              incr steps
          | None ->
              (* decode on first touch, then let the loop re-dispatch *)
              ignore (Bc.get cache ~pc:t.pc)
        end
      done;
      !steps

let blocks_compiled t =
  match t.blocks with None -> 0 | Some c -> Bc.blocks_compiled c

let run_compiled ?(fuel = 50_000_000) t =
  ignore (run_blocks t ~fuel);
  if t.status = Running then t.status <- Trapped "fuel exhausted";
  t.status
