type status = Running | Halted | Trapped of string

type env = {
  port_in : int -> int;
  port_out : int -> int -> unit;
  custom : int -> int -> int -> int -> int;
  custom_latency : int -> int;
  mem_read : int -> int option;
  mem_write : int -> int -> bool;
}

let default_env =
  {
    port_in = (fun _ -> 0);
    port_out = (fun _ _ -> ());
    custom = (fun _ _ _ _ -> 0);
    custom_latency = (fun _ -> 1);
    mem_read = (fun _ -> None);
    mem_write = (fun _ _ -> false);
  }

type t = {
  code : Isa.program;
  mem : int array;
  regs : int array;
  env : env;
  latency : int Isa.instr -> int;
  irq_vector : int;
  mutable pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable status : status;
  mutable irq_line : bool;
  mutable irq_enable : bool;
  mutable in_isr : bool;
  mutable epc : int;
  mutable retire_cb : (pc:int -> cycles:int -> unit) option;
}

let create ?(mem_words = 65536) ?(env = default_env)
    ?(latency = Isa.default_latency) ?(irq_vector = 1) code =
  {
    code;
    mem = Array.make mem_words 0;
    regs = Array.make Isa.n_regs 0;
    env;
    latency;
    irq_vector;
    pc = 0;
    cycles = 0;
    instret = 0;
    status = Running;
    irq_line = false;
    irq_enable = false;
    in_isr = false;
    epc = 0;
    retire_cb = None;
  }

let reset t =
  Array.fill t.regs 0 Isa.n_regs 0;
  t.pc <- 0;
  t.cycles <- 0;
  t.instret <- 0;
  t.status <- Running;
  t.irq_enable <- false;
  t.in_isr <- false;
  t.epc <- 0;
  (* a latched request line or retirement callback from the previous run
     must not leak into the next one: a stale high line would fire an
     interrupt right after the first [Ei] *)
  t.irq_line <- false;
  t.retire_cb <- None

type snap = {
  s_mem : int array;
  s_regs : int array;
  s_pc : int;
  s_cycles : int;
  s_instret : int;
  s_status : status;
  s_irq_line : bool;
  s_irq_enable : bool;
  s_in_isr : bool;
  s_epc : int;
}

let snapshot t =
  {
    s_mem = Array.copy t.mem;
    s_regs = Array.copy t.regs;
    s_pc = t.pc;
    s_cycles = t.cycles;
    s_instret = t.instret;
    s_status = t.status;
    s_irq_line = t.irq_line;
    s_irq_enable = t.irq_enable;
    s_in_isr = t.in_isr;
    s_epc = t.epc;
  }

let restore t s =
  if Array.length s.s_mem <> Array.length t.mem then
    invalid_arg "Cpu.restore: snapshot from a CPU with a different mem size";
  Array.blit s.s_mem 0 t.mem 0 (Array.length t.mem);
  Array.blit s.s_regs 0 t.regs 0 (Array.length t.regs);
  t.pc <- s.s_pc;
  t.cycles <- s.s_cycles;
  t.instret <- s.s_instret;
  t.status <- s.s_status;
  t.irq_line <- s.s_irq_line;
  t.irq_enable <- s.s_irq_enable;
  t.in_isr <- s.s_in_isr;
  t.epc <- s.s_epc

let status t = t.status
let cycles t = t.cycles
let pc t = t.pc
let instret t = t.instret
let reg t r = t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- v

let trap t reason = t.status <- Trapped reason

let read_mem t a =
  if a < 0 || a >= Array.length t.mem then begin
    trap t (Printf.sprintf "Cpu.read_mem: address %d out of range" a);
    0
  end
  else t.mem.(a)

let write_mem t a v =
  if a < 0 || a >= Array.length t.mem then
    trap t (Printf.sprintf "Cpu.write_mem: address %d out of range" a)
  else t.mem.(a) <- v

let set_irq t level = t.irq_line <- level
let irq_enabled t = t.irq_enable
let on_retire t cb = t.retire_cb <- Some cb

let alu op a b =
  match op with
  | Isa.Add -> a + b
  | Isa.Sub -> a - b
  | Isa.Mul -> a * b
  | Isa.Div -> if b = 0 then 0 else a / b
  | Isa.Rem -> if b = 0 then 0 else a mod b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> a lsl (b land 31)
  | Isa.Shr -> a asr (b land 31)
  | Isa.Slt -> if a < b then 1 else 0
  | Isa.Seq -> if a = b then 1 else 0

let cond c a b =
  match c with
  | Isa.Eq -> a = b
  | Isa.Ne -> a <> b
  | Isa.Lt -> a < b
  | Isa.Ge -> a >= b

exception Trap of string

let step t =
  match t.status with
  | Halted | Trapped _ -> 0
  | Running -> (
      (* take a pending interrupt between instructions *)
      if t.irq_line && t.irq_enable && not t.in_isr then begin
        t.epc <- t.pc;
        t.pc <- t.irq_vector;
        t.in_isr <- true;
        t.irq_enable <- false;
        t.cycles <- t.cycles + 2;
        (* interrupt entry overhead *)
        2
      end
      else if t.pc < 0 || t.pc >= Array.length t.code then begin
        t.status <- Trapped (Printf.sprintf "pc %d out of range" t.pc);
        0
      end
      else
        let i = t.code.(t.pc) in
        let this_pc = t.pc in
        let next = t.pc + 1 in
        try
          (* the execute match returns the step's latency directly: no
             [ref] cell and no bounds-check closure allocated per step *)
          let lat0 = t.latency i in
          let lat =
            match i with
            | Isa.Alu (op, d, a, b) ->
                set_reg t d (alu op t.regs.(a) t.regs.(b));
                t.pc <- next;
                lat0
            | Isa.Alui (op, d, a, imm) ->
                set_reg t d (alu op t.regs.(a) imm);
                t.pc <- next;
                lat0
            | Isa.Li (d, imm) ->
                set_reg t d imm;
                t.pc <- next;
                lat0
            | Isa.Lw (d, a, off) ->
                let addr = t.regs.(a) + off in
                (match t.env.mem_read addr with
                | Some v -> set_reg t d v
                | None ->
                    if addr < 0 || addr >= Array.length t.mem then
                      raise
                        (Trap
                           (Printf.sprintf "mem access %d at pc %d" addr
                              this_pc));
                    set_reg t d t.mem.(addr));
                t.pc <- next;
                lat0
            | Isa.Sw (s, a, off) ->
                let addr = t.regs.(a) + off in
                if not (t.env.mem_write addr t.regs.(s)) then begin
                  if addr < 0 || addr >= Array.length t.mem then
                    raise
                      (Trap
                         (Printf.sprintf "mem access %d at pc %d" addr
                            this_pc));
                  t.mem.(addr) <- t.regs.(s)
                end;
                t.pc <- next;
                lat0
            | Isa.B (c, a, b, tgt) ->
                if cond c t.regs.(a) t.regs.(b) then begin
                  t.pc <- tgt;
                  lat0 + 1 (* taken-branch penalty *)
                end
                else begin
                  t.pc <- next;
                  lat0
                end
            | Isa.J tgt ->
                t.pc <- tgt;
                lat0
            | Isa.Jal (d, tgt) ->
                set_reg t d next;
                t.pc <- tgt;
                lat0
            | Isa.Jr r ->
                t.pc <- t.regs.(r);
                lat0
            | Isa.In (d, port) ->
                set_reg t d (t.env.port_in port);
                t.pc <- next;
                lat0
            | Isa.Out (port, s) ->
                t.env.port_out port t.regs.(s);
                t.pc <- next;
                lat0
            | Isa.Custom (e, d, a, b) ->
                set_reg t d (t.env.custom e t.regs.(d) t.regs.(a) t.regs.(b));
                t.pc <- next;
                t.env.custom_latency e
            | Isa.Ei ->
                t.irq_enable <- true;
                t.pc <- next;
                lat0
            | Isa.Di ->
                t.irq_enable <- false;
                t.pc <- next;
                lat0
            | Isa.Rti ->
                t.pc <- t.epc;
                t.in_isr <- false;
                t.irq_enable <- true;
                lat0
            | Isa.Nop ->
                t.pc <- next;
                lat0
            | Isa.Halt ->
                t.status <- Halted;
                t.pc <- next;
                lat0
          in
          t.cycles <- t.cycles + lat;
          t.instret <- t.instret + 1;
          (match t.retire_cb with
          | Some cb -> cb ~pc:this_pc ~cycles:lat
          | None -> ());
          lat
        with Trap msg ->
          t.status <- Trapped msg;
          0)

let run_fast t ~fuel =
  let steps = ref 0 in
  while t.status = Running && !steps < fuel do
    ignore (step t);
    incr steps
  done;
  !steps

let run ?(fuel = 50_000_000) t =
  ignore (run_fast t ~fuel);
  if t.status = Running then t.status <- Trapped "fuel exhausted";
  t.status
