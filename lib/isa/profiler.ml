type t = {
  counts : int array;
  image : Asm.image;
  mutable total : int;
}

let attach cpu image =
  let t =
    {
      counts = Array.make (Array.length image.Asm.code) 0;
      image;
      total = 0;
    }
  in
  Cpu.on_retire cpu (fun ~pc ~cycles ->
      (* [total] accumulates unconditionally so it tracks [Cpu.cycles]
         exactly — interrupt entry can report the interrupted pc even
         when it is outside the image (e.g. a wild jump); only the
         per-pc histogram needs the bounds guard *)
      t.total <- t.total + cycles;
      if pc >= 0 && pc < Array.length t.counts then
        t.counts.(pc) <- t.counts.(pc) + cycles);
  t

let total_cycles t = t.total
let cycles_at t i = t.counts.(i)

let by_label t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let label =
          match Asm.label_of t.image i with
          | Some l -> l
          | None -> "<entry>"
        in
        let cur = try Hashtbl.find tbl label with Not_found -> 0 in
        Hashtbl.replace tbl label (cur + c)
      end)
    t.counts;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
  |> List.sort (fun (la, a) (lb, b) ->
         if a <> b then compare b a else compare la lb)

let hot_regions ?(top = 5) t =
  let total = float_of_int (max t.total 1) in
  by_label t
  |> List.filteri (fun i _ -> i < top)
  |> List.map (fun (l, c) -> (l, c, float_of_int c /. total))

let pp fmt t =
  Format.fprintf fmt "@[<v>profile: %d cycles total@," t.total;
  List.iter
    (fun (l, c, f) ->
      Format.fprintf fmt "  %-20s %10d cycles  %5.1f%%@," l c (100. *. f))
    (hot_regions ~top:10 t);
  Format.fprintf fmt "@]"
