module B = Codesign_ir.Behavior
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen

type pattern = {
  pid : int;
  pname : string;
  semantics : int -> int -> int -> int;
  area : int;
  latency : int;
  sw_cycles : int;
}

(* Matcher: if the expression is an instance of the pattern, return the
   (acc, a, b) operand sub-expressions. *)
let match_pattern pid (e : B.expr) : (B.expr * B.expr * B.expr) option =
  match (pid, e) with
  | 0, B.Bin (B.Add, x, B.Bin (B.Mul, a, b))
  | 0, B.Bin (B.Add, B.Bin (B.Mul, a, b), x) ->
      Some (x, a, b)
  | 1, B.Bin (B.Sub, x, B.Bin (B.Mul, a, b)) -> Some (x, a, b)
  | 2, B.Bin (B.Add, B.Bin (B.Add, x, a), b) -> Some (x, a, b)
  | 3, B.Bin (B.Add, x, B.Bin (B.Shl, a, b))
  | 3, B.Bin (B.Add, B.Bin (B.Shl, a, b), x) ->
      Some (x, a, b)
  | 4, B.Bin (B.Shr, B.Bin (B.Mul, a, b), k) -> Some (k, a, b)
  | 5, B.Bin (B.Xor, B.Bin (B.Shr, x, B.Int 1), B.Bin (B.And, a, b)) ->
      (* CRC step: (x >> 1) ^ (a & b) *)
      Some (x, a, b)
  | 6, B.Neg (B.Bin (B.And, a, b)) ->
      (* mask generation: -(a & b) *)
      Some (B.Int 0, a, b)
  | 7, B.Bin (B.Xor, x, B.Bin (B.And, a, b))
  | 7, B.Bin (B.Xor, B.Bin (B.And, a, b), x) ->
      Some (x, a, b)
  | _ -> None

let patterns =
  [
    {
      pid = 0;
      pname = "mac";
      semantics = (fun acc a b -> acc + (a * b));
      area = 352;
      latency = 2;
      sw_cycles = 4;
    };
    {
      pid = 1;
      pname = "msub";
      semantics = (fun acc a b -> acc - (a * b));
      area = 352;
      latency = 2;
      sw_cycles = 4;
    };
    {
      pid = 2;
      pname = "add3";
      semantics = (fun acc a b -> acc + a + b);
      area = 64;
      latency = 1;
      sw_cycles = 2;
    };
    {
      pid = 3;
      pname = "shladd";
      semantics = (fun acc a b -> acc + (a lsl (b land 31)));
      area = 80;
      latency = 1;
      sw_cycles = 2;
    };
    {
      pid = 4;
      pname = "mulshr";
      semantics = (fun k a b -> (a * b) asr (k land 31));
      area = 368;
      latency = 2;
      sw_cycles = 4;
    };
    {
      pid = 5;
      pname = "crcstep";
      semantics = (fun x a b -> (x asr 1) lxor (a land b));
      area = 72;
      latency = 1;
      sw_cycles = 3;
    };
    {
      pid = 6;
      pname = "negand";
      semantics = (fun _ a b -> -(a land b));
      area = 48;
      latency = 1;
      sw_cycles = 2;
    };
    {
      pid = 7;
      pname = "andxor";
      semantics = (fun x a b -> x lxor (a land b));
      area = 32;
      latency = 1;
      sw_cycles = 2;
    };
  ]

(* Bottom-up rewrite of one expression with an ordered pattern list. *)
let rec rewrite_expr pats (e : B.expr) : B.expr =
  let e =
    match e with
    | B.Int _ | B.Var _ -> e
    (* Address computations stay on the base ALU: the extension FUs
       model datapath operators, and an opaque [Ext] inside an array
       index defeats the code generator's bounds analysis, forcing a
       runtime clamp that costs more than the fused op saves. *)
    | B.Idx (_, _) -> e
    | B.Bin (op, a, b) -> B.Bin (op, rewrite_expr pats a, rewrite_expr pats b)
    | B.Neg a -> B.Neg (rewrite_expr pats a)
    | B.Not a -> B.Not (rewrite_expr pats a)
    | B.Ext (op, x, a, b) ->
        B.Ext (op, rewrite_expr pats x, rewrite_expr pats a,
               rewrite_expr pats b)
  in
  let rec try_patterns = function
    | [] -> e
    | p :: rest -> (
        match match_pattern p.pid e with
        | Some (x, a, b) -> B.Ext (p.pid, x, a, b)
        | None -> try_patterns rest)
  in
  try_patterns pats

let rec rewrite_stmt pats (s : B.stmt) : B.stmt =
  let re = rewrite_expr pats in
  match s with
  | B.Assign (v, e) -> B.Assign (v, re e)
  | B.Store (a, i, e) -> B.Store (a, i, re e) (* index: see rewrite_expr *)
  | B.If (c, t, f) ->
      B.If (re c, List.map (rewrite_stmt pats) t, List.map (rewrite_stmt pats) f)
  | B.While (c, body, k) -> B.While (re c, List.map (rewrite_stmt pats) body, k)
  | B.For (v, lo, hi, body) ->
      B.For (v, re lo, re hi, List.map (rewrite_stmt pats) body)
  | B.PortOut (p, e) -> B.PortOut (p, re e)
  | B.PortIn _ | B.Recv _ -> s
  | B.Send (c, e) -> B.Send (c, re e)

let rewrite (proc : B.proc) pats =
  { proc with B.body = List.map (rewrite_stmt pats) proc.B.body }

(* Trip-weighted Ext counts after a single-pattern rewrite. *)
let occurrences proc =
  List.filter_map
    (fun p ->
      let rewritten = rewrite proc [ p ] in
      let count = ref 0 in
      let rec expr trip (e : B.expr) =
        match e with
        | B.Int _ | B.Var _ -> ()
        | B.Idx (_, i) -> expr trip i
        | B.Bin (_, a, b) ->
            expr trip a;
            expr trip b
        | B.Neg a | B.Not a -> expr trip a
        | B.Ext (pid, x, a, b) ->
            if pid = p.pid then count := !count + trip;
            expr trip x;
            expr trip a;
            expr trip b
      in
      let rec stmt trip (s : B.stmt) =
        match s with
        | B.Assign (_, e) | B.PortOut (_, e) | B.Send (_, e) -> expr trip e
        | B.Store (_, i, e) ->
            expr trip i;
            expr trip e
        | B.If (c, t, f) ->
            expr trip c;
            List.iter (stmt trip) t;
            List.iter (stmt trip) f
        | B.While (c, body, k) ->
            expr trip c;
            List.iter (stmt (trip * max k 1)) body
        | B.For (v, lo, hi, body) ->
            ignore v;
            expr trip lo;
            expr trip hi;
            let k =
              match (lo, hi) with
              | B.Int l, B.Int h -> max (h - l) 1
              | _ -> 8
            in
            List.iter (stmt (trip * k)) body
        | B.PortIn _ | B.Recv _ -> ()
      in
      List.iter (stmt 1) rewritten.B.body;
      if !count > 0 then Some (p, !count) else None)
    patterns

let select ~budget occs =
  (* 0/1 knapsack over patterns: value = cycles saved, weight = area *)
  let items =
    List.map
      (fun (p, n) -> (p, n * max 0 (p.sw_cycles - p.latency), p.area))
      occs
    |> List.filter (fun (_, v, _) -> v > 0)
  in
  let n = List.length items in
  let arr = Array.of_list items in
  (* DP over budget *)
  let best = Array.make (budget + 1) 0 in
  let take = Array.make_matrix n (budget + 1) false in
  Array.iteri
    (fun i (_, v, w) ->
      for b = budget downto w do
        if best.(b - w) + v > best.(b) then begin
          best.(b) <- best.(b - w) + v;
          take.(i).(b) <- true
        end
      done)
    arr;
  (* reconstruct *)
  let selected = ref [] in
  let b = ref budget in
  for i = n - 1 downto 0 do
    if take.(i).(!b) then begin
      let p, _, w = arr.(i) in
      selected := p :: !selected;
      b := !b - w
    end
  done;
  !selected

let ext_evaluator pats ext acc a b =
  match List.find_opt (fun p -> p.pid = ext) pats with
  | Some p -> p.semantics acc a b
  | None ->
      invalid_arg (Printf.sprintf "Asip: extension opcode %d not selected" ext)

type report = {
  selected : pattern list;
  occurrence_counts : (string * int) list;
  fu_area : int;
  base_cycles : int;
  asip_cycles : int;
  speedup : float;
  verified : bool;
}

let measure ?(env = Cpu.default_env) proc bindings =
  let results, cpu = Codegen.run_compiled ~env proc bindings in
  (results, Cpu.cycles cpu)

let design ?(budget = 800) proc bindings =
  let occs = occurrences proc in
  let selected = select ~budget occs in
  let base_results, base_cycles = measure proc bindings in
  let rewritten = rewrite proc selected in
  let env =
    {
      Cpu.default_env with
      Cpu.custom = ext_evaluator selected;
      custom_latency =
        (fun ext ->
          match List.find_opt (fun p -> p.pid = ext) selected with
          | Some p -> p.latency
          | None -> 1);
    }
  in
  let asip_results, asip_cycles = measure ~env rewritten bindings in
  {
    selected;
    occurrence_counts = List.map (fun (p, n) -> (p.pname, n)) occs;
    fu_area = List.fold_left (fun acc p -> acc + p.area) 0 selected;
    base_cycles;
    asip_cycles;
    speedup =
      (if asip_cycles = 0 then 1.0
       else float_of_int base_cycles /. float_of_int asip_cycles);
    verified = base_results = asip_results;
  }

module Reconfig = struct
  type outcome = {
    static_cycles : int;
    dynamic_cycles : int;
    reconfigurations : int;
    static_set : string list;
    winner : string;
  }

  (* cycles of one app under a fixed pattern set *)
  let cycles_with pats (proc, bindings) =
    let rewritten = rewrite proc pats in
    let env =
      {
        Cpu.default_env with
        Cpu.custom = ext_evaluator pats;
        custom_latency =
          (fun ext ->
            match List.find_opt (fun p -> p.pid = ext) pats with
            | Some p -> p.latency
            | None -> 1);
      }
    in
    snd (measure ~env rewritten bindings)

  let best_set capacity app =
    let proc, _ = app in
    select ~budget:capacity (occurrences proc)

  let compare ?(capacity = 800) ?(reconfig_cost = 2000) apps =
    if apps = [] then invalid_arg "Asip.Reconfig.compare: no applications";
    (* static: select on the merged occurrence profile *)
    let merged = Hashtbl.create 8 in
    List.iter
      (fun (proc, _) ->
        List.iter
          (fun (p, n) ->
            let cur =
              try Hashtbl.find merged p.pid with Not_found -> (p, 0)
            in
            Hashtbl.replace merged p.pid (p, snd cur + n))
          (occurrences proc))
      apps;
    let merged_occs = Hashtbl.fold (fun _ pn acc -> pn :: acc) merged [] in
    let merged_occs =
      List.sort (fun (a, _) (b, _) -> compare a.pid b.pid) merged_occs
    in
    let static_set = select ~budget:capacity merged_occs in
    let static_cycles =
      List.fold_left (fun acc app -> acc + cycles_with static_set app) 0 apps
    in
    (* dynamic: per-app best set, reconfiguring when it changes *)
    let sets = List.map (best_set capacity) apps in
    let ids set = List.sort compare (List.map (fun p -> p.pid) set) in
    (* the initial configuration load is free (both static and dynamic
       systems power up configured); only changes between consecutive
       applications count *)
    let reconfigurations =
      match sets with
      | [] -> 0
      | first :: _ ->
          let rec count prev = function
            | [] -> 0
            | s :: rest ->
                (if ids s <> prev && ids s <> [] then 1 else 0)
                + count (if ids s = [] then prev else ids s) rest
          in
          count (ids first) sets
    in
    let dynamic_cycles =
      List.fold_left2
        (fun acc app set -> acc + cycles_with set app)
        0 apps sets
      + (reconfigurations * reconfig_cost)
    in
    {
      static_cycles;
      dynamic_cycles;
      reconfigurations;
      static_set = List.map (fun p -> p.pname) static_set;
      winner =
        (if dynamic_cycles < static_cycles then "dynamic" else "static");
    }
end
