module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module Budget = Codesign_resil.Budget
module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module T = Codesign_bus.Transport
module Device = Codesign_bus.Device
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm

type level = T.level = Pin | Transaction | Driver | Message

let all_levels = T.all_levels
let level_name = T.level_name

type assignment = { src : level; cpu : level; sink : level }

let pure level = { src = level; cpu = level; sink = level }
let is_pure a = a.cpu = a.src && a.cpu = a.sink

let assignment_name a =
  Printf.sprintf "%s:%s:%s" (T.short_name a.src) (T.short_name a.cpu)
    (T.short_name a.sink)

let parse_assignment s =
  match String.split_on_char ':' s with
  | [ one ] -> Result.map pure (T.level_of_string one)
  | [ s1; s2; s3 ] ->
      Result.bind (T.level_of_string s1) (fun src ->
          Result.bind (T.level_of_string s2) (fun cpu ->
              Result.map
                (fun sink -> { src; cpu; sink })
                (T.level_of_string s3)))
  | _ ->
      Error
        (Printf.sprintf
           "bad level assignment %S (expected LEVEL or SRC:CPU:SINK)" s)

let ladder_position a = T.rank a.src + T.rank a.cpu + T.rank a.sink

type outcome = Completed | Not_halted of string | Exhausted of string

type metrics = {
  level : level;
  assignment : assignment;
  outcome : outcome;
  checksum : int;
  sim_cycles : int;
  events : int;
  activations : int;
  bus_ops : int;
}

(* FIFO-fair mutex used to serialise processes on one CPU or one
   hardware engine. *)
module Mutex = struct
  type t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

  let create () = { held = false; waiters = Queue.create () }

  let acquire t =
    if t.held then
      K.suspend ~register:(fun resume -> Queue.push resume t.waiters)
    else t.held <- true

  let release t =
    if Queue.is_empty t.waiters then t.held <- false
    else (Queue.pop t.waiters) ()
end

(* ------------------------------------------------------------------ *)
(* The fixed echo application of the abstraction-ladder experiment     *)
(* ------------------------------------------------------------------ *)

let echo_app ~items ~work =
  {
    B.name = "echo";
    params = [];
    arrays = [];
    results = [ "sum" ];
    body =
      [
        B.Assign ("sum", B.Int 0);
        B.For
          ( "p",
            B.Int 0,
            B.Int items,
            [
              B.PortIn ("x", 0);
              B.Assign ("acc", B.Var "x");
              B.For
                ( "w",
                  B.Int 0,
                  B.Int work,
                  [
                    B.Assign
                      ( "acc",
                        B.Bin
                          ( B.Shr,
                            B.Bin
                              ( B.Add,
                                B.Bin (B.Mul, B.Var "acc", B.Int 3),
                                B.Var "x" ),
                            B.Int 1 ) );
                  ] );
              B.PortOut (1, B.Var "acc");
              B.Assign ("sum", B.Bin (B.Add, B.Var "sum", B.Var "acc"));
            ] );
      ];
  }

let src_base = 0x10000
let sink_base = 0x10010

(* statement cost used for approximate software timing at Message level *)
let message_sw_stmt_cycles = 8

(* One generic pipeline over the whole Fig. 3 grid.  Each component of
   the assignment picks the transport modelling its interface (src and
   sink) or the software model itself (cpu): everything past
   construction is level-blind — it talks to a {!Transport.t}.

   The four pure assignments are required to be observationally
   identical (same metrics, byte for byte) to the dedicated per-level
   runners this function replaced, so construction and spawn order below
   deliberately mirror them: source-side component, sink-side component,
   message endpoint processes, memory map, transports (a shared one when
   both interfaces sit on the same bus rung), software last. *)
let run_echo_assignment ~levels ?(wrap = fun t -> t) ?budget ?(items = 16)
    ?(work = 8) ?(src_period = 200) ?(sink_period = 120) ?(quantum = 1) () =
  if quantum < 1 then
    invalid_arg "Cosim.run_echo_assignment: quantum must be >= 1";
  let { src = src_lvl; cpu = cpu_lvl; sink = sink_lvl } = levels in
  let k = K.create () in
  let gen i = ((i * 7) mod 23) - 5 in
  (* source side: a bus-mapped stream device, or a kernel channel fed by
     a producer process when the interface is at Message level.  The
     device FIFO holds the full stream so a slow consumer loses
     nothing. *)
  let src_dev, c_in =
    match src_lvl with
    | Message -> (None, Some (Ch.create ~depth:4 ~name:"in" k () : int Ch.t))
    | _ ->
        ( Some
            (Device.Stream_src.create ~depth:items ~period:src_period
               ~count:items ~gen k ()),
          None )
  in
  let sink_dev, c_out =
    match sink_lvl with
    | Message ->
        (None, Some (Ch.create ~depth:4 ~name:"out" k () : int Ch.t))
    | _ -> (Some (Device.Stream_sink.create ~period:sink_period k ()), None)
  in
  let msg_checksum = ref 0 in
  let sink_done_at = ref 0 in
  (match c_in with
  | Some c ->
      K.spawn ~name:"source" k (fun () ->
          for i = 0 to items - 1 do
            K.wait src_period;
            Ch.send c (gen i)
          done)
  | None -> ());
  (match c_out with
  | Some c ->
      K.spawn ~name:"sink" k (fun () ->
          for _ = 1 to items do
            let v = Ch.recv c in
            msg_checksum := !msg_checksum + v;
            K.wait sink_period
          done;
          sink_done_at := K.now k)
  | None -> ());
  let regions =
    (match src_dev with
    | Some d -> [ Device.Stream_src.region ~name:"src" ~base:src_base d ]
    | None -> [])
    @
    match sink_dev with
    | Some d -> [ Device.Stream_sink.region ~name:"sink" ~base:sink_base d ]
    | None -> []
  in
  let map = if regions = [] then None else Some (M.create regions) in
  (* bus-rung transports are memoized per level: when both interfaces
     sit on the same rung they share one bus, exactly as the pure-level
     system had *)
  let made : (level * T.t) list ref = ref [] in
  let bus_transport lvl =
    match List.assoc_opt lvl !made with
    | Some t -> t
    | None ->
        let m = Option.get map in
        let t =
          wrap
            (match lvl with
            | Pin -> T.pin k m
            | Transaction -> T.tlm k m
            | Driver -> T.driver m
            | Message -> assert false)
        in
        made := !made @ [ (lvl, t) ];
        t
  in
  let tr_src =
    match (src_lvl, c_in) with
    | Message, Some c -> wrap (T.message ~recv:[ (src_base, c) ] ())
    | _ -> bus_transport src_lvl
  in
  let tr_sink =
    match (sink_lvl, c_out) with
    | Message, Some c -> wrap (T.message ~send:[ (sink_base, c) ] ())
    | _ -> bus_transport sink_lvl
  in
  let transports =
    if tr_sink == tr_src then [ tr_src ] else [ tr_src; tr_sink ]
  in
  let bus_ops () =
    List.fold_left (fun a t -> a + (t.T.stats ()).T.ops) 0 transports
  in
  (* software more abstract than an interface sees the detailed medium
     through the re-labelling transactor: its blocking accesses expand
     into the medium's own protocol underneath *)
  let present tr =
    if T.rank cpu_lvl > T.rank tr.T.level then T.view tr ~as_:cpu_lvl
    else tr
  in
  let io_src = present tr_src and io_sink = present tr_sink in
  (* Temporal decoupling (quantum > 1): the software component accrues
     local cycles and only synchronises with the kernel every [quantum]
     cycles — except that any port access first flushes the accrued
     lead, so I/O always happens at the correct simulated time relative
     to the component's own clock (the loosely-timed "sync before
     communication" rule).  At quantum = 1 the flush hook stays a no-op
     and the historic per-statement paths below run unchanged. *)
  let flush_sw = ref (fun () -> ()) in
  let port_in () =
    !flush_sw ();
    io_src.T.wait_ready src_base;
    io_src.T.read (src_base + 1)
  in
  let port_out v =
    !flush_sw ();
    io_sink.T.wait_ready sink_base;
    io_sink.T.write (sink_base + 1) v
  in
  let cpu_done_at = ref 0 in
  let sw_done = ref false in
  let iss =
    match cpu_lvl with
    | Message ->
        (* no ISS: the behaviour interprets with statement-approximate
           timing, as communicating-process software *)
        let pending = ref 0 in
        let flush () =
          if !pending > 0 then begin
            let p = !pending in
            pending := 0;
            K.wait p
          end
        in
        if quantum > 1 then flush_sw := flush;
        K.spawn ~name:"sw" k (fun () ->
            let io =
              {
                B.null_io with
                B.port_in = (fun _ -> port_in ());
                port_out = (fun _ v -> port_out v);
              }
            in
            let tick =
              if quantum = 1 then fun () -> K.wait message_sw_stmt_cycles
              else fun () ->
                pending := !pending + message_sw_stmt_cycles;
                if !pending >= quantum then flush ()
            in
            ignore (B.run ~io ~tick (echo_app ~items ~work) []);
            flush ();
            sw_done := true;
            cpu_done_at := K.now k);
        None
    | _ ->
        let env =
          {
            Cpu.default_env with
            Cpu.port_in = (fun _port -> port_in ());
            port_out = (fun _port v -> port_out v);
          }
        in
        let items_code, lay = Codegen.compile (echo_app ~items ~work) in
        let img = Asm.assemble items_code in
        let cpu = Cpu.create ~env img.Asm.code in
        (* [synced] = cycles already turned into kernel waits; the
           flush settles the difference against the CPU's own counter,
           which is exact at every hook call site because the block
           tier updates [Cpu.cycles] before dispatching any
           hook-calling instruction through [Cpu.step] *)
        let synced = ref 0 in
        let flush () =
          let d = Cpu.cycles cpu - !synced in
          if d > 0 then begin
            synced := !synced + d;
            K.wait d
          end
        in
        if quantum > 1 then flush_sw := flush;
        K.spawn ~name:"cpu" k (fun () ->
            if quantum = 1 then
              while Cpu.status cpu = Cpu.Running do
                let cy = Cpu.step cpu in
                if cy > 0 then K.wait cy
              done
            else
              while Cpu.status cpu = Cpu.Running do
                (* run up to [quantum] cycles ahead on the block tier,
                   then settle; port I/O inside the burst flushes via
                   [flush_sw] before touching the transport *)
                let target = !synced + quantum in
                while
                  Cpu.status cpu = Cpu.Running && Cpu.cycles cpu < target
                do
                  ignore
                    (Cpu.run_blocks cpu ~fuel:(target - Cpu.cycles cpu))
                done;
                flush ()
              done;
            cpu_done_at := K.now k);
        Some (cpu, lay)
  in
  let pure_message =
    src_lvl = Message && cpu_lvl = Message && sink_lvl = Message
  in
  (* Without a budget this is the historic path, byte for byte.  With
     one, the run is additionally bounded by the budget's fuel (capped
     at the historic 50M for bus-coupled assignments) and wall
     deadline; exhaustion surfaces as [Exhausted], kernel intact. *)
  let st, exhausted =
    match budget with
    | None ->
        let st =
          if pure_message then K.run k
          else K.run ~until:50_000_000 ~expect_quiescent:true k
        in
        (st, None)
    | Some b -> (
        let b =
          if pure_message then b
          else
            let fuel =
              match Budget.fuel_left b with
              | Some f -> min f 50_000_000
              | None -> 50_000_000
            in
            Budget.with_fuel b ~fuel
        in
        match Budget.run_kernel b ~expect_quiescent:(not pure_message) k with
        | Budget.Done st -> (st, None)
        | Budget.Exhausted e -> (K.stats k, Some e))
  in
  let outcome =
    match exhausted with
    | Some e -> Exhausted ("budget exhausted: " ^ Budget.exhausted_name e)
    | None -> (
        match iss with
        | Some (cpu, _) -> (
            match Cpu.status cpu with
            | Cpu.Halted -> Completed
            | Cpu.Running ->
                Not_halted "timeout: CPU still running at simulation bound"
            | Cpu.Trapped m -> Not_halted ("trapped: " ^ m))
        | None ->
            if pure_message || !sw_done then Completed
            else
              Not_halted "timeout: software still running at simulation bound")
  in
  let checksum =
    match sink_dev with
    | Some d -> List.fold_left ( + ) 0 (Device.Stream_sink.accepted d)
    | None -> !msg_checksum
  in
  (* cross-check against the software's own accumulator (only meaningful
     once the program ran to completion) *)
  (match iss with
  | Some (cpu, lay) when outcome = Completed ->
      assert (checksum = Codegen.result lay cpu "sum")
  | _ -> ());
  let sim_cycles =
    match (iss, c_out) with
    | Some _, _ -> if outcome = Completed then !cpu_done_at else K.now k
    | None, Some _ -> !sink_done_at
    | None, None -> if !sw_done then !cpu_done_at else K.now k
  in
  {
    level = cpu_lvl;
    assignment = levels;
    outcome;
    checksum;
    sim_cycles;
    events = st.K.events;
    activations = st.K.activations;
    bus_ops = bus_ops ();
  }

let run_echo_system ~level ?(items = 16) ?(work = 8) ?(src_period = 200)
    ?(sink_period = 120) () =
  run_echo_assignment ~levels:(pure level) ~items ~work ~src_period
    ~sink_period ()

(* ------------------------------------------------------------------ *)
(* Process-network execution                                           *)
(* ------------------------------------------------------------------ *)

type network_outcome =
  | Net_completed
  | Net_trapped of string * string  (* (process, trap message) *)

type network_result = {
  end_time : int;
  net_events : int;
  net_activations : int;
  net_outcome : network_outcome;
  port_writes : (string * int * int) list;
  hw_area : int;
  sw_results : (string * (string * int) list) list;
}

(* trip-weighted dynamic statement estimate (matches the ASIP walk) *)
let rec dyn_stmts trip (s : B.stmt) =
  match s with
  | B.If (_, t, f) ->
      trip + dyn_list trip t + dyn_list trip f
  | B.While (_, body, kk) -> trip + dyn_list (trip * max kk 1) body
  | B.For (_, lo, hi, body) ->
      let kk =
        match (lo, hi) with
        | B.Int l, B.Int h -> max (h - l) 1
        | _ -> 8
      in
      trip + dyn_list (trip * kk) body
  | _ -> trip

and dyn_list trip l = List.fold_left (fun a s -> a + dyn_stmts trip s) 0 l

let hw_stmt_cycles proc =
  let est = Codesign_hls.Hls.estimate proc in
  let d = max 1 (dyn_list 1 proc.B.body) in
  max 1 (est.Codesign_hls.Hls.cycles / d)

let chan_port_base = 100

let run_network ?hw_engines ?sw_cpi ?(cross_cost = 0) ?until (net : Pn.t) =
  ignore sw_cpi;
  let k = K.create () in
  let channels =
    List.map
      (fun (c : Pn.channel) ->
        (c.Pn.cname, Ch.create ~depth:c.Pn.depth ~name:c.Pn.cname k ()))
      net.Pn.channels
  in
  let chan_ports =
    List.mapi (fun i (c : Pn.channel) -> (c.Pn.cname, chan_port_base + i))
      net.Pn.channels
  in
  let chan_of_port p =
    let name, _ =
      List.find (fun (_, port) -> port = p) chan_ports
    in
    List.assoc name channels
  in
  let port_writes = ref [] in
  (* engine id of every process: software = -1, hardware = its engine *)
  let engine_id_of_proc name =
    match List.find_opt (fun (p, _) -> p.B.name = name) net.Pn.procs with
    | Some (_, Pn.Sw) -> -1
    | Some (_, Pn.Hw) -> (
        match hw_engines with
        | Some l -> ( match List.assoc_opt name l with Some e -> e | None -> Hashtbl.hash name )
        | None -> Hashtbl.hash name)
    | None -> -1
  in
  let send_cost_of_chan =
    List.map
      (fun (c : Pn.channel) ->
        let crossing = engine_id_of_proc c.Pn.src <> engine_id_of_proc c.Pn.dst in
        (c.Pn.cname, if crossing then cross_cost else 0))
      net.Pn.channels
  in
  let chan_send_cost name = List.assoc name send_cost_of_chan in
  let port_send_cost p =
    let name, _ = List.find (fun (_, port) -> port = p) chan_ports in
    chan_send_cost name
  in
  let cpu_token = Mutex.create () in
  let engine_tokens : (int, Mutex.t) Hashtbl.t = Hashtbl.create 4 in
  let engine_of =
    match hw_engines with
    | Some l -> fun name -> List.assoc_opt name l
    | None -> fun _ -> None
  in
  let next_auto_engine = ref 1000 in
  let sw_results = ref [] in
  let traps = ref [] in
  let hw_area = ref 0 in
  let end_time = ref 0 in
  List.iter
    (fun ((proc : B.proc), mapping) ->
      match mapping with
      | Pn.Sw ->
          let items, lay = Codegen.compile ~chan_ports proc in
          let img = Asm.assemble items in
          let env =
            {
              Cpu.default_env with
              Cpu.port_in =
                (fun p ->
                  if p >= chan_port_base then begin
                    Mutex.release cpu_token;
                    let v = Ch.recv (chan_of_port p) in
                    Mutex.acquire cpu_token;
                    v
                  end
                  else 0);
              port_out =
                (fun p v ->
                  if p >= chan_port_base then begin
                    let cost = port_send_cost p in
                    if cost > 0 then K.wait cost;
                    Mutex.release cpu_token;
                    Ch.send (chan_of_port p) v;
                    Mutex.acquire cpu_token
                  end
                  else
                    port_writes := (proc.B.name, p, v) :: !port_writes);
            }
          in
          let c = Cpu.create ~env img.Asm.code in
          K.spawn ~name:proc.B.name k (fun () ->
              Mutex.acquire cpu_token;
              while Cpu.status c = Cpu.Running do
                let cy = Cpu.step c in
                if cy > 0 then K.wait cy
              done;
              Mutex.release cpu_token;
              (* never raise from inside a kernel process: a trap is
                 recorded as data and the process ends cleanly, so the
                 rest of the network keeps simulating and the caller
                 sees a structured outcome instead of an exception
                 unwinding through the scheduler *)
              (match Cpu.status c with
              | Cpu.Trapped m -> traps := (proc.B.name, m) :: !traps
              | _ ->
                  sw_results :=
                    ( proc.B.name,
                      List.map
                        (fun v -> (v, Codegen.result lay c v))
                        proc.B.results )
                    :: !sw_results);
              if K.now k > !end_time then end_time := K.now k)
      | Pn.Hw ->
          let est = Codesign_hls.Hls.estimate proc in
          hw_area := !hw_area + est.Codesign_hls.Hls.area;
          let stmt_cost = hw_stmt_cycles proc in
          let engine_id =
            match engine_of proc.B.name with
            | Some e -> e
            | None ->
                incr next_auto_engine;
                !next_auto_engine
          in
          let token =
            match Hashtbl.find_opt engine_tokens engine_id with
            | Some t -> t
            | None ->
                let t = Mutex.create () in
                Hashtbl.replace engine_tokens engine_id t;
                t
          in
          let io =
            {
              B.null_io with
              B.recv =
                (fun ch ->
                  Mutex.release token;
                  let v = Ch.recv (List.assoc ch channels) in
                  Mutex.acquire token;
                  v);
              send =
                (fun ch v ->
                  let cost = chan_send_cost ch in
                  if cost > 0 then K.wait cost;
                  Mutex.release token;
                  Ch.send (List.assoc ch channels) v;
                  Mutex.acquire token);
              port_out =
                (fun p v ->
                  port_writes := (proc.B.name, p, v) :: !port_writes);
            }
          in
          K.spawn ~name:proc.B.name k (fun () ->
              Mutex.acquire token;
              ignore
                (B.run ~io ~tick:(fun () -> K.wait stmt_cost) proc []);
              Mutex.release token;
              if K.now k > !end_time then end_time := K.now k))
    net.Pn.procs;
  let st =
    match until with
    | Some u -> K.run ~until:u ~expect_quiescent:true k
    | None -> K.run k
  in
  {
    end_time = !end_time;
    net_events = st.K.events;
    net_activations = st.K.activations;
    net_outcome =
      (match List.rev !traps with
      | [] -> Net_completed
      | (p, m) :: _ -> Net_trapped (p, m));
    port_writes = List.rev !port_writes;
    hw_area = !hw_area;
    sw_results = List.rev !sw_results;
  }
