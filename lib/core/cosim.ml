module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module Device = Codesign_bus.Device
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm

type level = Pin | Transaction | Driver | Message

let level_name = function
  | Pin -> "pin/signal"
  | Transaction -> "bus transaction"
  | Driver -> "driver call"
  | Message -> "send/receive/wait"

type outcome = Completed | Not_halted of string

type metrics = {
  level : level;
  outcome : outcome;
  checksum : int;
  sim_cycles : int;
  events : int;
  activations : int;
  bus_ops : int;
}

(* FIFO-fair mutex used to serialise processes on one CPU or one
   hardware engine. *)
module Mutex = struct
  type t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

  let create () = { held = false; waiters = Queue.create () }

  let acquire t =
    if t.held then
      K.suspend ~register:(fun resume -> Queue.push resume t.waiters)
    else t.held <- true

  let release t =
    if Queue.is_empty t.waiters then t.held <- false
    else (Queue.pop t.waiters) ()
end

(* ------------------------------------------------------------------ *)
(* The fixed echo application of the abstraction-ladder experiment     *)
(* ------------------------------------------------------------------ *)

let echo_app ~items ~work =
  {
    B.name = "echo";
    params = [];
    arrays = [];
    results = [ "sum" ];
    body =
      [
        B.Assign ("sum", B.Int 0);
        B.For
          ( "p",
            B.Int 0,
            B.Int items,
            [
              B.PortIn ("x", 0);
              B.Assign ("acc", B.Var "x");
              B.For
                ( "w",
                  B.Int 0,
                  B.Int work,
                  [
                    B.Assign
                      ( "acc",
                        B.Bin
                          ( B.Shr,
                            B.Bin
                              ( B.Add,
                                B.Bin (B.Mul, B.Var "acc", B.Int 3),
                                B.Var "x" ),
                            B.Int 1 ) );
                  ] );
              B.PortOut (1, B.Var "acc");
              B.Assign ("sum", B.Bin (B.Add, B.Var "sum", B.Var "acc"));
            ] );
      ];
  }

let src_base = 0x10000
let sink_base = 0x10010

let run_cpu_level ~level ~items ~work ~src_period ~sink_period =
  let k = K.create () in
  (* the FIFO holds the full stream so a slow consumer loses nothing *)
  let src =
    Device.Stream_src.create ~depth:items ~period:src_period ~count:items
      ~gen:(fun i -> ((i * 7) mod 23) - 5)
      k ()
  in
  let sink = Device.Stream_sink.create ~period:sink_period k () in
  let map =
    M.create
      [
        Device.Stream_src.region ~name:"src" ~base:src_base src;
        Device.Stream_sink.region ~name:"sink" ~base:sink_base sink;
      ]
  in
  let driver_call_cost = 6 (* lumped cost of one driver entry *) in
  let driver_ops = ref 0 in
  let env, bus_ops =
    match level with
    | Pin | Transaction ->
        (* every register access is an individual, timed bus transfer;
           the polled driver's status spins are real bus traffic *)
        let iface =
          match level with
          | Pin -> Bus.pin_iface (Bus.Pin.create k map)
          | _ -> Bus.tlm_iface (Bus.Tlm.create k map)
        in
        ( {
            Cpu.default_env with
            Cpu.port_in =
              (fun _port ->
                let rec poll () =
                  if iface.Bus.bus_read src_base > 0 then ()
                  else begin
                    K.wait 8;
                    poll ()
                  end
                in
                poll ();
                iface.Bus.bus_read (src_base + 1));
            port_out =
              (fun _port v ->
                let rec poll () =
                  if iface.Bus.bus_read sink_base > 0 then ()
                  else begin
                    K.wait 8;
                    poll ()
                  end
                in
                poll ();
                iface.Bus.bus_write (sink_base + 1) v);
          },
          fun () ->
            (iface.Bus.bus_stats ()).Bus.reads
            + (iface.Bus.bus_stats ()).Bus.writes )
    | Driver ->
        (* abstraction: one lumped driver call per transfer — status
           polling and the data access are not individual bus events;
           the call costs a fixed overhead and device readiness is
           observed functionally *)
        ( {
            Cpu.default_env with
            Cpu.port_in =
              (fun _port ->
                incr driver_ops;
                let rec wait_ready () =
                  if M.read map src_base > 0 then ()
                  else begin
                    K.wait 8;
                    wait_ready ()
                  end
                in
                wait_ready ();
                K.wait driver_call_cost;
                M.read map (src_base + 1));
            port_out =
              (fun _port v ->
                incr driver_ops;
                let rec wait_ready () =
                  if M.read map sink_base > 0 then ()
                  else begin
                    K.wait 8;
                    wait_ready ()
                  end
                in
                wait_ready ();
                K.wait driver_call_cost;
                M.write map (sink_base + 1) v);
          },
          fun () -> !driver_ops )
    | Message -> assert false
  in
  let items_code, lay = Codegen.compile (echo_app ~items ~work) in
  let img = Asm.assemble items_code in
  let cpu = Cpu.create ~env img.Asm.code in
  let done_at = ref 0 in
  K.spawn ~name:"cpu" k (fun () ->
      while Cpu.status cpu = Cpu.Running do
        let cy = Cpu.step cpu in
        if cy > 0 then K.wait cy
      done;
      done_at := K.now k);
  let st = K.run ~until:50_000_000 ~expect_quiescent:true k in
  let outcome =
    match Cpu.status cpu with
    | Cpu.Halted -> Completed
    | Cpu.Running ->
        Not_halted "timeout: CPU still running at simulation bound"
    | Cpu.Trapped m -> Not_halted ("trapped: " ^ m)
  in
  let checksum =
    List.fold_left ( + ) 0 (Device.Stream_sink.accepted sink)
  in
  (* cross-check against the software's own accumulator (only meaningful
     once the program ran to completion) *)
  if outcome = Completed then
    assert (checksum = Codegen.result lay cpu "sum");
  {
    level;
    outcome;
    checksum;
    sim_cycles = (if outcome = Completed then !done_at else K.now k);
    events = st.K.events;
    activations = st.K.activations;
    bus_ops = bus_ops ();
  }

(* statement cost used for approximate software timing at Message level *)
let message_sw_stmt_cycles = 8

let run_message_level ~items ~work ~src_period ~sink_period =
  let k = K.create () in
  let c_in : int Ch.t = Ch.create ~depth:4 ~name:"in" k () in
  let c_out : int Ch.t = Ch.create ~depth:4 ~name:"out" k () in
  K.spawn ~name:"source" k (fun () ->
      for i = 0 to items - 1 do
        K.wait src_period;
        Ch.send c_in (((i * 7) mod 23) - 5)
      done);
  let checksum = ref 0 in
  let done_at = ref 0 in
  K.spawn ~name:"sink" k (fun () ->
      for _ = 1 to items do
        let v = Ch.recv c_out in
        checksum := !checksum + v;
        K.wait sink_period
      done;
      done_at := K.now k);
  K.spawn ~name:"sw" k (fun () ->
      let io =
        {
          B.null_io with
          B.port_in = (fun _ -> Ch.recv c_in);
          port_out = (fun _ v -> Ch.send c_out v);
        }
      in
      ignore
        (B.run ~io
           ~tick:(fun () -> K.wait message_sw_stmt_cycles)
           (echo_app ~items ~work) []));
  let st = K.run k in
  {
    level = Message;
    outcome = Completed;
    checksum = !checksum;
    sim_cycles = !done_at;
    events = st.K.events;
    activations = st.K.activations;
    bus_ops = 0;
  }

let run_echo_system ~level ?(items = 16) ?(work = 8) ?(src_period = 200)
    ?(sink_period = 120) () =
  match level with
  | Message -> run_message_level ~items ~work ~src_period ~sink_period
  | _ -> run_cpu_level ~level ~items ~work ~src_period ~sink_period

(* ------------------------------------------------------------------ *)
(* Process-network execution                                           *)
(* ------------------------------------------------------------------ *)

type network_result = {
  end_time : int;
  net_events : int;
  net_activations : int;
  port_writes : (string * int * int) list;
  hw_area : int;
  sw_results : (string * (string * int) list) list;
}

(* trip-weighted dynamic statement estimate (matches the ASIP walk) *)
let rec dyn_stmts trip (s : B.stmt) =
  match s with
  | B.If (_, t, f) ->
      trip + dyn_list trip t + dyn_list trip f
  | B.While (_, body, kk) -> trip + dyn_list (trip * max kk 1) body
  | B.For (_, lo, hi, body) ->
      let kk =
        match (lo, hi) with
        | B.Int l, B.Int h -> max (h - l) 1
        | _ -> 8
      in
      trip + dyn_list (trip * kk) body
  | _ -> trip

and dyn_list trip l = List.fold_left (fun a s -> a + dyn_stmts trip s) 0 l

let hw_stmt_cycles proc =
  let est = Codesign_hls.Hls.estimate proc in
  let d = max 1 (dyn_list 1 proc.B.body) in
  max 1 (est.Codesign_hls.Hls.cycles / d)

let chan_port_base = 100

let run_network ?hw_engines ?sw_cpi ?(cross_cost = 0) ?until (net : Pn.t) =
  ignore sw_cpi;
  let k = K.create () in
  let channels =
    List.map
      (fun (c : Pn.channel) ->
        (c.Pn.cname, Ch.create ~depth:c.Pn.depth ~name:c.Pn.cname k ()))
      net.Pn.channels
  in
  let chan_ports =
    List.mapi (fun i (c : Pn.channel) -> (c.Pn.cname, chan_port_base + i))
      net.Pn.channels
  in
  let chan_of_port p =
    let name, _ =
      List.find (fun (_, port) -> port = p) chan_ports
    in
    List.assoc name channels
  in
  let port_writes = ref [] in
  (* engine id of every process: software = -1, hardware = its engine *)
  let engine_id_of_proc name =
    match List.find_opt (fun (p, _) -> p.B.name = name) net.Pn.procs with
    | Some (_, Pn.Sw) -> -1
    | Some (_, Pn.Hw) -> (
        match hw_engines with
        | Some l -> ( match List.assoc_opt name l with Some e -> e | None -> Hashtbl.hash name )
        | None -> Hashtbl.hash name)
    | None -> -1
  in
  let send_cost_of_chan =
    List.map
      (fun (c : Pn.channel) ->
        let crossing = engine_id_of_proc c.Pn.src <> engine_id_of_proc c.Pn.dst in
        (c.Pn.cname, if crossing then cross_cost else 0))
      net.Pn.channels
  in
  let chan_send_cost name = List.assoc name send_cost_of_chan in
  let port_send_cost p =
    let name, _ = List.find (fun (_, port) -> port = p) chan_ports in
    chan_send_cost name
  in
  let cpu_token = Mutex.create () in
  let engine_tokens : (int, Mutex.t) Hashtbl.t = Hashtbl.create 4 in
  let engine_of =
    match hw_engines with
    | Some l -> fun name -> List.assoc_opt name l
    | None -> fun _ -> None
  in
  let next_auto_engine = ref 1000 in
  let sw_results = ref [] in
  let hw_area = ref 0 in
  let end_time = ref 0 in
  List.iter
    (fun ((proc : B.proc), mapping) ->
      match mapping with
      | Pn.Sw ->
          let items, lay = Codegen.compile ~chan_ports proc in
          let img = Asm.assemble items in
          let env =
            {
              Cpu.default_env with
              Cpu.port_in =
                (fun p ->
                  if p >= chan_port_base then begin
                    Mutex.release cpu_token;
                    let v = Ch.recv (chan_of_port p) in
                    Mutex.acquire cpu_token;
                    v
                  end
                  else 0);
              port_out =
                (fun p v ->
                  if p >= chan_port_base then begin
                    let cost = port_send_cost p in
                    if cost > 0 then K.wait cost;
                    Mutex.release cpu_token;
                    Ch.send (chan_of_port p) v;
                    Mutex.acquire cpu_token
                  end
                  else
                    port_writes := (proc.B.name, p, v) :: !port_writes);
            }
          in
          let c = Cpu.create ~env img.Asm.code in
          K.spawn ~name:proc.B.name k (fun () ->
              Mutex.acquire cpu_token;
              while Cpu.status c = Cpu.Running do
                let cy = Cpu.step c in
                if cy > 0 then K.wait cy
              done;
              Mutex.release cpu_token;
              (match Cpu.status c with
              | Cpu.Trapped m ->
                  failwith
                    (Printf.sprintf "Cosim.run_network: %s trapped: %s"
                       proc.B.name m)
              | _ -> ());
              sw_results :=
                ( proc.B.name,
                  List.map
                    (fun v -> (v, Codegen.result lay c v))
                    proc.B.results )
                :: !sw_results;
              if K.now k > !end_time then end_time := K.now k)
      | Pn.Hw ->
          let est = Codesign_hls.Hls.estimate proc in
          hw_area := !hw_area + est.Codesign_hls.Hls.area;
          let stmt_cost = hw_stmt_cycles proc in
          let engine_id =
            match engine_of proc.B.name with
            | Some e -> e
            | None ->
                incr next_auto_engine;
                !next_auto_engine
          in
          let token =
            match Hashtbl.find_opt engine_tokens engine_id with
            | Some t -> t
            | None ->
                let t = Mutex.create () in
                Hashtbl.replace engine_tokens engine_id t;
                t
          in
          let io =
            {
              B.null_io with
              B.recv =
                (fun ch ->
                  Mutex.release token;
                  let v = Ch.recv (List.assoc ch channels) in
                  Mutex.acquire token;
                  v);
              send =
                (fun ch v ->
                  let cost = chan_send_cost ch in
                  if cost > 0 then K.wait cost;
                  Mutex.release token;
                  Ch.send (List.assoc ch channels) v;
                  Mutex.acquire token);
              port_out =
                (fun p v ->
                  port_writes := (proc.B.name, p, v) :: !port_writes);
            }
          in
          K.spawn ~name:proc.B.name k (fun () ->
              Mutex.acquire token;
              ignore
                (B.run ~io ~tick:(fun () -> K.wait stmt_cost) proc []);
              Mutex.release token;
              if K.now k > !end_time then end_time := K.now k))
    net.Pn.procs;
  let st =
    match until with
    | Some u -> K.run ~until:u ~expect_quiescent:true k
    | None -> K.run k
  in
  {
    end_time = !end_time;
    net_events = st.K.events;
    net_activations = st.K.activations;
    port_writes = List.rev !port_writes;
    hw_area = !hw_area;
    sw_results = List.rev !sw_results;
  }
