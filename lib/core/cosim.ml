module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module Budget = Codesign_resil.Budget
module K = Codesign_sim.Kernel
module Ch = Codesign_sim.Channel
module Partition = Codesign_sim.Partition
module Pdes = Codesign_par.Pdes
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module T = Codesign_bus.Transport
module Device = Codesign_bus.Device
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm

type level = T.level = Pin | Transaction | Driver | Message

let all_levels = T.all_levels
let level_name = T.level_name

type assignment = { src : level; cpu : level; sink : level }

let pure level = { src = level; cpu = level; sink = level }
let is_pure a = a.cpu = a.src && a.cpu = a.sink

let assignment_name a =
  Printf.sprintf "%s:%s:%s" (T.short_name a.src) (T.short_name a.cpu)
    (T.short_name a.sink)

let parse_assignment s =
  match String.split_on_char ':' s with
  | [ one ] -> Result.map pure (T.level_of_string one)
  | [ s1; s2; s3 ] ->
      Result.bind (T.level_of_string s1) (fun src ->
          Result.bind (T.level_of_string s2) (fun cpu ->
              Result.map
                (fun sink -> { src; cpu; sink })
                (T.level_of_string s3)))
  | _ ->
      Error
        (Printf.sprintf
           "bad level assignment %S (expected LEVEL or SRC:CPU:SINK)" s)

let ladder_position a = T.rank a.src + T.rank a.cpu + T.rank a.sink

type outcome = Completed | Not_halted of string | Exhausted of string

type metrics = {
  level : level;
  assignment : assignment;
  outcome : outcome;
  checksum : int;
  sim_cycles : int;
  events : int;
  activations : int;
  bus_ops : int;
}

(* FIFO-fair mutex used to serialise processes on one CPU or one
   hardware engine. *)
module Mutex = struct
  type t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

  let create () = { held = false; waiters = Queue.create () }

  let acquire t =
    if t.held then
      K.suspend ~register:(fun resume -> Queue.push resume t.waiters)
    else t.held <- true

  let release t =
    if Queue.is_empty t.waiters then t.held <- false
    else (Queue.pop t.waiters) ()
end

(* ------------------------------------------------------------------ *)
(* The fixed echo application of the abstraction-ladder experiment     *)
(* ------------------------------------------------------------------ *)

let echo_app ~items ~work =
  {
    B.name = "echo";
    params = [];
    arrays = [];
    results = [ "sum" ];
    body =
      [
        B.Assign ("sum", B.Int 0);
        B.For
          ( "p",
            B.Int 0,
            B.Int items,
            [
              B.PortIn ("x", 0);
              B.Assign ("acc", B.Var "x");
              B.For
                ( "w",
                  B.Int 0,
                  B.Int work,
                  [
                    B.Assign
                      ( "acc",
                        B.Bin
                          ( B.Shr,
                            B.Bin
                              ( B.Add,
                                B.Bin (B.Mul, B.Var "acc", B.Int 3),
                                B.Var "x" ),
                            B.Int 1 ) );
                  ] );
              B.PortOut (1, B.Var "acc");
              B.Assign ("sum", B.Bin (B.Add, B.Var "sum", B.Var "acc"));
            ] );
      ];
  }

let src_base = 0x10000
let sink_base = 0x10010

(* statement cost used for approximate software timing at Message level *)
let message_sw_stmt_cycles = 8

(* One generic pipeline over the whole Fig. 3 grid.  Each component of
   the assignment picks the transport modelling its interface (src and
   sink) or the software model itself (cpu): everything past
   construction is level-blind — it talks to a {!Transport.t}.

   The four pure assignments are required to be observationally
   identical (same metrics, byte for byte) to the dedicated per-level
   runners this function replaced, so construction and spawn order below
   deliberately mirror them: source-side component, sink-side component,
   message endpoint processes, memory map, transports (a shared one when
   both interfaces sit on the same bus rung), software last. *)
let run_echo_assignment ~levels ?(wrap = fun t -> t) ?budget ?(items = 16)
    ?(work = 8) ?(src_period = 200) ?(sink_period = 120) ?(quantum = 1)
    ?(partitions = 1) ?(link_latency = 0) () =
  if quantum < 1 then
    invalid_arg "Cosim.run_echo_assignment: quantum must be >= 1";
  if partitions < 1 || partitions > 3 then
    invalid_arg
      "Cosim.run_echo_assignment: partitions must be 1 (serial), 2 \
       (src+cpu | sink) or 3 (src | cpu | sink)";
  if link_latency < 0 then
    invalid_arg "Cosim.run_echo_assignment: negative link_latency";
  if partitions > 1 && budget <> None then
    invalid_arg
      "Cosim.run_echo_assignment: a partitioned run cannot be budgeted \
       (Budget drives a single kernel)";
  let { src = src_lvl; cpu = cpu_lvl; sink = sink_lvl } = levels in
  if partitions >= 2 && sink_lvl <> Message then
    invalid_arg
      "Cosim.run_echo_assignment: the sink can only be cut onto its own \
       partition at the message level";
  if partitions = 3 && src_lvl <> Message then
    invalid_arg
      "Cosim.run_echo_assignment: the source can only be cut onto its own \
       partition at the message level";
  (* Partition layout: the bus-coupled components (map, buses, CPU) are
     inseparable; message-level interfaces are the only cut points.
     partitions = 1 keeps the historic single wheel. *)
  let plan = Partition.create ~partitions in
  let p_src, p_cpu, p_sink =
    match partitions with
    | 1 -> (0, 0, 0)
    | 2 -> (0, 0, 1)
    | _ -> (0, 1, 2)
  in
  let k = Partition.kernel plan p_cpu in
  let k_src = Partition.kernel plan p_src in
  let k_sink = Partition.kernel plan p_sink in
  let gen i = ((i * 7) mod 23) - 5 in
  (* source side: a bus-mapped stream device, or a kernel channel fed by
     a producer process when the interface is at Message level.  The
     device FIFO holds the full stream so a slow consumer loses
     nothing.  Channels live on their receiver's wheel: the input
     channel is received by the CPU, the output channel by the sink. *)
  let src_dev, c_in =
    match src_lvl with
    | Message ->
        ( None,
          Some
            (Ch.create ~depth:4 ~latency:link_latency ~name:"in" k ()
              : int Ch.t) )
    | _ ->
        ( Some
            (Device.Stream_src.create ~depth:items ~period:src_period
               ~count:items ~gen k_src ()),
          None )
  in
  let sink_dev, c_out =
    match sink_lvl with
    | Message ->
        ( None,
          Some
            (Ch.create ~depth:4 ~latency:link_latency ~name:"out" k_sink ()
              : int Ch.t) )
    | _ ->
        (Some (Device.Stream_sink.create ~period:sink_period k_sink ()), None)
  in
  let msg_checksum = ref 0 in
  let sink_done_at = ref 0 in
  (match c_in with
  | Some c ->
      K.spawn ~name:"source" k_src (fun () ->
          for i = 0 to items - 1 do
            K.wait src_period;
            Ch.send c (gen i)
          done)
  | None -> ());
  (match c_out with
  | Some c ->
      K.spawn ~name:"sink" k_sink (fun () ->
          for _ = 1 to items do
            let v = Ch.recv c in
            msg_checksum := !msg_checksum + v;
            K.wait sink_period
          done;
          sink_done_at := K.now k_sink)
  | None -> ());
  let regions =
    (match src_dev with
    | Some d -> [ Device.Stream_src.region ~name:"src" ~base:src_base d ]
    | None -> [])
    @
    match sink_dev with
    | Some d -> [ Device.Stream_sink.region ~name:"sink" ~base:sink_base d ]
    | None -> []
  in
  let map = if regions = [] then None else Some (M.create regions) in
  (* bus-rung transports are memoized per level: when both interfaces
     sit on the same rung they share one bus, exactly as the pure-level
     system had *)
  let made : (level * T.t) list ref = ref [] in
  let bus_transport lvl =
    match List.assoc_opt lvl !made with
    | Some t -> t
    | None ->
        let m = Option.get map in
        let t =
          wrap
            (match lvl with
            | Pin -> T.pin k m
            | Transaction -> T.tlm k m
            | Driver -> T.driver m
            | Message -> assert false)
        in
        made := !made @ [ (lvl, t) ];
        t
  in
  let tr_src =
    match (src_lvl, c_in) with
    | Message, Some c -> wrap (T.message ~recv:[ (src_base, c) ] ())
    | _ -> bus_transport src_lvl
  in
  let tr_sink =
    match (sink_lvl, c_out) with
    | Message, Some c -> wrap (T.message ~send:[ (sink_base, c) ] ())
    | _ -> bus_transport sink_lvl
  in
  let transports =
    if tr_sink == tr_src then [ tr_src ] else [ tr_src; tr_sink ]
  in
  (* A cut interface must guarantee a minimum latency between a send and
     its earliest remote effect: that is exactly the transport's
     declared lookahead, so the partition boundary is checked there
     rather than against any backend-specific knob. *)
  (if partitions > 1 then
     let check what (tr : T.t) =
       if tr.T.lookahead < 1 then
         invalid_arg
           (Printf.sprintf
              "Cosim.run_echo_assignment: the %s interface transport has \
               zero lookahead and cannot cross a partition boundary (give \
               its channels latency >= 1, e.g. link_latency)"
              what)
     in
     check "sink" tr_sink;
     if partitions = 3 then check "src" tr_src);
  if p_cpu <> p_src then
    Partition.route_channel plan ~src:p_src ~dst:p_cpu (Option.get c_in);
  if p_sink <> p_cpu then
    Partition.route_channel plan ~src:p_cpu ~dst:p_sink (Option.get c_out);
  let bus_ops () =
    List.fold_left (fun a t -> a + (t.T.stats ()).T.ops) 0 transports
  in
  (* software more abstract than an interface sees the detailed medium
     through the re-labelling transactor: its blocking accesses expand
     into the medium's own protocol underneath *)
  let present tr =
    if T.rank cpu_lvl > T.rank tr.T.level then T.view tr ~as_:cpu_lvl
    else tr
  in
  let io_src = present tr_src and io_sink = present tr_sink in
  (* Temporal decoupling (quantum > 1): the software component accrues
     local cycles and only synchronises with the kernel every [quantum]
     cycles — except that any port access first flushes the accrued
     lead, so I/O always happens at the correct simulated time relative
     to the component's own clock (the loosely-timed "sync before
     communication" rule).  At quantum = 1 the flush hook stays a no-op
     and the historic per-statement paths below run unchanged. *)
  let flush_sw = ref (fun () -> ()) in
  let port_in () =
    !flush_sw ();
    io_src.T.wait_ready src_base;
    io_src.T.read (src_base + 1)
  in
  let port_out v =
    !flush_sw ();
    io_sink.T.wait_ready sink_base;
    io_sink.T.write (sink_base + 1) v
  in
  let cpu_done_at = ref 0 in
  let sw_done = ref false in
  let iss =
    match cpu_lvl with
    | Message ->
        (* no ISS: the behaviour interprets with statement-approximate
           timing, as communicating-process software *)
        let pending = ref 0 in
        let flush () =
          if !pending > 0 then begin
            let p = !pending in
            pending := 0;
            K.wait p
          end
        in
        if quantum > 1 then flush_sw := flush;
        K.spawn ~name:"sw" k (fun () ->
            let io =
              {
                B.null_io with
                B.port_in = (fun _ -> port_in ());
                port_out = (fun _ v -> port_out v);
              }
            in
            let tick =
              if quantum = 1 then fun () -> K.wait message_sw_stmt_cycles
              else fun () ->
                pending := !pending + message_sw_stmt_cycles;
                if !pending >= quantum then flush ()
            in
            ignore (B.run ~io ~tick (echo_app ~items ~work) []);
            flush ();
            sw_done := true;
            cpu_done_at := K.now k);
        None
    | _ ->
        let env =
          {
            Cpu.default_env with
            Cpu.port_in = (fun _port -> port_in ());
            port_out = (fun _port v -> port_out v);
          }
        in
        let items_code, lay = Codegen.compile (echo_app ~items ~work) in
        let img = Asm.assemble items_code in
        let cpu = Cpu.create ~env img.Asm.code in
        (* [synced] = cycles already turned into kernel waits; the
           flush settles the difference against the CPU's own counter,
           which is exact at every hook call site because the block
           tier updates [Cpu.cycles] before dispatching any
           hook-calling instruction through [Cpu.step] *)
        let synced = ref 0 in
        let flush () =
          let d = Cpu.cycles cpu - !synced in
          if d > 0 then begin
            synced := !synced + d;
            K.wait d
          end
        in
        if quantum > 1 then flush_sw := flush;
        K.spawn ~name:"cpu" k (fun () ->
            if quantum = 1 then
              while Cpu.status cpu = Cpu.Running do
                let cy = Cpu.step cpu in
                if cy > 0 then K.wait cy
              done
            else
              while Cpu.status cpu = Cpu.Running do
                (* run up to [quantum] cycles ahead on the block tier,
                   then settle; port I/O inside the burst flushes via
                   [flush_sw] before touching the transport *)
                let target = !synced + quantum in
                while
                  Cpu.status cpu = Cpu.Running && Cpu.cycles cpu < target
                do
                  ignore
                    (Cpu.run_blocks cpu ~fuel:(target - Cpu.cycles cpu))
                done;
                flush ()
              done;
            cpu_done_at := K.now k);
        Some (cpu, lay)
  in
  let pure_message =
    src_lvl = Message && cpu_lvl = Message && sink_lvl = Message
  in
  (* Without a budget this is the historic path, byte for byte.  With
     one, the run is additionally bounded by the budget's fuel (capped
     at the historic 50M for bus-coupled assignments) and wall
     deadline; exhaustion surfaces as [Exhausted], kernel intact. *)
  let st, exhausted =
    match budget with
    | None ->
        let st =
          if pure_message then Pdes.run plan
          else Pdes.run ~until:50_000_000 ~expect_quiescent:true plan
        in
        (st, None)
    | Some b -> (
        let b =
          if pure_message then b
          else
            let fuel =
              match Budget.fuel_left b with
              | Some f -> min f 50_000_000
              | None -> 50_000_000
            in
            Budget.with_fuel b ~fuel
        in
        match Budget.run_kernel b ~expect_quiescent:(not pure_message) k with
        | Budget.Done st -> (st, None)
        | Budget.Exhausted e -> (K.stats k, Some e))
  in
  let outcome =
    match exhausted with
    | Some e -> Exhausted ("budget exhausted: " ^ Budget.exhausted_name e)
    | None -> (
        match iss with
        | Some (cpu, _) -> (
            match Cpu.status cpu with
            | Cpu.Halted -> Completed
            | Cpu.Running ->
                Not_halted "timeout: CPU still running at simulation bound"
            | Cpu.Trapped m -> Not_halted ("trapped: " ^ m))
        | None ->
            if pure_message || !sw_done then Completed
            else
              Not_halted "timeout: software still running at simulation bound")
  in
  let checksum =
    match sink_dev with
    | Some d -> List.fold_left ( + ) 0 (Device.Stream_sink.accepted d)
    | None -> !msg_checksum
  in
  (* cross-check against the software's own accumulator (only meaningful
     once the program ran to completion) *)
  (match iss with
  | Some (cpu, lay) when outcome = Completed ->
      assert (checksum = Codegen.result lay cpu "sum")
  | _ -> ());
  let sim_cycles =
    match (iss, c_out) with
    | Some _, _ -> if outcome = Completed then !cpu_done_at else st.K.end_time
    | None, Some _ -> !sink_done_at
    | None, None -> if !sw_done then !cpu_done_at else st.K.end_time
  in
  {
    level = cpu_lvl;
    assignment = levels;
    outcome;
    checksum;
    sim_cycles;
    events = st.K.events;
    activations = st.K.activations;
    bus_ops = bus_ops ();
  }

let run_echo_system ~level ?(items = 16) ?(work = 8) ?(src_period = 200)
    ?(sink_period = 120) () =
  run_echo_assignment ~levels:(pure level) ~items ~work ~src_period
    ~sink_period ()

(* ------------------------------------------------------------------ *)
(* Process-network execution                                           *)
(* ------------------------------------------------------------------ *)

type network_outcome =
  | Net_completed
  | Net_trapped of string * string  (* (process, trap message) *)

type network_result = {
  end_time : int;
  net_events : int;
  net_activations : int;
  net_outcome : network_outcome;
  port_writes : (string * int * int) list;
  hw_area : int;
  sw_results : (string * (string * int) list) list;
  chan_stats : (string * Ch.stats) list;
}

(* trip-weighted dynamic statement estimate (matches the ASIP walk) *)
let rec dyn_stmts trip (s : B.stmt) =
  match s with
  | B.If (_, t, f) ->
      trip + dyn_list trip t + dyn_list trip f
  | B.While (_, body, kk) -> trip + dyn_list (trip * max kk 1) body
  | B.For (_, lo, hi, body) ->
      let kk =
        match (lo, hi) with
        | B.Int l, B.Int h -> max (h - l) 1
        | _ -> 8
      in
      trip + dyn_list (trip * kk) body
  | _ -> trip

and dyn_list trip l = List.fold_left (fun a s -> a + dyn_stmts trip s) 0 l

let hw_stmt_cycles proc =
  let est = Codesign_hls.Hls.estimate proc in
  let d = max 1 (dyn_list 1 proc.B.body) in
  max 1 (est.Codesign_hls.Hls.cycles / d)

let chan_port_base = 100

let run_network ?hw_engines ?sw_cpi ?(cross_cost = 0) ?until ?partition
    (net : Pn.t) =
  ignore sw_cpi;
  let proc_names = List.map (fun (p, _) -> p.B.name) net.Pn.procs in
  let proc_name = Array.of_list proc_names in
  let proc_idx name =
    let rec go i = if proc_name.(i) = name then i else go (i + 1) in
    go 0
  in
  (match partition with
  | None -> ()
  | Some assign ->
      List.iter
        (fun (name, p) ->
          if not (List.mem name proc_names) then
            invalid_arg
              (Printf.sprintf
                 "Cosim.run_network: partition map names unknown process %S"
                 name);
          if p < 0 then
            invalid_arg
              (Printf.sprintf
                 "Cosim.run_network: process %S assigned negative partition %d"
                 name p))
        assign);
  let part_of =
    match partition with
    | None -> fun _ -> 0
    | Some assign -> (
        fun name ->
          match List.assoc_opt name assign with Some p -> p | None -> 0)
  in
  let nparts =
    1
    + List.fold_left
        (fun acc (p, _) -> max acc (part_of p.B.name))
        0 net.Pn.procs
  in
  (* Software processes share one CPU token, and hardware processes with
     an explicitly shared engine share that engine's token; token
     holders must therefore be colocated — partitions only communicate
     through latency channels. *)
  (if nparts > 1 then
     let sw_parts =
       List.filter_map
         (fun ((p : B.proc), m) ->
           if m = Pn.Sw then Some (part_of p.B.name) else None)
         net.Pn.procs
       |> List.sort_uniq compare
     in
     match sw_parts with
     | _ :: _ :: _ ->
         invalid_arg
           "Cosim.run_network: software processes share one CPU and must \
            all map to the same partition"
     | _ -> (
         match hw_engines with
         | None -> ()
         | Some l ->
             let seen : (int, string * int) Hashtbl.t = Hashtbl.create 4 in
             List.iter
               (fun ((p : B.proc), m) ->
                 if m = Pn.Hw then
                   match List.assoc_opt p.B.name l with
                   | None -> ()
                   | Some e -> (
                       let part = part_of p.B.name in
                       match Hashtbl.find_opt seen e with
                       | None -> Hashtbl.replace seen e (p.B.name, part)
                       | Some (other, part') when part' <> part ->
                           invalid_arg
                             (Printf.sprintf
                                "Cosim.run_network: processes %S and %S \
                                 share hardware engine %d but map to \
                                 partitions %d and %d"
                                other p.B.name e part' part)
                       | Some _ -> ()))
               net.Pn.procs));
  let plan = Partition.create ~partitions:nparts in
  let kern i = Partition.kernel plan i in
  (* Channels live on their receiver's wheel (delivery executes there);
     a channel whose sender is elsewhere is routed through the plan's
     mailboxes, which demands latency >= 1 (the lookahead guard). *)
  let channels =
    List.map
      (fun (c : Pn.channel) ->
        let dst_part = part_of c.Pn.dst in
        let ch =
          Ch.create ~depth:c.Pn.depth ~latency:c.Pn.latency ~name:c.Pn.cname
            (kern dst_part) ()
        in
        let src_part = part_of c.Pn.src in
        if src_part <> dst_part then
          Partition.route_channel plan ~src:src_part ~dst:dst_part ch;
        (c.Pn.cname, ch))
      net.Pn.channels
  in
  let chan_ports =
    List.mapi (fun i (c : Pn.channel) -> (c.Pn.cname, chan_port_base + i))
      net.Pn.channels
  in
  let chan_of_port p =
    let name, _ =
      List.find (fun (_, port) -> port = p) chan_ports
    in
    List.assoc name channels
  in
  (* Observables are recorded per partition (each array cell is touched
     only by the domain running that partition) and tagged with
     (time, declaration index, per-process sequence); merging is a
     canonical sort on the tags, so the reported order is a property of
     the simulation, not of which wheel or domain hosted the writer. *)
  let pw : (int * int * int * int * int) list ref array =
    Array.init nparts (fun _ -> ref [])
  in
  (* engine id of every process: software = -1, hardware = its engine *)
  let engine_id_of_proc name =
    match List.find_opt (fun (p, _) -> p.B.name = name) net.Pn.procs with
    | Some (_, Pn.Sw) -> -1
    | Some (_, Pn.Hw) -> (
        match hw_engines with
        | Some l -> ( match List.assoc_opt name l with Some e -> e | None -> Hashtbl.hash name )
        | None -> Hashtbl.hash name)
    | None -> -1
  in
  let send_cost_of_chan =
    List.map
      (fun (c : Pn.channel) ->
        let crossing = engine_id_of_proc c.Pn.src <> engine_id_of_proc c.Pn.dst in
        (c.Pn.cname, if crossing then cross_cost else 0))
      net.Pn.channels
  in
  let chan_send_cost name = List.assoc name send_cost_of_chan in
  let port_send_cost p =
    let name, _ = List.find (fun (_, port) -> port = p) chan_ports in
    chan_send_cost name
  in
  let cpu_token = Mutex.create () in
  let engine_tokens : (int, Mutex.t) Hashtbl.t = Hashtbl.create 4 in
  let engine_of =
    match hw_engines with
    | Some l -> fun name -> List.assoc_opt name l
    | None -> fun _ -> None
  in
  let next_auto_engine = ref 1000 in
  let swr : (int * int * (string * int) list) list ref array =
    Array.init nparts (fun _ -> ref [])
  in
  let trp : (int * int * string) list ref array =
    Array.init nparts (fun _ -> ref [])
  in
  let end_times = Array.init nparts (fun _ -> ref 0) in
  let hw_area = ref 0 in
  List.iter
    (fun ((proc : B.proc), mapping) ->
      let my_part = part_of proc.B.name in
      let my_idx = proc_idx proc.B.name in
      let my_k = kern my_part in
      let my_pw = pw.(my_part) and my_end = end_times.(my_part) in
      let my_seq = ref 0 in
      let record_port p v =
        let s = !my_seq in
        my_seq := s + 1;
        my_pw := (K.now my_k, my_idx, s, p, v) :: !my_pw
      in
      match mapping with
      | Pn.Sw ->
          let items, lay = Codegen.compile ~chan_ports proc in
          let img = Asm.assemble items in
          let env =
            {
              Cpu.default_env with
              Cpu.port_in =
                (fun p ->
                  if p >= chan_port_base then begin
                    Mutex.release cpu_token;
                    let v = Ch.recv (chan_of_port p) in
                    Mutex.acquire cpu_token;
                    v
                  end
                  else 0);
              port_out =
                (fun p v ->
                  if p >= chan_port_base then begin
                    let cost = port_send_cost p in
                    if cost > 0 then K.wait cost;
                    Mutex.release cpu_token;
                    Ch.send (chan_of_port p) v;
                    Mutex.acquire cpu_token
                  end
                  else record_port p v);
            }
          in
          let c = Cpu.create ~env img.Asm.code in
          K.spawn ~name:proc.B.name my_k (fun () ->
              Mutex.acquire cpu_token;
              while Cpu.status c = Cpu.Running do
                let cy = Cpu.step c in
                if cy > 0 then K.wait cy
              done;
              Mutex.release cpu_token;
              (* never raise from inside a kernel process: a trap is
                 recorded as data and the process ends cleanly, so the
                 rest of the network keeps simulating and the caller
                 sees a structured outcome instead of an exception
                 unwinding through the scheduler *)
              (match Cpu.status c with
              | Cpu.Trapped m ->
                  trp.(my_part) := (K.now my_k, my_idx, m) :: !(trp.(my_part))
              | _ ->
                  swr.(my_part) :=
                    ( K.now my_k,
                      my_idx,
                      List.map
                        (fun v -> (v, Codegen.result lay c v))
                        proc.B.results )
                    :: !(swr.(my_part)));
              if K.now my_k > !my_end then my_end := K.now my_k)
      | Pn.Hw ->
          let est = Codesign_hls.Hls.estimate proc in
          hw_area := !hw_area + est.Codesign_hls.Hls.area;
          let stmt_cost = hw_stmt_cycles proc in
          let engine_id =
            match engine_of proc.B.name with
            | Some e -> e
            | None ->
                incr next_auto_engine;
                !next_auto_engine
          in
          let token =
            match Hashtbl.find_opt engine_tokens engine_id with
            | Some t -> t
            | None ->
                let t = Mutex.create () in
                Hashtbl.replace engine_tokens engine_id t;
                t
          in
          let io =
            {
              B.null_io with
              B.recv =
                (fun ch ->
                  Mutex.release token;
                  let v = Ch.recv (List.assoc ch channels) in
                  Mutex.acquire token;
                  v);
              send =
                (fun ch v ->
                  let cost = chan_send_cost ch in
                  if cost > 0 then K.wait cost;
                  Mutex.release token;
                  Ch.send (List.assoc ch channels) v;
                  Mutex.acquire token);
              port_out = (fun p v -> record_port p v);
            }
          in
          K.spawn ~name:proc.B.name my_k (fun () ->
              Mutex.acquire token;
              ignore
                (B.run ~io ~tick:(fun () -> K.wait stmt_cost) proc []);
              Mutex.release token;
              if K.now my_k > !my_end then my_end := K.now my_k))
    net.Pn.procs;
  let st =
    match until with
    | Some u -> Pdes.run ~until:u ~expect_quiescent:true plan
    | None -> Pdes.run plan
  in
  let merge cells =
    Array.to_list cells
    |> List.concat_map (fun r -> List.rev !r)
    |> List.sort compare
  in
  let port_writes =
    List.map (fun (_, i, _, p, v) -> (proc_name.(i), p, v)) (merge pw)
  in
  let sw_results =
    List.map (fun (_, i, kvs) -> (proc_name.(i), kvs)) (merge swr)
  in
  let traps = List.map (fun (_, i, m) -> (proc_name.(i), m)) (merge trp) in
  {
    end_time = Array.fold_left (fun a r -> max a !r) 0 end_times;
    net_events = st.K.events;
    net_activations = st.K.activations;
    net_outcome =
      (match traps with
      | [] -> Net_completed
      | (p, m) :: _ -> Net_trapped (p, m));
    port_writes;
    hw_area = !hw_area;
    sw_results;
    chan_stats = List.map (fun (name, ch) -> (name, Ch.stats ch)) channels;
  }
