(** Profile-driven hot-spot analysis — the front half of COSYMA-style
    partitioning (paper §4.5 ref [17]): run the software, attribute
    cycles to source regions, and derive hardware-extraction candidates.

    The code generator labels every loop head, so the ISS profiler's
    per-label aggregation maps measured cycles back onto source loops.
    {!analyze} packages that into ranked regions; {!to_task_graph} turns
    the regions of a straight-line pipeline of behaviours into a task
    graph whose software costs are {i measured}, ready for
    {!Partition}. *)

module B = Codesign_ir.Behavior
module T = Codesign_ir.Task_graph
module Cpu = Codesign_isa.Cpu
module Codegen = Codesign_isa.Codegen
module Asm = Codesign_isa.Asm
module Profiler = Codesign_isa.Profiler

type region = {
  label : string;  (** generated code label ("for_3", "<entry>", ...) *)
  cycles : int;
  fraction : float;  (** of total execution *)
}

type profile = {
  total_cycles : int;
  regions : region list;  (** descending by cycles *)
  results : (string * int) list;  (** the behaviour's outputs *)
}

(** [analyze proc bindings] compiles, runs and profiles one behaviour.
    Channelised behaviours need [chan_ports] (channel-name -> port id);
    unless [env] supplies port hooks, their receives read 0 — fine for
    data-independent control flow, which is what the profile measures.
    @raise Codesign_isa.Codegen.Trapped if the compiled program traps
    (the exception carries the behaviour's name and the trapping PC). *)
let analyze ?(env = Cpu.default_env) ?chan_ports (proc : B.proc) bindings =
  let items, lay = Codegen.compile ?chan_ports proc in
  let img = Asm.assemble items in
  let cpu = Cpu.create ~env img.Asm.code in
  let prof = Profiler.attach cpu img in
  Codegen.bind lay cpu bindings;
  (match Cpu.run cpu with
  | Cpu.Halted -> ()
  | Cpu.Trapped msg ->
      raise (Codegen.Trapped { proc = proc.B.name; pc = Cpu.pc cpu; msg })
  | Cpu.Running -> assert false);
  let total = Profiler.total_cycles prof in
  {
    total_cycles = total;
    regions =
      List.map
        (fun (label, cycles) ->
          {
            label;
            cycles;
            fraction = float_of_int cycles /. float_of_int (max total 1);
          })
        (Profiler.by_label prof);
    results = List.map (fun v -> (v, Codegen.result lay cpu v)) proc.B.results;
  }

(** Hottest regions covering at least [coverage] (default 0.9) of the
    execution — the candidates COSYMA-style extraction would consider. *)
let hot_regions ?(coverage = 0.9) profile =
  let rec take acc covered = function
    | [] -> List.rev acc
    | r :: rest ->
        if covered >= coverage then List.rev acc
        else take (r :: acc) (covered +. r.fraction) rest
  in
  take [] 0.0 profile.regions

(** Rescale an HLS estimate's trip-weighted operation mix so that the
    standalone-area estimator reproduces the HLS area: the sharing
    estimator's inputs are *datapath* operation demands, not dynamic
    operation counts.  Keeps the kind structure (so cross-task sharing
    still works) while making [Estimate.standalone_area (consistent_mix
    est)] track [est.area]. *)
let consistent_mix (est : Codesign_hls.Hls.behavior_estimate) =
  let module E = Codesign_rtl.Estimate in
  let mix = est.Codesign_hls.Hls.mix in
  let target = est.Codesign_hls.Hls.area in
  if mix = [] then [ ("add", max 1 (target / 32)) ]
  else begin
    let sa = max 1 (E.standalone_area mix) in
    let scaled =
      List.map (fun (k, n) -> (k, max 1 (n * target / sa))) mix
    in
    (* the unit quantisation of fu_need can leave the rescaled mix above
       the target; shrink multiplicatively until it fits or bottoms out *)
    let rec fit mix' =
      if
        E.standalone_area mix' <= target
        || List.for_all (fun (_, n) -> n = 1) mix'
      then mix'
      else fit (List.map (fun (k, n) -> (k, max 1 (n * 4 / 5))) mix')
    in
    fit scaled
  end

(** Build a task graph from a pipeline of behaviours with measured
    software costs: each stage is profiled on the ISS ([bindings] per
    stage), its hardware cost estimated by HLS, and stages are chained
    with the given inter-stage data volume.  This closes the loop the
    paper's §3.3 "performance requirements" discussion describes:
    partitioning driven by measurement, not guesses. *)
let to_task_graph ?(name = "profiled") ?(words = 8) ?deadline_factor
    (stages : (B.proc * (string * int) list) list) =
  if stages = [] then invalid_arg "Hotspot.to_task_graph: no stages";
  let tasks =
    List.mapi
      (fun i ((proc : B.proc), bindings) ->
        let p = analyze proc bindings in
        let est = Codesign_hls.Hls.estimate proc in
        T.task ~id:i ~name:proc.B.name ~sw_cycles:p.total_cycles
          ~hw_cycles:est.Codesign_hls.Hls.cycles
          ~hw_area:est.Codesign_hls.Hls.area
          ~sw_bytes:
            (Codesign_isa.Encoding.program_bytes
               (Asm.assemble (fst (Codegen.compile proc))).Asm.code)
          ~ops:(consistent_mix est) ())
      stages
  in
  let edges =
    List.init
      (List.length stages - 1)
      (fun i -> { T.src = i; dst = i + 1; words })
  in
  let g = T.make ~name tasks edges in
  match deadline_factor with
  | Some f -> T.scale_deadline g f
  | None -> g
