(** Hardware/software co-simulation (paper §3.1, Figs. 3).

    Two services:

    {2 The abstraction ladder}

    {!run_echo_system} simulates one fixed embedded application — a data
    source device, a software transform running on the processor, a data
    sink device — at each of the four Fig. 3 abstraction levels:

    - {!Pin}: ISS + pin/cycle-accurate bus (wait states visible) — the
      timing reference [4];
    - {!Transaction}: ISS + transaction-level bus (fixed access latency);
    - {!Driver}: ISS + zero-bus device access charged a fixed
      driver-call cost;
    - {!Message}: no ISS at all — communicating processes with
      statement-approximate software timing over kernel channels [2][3].

    The application is functionally identical at every level (same values
    stream through), so the experiment isolates exactly what the paper
    claims the ladder trades: timing fidelity against simulation cost
    (kernel events / process activations).

    {2 Process-network execution}

    {!run_network} executes a {!Codesign_ir.Process_network}: software
    processes are compiled and run on ISS instances that share one CPU
    through a scheduler token (an idealised RTOS); hardware processes
    run as timed behavioural threads whose per-statement cost comes from
    HLS estimation, optionally grouped onto a bounded number of hardware
    engines (one FSMD controller each — the multi-threaded co-processor
    of §4.6).  Channels are the kernel's blocking FIFOs. *)

type level = Pin | Transaction | Driver | Message

val level_name : level -> string

type outcome =
  | Completed
  | Not_halted of string
      (** the simulation ran out of its time bound with the CPU still
          running, or the CPU trapped; the string says which.  A
          structured outcome rather than an exception so fault-injected
          and adversarial runs can observe the anomaly as data. *)

type metrics = {
  level : level;
  outcome : outcome;
  checksum : int;
      (** functional output (identical across levels when [Completed];
          best-effort partial sum otherwise) *)
  sim_cycles : int;  (** simulated completion time *)
  events : int;  (** kernel events dispatched *)
  activations : int;  (** process activations *)
  bus_ops : int;  (** bus/driver accesses performed (0 at Message) *)
}

val run_echo_system :
  level:level ->
  ?items:int ->
  ?work:int ->
  ?src_period:int ->
  ?sink_period:int ->
  unit ->
  metrics
(** Defaults: 16 items, transform work 8, source period 200, sink
    period 120.  The sink period exceeding the bus latency makes device
    wait states material, which is what separates {!Pin} from
    {!Transaction} timing. *)

(** {2 Process networks} *)

type network_result = {
  end_time : int;
  net_events : int;
  net_activations : int;
  port_writes : (string * int * int) list;
      (** (process, port, value), in completion order *)
  hw_area : int;  (** summed HLS-estimated area of hardware processes *)
  sw_results : (string * (string * int) list) list;
      (** per software process: its behaviour's result variables *)
}

val run_network :
  ?hw_engines:(string * int) list ->
  ?sw_cpi:int ->
  ?cross_cost:int ->
  ?until:int ->
  Codesign_ir.Process_network.t ->
  network_result
(** [hw_engines] assigns hardware processes to engine ids; processes on
    the same engine serialise (default: each its own engine).
    [sw_cpi] is unused at present (software timing is the ISS's own
    cycle counting) and reserved.  [cross_cost] charges the sender that
    many extra cycles per message on channels whose endpoints live on
    different engines (software counts as one engine) — the §3.3
    "communication" factor made physical (default 0).  [until] bounds
    simulated time when given; without it a deadlocked network raises.
    @raise Codesign_sim.Kernel.Deadlock if the network deadlocks. *)

val hw_stmt_cycles : Codesign_ir.Behavior.proc -> int
(** Per-dynamic-statement hardware cost derived from the HLS estimate of
    the behaviour (used by the timed hardware threads; exposed for
    tests). *)
