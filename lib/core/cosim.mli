(** Hardware/software co-simulation (paper §3.1, Figs. 3).

    Two services:

    {2 The abstraction ladder}

    {!run_echo_system} simulates one fixed embedded application — a data
    source device, a software transform running on the processor, a data
    sink device — at each of the four Fig. 3 abstraction levels:

    - {!Pin}: ISS + pin/cycle-accurate bus (wait states visible) — the
      timing reference [4];
    - {!Transaction}: ISS + transaction-level bus (fixed access latency);
    - {!Driver}: ISS + zero-bus device access charged a fixed
      driver-call cost;
    - {!Message}: no ISS at all — communicating processes with
      statement-approximate software timing over kernel channels [2][3].

    The application is functionally identical at every level (same values
    stream through), so the experiment isolates exactly what the paper
    claims the ladder trades: timing fidelity against simulation cost
    (kernel events / process activations).

    {2 Mixed-level assignments}

    The paper's Fig. 3 point is that real co-simulators mix levels {e per
    component}.  {!run_echo_assignment} generalises the ladder run to a
    per-component {!assignment}: [src] picks the
    {!Codesign_bus.Transport.t} modelling the source→CPU interface,
    [sink] the CPU→sink interface, and [cpu] the software model itself
    ({!Message} interprets the behaviour with statement-approximate
    timing; any other level runs the ISS).  The four pure assignments
    are observationally identical — metrics byte-for-byte — to the
    dedicated per-level runners they replaced, and every assignment
    computes the same functional checksum; only cost and timing move.

    {2 Process-network execution}

    {!run_network} executes a {!Codesign_ir.Process_network}: software
    processes are compiled and run on ISS instances that share one CPU
    through a scheduler token (an idealised RTOS); hardware processes
    run as timed behavioural threads whose per-statement cost comes from
    HLS estimation, optionally grouped onto a bounded number of hardware
    engines (one FSMD controller each — the multi-threaded co-processor
    of §4.6).  Channels are the kernel's blocking FIFOs. *)

type level = Codesign_bus.Transport.level =
  | Pin
  | Transaction
  | Driver
  | Message

val all_levels : level list
(** Most detailed first: [[Pin; Transaction; Driver; Message]]. *)

val level_name : level -> string

(** {2 Level assignments} *)

type assignment = { src : level; cpu : level; sink : level }
(** One Fig. 3 grid point: the abstraction level of the source→CPU
    interface, of the software model, and of the CPU→sink interface. *)

val pure : level -> assignment
(** Every component at the same rung — the classic ladder. *)

val is_pure : assignment -> bool

val assignment_name : assignment -> string
(** CLI spelling, e.g. ["pin:tlm:message"]. *)

val parse_assignment : string -> (assignment, string) result
(** Inverse of {!assignment_name}; a single level name means
    {!pure}. *)

val ladder_position : assignment -> int
(** Sum of the component ranks, 0 (all-pin) .. 9 (all-message) — the
    grid's abstraction coordinate.  Simulation cost (events,
    activations) decreases along it. *)

type outcome =
  | Completed
  | Not_halted of string
      (** the simulation ran out of its time bound with the CPU still
          running, or the CPU trapped; the string says which.  A
          structured outcome rather than an exception so fault-injected
          and adversarial runs can observe the anomaly as data. *)
  | Exhausted of string
      (** a caller-supplied {!Codesign_resil.Budget} ran out (fuel or
          wall deadline — the string says which) before the run
          finished; only produced when [?budget] is passed *)

type metrics = {
  level : level;
      (** the software-model level ([assignment.cpu]); for pure
          assignments this is the classic ladder rung *)
  assignment : assignment;
  outcome : outcome;
  checksum : int;
      (** functional output (identical across levels when [Completed];
          best-effort partial sum otherwise) *)
  sim_cycles : int;  (** simulated completion time *)
  events : int;  (** kernel events dispatched *)
  activations : int;  (** process activations *)
  bus_ops : int;  (** bus/driver accesses performed (0 at Message) *)
}

val run_echo_assignment :
  levels:assignment ->
  ?wrap:(Codesign_bus.Transport.t -> Codesign_bus.Transport.t) ->
  ?budget:Codesign_resil.Budget.t ->
  ?items:int ->
  ?work:int ->
  ?src_period:int ->
  ?sink_period:int ->
  ?quantum:int ->
  ?partitions:int ->
  ?link_latency:int ->
  unit ->
  metrics
(** The generic pipeline: one echo system with each component at its
    assigned level.  [wrap] intercepts every transport as it is created
    (identity by default) — the fault layer's injection hook.  Defaults
    as {!run_echo_system}.  All assignments compute the same [checksum];
    [events]/[activations] fall as any component moves up the ladder,
    and [bus_ops] is zero exactly when both interfaces are at
    {!Message}.

    [quantum] (default 1) enables temporally decoupled execution of the
    software component: it runs up to [quantum] cycles ahead of the
    kernel between synchronisation points, on the block-compiled ISS
    tier ({!Codesign_isa.Cpu.run_blocks}) or with batched statement
    ticks at {!Message} level, and any port access first flushes the
    accrued lead back into kernel time (sync-before-communication, the
    loosely-timed idiom).  [quantum = 1] is byte-identical to the
    historic per-step/per-statement coupling; larger quanta preserve
    [checksum] and [outcome] but trade event/activation counts (and
    exact interleaving) for speed.
    @raise Invalid_argument if [quantum < 1].

    [budget] bounds the run in simulated fuel and/or wall time
    ({!Codesign_resil.Budget}); when it runs out the metrics come back
    with [outcome = Exhausted _] and best-effort partial counters, the
    kernel state intact behind them.  Without [budget] the historic
    bounds apply unchanged (bus-coupled assignments stop at 50M cycles
    with [Not_halted], pure-message runs are unbounded).

    [partitions] (default 1) runs the system on a conservatively
    synchronised partitioned kernel ({!Codesign_sim.Partition}, one
    domain per partition): 2 cuts the sink onto its own partition
    (src+cpu | sink), 3 also cuts the source (src | cpu | sink).  Only
    message-level interfaces can be cut, and every cut interface's
    transport must declare a positive lookahead — give its channels
    [link_latency >= 1].  [link_latency] (default 0) sets the delivery
    latency of the message channels in every mode, so a partitioned run
    is compared against the serial run at the same [link_latency]; the
    two are byte-identical in all metrics.  [partitions = 1] with
    [link_latency = 0] is exactly the historic serial system.
    @raise Invalid_argument when [partitions] is outside 1..3, a cut
    interface is not at {!Message} or has zero lookahead, or a
    partitioned run is combined with [budget]. *)

val run_echo_system :
  level:level ->
  ?items:int ->
  ?work:int ->
  ?src_period:int ->
  ?sink_period:int ->
  unit ->
  metrics
(** [run_echo_assignment ~levels:(pure level)].  Defaults: 16 items,
    transform work 8, source period 200, sink period 120.  The sink
    period exceeding the bus latency makes device wait states material,
    which is what separates {!Pin} from {!Transaction} timing. *)

(** {2 Process networks} *)

type network_outcome =
  | Net_completed  (** no software process trapped *)
  | Net_trapped of string * string
      (** [(process, message)]: a software CPU trapped.  The first trap
          in simulation order is reported; the trapped process ends
          cleanly (its kernel process never raises, so the rest of the
          network keeps running and deadlock detection still sees
          accurate blocked sets) and contributes no [sw_results]
          entry. *)

type network_result = {
  end_time : int;
  net_events : int;
  net_activations : int;
  net_outcome : network_outcome;
  port_writes : (string * int * int) list;
      (** (process, port, value), in canonical order: sorted by (write
          time, process declaration index, per-process write sequence) —
          a property of the simulation itself, identical for serial and
          partitioned runs *)
  hw_area : int;  (** summed HLS-estimated area of hardware processes *)
  sw_results : (string * (string * int) list) list;
      (** per software process: its behaviour's result variables
          (trapped processes are absent), in canonical
          (completion time, declaration index) order *)
  chan_stats : (string * Codesign_sim.Channel.stats) list;
      (** per-channel traffic counters in declaration order —
          partition-boundary channels are observable here
          ([messages]/[blocked_sends] split) *)
}

val run_network :
  ?hw_engines:(string * int) list ->
  ?sw_cpi:int ->
  ?cross_cost:int ->
  ?until:int ->
  ?partition:(string * int) list ->
  Codesign_ir.Process_network.t ->
  network_result
(** [hw_engines] assigns hardware processes to engine ids; processes on
    the same engine serialise (default: each its own engine).
    [sw_cpi] is unused at present (software timing is the ISS's own
    cycle counting) and reserved.  [cross_cost] charges the sender that
    many extra cycles per message on channels whose endpoints live on
    different engines (software counts as one engine) — the §3.3
    "communication" factor made physical (default 0).  [until] bounds
    simulated time when given; without it a deadlocked network raises.

    [partition] maps process names to partition ids (unnamed processes
    go to partition 0); the network then runs on per-partition event
    wheels under conservative synchronisation
    ({!Codesign_sim.Partition}), one OCaml domain per partition
    ([Codesign_par.Pdes]).  Every result field is byte-identical for any
    partition map — including the absent one — on the same network:
    channel latencies are the lookahead, and cross-partition arrivals
    replay in their serial dispatch positions.
    @raise Invalid_argument when a cross-partition channel has latency
    0 (the message names the channel — zero lookahead would livelock
    the synchronisation loop), when software processes are split across
    partitions, when processes sharing an explicit hardware engine are
    split, or when the map names an unknown process.
    @raise Codesign_sim.Kernel.Deadlock if the network deadlocks. *)

val hw_stmt_cycles : Codesign_ir.Behavior.proc -> int
(** Per-dynamic-statement hardware cost derived from the HLS estimate of
    the behaviour (used by the timed hardware threads; exposed for
    tests). *)
