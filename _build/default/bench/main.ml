(* The benchmark harness: regenerates every evaluation artifact of the
   paper (one table per figure, EXP-1..EXP-10; see DESIGN.md for the
   index) and then runs Bechamel micro-benchmarks over the framework's
   computational kernels.

   Usage:  dune exec bench/main.exe            (everything)
           dune exec bench/main.exe -- quick   (small experiment sizes)
           dune exec bench/main.exe -- tables  (skip microbenchmarks)   *)

open Codesign_experiments

let experiments =
  [
    ("EXP-1", fun ~quick () -> Exp_fig1.run ~quick ());
    ("EXP-2", fun ~quick () -> Exp_fig2.run ~quick ());
    ("EXP-3", fun ~quick () -> Exp_fig3.run ~quick ());
    ("EXP-4", fun ~quick () -> Exp_fig4.run ~quick ());
    ("EXP-5", fun ~quick () -> Exp_fig5.run ~quick ());
    ("EXP-6", fun ~quick () -> Exp_fig6.run ~quick ());
    ("EXP-7", fun ~quick () -> Exp_fig7.run ~quick ());
    ("EXP-8", fun ~quick () -> Exp_fig8.run ~quick ());
    ("EXP-9", fun ~quick () -> Exp_fig9.run ~quick ());
    ("EXP-10", fun ~quick () -> Exp_criteria.run ~quick ());
    ("EXP-A", fun ~quick () -> Exp_ablation.run ~quick ());
  ]

let run_tables ~quick =
  print_endline
    "=================================================================";
  print_endline
    " Reproduction of: The Design of Mixed Hardware/Software Systems";
  print_endline " (Adams & Thomas, DAC 1996) -- experiment tables";
  print_endline
    "=================================================================\n";
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      let table = f ~quick () in
      let dt = Unix.gettimeofday () -. t0 in
      print_endline table;
      Printf.printf "(%s generated in %.2fs)\n\n" name dt)
    experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the framework's computational kernels  *)
(* ------------------------------------------------------------------ *)

module B = Codesign_ir.Behavior
module Tgff = Codesign_workloads.Tgff
module Kernels = Codesign_workloads.Kernels
open Codesign

let bench_event_kernel () =
  let k = Codesign_sim.Kernel.create () in
  for i = 0 to 9 do
    Codesign_sim.Kernel.spawn k (fun () ->
        for _ = 1 to 100 do
          Codesign_sim.Kernel.wait (1 + i)
        done)
  done;
  ignore (Codesign_sim.Kernel.run k)

let fir_proc, fir_binds =
  let _, p, b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  (p, b)

let fir_image, fir_layout = Codesign_isa.Codegen.compile fir_proc
let fir_code = (Codesign_isa.Asm.assemble fir_image).Codesign_isa.Asm.code

let bench_iss () =
  let cpu = Codesign_isa.Cpu.create fir_code in
  Codesign_isa.Codegen.bind fir_layout cpu fir_binds;
  ignore (Codesign_isa.Cpu.run cpu)

let dct_block =
  let g = B.elaborate (Kernels.dct8 ()) in
  List.hd g.Codesign_ir.Cdfg.blocks

let bench_list_schedule () =
  ignore
    (Codesign_hls.Sched.list_schedule dct_block
       ~resources:[ ("mul", 2); ("alu", 2) ])

let bench_hls_full () = ignore (Codesign_hls.Hls.synthesize_block dct_block)

let part_graph =
  Tgff.generate { Tgff.default_spec with Tgff.seed = 42; n_tasks = 12 }

let bench_partition_kl () = ignore (Partition.kl part_graph)

let cosynth_pb =
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 1; n_tasks = 6; layers = 3;
        deadline_factor = 1.2 }
  in
  let exec =
    Array.map
      (fun (t : Codesign_ir.Task_graph.task) ->
        [| max 1 (t.Codesign_ir.Task_graph.sw_cycles / 4);
           max 1 (t.Codesign_ir.Task_graph.sw_cycles / 2);
           t.Codesign_ir.Task_graph.sw_cycles |])
      g.Codesign_ir.Task_graph.tasks
  in
  Cosynth.problem g
    [ { Cosynth.pt_name = "fast"; price = 100 };
      { Cosynth.pt_name = "mid"; price = 40 };
      { Cosynth.pt_name = "slow"; price = 15 } ]
    ~exec

let bench_sos () = ignore (Cosynth.sos cosynth_pb)

let bench_cosim_tlm () =
  ignore (Cosim.run_echo_system ~level:Cosim.Transaction ~items:4 ~work:4 ())

let bench_asip () = ignore (Asip.design fir_proc fir_binds)

let run_microbenchmarks () =
  let open Bechamel in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"codesign"
      [
        test "event-kernel/1k-wakeups" bench_event_kernel;
        test "iss/fir-kernel" bench_iss;
        test "hls/list-schedule-dct8" bench_list_schedule;
        test "hls/full-synthesis-dct8" bench_hls_full;
        test "partition/kl-12-tasks" bench_partition_kl;
        test "cosynth/sos-6-tasks" bench_sos;
        test "cosim/tlm-echo" bench_cosim_tlm;
        test "asip/design-fir" bench_asip;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "Micro-benchmarks (monotonic clock, ns per run):";
  let clock =
    Hashtbl.find merged (Measure.label Toolkit.Instance.monotonic_clock)
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%12.0f" e
        | _ -> "           ?"
      in
      rows := (name, est) :: !rows)
    clock;
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %s ns\n" name est)
    (List.sort compare !rows)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "quick" args in
  let tables_only = List.mem "tables" args in
  run_tables ~quick;
  if not tables_only then run_microbenchmarks ()
