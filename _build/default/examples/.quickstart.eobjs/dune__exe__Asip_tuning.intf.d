examples/asip_tuning.mli:
