examples/dsp_coprocessor.mli:
