examples/dsp_coprocessor.ml: Codesign Codesign_hls Codesign_ir Codesign_rtl Codesign_workloads Coproc Cosim List Printf String
