examples/quickstart.mli:
