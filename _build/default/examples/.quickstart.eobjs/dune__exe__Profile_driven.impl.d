examples/profile_driven.ml: Array Codesign Codesign_ir Codesign_workloads Cost Hotspot List Partition Printf String
