examples/multiproc_synthesis.mli:
