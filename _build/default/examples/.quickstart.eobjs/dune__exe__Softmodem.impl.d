examples/softmodem.ml: Array Codesign Codesign_hls Codesign_ir Codesign_workloads Cosim Cost Hotspot List Partition Printf String
