examples/profile_driven.mli:
