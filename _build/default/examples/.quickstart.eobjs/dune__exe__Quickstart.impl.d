examples/quickstart.ml: Array Codesign Codesign_ir Codesign_rtl Cost Format List Partition Printf String Taxonomy
