examples/embedded_controller.ml: Codesign_bus Codesign_isa Codesign_rtl Codesign_sim List Printf String
