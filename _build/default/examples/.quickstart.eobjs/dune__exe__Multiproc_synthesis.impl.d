examples/multiproc_synthesis.ml: Array Codesign Codesign_ir Codesign_workloads Cosynth Format List Printf String
