examples/asip_tuning.ml: Asip Codesign Codesign_workloads List Printf String
