examples/softmodem.mli:
