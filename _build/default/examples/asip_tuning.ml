(* ASIP tuning (paper Fig. 6/7, §4.3/4.4): extend the processor's
   instruction set for an application, with measured (not estimated)
   speedups, then explore the field-programmable variant.

     dune exec examples/asip_tuning.exe                                 *)

open Codesign
module Kernels = Codesign_workloads.Kernels

let () =
  Printf.printf
    "ASIP instruction-set extension (area budget 800 NAND-eq):\n\n";
  Printf.printf "  %-18s %-24s %10s %10s %8s\n" "kernel" "extensions"
    "base cyc" "asip cyc" "speedup";
  List.iter
    (fun (name, proc, binds) ->
      let r = Asip.design proc binds in
      Printf.printf "  %-18s %-24s %10d %10d %7.2fx %s\n" name
        (match r.Asip.selected with
        | [] -> "-"
        | l -> String.concat "+" (List.map (fun p -> p.Asip.pname) l))
        r.Asip.base_cycles r.Asip.asip_cycles r.Asip.speedup
        (if r.Asip.verified then "" else "  ** VERIFY FAILED **"))
    Kernels.all;

  (* how one kernel's custom instruction actually looks *)
  let _, fir, _ = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let occs = Asip.occurrences fir in
  Printf.printf "\nPattern occurrences in fir (trip-weighted):\n";
  List.iter
    (fun (p, n) ->
      Printf.printf
        "  %-10s %4d occurrences  (saves %d cycles each, %d area)\n"
        p.Asip.pname n
        (p.Asip.sw_cycles - p.Asip.latency)
        p.Asip.area)
    occs;

  (* the reconfigurable-fabric variant: one fabric, two very different
     applications *)
  let app n = let _, p, b = List.find (fun (m, _, _) -> m = n) Kernels.all in (p, b) in
  let mix = [ app "fir"; app "crc32"; app "fir"; app "crc32" ] in
  Printf.printf
    "\nReconfigurable FUs (fabric capacity 400, alternating fir/crc32):\n";
  List.iter
    (fun cost ->
      let o = Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:cost mix in
      Printf.printf
        "  reconfig cost %6d: static %6d cyc, dynamic %6d cyc (%d \
         reconfigs) -> %s wins\n"
        cost o.Asip.Reconfig.static_cycles o.Asip.Reconfig.dynamic_cycles
        o.Asip.Reconfig.reconfigurations o.Asip.Reconfig.winner)
    [ 0; 500; 2000; 50_000 ]
