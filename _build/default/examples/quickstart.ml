(* Quickstart: the co-design flow in ~80 lines.

   We describe a small system as a task graph, classify it with the
   paper's taxonomy, partition it between hardware and software under an
   area budget, and inspect the result.

     dune exec examples/quickstart.exe                                  *)

open Codesign
module T = Codesign_ir.Task_graph

let () =
  (* 1. A four-task signal chain: acquire -> filter -> detect -> report.
     Per-task numbers: software cycles, hardware cycles, operation mix
     (which drives sharing-aware hardware area estimation). *)
  let task id name sw hw ops par =
    T.task ~id ~name ~sw_cycles:sw ~hw_cycles:hw
      ~hw_area:(Codesign_rtl.Estimate.standalone_area ops)
      ~parallelism:par ~ops ()
  in
  let g =
    T.make ~name:"signal-chain" ~deadline:2600
      [
        task 0 "acquire" 800 300 [ ("ld", 24); ("add", 8) ] 0.4;
        task 1 "filter" 2400 150 [ ("mul", 32); ("add", 32) ] 0.95;
        task 2 "detect" 900 120 [ ("lt", 16); ("add", 12) ] 0.7;
        task 3 "report" 500 400 [ ("add", 6); ("eq", 4) ] 0.1;
      ]
      [
        { T.src = 0; dst = 1; words = 16 };
        { T.src = 1; dst = 2; words = 16 };
        { T.src = 2; dst = 3; words = 2 };
      ]
  in
  Format.printf "%a@.@." T.pp g;

  (* 2. Classify the intended implementation with the paper's taxonomy:
     software on a microprocessor next to a behavioural co-processor is
     a Type II system (physical HW/SW boundary). *)
  let boundary =
    Taxonomy.classify
      [
        {
          Taxonomy.comp_name = "firmware";
          is_software = true;
          level = Taxonomy.Behavioral;
          executes_on = None;
        };
        {
          Taxonomy.comp_name = "co-processor";
          is_software = false;
          level = Taxonomy.Behavioral;
          executes_on = None;
        };
      ]
  in
  Printf.printf "System class: %s hardware/software system\n\n"
    (Taxonomy.boundary_name boundary);

  (* 3. Partition: all-software first, then let each algorithm try. *)
  let show name (r : Partition.result) =
    let e = r.Partition.eval in
    Printf.printf
      "  %-8s latency %5d cycles  speedup %.2fx  hw area %5d  in hw: %s%s\n"
      name e.Cost.latency e.Cost.speedup e.Cost.hw_area
      (String.concat ","
         (List.filteri (fun i _ -> r.Partition.partition.(i))
            (Array.to_list g.T.tasks)
         |> List.map (fun (t : T.task) -> t.T.name)))
      (if e.Cost.meets_deadline then "" else "  ** misses deadline **")
  in
  let all_sw = Cost.evaluate g (Cost.all_sw g) in
  Printf.printf "All-software baseline: %d cycles (deadline %d)\n"
    all_sw.Cost.latency g.T.deadline;
  Printf.printf "Partitioning (area budget 4000):\n";
  show "greedy" (Partition.greedy ~max_area:4000 g);
  show "kl" (Partition.kl ~max_area:4000 g);
  show "sa" (Partition.simulated_annealing ~max_area:4000 g);
  show "gclp" (Partition.gclp ~max_area:4000 g);
  show "optimal" (Partition.exhaustive ~max_area:4000 g);

  (* 4. The same decision without sharing-aware estimation needs more
     area for the same speedup — the Vahid-Gajski [18] point. *)
  let no_sharing =
    Partition.kl
      ~params:{ Cost.default_params with Cost.sharing = false }
      ~max_area:4000 g
  in
  Printf.printf
    "\nWithout sharing-aware area estimation the same budget admits %d \
     task(s) to hardware (vs %d with sharing).\n"
    no_sharing.Partition.eval.Cost.n_hw
    (Partition.kl ~max_area:4000 g).Partition.eval.Cost.n_hw
