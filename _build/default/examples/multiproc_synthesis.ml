(* Heterogeneous multiprocessor synthesis (paper Fig. 5 / §4.2): choose
   a set of processors and a task mapping that meets a deadline at
   minimum cost, three ways — exactly (SOS), by vector bin packing, and
   by sensitivity-driven improvement.

     dune exec examples/multiproc_synthesis.exe                         *)

open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff

let pe_lib =
  [
    { Cosynth.pt_name = "fast-risc"; price = 100 };
    { Cosynth.pt_name = "mid-risc"; price = 40 };
    { Cosynth.pt_name = "micro"; price = 15 };
  ]

let () =
  (* an 8-task layered workload with a deadline 10% above the software
     critical path: one cheap core cannot meet it *)
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 4; n_tasks = 8; layers = 3;
        deadline_factor = 1.1 }
  in
  Format.printf "%a@.@." T.pp g;
  let exec =
    Array.map
      (fun (t : T.task) ->
        [| max 1 (t.T.sw_cycles / 4); max 1 (t.T.sw_cycles / 2);
           t.T.sw_cycles |])
      g.T.tasks
  in
  Printf.printf "PE library: %s\n\n"
    (String.concat ", "
       (List.map
          (fun p -> Printf.sprintf "%s ($%d)" p.Cosynth.pt_name p.Cosynth.price)
          pe_lib));
  let pb = Cosynth.problem g pe_lib ~exec in
  let show s = Format.printf "%a@." (fun f -> Cosynth.pp_solution f pb) s in
  Printf.printf "Exact (Prakash-Parker SOS, branch & bound):\n  ";
  let opt = Cosynth.sos pb in
  show opt;
  Printf.printf "\nVector bin packing (Beck):\n  ";
  let bp = Cosynth.binpack pb in
  show bp;
  Printf.printf "\nSensitivity-driven (Yen-Wolf):\n  ";
  let sv = Cosynth.sensitivity pb in
  show sv;
  Printf.printf "\nSummary: optimal $%d; bin-packing pays %+d%%; \
                 sensitivity pays %+d%%.\n"
    opt.Cosynth.price
    (100 * (bp.Cosynth.price - opt.Cosynth.price) / opt.Cosynth.price)
    (100 * (sv.Cosynth.price - opt.Cosynth.price) / opt.Cosynth.price);
  (* show the optimal mapping in detail *)
  Printf.printf "\nOptimal mapping:\n";
  Array.iteri
    (fun i inst ->
      let pe_type = List.nth opt.Cosynth.pe_set inst in
      Printf.printf "  %-4s -> PE%d (%s), %d cycles\n"
        g.T.tasks.(i).T.name inst
        (List.nth pe_lib pe_type).Cosynth.pt_name
        exec.(i).(pe_type))
    opt.Cosynth.mapping
