(* Profile-driven partitioning (paper §3.3 "performance requirements" /
   §4.5 [17]): measure where the software actually spends its cycles,
   then let the partitioner act on measurements instead of estimates —
   the COSYMA loop.

     dune exec examples/profile_driven.exe                              *)

open Codesign
module T = Codesign_ir.Task_graph
module Kernels = Codesign_workloads.Kernels

let () =
  (* 1. Profile one application on the ISS. *)
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let p = Hotspot.analyze fir binds in
  Printf.printf "fir executes %d cycles; hottest regions:\n"
    p.Hotspot.total_cycles;
  List.iter
    (fun (r : Hotspot.region) ->
      Printf.printf "  %-12s %6d cycles  %5.1f%%\n" r.Hotspot.label
        r.Hotspot.cycles
        (100. *. r.Hotspot.fraction))
    (Hotspot.hot_regions ~coverage:0.95 p);

  (* 2. Build a processing pipeline out of measured stages. *)
  let stage n = let _, pr, b = List.find (fun (m, _, _) -> m = n) Kernels.all in (pr, b) in
  let g =
    Hotspot.to_task_graph ~name:"measured-pipeline" ~deadline_factor:0.45
      [ stage "fir"; stage "crc32"; stage "histogram"; stage "matmul" ]
  in
  Printf.printf "\nPipeline of measured stages:\n";
  Array.iter
    (fun (t : T.task) ->
      Printf.printf
        "  %-12s sw %6d cycles (measured)   hw %5d cycles / %5d area \
         (HLS estimate)\n"
        t.T.name t.T.sw_cycles t.T.hw_cycles t.T.hw_area)
    g.T.tasks;
  Printf.printf "deadline: %d cycles (all-SW takes %d)\n\n" g.T.deadline
    (Cost.evaluate g (Cost.all_sw g)).Cost.all_sw_latency;

  (* 3. Partition on the measurements. *)
  let r = Partition.kl g in
  let e = r.Partition.eval in
  Printf.printf
    "KL partition: move [%s] to hardware\n  -> latency %d cycles \
     (%.2fx), area %d, deadline %s\n"
    (String.concat ", "
       (List.filteri (fun i _ -> r.Partition.partition.(i))
          (Array.to_list g.T.tasks)
       |> List.map (fun (t : T.task) -> t.T.name)))
    e.Cost.latency e.Cost.speedup e.Cost.hw_area
    (if e.Cost.meets_deadline then "met" else "missed")
