(* Embedded controller (paper Fig. 4 / §4.1): a microprocessor reads a
   sensor and drives a transmitter through synthesised drivers and glue
   logic, co-simulated end-to-end at the bus-transaction level.

   Demonstrates the Chinook-style interface co-synthesis flow: one port
   specification produces BOTH the device driver (real assembly, shown)
   and the glue netlist (Verilog-style, shown), then the whole system
   runs: generated code on the ISS, devices on the event kernel, data
   verified at the far end.

     dune exec examples/embedded_controller.exe                         *)

module K = Codesign_sim.Kernel
module M = Codesign_bus.Memory_map
module Bus = Codesign_bus.Bus
module Device = Codesign_bus.Device
module Interrupt = Codesign_bus.Interrupt
module Is = Codesign_bus.Interface_synth
module Cpu = Codesign_isa.Cpu
module Asm = Codesign_isa.Asm
module I = Codesign_isa.Isa

let spec =
  {
    Is.dname = "ctl";
    base = 0x10000;
    addr_bits = 20;
    ports =
      [
        {
          Is.pname = "sensor";
          direction = Is.In_port;
          data_offset = 1;
          status_offset = Some 0;
          mode = Is.Irq_driven 0;
        };
        {
          Is.pname = "tx";
          direction = Is.Out_port;
          data_offset = 0x11;
          status_offset = Some 0x10;
          mode = Is.Polled;
        };
      ];
  }

let () =
  let items = 6 in
  (* 1. Synthesise the interface. *)
  let driver, glue = Is.synthesize spec in
  Printf.printf "Synthesised drivers (%d bytes of code):\n\n"
    driver.Is.code_bytes;
  List.iter
    (fun (name, code) ->
      Printf.printf "--- %s ---\n%s\n" name (Asm.print code))
    driver.Is.routines;
  (match driver.Is.isr with
  | Some isr -> Printf.printf "--- interrupt service routine ---\n%s\n"
                  (Asm.print isr)
  | None -> ());
  Printf.printf "Glue logic: %d gates, area %d NAND-eq, %d synchroniser \
                 flops\n\n"
    glue.Is.gate_count glue.Is.area glue.Is.sync_flops;
  Printf.printf "--- glue netlist (Verilog flavour, excerpt) ---\n";
  let hdl = Codesign_rtl.Hdl_out.netlist glue.Is.netlist in
  String.split_on_char '\n' hdl
  |> List.filteri (fun i _ -> i < 14)
  |> List.iter print_endline;
  Printf.printf "  ... (%d more lines)\n\n"
    (List.length (String.split_on_char '\n' hdl) - 14);

  (* 2. Application: forward each sensor reading, doubled, to the tx. *)
  let entry =
    [
      Asm.Ins (I.Li (10, items));
      Asm.Label "loop";
      Asm.Ins (I.Jal (31, "ctl_sensor_read"));
      Asm.Ins (I.Alu (I.Add, 2, 2, 2));
      (* double it *)
      Asm.Ins (I.Jal (31, "ctl_tx_write"));
      Asm.Ins (I.Alui (I.Sub, 10, 10, 1));
      Asm.Ins (I.B (I.Ne, 10, 0, "loop"));
      Asm.Ins I.Halt;
    ]
  in
  let program = Is.program ~entry driver in

  (* 3. Assemble the system: CPU + TLM bus + devices + interrupt
     controller, and co-simulate. *)
  let k = K.create () in
  let ic = Interrupt.create () in
  let sensor =
    Device.Stream_src.create ~irq:(ic, 0) ~period:150 ~count:items
      ~gen:(fun i -> 10 + i)
      k ()
  in
  let tx = Device.Stream_sink.create ~period:30 k () in
  let map =
    M.create
      [
        Device.Stream_src.region ~name:"sensor" ~base:0x10000 sensor;
        Device.Stream_sink.region ~name:"tx" ~base:0x10010 tx;
        Interrupt.region ~name:"intc" ~base:0x1FF00 ic;
      ]
  in
  let bus = Bus.Tlm.create k map in
  let iface = Bus.tlm_iface bus in
  let img = Asm.assemble program in
  let env =
    {
      Cpu.default_env with
      Cpu.mem_read =
        (fun a -> if a >= 0x10000 then Some (iface.Bus.bus_read a) else None);
      mem_write =
        (fun a v ->
          if a >= 0x10000 then (iface.Bus.bus_write a v; true) else false);
    }
  in
  let cpu = Cpu.create ~env img.Asm.code in
  Interrupt.on_change ic (Cpu.set_irq cpu);
  K.spawn ~name:"cpu" k (fun () ->
      while Cpu.status cpu = Cpu.Running do
        let cy = Cpu.step cpu in
        if cy > 0 then K.wait cy
      done);
  let stats = K.run ~expect_quiescent:true k in
  Printf.printf "Co-simulation: %d kernel events, finished at t=%d, CPU \
                 retired %d instructions.\n"
    stats.K.events stats.K.end_time (Cpu.instret cpu);
  let got = Device.Stream_sink.accepted tx in
  let expected = List.init items (fun i -> 2 * (10 + i)) in
  Printf.printf "Transmitted: [%s]\n"
    (String.concat "; " (List.map string_of_int got));
  Printf.printf "Expected:    [%s]  ->  %s\n"
    (String.concat "; " (List.map string_of_int expected))
    (if got = expected then "VERIFIED" else "MISMATCH!")
