(* DSP co-processor (paper Fig. 8/9, §4.5/4.6): move a hot DSP kernel
   into a synthesised hardware thread and watch the measured system
   speed up.

   The flow here is the Type II co-design loop:
     1. a process network (producer -> filter -> consumer), all software;
     2. co-simulate: filter dominates;
     3. push the filter through high-level synthesis -> an FSMD, with a
        verifiable hardware implementation of its inner computation;
     4. remap the filter to hardware and co-simulate again;
     5. scale to a multi-threaded co-processor (fork/join across
        hardware workers).

     dune exec examples/dsp_coprocessor.exe                             *)

open Codesign
module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module Apps = Codesign_workloads.Apps
module Kernels = Codesign_workloads.Kernels
module F = Codesign_rtl.Fsmd

let () =
  let count = 12 and work = 24 in
  (* 1-2. all-software pipeline *)
  let net = Apps.pipeline ~stages:1 ~count ~work () in
  let sw = Cosim.run_network net in
  Printf.printf "All-software pipeline:  latency %6d cycles\n"
    sw.Cosim.end_time;

  (* 3. HLS on the filter's computation: show the synthesised FSMD for
     its datapath and verify it against the reference evaluation. *)
  let fir = Kernels.dct8 () in
  let block = List.hd (B.elaborate fir).Codesign_ir.Cdfg.blocks in
  let fsmd, report = Codesign_hls.Hls.synthesize_block block in
  Printf.printf
    "\nHLS of the dct8 datapath: %d states, latency %d cycles, area %d \
     (FUs %s, %d regs, ctrl %d)\n"
    (F.n_states fsmd) report.Codesign_hls.Hls.latency
    report.Codesign_hls.Hls.total_area
    (String.concat "+"
       (List.map
          (fun (c, n) -> Printf.sprintf "%dx%s" n c)
          report.Codesign_hls.Hls.fu_alloc))
    report.Codesign_hls.Hls.registers report.Codesign_hls.Hls.ctrl_area;
  (* run the generated hardware on a sample input and cross-check *)
  let inputs = List.init 8 (fun i -> (Printf.sprintf "x%d" i, (i * 9) - 20)) in
  let hw_run = F.run ~regs:inputs fsmd in
  let sw_run = B.run fir inputs in
  let agree =
    List.for_all
      (fun (v, expected) ->
        List.assoc v hw_run.F.final_regs = expected)
      sw_run
  in
  Printf.printf "Generated hardware vs interpreter on sample input: %s\n"
    (if agree then "VERIFIED" else "MISMATCH!");
  Printf.printf "--- generated FSMD (Verilog flavour, excerpt) ---\n";
  let hdl = Codesign_rtl.Hdl_out.fsmd fsmd in
  String.split_on_char '\n' hdl
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter print_endline;
  Printf.printf "  ...\n\n";

  (* 4. remap the pipeline's filter stage into hardware *)
  let hw_net = Pn.remap net [ ("stage0", Pn.Hw) ] in
  let hw = Cosim.run_network hw_net in
  Printf.printf
    "Filter in hardware:     latency %6d cycles  (%.2fx, +%d area)\n"
    hw.Cosim.end_time
    (float_of_int sw.Cosim.end_time /. float_of_int hw.Cosim.end_time)
    hw.Cosim.hw_area;
  let out r =
    match r.Cosim.port_writes with (_, _, v) :: _ -> v | [] -> 0
  in
  Printf.printf "Functional check: software output %d, hardware output %d\n\n"
    (out sw) (out hw);

  (* 5. multi-threaded co-processor: fork/join across hardware workers *)
  let fj = Apps.fork_join ~workers:3 ~items:count ~work () in
  Printf.printf "Multi-threaded co-processor (3 hw workers, fork/join):\n";
  List.iter
    (fun (d : Coproc.design) ->
      Printf.printf
        "  %d thread(s): latency %6d cycles, %d crossing channels\n"
        d.Coproc.threads d.Coproc.latency d.Coproc.crossing_channels)
    (Coproc.sweep_threads ~max_threads:3 fj)
