(** Control/data-flow graphs — the fine-grain IR for high-level synthesis
    and ASIP instruction-set extension.

    A {!t} is a set of basic blocks connected by control edges.  Each
    block holds a pure data-flow graph of {!op} nodes; inter-block values
    flow through named variables ([Read]/[Write] nodes).  Loop blocks
    carry an expected trip count so downstream estimators can weight
    execution frequencies without profiling. *)

type opcode =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt  (** signed less-than, result 0/1 *)
  | Eq  (** equality, result 0/1 *)
  | Neg
  | Not
  | Const of int
  | Read of string  (** read a named variable or input port *)
  | Write of string  (** write a named variable or output port; 1 arg *)
  | Load of string  (** load [array.(arg0)] *)
  | Store of string  (** store [array.(arg0) <- arg1] *)

type op = {
  id : int;  (** dense within the block *)
  opcode : opcode;
  args : int list;  (** operand op ids, within the same block *)
}

type block = {
  label : string;
  ops : op list;  (** in dependence order: args refer to earlier ids *)
  trip : int;  (** expected executions per graph invocation (>= 0) *)
}

type t = {
  name : string;
  blocks : block list;
  ctrl : (string * string) list;  (** control-flow edges between labels *)
}

val make :
  ?name:string -> ?ctrl:(string * string) list -> block list -> t
(** Validates: labels unique; within each block, op ids dense [0..k-1] and
    args strictly refer to earlier ops with correct arity; control edges
    name existing labels.  @raise Invalid_argument otherwise. *)

val block_make : ?trip:int -> string -> op list -> block
(** [trip] defaults to 1. *)

val arity : opcode -> int
(** Number of operands each opcode consumes. *)

val is_arith : opcode -> bool
(** True for value-producing combinational operators (excludes
    [Const]/[Read]/[Write]/[Load]/[Store]). *)

val opcode_name : opcode -> string
(** Short mnemonic, e.g. ["mul"], ["ld"], ["const"]. *)

val find_block : t -> string -> block
(** @raise Not_found if no block has the label. *)

val dfg : block -> Graph_algo.t
(** Data-dependence graph of a block (edge producer -> consumer). *)

val op_mix : t -> (string * int) list
(** Trip-weighted operation counts over the whole graph, sorted by name —
    the operation-mix input to the sharing-aware hardware estimator. *)

val total_ops : t -> int
(** Trip-weighted dynamic operation count. *)

val block_latency : ?op_delay:(opcode -> int) -> block -> int
(** Critical-path latency of the block's DFG under a per-op delay model
    (default: every op takes 1). *)

val pp : Format.formatter -> t -> unit
