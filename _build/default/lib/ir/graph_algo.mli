(** Generic directed-graph algorithms over dense integer node ids.

    All graphs in the framework — task graphs, control/data-flow graphs,
    netlists — reduce to this representation for structural queries.
    Nodes are [0 .. n-1]; edges are ordered pairs.  The structure is
    immutable after creation. *)

type t
(** A directed graph with a fixed node count and edge set. *)

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph with [n] nodes.  Duplicate edges are
    kept (parallel edges are allowed); self-loops are allowed and make the
    graph cyclic.  @raise Invalid_argument if an endpoint is outside
    [0, n). *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int
(** Number of edges (counting parallel duplicates). *)

val succ : t -> int -> int list
(** Successors of a node, in insertion order. *)

val pred : t -> int -> int list
(** Predecessors of a node, in insertion order. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] is true iff at least one edge [u -> v] exists. *)

val topo_sort : t -> int list option
(** Kahn topological order, or [None] if the graph has a cycle.  Among
    ready nodes, smaller ids come first, so the order is deterministic. *)

val is_dag : t -> bool

val sources : t -> int list
(** Nodes with in-degree 0, ascending. *)

val sinks : t -> int list
(** Nodes with out-degree 0, ascending. *)

val longest_path : t -> weight:(int -> int) -> int array
(** [longest_path g ~weight] returns, for each node, the maximum
    node-weight sum over paths ending at that node (inclusive of the node
    itself).  Requires a DAG.  @raise Invalid_argument on cyclic input. *)

val critical_path : t -> weight:(int -> int) -> int list * int
(** [critical_path g ~weight] returns one maximum-weight source-to-sink
    path and its total weight.  Requires a DAG. *)

val reachable : t -> int -> bool array
(** Forward reachability set of a node (includes the node itself). *)

val ancestors : t -> int -> bool array
(** Backward reachability set of a node (includes the node itself). *)

val weakly_connected_components : t -> int list list
(** Components of the underlying undirected graph; each component's nodes
    ascend, and components are ordered by smallest member. *)

val transitive_closure : t -> bool array array
(** [closure.(u).(v)] iff a (possibly empty) path [u ->* v] exists;
    diagonal entries are [true]. *)

val all_pairs_longest : t -> weight:(int -> int) -> int array array
(** DAG all-pairs longest node-weighted path lengths; [min_int] where no
    path exists.  [result.(u).(v)] includes both endpoint weights. *)

val depth : t -> int array
(** For a DAG: number of edges on the longest path from any source to the
    node (sources have depth 0). *)

val dot : ?name:string -> ?label:(int -> string) -> t -> string
(** Graphviz rendering, for debugging and documentation. *)
