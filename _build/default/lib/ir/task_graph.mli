(** Coarse-grain task graphs — the co-synthesis and partitioning IR.

    A task graph is a DAG of tasks with per-implementation execution
    profiles and data-volume edges, plus an end-to-end deadline and an
    invocation period.  This is the representation consumed by the
    HW/SW partitioners ({!Codesign.Partition}), the heterogeneous
    multiprocessor co-synthesisers ({!Codesign.Cosynth}) and the cost
    models ({!Codesign.Cost}).

    Execution profiles carry both a software view (cycles on the host
    instruction-set processor, code bytes) and a hardware view (cycles in
    a dedicated implementation, standalone area, operation mix for
    sharing-aware estimation).  The six partitioning factors of the
    paper's §3.3 all derive from fields here: performance (cycles),
    implementation cost (area / bytes / sharing), modifiability
    ([modifiable]), nature of computation ([parallelism]), concurrency
    (graph shape) and communication (edge [words]). *)

type task = {
  id : int;  (** dense id, equal to the index in {!tasks} *)
  name : string;
  sw_cycles : int;  (** execution time on the host processor, cycles *)
  hw_cycles : int;  (** execution time in a dedicated HW implementation *)
  hw_area : int;  (** standalone area of a dedicated HW implementation *)
  sw_bytes : int;  (** code size when implemented in software *)
  parallelism : float;
      (** nature-of-computation affinity in [0,1]: 1.0 = highly parallel,
          strongly favours hardware *)
  modifiable : bool;
      (** true when the function is expected to change post-design and so
          favours a software implementation *)
  ops : (string * int) list;
      (** operation mix (e.g. [("mul", 4); ("add", 7)]) used by the
          sharing-aware incremental hardware estimator *)
}

type edge = {
  src : int;
  dst : int;
  words : int;  (** data volume transferred per invocation, in words *)
}

type t = {
  name : string;
  tasks : task array;
  edges : edge list;
  period : int;  (** invocation period, cycles; 0 = aperiodic *)
  deadline : int;  (** end-to-end latency constraint, cycles; 0 = none *)
}

val make :
  ?name:string -> ?period:int -> ?deadline:int -> task list -> edge list -> t
(** Builds and validates a task graph.
    @raise Invalid_argument if task ids are not dense [0..n-1] in order,
    an edge endpoint is out of range, an edge is a self-loop, or the edge
    relation is cyclic. *)

val task :
  id:int ->
  name:string ->
  sw_cycles:int ->
  hw_cycles:int ->
  hw_area:int ->
  ?sw_bytes:int ->
  ?parallelism:float ->
  ?modifiable:bool ->
  ?ops:(string * int) list ->
  unit ->
  task
(** Task constructor with sensible defaults: [sw_bytes] defaults to
    [sw_cycles * 2], [parallelism] to [0.5], [modifiable] to [false],
    [ops] to [[]]. *)

val n_tasks : t -> int
val graph : t -> Graph_algo.t

val succ : t -> int -> int list
val pred : t -> int -> int list

val in_edges : t -> int -> edge list
val out_edges : t -> int -> edge list

val topo_order : t -> int list
(** Topological order (always succeeds: validated at construction). *)

val sw_critical_path : t -> int
(** Critical-path latency with every task implemented in software and
    communication free (the all-software latency lower bound, ignoring
    processor contention). *)

val total_sw_cycles : t -> int
(** Sum of software cycles — the single-CPU sequential execution time. *)

val total_hw_area : t -> int
(** Sum of standalone hardware areas — the all-hardware area upper bound
    before sharing. *)

val comm_words : t -> int -> int -> int
(** Total words on edges between an ordered pair of tasks (0 if none). *)

val scale_deadline : t -> float -> t
(** [scale_deadline g f] sets the deadline to [f *. sw critical path]
    (rounded); used by workload generators to create feasible-but-tight
    constraints. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary (name, sizes, bounds). *)
