lib/ir/graph_algo.ml: Array Buffer Fun List Printf Queue
