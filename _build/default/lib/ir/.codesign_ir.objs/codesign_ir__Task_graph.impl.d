lib/ir/task_graph.ml: Array Format Graph_algo List Printf
