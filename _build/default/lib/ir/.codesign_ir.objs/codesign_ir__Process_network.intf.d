lib/ir/process_network.mli: Behavior Format Graph_algo
