lib/ir/cdfg.mli: Format Graph_algo
