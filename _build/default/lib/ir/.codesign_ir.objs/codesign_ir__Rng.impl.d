lib/ir/rng.ml: Array Int64 List Stdlib
