lib/ir/cdfg.ml: Array Format Graph_algo Hashtbl List Printf
