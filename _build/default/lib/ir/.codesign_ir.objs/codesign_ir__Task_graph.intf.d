lib/ir/task_graph.mli: Format Graph_algo
