lib/ir/process_network.ml: Array Behavior Format Graph_algo List Printf
