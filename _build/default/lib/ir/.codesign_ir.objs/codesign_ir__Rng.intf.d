lib/ir/rng.mli:
