lib/ir/behavior.ml: Array Cdfg Format Hashtbl List Option Printf String
