lib/ir/behavior.mli: Cdfg Format
