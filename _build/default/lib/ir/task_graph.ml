type task = {
  id : int;
  name : string;
  sw_cycles : int;
  hw_cycles : int;
  hw_area : int;
  sw_bytes : int;
  parallelism : float;
  modifiable : bool;
  ops : (string * int) list;
}

type edge = { src : int; dst : int; words : int }

type t = {
  name : string;
  tasks : task array;
  edges : edge list;
  period : int;
  deadline : int;
}

let task ~id ~name ~sw_cycles ~hw_cycles ~hw_area ?sw_bytes
    ?(parallelism = 0.5) ?(modifiable = false) ?(ops = []) () =
  let sw_bytes = match sw_bytes with Some b -> b | None -> sw_cycles * 2 in
  { id; name; sw_cycles; hw_cycles; hw_area; sw_bytes; parallelism;
    modifiable; ops }

let make ?(name = "tg") ?(period = 0) ?(deadline = 0) tasks edges =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  Array.iteri
    (fun i t ->
      if t.id <> i then
        invalid_arg
          (Printf.sprintf "Task_graph.make: task %s has id %d at index %d"
             t.name t.id i))
    tasks;
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Task_graph.make: edge endpoint out of range";
      if e.src = e.dst then invalid_arg "Task_graph.make: self-loop edge";
      if e.words < 0 then invalid_arg "Task_graph.make: negative edge volume")
    edges;
  let g =
    Graph_algo.create ~n ~edges:(List.map (fun e -> (e.src, e.dst)) edges)
  in
  if not (Graph_algo.is_dag g) then
    invalid_arg "Task_graph.make: edge relation is cyclic";
  { name; tasks; edges; period; deadline }

let n_tasks g = Array.length g.tasks

let graph g =
  Graph_algo.create ~n:(n_tasks g)
    ~edges:(List.map (fun e -> (e.src, e.dst)) g.edges)

let succ g i = Graph_algo.succ (graph g) i
let pred g i = Graph_algo.pred (graph g) i
let in_edges g i = List.filter (fun e -> e.dst = i) g.edges
let out_edges g i = List.filter (fun e -> e.src = i) g.edges

let topo_order g =
  match Graph_algo.topo_sort (graph g) with
  | Some o -> o
  | None -> assert false (* validated in make *)

let sw_critical_path g =
  if n_tasks g = 0 then 0
  else
    let _, w =
      Graph_algo.critical_path (graph g) ~weight:(fun i ->
          g.tasks.(i).sw_cycles)
    in
    w

let total_sw_cycles g =
  Array.fold_left (fun acc t -> acc + t.sw_cycles) 0 g.tasks

let total_hw_area g =
  Array.fold_left (fun acc t -> acc + t.hw_area) 0 g.tasks

let comm_words g u v =
  List.fold_left
    (fun acc e -> if e.src = u && e.dst = v then acc + e.words else acc)
    0 g.edges

let scale_deadline g f =
  let cp = float_of_int (sw_critical_path g) in
  { g with deadline = int_of_float (cp *. f +. 0.5) }

let pp fmt g =
  Format.fprintf fmt
    "@[<v>task graph %s: %d tasks, %d edges, period=%d deadline=%d@,\
     sw total=%d cycles, sw critical path=%d, hw area (standalone)=%d@]"
    g.name (n_tasks g) (List.length g.edges) g.period g.deadline
    (total_sw_cycles g) (sw_critical_path g) (total_hw_area g)
