type t = {
  n : int;
  succs : int list array; (* stored reversed at build, then re-reversed *)
  preds : int list array;
  edge_count : int;
}

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph_algo.create: negative node count";
  let succs = Array.make (max n 1) [] and preds = Array.make (max n 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph_algo.create: edge (%d,%d) outside [0,%d)" u v
             n);
      succs.(u) <- v :: succs.(u);
      preds.(v) <- u :: preds.(v))
    edges;
  for i = 0 to n - 1 do
    succs.(i) <- List.rev succs.(i);
    preds.(i) <- List.rev preds.(i)
  done;
  { n; succs; preds; edge_count = List.length edges }

let n g = g.n
let edge_count g = g.edge_count
let succ g u = g.succs.(u)
let pred g u = g.preds.(u)
let out_degree g u = List.length g.succs.(u)
let in_degree g u = List.length g.preds.(u)
let has_edge g u v = List.mem v g.succs.(u)

module Iheap = struct
  (* Minimal int min-heap for deterministic Kahn ordering. *)
  type h = { mutable a : int array; mutable len : int }

  let make () = { a = Array.make 16 0; len = 0 }

  let push h x =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) 0 in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      h.a.(p) > h.a.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && h.a.(l) < h.a.(!m) then m := l;
        if r < h.len && h.a.(r) < h.a.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

let topo_sort g =
  let indeg = Array.init g.n (fun i -> in_degree g i) in
  let heap = Iheap.make () in
  for i = 0 to g.n - 1 do
    if indeg.(i) = 0 then Iheap.push heap i
  done;
  let order = ref [] and count = ref 0 in
  let rec loop () =
    match Iheap.pop heap with
    | None -> ()
    | Some u ->
        order := u :: !order;
        incr count;
        List.iter
          (fun v ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then Iheap.push heap v)
          g.succs.(u);
        loop ()
  in
  loop ();
  if !count = g.n then Some (List.rev !order) else None

let is_dag g = topo_sort g <> None

let sources g =
  List.filter (fun i -> in_degree g i = 0) (List.init g.n Fun.id)

let sinks g = List.filter (fun i -> out_degree g i = 0) (List.init g.n Fun.id)

let require_topo g name =
  match topo_sort g with
  | Some o -> o
  | None -> invalid_arg (name ^ ": graph is cyclic")

let longest_path g ~weight =
  let order = require_topo g "Graph_algo.longest_path" in
  let dist = Array.make g.n 0 in
  List.iter
    (fun u ->
      let best_pred =
        List.fold_left (fun acc p -> max acc dist.(p)) 0 g.preds.(u)
      in
      dist.(u) <- best_pred + weight u)
    order;
  dist

let critical_path g ~weight =
  if g.n = 0 then ([], 0)
  else begin
    let dist = longest_path g ~weight in
    let last = ref 0 in
    for i = 1 to g.n - 1 do
      if dist.(i) > dist.(!last) then last := i
    done;
    (* Walk backwards: dist u = (max over preds of dist) + weight u, so the
       predecessor with maximal dist always lies on a realising path. *)
    let rec walk u acc =
      let acc = u :: acc in
      match g.preds.(u) with
      | [] -> acc
      | p0 :: rest ->
          let best =
            List.fold_left (fun b p -> if dist.(p) > dist.(b) then p else b)
              p0 rest
          in
          walk best acc
    in
    (walk !last [], dist.(!last))
  end

let bfs_mark adj start n =
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.push start q;
  seen.(start) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
      adj.(u)
  done;
  seen

let reachable g u = bfs_mark g.succs u g.n
let ancestors g u = bfs_mark g.preds u g.n

let weakly_connected_components g =
  let comp = Array.make g.n (-1) in
  let next = ref 0 in
  for i = 0 to g.n - 1 do
    if comp.(i) = -1 then begin
      let c = !next in
      incr next;
      let q = Queue.create () in
      Queue.push i q;
      comp.(i) <- c;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let visit v =
          if comp.(v) = -1 then begin
            comp.(v) <- c;
            Queue.push v q
          end
        in
        List.iter visit g.succs.(u);
        List.iter visit g.preds.(u)
      done
    end
  done;
  let buckets = Array.make !next [] in
  for i = g.n - 1 downto 0 do
    buckets.(comp.(i)) <- i :: buckets.(comp.(i))
  done;
  Array.to_list buckets

let transitive_closure g =
  let c = Array.init g.n (fun u -> bfs_mark g.succs u g.n) in
  c

let all_pairs_longest g ~weight =
  let order = require_topo g "Graph_algo.all_pairs_longest" in
  let d = Array.make_matrix g.n g.n min_int in
  for s = 0 to g.n - 1 do
    d.(s).(s) <- weight s;
    List.iter
      (fun u ->
        if d.(s).(u) <> min_int then
          List.iter
            (fun v ->
              let cand = d.(s).(u) + weight v in
              if cand > d.(s).(v) then d.(s).(v) <- cand)
            g.succs.(u))
      order
  done;
  d

let depth g =
  let order = require_topo g "Graph_algo.depth" in
  let d = Array.make g.n 0 in
  List.iter
    (fun u ->
      List.iter
        (fun p -> if d.(p) + 1 > d.(u) then d.(u) <- d.(p) + 1)
        g.preds.(u))
    order;
  d

let dot ?(name = "g") ?(label = string_of_int) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for i = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=%S];\n" i (label i))
  done;
  for u = 0 to g.n - 1 do
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
      g.succs.(u)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
