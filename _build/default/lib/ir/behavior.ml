type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Eq
  | Ne

type expr =
  | Int of int
  | Var of string
  | Idx of string * expr
  | Bin of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Ext of int * expr * expr * expr

type stmt =
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list * int
  | For of string * expr * expr * stmt list
  | PortOut of int * expr
  | PortIn of string * int
  | Send of string * expr
  | Recv of string * string

type proc = {
  name : string;
  params : string list;
  arrays : (string * int) list;
  results : string list;
  body : stmt list;
}

type io = {
  port_in : int -> int;
  port_out : int -> int -> unit;
  send : string -> int -> unit;
  recv : string -> int;
}

let null_io =
  {
    port_in = (fun _ -> 0);
    port_out = (fun _ _ -> ());
    send = (fun _ _ -> ());
    recv = (fun _ -> 0);
  }

let collecting_io () =
  let out = ref [] in
  ( {
      null_io with
      port_out = (fun p v -> out := (p, v) :: !out);
    },
    out )

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let eval_bin op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 31)
  | Shr -> a asr (b land 31)
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0

let clamp_index len i = if i < 0 then 0 else if i >= len then len - 1 else i

let no_ext ext _ _ _ =
  invalid_arg
    (Printf.sprintf "Behavior.run: no evaluator for extension opcode %d" ext)

let run ?(io = null_io) ?(ext = no_ext) ?(tick = fun () -> ())
    ?(fuel = 10_000_000) p bindings =
  let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let arrays : (string, int array) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (name, len) ->
      if len <= 0 then invalid_arg "Behavior.run: array of length <= 0";
      Hashtbl.replace arrays name (Array.make len 0))
    p.arrays;
  List.iter
    (fun v ->
      let value = try List.assoc v bindings with Not_found -> 0 in
      Hashtbl.replace vars v value)
    p.params;
  (* bindings may also pre-load array cells, written as "arr[3]" *)
  List.iter
    (fun (k, v) ->
      match String.index_opt k '[' with
      | None -> ()
      | Some i ->
          let name = String.sub k 0 i in
          let idx =
            int_of_string (String.sub k (i + 1) (String.length k - i - 2))
          in
          (match Hashtbl.find_opt arrays name with
          | Some a -> a.(clamp_index (Array.length a) idx) <- v
          | None -> invalid_arg ("Behavior.run: unknown array " ^ name)))
    bindings;
  let fuel = ref fuel in
  let get v = try Hashtbl.find vars v with Not_found -> 0 in
  let arr name =
    try Hashtbl.find arrays name
    with Not_found -> invalid_arg ("Behavior.run: unbound array " ^ name)
  in
  let rec eval = function
    | Int i -> i
    | Var v -> get v
    | Idx (a, i) ->
        let arr = arr a in
        arr.(clamp_index (Array.length arr) (eval i))
    | Bin (op, a, b) ->
        let a = eval a in
        let b = eval b in
        eval_bin op a b
    | Neg e -> -eval e
    | Not e -> if eval e = 0 then 1 else 0
    | Ext (op, acc, a, b) ->
        let acc = eval acc in
        let a = eval a in
        let b = eval b in
        ext op acc a b
  in
  let user_tick = tick in
  let tick () =
    user_tick ();
    decr fuel;
    if !fuel < 0 then invalid_arg ("Behavior.run: fuel exhausted in " ^ p.name)
  in
  let rec exec_stmt s =
    tick ();
    match s with
    | Assign (v, e) -> Hashtbl.replace vars v (eval e)
    | Store (a, i, e) ->
        let arr = arr a in
        let idx = clamp_index (Array.length arr) (eval i) in
        arr.(idx) <- eval e
    | If (c, t, e) -> if eval c <> 0 then exec_list t else exec_list e
    | While (c, body, _) ->
        while eval c <> 0 do
          tick ();
          exec_list body
        done
    | For (v, lo, hi, body) ->
        let lo = eval lo and hi = eval hi in
        let i = ref lo in
        while !i < hi do
          Hashtbl.replace vars v !i;
          exec_list body;
          (* allow body to adjust the induction variable, like C for *)
          i := get v + 1;
          tick ()
        done
    | PortOut (port, e) -> io.port_out port (eval e)
    | PortIn (v, port) -> Hashtbl.replace vars v (io.port_in port)
    | Send (ch, e) -> io.send ch (eval e)
    | Recv (v, ch) -> Hashtbl.replace vars v (io.recv ch)
  and exec_list l = List.iter exec_stmt l in
  exec_list p.body;
  List.map (fun v -> (v, get v)) p.results

(* ------------------------------------------------------------------ *)
(* Elaboration to CDFG                                                 *)
(* ------------------------------------------------------------------ *)

let cdfg_binop : binop -> Cdfg.opcode option = function
  | Add -> Some Cdfg.Add
  | Sub -> Some Cdfg.Sub
  | Mul -> Some Cdfg.Mul
  | Div -> Some Cdfg.Div
  | Rem -> Some Cdfg.Rem
  | And -> Some Cdfg.And
  | Or -> Some Cdfg.Or
  | Xor -> Some Cdfg.Xor
  | Shl -> Some Cdfg.Shl
  | Shr -> Some Cdfg.Shr
  | Lt -> Some Cdfg.Lt
  | Eq -> Some Cdfg.Eq
  | Le | Ne -> None (* lowered below *)

(* A builder for one CDFG block, with local value numbering: a [Read] of
   a variable already written (or read) in the same block reuses the
   existing value id, so intra-block dataflow through variables is
   explicit in the DFG.  Names containing ':' (ports, channels) are I/O
   and never numbered — every access is a fresh side effect. *)
module Bb = struct
  type t = {
    mutable ops : Cdfg.op list;
    mutable next : int;
    vals : (string, int) Hashtbl.t;
  }

  let create () = { ops = []; next = 0; vals = Hashtbl.create 8 }

  let emit b opcode args =
    let id = b.next in
    b.next <- id + 1;
    b.ops <- { Cdfg.id; opcode; args } :: b.ops;
    id

  let is_io name = String.contains name ':'

  let read_var b name =
    if is_io name then emit b (Cdfg.Read name) []
    else
      match Hashtbl.find_opt b.vals name with
      | Some id -> id
      | None ->
          let id = emit b (Cdfg.Read name) [] in
          Hashtbl.replace b.vals name id;
          id

  let write_var b name value =
    let id = emit b (Cdfg.Write name) [ value ] in
    if not (is_io name) then Hashtbl.replace b.vals name value;
    id

  let finish b ~label ~trip = Cdfg.block_make ~trip label (List.rev b.ops)
end

let elaborate p =
  let blocks = ref [] in
  let ctrl = ref [] in
  let counter = ref 0 in
  let fresh_label prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let rec const_eval = function
    | Int i -> Some i
    | Neg e -> Option.map (fun v -> -v) (const_eval e)
    | Bin (op, a, b) -> (
        match (const_eval a, const_eval b) with
        | Some a, Some b -> Some (eval_bin op a b)
        | _ -> None)
    | _ -> None
  in
  let rec emit_expr bb = function
    | Int i -> Bb.emit bb (Cdfg.Const i) []
    | Ext _ ->
        invalid_arg
          "Behavior.elaborate: Ext nodes are a software-path rewrite and \
           have no CDFG form"
    | Var v -> Bb.read_var bb v
    | Idx (a, i) ->
        let i = emit_expr bb i in
        Bb.emit bb (Cdfg.Load a) [ i ]
    | Neg e ->
        let e = emit_expr bb e in
        Bb.emit bb Cdfg.Neg [ e ]
    | Not e ->
        let e = emit_expr bb e in
        Bb.emit bb Cdfg.Not [ e ]
    | Bin (op, a, b) -> (
        let ea = emit_expr bb a in
        let eb = emit_expr bb b in
        match cdfg_binop op with
        | Some oc -> Bb.emit bb oc [ ea; eb ]
        | None -> (
            match op with
            | Le ->
                (* a <= b  ==  not (b < a) *)
                let lt = Bb.emit bb Cdfg.Lt [ eb; ea ] in
                Bb.emit bb Cdfg.Not [ lt ]
            | Ne ->
                let eq = Bb.emit bb Cdfg.Eq [ ea; eb ] in
                Bb.emit bb Cdfg.Not [ eq ]
            | _ -> assert false))
  in
  (* [emit_region label trip stmts] lowers a statement list into one or
     more blocks; straight-line statements accumulate into a current
     builder which is flushed whenever a nested region begins. *)
  let rec emit_region label trip stmts =
    let bb = ref (Bb.create ()) in
    let seg = ref 0 in
    let current_label () =
      if !seg = 0 then label else Printf.sprintf "%s.%d" label !seg
    in
    let flush () =
      let b = Bb.finish !bb ~label:(current_label ()) ~trip in
      if b.Cdfg.ops <> [] then begin
        blocks := b :: !blocks;
        incr seg
      end;
      bb := Bb.create ()
    in
    let last_label = ref label in
    List.iter
      (fun s ->
        match s with
        | Assign (v, e) ->
            let e = emit_expr !bb e in
            ignore (Bb.write_var !bb v e)
        | Store (a, i, e) ->
            let i = emit_expr !bb i in
            let e = emit_expr !bb e in
            ignore (Bb.emit !bb (Cdfg.Store a) [ i; e ])
        | PortOut (port, e) ->
            let e = emit_expr !bb e in
            ignore
              (Bb.write_var !bb (Printf.sprintf "port:%d" port) e)
        | PortIn (v, port) ->
            let r =
              Bb.read_var !bb (Printf.sprintf "port:%d" port)
            in
            ignore (Bb.write_var !bb v r)
        | Send (ch, e) ->
            let e = emit_expr !bb e in
            ignore (Bb.write_var !bb ("chan:" ^ ch) e)
        | Recv (v, ch) ->
            let r = Bb.read_var !bb ("chan:" ^ ch) in
            ignore (Bb.write_var !bb v r)
        | If (c, t, e) ->
            (* condition evaluated in the current block *)
            let ec = emit_expr !bb c in
            ignore (Bb.write_var !bb "%branch" ec);
            let before = current_label () in
            flush ();
            let lt = fresh_label (label ^ ".then") in
            let le = fresh_label (label ^ ".else") in
            if t <> [] then begin
              emit_region lt trip t;
              ctrl := (before, lt) :: !ctrl
            end;
            if e <> [] then begin
              emit_region le trip e;
              ctrl := (before, le) :: !ctrl
            end;
            last_label := before
        | While (c, body, expected) ->
            let ec = emit_expr !bb c in
            ignore (Bb.write_var !bb "%branch" ec);
            let before = current_label () in
            flush ();
            let lb = fresh_label (label ^ ".while") in
            emit_region lb (trip * max expected 0) body;
            ctrl := (before, lb) :: (lb, before) :: !ctrl;
            last_label := before
        | For (v, lo, hi, body) ->
            let elo = emit_expr !bb lo in
            ignore (Bb.write_var !bb v elo);
            let before = current_label () in
            flush ();
            let count =
              match (const_eval lo, const_eval hi) with
              | Some l, Some h -> max (h - l) 0
              | _ -> 8 (* default expected trip for dynamic bounds *)
            in
            let lb = fresh_label (label ^ ".for") in
            emit_region lb (trip * count) body;
            ctrl := (before, lb) :: (lb, before) :: !ctrl;
            last_label := before)
      stmts;
    flush ();
    ignore !last_label
  in
  emit_region "entry" 1 p.body;
  let blocks = List.rev !blocks in
  let blocks =
    if blocks = [] then [ Cdfg.block_make "entry" [] ] else blocks
  in
  (* keep only control edges whose endpoints survived (empty blocks are
     dropped by flush) *)
  let labels = List.map (fun b -> b.Cdfg.label) blocks in
  let ctrl =
    List.filter (fun (a, b) -> List.mem a labels && List.mem b labels) !ctrl
  in
  Cdfg.make ~name:p.name ~ctrl blocks

let rec stmt_count s =
  match s with
  | If (_, t, e) -> 1 + stmts_count t + stmts_count e
  | While (_, b, _) | For (_, _, _, b) -> 1 + stmts_count b
  | _ -> 1

and stmts_count l = List.fold_left (fun acc s -> acc + stmt_count s) 0 l

let static_stmts p = stmts_count p.body

let vars_of p =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  in
  List.iter add p.params;
  let rec expr = function
    | Int _ -> ()
    | Var v -> add v
    | Idx (_, i) -> expr i
    | Bin (_, a, b) ->
        expr a;
        expr b
    | Neg e | Not e -> expr e
    | Ext (_, acc, a, b) ->
        expr acc;
        expr a;
        expr b
  in
  let rec stmt = function
    | Assign (v, e) ->
        add v;
        expr e
    | Store (_, i, e) ->
        expr i;
        expr e
    | If (c, t, f) ->
        expr c;
        List.iter stmt t;
        List.iter stmt f
    | While (c, b, _) ->
        expr c;
        List.iter stmt b
    | For (v, lo, hi, b) ->
        add v;
        expr lo;
        expr hi;
        List.iter stmt b
    | PortOut (_, e) -> expr e
    | PortIn (v, _) -> add v
    | Send (_, e) -> expr e
    | Recv (v, _) -> add v
  in
  List.iter stmt p.body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Pretty printer                                                      *)
(* ------------------------------------------------------------------ *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="
  | Ne -> "!="

let rec pp_expr fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Var v -> Format.fprintf fmt "%s" v
  | Idx (a, i) -> Format.fprintf fmt "%s[%a]" a pp_expr i
  | Bin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e
  | Not e -> Format.fprintf fmt "(!%a)" pp_expr e
  | Ext (op, acc, a, b) ->
      Format.fprintf fmt "ext%d(%a, %a, %a)" op pp_expr acc pp_expr a
        pp_expr b

let rec pp_stmt fmt = function
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v pp_expr e
  | Store (a, i, e) ->
      Format.fprintf fmt "%s[%a] = %a;" a pp_expr i pp_expr e
  | If (c, t, []) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_stmts t
  | If (c, t, e) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_stmts t pp_stmts e
  | While (c, b, _) ->
      Format.fprintf fmt "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_stmts b
  | For (v, lo, hi, b) ->
      Format.fprintf fmt "@[<v 2>for (%s = %a; %s < %a; %s++) {@,%a@]@,}" v
        pp_expr lo v pp_expr hi v pp_stmts b
  | PortOut (p, e) -> Format.fprintf fmt "out(%d, %a);" p pp_expr e
  | PortIn (v, p) -> Format.fprintf fmt "%s = in(%d);" v p
  | Send (ch, e) -> Format.fprintf fmt "send(%s, %a);" ch pp_expr e
  | Recv (v, ch) -> Format.fprintf fmt "%s = recv(%s);" v ch

and pp_stmts fmt l =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt l

let pp fmt p =
  Format.fprintf fmt "@[<v 2>proc %s(%s) {@,%a@]@,}" p.name
    (String.concat ", " p.params)
    pp_stmts p.body
