type opcode =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Eq
  | Neg
  | Not
  | Const of int
  | Read of string
  | Write of string
  | Load of string
  | Store of string

type op = { id : int; opcode : opcode; args : int list }
type block = { label : string; ops : op list; trip : int }

type t = {
  name : string;
  blocks : block list;
  ctrl : (string * string) list;
}

let arity = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Lt | Eq -> 2
  | Neg | Not | Write _ | Load _ -> 1
  | Store _ -> 2
  | Const _ | Read _ -> 0

let is_arith = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Lt | Eq | Neg
  | Not ->
      true
  | Const _ | Read _ | Write _ | Load _ | Store _ -> false

let opcode_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Eq -> "eq"
  | Neg -> "neg"
  | Not -> "not"
  | Const _ -> "const"
  | Read _ -> "read"
  | Write _ -> "write"
  | Load _ -> "ld"
  | Store _ -> "st"

let block_make ?(trip = 1) label ops = { label; ops; trip }

let validate_block b =
  List.iteri
    (fun i op ->
      if op.id <> i then
        invalid_arg
          (Printf.sprintf "Cdfg: block %s op id %d at index %d" b.label op.id
             i);
      if List.length op.args <> arity op.opcode then
        invalid_arg
          (Printf.sprintf "Cdfg: block %s op %d (%s): bad arity" b.label i
             (opcode_name op.opcode));
      List.iter
        (fun a ->
          if a < 0 || a >= i then
            invalid_arg
              (Printf.sprintf
                 "Cdfg: block %s op %d refers to arg %d (not earlier)"
                 b.label i a))
        op.args)
    b.ops;
  if b.trip < 0 then invalid_arg "Cdfg: negative trip count"

let make ?(name = "cdfg") ?(ctrl = []) blocks =
  let labels = List.map (fun b -> b.label) blocks in
  let sorted = List.sort_uniq compare labels in
  if List.length sorted <> List.length labels then
    invalid_arg "Cdfg.make: duplicate block labels";
  List.iter validate_block blocks;
  List.iter
    (fun (a, b) ->
      if not (List.mem a labels && List.mem b labels) then
        invalid_arg
          (Printf.sprintf "Cdfg.make: control edge %s -> %s names a missing \
                           block" a b))
    ctrl;
  { name; blocks; ctrl }

let find_block g label = List.find (fun b -> b.label = label) g.blocks

let dfg b =
  let n = List.length b.ops in
  let edges =
    List.concat_map (fun op -> List.map (fun a -> (a, op.id)) op.args) b.ops
  in
  Graph_algo.create ~n ~edges

let op_mix g =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun op ->
          if is_arith op.opcode then begin
            let k = opcode_name op.opcode in
            let cur = try Hashtbl.find tbl k with Not_found -> 0 in
            Hashtbl.replace tbl k (cur + b.trip)
          end)
        b.ops)
    g.blocks;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_ops g =
  List.fold_left (fun acc b -> acc + (b.trip * List.length b.ops)) 0 g.blocks

let block_latency ?(op_delay = fun _ -> 1) b =
  if b.ops = [] then 0
  else
    let g = dfg b in
    let delays = Array.of_list (List.map (fun op -> op_delay op.opcode) b.ops) in
    let _, w = Graph_algo.critical_path g ~weight:(fun i -> delays.(i)) in
    w

let pp fmt g =
  Format.fprintf fmt "@[<v>cdfg %s: %d blocks, %d static ops, %d dynamic ops@]"
    g.name (List.length g.blocks)
    (List.fold_left (fun a b -> a + List.length b.ops) 0 g.blocks)
    (total_ops g)
