type aluop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt
  | Seq

type cond = Eq | Ne | Lt | Ge

type 'lbl instr =
  | Alu of aluop * int * int * int
  | Alui of aluop * int * int * int
  | Li of int * int
  | Lw of int * int * int
  | Sw of int * int * int
  | B of cond * int * int * 'lbl
  | J of 'lbl
  | Jal of int * 'lbl
  | Jr of int
  | In of int * int
  | Out of int * int
  | Custom of int * int * int * int
  | Ei
  | Di
  | Rti
  | Nop
  | Halt

type program = int instr array

let n_regs = 32
let instr_bytes = 4
let code_bytes p = Array.length p * instr_bytes

let default_latency = function
  | Alu (Mul, _, _, _) | Alui (Mul, _, _, _) -> 3
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> 8
  | Alu _ | Alui _ | Li _ -> 1
  | Lw _ | Sw _ -> 2
  | B _ | J _ | Jal _ | Jr _ -> 1
  | In _ | Out _ -> 1
  | Custom _ -> 1
  | Ei | Di | Rti -> 1
  | Nop | Halt -> 1

let map_target f = function
  | B (c, a, b, l) -> B (c, a, b, f l)
  | J l -> J (f l)
  | Jal (r, l) -> Jal (r, f l)
  | Alu (o, a, b, c) -> Alu (o, a, b, c)
  | Alui (o, a, b, i) -> Alui (o, a, b, i)
  | Li (r, i) -> Li (r, i)
  | Lw (a, b, o) -> Lw (a, b, o)
  | Sw (a, b, o) -> Sw (a, b, o)
  | Jr r -> Jr r
  | In (r, p) -> In (r, p)
  | Out (p, r) -> Out (p, r)
  | Custom (e, a, b, c) -> Custom (e, a, b, c)
  | Ei -> Ei
  | Di -> Di
  | Rti -> Rti
  | Nop -> Nop
  | Halt -> Halt

let aluop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"
  | Seq -> "seq"

let cond_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge"

let mnemonic = function
  | Alu (op, _, _, _) -> aluop_name op
  | Alui (op, _, _, _) -> aluop_name op ^ "i"
  | Li _ -> "li"
  | Lw _ -> "lw"
  | Sw _ -> "sw"
  | B (c, _, _, _) -> "b." ^ cond_name c
  | J _ -> "j"
  | Jal _ -> "jal"
  | Jr _ -> "jr"
  | In _ -> "in"
  | Out _ -> "out"
  | Custom (e, _, _, _) -> Printf.sprintf "cust%d" e
  | Ei -> "ei"
  | Di -> "di"
  | Rti -> "rti"
  | Nop -> "nop"
  | Halt -> "halt"

let pp ~target fmt i =
  let f = Format.fprintf in
  match i with
  | Alu (op, d, a, b) -> f fmt "%s r%d, r%d, r%d" (aluop_name op) d a b
  | Alui (op, d, a, imm) -> f fmt "%si r%d, r%d, %d" (aluop_name op) d a imm
  | Li (d, imm) -> f fmt "li r%d, %d" d imm
  | Lw (d, a, off) -> f fmt "lw r%d, %d(r%d)" d off a
  | Sw (s, a, off) -> f fmt "sw r%d, %d(r%d)" s off a
  | B (c, a, b, l) -> f fmt "b.%s r%d, r%d, %s" (cond_name c) a b (target l)
  | J l -> f fmt "j %s" (target l)
  | Jal (d, l) -> f fmt "jal r%d, %s" d (target l)
  | Jr r -> f fmt "jr r%d" r
  | In (d, p) -> f fmt "in r%d, %d" d p
  | Out (p, s) -> f fmt "out %d, r%d" p s
  | Custom (e, d, a, b) -> f fmt "cust%d r%d, r%d, r%d" e d a b
  | Ei -> f fmt "ei"
  | Di -> f fmt "di"
  | Rti -> f fmt "rti"
  | Nop -> f fmt "nop"
  | Halt -> f fmt "halt"

let check_reg r =
  if r < 0 || r >= n_regs then
    invalid_arg (Printf.sprintf "Isa: register r%d out of range" r)

let validate = function
  | Alu (_, d, a, b) | Custom (_, d, a, b) ->
      check_reg d;
      check_reg a;
      check_reg b
  | Alui (_, d, a, _) | Lw (d, a, _) | Sw (d, a, _) ->
      check_reg d;
      check_reg a
  | Li (d, _) | In (d, _) | Out (_, d) | Jal (d, _) | Jr d -> check_reg d
  | B (_, a, b, _) ->
      check_reg a;
      check_reg b
  | J _ | Ei | Di | Rti | Nop | Halt -> ()
