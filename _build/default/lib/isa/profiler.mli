(** Execution profiling for the ISS — the analysis front-end of
    profile-driven HW/SW partitioning (the paper's §3.3 "performance
    requirements" factor; cf. COSYMA-style hot-spot extraction [17]).

    Attach a profiler to a CPU before running; it accumulates cycles per
    program counter and aggregates them by the labelled regions of the
    assembled image. *)

type t

val attach : Cpu.t -> Asm.image -> t
(** Installs a retirement callback on the CPU.  Only one profiler (or
    other retirement consumer) can be attached at a time. *)

val total_cycles : t -> int

val cycles_at : t -> int -> int
(** Cycles attributed to one instruction index. *)

val by_label : t -> (string * int) list
(** Cycles aggregated by covering label, sorted by descending cycles;
    instructions before the first label aggregate under ["<entry>"]. *)

val hot_regions : ?top:int -> t -> (string * int * float) list
(** The [top] (default 5) hottest labelled regions as
    (label, cycles, fraction of total). *)

val pp : Format.formatter -> t -> unit
