type item = Label of string | Ins of string Isa.instr
type image = { code : Isa.program; symbols : (string * int) list }

let assemble items =
  let tbl = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (function
      | Label l ->
          if Hashtbl.mem tbl l then
            invalid_arg ("Asm.assemble: duplicate label " ^ l);
          Hashtbl.replace tbl l !idx
      | Ins _ -> incr idx)
    items;
  let resolve l =
    match Hashtbl.find_opt tbl l with
    | Some i -> i
    | None -> invalid_arg ("Asm.assemble: undefined label " ^ l)
  in
  let code =
    List.filter_map
      (function
        | Label _ -> None
        | Ins i ->
            Isa.validate i;
            Some (Isa.map_target resolve i))
      items
    |> Array.of_list
  in
  let symbols =
    Hashtbl.fold (fun l i acc -> (l, i) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  { code; symbols }

let label_of img idx =
  List.fold_left
    (fun acc (l, i) -> if i <= idx then Some l else acc)
    None img.symbols

let size_bytes items =
  Isa.instr_bytes
  * List.length (List.filter (function Ins _ -> true | _ -> false) items)

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let print items =
  let buf = Buffer.create 256 in
  List.iter
    (function
      | Label l -> Buffer.add_string buf (l ^ ":\n")
      | Ins i ->
          Buffer.add_string buf "  ";
          Buffer.add_string buf
            (Format.asprintf "%a" (Isa.pp ~target:Fun.id) i);
          Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let aluops =
  [
    ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("div", Isa.Div);
    ("rem", Isa.Rem); ("and", Isa.And); ("or", Isa.Or); ("xor", Isa.Xor);
    ("shl", Isa.Shl); ("shr", Isa.Shr); ("slt", Isa.Slt); ("seq", Isa.Seq);
  ]

let conds =
  [ ("eq", Isa.Eq); ("ne", Isa.Ne); ("lt", Isa.Lt); ("ge", Isa.Ge) ]

exception Syntax of string

let parse_reg tok =
  let tok = String.trim tok in
  if String.length tok < 2 || tok.[0] <> 'r' then
    raise (Syntax ("expected register, got " ^ tok))
  else
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some r when r >= 0 && r < Isa.n_regs -> r
    | _ -> raise (Syntax ("bad register " ^ tok))

let parse_int tok =
  match int_of_string_opt (String.trim tok) with
  | Some i -> i
  | None -> raise (Syntax ("expected integer, got " ^ tok))

(* "8(r5)" -> (offset, reg) *)
let parse_mem tok =
  let tok = String.trim tok in
  match String.index_opt tok '(' with
  | Some i when tok.[String.length tok - 1] = ')' ->
      let off = parse_int (String.sub tok 0 i) in
      let reg =
        parse_reg (String.sub tok (i + 1) (String.length tok - i - 2))
      in
      (off, reg)
  | _ -> raise (Syntax ("expected off(reg), got " ^ tok))

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun t -> t <> "")

let parse_instr mnem operands : string Isa.instr =
  let ops = split_operands operands in
  let nth i =
    match List.nth_opt ops i with
    | Some t -> t
    | None -> raise (Syntax ("missing operand " ^ string_of_int (i + 1)))
  in
  let arity n =
    if List.length ops <> n then
      raise
        (Syntax
           (Printf.sprintf "%s expects %d operands, got %d" mnem n
              (List.length ops)))
  in
  match mnem with
  | "li" ->
      arity 2;
      Isa.Li (parse_reg (nth 0), parse_int (nth 1))
  | "lw" ->
      arity 2;
      let off, base = parse_mem (nth 1) in
      Isa.Lw (parse_reg (nth 0), base, off)
  | "sw" ->
      arity 2;
      let off, base = parse_mem (nth 1) in
      Isa.Sw (parse_reg (nth 0), base, off)
  | "j" ->
      arity 1;
      Isa.J (nth 0)
  | "jal" ->
      arity 2;
      Isa.Jal (parse_reg (nth 0), nth 1)
  | "jr" ->
      arity 1;
      Isa.Jr (parse_reg (nth 0))
  | "in" ->
      arity 2;
      Isa.In (parse_reg (nth 0), parse_int (nth 1))
  | "out" ->
      arity 2;
      Isa.Out (parse_int (nth 0), parse_reg (nth 1))
  | "ei" ->
      arity 0;
      Isa.Ei
  | "di" ->
      arity 0;
      Isa.Di
  | "rti" ->
      arity 0;
      Isa.Rti
  | "nop" ->
      arity 0;
      Isa.Nop
  | "halt" ->
      arity 0;
      Isa.Halt
  | _ -> (
      (* b.<cond> *)
      if String.length mnem > 2 && String.sub mnem 0 2 = "b." then begin
        let c =
          match List.assoc_opt (String.sub mnem 2 (String.length mnem - 2)) conds with
          | Some c -> c
          | None -> raise (Syntax ("unknown condition in " ^ mnem))
        in
        arity 3;
        Isa.B (c, parse_reg (nth 0), parse_reg (nth 1), nth 2)
      end
      else if String.length mnem > 4 && String.sub mnem 0 4 = "cust" then begin
        let e =
          match int_of_string_opt (String.sub mnem 4 (String.length mnem - 4)) with
          | Some e -> e
          | None -> raise (Syntax ("bad custom opcode " ^ mnem))
        in
        arity 3;
        Isa.Custom (e, parse_reg (nth 0), parse_reg (nth 1), parse_reg (nth 2))
      end
      else
        (* ALU register or immediate form *)
        let is_imm = mnem.[String.length mnem - 1] = 'i' in
        let base =
          if is_imm then String.sub mnem 0 (String.length mnem - 1) else mnem
        in
        match List.assoc_opt base aluops with
        | None -> raise (Syntax ("unknown mnemonic " ^ mnem))
        | Some op ->
            arity 3;
            if is_imm then
              Isa.Alui (op, parse_reg (nth 0), parse_reg (nth 1),
                        parse_int (nth 2))
            else
              Isa.Alu (op, parse_reg (nth 0), parse_reg (nth 1),
                       parse_reg (nth 2)))

let strip_comment line =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '#' line)

let parse text =
  let items = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      let line = String.trim (strip_comment line) in
      if line <> "" then begin
        try
          (* optional leading "label:" *)
          let rest =
            match String.index_opt line ':' with
            | Some i
              when String.for_all
                     (fun c ->
                       c = '_' || c = '.'
                       || (c >= 'a' && c <= 'z')
                       || (c >= 'A' && c <= 'Z')
                       || (c >= '0' && c <= '9'))
                     (String.sub line 0 i) ->
                items := Label (String.sub line 0 i) :: !items;
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
            | _ -> line
          in
          if rest <> "" then begin
            let mnem, operands =
              match String.index_opt rest ' ' with
              | Some i ->
                  ( String.sub rest 0 i,
                    String.sub rest (i + 1) (String.length rest - i - 1) )
              | None -> (rest, "")
            in
            items := Ins (parse_instr (String.lowercase_ascii mnem) operands)
                     :: !items
          end
        with Syntax msg ->
          invalid_arg
            (Printf.sprintf "Asm.parse: line %d: %s" (lineno + 1) msg)
      end)
    lines;
  List.rev !items
