lib/isa/codegen.ml: Asm Codesign_ir Cpu Isa List Printf String
