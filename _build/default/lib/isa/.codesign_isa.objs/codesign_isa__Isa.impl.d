lib/isa/isa.ml: Array Format Printf
