lib/isa/asm.ml: Array Buffer Format Fun Hashtbl Isa List Printf String
