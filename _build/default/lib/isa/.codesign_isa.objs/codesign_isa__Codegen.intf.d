lib/isa/codegen.mli: Asm Codesign_ir Cpu
