lib/isa/cpu.ml: Array Isa Printf
