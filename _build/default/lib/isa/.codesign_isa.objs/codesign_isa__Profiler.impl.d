lib/isa/profiler.ml: Array Asm Cpu Format Hashtbl List
