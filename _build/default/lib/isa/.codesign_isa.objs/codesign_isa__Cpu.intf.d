lib/isa/cpu.mli: Isa
