lib/isa/profiler.mli: Asm Cpu Format
