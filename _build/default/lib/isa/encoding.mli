(** Binary encoding of the instruction set.

    A fixed 32-bit format (fields from the MSB down):

    {v
    [31:27] opcode   (5 bits)
    [26]    ext      (immediate continues in the next word)
    [25:21] rd       (also rs2 for stores, cond for branches)
    [20:16] rs1
    [15:11] rs2      (also the ALU-op selector for Alui)
    [10:0]  imm11    (signed short immediate / ALU funct / ext opcode)
    v}

    Instructions whose immediate does not fit the 11-bit signed field —
    large [Li] constants, absolute offsets, branch targets — are encoded
    as a two-word pair: the first word carries the opcode, registers and
    the immediate's sign with the [ext] flag (bit 26) set; the second
    word is the 32-bit magnitude, giving a 33-bit signed immediate
    range.  {!encode}/{!decode} are exact inverses on every valid
    instruction, which the test suite checks by property.

    The encoder exists for realism of code-size accounting
    ({!encoded_words}) and for the examples that dump memory images;
    the ISS executes the structured form directly. *)

val encode : int Isa.instr -> int32 list
(** One or two words.  @raise Invalid_argument on a register out of
    range (via {!Isa.validate}). *)

val decode : int32 list -> int Isa.instr * int32 list
(** Decodes one instruction from the stream, returning the remainder.
    @raise Invalid_argument on an unknown opcode or truncated pair. *)

val encode_program : Isa.program -> int32 array
val decode_program : int32 array -> Isa.program

val encoded_words : int Isa.instr -> int
(** 1 or 2 — without building the encoding. *)

val program_bytes : Isa.program -> int
(** Exact encoded size in bytes (4 per word); refines the fixed
    {!Isa.code_bytes} approximation. *)
