(** The host instruction set — a small 32-register RISC machine.

    This plays the role of the "microprocessor type and netlist of gates"
    of the paper's Type I systems and of the instruction-set processor in
    its Type II systems.  The set is deliberately conventional (ALU,
    load/store, branches, port I/O) with one co-design hook: a bank of
    {!Custom} opcodes whose semantics and latency are supplied at
    simulation time — the extension point exploited by the ASIP and
    special-purpose-functional-unit experiments (§4.3/§4.4).

    Instructions are polymorphic in their branch-target type: assembly
    uses [string Isa.instr] (symbolic labels), executable programs use
    [int Isa.instr] (absolute instruction indices).

    Register conventions: [r0] reads as zero (writes ignored); all other
    registers are general purpose.  The code generator uses r1-r7 for
    variable staging and r8-r27 as its expression stack. *)

type aluop =
  | Add
  | Sub
  | Mul
  | Div  (** division by zero yields 0 *)
  | Rem  (** remainder by zero yields 0 *)
  | And
  | Or
  | Xor
  | Shl  (** shift amount taken mod 32 *)
  | Shr  (** arithmetic right shift, amount mod 32 *)
  | Slt  (** set if less than (signed), 0/1 *)
  | Seq  (** set if equal, 0/1 *)

type cond =
  | Eq
  | Ne
  | Lt  (** signed *)
  | Ge  (** signed *)

type 'lbl instr =
  | Alu of aluop * int * int * int  (** [Alu (op, rd, rs1, rs2)] *)
  | Alui of aluop * int * int * int  (** [Alui (op, rd, rs1, imm)] *)
  | Li of int * int  (** [Li (rd, imm)] *)
  | Lw of int * int * int  (** [Lw (rd, rs, off)]: rd <- mem.(rs+off) *)
  | Sw of int * int * int  (** [Sw (rs2, rs1, off)]: mem.(rs1+off) <- rs2 *)
  | B of cond * int * int * 'lbl  (** branch if cond(rs1, rs2) *)
  | J of 'lbl
  | Jal of int * 'lbl  (** rd <- return index; jump *)
  | Jr of int
  | In of int * int  (** [In (rd, port)] *)
  | Out of int * int  (** [Out (port, rs)] *)
  | Custom of int * int * int * int
      (** [Custom (ext, rd, rs1, rs2)] — application-specific opcode *)
  | Ei  (** enable interrupts *)
  | Di  (** disable interrupts *)
  | Rti  (** return from interrupt *)
  | Nop
  | Halt

type program = int instr array
(** An executable image: branch targets are instruction indices. *)

val n_regs : int
(** 32. *)

val instr_bytes : int
(** Encoded size of one instruction (4), for code-size metrics. *)

val code_bytes : program -> int

(** Default latency model, in cycles: ALU/branch/jump/moves 1, [Mul] 3,
    [Div]/[Rem] 8, memory 2, port I/O 1 (plus whatever the attached
    device model adds), [Custom] 1 unless overridden in the CPU. *)
val default_latency : 'a instr -> int

val map_target : ('a -> 'b) -> 'a instr -> 'b instr
(** Rewrites branch targets (used by the assembler). *)

val mnemonic : 'a instr -> string
(** Opcode mnemonic without operands, e.g. ["add"], ["b.lt"]. *)

val pp : target:('lbl -> string) -> Format.formatter -> 'lbl instr -> unit
(** Full textual form, e.g. [add r3, r1, r2]. *)

val validate : 'a instr -> unit
(** Checks register indices are in range.
    @raise Invalid_argument otherwise. *)
