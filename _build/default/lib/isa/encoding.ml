(* Field layout (MSB down):
     opcode [31:27]  ext [26]  rd [25:21]  rs1 [20:16]  rs2 [15:11]
     imm11  [10:0]  (signed)
   With ext=1 the immediate lives in a second raw word instead. *)

let op_alu = 0
let op_alui = 1
let op_li = 2
let op_lw = 3
let op_sw = 4
let op_b = 5
let op_j = 6
let op_jal = 7
let op_jr = 8
let op_in = 9
let op_out = 10
let op_custom = 11
let op_ei = 12
let op_di = 13
let op_rti = 14
let op_nop = 15
let op_halt = 16

let aluop_code = function
  | Isa.Add -> 0
  | Isa.Sub -> 1
  | Isa.Mul -> 2
  | Isa.Div -> 3
  | Isa.Rem -> 4
  | Isa.And -> 5
  | Isa.Or -> 6
  | Isa.Xor -> 7
  | Isa.Shl -> 8
  | Isa.Shr -> 9
  | Isa.Slt -> 10
  | Isa.Seq -> 11

let aluop_of_code = function
  | 0 -> Isa.Add
  | 1 -> Isa.Sub
  | 2 -> Isa.Mul
  | 3 -> Isa.Div
  | 4 -> Isa.Rem
  | 5 -> Isa.And
  | 6 -> Isa.Or
  | 7 -> Isa.Xor
  | 8 -> Isa.Shl
  | 9 -> Isa.Shr
  | 10 -> Isa.Slt
  | 11 -> Isa.Seq
  | c -> invalid_arg (Printf.sprintf "Encoding: bad aluop code %d" c)

let cond_code = function Isa.Eq -> 0 | Isa.Ne -> 1 | Isa.Lt -> 2 | Isa.Ge -> 3

let cond_of_code = function
  | 0 -> Isa.Eq
  | 1 -> Isa.Ne
  | 2 -> Isa.Lt
  | 3 -> Isa.Ge
  | c -> invalid_arg (Printf.sprintf "Encoding: bad condition code %d" c)

let imm_fits i = i >= -1024 && i <= 1023

(* fields: all as plain ints, assembled into an int32 *)
let pack ~opcode ~ext ~rd ~rs1 ~rs2 ~imm11 =
  let w =
    (opcode lsl 27) lor (ext lsl 26) lor (rd lsl 21) lor (rs1 lsl 16)
    lor (rs2 lsl 11)
    lor (imm11 land 0x7FF)
  in
  Int32.of_int w

let unpack w =
  let w = Int32.to_int w land 0xFFFFFFFF in
  let opcode = (w lsr 27) land 0x1F in
  let ext = (w lsr 26) land 1 in
  let rd = (w lsr 21) land 0x1F in
  let rs1 = (w lsr 16) land 0x1F in
  let rs2 = (w lsr 11) land 0x1F in
  let imm11 =
    let raw = w land 0x7FF in
    if raw land 0x400 <> 0 then raw - 0x800 else raw
  in
  (opcode, ext, rd, rs1, rs2, imm11)

(* Is the immediate of this instruction representable in 11 signed bits? *)
let imm_of : int Isa.instr -> int option = function
  | Isa.Alui (_, _, _, imm) -> Some imm
  | Isa.Li (_, imm) -> Some imm
  | Isa.Lw (_, _, off) | Isa.Sw (_, _, off) -> Some off
  | Isa.B (_, _, _, t) | Isa.J t | Isa.Jal (_, t) -> Some t
  | Isa.In (_, p) | Isa.Out (p, _) -> Some p
  | Isa.Custom (e, _, _, _) -> Some e
  | _ -> None

let encoded_words (i : int Isa.instr) =
  match imm_of i with Some imm when not (imm_fits imm) -> 2 | _ -> 1

let encode (i : int Isa.instr) =
  Isa.validate i;
  let mk ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) opcode =
    if imm_fits imm then [ pack ~opcode ~ext:0 ~rd ~rs1 ~rs2 ~imm11:imm ]
    else begin
      (* extended pair: imm11 encodes the sign (0 = word2 as-is,
         1 = word2 is -(imm)-1), giving a 33-bit signed range *)
      if imm > 0xFFFFFFFF || imm < -0x100000000 then
        invalid_arg
          (Printf.sprintf "Encoding.encode: immediate %d out of range" imm);
      let sign, mag = if imm >= 0 then (0, imm) else (1, -imm - 1) in
      [
        pack ~opcode ~ext:1 ~rd ~rs1 ~rs2 ~imm11:sign;
        Int32.of_int (mag land 0xFFFFFFFF);
      ]
    end
  in
  match i with
  | Isa.Alu (op, rd, rs1, rs2) ->
      mk ~rd ~rs1 ~rs2 ~imm:(aluop_code op) op_alu
  | Isa.Alui (op, rd, rs1, imm) ->
      mk ~rd ~rs1 ~rs2:(aluop_code op) ~imm op_alui
  | Isa.Li (rd, imm) -> mk ~rd ~imm op_li
  | Isa.Lw (rd, rs1, off) -> mk ~rd ~rs1 ~imm:off op_lw
  | Isa.Sw (rs2, rs1, off) -> mk ~rd:rs2 ~rs1 ~imm:off op_sw
  | Isa.B (c, rs1, rs2, t) -> mk ~rd:(cond_code c) ~rs1 ~rs2 ~imm:t op_b
  | Isa.J t -> mk ~imm:t op_j
  | Isa.Jal (rd, t) -> mk ~rd ~imm:t op_jal
  | Isa.Jr rs1 -> mk ~rs1 op_jr
  | Isa.In (rd, port) -> mk ~rd ~imm:port op_in
  | Isa.Out (port, rs) -> mk ~rs1:rs ~imm:port op_out
  | Isa.Custom (e, rd, rs1, rs2) -> mk ~rd ~rs1 ~rs2 ~imm:e op_custom
  | Isa.Ei -> mk op_ei
  | Isa.Di -> mk op_di
  | Isa.Rti -> mk op_rti
  | Isa.Nop -> mk op_nop
  | Isa.Halt -> mk op_halt

let decode stream =
  match stream with
  | [] -> invalid_arg "Encoding.decode: empty stream"
  | w :: rest ->
      let opcode, ext, rd, rs1, rs2, imm11 = unpack w in
      let imm, rest =
        if ext = 1 then
          match rest with
          | w2 :: rest' ->
              let mag = Int32.to_int w2 land 0xFFFFFFFF in
              ((if imm11 = 0 then mag else -mag - 1), rest')
          | [] -> invalid_arg "Encoding.decode: truncated extended pair"
        else (imm11, rest)
      in
      let i : int Isa.instr =
        if opcode = op_alu then Isa.Alu (aluop_of_code imm, rd, rs1, rs2)
        else if opcode = op_alui then Isa.Alui (aluop_of_code rs2, rd, rs1, imm)
        else if opcode = op_li then Isa.Li (rd, imm)
        else if opcode = op_lw then Isa.Lw (rd, rs1, imm)
        else if opcode = op_sw then Isa.Sw (rd, rs1, imm)
        else if opcode = op_b then Isa.B (cond_of_code rd, rs1, rs2, imm)
        else if opcode = op_j then Isa.J imm
        else if opcode = op_jal then Isa.Jal (rd, imm)
        else if opcode = op_jr then Isa.Jr rs1
        else if opcode = op_in then Isa.In (rd, imm)
        else if opcode = op_out then Isa.Out (imm, rs1)
        else if opcode = op_custom then Isa.Custom (imm, rd, rs1, rs2)
        else if opcode = op_ei then Isa.Ei
        else if opcode = op_di then Isa.Di
        else if opcode = op_rti then Isa.Rti
        else if opcode = op_nop then Isa.Nop
        else if opcode = op_halt then Isa.Halt
        else invalid_arg (Printf.sprintf "Encoding.decode: opcode %d" opcode)
      in
      (i, rest)

let encode_program p =
  Array.of_list (List.concat_map encode (Array.to_list p))

let decode_program words =
  let rec go acc = function
    | [] -> List.rev acc
    | stream ->
        let i, rest = decode stream in
        go (i :: acc) rest
  in
  Array.of_list (go [] (Array.to_list words))

let program_bytes p =
  4 * Array.fold_left (fun acc i -> acc + encoded_words i) 0 p
