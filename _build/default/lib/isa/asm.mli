(** Symbolic assembly: labels, a two-pass assembler, and a textual
    assembly parser.

    A source program is a list of {!item}s mixing label definitions and
    instructions with symbolic branch targets.  {!assemble} resolves
    labels to absolute instruction indices and returns the executable
    image together with its symbol table — kept around so the profiler
    can attribute cycles back to labelled regions. *)

type item = Label of string | Ins of string Isa.instr

type image = {
  code : Isa.program;
  symbols : (string * int) list;  (** label -> instruction index *)
}

val assemble : item list -> image
(** Two-pass assembly.  @raise Invalid_argument on duplicate or undefined
    labels, or on an instruction that fails {!Isa.validate}. *)

val label_of : image -> int -> string option
(** Innermost label covering an instruction index: the label with the
    greatest index [<=] the given one. *)

val parse : string -> item list
(** Parses textual assembly.  Grammar, one statement per line:
    - [label:] defines a label (may share a line with an instruction);
    - [; comment] and [# comment] run to end of line;
    - instructions as printed by {!Isa.pp}, e.g.
      [add r3, r1, r2], [li r1, 42], [lw r2, 8(r5)], [b.lt r1, r2, loop],
      [in r1, 3], [out 3, r1], [cust2 r1, r2, r3], [halt].
    @raise Invalid_argument with a line number on syntax errors. *)

val print : item list -> string
(** Renders items back to parseable text (inverse of {!parse} up to
    whitespace). *)

val size_bytes : item list -> int
(** Code size of the instructions in the list. *)
