module B = Codesign_ir.Behavior

type layout = {
  base : int;
  var_addr : (string * int) list;
  arr_addr : (string * int) list;
  data_words : int;
}

let default_base = 4096

(* Expression register stack. *)
let stack_base = 8
let stack_top = 27

let layout_of ?(base = default_base) (p : B.proc) =
  let vars = B.vars_of p in
  let next = ref base in
  let var_addr =
    List.map
      (fun v ->
        let a = !next in
        incr next;
        (v, a))
      vars
  in
  let arr_addr =
    List.map
      (fun (a, len) ->
        let addr = !next in
        next := !next + len;
        (a, addr))
      p.B.arrays
  in
  { base; var_addr; arr_addr; data_words = !next - base }

let compile ?(base = default_base) ?(chan_ports = []) (p : B.proc) =
  let lay = layout_of ~base p in
  (* variables can also appear first on the left-hand side of assignments
     inside generated code paths not covered by vars_of; vars_of already
     collects all, so lookup failures are internal errors. *)
  let var_addr v =
    match List.assoc_opt v lay.var_addr with
    | Some a -> a
    | None -> invalid_arg ("Codegen: unknown variable " ^ v)
  in
  let arr_addr a =
    match List.assoc_opt a lay.arr_addr with
    | Some x -> x
    | None -> invalid_arg ("Codegen: unknown array " ^ a)
  in
  let chan_port c =
    match List.assoc_opt c chan_ports with
    | Some p -> p
    | None -> invalid_arg ("Codegen: no port mapping for channel " ^ c)
  in
  let items = ref [] in
  let emit i = items := Asm.Ins i :: !items in
  let label l = items := Asm.Label l :: !items in
  let next_label = ref 0 in
  let fresh prefix =
    incr next_label;
    Printf.sprintf "%s_%d" prefix !next_label
  in
  (* Evaluate [e] into the register for stack [level]. *)
  let rec expr level (e : B.expr) =
    let rd = stack_base + level in
    if rd > stack_top then
      invalid_arg "Codegen: expression too deep for register stack";
    (match e with
    | B.Int i -> emit (Isa.Li (rd, i))
    | B.Var v -> emit (Isa.Lw (rd, 0, var_addr v))
    | B.Idx (a, idx) ->
        expr level idx;
        (* rd holds the index; add array base, then load *)
        emit (Isa.Alui (Isa.Add, rd, rd, arr_addr a));
        emit (Isa.Lw (rd, rd, 0))
    | B.Neg e ->
        expr level e;
        emit (Isa.Alu (Isa.Sub, rd, 0, rd))
    | B.Not e ->
        expr level e;
        emit (Isa.Alui (Isa.Seq, rd, rd, 0))
    | B.Ext (op, acc, a, b) ->
        expr level acc;
        expr (level + 1) a;
        expr (level + 2) b;
        if rd + 2 > stack_top then
          invalid_arg "Codegen: expression too deep for register stack";
        emit (Isa.Custom (op, rd, rd + 1, rd + 2))
    | B.Bin (op, a, b) -> (
        expr level a;
        expr (level + 1) b;
        let rs = rd + 1 in
        if rs > stack_top then
          invalid_arg "Codegen: expression too deep for register stack";
        let simple o = emit (Isa.Alu (o, rd, rd, rs)) in
        match op with
        | B.Add -> simple Isa.Add
        | B.Sub -> simple Isa.Sub
        | B.Mul -> simple Isa.Mul
        | B.Div -> simple Isa.Div
        | B.Rem -> simple Isa.Rem
        | B.And -> simple Isa.And
        | B.Or -> simple Isa.Or
        | B.Xor -> simple Isa.Xor
        | B.Shl -> simple Isa.Shl
        | B.Shr -> simple Isa.Shr
        | B.Lt -> simple Isa.Slt
        | B.Eq -> simple Isa.Seq
        | B.Le ->
            (* a <= b == !(b < a) *)
            emit (Isa.Alu (Isa.Slt, rd, rs, rd));
            emit (Isa.Alui (Isa.Seq, rd, rd, 0))
        | B.Ne ->
            emit (Isa.Alu (Isa.Seq, rd, rd, rs));
            emit (Isa.Alui (Isa.Seq, rd, rd, 0))))
  in
  let store_var v level = emit (Isa.Sw (stack_base + level, 0, var_addr v)) in
  let rec stmt (s : B.stmt) =
    match s with
    | B.Assign (v, e) ->
        expr 0 e;
        store_var v 0
    | B.Store (a, i, e) ->
        expr 0 i;
        expr 1 e;
        emit (Isa.Alui (Isa.Add, stack_base, stack_base, arr_addr a));
        emit (Isa.Sw (stack_base + 1, stack_base, 0))
    | B.If (c, t, []) ->
        let lend = fresh "endif" in
        expr 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lend));
        List.iter stmt t;
        label lend
    | B.If (c, t, e) ->
        let lelse = fresh "else" and lend = fresh "endif" in
        expr 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lelse));
        List.iter stmt t;
        emit (Isa.J lend);
        label lelse;
        List.iter stmt e;
        label lend
    | B.While (c, body, _) ->
        let lhead = fresh "while" and lend = fresh "endwhile" in
        label lhead;
        expr 0 c;
        emit (Isa.B (Isa.Eq, stack_base, 0, lend));
        List.iter stmt body;
        emit (Isa.J lhead);
        label lend
    | B.For (v, lo, hi, body) ->
        let lhead = fresh "for" and lend = fresh "endfor" in
        expr 0 lo;
        store_var v 0;
        label lhead;
        expr 0 hi;
        emit (Isa.Lw (stack_base + 1, 0, var_addr v));
        (* exit when v >= hi *)
        emit (Isa.B (Isa.Ge, stack_base + 1, stack_base, lend));
        List.iter stmt body;
        emit (Isa.Lw (stack_base, 0, var_addr v));
        emit (Isa.Alui (Isa.Add, stack_base, stack_base, 1));
        store_var v 0;
        emit (Isa.J lhead);
        label lend
    | B.PortOut (port, e) ->
        expr 0 e;
        emit (Isa.Out (port, stack_base))
    | B.PortIn (v, port) ->
        emit (Isa.In (stack_base, port));
        store_var v 0
    | B.Send (ch, e) ->
        expr 0 e;
        emit (Isa.Out (chan_port ch, stack_base))
    | B.Recv (v, ch) ->
        emit (Isa.In (stack_base, chan_port ch));
        store_var v 0
  in
  List.iter stmt p.B.body;
  emit Isa.Halt;
  (List.rev !items, lay)

let bind lay cpu bindings =
  List.iter
    (fun (k, v) ->
      match String.index_opt k '[' with
      | None -> (
          match List.assoc_opt k lay.var_addr with
          | Some a -> Cpu.write_mem cpu a v
          | None -> () (* tolerate extra bindings, like Behavior.run *))
      | Some i -> (
          let name = String.sub k 0 i in
          let idx =
            int_of_string (String.sub k (i + 1) (String.length k - i - 2))
          in
          match List.assoc_opt name lay.arr_addr with
          | Some a -> Cpu.write_mem cpu (a + idx) v
          | None -> invalid_arg ("Codegen.bind: unknown array " ^ name)))
    bindings

let result lay cpu v =
  match List.assoc_opt v lay.var_addr with
  | Some a -> Cpu.read_mem cpu a
  | None -> invalid_arg ("Codegen.result: unknown variable " ^ v)

let read_array lay cpu a i =
  match List.assoc_opt a lay.arr_addr with
  | Some addr -> Cpu.read_mem cpu (addr + i)
  | None -> invalid_arg ("Codegen.read_array: unknown array " ^ a)

let run_compiled ?(env = Cpu.default_env) ?fuel (p : B.proc) bindings =
  let items, lay = compile p in
  let img = Asm.assemble items in
  let cpu = Cpu.create ~env img.Asm.code in
  bind lay cpu bindings;
  (match Cpu.run ?fuel cpu with
  | Cpu.Halted -> ()
  | Cpu.Trapped msg -> failwith ("Codegen.run_compiled: trapped: " ^ msg)
  | Cpu.Running -> assert false);
  (List.map (fun v -> (v, result lay cpu v)) p.B.results, cpu)
