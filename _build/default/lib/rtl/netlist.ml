type gate_kind = And | Or | Xor | Nand | Nor | Not | Buf | Mux | Dff

type gate = { kind : gate_kind; inputs : int list; output : int }

type t = {
  name : string;
  n_nets : int;
  gates : gate list;
  inputs : (string * int) list;
  outputs : (string * int) list;
}

let gate_arity = function
  | And | Or | Xor | Nand | Nor -> 2
  | Not | Buf | Dff -> 1
  | Mux -> 3

let gate_area = function
  | And | Or -> 1
  | Nand | Nor -> 1
  | Xor -> 2
  | Not | Buf -> 1
  | Mux -> 3
  | Dff -> 6

let area t = List.fold_left (fun a g -> a + gate_area g.kind) 0 t.gates
let gate_count t = List.length t.gates
let dff_count t =
  List.length (List.filter (fun (g : gate) -> g.kind = Dff) t.gates)

let validate t =
  let driver = Array.make t.n_nets false in
  driver.(0) <- true;
  if t.n_nets > 1 then driver.(1) <- true;
  List.iter
    (fun (n, i) ->
      if i < 0 || i >= t.n_nets then
        invalid_arg ("Netlist: input net out of range: " ^ n);
      if driver.(i) then
        invalid_arg ("Netlist: input " ^ n ^ " conflicts with another driver");
      driver.(i) <- true)
    t.inputs;
  List.iter
    (fun (g : gate) ->
      if List.length g.inputs <> gate_arity g.kind then
        invalid_arg "Netlist: gate arity mismatch";
      List.iter
        (fun i ->
          if i < 0 || i >= t.n_nets then
            invalid_arg "Netlist: gate input net out of range")
        g.inputs;
      if g.output < 0 || g.output >= t.n_nets then
        invalid_arg "Netlist: gate output net out of range";
      if driver.(g.output) then
        invalid_arg
          (Printf.sprintf "Netlist: net %d has multiple drivers" g.output);
      driver.(g.output) <- true)
    t.gates;
  List.iter
    (fun (n, i) ->
      if i < 0 || i >= t.n_nets then
        invalid_arg ("Netlist: output net out of range: " ^ n);
      if not driver.(i) then
        invalid_arg ("Netlist: output " ^ n ^ " is undriven"))
    t.outputs

let is_combinational_dag t =
  (* nodes = gates; edge g1 -> g2 when g1's output feeds g2, except through
     a Dff (whose output is a state element, not a combinational path). *)
  let gates = Array.of_list t.gates in
  let n = Array.length gates in
  let producer = Hashtbl.create 64 in
  Array.iteri
    (fun gi g -> if g.kind <> Dff then Hashtbl.replace producer g.output gi)
    gates;
  let edges = ref [] in
  Array.iteri
    (fun gi (g : gate) ->
      List.iter
        (fun i ->
          match Hashtbl.find_opt producer i with
          | Some src -> edges := (src, gi) :: !edges
          | None -> ())
        g.inputs)
    gates;
  Codesign_ir.Graph_algo.is_dag
    (Codesign_ir.Graph_algo.create ~n ~edges:!edges)

module Builder = struct
  type b = {
    bname : string;
    mutable next : int;
    mutable bgates : gate list;
    mutable binputs : (string * int) list;
    mutable boutputs : (string * int) list;
  }

  let const0 = 0
  let const1 = 1

  let create ?(name = "netlist") () =
    { bname = name; next = 2; bgates = []; binputs = []; boutputs = [] }

  let fresh b =
    let n = b.next in
    b.next <- n + 1;
    n

  let input b name =
    let n = fresh b in
    b.binputs <- (name, n) :: b.binputs;
    n

  let gate b kind ins =
    let o = fresh b in
    b.bgates <- { kind; inputs = ins; output = o } :: b.bgates;
    o

  let and2 b x y = gate b And [ x; y ]
  let or2 b x y = gate b Or [ x; y ]
  let xor2 b x y = gate b Xor [ x; y ]
  let not1 b x = gate b Not [ x ]
  let mux b ~sel ~a ~b_in = gate b Mux [ sel; a; b_in ]
  let dff b d = gate b Dff [ d ]

  let rec reduce b f neutral = function
    | [] -> neutral
    | [ x ] -> x
    | xs ->
        (* pairwise reduction for balanced trees *)
        let rec pair = function
          | [] -> []
          | [ x ] -> [ x ]
          | x :: y :: rest -> f b x y :: pair rest
        in
        reduce b f neutral (pair xs)

  let and_many b xs = reduce b and2 const1 xs
  let or_many b xs = reduce b or2 const0 xs

  let output b name n = b.boutputs <- (name, n) :: b.boutputs

  let finish b =
    let t =
      {
        name = b.bname;
        n_nets = b.next;
        gates = List.rev b.bgates;
        inputs = List.rev b.binputs;
        outputs = List.rev b.boutputs;
      }
    in
    validate t;
    t
end

let decoder ?(name = "decoder") ~width ~match_value () =
  if width <= 0 then invalid_arg "Netlist.decoder: width must be positive";
  if match_value < 0 || (width < 62 && match_value lsr width <> 0) then
    invalid_arg "Netlist.decoder: match_value does not fit in width";
  let b = Builder.create ~name () in
  let bits =
    List.init width (fun i ->
        let a = Builder.input b (Printf.sprintf "a%d" i) in
        if (match_value lsr i) land 1 = 1 then a else Builder.not1 b a)
  in
  Builder.output b "hit" (Builder.and_many b bits);
  Builder.finish b

let pp_stats fmt t =
  Format.fprintf fmt
    "netlist %s: %d gates (%d dff), area %d NAND-eq, %d in, %d out" t.name
    (gate_count t) (dff_count t) (area t) (List.length t.inputs)
    (List.length t.outputs)
