module C = Codesign_ir.Cdfg

let fu_area = function
  | "add" | "sub" -> 32
  | "mul" -> 320
  | "div" | "rem" -> 960
  | "and" | "or" | "xor" -> 16
  | "shl" | "shr" -> 48
  | "lt" | "eq" -> 24
  | "neg" -> 32
  | "not" -> 8
  | "ld" | "st" -> 64
  | _ -> 32

let fu_delay = function
  | "mul" -> 2
  | "div" | "rem" -> 8
  | "ld" | "st" -> 2
  | _ -> 1

let hw_op_delay op = fu_delay (C.opcode_name op)

let default_reuse_factor = 4
let default_task_overhead = 64

let fu_need ?(reuse_factor = default_reuse_factor) ops =
  if reuse_factor <= 0 then invalid_arg "Estimate: reuse_factor must be > 0";
  (* merge duplicate kinds first *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, n) ->
      if n < 0 then invalid_arg "Estimate: negative op count";
      Hashtbl.replace tbl k (n + try Hashtbl.find tbl k with Not_found -> 0))
    ops;
  Hashtbl.fold
    (fun k n acc ->
      if n = 0 then acc
      else (k, (n + reuse_factor - 1) / reuse_factor) :: acc)
    tbl []
  |> List.sort compare

let standalone_area ?(reuse_factor = default_reuse_factor)
    ?(overhead = default_task_overhead) ops =
  List.fold_left
    (fun acc (k, units) -> acc + (units * fu_area k))
    overhead
    (fu_need ~reuse_factor ops)

module Incremental = struct
  type t = {
    reuse_factor : int;
    overhead : int;
    tasks : (int, (string * int) list) Hashtbl.t;  (** id -> needs *)
    alloc : (string, int) Hashtbl.t;  (** kind -> allocated units *)
  }

  let create ?(reuse_factor = default_reuse_factor)
      ?(overhead = default_task_overhead) () =
    { reuse_factor; overhead; tasks = Hashtbl.create 16;
      alloc = Hashtbl.create 16 }

  let alloc_of t k = try Hashtbl.find t.alloc k with Not_found -> 0

  let incremental_cost t ops =
    let needs = fu_need ~reuse_factor:t.reuse_factor ops in
    List.fold_left
      (fun acc (k, n) ->
        let extra = max 0 (n - alloc_of t k) in
        acc + (extra * fu_area k))
      t.overhead needs

  let add t ~id ops =
    if Hashtbl.mem t.tasks id then
      invalid_arg
        (Printf.sprintf "Estimate.Incremental.add: duplicate id %d" id);
    let needs = fu_need ~reuse_factor:t.reuse_factor ops in
    let cost = incremental_cost t ops in
    List.iter
      (fun (k, n) ->
        if n > alloc_of t k then Hashtbl.replace t.alloc k n)
      needs;
    Hashtbl.replace t.tasks id needs;
    cost

  let rebuild_alloc t =
    Hashtbl.reset t.alloc;
    Hashtbl.iter
      (fun _ needs ->
        List.iter
          (fun (k, n) ->
            if n > alloc_of t k then Hashtbl.replace t.alloc k n)
          needs)
      t.tasks

  let remove t ~id =
    if not (Hashtbl.mem t.tasks id) then
      invalid_arg
        (Printf.sprintf "Estimate.Incremental.remove: unknown id %d" id);
    Hashtbl.remove t.tasks id;
    rebuild_alloc t

  let mem t ~id = Hashtbl.mem t.tasks id

  let total_area t =
    let fu =
      Hashtbl.fold (fun k n acc -> acc + (n * fu_area k)) t.alloc 0
    in
    fu + (t.overhead * Hashtbl.length t.tasks)

  let allocation t =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.alloc []
    |> List.sort compare

  let resident t =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.tasks [] |> List.sort compare
end
