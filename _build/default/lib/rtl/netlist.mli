(** Gate-level netlists — the lowest hardware abstraction in the
    framework.

    Used for the "glue logic" of Type I systems (paper §4.1): address
    decoders, synchronisers and status registers produced by interface
    synthesis are emitted as netlists, simulated with {!Logic_sim} and
    costed by gate count.

    Nets are dense integer ids created through the builder; gates connect
    existing nets.  Net 0 is constant 0 and net 1 is constant 1. *)

type gate_kind =
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Not
  | Buf
  | Mux  (** inputs [sel; a; b]: output = if sel=0 then a else b *)
  | Dff  (** input [d]; output updates on {!Logic_sim.clock_cycle} *)

type gate = { kind : gate_kind; inputs : int list; output : int }

type t = {
  name : string;
  n_nets : int;
  gates : gate list;  (** in creation order *)
  inputs : (string * int) list;  (** primary inputs *)
  outputs : (string * int) list;  (** primary outputs *)
}

val gate_arity : gate_kind -> int

val gate_area : gate_kind -> int
(** Unit-area table (NAND-equivalents): simple gates 1-2, [Mux] 3,
    [Dff] 6. *)

val area : t -> int
val gate_count : t -> int
val dff_count : t -> int

val validate : t -> unit
(** Checks arities, net ranges, single driver per net, and that no net is
    driven that is also a primary input or a constant.
    @raise Invalid_argument on violation. *)

val is_combinational_dag : t -> bool
(** True when the combinational part (ignoring [Dff] outputs, which break
    cycles) is acyclic — the precondition for {!Logic_sim}. *)

(** Imperative construction API. *)
module Builder : sig
  type b

  val create : ?name:string -> unit -> b

  val const0 : int
  val const1 : int

  val input : b -> string -> int
  (** Declare a primary input net. *)

  val fresh : b -> int
  (** An undriven internal net (to be driven by exactly one gate). *)

  val gate : b -> gate_kind -> int list -> int
  (** Create a gate driving a fresh net; returns the output net. *)

  val and2 : b -> int -> int -> int
  val or2 : b -> int -> int -> int
  val xor2 : b -> int -> int -> int
  val not1 : b -> int -> int
  val mux : b -> sel:int -> a:int -> b_in:int -> int
  val dff : b -> int -> int

  val and_many : b -> int list -> int
  (** Balanced AND tree; [and_many [] = const1]. *)

  val or_many : b -> int list -> int
  (** Balanced OR tree; [or_many [] = const0]. *)

  val output : b -> string -> int -> unit
  (** Declare a primary output connected to an existing net. *)

  val finish : b -> t
  (** Validates and returns the netlist. *)
end

val decoder : ?name:string -> width:int -> match_value:int -> unit -> t
(** A [width]-bit equality decoder: output ["hit"] is 1 iff inputs
    [a0..a(width-1)] encode [match_value] (LSB first) — the canonical
    address-decode glue block. *)

val pp_stats : Format.formatter -> t -> unit
