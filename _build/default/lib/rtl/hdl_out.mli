(** Verilog-flavoured pretty-printing of hardware structures.

    The framework builds no external toolchain; these renderings exist so
    a designer can inspect what interface synthesis and HLS produced, and
    so examples can show concrete artifacts.  The output is syntactically
    Verilog-like but is not claimed to be tool-clean. *)

val netlist : Netlist.t -> string
(** Structural gate-level module. *)

val fsmd : Fsmd.t -> string
(** Two-process (state register + next-state/datapath) behavioural
    module. *)
