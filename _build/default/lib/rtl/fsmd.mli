(** Finite-state machines with datapaths — the register-transfer-level
    hardware model.

    An FSMD executes one state per clock cycle: all actions of the
    current state fire in parallel (right-hand sides read pre-cycle
    register values), then the first transition whose guard is true
    selects the next state.  Channel actions ([ARecv]/[ASend]) delegate
    to the environment and may block, which models a hardware thread
    stalled on a FIFO handshake — the execution model of the paper's
    custom co-processors (§4.5/§4.6).

    FSMDs are produced three ways: by hand (device models), by the HLS
    controller generator ({!Codesign_hls.Controller}), and by interface
    synthesis.  {!area} feeds the cost models. *)

type expr =
  | Const of int
  | Reg of string
  | Inp of string  (** named input port, sampled combinationally *)
  | Bin of Codesign_ir.Cdfg.opcode * expr * expr
      (** only 2-operand arithmetic opcodes are allowed *)
  | Un of Codesign_ir.Cdfg.opcode * expr
      (** [Neg] or [Not] *)

type action =
  | Set of string * expr  (** register transfer *)
  | AOut of string * expr  (** drive a named output port *)
  | ARecv of string * string  (** [ARecv (reg, chan)]: may block *)
  | ASend of string * expr  (** [ASend (chan, e)]: may block *)

type transition = { guard : expr option; target : string }

type state = {
  sname : string;
  actions : action list;
  trans : transition list;
      (** evaluated in order; [guard = None] always fires; an empty list
          or no firing guard means the machine halts in this state *)
}

type t = {
  name : string;
  states : state list;
  start : string;
}

(** Execution environment. *)
type env = {
  input : string -> int;
  output : string -> int -> unit;
  recv : string -> int;
  send : string -> int -> unit;
  tick : unit -> unit;  (** called once per state-cycle *)
}

val null_env : env

val make : ?name:string -> start:string -> state list -> t
(** Validates: state names unique, transitions target existing states,
    start exists, expression opcodes are arithmetic.
    @raise Invalid_argument otherwise. *)

val n_states : t -> int

val registers : t -> string list
(** All register names written or read, sorted. *)

val op_mix : t -> (string * int) list
(** Static operator counts over all actions and guards (feeds the area
    estimator). *)

val area : t -> int
(** Structural area estimate: FU area for the worst-case per-state
    operator usage, register area, state-encoding flops and mux overhead
    per multiply-written register. *)

type run_result = {
  cycles : int;  (** states executed *)
  final_regs : (string * int) list;
  halted_in : string;
}

val run :
  ?env:env ->
  ?regs:(string * int) list ->
  ?max_cycles:int ->
  t ->
  run_result
(** Interpret from [start] with the given initial register values
    (missing registers start at 0).  Stops when no transition fires, or
    traps via @raise Invalid_argument when [max_cycles] (default
    1_000_000) is exceeded. *)

val pp : Format.formatter -> t -> unit
