(** Two-phase (levelized) logic simulation of {!Netlist} circuits.

    A simulator instance owns the net value state.  Combinational
    evaluation propagates input values through the gates in topological
    order; {!clock_cycle} additionally latches every DFF, implementing
    standard synchronous semantics (all flops update simultaneously from
    their pre-clock D values). *)

type t

val create : Netlist.t -> t
(** @raise Invalid_argument if the combinational part is cyclic. *)

val set_input : t -> string -> int -> unit
(** Values are truthy: any nonzero is 1.  @raise Not_found on unknown
    input name. *)

val eval : t -> unit
(** Propagate combinational logic from current inputs and flop states. *)

val output : t -> string -> int
(** Read a primary output (after {!eval}).  @raise Not_found on unknown
    name. *)

val net : t -> int -> int
(** Read any net by id. *)

val clock_cycle : t -> unit
(** One synchronous cycle: evaluate, then latch all DFFs from their D
    inputs, then evaluate again so outputs reflect the new state. *)

val cycles_run : t -> int

val reset : t -> unit
(** Clear all net values and flop states to 0 (constant-1 net stays 1). *)

val run_vectors : t -> inputs:string list -> int list list -> (string * int list) list
(** Convenience for tests: apply each input vector (values parallel to
    [inputs]), run {!clock_cycle}, and collect each primary output's
    waveform. *)
