module C = Codesign_ir.Cdfg

type expr =
  | Const of int
  | Reg of string
  | Inp of string
  | Bin of C.opcode * expr * expr
  | Un of C.opcode * expr

type action =
  | Set of string * expr
  | AOut of string * expr
  | ARecv of string * string
  | ASend of string * expr

type transition = { guard : expr option; target : string }
type state = { sname : string; actions : action list; trans : transition list }
type t = { name : string; states : state list; start : string }

type env = {
  input : string -> int;
  output : string -> int -> unit;
  recv : string -> int;
  send : string -> int -> unit;
  tick : unit -> unit;
}

let null_env =
  {
    input = (fun _ -> 0);
    output = (fun _ _ -> ());
    recv = (fun _ -> 0);
    send = (fun _ _ -> ());
    tick = (fun () -> ());
  }

let rec check_expr = function
  | Const _ | Reg _ | Inp _ -> ()
  | Bin (op, a, b) ->
      if not (C.is_arith op && C.arity op = 2) then
        invalid_arg ("Fsmd: non-binary opcode in Bin: " ^ C.opcode_name op);
      check_expr a;
      check_expr b
  | Un (op, a) ->
      if not (C.is_arith op && C.arity op = 1) then
        invalid_arg ("Fsmd: non-unary opcode in Un: " ^ C.opcode_name op);
      check_expr a

let make ?(name = "fsmd") ~start states =
  let names = List.map (fun s -> s.sname) states in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Fsmd.make: duplicate state names";
  if not (List.mem start names) then
    invalid_arg ("Fsmd.make: start state " ^ start ^ " missing");
  List.iter
    (fun s ->
      List.iter
        (fun a ->
          match a with
          | Set (_, e) | AOut (_, e) | ASend (_, e) -> check_expr e
          | ARecv _ -> ())
        s.actions;
      List.iter
        (fun tr ->
          Option.iter check_expr tr.guard;
          if not (List.mem tr.target names) then
            invalid_arg
              ("Fsmd.make: transition to unknown state " ^ tr.target))
        s.trans)
    states;
  { name; states; start }

let n_states t = List.length t.states

let registers t =
  let acc = ref [] in
  let add r = if not (List.mem r !acc) then acc := r :: !acc in
  let rec expr = function
    | Const _ | Inp _ -> ()
    | Reg r -> add r
    | Bin (_, a, b) ->
        expr a;
        expr b
    | Un (_, a) -> expr a
  in
  List.iter
    (fun s ->
      List.iter
        (function
          | Set (r, e) ->
              add r;
              expr e
          | AOut (_, e) | ASend (_, e) -> expr e
          | ARecv (r, _) -> add r)
        s.actions;
      List.iter (fun tr -> Option.iter expr tr.guard) s.trans)
    t.states;
  List.sort compare !acc

let op_mix t =
  let tbl = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0)
  in
  let rec expr = function
    | Const _ | Reg _ | Inp _ -> ()
    | Bin (op, a, b) ->
        bump (C.opcode_name op);
        expr a;
        expr b
    | Un (op, a) ->
        bump (C.opcode_name op);
        expr a
  in
  List.iter
    (fun s ->
      List.iter
        (function
          | Set (_, e) | AOut (_, e) | ASend (_, e) -> expr e
          | ARecv _ -> ())
        s.actions;
      List.iter (fun tr -> Option.iter expr tr.guard) s.trans)
    t.states;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* per-state operator usage determines the FU requirement; registers and
   state encoding add storage area; registers written in >1 state need an
   input mux *)
let area t =
  let fu_area =
    (* worst-case concurrent use of each operator kind *)
    let worst = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let here = Hashtbl.create 8 in
        let bump k =
          Hashtbl.replace here k
            (1 + try Hashtbl.find here k with Not_found -> 0)
        in
        let rec expr = function
          | Const _ | Reg _ | Inp _ -> ()
          | Bin (op, a, b) ->
              bump (C.opcode_name op);
              expr a;
              expr b
          | Un (op, a) ->
              bump (C.opcode_name op);
              expr a
        in
        List.iter
          (function
            | Set (_, e) | AOut (_, e) | ASend (_, e) -> expr e
            | ARecv _ -> ())
          s.actions;
        List.iter (fun tr -> Option.iter expr tr.guard) s.trans;
        Hashtbl.iter
          (fun k v ->
            let cur = try Hashtbl.find worst k with Not_found -> 0 in
            if v > cur then Hashtbl.replace worst k v)
          here)
      t.states;
    Hashtbl.fold (fun k v acc -> acc + (v * Estimate.fu_area k)) worst 0
  in
  let regs = registers t in
  let reg_area = 32 * List.length regs in
  let writers r =
    List.length
      (List.filter
         (fun s ->
           List.exists
             (function
               | Set (r', _) | ARecv (r', _) -> r' = r
               | _ -> false)
             s.actions)
         t.states)
  in
  let mux_area =
    List.fold_left
      (fun acc r -> if writers r > 1 then acc + (3 * 32) else acc)
      0 regs
  in
  let state_bits =
    let n = max (n_states t) 2 in
    let rec bits k = if 1 lsl k >= n then k else bits (k + 1) in
    bits 1
  in
  fu_area + reg_area + mux_area + (6 * state_bits) + (4 * n_states t)

type run_result = {
  cycles : int;
  final_regs : (string * int) list;
  halted_in : string;
}

let run ?(env = null_env) ?(regs = []) ?(max_cycles = 1_000_000) t =
  let state_tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace state_tbl s.sname s) t.states;
  let reg_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (r, v) -> Hashtbl.replace reg_tbl r v) regs;
  let get r = try Hashtbl.find reg_tbl r with Not_found -> 0 in
  let rec eval = function
    | Const i -> i
    | Reg r -> get r
    | Inp p -> env.input p
    | Bin (op, a, b) -> (
        let a = eval a and b = eval b in
        match op with
        | C.Add -> a + b
        | C.Sub -> a - b
        | C.Mul -> a * b
        | C.Div -> if b = 0 then 0 else a / b
        | C.Rem -> if b = 0 then 0 else a mod b
        | C.And -> a land b
        | C.Or -> a lor b
        | C.Xor -> a lxor b
        | C.Shl -> a lsl (b land 31)
        | C.Shr -> a asr (b land 31)
        | C.Lt -> if a < b then 1 else 0
        | C.Eq -> if a = b then 1 else 0
        | _ -> assert false)
    | Un (op, a) -> (
        let a = eval a in
        match op with
        | C.Neg -> -a
        | C.Not -> if a = 0 then 1 else 0
        | _ -> assert false)
  in
  let cycles = ref 0 in
  let current = ref (Hashtbl.find state_tbl t.start) in
  let running = ref true in
  while !running do
    if !cycles >= max_cycles then
      invalid_arg ("Fsmd.run: max_cycles exceeded in " ^ t.name);
    let s = !current in
    (* evaluate all RHSs against pre-cycle state, then commit *)
    let commits = ref [] in
    List.iter
      (fun a ->
        match a with
        | Set (r, e) -> commits := (r, eval e) :: !commits
        | AOut (p, e) -> env.output p (eval e)
        | ARecv (r, ch) -> commits := (r, env.recv ch) :: !commits
        | ASend (ch, e) -> env.send ch (eval e))
      s.actions;
    List.iter (fun (r, v) -> Hashtbl.replace reg_tbl r v) (List.rev !commits);
    incr cycles;
    env.tick ();
    (* choose next state *)
    let rec choose = function
      | [] -> None
      | tr :: rest -> (
          match tr.guard with
          | None -> Some tr.target
          | Some g -> if eval g <> 0 then Some tr.target else choose rest)
    in
    match choose s.trans with
    | Some nxt -> current := Hashtbl.find state_tbl nxt
    | None -> running := false
  done;
  let final =
    Hashtbl.fold (fun r v acc -> (r, v) :: acc) reg_tbl []
    |> List.sort compare
  in
  { cycles = !cycles; final_regs = final; halted_in = !current.sname }

let pp fmt t =
  Format.fprintf fmt "@[<v>fsmd %s: %d states, %d regs, area %d@]" t.name
    (n_states t)
    (List.length (registers t))
    (area t)
