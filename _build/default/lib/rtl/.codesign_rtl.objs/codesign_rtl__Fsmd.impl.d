lib/rtl/fsmd.ml: Codesign_ir Estimate Format Hashtbl List Option
