lib/rtl/netlist.ml: Array Codesign_ir Format Hashtbl List Printf
