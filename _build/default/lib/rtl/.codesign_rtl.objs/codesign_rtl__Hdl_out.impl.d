lib/rtl/hdl_out.ml: Buffer Codesign_ir Fsmd List Netlist Printf String
