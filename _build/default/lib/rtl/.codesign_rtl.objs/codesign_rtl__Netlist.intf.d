lib/rtl/netlist.mli: Format
