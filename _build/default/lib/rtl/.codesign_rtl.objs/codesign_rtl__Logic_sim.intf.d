lib/rtl/logic_sim.mli: Netlist
