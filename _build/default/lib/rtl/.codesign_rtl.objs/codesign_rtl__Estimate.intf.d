lib/rtl/estimate.mli: Codesign_ir
