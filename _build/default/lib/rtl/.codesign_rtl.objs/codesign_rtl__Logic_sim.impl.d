lib/rtl/logic_sim.ml: Array Codesign_ir Hashtbl List Netlist
