lib/rtl/estimate.ml: Codesign_ir Hashtbl List Printf
