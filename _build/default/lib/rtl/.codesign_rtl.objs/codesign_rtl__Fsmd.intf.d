lib/rtl/fsmd.mli: Codesign_ir Format
