lib/rtl/hdl_out.mli: Fsmd Netlist
