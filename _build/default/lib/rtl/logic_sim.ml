type t = {
  net : Netlist.t;
  values : int array;  (** current value of every net *)
  order : Netlist.gate array;  (** combinational gates, topo order *)
  dffs : Netlist.gate array;
  mutable cycles : int;
}

let topo_comb_order (net : Netlist.t) =
  let gates = Array.of_list net.Netlist.gates in
  let n = Array.length gates in
  let producer = Hashtbl.create 64 in
  Array.iteri
    (fun gi g ->
      if g.Netlist.kind <> Netlist.Dff then
        Hashtbl.replace producer g.Netlist.output gi)
    gates;
  let edges = ref [] in
  Array.iteri
    (fun gi (g : Netlist.gate) ->
      List.iter
        (fun i ->
          match Hashtbl.find_opt producer i with
          | Some src -> edges := (src, gi) :: !edges
          | None -> ())
        g.Netlist.inputs)
    gates;
  let g = Codesign_ir.Graph_algo.create ~n ~edges:!edges in
  match Codesign_ir.Graph_algo.topo_sort g with
  | None -> invalid_arg "Logic_sim: combinational cycle in netlist"
  | Some order ->
      Array.of_list
        (List.filter_map
           (fun gi ->
             if gates.(gi).Netlist.kind <> Netlist.Dff then Some gates.(gi)
             else None)
           order)

let create net =
  Netlist.validate net;
  let values = Array.make net.Netlist.n_nets 0 in
  if net.Netlist.n_nets > 1 then values.(1) <- 1;
  let dffs =
    Array.of_list
      (List.filter (fun (g : Netlist.gate) -> g.Netlist.kind = Netlist.Dff) net.Netlist.gates)
  in
  { net; values; order = topo_comb_order net; dffs; cycles = 0 }

let set_input t name v =
  let id = List.assoc name t.net.Netlist.inputs in
  t.values.(id) <- (if v <> 0 then 1 else 0)

let eval_gate t (g : Netlist.gate) =
  let v i = t.values.(List.nth g.Netlist.inputs i) in
  let r =
    match g.Netlist.kind with
    | Netlist.And -> v 0 land v 1
    | Netlist.Or -> v 0 lor v 1
    | Netlist.Xor -> v 0 lxor v 1
    | Netlist.Nand -> 1 - (v 0 land v 1)
    | Netlist.Nor -> 1 - (v 0 lor v 1)
    | Netlist.Not -> 1 - v 0
    | Netlist.Buf -> v 0
    | Netlist.Mux -> if v 0 = 0 then v 1 else v 2
    | Netlist.Dff -> assert false
  in
  t.values.(g.Netlist.output) <- r

let eval t = Array.iter (eval_gate t) t.order

let output t name = t.values.(List.assoc name t.net.Netlist.outputs)
let net t i = t.values.(i)

let clock_cycle t =
  eval t;
  (* sample all D inputs first, then update all Q outputs *)
  let ds =
    Array.map (fun (g : Netlist.gate) -> t.values.(List.hd g.Netlist.inputs)) t.dffs
  in
  Array.iteri (fun i g -> t.values.(g.Netlist.output) <- ds.(i)) t.dffs;
  eval t;
  t.cycles <- t.cycles + 1

let cycles_run t = t.cycles

let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  if Array.length t.values > 1 then t.values.(1) <- 1;
  t.cycles <- 0

let run_vectors t ~inputs vectors =
  let outs =
    List.map (fun (n, _) -> (n, ref [])) t.net.Netlist.outputs
  in
  List.iter
    (fun vec ->
      List.iter2 (fun name v -> set_input t name v) inputs vec;
      clock_cycle t;
      List.iter (fun (n, acc) -> acc := output t n :: !acc) outs)
    vectors;
  List.map (fun (n, acc) -> (n, List.rev !acc)) outs
