(** Hardware area/delay estimation, including the incremental,
    sharing-aware estimator of Vahid & Gajski (paper ref [18]).

    Units: area in NAND-equivalent gates for 32-bit functional units;
    delay in clock cycles.

    The key idea of [18]: during HW/SW partitioning the hardware cost of
    moving a function into hardware is {i not} its standalone cost —
    functional units already allocated for other hardware-resident
    functions can be reused.  {!Incremental} maintains the running
    allocation so each query is O(op kinds), cheap enough to sit inside a
    partitioning inner loop.  The per-kind requirement of a function is
    [ceil (count / reuse_factor)]: a unit is time-multiplexed
    [reuse_factor] times per invocation. *)

val fu_area : string -> int
(** Area of one functional unit by operator name ({!Codesign_ir.Cdfg.opcode_name});
    unknown names cost 32. *)

val fu_delay : string -> int
(** Hardware latency in cycles of one operation on its unit (mul 2,
    div/rem 8, memory 2, everything else 1); unknown names take 1. *)

val hw_op_delay : Codesign_ir.Cdfg.opcode -> int
(** {!fu_delay} lifted to opcodes — the delay model handed to HLS. *)

val default_reuse_factor : int
(** 4. *)

val default_task_overhead : int
(** Fixed per-task controller/wiring overhead added by both estimators
    (64). *)

val fu_need :
  ?reuse_factor:int -> (string * int) list -> (string * int) list
(** Per-kind FU requirement of an operation mix, sorted by kind. *)

val standalone_area :
  ?reuse_factor:int -> ?overhead:int -> (string * int) list -> int
(** Area of a dedicated, unshared implementation of one function. *)

(** The incremental sharing-aware estimator. *)
module Incremental : sig
  type t

  val create : ?reuse_factor:int -> ?overhead:int -> unit -> t

  val incremental_cost : t -> (string * int) list -> int
  (** Area that adding a function with this op mix would add, given the
      current allocation — without committing. *)

  val add : t -> id:int -> (string * int) list -> int
  (** Commit a function (keyed by caller id) and return its incremental
      cost.  @raise Invalid_argument on duplicate id. *)

  val remove : t -> id:int -> unit
  (** Remove a function and shrink the allocation to the remaining
      functions' worst-case needs.  @raise Invalid_argument on unknown
      id. *)

  val mem : t -> id:int -> bool

  val total_area : t -> int
  (** Allocated FU area plus per-resident-task overheads. *)

  val allocation : t -> (string * int) list
  (** Current per-kind FU allocation, sorted. *)

  val resident : t -> int list
  (** Ids of committed functions, ascending. *)
end
