module C = Codesign_ir.Cdfg
module E = Codesign_rtl.Estimate

type t = { start : int array; length : int }

let is_io name = String.contains name ':'

let op_delay (op : C.opcode) =
  match op with
  | C.Const _ -> 0
  | C.Read nm | C.Write nm ->
      (* plain variables are wires from/to architectural registers;
         port/channel accesses occupy a cycle of handshake *)
      if is_io nm then 1 else 0
  | _ -> E.hw_op_delay op

let fu_class (op : C.opcode) =
  match op with
  | C.Add | C.Sub | C.Neg -> Some "alu"
  | C.And | C.Or | C.Xor | C.Not -> Some "logic"
  | C.Mul -> Some "mul"
  | C.Div | C.Rem -> Some "div"
  | C.Shl | C.Shr -> Some "shift"
  | C.Lt | C.Eq -> Some "cmp"
  | C.Load _ | C.Store _ -> Some "mem"
  | C.Const _ | C.Read _ | C.Write _ -> None

let fu_class_area = function
  | "alu" -> 40
  | "logic" -> 16
  | "mul" -> 320
  | "div" -> 960
  | "shift" -> 48
  | "cmp" -> 24
  | "mem" -> 64
  | _ -> 32

let ops_array (b : C.block) = Array.of_list b.C.ops

let delays b =
  Array.map (fun (o : C.op) -> op_delay o.C.opcode) (ops_array b)

let finish_of sched d i = sched.(i) + d.(i)

let makespan starts d =
  Array.fold_left max 0 (Array.mapi (fun i s -> s + d.(i)) starts)

(* length counts at least 1 cstep when any op exists *)
let mk_schedule starts d n =
  { start = starts; length = (if n = 0 then 0 else max 1 (makespan starts d)) }

let asap (b : C.block) =
  let ops = ops_array b in
  let n = Array.length ops in
  let d = delays b in
  let starts = Array.make n 0 in
  Array.iteri
    (fun i (o : C.op) ->
      let s =
        List.fold_left
          (fun acc a -> max acc (finish_of starts d a))
          0 o.C.args
      in
      starts.(i) <- s)
    ops;
  mk_schedule starts d n

let alap (b : C.block) ~latency =
  let ops = ops_array b in
  let n = Array.length ops in
  let d = delays b in
  let a = asap b in
  if latency < a.length then
    invalid_arg
      (Printf.sprintf "Sched.alap: latency %d < critical path %d" latency
         a.length);
  (* finish deadline per op, walking in reverse dependence order *)
  let deadline = Array.make n latency in
  for i = n - 1 downto 0 do
    let o = ops.(i) in
    (* producers of o must finish by o's start *)
    List.iter
      (fun arg ->
        let limit = deadline.(i) - d.(i) in
        if limit < deadline.(arg) then deadline.(arg) <- limit)
      o.C.args
  done;
  let starts = Array.init n (fun i -> deadline.(i) - d.(i)) in
  { start = starts; length = latency }

let mobility (b : C.block) =
  let a = asap b in
  if Array.length a.start = 0 then [||]
  else
    let l = alap b ~latency:a.length in
    Array.init (Array.length a.start) (fun i -> l.start.(i) - a.start.(i))

let list_schedule (b : C.block) ~resources =
  List.iter
    (fun (c, k) ->
      if k <= 0 then
        invalid_arg ("Sched.list_schedule: non-positive bound for " ^ c))
    resources;
  let ops = ops_array b in
  let n = Array.length ops in
  let d = delays b in
  (* priority = length of longest path to a sink (critical-path priority) *)
  let prio = Array.make n 0 in
  let consumers = Array.make n [] in
  Array.iteri
    (fun i (o : C.op) ->
      List.iter (fun a -> consumers.(a) <- i :: consumers.(a)) o.C.args)
    ops;
  for i = n - 1 downto 0 do
    prio.(i) <-
      d.(i)
      + List.fold_left (fun acc c -> max acc prio.(c)) 0 consumers.(i)
  done;
  let starts = Array.make n (-1) in
  let scheduled = Array.make n false in
  let n_done = ref 0 in
  (* busy.(class) = list of (fu_busy_until) not needed: track per-cstep usage *)
  let usage_at : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let cap c = List.assoc_opt c resources in
  let cstep = ref 0 in
  while !n_done < n do
    (* Within a cstep, iterate to fixpoint: scheduling a 0-delay op makes
       its same-cstep consumers ready immediately. *)
    let progressed = ref true in
    while !progressed do
      progressed := false;
      (* ready ops whose producers have finished by !cstep *)
      let ready =
        List.filter
          (fun i ->
            (not scheduled.(i))
            && List.for_all
                 (fun a -> scheduled.(a) && starts.(a) + d.(a) <= !cstep)
                 ops.(i).C.args)
          (List.init n Fun.id)
      in
      (* highest priority first; ties by id for determinism *)
      let ready =
        List.sort
          (fun i j ->
            if prio.(i) <> prio.(j) then compare prio.(j) prio.(i)
            else compare i j)
          ready
      in
      List.iter
        (fun i ->
          let fits =
            match fu_class ops.(i).C.opcode with
            | None -> true
            | Some cls -> (
                match cap cls with
                | None -> true
                | Some k ->
                    (* the op occupies its FU for d.(i) csteps *)
                    let span = max 1 d.(i) in
                    let ok = ref true in
                    for t = !cstep to !cstep + span - 1 do
                      let u =
                        try Hashtbl.find usage_at (cls, t)
                        with Not_found -> 0
                      in
                      if u >= k then ok := false
                    done;
                    !ok)
          in
          if fits then begin
            starts.(i) <- !cstep;
            scheduled.(i) <- true;
            incr n_done;
            progressed := true;
            match fu_class ops.(i).C.opcode with
            | None -> ()
            | Some cls ->
                let span = max 1 d.(i) in
                for t = !cstep to !cstep + span - 1 do
                  let u =
                    try Hashtbl.find usage_at (cls, t) with Not_found -> 0
                  in
                  Hashtbl.replace usage_at (cls, t) (u + 1)
                done
          end)
        ready
    done;
    incr cstep;
    if !cstep > 10 * ((n * 10) + 16) then
      invalid_arg "Sched.list_schedule: no progress (internal error)"
  done;
  mk_schedule starts d n

let usage (b : C.block) sched =
  let ops = ops_array b in
  let d = delays b in
  let tbl : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (o : C.op) ->
      match fu_class o.C.opcode with
      | None -> ()
      | Some cls ->
          let span = max 1 d.(i) in
          for t = sched.start.(i) to sched.start.(i) + span - 1 do
            let u = try Hashtbl.find tbl (cls, t) with Not_found -> 0 in
            Hashtbl.replace tbl (cls, t) (u + 1)
          done)
    ops;
  let peak : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (cls, _) u ->
      let cur = try Hashtbl.find peak cls with Not_found -> 0 in
      if u > cur then Hashtbl.replace peak cls u)
    tbl;
  Hashtbl.fold (fun c u acc -> (c, u) :: acc) peak [] |> List.sort compare

let force_directed (b : C.block) ~latency =
  let ops = ops_array b in
  let n = Array.length ops in
  let d = delays b in
  let a = asap b in
  if latency < a.length then
    invalid_arg
      (Printf.sprintf "Sched.force_directed: latency %d < critical path %d"
         latency a.length);
  let l = alap b ~latency in
  (* current feasible window per op *)
  let lo = Array.copy a.start and hi = Array.copy l.start in
  let fixed = Array.make n false in
  let span i = max 1 d.(i) in
  let horizon = latency + Array.fold_left max 1 (Array.map (fun x -> max 1 x) d) + 2 in
  (* propagate window tightening through dependences *)
  let tighten () =
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i (o : C.op) ->
          List.iter
            (fun arg ->
              (* producer must finish before consumer starts *)
              if lo.(arg) + d.(arg) > lo.(i) then begin
                lo.(i) <- lo.(arg) + d.(arg);
                changed := true
              end;
              if hi.(i) - d.(arg) < hi.(arg) then begin
                hi.(arg) <- hi.(i) - d.(arg);
                changed := true
              end)
            o.C.args)
        ops
    done
  in
  tighten ();
  let remaining = ref n in
  Array.iteri
    (fun i _ ->
      if lo.(i) = hi.(i) then begin
        fixed.(i) <- true;
        decr remaining
      end)
    ops;
  (* probability that op i occupies cstep t under its current window:
     uniform start in [lo, hi], occupying [s, s+span) *)
  let prob_of i =
    let w = hi.(i) - lo.(i) + 1 in
    let p = Array.make horizon 0.0 in
    for s = lo.(i) to hi.(i) do
      for t = s to min (horizon - 1) (s + span i - 1) do
        p.(t) <- p.(t) +. (1.0 /. float_of_int w)
      done
    done;
    p
  in
  (* distribution graphs per FU class, rebuilt after every fix (windows
     shrink under tightening, so incremental updates are fiddly; a full
     rebuild is O(n * window) and cheap enough) *)
  let build_dgs () =
    let dgs : (string, float array) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun i (o : C.op) ->
        match fu_class o.C.opcode with
        | None -> ()
        | Some cls ->
            let dg =
              match Hashtbl.find_opt dgs cls with
              | Some a -> a
              | None ->
                  let a = Array.make horizon 0.0 in
                  Hashtbl.replace dgs cls a;
                  a
            in
            let p = prob_of i in
            for t = 0 to horizon - 1 do
              dg.(t) <- dg.(t) +. p.(t)
            done)
      ops;
    dgs
  in
  while !remaining > 0 do
    let dgs = build_dgs () in
    (* pick the unfixed (op, cstep) with minimal self-force *)
    let best = ref None in
    let consider cand =
      match (!best, cand) with
      | None, _ -> best := Some cand
      | Some (f, bi, bs), (fc, ic, sc) ->
          if fc < f -. 1e-9 || (abs_float (fc -. f) <= 1e-9 && (ic, sc) < (bi, bs))
          then best := Some cand
    in
    Array.iteri
      (fun i (o : C.op) ->
        if not fixed.(i) then
          match fu_class o.C.opcode with
          | None -> consider (0.0, i, lo.(i))
          | Some cls ->
              let dg = Hashtbl.find dgs cls in
              (* prefix sums of dg for O(1) interval queries *)
              let pre = Array.make (horizon + 1) 0.0 in
              for t = 0 to horizon - 1 do
                pre.(t + 1) <- pre.(t) +. dg.(t)
              done;
              (* force(s) = sum_{t in [s, s+span)} dg(t) - cross
                 where cross = sum_t dg(t) * p_i(t) is s-independent *)
              let p = prob_of i in
              let cross = ref 0.0 in
              for t = lo.(i) to min (horizon - 1) (hi.(i) + span i - 1) do
                cross := !cross +. (dg.(t) *. p.(t))
              done;
              for s = lo.(i) to hi.(i) do
                let f =
                  pre.(min horizon (s + span i)) -. pre.(s) -. !cross
                in
                consider (f, i, s)
              done)
      ops;
    (match !best with
    | None -> assert false
    | Some (_, i, s) ->
        lo.(i) <- s;
        hi.(i) <- s;
        fixed.(i) <- true;
        decr remaining;
        tighten ();
        (* tightening may collapse further windows *)
        Array.iteri
          (fun j _ ->
            if (not fixed.(j)) && lo.(j) = hi.(j) then begin
              fixed.(j) <- true;
              decr remaining
            end)
          ops)
  done;
  { start = Array.copy lo; length = latency }

let verify (b : C.block) sched =
  let ops = ops_array b in
  let d = delays b in
  Array.iteri
    (fun i (o : C.op) ->
      if sched.start.(i) < 0 then
        invalid_arg (Printf.sprintf "Sched.verify: op %d unscheduled" i);
      List.iter
        (fun a ->
          if sched.start.(a) + d.(a) > sched.start.(i) then
            invalid_arg
              (Printf.sprintf
                 "Sched.verify: op %d starts at %d before producer %d \
                  finishes at %d"
                 i sched.start.(i) a
                 (sched.start.(a) + d.(a))))
        o.C.args)
    ops
