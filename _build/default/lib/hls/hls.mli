(** End-to-end high-level synthesis: the hardware implementation path of
    the co-design flow (paper §3.2 / §4.5, refs [6][17]).

    Two services:

    - {!synthesize_block}: schedule, bind and generate a verifiable FSMD
      for one data-flow block, with a full area/latency report.
    - {!estimate}: synthesise every block of a {!Codesign_ir.Behavior}
      under a shared datapath and report invocation cycles and total
      area.  This is the hardware-side cost model the partitioners query
      when they consider moving a behaviour into hardware.

    Estimation composes with {!Codesign_rtl.Estimate.Incremental} for
    cross-task sharing: [estimate] returns the op mix alongside area so a
    partitioner can feed it to the incremental estimator instead of using
    the standalone area. *)

type report = {
  latency : int;  (** FSMD cycles for one invocation (incl. commit) *)
  fu_alloc : (string * int) list;
  fu_area : int;
  registers : int;  (** shared-register count (left-edge) *)
  reg_area : int;
  mux_area : int;
  ctrl_area : int;  (** state register + next-state logic *)
  total_area : int;
}

type scheduler =
  | List_sched of (string * int) list
      (** resource-constrained; the list gives per-class FU bounds *)
  | Force_directed of int  (** latency bound *)
  | Asap_sched

val synthesize_block :
  ?name:string ->
  ?scheduler:scheduler ->
  Codesign_ir.Cdfg.block ->
  Codesign_rtl.Fsmd.t * report
(** Defaults to [List_sched default_resources].
    @raise Invalid_argument for blocks with memory ops (estimation still
    works for those via {!estimate_block}). *)

val estimate_block :
  ?scheduler:scheduler -> Codesign_ir.Cdfg.block -> report
(** Like {!synthesize_block} but without FSMD generation, so memory ops
    are allowed. *)

type behavior_estimate = {
  cycles : int;  (** trip-weighted invocation cycles over all blocks *)
  area : int;  (** shared-datapath area across blocks *)
  mix : (string * int) list;  (** trip-weighted op mix (for sharing) *)
  n_blocks : int;
}

val estimate :
  ?scheduler:scheduler -> Codesign_ir.Behavior.proc -> behavior_estimate
(** Elaborates the behaviour and estimates a single-thread hardware
    implementation: blocks execute sequentially on a datapath sized to
    the worst block. *)

val default_resources : (string * int) list
(** [alu 2, logic 2, mul 1, div 1, shift 1, cmp 1, mem 1]. *)
