(** Resource allocation and binding.

    Consumes a scheduled block and produces:
    - a functional-unit binding (each FU-occupying op -> (class, instance))
      such that no two ops overlap on an instance;
    - a register allocation for op result values by the left-edge
      algorithm over value lifetimes (def completion to last use), giving
      the minimum register count for the schedule;
    - multiplexer cost estimates from the number of distinct sources
      feeding each FU input and each register.

    The register allocation is used for {i area} only; the generated
    controller keeps one architectural register per value for functional
    transparency (see {!Controller}). *)

type fu = { cls : string; index : int }

type t = {
  fu_of_op : fu option array;  (** per op id; [None] for wire-like ops *)
  fu_alloc : (string * int) list;  (** instances allocated per class *)
  reg_of_value : int array;  (** register index per op id (-1 if dead) *)
  n_registers : int;
  lifetimes : (int * int) array;  (** [def, last_use) per op id *)
  mux_inputs : int;  (** total mux fan-in beyond 1 across FUs and regs *)
}

val bind : Codesign_ir.Cdfg.block -> Sched.t -> t
(** @raise Invalid_argument if the schedule fails {!Sched.verify}. *)

val fu_area : t -> int
val reg_area : t -> int
val mux_area : t -> int

val datapath_area : t -> int
(** [fu_area + reg_area + mux_area]. *)

val verify : Codesign_ir.Cdfg.block -> Sched.t -> t -> unit
(** Independently re-checks FU exclusivity and register lifetime
    disjointness.  @raise Invalid_argument on violation. *)
