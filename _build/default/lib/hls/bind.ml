module C = Codesign_ir.Cdfg

type fu = { cls : string; index : int }

type t = {
  fu_of_op : fu option array;
  fu_alloc : (string * int) list;
  reg_of_value : int array;
  n_registers : int;
  lifetimes : (int * int) array;
  mux_inputs : int;
}

let bind (b : C.block) (sched : Sched.t) =
  Sched.verify b sched;
  let ops = Array.of_list b.C.ops in
  let n = Array.length ops in
  let delay i = Sched.op_delay ops.(i).C.opcode in
  let span i = max 1 (delay i) in
  (* ---- FU binding: greedy first-fit in cstep order ---- *)
  let fu_of_op = Array.make n None in
  (* per class: list of (instance, busy_until) where busy_until is the
     first free cstep *)
  let free_at : (string, int array ref) Hashtbl.t = Hashtbl.create 8 in
  let order =
    List.sort
      (fun i j ->
        if sched.Sched.start.(i) <> sched.Sched.start.(j) then
          compare sched.Sched.start.(i) sched.Sched.start.(j)
        else compare i j)
      (List.init n Fun.id)
  in
  List.iter
    (fun i ->
      match Sched.fu_class ops.(i).C.opcode with
      | None -> ()
      | Some cls ->
          let insts =
            match Hashtbl.find_opt free_at cls with
            | Some r -> r
            | None ->
                let r = ref [||] in
                Hashtbl.replace free_at cls r;
                r
          in
          let s = sched.Sched.start.(i) in
          let rec find k =
            if k >= Array.length !insts then begin
              (* allocate a new instance *)
              insts := Array.append !insts [| 0 |];
              k
            end
            else if !insts.(k) <= s then k
            else find (k + 1)
          in
          let k = find 0 in
          !insts.(k) <- s + span i;
          fu_of_op.(i) <- Some { cls; index = k })
    order;
  let fu_alloc =
    Hashtbl.fold
      (fun cls insts acc -> (cls, Array.length !insts) :: acc)
      free_at []
    |> List.sort compare
  in
  (* ---- value lifetimes and left-edge register allocation ---- *)
  let last_use = Array.make n (-1) in
  Array.iteri
    (fun i (o : C.op) ->
      List.iter
        (fun a ->
          (* the consumer reads its sources at its start cstep; a
             multi-cycle consumer holds them until completion *)
          let use = sched.Sched.start.(i) + span i in
          if use > last_use.(a) then last_use.(a) <- use)
        o.C.args)
    ops;
  let lifetimes =
    Array.init n (fun i ->
        let def = sched.Sched.start.(i) + delay i in
        (def, last_use.(i)))
  in
  let reg_of_value = Array.make n (-1) in
  (* sort live values by definition time (left edge) *)
  let live =
    List.filter (fun i -> snd lifetimes.(i) > fst lifetimes.(i))
      (List.init n Fun.id)
    |> List.sort (fun i j ->
           if fst lifetimes.(i) <> fst lifetimes.(j) then
             compare (fst lifetimes.(i)) (fst lifetimes.(j))
           else compare i j)
  in
  let reg_free = ref [||] in
  List.iter
    (fun i ->
      let def, fin = lifetimes.(i) in
      let rec find k =
        if k >= Array.length !reg_free then begin
          reg_free := Array.append !reg_free [| 0 |];
          k
        end
        else if !reg_free.(k) <= def then k
        else find (k + 1)
      in
      let k = find 0 in
      !reg_free.(k) <- fin;
      reg_of_value.(i) <- k)
    live;
  let n_registers = Array.length !reg_free in
  (* ---- mux estimation ---- *)
  (* distinct source values per FU operand slot *)
  let fu_sources : (string * int * int, int list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Array.iteri
    (fun i (o : C.op) ->
      match fu_of_op.(i) with
      | None -> ()
      | Some { cls; index } ->
          List.iteri
            (fun slot a ->
              let key = (cls, index, slot) in
              let r =
                match Hashtbl.find_opt fu_sources key with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.replace fu_sources key r;
                    r
              in
              if not (List.mem a !r) then r := a :: !r)
            o.C.args)
    ops;
  (* distinct writers per register *)
  let reg_sources : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i _ ->
      let r = reg_of_value.(i) in
      if r >= 0 then begin
        let l =
          match Hashtbl.find_opt reg_sources r with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace reg_sources r l;
              l
        in
        if not (List.mem i !l) then l := i :: !l
      end)
    ops;
  let mux_inputs =
    Hashtbl.fold
      (fun _ r acc -> acc + max 0 (List.length !r - 1))
      fu_sources 0
    + Hashtbl.fold
        (fun _ l acc -> acc + max 0 (List.length !l - 1))
        reg_sources 0
  in
  {
    fu_of_op;
    fu_alloc;
    reg_of_value;
    n_registers;
    lifetimes;
    mux_inputs;
  }

let fu_area t =
  List.fold_left
    (fun acc (cls, k) -> acc + (k * Sched.fu_class_area cls))
    0 t.fu_alloc

let reg_area t = 32 * t.n_registers
let mux_area t = 3 * 32 * t.mux_inputs / 16
(* a 2:1 32-bit mux is 3*32/16 = 6 NAND-eq per extra input in our scaled
   units; keep integer arithmetic *)

let datapath_area t = fu_area t + reg_area t + mux_area t

let verify (b : C.block) (sched : Sched.t) t =
  let ops = Array.of_list b.C.ops in
  let n = Array.length ops in
  let span i = max 1 (Sched.op_delay ops.(i).C.opcode) in
  (* FU exclusivity *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match (t.fu_of_op.(i), t.fu_of_op.(j)) with
      | Some a, Some b' when a = b' ->
          let si = sched.Sched.start.(i) and sj = sched.Sched.start.(j) in
          let overlap = si < sj + span j && sj < si + span i in
          if overlap then
            invalid_arg
              (Printf.sprintf "Bind.verify: ops %d and %d overlap on %s#%d" i
                 j a.cls a.index)
      | _ -> ()
    done
  done;
  (* register disjointness *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        t.reg_of_value.(i) >= 0
        && t.reg_of_value.(i) = t.reg_of_value.(j)
      then begin
        let di, fi = t.lifetimes.(i) and dj, fj = t.lifetimes.(j) in
        if di < fj && dj < fi then
          invalid_arg
            (Printf.sprintf "Bind.verify: values %d and %d share register %d"
               i j t.reg_of_value.(i))
      end
    done
  done
