lib/hls/controller.mli: Codesign_ir Codesign_rtl Sched
