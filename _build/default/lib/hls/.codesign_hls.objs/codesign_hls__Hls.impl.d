lib/hls/hls.ml: Bind Codesign_ir Controller Hashtbl List Sched
