lib/hls/hls.mli: Codesign_ir Codesign_rtl
