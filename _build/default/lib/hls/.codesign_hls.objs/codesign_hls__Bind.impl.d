lib/hls/bind.ml: Array Codesign_ir Fun Hashtbl List Printf Sched
