lib/hls/sched.mli: Codesign_ir
