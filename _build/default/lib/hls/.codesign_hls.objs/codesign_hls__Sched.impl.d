lib/hls/sched.ml: Array Codesign_ir Codesign_rtl Fun Hashtbl List Printf String
