lib/hls/bind.mli: Codesign_ir Sched
