lib/hls/controller.ml: Array Codesign_ir Codesign_rtl Hashtbl List Printf Sched String
