(** Controller generation: a scheduled data-flow block becomes an
    executable {!Codesign_rtl.Fsmd}.

    One FSMD state per control step, chained [S0 -> S1 -> ...]; the last
    state has no transition (the machine halts there).  Each op commits
    its result register [v<id>] in the state where it completes
    (multi-cycle ops commit [delay - 1] states after they start);
    wire-like ops ([Const]/[Read]) are inlined into consumer expressions,
    and [Write x] transfers the value to the architectural register [x].

    For functional transparency the generated datapath keeps one register
    per value (register {i sharing} is an area concern handled by
    {!Bind}); this keeps generated machines verifiable against the
    reference DFG evaluation, which the test suite exploits.

    Blocks containing [Load]/[Store] are rejected (memory is modelled at
    the behavioural level, not inside generated FSMDs). *)

val of_block :
  ?name:string -> Codesign_ir.Cdfg.block -> Sched.t -> Codesign_rtl.Fsmd.t
(** @raise Invalid_argument on memory ops or an infeasible schedule. *)

val eval_block_reference :
  Codesign_ir.Cdfg.block -> env:(string -> int) -> (string * int) list
(** Reference semantics of a DFG block: evaluates ops in order, reading
    external names ([Read]) through [env], and returns the final value of
    every name written by a [Write], sorted.  Used to verify generated
    FSMDs. *)
