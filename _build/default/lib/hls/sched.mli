(** Operation scheduling for high-level synthesis.

    Schedules the data-flow graph of one {!Codesign_ir.Cdfg.block} into
    control steps (csteps).  Delays come from the hardware delay model
    ({!Codesign_rtl.Estimate.hw_op_delay}): wire-like operations
    ([Const]/[Read]/[Write]) take 0 cycles, single-cycle ALU ops 1,
    multipliers 2, dividers 8, memory 2.

    Three schedulers are provided:
    - {!asap}/{!alap} — unconstrained bounds (and {!mobility});
    - {!list_schedule} — resource-constrained list scheduling with
      critical-path priority;
    - {!force_directed} — latency-constrained force-directed scheduling
      (Paulin/Knight style, self-forces only), which minimises the
      expected peak resource usage under a latency bound. *)

type t = {
  start : int array;  (** cstep at which each op begins *)
  length : int;  (** total csteps (makespan) *)
}

val op_delay : Codesign_ir.Cdfg.opcode -> int
(** The HLS delay model described above. *)

val fu_class : Codesign_ir.Cdfg.opcode -> string option
(** Functional-unit class an opcode occupies ([None] for wire-like ops):
    ["alu"] add/sub/neg, ["logic"] and/or/xor/not, ["mul"], ["div"]
    div/rem, ["shift"], ["cmp"] lt/eq, ["mem"] load/store. *)

val fu_class_area : string -> int
(** Area of one unit of a class (32-bit NAND-equivalents). *)

val asap : Codesign_ir.Cdfg.block -> t

val alap : Codesign_ir.Cdfg.block -> latency:int -> t
(** @raise Invalid_argument if [latency] is below the critical path. *)

val mobility : Codesign_ir.Cdfg.block -> int array
(** ALAP(cp) - ASAP slack per op. *)

val list_schedule :
  Codesign_ir.Cdfg.block -> resources:(string * int) list -> t
(** Resource-constrained list scheduling; classes absent from
    [resources] are unconstrained.  @raise Invalid_argument on a
    non-positive constraint. *)

val force_directed : Codesign_ir.Cdfg.block -> latency:int -> t
(** Latency-constrained FDS. @raise Invalid_argument if [latency] is
    below the critical path. *)

val usage : Codesign_ir.Cdfg.block -> t -> (string * int) list
(** Peak concurrent FU usage per class under a schedule (the FU
    allocation this schedule needs), sorted by class. *)

val verify : Codesign_ir.Cdfg.block -> t -> unit
(** Checks dependence feasibility (consumer starts after producer
    finishes).  @raise Invalid_argument on violation. *)
