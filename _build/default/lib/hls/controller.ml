module C = Codesign_ir.Cdfg
module F = Codesign_rtl.Fsmd

let is_io name = String.contains name ':'

let chan_of name =
  (* "chan:c" -> Some "c" *)
  if String.length name > 5 && String.sub name 0 5 = "chan:" then
    Some (String.sub name 5 (String.length name - 5))
  else None

let of_block ?name (b : C.block) (sched : Sched.t) =
  Sched.verify b sched;
  let fsmd_name =
    match name with Some n -> n | None -> "hls_" ^ b.C.label
  in
  let ops = Array.of_list b.C.ops in
  Array.iter
    (fun (o : C.op) ->
      match o.C.opcode with
      | C.Load _ | C.Store _ ->
          invalid_arg
            "Controller.of_block: memory operations are not synthesisable \
             to an FSMD (model them at the behavioural level)"
      | _ -> ())
    ops;
  let vreg i = Printf.sprintf "%%v%d" i in
  (* Source expression for operand [a]: constants and plain-variable
     reads inline (architectural registers only change in the commit
     epilogue, so they are stable throughout the body); everything else
     reads the value register committed by the producer.  I/O reads are
     1-cycle ops, so their value registers always commit strictly before
     any consumer starts. *)
  let src a =
    match ops.(a).C.opcode with
    | C.Const k -> F.Const k
    | C.Read nm when not (is_io nm) -> F.Reg nm
    | _ -> F.Reg (vreg a)
  in
  (* last write per architectural variable *)
  let last_write : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i (o : C.op) ->
      match o.C.opcode with
      | C.Write v when not (is_io v) -> Hashtbl.replace last_write v i
      | _ -> ())
    ops;
  (* collect actions per body state *)
  let actions : (int, F.action list ref) Hashtbl.t = Hashtbl.create 16 in
  let max_state = ref 0 in
  let add_action state a =
    let r =
      match Hashtbl.find_opt actions state with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.replace actions state r;
          r
    in
    r := a :: !r;
    if state > !max_state then max_state := state
  in
  let epilogue = ref [] in
  Array.iteri
    (fun i (o : C.op) ->
      let start = sched.Sched.start.(i) in
      let d = Sched.op_delay o.C.opcode in
      let commit = start + max 0 (d - 1) in
      match o.C.opcode with
      | C.Const _ -> () (* inlined *)
      | C.Read nm -> (
          match chan_of nm with
          | Some ch -> add_action start (F.ARecv (vreg i, ch))
          | None ->
              if is_io nm then add_action start (F.Set (vreg i, F.Inp nm))
              (* plain variable reads are inlined at the consumer *))
      | C.Write nm -> (
          let value = src (List.hd o.C.args) in
          match chan_of nm with
          | Some ch -> add_action start (F.ASend (ch, value))
          | None ->
              if is_io nm then add_action start (F.AOut (nm, value))
              else if Hashtbl.find_opt last_write nm = Some i then
                (* architectural commit happens in the epilogue so no
                   in-flight reader can observe it early *)
                epilogue := F.Set (nm, value) :: !epilogue
              else () (* dead intermediate write *))
      | C.Neg | C.Not ->
          add_action commit
            (F.Set (vreg i, F.Un (o.C.opcode, src (List.nth o.C.args 0))))
      | _ ->
          add_action commit
            (F.Set
               ( vreg i,
                 F.Bin
                   ( o.C.opcode,
                     src (List.nth o.C.args 0),
                     src (List.nth o.C.args 1) ) )))
    ops;
  let n_body = max sched.Sched.length (!max_state + 1) in
  let n_body = max n_body 1 in
  let state_name k = Printf.sprintf "S%d" k in
  let body_states =
    List.init n_body (fun k ->
        {
          F.sname = state_name k;
          actions =
            (match Hashtbl.find_opt actions k with
            | Some r -> List.rev !r
            | None -> []);
          trans =
            [
              {
                F.guard = None;
                target =
                  (if k = n_body - 1 then "commit" else state_name (k + 1));
              };
            ];
        })
  in
  let commit_state =
    { F.sname = "commit"; actions = List.rev !epilogue; trans = [] }
  in
  F.make ~name:fsmd_name ~start:(state_name 0) (body_states @ [ commit_state ])

let eval_block_reference (b : C.block) ~env =
  let values = Hashtbl.create 16 in
  let written : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let get a = Hashtbl.find values a in
  List.iter
    (fun (o : C.op) ->
      let v =
        match o.C.opcode with
        | C.Const k -> k
        | C.Read nm -> (
            match Hashtbl.find_opt written nm with
            | Some v -> v
            | None -> env nm)
        | C.Write nm ->
            let v = get (List.hd o.C.args) in
            Hashtbl.replace written nm v;
            v
        | C.Load _ | C.Store _ ->
            invalid_arg "Controller.eval_block_reference: memory op"
        | C.Neg -> -get (List.hd o.C.args)
        | C.Not -> if get (List.hd o.C.args) = 0 then 1 else 0
        | op -> (
            let a = get (List.nth o.C.args 0)
            and b' = get (List.nth o.C.args 1) in
            match op with
            | C.Add -> a + b'
            | C.Sub -> a - b'
            | C.Mul -> a * b'
            | C.Div -> if b' = 0 then 0 else a / b'
            | C.Rem -> if b' = 0 then 0 else a mod b'
            | C.And -> a land b'
            | C.Or -> a lor b'
            | C.Xor -> a lxor b'
            | C.Shl -> a lsl (b' land 31)
            | C.Shr -> a asr (b' land 31)
            | C.Lt -> if a < b' then 1 else 0
            | C.Eq -> if a = b' then 1 else 0
            | _ -> assert false)
      in
      Hashtbl.replace values o.C.id v)
    b.C.ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) written [] |> List.sort compare
