module C = Codesign_ir.Cdfg
module B = Codesign_ir.Behavior

type report = {
  latency : int;
  fu_alloc : (string * int) list;
  fu_area : int;
  registers : int;
  reg_area : int;
  mux_area : int;
  ctrl_area : int;
  total_area : int;
}

type scheduler =
  | List_sched of (string * int) list
  | Force_directed of int
  | Asap_sched

let default_resources =
  [
    ("alu", 2); ("logic", 2); ("mul", 1); ("div", 1); ("shift", 1);
    ("cmp", 1); ("mem", 1);
  ]

let run_scheduler scheduler block =
  match scheduler with
  | Asap_sched -> Sched.asap block
  | List_sched resources -> Sched.list_schedule block ~resources
  | Force_directed latency ->
      let cp = (Sched.asap block).Sched.length in
      Sched.force_directed block ~latency:(max latency cp)

let report_of block sched binding =
  let n_states = max 1 sched.Sched.length + 1 (* commit state *) in
  let state_bits =
    let rec bits k = if 1 lsl k >= n_states then k else bits (k + 1) in
    bits 1
  in
  let ctrl_area = (6 * state_bits) + (4 * n_states) in
  let fu_area = Bind.fu_area binding in
  let reg_area = Bind.reg_area binding in
  let mux_area = Bind.mux_area binding in
  ignore block;
  {
    latency = n_states;
    fu_alloc = binding.Bind.fu_alloc;
    fu_area;
    registers = binding.Bind.n_registers;
    reg_area;
    mux_area;
    ctrl_area;
    total_area = fu_area + reg_area + mux_area + ctrl_area;
  }

let estimate_block ?(scheduler = List_sched default_resources) block =
  let sched = run_scheduler scheduler block in
  let binding = Bind.bind block sched in
  report_of block sched binding

let synthesize_block ?name ?(scheduler = List_sched default_resources) block
    =
  let sched = run_scheduler scheduler block in
  let binding = Bind.bind block sched in
  let fsmd = Controller.of_block ?name block sched in
  (fsmd, report_of block sched binding)

type behavior_estimate = {
  cycles : int;
  area : int;
  mix : (string * int) list;
  n_blocks : int;
}

let estimate ?(scheduler = List_sched default_resources) proc =
  let cdfg = B.elaborate proc in
  let reports =
    List.map (fun b -> (b, estimate_block ~scheduler b)) cdfg.C.blocks
  in
  let cycles =
    List.fold_left
      (fun acc (b, r) -> acc + (b.C.trip * r.latency))
      0 reports
  in
  (* shared datapath: per-class max FU allocation over blocks, worst-case
     register file, summed controllers (each block keeps its control
     states in the composed machine) *)
  let alloc : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun (cls, k) ->
          let cur = try Hashtbl.find alloc cls with Not_found -> 0 in
          if k > cur then Hashtbl.replace alloc cls k)
        r.fu_alloc)
    reports;
  let fu_area =
    Hashtbl.fold
      (fun cls k acc -> acc + (k * Sched.fu_class_area cls))
      alloc 0
  in
  let reg_area =
    32 * List.fold_left (fun acc (_, r) -> max acc r.registers) 0 reports
  in
  let mux_area =
    List.fold_left (fun acc (_, r) -> max acc r.mux_area) 0 reports
  in
  let ctrl_area =
    List.fold_left (fun acc (_, r) -> acc + r.ctrl_area) 0 reports
  in
  {
    cycles;
    area = fu_area + reg_area + mux_area + ctrl_area;
    mix = C.op_mix cdfg;
    n_blocks = List.length reports;
  }
