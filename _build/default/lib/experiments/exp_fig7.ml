(** EXP-7 — paper Fig. 7 / §4.4: special-purpose functional units with
    field-programmable implementation (instruction-set metamorphosis,
    Athanas-Silverman [15]).

    A workload alternating between a MAC-heavy kernel (fir) and a
    bitwise kernel (crc32) runs on a processor whose extension FUs live
    in a small reconfigurable fabric.  A static configuration must pick
    one compromise FU set; a dynamic one reconfigures between
    applications and pays the reconfiguration latency.

    Expected shape: for a single-application workload static wins (no
    reconfiguration, perfect fit); for the alternating mix dynamic wins
    when the fabric is too small to host both pattern sets — until the
    reconfiguration cost grows past the per-application gain. *)

open Codesign
module Kernels = Codesign_workloads.Kernels

let app name =
  let _, p, b = List.find (fun (n, _, _) -> n = name) Kernels.all in
  (p, b)

let mixes ~reps =
  let fir = app "fir" and crc = app "crc32" in
  [
    ("fir only", List.init reps (fun _ -> fir));
    ("crc only", List.init reps (fun _ -> crc));
    ( "alternating fir/crc",
      List.concat (List.init reps (fun _ -> [ fir; crc ])) );
  ]

let run ?(quick = false) () =
  let reps = if quick then 2 else 4 in
  let costs = if quick then [ 0; 5000 ] else [ 0; 1000; 5000; 50000 ] in
  let rows =
    List.concat_map
      (fun (mix_name, apps) ->
        List.map
          (fun reconfig_cost ->
            let o =
              Asip.Reconfig.compare ~capacity:400 ~reconfig_cost apps
            in
            [
              mix_name;
              Report.fi reconfig_cost;
              Report.fi o.Asip.Reconfig.static_cycles;
              Report.fi o.Asip.Reconfig.dynamic_cycles;
              Report.fi o.Asip.Reconfig.reconfigurations;
              String.concat "+" o.Asip.Reconfig.static_set;
              o.Asip.Reconfig.winner;
            ])
          costs)
      (mixes ~reps)
  in
  Report.table
    ~title:
      "EXP-7 (Fig. 7 / SS4.4): static vs dynamically reconfigured \
       special-purpose FUs (fabric capacity 400)"
    ~headers:
      [ "workload"; "reconfig cost"; "static cyc"; "dynamic cyc";
        "reconfigs"; "static set"; "winner" ]
    ~align:[ Report.L; R; R; R; R; L; L ]
    rows

let shape_holds ?quick:_ () =
  let fir = app "fir" and crc = app "crc32" in
  let single =
    Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:1000
      [ fir; fir; fir ]
  in
  let mixed_cheap =
    Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:0
      [ fir; crc; fir; crc ]
  in
  let mixed_dear =
    Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:10_000_000
      [ fir; crc; fir; crc ]
  in
  (* single-app: nothing to reconfigure between *)
  single.Asip.Reconfig.winner = "static"
  (* free reconfig can only help *)
  && mixed_cheap.Asip.Reconfig.dynamic_cycles
     <= mixed_cheap.Asip.Reconfig.static_cycles
  (* absurd reconfig cost hands it back to static *)
  && mixed_dear.Asip.Reconfig.winner = "static"
