(** EXP-2 — paper Fig. 2 / §3: the design-activity containment diagram.

    Prints the activity coverage matrix of every methodology implemented
    in this repository and verifies the figure's containment relation on
    it: HW/SW partitioning only ever occurs inside co-synthesis, and
    both live inside co-design. *)

open Codesign

let covers m a = List.mem a m.Taxonomy.activities

let run ?quick:_ () =
  let mark b = if b then "x" else "" in
  let rows =
    List.map
      (fun m ->
        [
          m.Taxonomy.m_name;
          mark (covers m Taxonomy.Co_simulation);
          mark (covers m Taxonomy.Co_synthesis);
          mark (covers m Taxonomy.Hw_sw_partitioning);
        ])
      Taxonomy.catalogue
  in
  Report.table
    ~title:
      "EXP-2 (Fig. 2 / SS3): design activities integrated by each \
       implemented methodology"
    ~headers:[ "methodology"; "co-sim"; "co-synth"; "partitioning" ]
    ~align:[ Report.L; L; L; L ]
    rows

(* Fig. 2's containment: partitioning c cosynthesis c codesign. *)
let containment_holds () =
  List.for_all
    (fun m ->
      (not (covers m Taxonomy.Hw_sw_partitioning))
      || covers m Taxonomy.Co_synthesis)
    Taxonomy.catalogue
  && List.for_all
       (fun m -> m.Taxonomy.activities <> [])
       Taxonomy.catalogue
