(** EXP-1 — paper Fig. 1 / §2: Type I vs Type II classification.

    Builds structural component descriptions of the six §4 system
    classes, classifies each with the live {!Codesign.Taxonomy.classify}
    rule, and checks the result against the classification the paper
    assigns in its prose.  The printed table is the reproduction of the
    Fig. 1 dichotomy. *)

open Codesign

let sw name ?host level =
  {
    Taxonomy.comp_name = name;
    is_software = true;
    level;
    executes_on = host;
  }

let hw name level =
  { Taxonomy.comp_name = name; is_software = false; level; executes_on = None }

(* Structural description of each §4 system family plus the paper's own
   classification of it. *)
let systems =
  [
    ( "4.1 embedded microprocessor",
      [
        sw "application" ~host:"microprocessor" Taxonomy.Program;
        hw "microprocessor" Taxonomy.Gate_netlist;
        hw "glue logic" Taxonomy.Gate_netlist;
      ],
      Taxonomy.Type_I );
    ( "4.2 heterogeneous multiprocessor",
      [
        sw "task set" ~host:"pe farm" Taxonomy.Program;
        hw "pe farm" Taxonomy.Register_transfer;
        hw "interconnect" Taxonomy.Register_transfer;
      ],
      Taxonomy.Type_I );
    ( "4.3 application-specific ISP",
      [
        sw "application" ~host:"asip core" Taxonomy.Program;
        hw "asip core" Taxonomy.Register_transfer;
      ],
      Taxonomy.Type_I );
    ( "4.4 special-purpose FUs",
      [
        sw "application" ~host:"core+fus" Taxonomy.Program;
        hw "core+fus" Taxonomy.Register_transfer;
      ],
      Taxonomy.Type_I );
    ( "4.5 custom co-processor",
      [
        sw "host program" Taxonomy.Behavioral;
        hw "co-processor" Taxonomy.Behavioral;
      ],
      Taxonomy.Type_II );
    ( "4.6 multi-threaded co-processor",
      [
        sw "host program" Taxonomy.Behavioral;
        hw "hw thread 0" Taxonomy.Behavioral;
        hw "hw thread 1" Taxonomy.Behavioral;
      ],
      Taxonomy.Type_II );
  ]

let run ?quick:_ () =
  let rows =
    List.map
      (fun (name, comps, expected) ->
        let got = Taxonomy.classify comps in
        [
          name;
          Taxonomy.boundary_name got;
          Taxonomy.boundary_name expected;
          (if got = expected then "ok" else "MISMATCH");
        ])
      systems
  in
  Report.table
    ~title:
      "EXP-1 (Fig. 1 / SS2): boundary classification of the six example \
       system classes"
    ~headers:[ "system class"; "classified"; "paper says"; "agreement" ]
    ~align:[ Report.L; L; L; L ]
    rows

let all_agree () =
  List.for_all
    (fun (_, comps, expected) -> Taxonomy.classify comps = expected)
    systems
