(** EXP-6 — paper Fig. 6 / §4.3: application-specific instruction-set
    processor synthesis (PEAS-I style [14]).

    For every DSP kernel, the full ASIP flow runs: mine extension
    patterns, select under an area budget, rewrite, and execute both
    program versions on the ISS.  Speedups are measured, not estimated,
    and each row is verified (identical outputs).

    A second table sweeps the area budget on the FIR kernel: the
    speedup-vs-area curve shows the diminishing returns the paper's
    modifiability/cost discussion anticipates. *)

open Codesign
module Kernels = Codesign_workloads.Kernels

let run ?(quick = false) () =
  let kernels =
    if quick then
      List.filter (fun (n, _, _) -> n = "fir" || n = "crc32") Kernels.all
    else Kernels.all
  in
  let rows =
    List.map
      (fun (name, proc, binds) ->
        let r = Asip.design proc binds in
        [
          name;
          String.concat "+" (List.map (fun p -> p.Asip.pname) r.Asip.selected);
          Report.fi r.Asip.fu_area;
          Report.fi r.Asip.base_cycles;
          Report.fi r.Asip.asip_cycles;
          Report.ff r.Asip.speedup ^ "x";
          (if r.Asip.verified then "ok" else "MISMATCH");
        ])
      kernels
  in
  let t1 =
    Report.table
      ~title:
        "EXP-6 (Fig. 6 / SS4.3): ASIP instruction-set extension per kernel \
         (budget 800, ISS-measured)"
      ~headers:
        [ "kernel"; "instructions added"; "fu area"; "base cycles";
          "asip cycles"; "speedup"; "verified" ]
      ~align:[ Report.L; L; R; R; R; R; L ]
      rows
  in
  let budgets = if quick then [ 0; 400; 800 ] else [ 0; 100; 200; 400; 800; 1600 ] in
  let _, fir, fir_b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let rows2 =
    List.map
      (fun budget ->
        let r = Asip.design ~budget fir fir_b in
        [
          Report.fi budget;
          String.concat "+" (List.map (fun p -> p.Asip.pname) r.Asip.selected);
          Report.fi r.Asip.fu_area;
          Report.ff r.Asip.speedup ^ "x";
        ])
      budgets
  in
  let t2 =
    Report.table
      ~title:"EXP-6b: speedup vs extension-area budget (fir kernel)"
      ~headers:[ "budget"; "selected"; "area used"; "speedup" ]
      ~align:[ Report.R; L; R; R ]
      rows2
  in
  t1 ^ "\n" ^ t2

let shape_holds ?quick:_ () =
  let _, fir, fir_b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let zero = Asip.design ~budget:0 fir fir_b in
  let full = Asip.design ~budget:1600 fir fir_b in
  zero.Asip.speedup <= 1.0 +. 1e-9
  && full.Asip.speedup > zero.Asip.speedup
  && full.Asip.verified
