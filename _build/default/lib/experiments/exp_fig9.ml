(** EXP-9 — paper Fig. 9 / §4.6: the multi-threaded custom co-processor
    (the authors' own multiple-process behavioural synthesis [10]).

    A fork/join network with hardware workers is synthesised into
    co-processors with 1..N controller/datapath threads and executed on
    the co-simulation kernel.  Expected shape: latency falls as threads
    are added, then saturates at the worker count; communication-aware
    process placement dominates placement that ignores communication
    (the [10] objective). *)

open Codesign
module Apps = Codesign_workloads.Apps
module Pn = Codesign_ir.Process_network

let run ?(quick = false) () =
  let workers = if quick then 3 else 4 in
  let items = if quick then 6 else 12 in
  let work = if quick then 12 else 24 in
  let net = Apps.fork_join ~workers ~items ~work () in
  let max_threads = workers + 1 in
  let ds = Coproc.sweep_threads ~max_threads net in
  let base = (List.hd ds).Coproc.latency in
  let rows =
    List.map
      (fun (d : Coproc.design) ->
        [
          string_of_int d.Coproc.threads;
          Report.fi d.Coproc.latency;
          Report.ff (float_of_int base /. float_of_int d.Coproc.latency)
          ^ "x";
          Report.fi d.Coproc.hw_area;
          Report.fi d.Coproc.crossing_channels;
          Report.fi d.Coproc.checksum;
        ])
      ds
  in
  let t1 =
    Report.table
      ~title:
        (Printf.sprintf
           "EXP-9 (Fig. 9 / SS4.6): multi-threaded co-processor — %d hw \
            workers, %d items, measured by co-simulation"
           workers items)
      ~headers:
        [ "hw threads"; "latency"; "speedup vs 1"; "hw area";
          "crossing chans"; "checksum" ]
      ~align:[ Report.R; R; R; R; R; R ]
      rows
  in
  (* communication-aware vs blind placement on a chatty hw pipeline *)
  let pipe = Apps.pipeline ~stages:3 ~count:items ~work:6 () in
  let pipe =
    Pn.remap pipe
      [ ("stage0", Pn.Hw); ("stage1", Pn.Hw); ("stage2", Pn.Hw) ]
  in
  let aware =
    Coproc.synthesize ~threads:2 ~comm_aware:true ~cross_cost:300 pipe
  in
  let blind =
    Coproc.synthesize ~threads:2 ~comm_aware:false ~cross_cost:300 pipe
  in
  let rows2 =
    List.map
      (fun (name, (d : Coproc.design)) ->
        [
          name;
          Report.fi d.Coproc.latency;
          Report.fi d.Coproc.crossing_channels;
          Report.fi d.Coproc.checksum;
        ])
      [ ("communication-aware [10]", aware); ("communication-blind", blind) ]
  in
  let t2 =
    Report.table
      ~title:
        "EXP-9b: placement objective ablation (3-stage hw pipeline on 2 \
         threads, 300 cycles per crossing message)"
      ~headers:[ "placement"; "latency"; "crossing chans"; "checksum" ]
      ~align:[ Report.L; R; R; R ]
      rows2
  in
  t1 ^ "\n" ^ t2

let shape_holds ?(quick = true) () =
  let workers = if quick then 2 else 4 in
  let net = Apps.fork_join ~workers ~items:6 ~work:16 () in
  let ds = Coproc.sweep_threads ~max_threads:workers net in
  let first = List.hd ds and last = List.nth ds (workers - 1) in
  let sums = List.map (fun d -> d.Coproc.checksum) ds in
  last.Coproc.latency < first.Coproc.latency
  && List.for_all (fun s -> s = List.hd sums) sums
