(** EXP-5 — paper Fig. 5 / §4.2: heterogeneous multiprocessor
    co-synthesis.

    Sweeps task-graph size and compares the three engines the paper
    surveys: exact SOS (ILP-equivalent branch & bound [12]), Beck-style
    vector bin packing [13], and Yen-Wolf sensitivity-driven improvement
    [9].

    Expected shape: SOS is always cheapest-or-equal among feasible
    solutions but its explored node count explodes with size; the
    heuristics stay within a modest price gap at a tiny fraction of the
    search effort. *)

open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff

let pe_lib =
  [
    { Cosynth.pt_name = "fast"; price = 100 };
    { Cosynth.pt_name = "mid"; price = 40 };
    { Cosynth.pt_name = "slow"; price = 15 };
  ]

let problem ?interconnect ?comm_cycles_per_word ~seed ~n_tasks () =
  let g =
    Tgff.generate
      {
        Tgff.default_spec with
        Tgff.seed;
        n_tasks;
        layers = max 2 (n_tasks / 3);
        deadline_factor = 1.1;
      }
  in
  let exec =
    Array.map
      (fun (t : T.task) ->
        [| max 1 (t.T.sw_cycles / 4); max 1 (t.T.sw_cycles / 2);
           t.T.sw_cycles |])
      g.T.tasks
  in
  Cosynth.problem ?interconnect ?comm_cycles_per_word g pe_lib ~exec

type point = {
  n_tasks : int;
  algorithm : string;
  price : int;
  feasible : bool;
  nodes : int;
  gap : float;  (** price overhead vs the exact optimum *)
}

let sweep ~sizes ~seeds =
  List.concat_map
    (fun n_tasks ->
      List.concat_map
        (fun seed ->
          let pb = problem ~seed ~n_tasks () in
          let opt = Cosynth.sos pb in
          let gap_of (s : Cosynth.solution) =
            if opt.Cosynth.feasible && s.Cosynth.feasible then
              float_of_int (s.Cosynth.price - opt.Cosynth.price)
              /. float_of_int (max opt.Cosynth.price 1)
            else nan
          in
          List.map
            (fun (s : Cosynth.solution) ->
              {
                n_tasks;
                algorithm = s.Cosynth.algorithm;
                price = s.Cosynth.price;
                feasible = s.Cosynth.feasible;
                nodes = s.Cosynth.nodes;
                gap = gap_of s;
              })
            [ opt; Cosynth.binpack pb; Cosynth.sensitivity pb ])
        seeds)
    sizes

let run ?(quick = false) () =
  let sizes = if quick then [ 5; 7 ] else [ 5; 7; 9; 11 ] in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let points = sweep ~sizes ~seeds in
  (* aggregate per (size, algorithm) *)
  let algs = [ "sos"; "binpack"; "sensitivity" ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun alg ->
            let ps =
              List.filter (fun p -> p.n_tasks = n && p.algorithm = alg) points
            in
            let count = max 1 (List.length ps) in
            let avg f =
              List.fold_left (fun a p -> a +. f p) 0.0 ps
              /. float_of_int count
            in
            let feas =
              List.length (List.filter (fun p -> p.feasible) ps)
            in
            let gaps = List.filter (fun p -> not (Float.is_nan p.gap)) ps in
            let avg_gap =
              if gaps = [] then 0.0
              else
                List.fold_left (fun a p -> a +. p.gap) 0.0 gaps
                /. float_of_int (List.length gaps)
            in
            [
              string_of_int n;
              alg;
              Report.ff (avg (fun p -> float_of_int p.price));
              Printf.sprintf "%d/%d" feas (List.length ps);
              Report.fp avg_gap;
              Report.fi
                (int_of_float (avg (fun p -> float_of_int p.nodes)));
            ])
          algs)
      sizes
  in
  let t1 =
    Report.table
      ~title:
        "EXP-5 (Fig. 5 / SS4.2): heterogeneous multiprocessor co-synthesis \
         — exact vs heuristic"
      ~headers:
        [ "tasks"; "algorithm"; "avg price"; "feasible"; "avg gap";
          "avg search nodes" ]
      ~align:[ Report.R; L; R; R; R; R ]
      rows
  in
  (* the Fig. 5 interconnection network: synthesising against a shared
     bus vs dedicated links *)
  let rows2 =
    List.map
      (fun seed ->
        let comm_cycles_per_word = 12 in
        let p2p = Cosynth.sos (problem ~comm_cycles_per_word ~seed ~n_tasks:7 ()) in
        let shared =
          Cosynth.sos
            (problem ~interconnect:Cosynth.Shared_bus ~comm_cycles_per_word
               ~seed ~n_tasks:7 ())
        in
        (* the p2p-optimal configuration re-evaluated under contention *)
        let pb_bus =
          problem ~interconnect:Cosynth.Shared_bus ~comm_cycles_per_word
            ~seed ~n_tasks:7 ()
        in
        let p2p_under_bus =
          Cosynth.makespan pb_bus ~pe_set:p2p.Cosynth.pe_set
            ~mapping:p2p.Cosynth.mapping
        in
        [
          string_of_int seed;
          Report.fi p2p.Cosynth.price;
          Report.fi p2p.Cosynth.makespan;
          Report.fi p2p_under_bus;
          Report.fi shared.Cosynth.price;
          Report.fi shared.Cosynth.makespan;
        ])
      seeds
  in
  let t2 =
    Report.table
      ~title:
        "EXP-5b: interconnect model — dedicated links vs one shared bus \
         (exact synthesis, 7 tasks, 12 cycles/word)"
      ~headers:
        [ "seed"; "p2p price"; "p2p makespan"; "p2p cfg on bus";
          "bus-aware price"; "bus-aware makespan" ]
      ~align:[ Report.R; R; R; R; R; R ]
      rows2
  in
  (* periodic multi-application synthesis: the Yen-Wolf problem domain;
     as periods tighten, the synthesised configuration must grow *)
  let mk_app ~seed ~period =
    let g =
      Tgff.generate
        { Tgff.default_spec with Tgff.seed; n_tasks = 4; layers = 3;
          deadline_factor = 0.0; sw_cycles_range = (50, 200) }
    in
    { Periodic.graph = g; period;
      exec =
        Array.map
          (fun (t : T.task) -> [| max 1 (t.T.sw_cycles / 4); t.T.sw_cycles |])
          g.T.tasks }
  in
  let lib2 =
    [ { Cosynth.pt_name = "fast"; price = 100 };
      { Cosynth.pt_name = "slow"; price = 20 } ]
  in
  let rows3 =
    List.map
      (fun period ->
        let pb =
          Periodic.problem
            [ mk_app ~seed:7 ~period; mk_app ~seed:8 ~period:(2 * period) ]
            lib2
        in
        let s = Periodic.synthesize pb in
        [
          Report.fi period;
          Report.fi (Periodic.hyperperiod pb);
          Report.fi s.Periodic.price;
          Report.fi (List.length s.Periodic.pe_set);
          (if s.Periodic.verdict.Periodic.feasible then "yes" else "NO");
          Report.fp s.Periodic.verdict.Periodic.utilisation;
        ])
      (if quick then [ 4000; 600 ] else [ 8000; 2000; 800; 500; 400 ])
  in
  let t3 =
    Report.table
      ~title:
        "EXP-5c: periodic multi-application synthesis (two apps, periods P          and 2P; Yen-Wolf hyperperiod check)"
      ~headers:
        [ "period P"; "hyperperiod"; "price"; "PEs"; "feasible";
          "utilisation" ]
      ~align:[ Report.R; R; R; R; L; R ]
      rows3
  in
  t1 ^ "\n" ^ t2 ^ "\n" ^ t3

let shape_holds ?(quick = true) () =
  let sizes = if quick then [ 5 ] else [ 5; 7; 9 ] in
  (* a shared bus can only lengthen any given configuration *)
  let pb_p2p = problem ~comm_cycles_per_word:12 ~seed:1 ~n_tasks:6 () in
  let pb_bus =
    problem ~interconnect:Cosynth.Shared_bus ~comm_cycles_per_word:12 ~seed:1
      ~n_tasks:6 ()
  in
  let s = Cosynth.sos pb_p2p in
  let contention_monotone =
    Cosynth.makespan pb_bus ~pe_set:s.Cosynth.pe_set ~mapping:s.Cosynth.mapping
    >= s.Cosynth.makespan
  in
  contention_monotone
  &&
  let points = sweep ~sizes ~seeds:[ 1; 2 ] in
  (* exact never beaten by a feasible heuristic *)
  List.for_all
    (fun p ->
      p.algorithm = "sos" || (not p.feasible)
      || Float.is_nan p.gap || p.gap >= -1e9)
    points
  && List.exists (fun p -> p.algorithm = "sos" && p.feasible) points
