(** EXP-10 — paper §5: the summary comparison criteria.

    Renders the paper's closing checklist — system type, design tasks,
    co-simulation abstraction level, partitioning factors — for every
    methodology implemented in this repository, reproducing the §4
    discussion row-for-row from live code rather than prose. *)

open Codesign

let run ?quick:_ () =
  let rows =
    List.map
      (fun (m : Taxonomy.methodology) ->
        let c = Taxonomy.criteria m in
        [
          m.Taxonomy.m_name;
          m.Taxonomy.section;
          List.assoc "system type" c;
          List.assoc "design tasks" c;
          List.assoc "co-simulation level" c;
          List.assoc "partitioning factors" c;
        ])
      Taxonomy.catalogue
  in
  Report.table
    ~title:
      "EXP-10 (SS5): the paper's comparison criteria, for every \
       methodology implemented in this repository"
    ~headers:
      [ "methodology"; "paper"; "type"; "tasks"; "cosim level"; "factors" ]
    ~align:[ Report.L; L; L; L; L; L ]
    rows

(* §4 prose facts the table must reproduce *)
let shape_holds ?quick:_ () =
  let find name =
    List.find (fun m -> m.Taxonomy.m_name = name) Taxonomy.catalogue
  in
  let chinook = find "interface co-synthesis (Chinook)" in
  let sos = find "exact multiprocessor synthesis (SOS)" in
  let mp = find "multiple-process behavioural synthesis" in
  (* "Chinook ... does no HW/SW partitioning" *)
  (not (List.mem Taxonomy.Hw_sw_partitioning chinook.Taxonomy.activities))
  (* multiprocessor synthesis: "co-synthesis but not partitioning" *)
  && (not (List.mem Taxonomy.Hw_sw_partitioning sos.Taxonomy.activities))
  (* [10] "considers all the factors outlined in Section 3.3 except
     modifiability" *)
  && (not (List.mem Taxonomy.Modifiability mp.Taxonomy.factors))
  && List.mem Taxonomy.Concurrency mp.Taxonomy.factors
  && List.mem Taxonomy.Communication mp.Taxonomy.factors
