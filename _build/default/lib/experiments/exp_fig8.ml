(** EXP-8 — paper Fig. 8 / §4.5: custom co-processor HW/SW partitioning.

    Three tables over synthetic task graphs:

    + algorithm comparison (greedy [6]-style, KL, simulated annealing
      [17]-style, GCLP [1][5]) against the exhaustive optimum on a small
      graph, and against each other on a larger one;
    + the speedup-vs-area-budget curve: speedup saturates once the
      performance-critical tasks are in hardware (the diminishing
      returns the paper's partitioning discussion turns on);
    + ablations of two §3.3 factors: sharing-aware incremental area
      estimation [18] (admits more tasks at the same budget) and
      communication weighting (ignoring it overstates achievable
      speedup). *)

open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff

let graph ?(n_tasks = 14) seed =
  Tgff.generate
    {
      Tgff.default_spec with
      Tgff.seed;
      n_tasks;
      layers = 4;
      deadline_factor = 0.75;
    }

let algo_rows g =
  List.map
    (fun (r : Partition.result) ->
      [
        r.Partition.algorithm;
        Report.ff r.Partition.eval.Cost.speedup ^ "x";
        Report.fi r.Partition.eval.Cost.hw_area;
        Report.fi r.Partition.eval.Cost.n_hw;
        (if r.Partition.eval.Cost.meets_deadline then "yes" else "no");
        Report.fi r.Partition.evaluations;
      ])
    [
      Partition.greedy g;
      Partition.kl g;
      Partition.simulated_annealing g;
      Partition.gclp g;
    ]

let run ?(quick = false) () =
  let g = graph (if quick then 2 else 42) ~n_tasks:(if quick then 10 else 14) in
  let t1 =
    Report.table
      ~title:
        (Printf.sprintf
           "EXP-8 (Fig. 8 / SS4.5): partitioning algorithms (%d tasks, \
            deadline %s, all-SW latency %s)"
           (T.n_tasks g) (Report.fi g.T.deadline)
           (Report.fi (Cost.evaluate g (Cost.all_sw g)).Cost.all_sw_latency))
      ~headers:
        [ "algorithm"; "speedup"; "hw area"; "tasks in hw"; "deadline";
          "cost evals" ]
      ~align:[ Report.L; R; R; R; L; R ]
      (algo_rows g)
  in
  (* budget sweep *)
  let budgets =
    if quick then [ 1000; 4000; 16000 ]
    else [ 500; 1000; 2000; 4000; 8000; 16000; 32000 ]
  in
  let rows2 =
    List.map
      (fun budget ->
        let r = Partition.kl ~max_area:budget g in
        [
          Report.fi budget;
          Report.fi r.Partition.eval.Cost.hw_area;
          Report.fi r.Partition.eval.Cost.n_hw;
          Report.ff r.Partition.eval.Cost.speedup ^ "x";
          (if r.Partition.eval.Cost.meets_deadline then "yes" else "no");
        ])
      budgets
  in
  let t2 =
    Report.table
      ~title:"EXP-8b: speedup vs hardware area budget (kl partitioner)"
      ~headers:[ "area budget"; "area used"; "tasks in hw"; "speedup"; "deadline" ]
      ~align:[ Report.R; R; R; R; L ]
      rows2
  in
  (* ablation: sharing-aware estimation *)
  let budget = if quick then 2500 else 3000 in
  let with_sharing = Partition.greedy ~max_area:budget g in
  let without_sharing =
    Partition.greedy
      ~params:{ Cost.default_params with Cost.sharing = false }
      ~max_area:budget g
  in
  (* ablation: communication blindness — decide with communication free,
     then evaluate with the real cost.  Run on a communication-heavy
     variant of the workload (large inter-task data volumes), where the
     §3.3 "communication" factor actually decides placements. *)
  let gc =
    Tgff.generate
      {
        Tgff.default_spec with
        Tgff.seed = (if quick then 2 else 42);
        n_tasks = (if quick then 10 else 14);
        layers = 4;
        deadline_factor = 0.75;
        words_range = (96, 256);
      }
  in
  let heavy = { Cost.default_params with Cost.comm_cycles_per_word = 12 } in
  let blind =
    Partition.kl ~params:{ heavy with Cost.comm_cycles_per_word = 0 } gc
  in
  let blind_real_eval =
    Cost.evaluate ~params:heavy gc blind.Partition.partition
  in
  let aware = Partition.kl ~params:heavy gc in
  let rows3 =
    [
      [
        "sharing-aware area [18]";
        Report.fi with_sharing.Partition.eval.Cost.n_hw;
        Report.ff with_sharing.Partition.eval.Cost.speedup ^ "x";
        Report.fi with_sharing.Partition.eval.Cost.hw_area;
      ];
      [
        "standalone area (no sharing)";
        Report.fi without_sharing.Partition.eval.Cost.n_hw;
        Report.ff without_sharing.Partition.eval.Cost.speedup ^ "x";
        Report.fi without_sharing.Partition.eval.Cost.hw_area;
      ];
      [
        "comm-aware partition (real eval)";
        Report.fi aware.Partition.eval.Cost.n_hw;
        Report.ff aware.Partition.eval.Cost.speedup ^ "x";
        Report.fi aware.Partition.eval.Cost.hw_area;
      ];
      [
        "comm-blind partition (real eval)";
        Report.fi blind_real_eval.Cost.n_hw;
        Report.ff blind_real_eval.Cost.speedup ^ "x";
        Report.fi blind_real_eval.Cost.hw_area;
      ];
    ]
  in
  let t3 =
    Report.table
      ~title:
        (Printf.sprintf
           "EXP-8c: SS3.3 factor ablations (budget %d for sharing rows)"
           budget)
      ~headers:[ "configuration"; "tasks in hw"; "speedup"; "hw area" ]
      ~align:[ Report.L; R; R; R ]
      rows3
  in
  t1 ^ "\n" ^ t2 ^ "\n" ^ t3

let shape_holds ?(quick = true) () =
  let g = graph 2 ~n_tasks:(if quick then 10 else 14) in
  (* speedup saturates: biggest budget >= smallest budget *)
  let small = Partition.kl ~max_area:1000 g in
  let large = Partition.kl ~max_area:32000 g in
  let sharing = Partition.greedy ~max_area:2500 g in
  let no_sharing =
    Partition.greedy
      ~params:{ Cost.default_params with Cost.sharing = false }
      ~max_area:2500 g
  in
  let gc =
    Tgff.generate
      {
        Tgff.default_spec with
        Tgff.seed = 42;
        n_tasks = (if quick then 10 else 14);
        layers = 4;
        deadline_factor = 0.75;
        words_range = (96, 256);
      }
  in
  let heavy = { Cost.default_params with Cost.comm_cycles_per_word = 12 } in
  let blind =
    Partition.kl ~params:{ heavy with Cost.comm_cycles_per_word = 0 } gc
  in
  let blind_real = Cost.evaluate ~params:heavy gc blind.Partition.partition in
  let aware = Partition.kl ~params:heavy gc in
  large.Partition.eval.Cost.speedup >= small.Partition.eval.Cost.speedup -. 1e-9
  && sharing.Partition.eval.Cost.n_hw >= no_sharing.Partition.eval.Cost.n_hw
  && aware.Partition.eval.Cost.latency <= blind_real.Cost.latency
