(** EXP-A — design-choice ablations beyond the paper's figures.

    DESIGN.md commits to ablating the framework's own design choices;
    the figure experiments cover the §3.3 factor ablations (EXP-8c).
    This module covers the remaining substrate-level choices:

    + {b HLS scheduler}: resource-constrained list scheduling vs
      latency-constrained force-directed scheduling, per kernel block.
      On small/medium blocks FDS matches the list schedule's latency
      with no more functional units; on large heavily-serialised blocks
      (dct8: 64 multiplies through one multiplier) FDS's {i expected}
      concurrency minimisation does not bound the {i actual} peak, and
      explicit resource constraints win — which is why {!Hls} defaults
      to list scheduling.
    + {b partitioner search effort}: objective quality vs cost-model
      evaluations for greedy / KL / SA / GCLP against the exhaustive
      optimum on an enumerable graph — the effort/quality frontier that
      justifies having four engines.
    + {b instruction encoding}: fixed-32-bit accounting vs exact
      variable-length encoding over the benchmark kernels — how far the
      simple code-size model is from the real encoder. *)

open Codesign
module B = Codesign_ir.Behavior
module C = Codesign_ir.Cdfg
module Sched = Codesign_hls.Sched
module Bind = Codesign_hls.Bind
module Kernels = Codesign_workloads.Kernels
module Tgff = Codesign_workloads.Tgff

(* ------------------------------------------------------------------ *)

let biggest_block proc =
  let g = B.elaborate proc in
  List.fold_left
    (fun best (b : C.block) ->
      if List.length b.C.ops > List.length best.C.ops then b else best)
    (List.hd g.C.blocks) g.C.blocks

let scheduler_rows ~kernels =
  List.filter_map
    (fun (name, proc, _) ->
      let block = biggest_block proc in
      if List.length block.C.ops < 6 then None
      else begin
        let ls =
          Sched.list_schedule block ~resources:Codesign_hls.Hls.default_resources
        in
        let fds = Sched.force_directed block ~latency:ls.Sched.length in
        let fu_area sched =
          Bind.fu_area (Bind.bind block sched)
        in
        Some
          [
            name;
            string_of_int (List.length block.C.ops);
            string_of_int ls.Sched.length;
            string_of_int (fu_area ls);
            string_of_int fds.Sched.length;
            string_of_int (fu_area fds);
            (if fu_area fds <= fu_area ls then "fds <=" else "list <");
          ]
      end)
    kernels

let partitioner_rows g =
  let opt = Partition.exhaustive g in
  List.map
    (fun (r : Partition.result) ->
      [
        r.Partition.algorithm;
        Report.ff r.Partition.objective;
        Report.fp
          ((r.Partition.objective -. opt.Partition.objective)
          /. opt.Partition.objective);
        Report.fi r.Partition.evaluations;
      ])
    [
      opt;
      Partition.greedy g;
      Partition.kl g;
      Partition.simulated_annealing g;
      Partition.gclp g;
    ]

let encoding_rows ~kernels =
  List.map
    (fun (name, proc, _) ->
      let items, _ = Codesign_isa.Codegen.compile proc in
      let img = Codesign_isa.Asm.assemble items in
      let fixed = Codesign_isa.Isa.code_bytes img.Codesign_isa.Asm.code in
      let exact =
        Codesign_isa.Encoding.program_bytes img.Codesign_isa.Asm.code
      in
      [
        name;
        Report.fi (Array.length img.Codesign_isa.Asm.code);
        Report.fi fixed;
        Report.fi exact;
        Report.fp (float_of_int (exact - fixed) /. float_of_int fixed);
      ])
    kernels

let run ?(quick = false) () =
  let kernels =
    if quick then
      List.filter (fun (n, _, _) -> n = "dct8" || n = "fir") Kernels.all
    else Kernels.all
  in
  let t1 =
    Report.table
      ~title:
        "EXP-A1: HLS scheduler ablation — list vs force-directed at equal \
         latency (FU area after binding)"
      ~headers:
        [ "kernel"; "ops"; "list lat"; "list fu area"; "fds lat";
          "fds fu area"; "smaller" ]
      ~align:[ Report.L; R; R; R; R; R; L ]
      (scheduler_rows ~kernels)
  in
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 8; n_tasks = (if quick then 8 else 12);
        layers = 4 }
  in
  let t2 =
    Report.table
      ~title:
        (Printf.sprintf
           "EXP-A2: partitioner effort/quality frontier (%d tasks, vs \
            exhaustive optimum)"
           (Codesign_ir.Task_graph.n_tasks g))
      ~headers:[ "algorithm"; "objective"; "gap"; "cost evals" ]
      ~align:[ Report.L; R; R; R ]
      (partitioner_rows g)
  in
  let t3 =
    Report.table
      ~title:
        "EXP-A3: code-size model — fixed 4-byte accounting vs exact \
         variable-length encoding"
      ~headers:[ "kernel"; "instrs"; "fixed bytes"; "exact bytes"; "delta" ]
      ~align:[ Report.L; R; R; R; R ]
      (encoding_rows ~kernels)
  in
  t1 ^ "\n" ^ t2 ^ "\n" ^ t3

let shape_holds ?(quick = true) () =
  ignore quick;
  (* on small/medium blocks FDS needs no more FU area than list
     scheduling at the same latency (large serialised blocks are the
     documented exception) *)
  List.for_all
    (fun (_, proc, _) ->
      let block = biggest_block proc in
      let sz = List.length block.C.ops in
      sz < 6 || sz > 40
      ||
      let ls =
        Sched.list_schedule block ~resources:Codesign_hls.Hls.default_resources
      in
      let fds = Sched.force_directed block ~latency:ls.Sched.length in
      Bind.fu_area (Bind.bind block fds)
      <= Bind.fu_area (Bind.bind block ls))
    Kernels.all
  &&
  (* the exhaustive optimum is never beaten *)
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 8; n_tasks = 8; layers = 4 }
  in
  let opt = Partition.exhaustive g in
  List.for_all
    (fun (r : Partition.result) ->
      r.Partition.objective >= opt.Partition.objective -. 1e-9)
    [ Partition.greedy g; Partition.kl g; Partition.simulated_annealing g;
      Partition.gclp g ]
