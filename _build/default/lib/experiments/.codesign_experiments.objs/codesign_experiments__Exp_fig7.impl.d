lib/experiments/exp_fig7.ml: Asip Codesign Codesign_workloads List Report String
