lib/experiments/exp_fig9.ml: Codesign Codesign_ir Codesign_workloads Coproc List Printf Report
