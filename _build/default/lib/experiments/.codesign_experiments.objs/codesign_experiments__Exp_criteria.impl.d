lib/experiments/exp_criteria.ml: Codesign List Report Taxonomy
