lib/experiments/exp_fig5.ml: Array Codesign Codesign_ir Codesign_workloads Cosynth Float List Periodic Printf Report
