lib/experiments/exp_fig8.ml: Codesign Codesign_ir Codesign_workloads Cost List Partition Printf Report
