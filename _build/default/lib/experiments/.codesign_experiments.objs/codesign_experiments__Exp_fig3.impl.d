lib/experiments/exp_fig3.ml: Codesign Cosim List Printf Report
