lib/experiments/exp_fig4.ml: Codesign Codesign_bus Codesign_isa Codesign_sim List Printf Report
