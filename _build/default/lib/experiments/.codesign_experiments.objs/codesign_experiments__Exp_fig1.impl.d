lib/experiments/exp_fig1.ml: Codesign List Report Taxonomy
