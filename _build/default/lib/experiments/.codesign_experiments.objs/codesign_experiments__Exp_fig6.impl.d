lib/experiments/exp_fig6.ml: Asip Codesign Codesign_workloads List Report String
