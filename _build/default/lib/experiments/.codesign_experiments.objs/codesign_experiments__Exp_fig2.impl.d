lib/experiments/exp_fig2.ml: Codesign List Report Taxonomy
