lib/experiments/exp_ablation.ml: Array Codesign Codesign_hls Codesign_ir Codesign_isa Codesign_workloads List Partition Printf Report
