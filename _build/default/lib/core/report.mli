(** Plain-text table rendering for experiment output.

    The benchmark harness prints one table per reproduced figure; this
    keeps the formatting uniform and the bench code free of printf
    noise. *)

type align = L | R

val table :
  ?title:string ->
  headers:string list ->
  ?align:align list ->
  string list list ->
  string
(** Renders an aligned table with a header rule.  [align] defaults to
    left for the first column and right for the rest.  Rows shorter than
    the header are padded with empty cells. *)

val fi : int -> string
(** Integer with thousands separators (e.g. ["12_345"]). *)

val ff : ?dec:int -> float -> string
(** Fixed-point float (default 2 decimals). *)

val fp : float -> string
(** Percentage with one decimal, e.g. ["12.5%"]. *)
