module T = Codesign_ir.Task_graph

type app = { graph : T.t; period : int; exec : int array array }

type problem = {
  apps : app list;
  pe_types : Cosynth.pe_type list;
  comm_cycles_per_word : int;
  max_copies : int;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let hyperperiod pb =
  List.fold_left (fun acc a -> lcm acc a.period) 1 pb.apps

let problem ?(comm_cycles_per_word = 2) ?(max_copies = 6) apps pe_types =
  if apps = [] then invalid_arg "Periodic.problem: no applications";
  if pe_types = [] then invalid_arg "Periodic.problem: empty PE library";
  let k = List.length pe_types in
  List.iter
    (fun a ->
      if a.period <= 0 then invalid_arg "Periodic.problem: period <= 0";
      if Array.length a.exec <> T.n_tasks a.graph then
        invalid_arg "Periodic.problem: exec rows <> task count";
      Array.iter
        (fun row ->
          if Array.length row <> k then
            invalid_arg "Periodic.problem: exec columns <> PE type count";
          Array.iter
            (fun c ->
              if c <= 0 then
                invalid_arg "Periodic.problem: non-positive execution time")
            row)
        a.exec)
    apps;
  let pb = { apps; pe_types; comm_cycles_per_word; max_copies } in
  let h = hyperperiod pb in
  let instances =
    List.fold_left (fun acc a -> acc + (h / a.period)) 0 apps
  in
  if instances > 64 then
    invalid_arg
      (Printf.sprintf
         "Periodic.problem: hyperperiod expands to %d instances (> 64); \
          choose harmonic periods"
         instances);
  pb

(* one expanded task: which app, which task, which instance *)
type xtask = {
  app_idx : int;
  task : int;
  release : int;
  abs_deadline : int;
}

let expand pb =
  let h = hyperperiod pb in
  let xs = ref [] in
  List.iteri
    (fun ai a ->
      let reps = h / a.period in
      for k = 0 to reps - 1 do
        for t = 0 to T.n_tasks a.graph - 1 do
          xs :=
            {
              app_idx = ai;
              task = t;
              release = k * a.period;
              abs_deadline = (k + 1) * a.period;
            }
            :: !xs
        done
      done)
    pb.apps;
  List.rev !xs

type verdict = { feasible : bool; max_lateness : int; utilisation : float }

let check pb ~pe_set =
  let insts = Array.of_list pe_set in
  let n_inst = Array.length insts in
  if n_inst = 0 then
    { feasible = false; max_lateness = max_int; utilisation = 0.0 }
  else begin
    let apps = Array.of_list pb.apps in
    let h = hyperperiod pb in
    let xs = Array.of_list (expand pb) in
    let n = Array.length xs in
    (* finish time per expanded task; -1 = unscheduled *)
    let finish = Array.make n (-1) in
    let mapping = Array.make n (-1) in
    let free = Array.make n_inst 0 in
    let busy = ref 0 in
    (* index expanded tasks by (app, instance-release, task) for
       dependence lookup *)
    let index = Hashtbl.create 64 in
    Array.iteri
      (fun i x -> Hashtbl.replace index (x.app_idx, x.release, x.task) i)
      xs;
    let n_done = ref 0 in
    while !n_done < n do
      (* ready expanded tasks: all graph predecessors of the same
         instance scheduled *)
      let best = ref None in
      Array.iteri
        (fun i x ->
          if finish.(i) < 0 then begin
            let a = apps.(x.app_idx) in
            let preds = T.in_edges a.graph x.task in
            let sched p =
              finish.(Hashtbl.find index (x.app_idx, x.release, p)) >= 0
            in
            if List.for_all (fun (e : T.edge) -> sched e.src) preds then begin
              (* earliest-finish-time mapping over instances *)
              let data_ready inst =
                List.fold_left
                  (fun acc (e : T.edge) ->
                    let pi =
                      Hashtbl.find index (x.app_idx, x.release, e.src)
                    in
                    let comm =
                      if mapping.(pi) <> inst then
                        e.words * pb.comm_cycles_per_word
                      else 0
                    in
                    max acc (finish.(pi) + comm))
                  x.release preds
              in
              for inst = 0 to n_inst - 1 do
                let start = max (data_ready inst) free.(inst) in
                let f = start + a.exec.(x.task).(insts.(inst)) in
                match !best with
                | Some (bf, _, _, _) when bf <= f -> ()
                | _ -> best := Some (f, i, inst, start)
              done
            end
          end)
        xs;
      match !best with
      | None -> assert false
      | Some (f, i, inst, _start) ->
          finish.(i) <- f;
          mapping.(i) <- inst;
          free.(inst) <- f;
          busy := !busy + apps.(xs.(i).app_idx).exec.(xs.(i).task).(insts.(inst));
          incr n_done
    done;
    let max_lateness =
      Array.to_list xs
      |> List.mapi (fun i x -> finish.(i) - x.abs_deadline)
      |> List.fold_left max min_int
    in
    {
      feasible = max_lateness <= 0;
      max_lateness;
      utilisation = float_of_int !busy /. float_of_int (n_inst * h);
    }
  end

type solution = {
  pe_set : int list;
  price : int;
  verdict : verdict;
  iterations : int;
}

let price_of pb pe_set =
  List.fold_left
    (fun acc t -> acc + (List.nth pb.pe_types t).Cosynth.price)
    0 pe_set

let synthesize ?(max_iters = 100) pb =
  let k = List.length pb.pe_types in
  let cheapest =
    List.init k Fun.id
    |> List.fold_left
         (fun acc t ->
           if
             (List.nth pb.pe_types t).Cosynth.price
             < (List.nth pb.pe_types acc).Cosynth.price
           then t
           else acc)
         0
  in
  let pe_set = ref [ cheapest ] in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iters do
    incr iters;
    let v = check pb ~pe_set:!pe_set in
    if v.feasible then begin
      (* reclaim: try dropping or downgrading instances *)
      let improved = ref false in
      (* drop *)
      List.iteri
        (fun idx _ ->
          if not !improved then begin
            let candidate = List.filteri (fun i _ -> i <> idx) !pe_set in
            if candidate <> [] && (check pb ~pe_set:candidate).feasible then begin
              pe_set := candidate;
              improved := true
            end
          end)
        !pe_set;
      (* downgrade to a cheaper type *)
      if not !improved then
        List.iteri
          (fun idx t ->
            if not !improved then
              List.iteri
                (fun t' (pt' : Cosynth.pe_type) ->
                  if
                    (not !improved)
                    && pt'.Cosynth.price
                       < (List.nth pb.pe_types t).Cosynth.price
                  then begin
                    let candidate =
                      List.mapi (fun i x -> if i = idx then t' else x) !pe_set
                    in
                    if (check pb ~pe_set:candidate).feasible then begin
                      pe_set := candidate;
                      improved := true
                    end
                  end)
                pb.pe_types)
          !pe_set;
      if not !improved then continue_ := false
    end
    else begin
      (* infeasible: best lateness reduction per unit price among
         (add instance of type t) and (upgrade instance to type t) *)
      let current = v.max_lateness in
      let best = ref None in
      let consider dprice candidate =
        let counts = Array.make k 0 in
        List.iter (fun t -> counts.(t) <- counts.(t) + 1) candidate;
        if Array.for_all (fun c -> c <= pb.max_copies) counts then begin
          let v' = check pb ~pe_set:candidate in
          let gain = current - v'.max_lateness in
          if gain > 0 then begin
            let ratio = float_of_int gain /. float_of_int (max dprice 1) in
            match !best with
            | Some (r, _, _) when r >= ratio -> ()
            | _ -> best := Some (ratio, candidate, v')
          end
        end
      in
      for t = 0 to k - 1 do
        consider (List.nth pb.pe_types t).Cosynth.price (!pe_set @ [ t ]);
        List.iteri
          (fun idx old_t ->
            if old_t <> t then
              consider
                (max 0
                   ((List.nth pb.pe_types t).Cosynth.price
                   - (List.nth pb.pe_types old_t).Cosynth.price))
                (List.mapi (fun i x -> if i = idx then t else x) !pe_set))
          !pe_set
      done;
      match !best with
      | Some (_, candidate, _) -> pe_set := candidate
      | None -> continue_ := false
    end
  done;
  {
    pe_set = !pe_set;
    price = price_of pb !pe_set;
    verdict = check pb ~pe_set:!pe_set;
    iterations = !iters;
  }

let pp_solution fmt pb s =
  Format.fprintf fmt
    "periodic: price=%d, %d PEs [%s], %s (max lateness %d, utilisation \
     %.0f%%), %d iterations"
    s.price
    (List.length s.pe_set)
    (String.concat "; "
       (List.map
          (fun t -> (List.nth pb.pe_types t).Cosynth.pt_name)
          s.pe_set))
    (if s.verdict.feasible then "feasible" else "INFEASIBLE")
    s.verdict.max_lateness
    (100. *. s.verdict.utilisation)
    s.iterations
