(** Custom co-processor synthesis (paper §4.5) and its multi-threaded
    generalisation (§4.6, the authors' own multiple-process behavioural
    synthesis [10]).

    Input: a process network whose [Hw]-mapped processes form the
    co-processor.  {!synthesize} clusters those processes onto a bounded
    number of hardware {i threads} (controller/datapath pairs — the
    "ctrl + datapath" boxes of the paper's Fig. 9): processes sharing a
    thread serialise; separate threads run concurrently.  Assignment is
    longest-processing-time-first load balancing, optionally
    {b communication-aware}: colocating heavily-communicating processes
    avoids the cross-thread transfer cost (the [10] objective of
    maximising concurrency while minimising communication).

    The returned latency is {i measured} by executing the network on the
    co-simulation kernel ({!Cosim.run_network}) with the chosen engine
    assignment — not estimated. *)

type design = {
  threads : int;  (** hardware threads provisioned *)
  assignment : (string * int) list;  (** hw process -> thread id *)
  latency : int;  (** measured completion time *)
  hw_area : int;  (** summed HLS area of hardware processes *)
  crossing_channels : int;
      (** channels whose endpoints ended up on different threads (or on
          the SW/HW boundary) *)
  comm_aware : bool;
  checksum : int;  (** sum of observed output-port writes *)
}

val synthesize :
  ?threads:int ->
  ?comm_aware:bool ->
  ?cross_cost:int ->
  ?expected_msgs:int ->
  Codesign_ir.Process_network.t ->
  design
(** Defaults: 2 threads, comm-aware on, 24 cycles per crossing message,
    8 expected messages per channel (the static estimate used during
    assignment; execution charges the real per-message cost).
    @raise Invalid_argument if the network has no hardware processes or
    [threads < 1]. *)

val sweep_threads :
  ?comm_aware:bool ->
  ?cross_cost:int ->
  max_threads:int ->
  Codesign_ir.Process_network.t ->
  design list
(** One design per thread count 1..max_threads (the Fig. 9 speedup
    curve). *)
