(** Heterogeneous multiprocessor co-synthesis (paper §4.2, Fig. 5).

    Given a task graph, a library of processing-element (PE) types with
    prices, and a per-type execution-time characterisation, choose a set
    of PE instances and a task mapping that meets the deadline at
    minimum total price.  Three engines, matching the paper's survey:

    - {!sos} — the exact formulation of Prakash & Parker's SOS [12].
      The paper's authors solved an ILP; with no ILP solver in-box we
      solve the same model exactly by branch-and-bound over (instance
      set, mapping) with price and schedule-feasibility pruning, which
      preserves the property the comparison needs: optimality.
    - {!binpack} — Beck's vector bin-packing heuristic [13]: tasks
      become vectors of utilisation against the deadline, instances are
      bins opened cheapest-first, packing is first-fit-decreasing,
      followed by a repair loop driven by the real schedule.
    - {!sensitivity} — Yen & Wolf's sensitivity-driven iterative
      improvement [9]: start minimal, repeatedly apply the
      configuration change with the best deadline-violation reduction
      per unit price; once feasible, reclaim cost where the schedule
      allows.

    Makespans come from the same deterministic list scheduler throughout
    (communication between different instances pays
    [comm_cycles_per_word] per word). *)

type pe_type = { pt_name : string; price : int }

type interconnect =
  | Point_to_point  (** dedicated links: a transfer only delays its consumer *)
  | Shared_bus
      (** one interconnection network (the Fig. 5 box): inter-PE
          transfers serialise on the shared medium *)

type problem = {
  tg : Codesign_ir.Task_graph.t;
  pe_types : pe_type list;
  exec : int array array;  (** [exec.(task).(pe_type)] cycles *)
  comm_cycles_per_word : int;
  max_copies : int;  (** instance bound per type (keeps SOS finite) *)
  interconnect : interconnect;
}

val problem :
  ?comm_cycles_per_word:int ->
  ?max_copies:int ->
  ?interconnect:interconnect ->
  Codesign_ir.Task_graph.t ->
  pe_type list ->
  exec:int array array ->
  problem
(** Validates dimensions and positivity.  Defaults: comm 2 cycles/word,
    max 4 copies per type, point-to-point interconnect.
    @raise Invalid_argument on bad input. *)

type solution = {
  pe_set : int list;  (** PE type index per instance *)
  mapping : int array;  (** task -> instance index *)
  price : int;
  makespan : int;
  feasible : bool;  (** makespan within the task graph's deadline *)
  nodes : int;  (** search nodes / iterations expended *)
  algorithm : string;
}

val makespan : problem -> pe_set:int list -> mapping:int array -> int
(** The shared schedule evaluator (exposed for tests and experiments). *)

val price_of : problem -> int list -> int

val sos : ?node_budget:int -> problem -> solution
(** Exact branch-and-bound.  [node_budget] (default 2_000_000) bounds the
    search; if exhausted the best-so-far is returned with
    [nodes = node_budget] (experiments report this as a timeout). *)

val binpack : problem -> solution

val sensitivity : ?max_iters:int -> problem -> solution
(** [max_iters] defaults to 200. *)

val pp_solution : Format.formatter -> problem -> solution -> unit
