(** Partition evaluation: the cost model every HW/SW partitioner in this
    framework optimises against.

    A {!partition} maps each task of a {!Codesign_ir.Task_graph} to
    software (the host processor) or hardware (a dedicated datapath).
    {!evaluate} derives:

    - {b latency}: a deterministic list schedule of the task DAG where
      software tasks serialise on the single CPU, hardware tasks either
      serialise on one accelerator or run fully concurrently
      ([hw_parallel]), and every data edge crossing the HW/SW boundary
      pays [comm_cycles_per_word] per word (§3.3 "communication");
    - {b hardware area}: either the sum of standalone task areas, or the
      sharing-aware incremental area of Vahid & Gajski [18] in which
      hardware-resident tasks share functional units ([sharing]);
    - {b software bytes}, boundary traffic, deadline slack and speedup
      over the all-software schedule.

    {!objective} folds an evaluation into a single scalar using the six
    §3.3 factors, for use by {!Partition}'s search algorithms. *)

type partition = bool array
(** [p.(i)] true = task [i] in hardware. *)

type params = {
  comm_cycles_per_word : int;  (** boundary crossing cost (default 4) *)
  sharing : bool;  (** sharing-aware area (default true) *)
  hw_parallel : bool;
      (** hardware tasks run concurrently (default true); false models a
          single serial accelerator *)
  parallelism_speedup : bool;
      (** scale hardware task time by its nature-of-computation affinity:
          highly parallel tasks gain more from hardware (default true) *)
}

val default_params : params

type eval = {
  latency : int;
  all_sw_latency : int;
  speedup : float;  (** all-SW latency / latency *)
  hw_area : int;
  sw_bytes : int;
  comm_words : int;  (** words crossing the boundary per invocation *)
  n_hw : int;
  meets_deadline : bool;  (** true when no deadline or latency within it *)
  modifiable_in_hw : int;  (** §3.3 "modifiability" violations *)
}

val all_sw : Codesign_ir.Task_graph.t -> partition
val all_hw : Codesign_ir.Task_graph.t -> partition

val hw_task_cycles : params -> Codesign_ir.Task_graph.task -> int
(** Effective hardware execution time of a task under the parameters. *)

val evaluate :
  ?params:params -> Codesign_ir.Task_graph.t -> partition -> eval
(** @raise Invalid_argument if the partition length differs from the
    task count. *)

type weights = {
  w_area : float;  (** per area unit *)
  w_latency : float;  (** per cycle of latency *)
  w_deadline_miss : float;  (** per cycle beyond the deadline *)
  w_modifiability : float;  (** per modifiable task in hardware *)
  w_sw_bytes : float;  (** per software byte *)
}

val default_weights : weights

val objective :
  ?weights:weights -> Codesign_ir.Task_graph.t -> eval -> float
(** Lower is better.  Deadline misses dominate under the default
    weights, then area, then latency. *)

val area_of_partition :
  ?params:params -> Codesign_ir.Task_graph.t -> partition -> int
(** Hardware area only (cheaper than a full {!evaluate} when a search
    only needs the area side). *)
