module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network

type design = {
  threads : int;
  assignment : (string * int) list;
  latency : int;
  hw_area : int;
  crossing_channels : int;
  comm_aware : bool;
  checksum : int;
}

let synthesize ?(threads = 2) ?(comm_aware = true) ?(cross_cost = 24)
    ?(expected_msgs = 8) (net : Pn.t) =
  if threads < 1 then invalid_arg "Coproc.synthesize: threads < 1";
  let hw = Pn.hw_procs net in
  if hw = [] then
    invalid_arg "Coproc.synthesize: network has no hardware processes";
  (* static load estimate per hardware process *)
  let load_of =
    List.map
      (fun (p : B.proc) ->
        (p.B.name, (Codesign_hls.Hls.estimate p).Codesign_hls.Hls.cycles))
      hw
  in
  (* LPT order *)
  let order =
    List.sort (fun (_, a) (_, b) -> compare b a) load_of
    |> List.map fst
  in
  let loads = Array.make threads 0 in
  let assignment = ref [] in
  let channels_between a b =
    List.length
      (List.filter
         (fun (c : Pn.channel) ->
           (c.Pn.src = a && c.Pn.dst = b) || (c.Pn.src = b && c.Pn.dst = a))
         net.Pn.channels)
  in
  List.iter
    (fun name ->
      let my_load = List.assoc name load_of in
      let score e =
        let base = loads.(e) + my_load in
        if not comm_aware then float_of_int base
        else begin
          (* communication penalty: channels to already-placed processes
             on other threads pay the crossing cost per expected message *)
          let penalty =
            List.fold_left
              (fun acc (peer, pe) ->
                if pe <> e then
                  acc + (channels_between name peer * expected_msgs * cross_cost)
                else acc)
              0 !assignment
          in
          float_of_int (base + penalty)
        end
      in
      let best = ref 0 in
      for e = 1 to threads - 1 do
        if score e < score !best then best := e
      done;
      loads.(!best) <- loads.(!best) + my_load;
      assignment := (name, !best) :: !assignment)
    order;
  let assignment = List.rev !assignment in
  let result =
    Cosim.run_network ~hw_engines:assignment ~cross_cost net
  in
  let engine_of name =
    match List.assoc_opt name assignment with Some e -> e | None -> -1
  in
  let crossing =
    List.length
      (List.filter
         (fun (c : Pn.channel) -> engine_of c.Pn.src <> engine_of c.Pn.dst)
         net.Pn.channels)
  in
  {
    threads;
    assignment;
    latency = result.Cosim.end_time;
    hw_area = result.Cosim.hw_area;
    crossing_channels = crossing;
    comm_aware;
    checksum =
      List.fold_left (fun acc (_, _, v) -> acc + v) 0
        result.Cosim.port_writes;
  }

let sweep_threads ?comm_aware ?cross_cost ~max_threads net =
  List.init max_threads (fun i ->
      synthesize ~threads:(i + 1) ?comm_aware ?cross_cost net)
