type boundary = Type_I | Type_II | Mixed_boundary
type activity = Co_simulation | Co_synthesis | Hw_sw_partitioning
type cosim_level = Pin_level | Bus_transaction | Driver_call | Os_message

type factor =
  | Performance
  | Implementation_cost
  | Modifiability
  | Nature_of_computation
  | Concurrency
  | Communication

type abstraction = Gate_netlist | Register_transfer | Behavioral | Program

type component = {
  comp_name : string;
  is_software : bool;
  level : abstraction;
  executes_on : string option;
}

let level_rank = function
  | Gate_netlist -> 0
  | Register_transfer -> 1
  | Behavioral -> 2
  | Program -> 3

let classify components =
  if components = [] then invalid_arg "Taxonomy.classify: empty system";
  let sw = List.filter (fun c -> c.is_software) components in
  let hw = List.filter (fun c -> not c.is_software) components in
  if sw = [] then invalid_arg "Taxonomy.classify: no software components";
  if hw = [] then invalid_arg "Taxonomy.classify: no hardware components";
  (* Each SW component forms a boundary with the HW side: logical when it
     executes on (or is more abstract than) the hardware, physical when
     it has a hardware peer at the same level. *)
  let boundary_of (s : component) =
    let runs_on_hw =
      match s.executes_on with
      | Some host -> List.exists (fun h -> h.comp_name = host) hw
      | None -> false
    in
    if runs_on_hw then
      (* the host's level vs the software's decides: Type I systems view
         the hardware at a lower level of abstraction *)
      let host_levels =
        List.filter_map
          (fun h ->
            if Some h.comp_name = s.executes_on then Some (level_rank h.level)
            else None)
          hw
      in
      let peer_hw =
        List.exists
          (fun h ->
            Some h.comp_name <> s.executes_on
            && level_rank h.level = level_rank s.level)
          hw
      in
      if List.exists (fun l -> l < level_rank s.level) host_levels then
        if peer_hw then Mixed_boundary else Type_I
      else Type_II
    else if
      List.exists (fun h -> level_rank h.level = level_rank s.level) hw
    then Type_II
    else Type_I
  in
  let kinds = List.sort_uniq compare (List.map boundary_of sw) in
  match kinds with
  | [ k ] -> k
  | _ -> Mixed_boundary

type methodology = {
  m_name : string;
  system_class : string;
  section : string;
  m_boundary : boundary;
  activities : activity list;
  cosim_levels : cosim_level list;
  factors : factor list;
  implemented_by : string;
}

let catalogue =
  [
    {
      m_name = "pin-level co-simulation";
      system_class = "embedded microprocessor";
      section = "4.1 [4]";
      m_boundary = Type_I;
      activities = [ Co_simulation ];
      cosim_levels = [ Pin_level ];
      factors = [];
      implemented_by = "Cosim + Codesign_bus.Bus.Pin + Codesign_isa.Cpu";
    };
    {
      m_name = "interface co-synthesis (Chinook)";
      system_class = "embedded microprocessor";
      section = "4.1 [11]";
      m_boundary = Type_I;
      activities = [ Co_simulation; Co_synthesis ];
      cosim_levels = [ Bus_transaction ];
      factors = [];
      implemented_by = "Codesign_bus.Interface_synth";
    };
    {
      m_name = "exact multiprocessor synthesis (SOS)";
      system_class = "heterogeneous multiprocessor";
      section = "4.2 [12]";
      m_boundary = Type_I;
      activities = [ Co_synthesis ];
      cosim_levels = [];
      factors = [];
      implemented_by = "Cosynth.sos";
    };
    {
      m_name = "vector bin-packing synthesis";
      system_class = "heterogeneous multiprocessor";
      section = "4.2 [13]";
      m_boundary = Type_I;
      activities = [ Co_synthesis ];
      cosim_levels = [];
      factors = [];
      implemented_by = "Cosynth.binpack";
    };
    {
      m_name = "sensitivity-driven co-synthesis";
      system_class = "heterogeneous multiprocessor";
      section = "4.2 [9]";
      m_boundary = Type_I;
      activities = [ Co_synthesis ];
      cosim_levels = [];
      factors = [];
      implemented_by = "Cosynth.sensitivity + Periodic";
    };
    {
      m_name = "ASIP instruction-set extension (PEAS-I)";
      system_class = "application-specific instruction set processor";
      section = "4.3 [14]";
      m_boundary = Type_I;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost; Modifiability ];
      implemented_by = "Asip";
    };
    {
      m_name = "reconfigurable special-purpose FUs (metamorphosis)";
      system_class = "special-purpose functional units";
      section = "4.4 [15]";
      m_boundary = Type_I;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost; Modifiability ];
      implemented_by = "Asip.Reconfig";
    };
    {
      m_name = "co-processor cosynthesis (Gupta/De Micheli style)";
      system_class = "application-specific co-processor";
      section = "4.5 [6]";
      m_boundary = Type_II;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost ];
      implemented_by = "Partition.greedy + Codesign_hls.Hls";
    };
    {
      m_name = "co-processor partitioning with adaptation (COSYMA style)";
      system_class = "application-specific co-processor";
      section = "4.5 [17]";
      m_boundary = Type_II;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost ];
      implemented_by = "Partition.simulated_annealing";
    };
    {
      m_name = "sharing-aware partitioning (Vahid/Gajski estimation)";
      system_class = "application-specific co-processor";
      section = "4.5 [16][18]";
      m_boundary = Type_II;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost; Concurrency ];
      implemented_by = "Cost (sharing) + Codesign_rtl.Estimate.Incremental";
    };
    {
      m_name = "multiple-process behavioural synthesis";
      system_class = "multi-threaded co-processor";
      section = "4.6 [10]";
      m_boundary = Type_II;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors =
        [
          Performance; Implementation_cost; Nature_of_computation;
          Concurrency; Communication;
        ];
      implemented_by = "Coproc";
    };
    {
      m_name = "message-level co-simulation";
      system_class = "multi-threaded co-processor";
      section = "4.6 [3]";
      m_boundary = Type_II;
      activities = [ Co_simulation ];
      cosim_levels = [ Os_message ];
      factors = [];
      implemented_by = "Cosim + Codesign_sim.Channel";
    };
    {
      m_name = "GCLP partitioning (Kalavade/Lee)";
      system_class = "application-specific co-processor";
      section = "references [1][5]";
      m_boundary = Type_II;
      activities = [ Co_synthesis; Hw_sw_partitioning ];
      cosim_levels = [];
      factors = [ Performance; Implementation_cost; Nature_of_computation ];
      implemented_by = "Partition.gclp";
    };
  ]

let boundary_name = function
  | Type_I -> "Type I"
  | Type_II -> "Type II"
  | Mixed_boundary -> "mixed"

let activity_name = function
  | Co_simulation -> "co-simulation"
  | Co_synthesis -> "co-synthesis"
  | Hw_sw_partitioning -> "partitioning"

let cosim_level_name = function
  | Pin_level -> "pin/signal"
  | Bus_transaction -> "bus transaction"
  | Driver_call -> "driver call"
  | Os_message -> "send/receive/wait"

let factor_name = function
  | Performance -> "performance"
  | Implementation_cost -> "cost"
  | Modifiability -> "modifiability"
  | Nature_of_computation -> "nature of computation"
  | Concurrency -> "concurrency"
  | Communication -> "communication"

let criteria m =
  [
    ("system type", boundary_name m.m_boundary);
    ( "design tasks",
      String.concat ", " (List.map activity_name m.activities) );
    ( "co-simulation level",
      if m.cosim_levels = [] then "-"
      else String.concat ", " (List.map cosim_level_name m.cosim_levels) );
    ( "partitioning factors",
      if m.factors = [] then "-"
      else String.concat ", " (List.map factor_name m.factors) );
  ]

let pp_methodology fmt m =
  Format.fprintf fmt "@[<v>%s (%s, §%s)@," m.m_name m.system_class m.section;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "  %-22s %s@," k v)
    (criteria m);
  Format.fprintf fmt "  %-22s %s@]" "implemented by" m.implemented_by
