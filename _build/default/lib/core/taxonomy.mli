(** The paper's classification framework for mixed hardware/software
    systems — its primary intellectual contribution, made executable.

    Section 2 distinguishes systems by the {i kind of boundary} between
    hardware and software; Section 3 by the {i design activities} a
    methodology integrates; Section 3.1 by the {i abstraction level} at
    which HW/SW interaction is modelled; Section 3.3 by the {i factors}
    a partitioner weighs.  Section 5 condenses these into four
    comparison criteria.  This module defines all four axes, an
    automatic classifier over structural system descriptions, and the
    catalogue of methodologies implemented in this repository (one per
    example class of §4), each tagged the way the paper tags it. *)

(** §2: the HW/SW boundary. *)
type boundary =
  | Type_I
      (** logical boundary: the software executes {i on} the hardware;
          the two live at different abstraction levels *)
  | Type_II
      (** physical boundary: HW and SW are peer components modelled at
          the same abstraction level *)
  | Mixed_boundary
      (** both kinds present ("conceivable, but no published work
          addresses it" — §2) *)

(** §3 / Fig. 2: design activities a methodology integrates. *)
type activity = Co_simulation | Co_synthesis | Hw_sw_partitioning

(** §3.1 / Fig. 3: abstraction level of modelled HW/SW interaction. *)
type cosim_level =
  | Pin_level  (** CPU pins / bus wires [4] *)
  | Bus_transaction  (** register reads/writes, bus transactions *)
  | Driver_call  (** device-driver entry points *)
  | Os_message  (** send / receive / wait [2][3] *)

(** §3.3: factors that can drive a partitioning decision. *)
type factor =
  | Performance
  | Implementation_cost
  | Modifiability
  | Nature_of_computation
  | Concurrency
  | Communication

(** Structural description of a system, for {!classify}. *)

type abstraction = Gate_netlist | Register_transfer | Behavioral | Program

type component = {
  comp_name : string;
  is_software : bool;
  level : abstraction;
  executes_on : string option;
      (** name of the component this one runs on, if any *)
}

val classify : component list -> boundary
(** The §2 rule: for every SW component, if it [executes_on] a HW
    component (or sits at a strictly higher abstraction level than some
    HW component it interacts with), the boundary it forms is logical
    (Type I); if SW and HW components are peers at the same abstraction
    level, the boundary is physical (Type II).  A system exhibiting both
    classifies as {!Mixed_boundary}.
    @raise Invalid_argument on an empty list, no SW, or no HW. *)

(** A methodology, characterised by the paper's four §5 criteria. *)
type methodology = {
  m_name : string;
  system_class : string;  (** which §4 example family it belongs to *)
  section : string;  (** paper section *)
  m_boundary : boundary;
  activities : activity list;
  cosim_levels : cosim_level list;  (** empty if co-simulation absent *)
  factors : factor list;  (** empty if partitioning absent *)
  implemented_by : string;  (** module(s) in this repository *)
}

val catalogue : methodology list
(** Every methodology implemented in this repository, tagged per the
    paper's own discussion (EXP-1/EXP-2/EXP-10 print this table and
    cross-check it against the live modules). *)

val boundary_name : boundary -> string
val activity_name : activity -> string
val cosim_level_name : cosim_level -> string
val factor_name : factor -> string

val criteria : methodology -> (string * string) list
(** The §5 criteria rendered as (criterion, value) rows. *)

val pp_methodology : Format.formatter -> methodology -> unit
