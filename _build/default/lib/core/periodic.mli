(** Periodic, multi-application co-synthesis — the distributed embedded
    systems Yen & Wolf's sensitivity-driven co-synthesis [9] actually
    targets (paper §4.2): several task graphs, each released
    periodically, sharing one set of processing elements.

    The model: each application [i] is a task graph with a period
    [p_i]; instance [k] is released at [k * p_i] and must complete by
    its next release (implicit deadline).  Feasibility is checked
    constructively over one hyperperiod: every instance of every
    application is expanded into a release-timed task set and
    list-scheduled onto the candidate PE configuration; the
    configuration is feasible iff every instance meets its deadline.
    This is a stronger (schedule-based) test than utilisation bounds and
    matches how [9] evaluates candidate architectures.

    {!synthesize} is the sensitivity-driven loop lifted to this setting:
    start from one cheapest PE, repeatedly apply the configuration
    change with the best lateness reduction per unit price until the
    hyperperiod schedule is feasible, then reclaim cost. *)

type app = {
  graph : Codesign_ir.Task_graph.t;
  period : int;
  exec : int array array;  (** [exec.(task).(pe_type)] *)
}

type problem = {
  apps : app list;
  pe_types : Cosynth.pe_type list;
  comm_cycles_per_word : int;
  max_copies : int;
}

val problem :
  ?comm_cycles_per_word:int ->
  ?max_copies:int ->
  app list ->
  Cosynth.pe_type list ->
  problem
(** Validates dimensions, positive periods, and that the hyperperiod
    stays tractable (<= 64 expanded instances).
    @raise Invalid_argument otherwise. *)

val hyperperiod : problem -> int

type verdict = {
  feasible : bool;
  max_lateness : int;  (** worst completion - deadline over all instances *)
  utilisation : float;  (** busy time / (PEs * hyperperiod) *)
}

val check : problem -> pe_set:int list -> verdict
(** Expand one hyperperiod and schedule it on the given PE instances
    (tasks are mapped greedily: each ready task goes to the instance
    giving it the earliest finish — the dynamic list scheduling [9]
    uses for candidate evaluation). *)

type solution = {
  pe_set : int list;
  price : int;
  verdict : verdict;
  iterations : int;
}

val synthesize : ?max_iters:int -> problem -> solution
(** Sensitivity-driven PE selection (default 100 iterations). *)

val pp_solution : Format.formatter -> problem -> solution -> unit
