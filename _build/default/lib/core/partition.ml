module T = Codesign_ir.Task_graph
module Rng = Codesign_ir.Rng

type result = {
  partition : Cost.partition;
  eval : Cost.eval;
  objective : float;
  evaluations : int;
  algorithm : string;
}

let respects_budget ?(params = Cost.default_params) ~max_area g p =
  match max_area with
  | None -> true
  | Some budget -> Cost.area_of_partition ~params g p <= budget

(* Shared search context: counts evaluations, applies the budget as a
   hard constraint (infeasible partitions score infinity). *)
module Ctx = struct
  type t = {
    g : T.t;
    params : Cost.params;
    weights : Cost.weights;
    max_area : int option;
    mutable evals : int;
  }

  let make g params weights max_area =
    { g; params; weights; max_area; evals = 0 }

  let score ctx p =
    ctx.evals <- ctx.evals + 1;
    if not (respects_budget ~params:ctx.params ~max_area:ctx.max_area ctx.g p)
    then infinity
    else
      let e = Cost.evaluate ~params:ctx.params ctx.g p in
      Cost.objective ~weights:ctx.weights ctx.g e

  let finish ctx ~algorithm p =
    let eval = Cost.evaluate ~params:ctx.params ctx.g p in
    {
      partition = p;
      eval;
      objective = Cost.objective ~weights:ctx.weights ctx.g eval;
      evaluations = ctx.evals;
      algorithm;
    }
end

(* ------------------------------------------------------------------ *)
(* Greedy hot-spot extraction (COSYMA flavour)                         *)
(* ------------------------------------------------------------------ *)

let greedy ?(params = Cost.default_params)
    ?(weights = Cost.default_weights) ?max_area g =
  let ctx = Ctx.make g params weights max_area in
  let n = T.n_tasks g in
  let p = Array.make n false in
  let best = ref (Ctx.score ctx p) in
  let improved = ref true in
  while !improved do
    improved := false;
    (* candidate moves: each software task into hardware, ranked by
       objective after the move *)
    let best_move = ref None in
    for i = 0 to n - 1 do
      if not p.(i) then begin
        p.(i) <- true;
        let s = Ctx.score ctx p in
        p.(i) <- false;
        if s < !best then
          match !best_move with
          | Some (_, sb) when sb <= s -> ()
          | _ -> best_move := Some (i, s)
      end
    done;
    match !best_move with
    | Some (i, s) ->
        p.(i) <- true;
        best := s;
        improved := true
    | None -> ()
  done;
  Ctx.finish ctx ~algorithm:"greedy" p

(* ------------------------------------------------------------------ *)
(* Kernighan-Lin-style passes                                          *)
(* ------------------------------------------------------------------ *)

let kl ?(params = Cost.default_params) ?(weights = Cost.default_weights)
    ?max_area ?(max_passes = 8) g =
  let ctx = Ctx.make g params weights max_area in
  let n = T.n_tasks g in
  let p = Array.make n false in
  let current = ref (Ctx.score ctx p) in
  let pass_improved = ref true in
  let passes = ref 0 in
  while !pass_improved && !passes < max_passes do
    incr passes;
    pass_improved := false;
    let locked = Array.make n false in
    (* trace of moves with running score *)
    let trail = ref [] in
    let score_now = ref !current in
    for _step = 1 to n do
      (* best single flip among unlocked tasks, even if worsening *)
      let best_move = ref None in
      for i = 0 to n - 1 do
        if not locked.(i) then begin
          p.(i) <- not p.(i);
          let s = Ctx.score ctx p in
          p.(i) <- not p.(i);
          match !best_move with
          | Some (_, sb) when sb <= s -> ()
          | _ -> best_move := Some (i, s)
        end
      done;
      match !best_move with
      | Some (i, s) ->
          p.(i) <- not p.(i);
          locked.(i) <- true;
          score_now := s;
          trail := (i, s) :: !trail
      | None -> ()
    done;
    (* unwind to the best prefix of the pass *)
    let trail = List.rev !trail in
    let best_prefix = ref 0 and best_score = ref !current in
    List.iteri
      (fun idx (_, s) ->
        if s < !best_score then begin
          best_score := s;
          best_prefix := idx + 1
        end)
      trail;
    List.iteri
      (fun idx (i, _) -> if idx >= !best_prefix then p.(i) <- not p.(i))
      trail;
    if !best_score < !current -. 1e-9 then begin
      current := !best_score;
      pass_improved := true
    end
  done;
  Ctx.finish ctx ~algorithm:"kl" p

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)
(* ------------------------------------------------------------------ *)

let simulated_annealing ?(params = Cost.default_params)
    ?(weights = Cost.default_weights) ?max_area ?(seed = 42) ?iterations
    ?(t0 = 1000.) ?(cooling = 0.97) g =
  let ctx = Ctx.make g params weights max_area in
  let n = T.n_tasks g in
  let iterations =
    match iterations with Some i -> i | None -> 200 * max n 1
  in
  let rng = Rng.create seed in
  let p = Array.make n false in
  let current = ref (Ctx.score ctx p) in
  let best_p = Array.copy p in
  let best = ref !current in
  let temp = ref t0 in
  if n > 0 then
    for step = 1 to iterations do
      let i = Rng.int rng n in
      p.(i) <- not p.(i);
      let s = Ctx.score ctx p in
      let delta = s -. !current in
      let accept =
        delta <= 0.0
        || (s < infinity
            && Rng.float rng < exp (-.delta /. max !temp 1e-6))
      in
      if accept then begin
        current := s;
        if s < !best then begin
          best := s;
          Array.blit p 0 best_p 0 n
        end
      end
      else p.(i) <- not p.(i);
      if step mod 20 = 0 then temp := !temp *. cooling
    done;
  Ctx.finish ctx ~algorithm:"sa" best_p

(* ------------------------------------------------------------------ *)
(* Global criticality / local phase (Kalavade-Lee)                     *)
(* ------------------------------------------------------------------ *)

let gclp ?(params = Cost.default_params) ?(weights = Cost.default_weights)
    ?max_area g =
  let ctx = Ctx.make g params weights max_area in
  let n = T.n_tasks g in
  let p = Array.make n false in
  let order = T.topo_order g in
  let deadline =
    if g.T.deadline > 0 then g.T.deadline
    else (* no deadline: criticality measured against the SW critical path *)
      T.sw_critical_path g
  in
  List.iter
    (fun i ->
      let t = g.T.tasks.(i) in
      (* global criticality: projected latency if everything still
         undecided stays in software, relative to the deadline *)
      let projected =
        Cost.(evaluate ~params g p).latency
      in
      let gc = float_of_int projected /. float_of_int (max deadline 1) in
      (* local phase: affinity of this task for hardware *)
      let affinity =
        t.T.parallelism
        +. (if t.T.modifiable then -0.4 else 0.0)
        +. (float_of_int (t.T.sw_cycles - t.T.hw_cycles)
            /. float_of_int (max t.T.sw_cycles 1))
           *. 0.5
      in
      let threshold = 0.9 -. (0.4 *. (affinity -. 0.5)) in
      if gc > threshold then begin
        (* time-critical phase: move to HW if it helps latency and fits *)
        p.(i) <- true;
        let with_hw = Ctx.score ctx p in
        p.(i) <- false;
        let without = Ctx.score ctx p in
        if with_hw < without then p.(i) <- true
      end
      else begin
        (* area-saving phase: prefer software unless hardware is
           strictly better even on the area-weighted objective *)
        p.(i) <- true;
        let with_hw = Ctx.score ctx p in
        p.(i) <- false;
        let without = Ctx.score ctx p in
        if with_hw +. 1e-9 < without then p.(i) <- true
      end)
    order;
  Ctx.finish ctx ~algorithm:"gclp" p

(* ------------------------------------------------------------------ *)
(* Exhaustive reference                                                *)
(* ------------------------------------------------------------------ *)

let exhaustive ?(params = Cost.default_params)
    ?(weights = Cost.default_weights) ?max_area g =
  let ctx = Ctx.make g params weights max_area in
  let n = T.n_tasks g in
  if n > 20 then invalid_arg "Partition.exhaustive: too many tasks";
  let best_p = Array.make n false in
  let best = ref (Ctx.score ctx best_p) in
  let p = Array.make n false in
  for mask = 1 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      p.(i) <- (mask lsr i) land 1 = 1
    done;
    let s = Ctx.score ctx p in
    if s < !best then begin
      best := s;
      Array.blit p 0 best_p 0 n
    end
  done;
  Ctx.finish ctx ~algorithm:"exhaustive" best_p
