(** Hardware/software partitioning algorithms over task graphs —
    the central co-design decision of the paper's §3.3 / §4.5.

    All four algorithms optimise {!Cost.objective} under an optional
    hardware area budget and return the partition together with its
    evaluation and search statistics:

    - {!greedy}: profile-driven hot-spot extraction in the spirit of
      COSYMA [17]: repeatedly move the software task with the best
      latency-gain-per-area ratio into hardware while the deadline is
      missed or the objective improves.
    - {!kl}: Kernighan-Lin-flavoured iterative improvement: passes of
      locked best-single-move steps, accepting the best prefix of each
      pass (so moves that temporarily worsen the objective can still be
      traversed).
    - {!simulated_annealing}: classic SA over single-task flips with a
      geometric cooling schedule and a deterministic seeded PRNG.
    - {!gclp}: Global-Criticality/Local-Phase (Kalavade & Lee [1][5]):
      tasks are visited in topological order; a global criticality
      measure (how much the remaining schedule threatens the deadline)
      selects between a time-driven and an area-driven objective for
      each task, modulated by the task's local affinity (nature of
      computation, §3.3).

    Determinism: equal inputs (and seed) give equal outputs. *)

type result = {
  partition : Cost.partition;
  eval : Cost.eval;
  objective : float;
  evaluations : int;  (** cost-model invocations the search used *)
  algorithm : string;
}

val greedy :
  ?params:Cost.params ->
  ?weights:Cost.weights ->
  ?max_area:int ->
  Codesign_ir.Task_graph.t ->
  result

val kl :
  ?params:Cost.params ->
  ?weights:Cost.weights ->
  ?max_area:int ->
  ?max_passes:int ->
  Codesign_ir.Task_graph.t ->
  result
(** [max_passes] defaults to 8. *)

val simulated_annealing :
  ?params:Cost.params ->
  ?weights:Cost.weights ->
  ?max_area:int ->
  ?seed:int ->
  ?iterations:int ->
  ?t0:float ->
  ?cooling:float ->
  Codesign_ir.Task_graph.t ->
  result
(** Defaults: seed 42, iterations [200 * n_tasks], t0 [1000.], cooling
    [0.97] per temperature step (20 flips per step). *)

val gclp :
  ?params:Cost.params ->
  ?weights:Cost.weights ->
  ?max_area:int ->
  Codesign_ir.Task_graph.t ->
  result

val exhaustive :
  ?params:Cost.params ->
  ?weights:Cost.weights ->
  ?max_area:int ->
  Codesign_ir.Task_graph.t ->
  result
(** Exact optimum by enumeration — for validating the heuristics.
    @raise Invalid_argument above 20 tasks. *)

val respects_budget : ?params:Cost.params -> max_area:int option -> Codesign_ir.Task_graph.t -> Cost.partition -> bool
