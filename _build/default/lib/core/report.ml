type align = L | R

let fi n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ff ?(dec = 2) x = Printf.sprintf "%.*f" dec x
let fp x = Printf.sprintf "%.1f%%" (100. *. x)

let table ?title ~headers ?align rows =
  let ncols = List.length headers in
  let align =
    match align with
    | Some a -> a
    | None -> L :: List.init (max 0 (ncols - 1)) (fun _ -> R)
  in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r
    else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    (headers :: rows);
  let render_cell i cell =
    let w = widths.(i) in
    let a = try List.nth align i with _ -> R in
    match a with
    | L -> Printf.sprintf "%-*s" w cell
    | R -> Printf.sprintf "%*s" w cell
  in
  let render_row row =
    "| " ^ String.concat " | " (List.mapi render_cell row) ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 512 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf (rule ^ "\n");
  Buffer.contents buf
