(** Application-specific instruction-set processor (ASIP) synthesis —
    the paper's §4.3 (PEAS-I [14]) — and its §4.4 variant with
    field-programmable special-purpose functional units
    (Athanas-Silverman instruction-set metamorphosis [15]).

    The flow is end-to-end and verified, not merely estimated:

    + {b mine}: enumerate occurrences of extension-instruction patterns
      (multiply-accumulate, multiply-subtract, 3-input add, shift-add,
      multiply-shift) in the application's behaviour, weighted by loop
      trip counts;
    + {b select}: 0/1 knapsack over patterns (value = estimated cycles
      saved, weight = functional-unit area) under the area budget —
      the §3.3 performance-vs-implementation-cost trade-off;
    + {b rewrite}: replace matched sub-expressions with
      {!Codesign_ir.Behavior.Ext} nodes (bottom-up, so chained
      accumulations fuse);
    + {b verify}: compile both versions to the ISS — the rewritten one
      executes real [Custom] instructions with the pattern's semantics
      and latency — check the outputs are identical and measure the true
      cycle counts.

    {!Reconfig} compares a {i static} FU configuration (one pattern set
    for a whole multi-application workload) against {i dynamic}
    reconfiguration (best per-application set, paying a reconfiguration
    latency at each switch). *)

type pattern = {
  pid : int;  (** extension opcode (the [Custom] index) *)
  pname : string;
  semantics : int -> int -> int -> int;  (** acc -> a -> b -> result *)
  area : int;  (** functional-unit area, NAND-equivalents *)
  latency : int;  (** cycles of the custom instruction *)
  sw_cycles : int;  (** cycles of the instruction sequence it replaces *)
}

val patterns : pattern list
(** The built-in candidate set: mac, msub, add3, shladd, mulshr, plus
    the bit-twiddling family crcstep ([x>>1 ^ (a&b)]), negand
    ([-(a&b)]) and andxor ([x ^ (a&b)]) that CRC-like kernels lean
    on. *)

val occurrences :
  Codesign_ir.Behavior.proc -> (pattern * int) list
(** Trip-weighted greedy non-overlapping match counts per pattern
    (patterns with zero occurrences are omitted). *)

val rewrite :
  Codesign_ir.Behavior.proc -> pattern list -> Codesign_ir.Behavior.proc
(** Bottom-up replacement of matches of the given patterns with [Ext]
    nodes. *)

val select :
  budget:int -> (pattern * int) list -> pattern list
(** Knapsack selection maximising estimated savings
    [occurrences * (sw_cycles - latency)] under the area budget. *)

val ext_evaluator : pattern list -> int -> int -> int -> int -> int
(** Combined semantics dispatcher for {!Codesign_ir.Behavior.run}'s
    [ext] and the ISS [custom] hook.  @raise Invalid_argument on an
    unselected opcode. *)

type report = {
  selected : pattern list;
  occurrence_counts : (string * int) list;
  fu_area : int;  (** area of the selected extension units *)
  base_cycles : int;  (** measured, baseline ISS *)
  asip_cycles : int;  (** measured, extended ISS *)
  speedup : float;
  verified : bool;  (** outputs of both runs identical *)
}

val design :
  ?budget:int ->
  Codesign_ir.Behavior.proc ->
  (string * int) list ->
  report
(** Full flow on one application with its input bindings.
    [budget] defaults to 800 area units.
    @raise Failure if either compiled run traps. *)

(** §4.4: time-multiplexed reconfigurable functional units. *)
module Reconfig : sig
  type outcome = {
    static_cycles : int;
        (** whole workload under the single best static pattern set *)
    dynamic_cycles : int;
        (** per-app best sets, including reconfiguration time *)
    reconfigurations : int;
    static_set : string list;
    winner : string;  (** ["static"] or ["dynamic"] *)
  }

  val compare :
    ?capacity:int ->
    ?reconfig_cost:int ->
    (Codesign_ir.Behavior.proc * (string * int) list) list ->
    outcome
  (** [capacity] (default 800) bounds the resident FU area;
      [reconfig_cost] (default 2000 cycles) is charged whenever the
      resident set changes between consecutive applications. *)
end
