module T = Codesign_ir.Task_graph

type pe_type = { pt_name : string; price : int }

type interconnect = Point_to_point | Shared_bus

type problem = {
  tg : T.t;
  pe_types : pe_type list;
  exec : int array array;
  comm_cycles_per_word : int;
  max_copies : int;
  interconnect : interconnect;
}

let problem ?(comm_cycles_per_word = 2) ?(max_copies = 4)
    ?(interconnect = Point_to_point) tg pe_types ~exec =
  let n = T.n_tasks tg and k = List.length pe_types in
  if k = 0 then invalid_arg "Cosynth.problem: empty PE library";
  if Array.length exec <> n then
    invalid_arg "Cosynth.problem: exec rows <> task count";
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Cosynth.problem: exec columns <> PE type count";
      Array.iter
        (fun c ->
          if c <= 0 then
            invalid_arg "Cosynth.problem: non-positive execution time")
        row)
    exec;
  List.iter
    (fun p ->
      if p.price <= 0 then
        invalid_arg "Cosynth.problem: non-positive PE price")
    pe_types;
  if max_copies <= 0 then invalid_arg "Cosynth.problem: max_copies <= 0";
  { tg; pe_types; exec; comm_cycles_per_word; max_copies; interconnect }

type solution = {
  pe_set : int list;
  mapping : int array;
  price : int;
  makespan : int;
  feasible : bool;
  nodes : int;
  algorithm : string;
}

let price_of pb pe_set =
  List.fold_left
    (fun acc t -> acc + (List.nth pb.pe_types t).price)
    0 pe_set

(* Deterministic list schedule of (possibly a prefix of) the tasks onto
   the instance set.  mapping.(i) = -1 means "not yet assigned" and the
   task is skipped (used for branch-and-bound prefix bounds; legal
   because assignment follows topological order). *)
let makespan_partial pb ~pe_set ~mapping =
  let insts = Array.of_list pe_set in
  let free = Array.make (Array.length insts) 0 in
  let finish = Array.make (T.n_tasks pb.tg) 0 in
  let order = T.topo_order pb.tg in
  let span = ref 0 in
  (* under a shared interconnect, inter-PE transfers serialise on one
     medium (Fig. 5's interconnection network); point-to-point links
     only delay their own consumer *)
  let bus_free = ref 0 in
  List.iter
    (fun i ->
      let inst = mapping.(i) in
      if inst >= 0 then begin
        let ready =
          List.fold_left
            (fun acc (e : T.edge) ->
              if mapping.(e.src) < 0 then acc
              else if mapping.(e.src) = inst then
                max acc finish.(e.src)
              else begin
                let cost = e.words * pb.comm_cycles_per_word in
                match pb.interconnect with
                | Point_to_point -> max acc (finish.(e.src) + cost)
                | Shared_bus ->
                    let xfer_start = max finish.(e.src) !bus_free in
                    bus_free := xfer_start + cost;
                    max acc !bus_free
              end)
            0 (T.in_edges pb.tg i)
        in
        let start = max ready free.(inst) in
        let f = start + pb.exec.(i).(insts.(inst)) in
        finish.(i) <- f;
        free.(inst) <- f;
        if f > !span then span := f
      end)
    order;
  !span

let makespan pb ~pe_set ~mapping = makespan_partial pb ~pe_set ~mapping

let deadline_of pb =
  if pb.tg.T.deadline > 0 then pb.tg.T.deadline else max_int

let solution_of pb ~pe_set ~mapping ~nodes ~algorithm =
  let ms = makespan pb ~pe_set ~mapping in
  {
    pe_set;
    mapping;
    price = price_of pb pe_set;
    makespan = ms;
    feasible = ms <= deadline_of pb;
    nodes;
    algorithm;
  }

(* ------------------------------------------------------------------ *)
(* SOS: exact branch and bound                                         *)
(* ------------------------------------------------------------------ *)

let sos ?(node_budget = 2_000_000) pb =
  let n = T.n_tasks pb.tg in
  let k = List.length pb.pe_types in
  let order = Array.of_list (T.topo_order pb.tg) in
  let deadline = deadline_of pb in
  let mapping = Array.make n (-1) in
  let insts = ref [] (* reversed *) in
  let copies = Array.make k 0 in
  let best_price = ref max_int in
  let best : solution option ref = ref None in
  let nodes = ref 0 in
  let rec branch depth cur_price =
    if !nodes >= node_budget then ()
    else begin
      incr nodes;
      if cur_price >= !best_price then ()
      else if depth = n then begin
        let pe_set = List.rev !insts in
        let ms = makespan pb ~pe_set ~mapping in
        if ms <= deadline then begin
          best_price := cur_price;
          best :=
            Some
              {
                pe_set;
                mapping = Array.copy mapping;
                price = cur_price;
                makespan = ms;
                feasible = true;
                nodes = !nodes;
                algorithm = "sos";
              }
        end
      end
      else begin
        let task = order.(depth) in
        let pe_set = List.rev !insts in
        let n_inst = List.length pe_set in
        (* try existing instances *)
        for inst = 0 to n_inst - 1 do
          mapping.(task) <- inst;
          let ms = makespan_partial pb ~pe_set ~mapping in
          if ms <= deadline then branch (depth + 1) cur_price;
          mapping.(task) <- -1
        done;
        (* try one new instance of each type *)
        for t = 0 to k - 1 do
          if copies.(t) < pb.max_copies then begin
            let price' = cur_price + (List.nth pb.pe_types t).price in
            if price' < !best_price then begin
              insts := t :: !insts;
              copies.(t) <- copies.(t) + 1;
              mapping.(task) <- n_inst;
              let pe_set' = List.rev !insts in
              let ms = makespan_partial pb ~pe_set:pe_set' ~mapping in
              if ms <= deadline then branch (depth + 1) price';
              mapping.(task) <- -1;
              copies.(t) <- copies.(t) - 1;
              insts := List.tl !insts
            end
          end
        done
      end
    end
  in
  branch 0 0;
  match !best with
  | Some s -> { s with nodes = !nodes }
  | None ->
      (* infeasible under the bounds: fall back to one instance of the
         fastest type to report something meaningful *)
      let fastest =
        let best_t = ref 0 and best_sum = ref max_int in
        for t = 0 to k - 1 do
          let sum = Array.fold_left (fun a row -> a + row.(t)) 0 pb.exec in
          if sum < !best_sum then begin
            best_sum := sum;
            best_t := t
          end
        done;
        !best_t
      in
      let mapping = Array.make n 0 in
      solution_of pb ~pe_set:[ fastest ] ~mapping ~nodes:!nodes
        ~algorithm:"sos"

(* ------------------------------------------------------------------ *)
(* Beck-style vector bin packing                                       *)
(* ------------------------------------------------------------------ *)

let binpack pb =
  let n = T.n_tasks pb.tg in
  let k = List.length pb.pe_types in
  let deadline = deadline_of pb in
  (* pack against 85% of the deadline: utilisation ignores precedence
     stalls and communication, so leave headroom *)
  let capacity =
    if deadline = max_int then T.total_sw_cycles pb.tg
    else deadline * 85 / 100
  in
  (* price per unit speed: prefer cheap types that still fit the task *)
  let type_order =
    List.init k Fun.id
    |> List.sort (fun a b ->
           compare (List.nth pb.pe_types a).price
             (List.nth pb.pe_types b).price)
  in
  (* tasks in decreasing max-utilisation order *)
  let tasks =
    List.init n Fun.id
    |> List.sort (fun a b ->
           let u i =
             Array.fold_left max 0 pb.exec.(i)
           in
           compare (u b) (u a))
  in
  let insts = ref [] in (* (type, load) list, in creation order *)
  let mapping = Array.make n (-1) in
  let nodes = ref 0 in
  List.iter
    (fun task ->
      incr nodes;
      (* first fit into an existing instance *)
      let placed = ref false in
      List.iteri
        (fun idx (t, load) ->
          if (not !placed) && load + pb.exec.(task).(t) <= capacity then begin
            mapping.(task) <- idx;
            insts :=
              List.mapi
                (fun j (t', l') ->
                  if j = idx then (t', l' + pb.exec.(task).(t)) else (t', l'))
                !insts;
            placed := true
          end)
        !insts;
      if not !placed then begin
        (* open the cheapest bin type the task fits in *)
        let t =
          match
            List.find_opt
              (fun t -> pb.exec.(task).(t) <= capacity)
              type_order
          with
          | Some t -> t
          | None ->
              (* nothing fits the deadline alone: use the fastest type *)
              List.fold_left
                (fun acc t ->
                  if pb.exec.(task).(t) < pb.exec.(task).(acc) then t
                  else acc)
                0 (List.init k Fun.id)
        in
        mapping.(task) <- List.length !insts;
        insts := !insts @ [ (t, pb.exec.(task).(t)) ]
      end)
    tasks;
  (* Repair loop: the utilisation model ignores precedence and
     communication, so verify with the real schedule.  While infeasible,
     first try upgrading the most loaded bin to a faster PE type (fixes
     critical-path-bound graphs); once every loaded bin runs the fastest
     type for its tasks, split the most loaded bin instead. *)
  let pe_set () = List.map fst !insts in
  let attempts = ref 0 in
  let current_ms = ref (makespan pb ~pe_set:(pe_set ()) ~mapping) in
  while !current_ms > deadline && !attempts < 3 * n do
    incr attempts;
    incr nodes;
    let loads = Array.make (List.length !insts) 0 in
    Array.iteri
      (fun task inst ->
        loads.(inst) <-
          loads.(inst) + pb.exec.(task).(List.nth (pe_set ()) inst))
      mapping;
    let worst = ref 0 in
    Array.iteri (fun i l -> if l > loads.(!worst) then worst := i) loads;
    let bin_type = List.nth (pe_set ()) !worst in
    (* load of the worst bin under an alternative type *)
    let load_under t =
      let sum = ref 0 in
      Array.iteri
        (fun task inst -> if inst = !worst then sum := !sum + pb.exec.(task).(t))
        mapping;
      !sum
    in
    let faster =
      List.init k Fun.id
      |> List.filter (fun t -> t <> bin_type && load_under t < load_under bin_type)
      |> List.sort (fun a b ->
             compare (List.nth pb.pe_types a).price
               (List.nth pb.pe_types b).price)
    in
    match faster with
    | t :: _ ->
        (* upgrade the bottleneck bin *)
        insts :=
          List.mapi
            (fun j (t', l') -> if j = !worst then (t, l') else (t', l'))
            !insts;
        current_ms := makespan pb ~pe_set:(pe_set ()) ~mapping
    | [] ->
        (* already the fastest: split out its largest task *)
        let victim = ref (-1) in
        Array.iteri
          (fun task inst ->
            if inst = !worst then
              match !victim with
              | -1 -> victim := task
              | v ->
                  if pb.exec.(task).(bin_type) > pb.exec.(v).(bin_type) then
                    victim := task)
          mapping;
        if !victim >= 0 && loads.(!worst) > 0 then begin
          mapping.(!victim) <- List.length !insts;
          insts := !insts @ [ (bin_type, pb.exec.(!victim).(bin_type)) ];
          current_ms := makespan pb ~pe_set:(pe_set ()) ~mapping
        end
        else attempts := 3 * n
  done;
  {
    (solution_of pb ~pe_set:(pe_set ()) ~mapping ~nodes:!nodes
       ~algorithm:"binpack")
    with
    nodes = !nodes;
  }

(* ------------------------------------------------------------------ *)
(* Yen-Wolf sensitivity-driven improvement                             *)
(* ------------------------------------------------------------------ *)

let sensitivity ?(max_iters = 200) pb =
  let n = T.n_tasks pb.tg in
  let k = List.length pb.pe_types in
  let deadline = deadline_of pb in
  (* start: one instance of the cheapest type, everything mapped there *)
  let cheapest =
    List.init k Fun.id
    |> List.fold_left
         (fun acc t ->
           if (List.nth pb.pe_types t).price < (List.nth pb.pe_types acc).price
           then t
           else acc)
         0
  in
  let pe_set = ref [ cheapest ] in
  let mapping = Array.make n 0 in
  let nodes = ref 0 in
  let ms () = makespan pb ~pe_set:!pe_set ~mapping in
  let iter = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iter < max_iters do
    incr iter;
    let current = ms () in
    if current > deadline then begin
      (* infeasible: find the move with the best violation reduction per
         unit price.  Moves: (a) task to existing instance, (b) task to a
         fresh instance of any type. *)
      let best = ref None in
      let consider gain dprice apply =
        incr nodes;
        let ratio =
          float_of_int gain /. float_of_int (max dprice 1)
        in
        match !best with
        | Some (r, _, _) when r >= ratio -> ()
        | _ -> if gain > 0 then best := Some (ratio, dprice, apply)
      in
      for task = 0 to n - 1 do
        let old_inst = mapping.(task) in
        (* existing instances *)
        List.iteri
          (fun inst _ ->
            if inst <> old_inst then begin
              mapping.(task) <- inst;
              let m = ms () in
              mapping.(task) <- old_inst;
              consider (current - m) 0 (fun () -> mapping.(task) <- inst)
            end)
          !pe_set;
        (* fresh instance of each type *)
        for t = 0 to k - 1 do
          let count =
            List.length (List.filter (fun x -> x = t) !pe_set)
          in
          if count < pb.max_copies then begin
            let inst = List.length !pe_set in
            pe_set := !pe_set @ [ t ];
            mapping.(task) <- inst;
            let m = ms () in
            mapping.(task) <- old_inst;
            pe_set := List.filteri (fun i _ -> i < inst) !pe_set;
            consider (current - m)
              (List.nth pb.pe_types t).price
              (fun () ->
                pe_set := !pe_set @ [ t ];
                mapping.(task) <- inst)
          end
        done
      done;
      match !best with
      | Some (_, _, apply) -> apply ()
      | None -> continue_ := false
    end
    else begin
      (* feasible: reclaim cost — drop empty instances, then try moving
         all tasks off the most expensive instance *)
      let used = Array.make (List.length !pe_set) false in
      Array.iter (fun i -> used.(i) <- true) mapping;
      let empty_exists = Array.exists not used in
      if empty_exists then begin
        (* compact: remove empty instances, remap indices *)
        let remap = Array.make (List.length !pe_set) (-1) in
        let new_set = ref [] and next = ref 0 in
        List.iteri
          (fun i t ->
            if used.(i) then begin
              remap.(i) <- !next;
              incr next;
              new_set := !new_set @ [ t ]
            end)
          !pe_set;
        Array.iteri (fun task i -> mapping.(task) <- remap.(i)) mapping;
        pe_set := !new_set
      end
      else begin
        (* try to vacate the priciest instance *)
        let prices =
          List.map (fun t -> (List.nth pb.pe_types t).price) !pe_set
        in
        let victim, _ =
          List.fold_left
            (fun (bi, bp) (i, p) -> if p > bp then (i, p) else (bi, bp))
            (-1, min_int)
            (List.mapi (fun i p -> (i, p)) prices)
        in
        if victim >= 0 && List.length !pe_set > 1 then begin
          let saved = Array.copy mapping in
          let ok = ref true in
          Array.iteri
            (fun task inst ->
              if !ok && inst = victim then begin
                (* cheapest feasible alternative instance *)
                let found = ref false in
                List.iteri
                  (fun alt _ ->
                    if (not !found) && alt <> victim then begin
                      mapping.(task) <- alt;
                      incr nodes;
                      if ms () <= deadline then found := true
                      else mapping.(task) <- inst
                    end)
                  !pe_set;
                if not !found then ok := false
              end)
            saved;
          if !ok then begin
            (* drop the now-empty victim *)
            let remap i = if i > victim then i - 1 else i in
            Array.iteri (fun task i -> mapping.(task) <- remap i) mapping;
            pe_set := List.filteri (fun i _ -> i <> victim) !pe_set
          end
          else begin
            Array.blit saved 0 mapping 0 n;
            continue_ := false
          end
        end
        else continue_ := false
      end
    end
  done;
  { (solution_of pb ~pe_set:!pe_set ~mapping ~nodes:!nodes
       ~algorithm:"sensitivity")
    with nodes = !nodes }

let pp_solution fmt pb s =
  Format.fprintf fmt
    "@[<v>%s: price=%d makespan=%d %s, %d PEs [%s], %d nodes@]" s.algorithm
    s.price s.makespan
    (if s.feasible then "(feasible)" else "(MISSES deadline)")
    (List.length s.pe_set)
    (String.concat "; "
       (List.map (fun t -> (List.nth pb.pe_types t).pt_name) s.pe_set))
    s.nodes
