lib/core/cosim.mli: Codesign_ir
