lib/core/report.mli:
