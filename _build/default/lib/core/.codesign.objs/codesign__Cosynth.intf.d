lib/core/cosynth.mli: Codesign_ir Format
