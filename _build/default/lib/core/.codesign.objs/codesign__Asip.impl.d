lib/core/asip.ml: Array Codesign_ir Codesign_isa Hashtbl List Printf
