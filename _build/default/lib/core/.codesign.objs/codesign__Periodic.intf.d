lib/core/periodic.mli: Codesign_ir Cosynth Format
