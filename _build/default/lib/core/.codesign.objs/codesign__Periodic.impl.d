lib/core/periodic.ml: Array Codesign_ir Cosynth Format Fun Hashtbl List Printf String
