lib/core/coproc.ml: Array Codesign_hls Codesign_ir Cosim List
