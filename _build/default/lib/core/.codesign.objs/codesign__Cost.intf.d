lib/core/cost.mli: Codesign_ir
