lib/core/partition.ml: Array Codesign_ir Cost List
