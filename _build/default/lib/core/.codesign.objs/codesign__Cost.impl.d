lib/core/cost.ml: Array Codesign_ir Codesign_rtl Fun List
