lib/core/taxonomy.ml: Format List String
