lib/core/coproc.mli: Codesign_ir
