lib/core/cosim.ml: Codesign_bus Codesign_hls Codesign_ir Codesign_isa Codesign_sim Hashtbl List Printf Queue
