lib/core/hotspot.ml: Codesign_hls Codesign_ir Codesign_isa Codesign_rtl List
