lib/core/cosynth.ml: Array Codesign_ir Format Fun List String
