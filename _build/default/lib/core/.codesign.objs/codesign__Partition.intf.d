lib/core/partition.mli: Codesign_ir Cost
