lib/core/asip.mli: Codesign_ir
