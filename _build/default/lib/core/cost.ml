module T = Codesign_ir.Task_graph
module E = Codesign_rtl.Estimate

type partition = bool array

type params = {
  comm_cycles_per_word : int;
  sharing : bool;
  hw_parallel : bool;
  parallelism_speedup : bool;
}

let default_params =
  {
    comm_cycles_per_word = 4;
    sharing = true;
    hw_parallel = true;
    parallelism_speedup = true;
  }

type eval = {
  latency : int;
  all_sw_latency : int;
  speedup : float;
  hw_area : int;
  sw_bytes : int;
  comm_words : int;
  n_hw : int;
  meets_deadline : bool;
  modifiable_in_hw : int;
}

let all_sw g = Array.make (T.n_tasks g) false
let all_hw g = Array.make (T.n_tasks g) true

let hw_task_cycles params (t : T.task) =
  if params.parallelism_speedup then begin
    (* a highly parallel task realises its full hardware speedup; a
       serial one gains little over software beyond instruction overhead *)
    let base = float_of_int t.T.hw_cycles in
    let serial_penalty =
      float_of_int (t.T.sw_cycles - t.T.hw_cycles)
      *. (1.0 -. t.T.parallelism) *. 0.5
    in
    max 1 (int_of_float (base +. serial_penalty))
  end
  else max 1 t.T.hw_cycles

(* Deterministic list schedule: one CPU, one-or-infinite HW contexts,
   communication charged on boundary-crossing edges.  Priority is
   critical-path length (software weights), ties by id. *)
let schedule_latency params g (p : partition) =
  let n = T.n_tasks g in
  if n = 0 then 0
  else begin
    let graph = T.graph g in
    let prio =
      (* longest path to a sink, in software cycles *)
      let rev_dist = Array.make n 0 in
      let order = List.rev (T.topo_order g) in
      List.iter
        (fun u ->
          let best =
            List.fold_left
              (fun acc v -> max acc rev_dist.(v))
              0
              (Codesign_ir.Graph_algo.succ graph u)
          in
          rev_dist.(u) <- best + g.T.tasks.(u).T.sw_cycles)
        order;
      rev_dist
    in
    let exec i =
      if p.(i) then hw_task_cycles params g.T.tasks.(i)
      else g.T.tasks.(i).T.sw_cycles
    in
    let finish = Array.make n (-1) in
    let scheduled = Array.make n false in
    let cpu_free = ref 0 in
    let hw_free = ref 0 in
    let n_done = ref 0 in
    while !n_done < n do
      (* data-ready time of each unscheduled task whose preds are done *)
      let candidates =
        List.filter_map
          (fun i ->
            if scheduled.(i) then None
            else
              let preds = T.in_edges g i in
              if
                List.for_all (fun (e : T.edge) -> scheduled.(e.src)) preds
              then begin
                let ready =
                  List.fold_left
                    (fun acc (e : T.edge) ->
                      let comm =
                        if p.(e.src) <> p.(i) then
                          e.words * params.comm_cycles_per_word
                        else 0
                      in
                      max acc (finish.(e.src) + comm))
                    0 preds
                in
                Some (i, ready)
              end
              else None)
          (List.init n Fun.id)
      in
      (* pick the highest-priority candidate, ties by smaller ready time
         then id *)
      let best =
        List.fold_left
          (fun acc (i, ready) ->
            match acc with
            | None -> Some (i, ready)
            | Some (j, rj) ->
                if
                  prio.(i) > prio.(j)
                  || (prio.(i) = prio.(j) && (ready, i) < (rj, j))
                then Some (i, ready)
                else acc)
          None candidates
      in
      match best with
      | None -> assert false (* DAG: always a ready candidate *)
      | Some (i, ready) ->
          let start =
            if p.(i) then
              if params.hw_parallel then ready else max ready !hw_free
            else max ready !cpu_free
          in
          let f = start + exec i in
          finish.(i) <- f;
          scheduled.(i) <- true;
          incr n_done;
          if p.(i) then begin
            if not params.hw_parallel then hw_free := f
          end
          else cpu_free := f
    done;
    Array.fold_left max 0 finish
  end

let area_of_partition ?(params = default_params) g (p : partition) =
  if params.sharing then begin
    let inc = E.Incremental.create () in
    Array.iteri
      (fun i (t : T.task) ->
        if p.(i) then
          ignore
            (E.Incremental.add inc ~id:i
               (if t.T.ops = [] then [ ("add", t.T.hw_area / 32) ]
                else t.T.ops)))
      g.T.tasks;
    E.Incremental.total_area inc
  end
  else
    Array.to_list g.T.tasks
    |> List.filteri (fun i _ -> p.(i))
    |> List.fold_left
         (fun acc (t : T.task) ->
           acc
           +
           if t.T.ops = [] then t.T.hw_area
           else E.standalone_area t.T.ops)
         0

let evaluate ?(params = default_params) g p =
  let n = T.n_tasks g in
  if Array.length p <> n then
    invalid_arg "Cost.evaluate: partition size mismatch";
  let latency = schedule_latency params g p in
  let all_sw_latency = schedule_latency params g (Array.make n false) in
  let hw_area = area_of_partition ~params g p in
  let sw_bytes =
    Array.to_list g.T.tasks
    |> List.filteri (fun i _ -> not p.(i))
    |> List.fold_left (fun acc (t : T.task) -> acc + t.T.sw_bytes) 0
  in
  let comm_words =
    List.fold_left
      (fun acc (e : T.edge) ->
        if p.(e.src) <> p.(e.dst) then acc + e.words else acc)
      0 g.T.edges
  in
  let n_hw = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 p in
  let modifiable_in_hw =
    let c = ref 0 in
    Array.iteri
      (fun i (t : T.task) -> if p.(i) && t.T.modifiable then incr c)
      g.T.tasks;
    !c
  in
  {
    latency;
    all_sw_latency;
    speedup =
      (if latency = 0 then 1.0
       else float_of_int all_sw_latency /. float_of_int latency);
    hw_area;
    sw_bytes;
    comm_words;
    n_hw;
    meets_deadline = g.T.deadline = 0 || latency <= g.T.deadline;
    modifiable_in_hw;
  }

type weights = {
  w_area : float;
  w_latency : float;
  w_deadline_miss : float;
  w_modifiability : float;
  w_sw_bytes : float;
}

let default_weights =
  {
    w_area = 1.0;
    w_latency = 0.5;
    w_deadline_miss = 1000.0;
    w_modifiability = 500.0;
    w_sw_bytes = 0.01;
  }

let objective ?(weights = default_weights) g (e : eval) =
  let miss =
    if g.T.deadline > 0 then float_of_int (max 0 (e.latency - g.T.deadline))
    else 0.0
  in
  (weights.w_area *. float_of_int e.hw_area)
  +. (weights.w_latency *. float_of_int e.latency)
  +. (weights.w_deadline_miss *. miss)
  +. (weights.w_modifiability *. float_of_int e.modifiable_in_hw)
  +. (weights.w_sw_bytes *. float_of_int e.sw_bytes)
