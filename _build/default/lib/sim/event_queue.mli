(** A deterministic time-ordered event queue.

    Events are thunks keyed by (timestamp, insertion sequence): the queue
    is a stable priority queue, so events at equal timestamps fire in
    insertion order.  This stability is what makes the whole simulation
    framework reproducible run-to-run. *)

type t

val create : unit -> t

val push : t -> time:int -> (unit -> unit) -> unit
(** Schedule a thunk.  @raise Invalid_argument on negative time. *)

val pop : t -> (int * (unit -> unit)) option
(** Remove and return the earliest event (ties broken by insertion
    order), or [None] when empty. *)

val peek_time : t -> int option
(** Timestamp of the earliest event without removing it. *)

val size : t -> int

val is_empty : t -> bool

val pushed_total : t -> int
(** Number of pushes over the queue's lifetime (an event-count metric). *)
