lib/sim/kernel.mli:
