lib/sim/kernel.ml: Effect Event_queue Hashtbl List Printf String
