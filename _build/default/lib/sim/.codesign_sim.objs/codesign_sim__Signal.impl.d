lib/sim/signal.ml: Kernel List
