lib/sim/vcd.mli: Kernel Signal
