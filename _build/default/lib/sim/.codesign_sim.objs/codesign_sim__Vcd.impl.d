lib/sim/vcd.ml: Buffer Bytes Char Kernel List Printf Signal String
