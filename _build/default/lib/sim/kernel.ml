open Effect
open Effect.Deep

exception Not_in_process
exception Deadlock of string

type stats = {
  events : int;
  scheduled : int;
  activations : int;
  spawned : int;
  end_time : int;
}

type t = {
  q : Event_queue.t;
  mutable now : int;
  mutable events : int;
  mutable activations : int;
  mutable spawned : int;
  mutable next_block_id : int;
  blocked : (int, string) Hashtbl.t;
  mutable tracer : (int -> string -> unit) option;
}

type _ Effect.t +=
  | Wait : int -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Whoami : string Effect.t

let create () =
  {
    q = Event_queue.create ();
    now = 0;
    events = 0;
    activations = 0;
    spawned = 0;
    next_block_id = 0;
    blocked = Hashtbl.create 16;
    tracer = None;
  }

let now k = k.now

let at k ~time thunk =
  if time < k.now then
    invalid_arg
      (Printf.sprintf "Kernel.at: time %d is in the past (now %d)" time k.now);
  Event_queue.push k.q ~time thunk

let spawn ?(name = "proc") k fn =
  k.spawned <- k.spawned + 1;
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait n ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  if n < 0 then
                    discontinue cont
                      (Invalid_argument "Kernel.wait: negative delay")
                  else
                    at k ~time:(k.now + n) (fun () ->
                        k.activations <- k.activations + 1;
                        continue cont ()))
          | Yield ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  at k ~time:k.now (fun () ->
                      k.activations <- k.activations + 1;
                      continue cont ()))
          | Suspend register ->
              Some
                (fun (cont : (a, unit) continuation) ->
                  let id = k.next_block_id in
                  k.next_block_id <- id + 1;
                  Hashtbl.replace k.blocked id name;
                  let resumed = ref false in
                  register (fun () ->
                      if !resumed then
                        invalid_arg
                          ("Kernel: process " ^ name ^ " resumed twice");
                      resumed := true;
                      Hashtbl.remove k.blocked id;
                      at k ~time:k.now (fun () ->
                          k.activations <- k.activations + 1;
                          continue cont ())))
          | Whoami ->
              Some (fun (cont : (a, unit) continuation) -> continue cont name)
          | _ -> None);
    }
  in
  at k ~time:k.now (fun () ->
      k.activations <- k.activations + 1;
      match_with fn () handler)

let in_process f = try f () with Effect.Unhandled _ -> raise Not_in_process

let wait n = in_process (fun () -> perform (Wait n))
let yield () = in_process (fun () -> perform Yield)
let suspend ~register = in_process (fun () -> perform (Suspend register))
let self_name () = try perform Whoami with Effect.Unhandled _ -> "?"

let stats k =
  {
    events = k.events;
    scheduled = Event_queue.pushed_total k.q;
    activations = k.activations;
    spawned = k.spawned;
    end_time = k.now;
  }

let run ?until ?(expect_quiescent = false) k =
  let stop = ref false in
  while not !stop do
    match Event_queue.peek_time k.q with
    | None -> stop := true
    | Some t when (match until with Some u -> t > u | None -> false) ->
        stop := true
    | Some _ ->
        let time, thunk =
          match Event_queue.pop k.q with
          | Some e -> e
          | None -> assert false
        in
        k.now <- time;
        k.events <- k.events + 1;
        thunk ()
  done;
  (match until with Some u when u > k.now && Event_queue.is_empty k.q ->
      k.now <- u
   | _ -> ());
  if
    Event_queue.is_empty k.q
    && Hashtbl.length k.blocked > 0
    && (not expect_quiescent)
    && until = None
  then begin
    let names =
      Hashtbl.fold (fun _ n acc -> n :: acc) k.blocked []
      |> List.sort_uniq compare |> String.concat ", "
    in
    raise (Deadlock names)
  end;
  stats k

let trace k sink = k.tracer <- Some sink

let emit k msg =
  match k.tracer with None -> () | Some sink -> sink k.now msg
