type t = {
  lines : int;
  mutable pending_mask : int;
  mutable enable_mask : int;
  mutable change_cb : (bool -> unit) option;
}

let create ?(lines = 8) () =
  if lines <= 0 || lines > 30 then
    invalid_arg "Interrupt.create: lines must be in 1..30";
  {
    lines;
    pending_mask = 0;
    enable_mask = (1 lsl lines) - 1;
    change_cb = None;
  }

let cpu_level t = t.pending_mask land t.enable_mask <> 0

let notify t before =
  let after = cpu_level t in
  if before <> after then
    match t.change_cb with Some cb -> cb after | None -> ()

let check_line t l =
  if l < 0 || l >= t.lines then
    invalid_arg (Printf.sprintf "Interrupt: line %d out of range" l)

let raise_line t l =
  check_line t l;
  let before = cpu_level t in
  t.pending_mask <- t.pending_mask lor (1 lsl l);
  notify t before

let ack t l =
  check_line t l;
  let before = cpu_level t in
  t.pending_mask <- t.pending_mask land lnot (1 lsl l);
  notify t before

let pending t = t.pending_mask

let current t =
  let masked = t.pending_mask land t.enable_mask in
  if masked = 0 then -1
  else begin
    let l = ref 0 in
    while (masked lsr !l) land 1 = 0 do
      incr l
    done;
    !l
  end

let set_mask t m =
  let before = cpu_level t in
  t.enable_mask <- m land ((1 lsl t.lines) - 1);
  notify t before

let mask t = t.enable_mask
let on_change t cb = t.change_cb <- Some cb

let region ~name ~base t =
  let dev_read off =
    match off with
    | 0 -> t.pending_mask
    | 2 -> t.enable_mask
    | 3 -> current t
    | _ -> 0
  in
  let dev_write off v =
    match off with
    | 1 ->
        let before = cpu_level t in
        t.pending_mask <- t.pending_mask land lnot v;
        notify t before
    | 2 -> set_mask t v
    | _ -> ()
  in
  Memory_map.device ~name ~base ~size:4
    (Memory_map.simple_handlers dev_read dev_write)
