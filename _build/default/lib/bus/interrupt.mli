(** A prioritised interrupt controller.

    Devices raise numbered lines; the controller drives a single CPU
    request level (lowest line number = highest priority).  Software
    reads the pending mask and acknowledges lines through the
    controller's register window, which can be placed in a
    {!Memory_map} via {!region}.

    Register window (word offsets):
    - 0 [PENDING] (read-only): bit per pending line;
    - 1 [ACK] (write): clears the written bits;
    - 2 [MASK] (read/write): bit per enabled line (reset: all enabled);
    - 3 [CURRENT] (read-only): number of the highest-priority pending
      enabled line, or -1. *)

type t

val create : ?lines:int -> unit -> t
(** [lines] defaults to 8 (max 30). *)

val raise_line : t -> int -> unit
(** Latch a line pending (edge semantics: stays pending until acked). *)

val ack : t -> int -> unit

val pending : t -> int
(** Bit mask of pending lines. *)

val current : t -> int
(** Highest-priority pending enabled line, or -1. *)

val cpu_level : t -> bool
(** True when any enabled line is pending — wire this to
    {!Codesign_isa.Cpu.set_irq}. *)

val set_mask : t -> int -> unit
val mask : t -> int

val on_change : t -> (bool -> unit) -> unit
(** Callback invoked with the new CPU level whenever it changes (used by
    co-simulation to poke the CPU model). *)

val region : name:string -> base:int -> t -> Memory_map.region
(** The 4-word register window described above. *)
