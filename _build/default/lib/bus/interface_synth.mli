(** Chinook-style hardware/software interface co-synthesis
    (paper §4.1, ref [11]).

    Chinook's observation: for embedded microprocessor systems the
    designer should not write device drivers and glue logic by hand —
    both sides of the HW/SW interface can be synthesised from one port
    specification.  Given a {!device_spec}, {!synthesize} produces:

    - the {b software half}: one assembly routine per port
      ([<dev>_<port>_read] / [<dev>_<port>_write], value in r2,
      clobbers r3-r5, returns via [jr r31]) that polls the port's status
      register when the port is polled, or accesses data directly when
      interrupt-driven; plus, when any port is interrupt-driven, an ISR
      that reads the interrupt controller, stores arriving data into a
      per-port mailbox word, acknowledges the line and returns;
    - the {b hardware half}: the glue netlist — an address decoder for
      the device's register window, a 2-flop synchroniser per
      interrupt line, and a registered ready/status flop per status
      port — with gate-count and area statistics.

    The generated driver is real code: the test suite and EXP-4 run it
    on the ISS against device models over the bus and check end-to-end
    data transfer. *)

type direction = In_port | Out_port

type mode =
  | Polled  (** spin on the status register before each access *)
  | Irq_driven of int  (** interrupt line number on the controller *)

type port_spec = {
  pname : string;
  direction : direction;
  data_offset : int;  (** data register, words from device base *)
  status_offset : int option;  (** ready/available register *)
  mode : mode;
}

type device_spec = {
  dname : string;
  base : int;  (** device base address on the bus *)
  addr_bits : int;  (** decoded address width for the glue decoder *)
  ports : port_spec list;
}

type driver = {
  routines : (string * Codesign_isa.Asm.item list) list;
      (** routine label -> code, one per port *)
  isr : Codesign_isa.Asm.item list option;
      (** present iff any port is interrupt-driven *)
  mailboxes : (string * int) list;
      (** per irq-driven port: mailbox word address ([data; flag]) *)
  init_ready : int list;
      (** mailboxes whose ready flag must be set at reset (irq-driven
          output ports); {!program} emits the initialisation *)
  code_bytes : int;
}

type glue = {
  netlist : Codesign_rtl.Netlist.t;
  gate_count : int;
  area : int;
  sync_flops : int;
}

val synthesize :
  ?intc_base:int -> ?mailbox_base:int -> device_spec -> driver * glue
(** [intc_base] (default 0x1FF00) is the interrupt controller window used
    by the generated ISR; [mailbox_base] (default 3800) is where input
    mailboxes are placed in CPU-local memory.
    @raise Invalid_argument on a polled port without a status register,
    duplicate port names, or an irq line outside 0..29. *)

val program :
  ?entry:Codesign_isa.Asm.item list -> driver -> Codesign_isa.Asm.item list
(** Assembles a complete image layout: a jump over the ISR, the ISR at
    the interrupt vector (index 1), then the [entry] code (default: a
    single [halt]), then the port routines.  Callers invoke routines
    with [jal r31, <routine>]. *)
