(** Peripheral device models for the embedded-system experiments
    (paper §4.1, Fig. 4): the "surrounding hardware" an embedded
    microprocessor's software must drive.

    Each device exposes a register window ({!Memory_map.region}) and,
    where it has autonomous behaviour, runs a process on the simulation
    kernel.  Devices optionally raise a line on an {!Interrupt}
    controller, so every one of them can be driven in polled or
    interrupt mode — the design choice interface synthesis explores. *)

(** General-purpose I/O latch.  Registers: 0 OUT (r/w), 1 IN (r). *)
module Gpio : sig
  type t

  val create : unit -> t
  val region : name:string -> base:int -> t -> Memory_map.region

  val set_input : t -> int -> unit
  (** Drive the IN register externally. *)

  val output : t -> int
  (** Observe the OUT latch. *)

  val write_count : t -> int
end

(** One-shot/int-restart countdown timer.
    Registers: 0 CTRL (bit0 enable; writing 1 starts a countdown),
    1 COMPARE (cycles until expiry), 2 COUNT (elapsed, r/o),
    3 STATUS (bit0 expired; any write clears). *)
module Timer : sig
  type t

  val create :
    ?irq:Interrupt.t * int -> Codesign_sim.Kernel.t -> unit -> t

  val region : name:string -> base:int -> t -> Memory_map.region

  val expired_count : t -> int
  (** Total expirations so far. *)
end

(** A data source (sensor/receiver): produces one word every [period]
    cycles from [gen] into an internal FIFO.
    Registers: 0 STATUS (words available), 1 DATA (pop; 0 when empty),
    2 OVERRUNS (r/o).
    Raises its interrupt line (if any) when the FIFO becomes non-empty. *)
module Stream_src : sig
  type t

  val create :
    ?irq:Interrupt.t * int ->
    ?depth:int ->
    period:int ->
    count:int ->
    gen:(int -> int) ->
    Codesign_sim.Kernel.t ->
    unit ->
    t
  (** Produces [gen 0 .. gen (count-1)], one every [period] cycles
      starting at [period]; FIFO [depth] defaults to 4; overflowing
      drops the word and counts an overrun. *)

  val region : name:string -> base:int -> t -> Memory_map.region
  val produced : t -> int
  val overruns : t -> int
  val available : t -> int
end

(** A data sink (transmitter/actuator): accepts one word, then is busy
    for [period] cycles.  Registers: 0 STATUS (1 = ready), 1 DATA
    (write to emit).  Writing while busy is accepted functionally but
    incurs the remaining busy time as bus wait states — the timing
    hazard that only pin-level co-simulation sees.  Raises its interrupt
    line (if any) each time it becomes ready again. *)
module Stream_sink : sig
  type t

  val create :
    ?irq:Interrupt.t * int ->
    period:int ->
    Codesign_sim.Kernel.t ->
    unit ->
    t

  val region : name:string -> base:int -> t -> Memory_map.region

  val accepted : t -> int list
  (** Words emitted so far, oldest first. *)

  val ready : t -> bool
end
