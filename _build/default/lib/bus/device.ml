module K = Codesign_sim.Kernel

let maybe_raise = function
  | Some (ic, line) -> Interrupt.raise_line ic line
  | None -> ()

module Gpio = struct
  type t = {
    mutable out_reg : int;
    mutable in_reg : int;
    mutable writes : int;
  }

  let create () = { out_reg = 0; in_reg = 0; writes = 0 }

  let region ~name ~base t =
    let dev_read = function 0 -> t.out_reg | 1 -> t.in_reg | _ -> 0 in
    let dev_write off v =
      if off = 0 then begin
        t.out_reg <- v;
        t.writes <- t.writes + 1
      end
    in
    Memory_map.device ~name ~base ~size:2
      (Memory_map.simple_handlers dev_read dev_write)

  let set_input t v = t.in_reg <- v
  let output t = t.out_reg
  let write_count t = t.writes
end

module Timer = struct
  type t = {
    kernel : K.t;
    irq : (Interrupt.t * int) option;
    mutable enabled : bool;
    mutable compare : int;
    mutable started_at : int;
    mutable status : int;
    mutable expirations : int;
    mutable generation : int;  (** cancels stale scheduled expiries *)
  }

  let create ?irq kernel () =
    {
      kernel;
      irq;
      enabled = false;
      compare = 0;
      started_at = 0;
      status = 0;
      expirations = 0;
      generation = 0;
    }

  let count t =
    if t.enabled then K.now t.kernel - t.started_at else 0

  let start t =
    t.enabled <- true;
    t.started_at <- K.now t.kernel;
    t.generation <- t.generation + 1;
    let gen = t.generation in
    K.at t.kernel
      ~time:(K.now t.kernel + max 1 t.compare)
      (fun () ->
        if t.enabled && t.generation = gen then begin
          t.enabled <- false;
          t.status <- 1;
          t.expirations <- t.expirations + 1;
          maybe_raise t.irq
        end)

  let region ~name ~base t =
    let dev_read = function
      | 0 -> if t.enabled then 1 else 0
      | 1 -> t.compare
      | 2 -> count t
      | 3 -> t.status
      | _ -> 0
    in
    let dev_write off v =
      match off with
      | 0 -> if v land 1 = 1 then start t else t.enabled <- false
      | 1 -> t.compare <- v
      | 3 -> t.status <- 0
      | _ -> ()
    in
    Memory_map.device ~name ~base ~size:4
      (Memory_map.simple_handlers dev_read dev_write)

  let expired_count t = t.expirations
end

module Stream_src = struct
  type t = {
    kernel : K.t;
    irq : (Interrupt.t * int) option;
    fifo : int Queue.t;
    depth : int;
    mutable produced : int;
    mutable overruns : int;
  }

  let create ?irq ?(depth = 4) ~period ~count ~gen kernel () =
    if period <= 0 then invalid_arg "Stream_src: period must be positive";
    let t =
      { kernel; irq; fifo = Queue.create (); depth; produced = 0;
        overruns = 0 }
    in
    K.spawn ~name:"stream_src" kernel (fun () ->
        for i = 0 to count - 1 do
          K.wait period;
          if Queue.length t.fifo >= t.depth then
            t.overruns <- t.overruns + 1
          else begin
            let was_empty = Queue.is_empty t.fifo in
            Queue.push (gen i) t.fifo;
            if was_empty then maybe_raise t.irq
          end;
          t.produced <- t.produced + 1
        done);
    t

  let region ~name ~base t =
    let dev_read = function
      | 0 -> Queue.length t.fifo
      | 1 -> ( match Queue.take_opt t.fifo with Some v -> v | None -> 0)
      | 2 -> t.overruns
      | _ -> 0
    in
    Memory_map.device ~name ~base ~size:3
      (Memory_map.simple_handlers dev_read (fun _ _ -> ()))

  let produced t = t.produced
  let overruns t = t.overruns
  let available t = Queue.length t.fifo
end

module Stream_sink = struct
  type t = {
    kernel : K.t;
    irq : (Interrupt.t * int) option;
    period : int;
    mutable ready_at : int;
    mutable words : int list;  (** reversed *)
  }

  let create ?irq ~period kernel () =
    if period <= 0 then invalid_arg "Stream_sink: period must be positive";
    { kernel; irq; period; ready_at = 0; words = [] }

  let ready t = K.now t.kernel >= t.ready_at

  let region ~name ~base t =
    let dev_read = function 0 -> if ready t then 1 else 0 | _ -> 0 in
    let dev_write off v =
      if off = 1 then begin
        t.words <- v :: t.words;
        t.ready_at <- max (K.now t.kernel) t.ready_at + t.period;
        (match t.irq with
        | Some (ic, line) ->
            let gen_ready_at = t.ready_at in
            K.at t.kernel ~time:t.ready_at (fun () ->
                if t.ready_at = gen_ready_at then
                  Interrupt.raise_line ic line)
        | None -> ())
      end
    in
    let wait_states off =
      if off = 1 then max 0 (t.ready_at - K.now t.kernel) else 0
    in
    Memory_map.device ~name ~base ~size:2
      (Memory_map.simple_handlers ~wait_states dev_read dev_write)

  let accepted t = List.rev t.words
end
