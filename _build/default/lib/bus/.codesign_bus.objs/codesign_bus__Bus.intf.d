lib/bus/bus.mli: Codesign_sim Memory_map
