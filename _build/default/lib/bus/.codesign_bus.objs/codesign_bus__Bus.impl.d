lib/bus/bus.ml: Codesign_sim Memory_map Queue
