lib/bus/dma.mli: Bus Codesign_sim Interrupt Memory_map
