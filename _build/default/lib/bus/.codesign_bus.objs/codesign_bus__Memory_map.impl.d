lib/bus/memory_map.ml: Array List Printf
