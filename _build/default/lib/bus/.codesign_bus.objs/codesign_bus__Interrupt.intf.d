lib/bus/interrupt.mli: Memory_map
