lib/bus/interface_synth.mli: Codesign_isa Codesign_rtl
