lib/bus/interface_synth.ml: Codesign_isa Codesign_rtl List Printf
