lib/bus/memory_map.mli:
