lib/bus/device.mli: Codesign_sim Interrupt Memory_map
