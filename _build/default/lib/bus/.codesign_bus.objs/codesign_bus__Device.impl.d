lib/bus/device.ml: Codesign_sim Interrupt List Memory_map Queue
