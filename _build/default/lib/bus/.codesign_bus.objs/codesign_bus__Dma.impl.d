lib/bus/dma.ml: Bus Codesign_sim Interrupt Memory_map
