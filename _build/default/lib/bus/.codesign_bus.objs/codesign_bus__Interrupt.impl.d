lib/bus/interrupt.ml: Memory_map Printf
