module A = Codesign_isa.Asm
module I = Codesign_isa.Isa
module N = Codesign_rtl.Netlist

type direction = In_port | Out_port
type mode = Polled | Irq_driven of int

type port_spec = {
  pname : string;
  direction : direction;
  data_offset : int;
  status_offset : int option;
  mode : mode;
}

type device_spec = {
  dname : string;
  base : int;
  addr_bits : int;
  ports : port_spec list;
}

type driver = {
  routines : (string * A.item list) list;
  isr : A.item list option;
  mailboxes : (string * int) list;
  init_ready : int list;
  code_bytes : int;
}

type glue = {
  netlist : N.t;
  gate_count : int;
  area : int;
  sync_flops : int;
}

let default_intc_base = 0x1FF00
let default_mailbox_base = 3800

let validate spec =
  let names = List.map (fun p -> p.pname) spec.ports in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Interface_synth: duplicate port names";
  List.iter
    (fun p ->
      (match (p.mode, p.status_offset) with
      | Polled, None ->
          invalid_arg
            (Printf.sprintf
               "Interface_synth: polled port %s needs a status register"
               p.pname)
      | _ -> ());
      match p.mode with
      | Irq_driven l when l < 0 || l > 29 ->
          invalid_arg
            (Printf.sprintf "Interface_synth: irq line %d out of range" l)
      | _ -> ())
    spec.ports

(* ------------------------------------------------------------------ *)
(* Software half                                                       *)
(* ------------------------------------------------------------------ *)

let routine_name spec p =
  Printf.sprintf "%s_%s_%s" spec.dname p.pname
    (match p.direction with In_port -> "read" | Out_port -> "write")

let polled_routine spec p =
  let name = routine_name spec p in
  let status =
    match p.status_offset with Some s -> spec.base + s | None -> assert false
  in
  let data = spec.base + p.data_offset in
  [ A.Label name; A.Label (name ^ "_poll") ]
  @ [
      A.Ins (I.Lw (3, 0, status));
      A.Ins (I.B (I.Eq, 3, 0, name ^ "_poll"));
    ]
  @ (match p.direction with
    | In_port -> [ A.Ins (I.Lw (2, 0, data)) ]
    | Out_port -> [ A.Ins (I.Sw (2, 0, data)) ])
  @ [ A.Ins (I.Jr 31) ]

(* Mailbox layout: 2 words per irq-driven port: [data; valid-flag]. *)
let irq_routine spec p ~mailbox =
  let name = routine_name spec p in
  let data = spec.base + p.data_offset in
  match p.direction with
  | In_port ->
      (* wait for the ISR to flag arrival, consume, clear the flag *)
      [ A.Label name; A.Label (name ^ "_poll") ]
      @ [
          A.Ins (I.Lw (3, 0, mailbox + 1));
          A.Ins (I.B (I.Eq, 3, 0, name ^ "_poll"));
          A.Ins (I.Lw (2, 0, mailbox));
          A.Ins (I.Sw (0, 0, mailbox + 1));
          A.Ins (I.Jr 31);
        ]
  | Out_port ->
      (* wait for the ready flag (set at reset and by the ISR), clear it,
         write the data register *)
      [ A.Label name; A.Label (name ^ "_poll") ]
      @ [
          A.Ins (I.Lw (3, 0, mailbox + 1));
          A.Ins (I.B (I.Eq, 3, 0, name ^ "_poll"));
          A.Ins (I.Sw (0, 0, mailbox + 1));
          A.Ins (I.Sw (2, 0, data));
          A.Ins (I.Jr 31);
        ]

let isr_code spec ~intc_base ~mailboxes =
  let irq_ports =
    List.filter
      (fun p -> match p.mode with Irq_driven _ -> true | _ -> false)
      spec.ports
  in
  if irq_ports = [] then None
  else begin
    let body = ref [] in
    let emit i = body := A.Ins i :: !body in
    let label l = body := A.Label l :: !body in
    label "isr";
    (* r29 <- current line *)
    emit (I.Lw (29, 0, intc_base + 3));
    List.iteri
      (fun idx p ->
        let line =
          match p.mode with Irq_driven l -> l | Polled -> assert false
        in
        let mailbox = List.assoc p.pname mailboxes in
        let next = Printf.sprintf "isr_next%d" idx in
        emit (I.Li (30, line));
        emit (I.B (I.Ne, 29, 30, next));
        (match p.direction with
        | In_port ->
            (* fetch the datum, deposit in the mailbox, flag valid *)
            emit (I.Lw (30, 0, spec.base + p.data_offset));
            emit (I.Sw (30, 0, mailbox));
            emit (I.Li (30, 1));
            emit (I.Sw (30, 0, mailbox + 1))
        | Out_port ->
            (* device became ready again: set the ready flag *)
            emit (I.Li (30, 1));
            emit (I.Sw (30, 0, mailbox + 1)));
        (* acknowledge the line *)
        emit (I.Li (30, 1 lsl line));
        emit (I.Sw (30, 0, intc_base + 1));
        emit (I.J "isr_done");
        label next)
      irq_ports;
    label "isr_done";
    emit I.Rti;
    Some (List.rev !body)
  end

(* ------------------------------------------------------------------ *)
(* Hardware half                                                       *)
(* ------------------------------------------------------------------ *)

let window_bits spec =
  let max_off =
    List.fold_left
      (fun acc p ->
        let s = match p.status_offset with Some s -> s | None -> 0 in
        max acc (max p.data_offset s))
      0 spec.ports
  in
  let rec bits k = if 1 lsl k > max_off then k else bits (k + 1) in
  max 1 (bits 1)

let data_bits = 32

let glue_netlist spec =
  let b = N.Builder.create ~name:(spec.dname ^ "_glue") () in
  let wbits = window_bits spec in
  let high_bits = max 1 (spec.addr_bits - wbits) in
  (* address inputs *)
  let addr =
    List.init spec.addr_bits (fun i ->
        N.Builder.input b (Printf.sprintf "a%d" i))
  in
  (* device-select: high address bits match base >> wbits *)
  let want = spec.base lsr wbits in
  let sel_bits =
    List.init high_bits (fun i ->
        let a = List.nth addr (wbits + i) in
        if (want lsr i) land 1 = 1 then a else N.Builder.not1 b a)
  in
  let dev_sel = N.Builder.and_many b sel_bits in
  N.Builder.output b "dev_sel" dev_sel;
  (* per-port register select within the window *)
  let port_sel =
    List.map
      (fun p ->
        let off = p.data_offset in
        let bits =
          List.init wbits (fun i ->
              let a = List.nth addr i in
              if (off lsr i) land 1 = 1 then a else N.Builder.not1 b a)
        in
        let s = N.Builder.and_many b (dev_sel :: bits) in
        N.Builder.output b (Printf.sprintf "sel_%s" p.pname) s;
        (p, s))
      spec.ports
  in
  (* read-data multiplexer chain over input ports *)
  let in_ports = List.filter (fun (p, _) -> p.direction = In_port) port_sel in
  (match in_ports with
  | [] -> ()
  | (p0, _) :: rest ->
      let data_of (p : port_spec) bit =
        N.Builder.input b (Printf.sprintf "d_%s_b%d" p.pname bit)
      in
      let first = List.init data_bits (data_of p0) in
      let final =
        List.fold_left
          (fun acc (p, sel) ->
            List.mapi
              (fun bit acc_b ->
                N.Builder.mux b ~sel ~a:acc_b ~b_in:(data_of p bit))
              acc)
          first rest
      in
      List.iteri
        (fun bit net ->
          N.Builder.output b (Printf.sprintf "rdata_b%d" bit) net)
        final);
  (* interrupt synchronisers: 2 flops per irq line *)
  let sync_flops = ref 0 in
  List.iter
    (fun p ->
      match p.mode with
      | Irq_driven _ ->
          let raw = N.Builder.input b (Printf.sprintf "irq_%s" p.pname) in
          let s1 = N.Builder.dff b raw in
          let s2 = N.Builder.dff b s1 in
          sync_flops := !sync_flops + 2;
          N.Builder.output b (Printf.sprintf "irq_sync_%s" p.pname) s2
      | Polled -> ())
    spec.ports;
  (* registered status bit per status port *)
  List.iter
    (fun p ->
      match p.status_offset with
      | Some _ ->
          let raw = N.Builder.input b (Printf.sprintf "rdy_%s" p.pname) in
          let q = N.Builder.dff b raw in
          N.Builder.output b (Printf.sprintf "status_%s" p.pname) q
      | None -> ())
    spec.ports;
  (N.Builder.finish b, !sync_flops)

(* ------------------------------------------------------------------ *)

let synthesize ?(intc_base = default_intc_base)
    ?(mailbox_base = default_mailbox_base) spec =
  validate spec;
  (* assign mailboxes to irq-driven ports *)
  let mailboxes =
    let next = ref mailbox_base in
    List.filter_map
      (fun p ->
        match p.mode with
        | Irq_driven _ ->
            let m = !next in
            next := !next + 2;
            Some (p.pname, m)
        | Polled -> None)
      spec.ports
  in
  let routines =
    List.map
      (fun p ->
        let code =
          match p.mode with
          | Polled -> polled_routine spec p
          | Irq_driven _ ->
              irq_routine spec p ~mailbox:(List.assoc p.pname mailboxes)
        in
        (routine_name spec p, code))
      spec.ports
  in
  let isr = isr_code spec ~intc_base ~mailboxes in
  let code_bytes =
    List.fold_left (fun acc (_, c) -> acc + A.size_bytes c) 0 routines
    + (match isr with Some c -> A.size_bytes c | None -> 0)
  in
  let netlist, sync_flops = glue_netlist spec in
  let init_ready =
    List.filter_map
      (fun p ->
        match (p.mode, p.direction) with
        | Irq_driven _, Out_port -> Some (List.assoc p.pname mailboxes)
        | _ -> None)
      spec.ports
  in
  ( { routines; isr; mailboxes; init_ready; code_bytes },
    {
      netlist;
      gate_count = N.gate_count netlist;
      area = N.area netlist;
      sync_flops;
    } )

let program ?(entry = [ A.Ins I.Halt ]) driver =
  let isr_block =
    match driver.isr with
    | Some isr -> isr
    | None -> [ A.Label "isr"; A.Ins I.Rti ]
  in
  (* reset-time mailbox init: output ports start ready *)
  let init =
    List.concat_map
      (fun m -> [ A.Ins (I.Li (30, 1)); A.Ins (I.Sw (30, 0, m + 1)) ])
      driver.init_ready
  in
  (* index 0 jumps over the ISR; the ISR sits at the irq vector (1) *)
  [ A.Ins (I.J "main") ]
  @ isr_block
  @ [ A.Label "main" ]
  @ init
  @ [ A.Ins I.Ei ]
  @ entry
  @ List.concat_map snd driver.routines
