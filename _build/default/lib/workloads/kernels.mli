(** Embedded/DSP benchmark kernels written in the {!Codesign_ir.Behavior}
    specification language — the application class the surveyed DSP
    co-design systems targeted (paper refs [5][6][17]).

    Each kernel is a self-contained behaviour: parameters in, results
    out, no channel I/O (channelised variants for process networks live
    in {!Apps}).  They exercise every implementation path of the
    framework: the interpreter (reference), the compiler + ISS
    (software), HLS estimation/synthesis (hardware), and ASIP pattern
    mining. *)

val fir : ?taps:int -> unit -> Codesign_ir.Behavior.proc
(** FIR filter over ["x"] (n samples) with coefficient array ["h"]
    ([taps], default 8); writes ["y"].  Params: ["n"].  Arrays must be
    bound by the caller ("x[i]", "h[i]"). *)

val iir_biquad : unit -> Codesign_ir.Behavior.proc
(** Direct-form-I biquad over ["x"] (param ["n"] samples) with integer
    coefficients scaled by 256; writes ["y"]. *)

val dct8 : unit -> Codesign_ir.Behavior.proc
(** 8-point 1-D DCT-II (integer, scaled): params ["x0".."x7"], results
    ["y0".."y7"].  Straight-line and multiplier-rich: the HLS and ASIP
    showcase. *)

val crc32 : ?len:int -> unit -> Codesign_ir.Behavior.proc
(** Bitwise CRC-32 (poly 0xEDB88320) over array ["data"] of [len]
    (default 8) words; result ["crc"]. *)

val matmul : ?dim:int -> unit -> Codesign_ir.Behavior.proc
(** [dim]x[dim] (default 3) integer matrix multiply of arrays ["a"] and
    ["b"] into ["c"]; result ["checksum"] (sum of [c]). *)

val dot_product : unit -> Codesign_ir.Behavior.proc
(** Dot product of ["a"] and ["b"] over param ["n"]; result ["acc"]. *)

val histogram : ?bins:int -> unit -> Codesign_ir.Behavior.proc
(** Histogram of array ["data"] (param ["n"] values) into [bins]
    (default 8) by masking; result ["peak"] (max bin count). *)

val saturating_scale : unit -> Codesign_ir.Behavior.proc
(** Scales array ["x"] of ["n"] samples by ["k"]/16 with clamping to
    [-128, 127]; results ["clipped"] (count) and ["sum"]. *)

val all : (string * Codesign_ir.Behavior.proc * (string * int) list) list
(** Every kernel with default sizes and a canonical binding set —
    (name, behaviour, bindings) — used by tests, the ASIP experiment and
    the benchmark harness. *)
