module B = Codesign_ir.Behavior

(* expression shorthands *)
let i k = B.Int k
let v x = B.Var x
let ( +: ) a b = B.Bin (B.Add, a, b)
let ( -: ) a b = B.Bin (B.Sub, a, b)
let ( *: ) a b = B.Bin (B.Mul, a, b)
let ( >>: ) a b = B.Bin (B.Shr, a, b)
let ( &&: ) a b = B.Bin (B.And, a, b)
let ( ^: ) a b = B.Bin (B.Xor, a, b)
let ( <: ) a b = B.Bin (B.Lt, a, b)
let idx a e = B.Idx (a, e)
let set x e = B.Assign (x, e)
let for_ x lo hi body = B.For (x, lo, hi, body)

let fir ?(taps = 8) () =
  {
    B.name = "fir";
    params = [ "n" ];
    arrays = [ ("x", 64); ("h", taps) ];
    results = [ "y" ];
    body =
      [
        set "y" (i 0);
        for_ "p" (i (taps - 1)) (v "n")
          [
            set "acc" (i 0);
            for_ "j" (i 0) (i taps)
              [
                set "acc"
                  (v "acc"
                  +: (idx "h" (v "j") *: idx "x" (v "p" -: v "j")));
              ];
            set "y" (v "y" +: (v "acc" >>: i 4));
          ];
      ];
  }

let iir_biquad () =
  {
    B.name = "iir_biquad";
    params = [ "n" ];
    arrays = [ ("x", 64) ];
    results = [ "y" ];
    body =
      [
        set "x1" (i 0); set "x2" (i 0); set "y1" (i 0); set "y2" (i 0);
        set "y" (i 0);
        for_ "p" (i 0) (v "n")
          [
            set "xi" (idx "x" (v "p"));
            set "acc"
              (((i 64 *: v "xi") +: (i 128 *: v "x1") +: (i 64 *: v "x2")
               +: (i 90 *: v "y1") -: (i 40 *: v "y2"))
              >>: i 8);
            set "x2" (v "x1");
            set "x1" (v "xi");
            set "y2" (v "y1");
            set "y1" (v "acc");
            set "y" (v "y" +: v "acc");
          ];
      ];
  }

(* integer DCT-II coefficients, round(cos((2j+1)k pi / 16) * 64) *)
let dct_coeffs =
  Array.init 8 (fun k ->
      Array.init 8 (fun j ->
          let c =
            cos (float_of_int ((2 * j) + 1) *. float_of_int k
                 *. Float.pi /. 16.0)
          in
          int_of_float (Float.round (c *. 64.0))))

let dct8 () =
  let xs = List.init 8 (fun j -> Printf.sprintf "x%d" j) in
  let body =
    List.init 8 (fun k ->
        let terms =
          List.mapi
            (fun j x ->
              let c = dct_coeffs.(k).(j) in
              i c *: v x)
            xs
        in
        let sum =
          match terms with
          | t :: rest -> List.fold_left ( +: ) t rest
          | [] -> i 0
        in
        set (Printf.sprintf "y%d" k) (sum >>: i 6))
  in
  {
    B.name = "dct8";
    params = xs;
    arrays = [];
    results = List.init 8 (fun k -> Printf.sprintf "y%d" k);
    body;
  }

let crc32 ?(len = 8) () =
  {
    B.name = "crc32";
    params = [];
    arrays = [ ("data", len) ];
    results = [ "crc" ];
    body =
      [
        set "crc" (i 0xFFFFFFFF);
        for_ "p" (i 0) (i len)
          [
            set "crc" (v "crc" ^: idx "data" (v "p"));
            for_ "b" (i 0) (i 8)
              [
                set "mask" (B.Neg (v "crc" &&: i 1));
                set "crc"
                  ((v "crc" >>: i 1) ^: (i 0xEDB88320 &&: v "mask"));
              ];
          ];
      ];
  }

let matmul ?(dim = 3) () =
  let d2 = dim * dim in
  {
    B.name = "matmul";
    params = [];
    arrays = [ ("a", d2); ("b", d2); ("c", d2) ];
    results = [ "checksum" ];
    body =
      [
        for_ "r" (i 0) (i dim)
          [
            for_ "col" (i 0) (i dim)
              [
                set "acc" (i 0);
                for_ "k" (i 0) (i dim)
                  [
                    set "acc"
                      (v "acc"
                      +: (idx "a" ((v "r" *: i dim) +: v "k")
                         *: idx "b" ((v "k" *: i dim) +: v "col")));
                  ];
                B.Store ("c", (v "r" *: i dim) +: v "col", v "acc");
              ];
          ];
        set "checksum" (i 0);
        for_ "p" (i 0) (i d2)
          [ set "checksum" (v "checksum" +: idx "c" (v "p")) ];
      ];
  }

let dot_product () =
  {
    B.name = "dot";
    params = [ "n" ];
    arrays = [ ("a", 64); ("b", 64) ];
    results = [ "acc" ];
    body =
      [
        set "acc" (i 0);
        for_ "p" (i 0) (v "n")
          [ set "acc" (v "acc" +: (idx "a" (v "p") *: idx "b" (v "p"))) ];
      ];
  }

let histogram ?(bins = 8) () =
  {
    B.name = "histogram";
    params = [ "n" ];
    arrays = [ ("data", 64); ("h", bins) ];
    results = [ "peak" ];
    body =
      [
        for_ "p" (i 0) (v "n")
          [
            set "slot" (idx "data" (v "p") &&: i (bins - 1));
            B.Store ("h", v "slot", idx "h" (v "slot") +: i 1);
          ];
        set "peak" (i 0);
        for_ "p" (i 0) (i bins)
          [
            B.If
              ( v "peak" <: idx "h" (v "p"),
                [ set "peak" (idx "h" (v "p")) ],
                [] );
          ];
      ];
  }

let saturating_scale () =
  {
    B.name = "saturating_scale";
    params = [ "n"; "k" ];
    arrays = [ ("x", 64) ];
    results = [ "clipped"; "sum" ];
    body =
      [
        set "clipped" (i 0);
        set "sum" (i 0);
        for_ "p" (i 0) (v "n")
          [
            set "val" ((idx "x" (v "p") *: v "k") >>: i 4);
            B.If
              ( i 127 <: v "val",
                [ set "val" (i 127); set "clipped" (v "clipped" +: i 1) ],
                [] );
            B.If
              ( v "val" <: i (-128),
                [ set "val" (i (-128)); set "clipped" (v "clipped" +: i 1) ],
                [] );
            set "sum" (v "sum" +: v "val");
          ];
      ];
  }

let all =
  let arr name values =
    List.mapi (fun j x -> (Printf.sprintf "%s[%d]" name j, x)) values
  in
  let ramp n = List.init n (fun j -> ((j * 7) mod 23) - 5) in
  [
    ( "fir",
      fir (),
      [ ("n", 32) ]
      @ arr "x" (ramp 64)
      @ arr "h" [ 1; 3; 5; 7; 7; 5; 3; 1 ] );
    ("iir_biquad", iir_biquad (), [ ("n", 32) ] @ arr "x" (ramp 64));
    ( "dct8",
      dct8 (),
      List.init 8 (fun j -> (Printf.sprintf "x%d" j, ((j * 13) mod 31) - 9))
    );
    ( "crc32",
      crc32 (),
      arr "data" [ 0x12; 0x34; 0x56; 0x78; 0x9A; 0xBC; 0xDE; 0xF0 ] );
    ( "matmul",
      matmul (),
      arr "a" (ramp 9) @ arr "b" (List.map (fun x -> x + 2) (ramp 9)) );
    ( "dot",
      dot_product (),
      [ ("n", 24) ] @ arr "a" (ramp 64) @ arr "b" (ramp 64) );
    ("histogram", histogram (), [ ("n", 48) ] @ arr "data" (ramp 64));
    ( "saturating_scale",
      saturating_scale (),
      [ ("n", 32); ("k", 9) ] @ arr "x" (ramp 64) );
  ]
