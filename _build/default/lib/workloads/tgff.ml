module T = Codesign_ir.Task_graph
module Rng = Codesign_ir.Rng
module E = Codesign_rtl.Estimate

type archetype = Dsp | Control | Bitops | Memory

type spec = {
  seed : int;
  n_tasks : int;
  layers : int;
  edge_prob : float;
  skip_prob : float;
  sw_cycles_range : int * int;
  words_range : int * int;
  deadline_factor : float;
  modifiable_prob : float;
}

let default_spec =
  {
    seed = 1;
    n_tasks = 12;
    layers = 4;
    edge_prob = 0.5;
    skip_prob = 0.15;
    sw_cycles_range = (200, 2000);
    words_range = (1, 16);
    deadline_factor = 0.75;
    modifiable_prob = 0.2;
  }

let speedup_of = function
  | Dsp -> 12.0
  | Bitops -> 8.0
  | Memory -> 3.0
  | Control -> 1.6

let parallelism_of = function
  | Dsp -> 0.9
  | Bitops -> 0.8
  | Memory -> 0.4
  | Control -> 0.15

(* operation mix per 100 software cycles, by archetype *)
let mix_of arch sw_cycles =
  let scale n = max 1 (n * sw_cycles / 100) in
  match arch with
  | Dsp -> [ ("mul", scale 8); ("add", scale 14); ("ld", scale 6) ]
  | Control ->
      [ ("add", scale 6); ("lt", scale 8); ("eq", scale 5); ("sub", scale 4) ]
  | Bitops ->
      [ ("xor", scale 10); ("and", scale 8); ("shl", scale 8);
        ("or", scale 5) ]
  | Memory -> [ ("ld", scale 12); ("st", scale 10); ("add", scale 6) ]

let archetype_of_task (t : T.task) =
  let has k = List.mem_assoc k t.T.ops in
  if has "mul" then Dsp
  else if has "xor" || has "shl" then Bitops
  else if has "st" then Memory
  else Control

let generate spec =
  if spec.n_tasks <= 0 then invalid_arg "Tgff.generate: n_tasks <= 0";
  if spec.layers <= 0 || spec.layers > spec.n_tasks then
    invalid_arg "Tgff.generate: bad layer count";
  let rng = Rng.create spec.seed in
  (* assign tasks to layers: ensure each layer non-empty *)
  let layer_of = Array.make spec.n_tasks 0 in
  for i = 0 to spec.n_tasks - 1 do
    layer_of.(i) <-
      (if i < spec.layers then i else Rng.int rng spec.layers)
  done;
  Array.sort compare layer_of;
  let archetypes = [ Dsp; Control; Bitops; Memory ] in
  let lo, hi = spec.sw_cycles_range in
  let tasks =
    List.init spec.n_tasks (fun i ->
        let arch = Rng.pick rng archetypes in
        let sw_cycles = Rng.int_in rng lo hi in
        let hw_cycles =
          max 1
            (int_of_float (float_of_int sw_cycles /. speedup_of arch))
        in
        let ops = mix_of arch sw_cycles in
        T.task ~id:i
          ~name:(Printf.sprintf "t%d" i)
          ~sw_cycles ~hw_cycles
          ~hw_area:(E.standalone_area ops)
          ~sw_bytes:(sw_cycles * 3 / 2)
          ~parallelism:(parallelism_of arch)
          ~modifiable:(Rng.float rng < spec.modifiable_prob)
          ~ops ())
  in
  let wlo, whi = spec.words_range in
  let edges = ref [] in
  for i = 0 to spec.n_tasks - 1 do
    for j = i + 1 to spec.n_tasks - 1 do
      let li = layer_of.(i) and lj = layer_of.(j) in
      if lj = li + 1 && Rng.float rng < spec.edge_prob then
        edges :=
          { T.src = i; dst = j; words = Rng.int_in rng wlo whi } :: !edges
      else if lj > li + 1 && Rng.float rng < spec.skip_prob then
        edges :=
          { T.src = i; dst = j; words = Rng.int_in rng wlo whi } :: !edges
    done
  done;
  (* connectivity: every task beyond the first layer needs a predecessor *)
  for j = 0 to spec.n_tasks - 1 do
    if layer_of.(j) > 0 then begin
      let has_pred = List.exists (fun (e : T.edge) -> e.dst = j) !edges in
      if not has_pred then begin
        (* connect from a random task in an earlier layer *)
        let candidates =
          List.filter
            (fun i -> layer_of.(i) < layer_of.(j))
            (List.init spec.n_tasks Fun.id)
        in
        let i = Rng.pick rng candidates in
        edges :=
          { T.src = i; dst = j; words = Rng.int_in rng wlo whi } :: !edges
      end
    end
  done;
  let g =
    T.make
      ~name:(Printf.sprintf "tgff%d" spec.seed)
      tasks (List.rev !edges)
  in
  if spec.deadline_factor > 0.0 then T.scale_deadline g spec.deadline_factor
  else g
