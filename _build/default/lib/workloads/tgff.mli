(** TGFF-style synthetic task-graph generation (deterministic).

    Task attributes follow the four computation archetypes that drive
    HW/SW affinity in the paper's §3.3 "nature of computation"
    discussion: DSP-like (multiply-heavy, highly parallel), control-like
    (branchy, serial, often modifiable), bit-manipulation (logic-heavy,
    parallel) and memory-bound (load/store-heavy, indifferent).  The
    operation mix of each task feeds the sharing-aware area estimator,
    and its standalone hardware area is derived from that mix, so the
    generated graphs are internally consistent with the cost models. *)

type archetype = Dsp | Control | Bitops | Memory

type spec = {
  seed : int;
  n_tasks : int;
  layers : int;  (** depth of the layered DAG *)
  edge_prob : float;  (** probability of an edge between adjacent-layer pairs *)
  skip_prob : float;  (** probability of a layer-skipping edge *)
  sw_cycles_range : int * int;
  words_range : int * int;  (** per-edge data volume *)
  deadline_factor : float;
      (** deadline = factor * software critical path; 0 = no deadline *)
  modifiable_prob : float;
}

val default_spec : spec
(** seed 1, 12 tasks, 4 layers, edge 0.5, skip 0.15, cycles 200-2000,
    words 1-16, deadline 0.75 (tight: forces hardware), modifiable 0.2. *)

val generate : spec -> Codesign_ir.Task_graph.t
(** The graph is always connected to at least one source-sink path;
    every non-first-layer task has at least one predecessor. *)

val archetype_of_task : Codesign_ir.Task_graph.task -> archetype
(** Recovered from the operation mix (for reporting). *)

val speedup_of : archetype -> float
(** Hardware-over-software speedup assumed per archetype
    (Dsp 12x, Bitops 8x, Memory 3x, Control 1.6x). *)
