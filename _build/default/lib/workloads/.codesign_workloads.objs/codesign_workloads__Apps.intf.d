lib/workloads/apps.mli: Codesign_ir
