lib/workloads/tgff.ml: Array Codesign_ir Codesign_rtl Fun List Printf
