lib/workloads/kernels.mli: Codesign_ir
