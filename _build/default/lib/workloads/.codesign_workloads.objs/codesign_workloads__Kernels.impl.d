lib/workloads/kernels.ml: Array Codesign_ir Float List Printf
