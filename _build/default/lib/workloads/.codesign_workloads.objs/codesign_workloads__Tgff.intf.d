lib/workloads/tgff.mli: Codesign_ir
