lib/workloads/apps.ml: Codesign_ir List Printf
