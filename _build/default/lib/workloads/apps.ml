module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network

let i k = B.Int k
let v x = B.Var x
let ( +: ) a b = B.Bin (B.Add, a, b)
let ( *: ) a b = B.Bin (B.Mul, a, b)
let ( >>: ) a b = B.Bin (B.Shr, a, b)
let ( %: ) a b = B.Bin (B.Rem, a, b)
let ( -: ) a b = B.Bin (B.Sub, a, b)

let sample_expr idx = ((idx *: i 7) %: i 23) -: i 5

let producer ?(name = "producer") ~chan ~count () =
  {
    B.name;
    params = [];
    arrays = [];
    results = [];
    body =
      [ B.For ("p", i 0, i count, [ B.Send (chan, sample_expr (v "p")) ]) ];
  }

(* one MAC-ish round: acc = (acc * 3 + x) >> 1, iterated [work] times *)
let transform ?(name = "transform") ~in_chan ~out_chan ~count ?(work = 8) ()
    =
  {
    B.name;
    params = [];
    arrays = [];
    results = [];
    body =
      [
        B.For
          ( "p",
            i 0,
            i count,
            [
              B.Recv ("x", in_chan);
              B.Assign ("acc", v "x");
              B.For
                ( "w",
                  i 0,
                  i work,
                  [ B.Assign ("acc", ((v "acc" *: i 3) +: v "x") >>: i 1) ]
                );
              B.Send (out_chan, v "acc");
            ] );
      ];
  }

let consumer ?(name = "consumer") ~chan ~count ~port () =
  {
    B.name;
    params = [];
    arrays = [];
    results = [ "acc" ];
    body =
      [
        B.Assign ("acc", i 0);
        B.For
          ( "p",
            i 0,
            i count,
            [ B.Recv ("x", chan); B.Assign ("acc", v "acc" +: v "x") ] );
        B.PortOut (port, v "acc");
      ];
  }

let pipeline ?(stages = 2) ?(count = 16) ?(work = 8) ?(depth = 2) () =
  if stages < 1 then invalid_arg "Apps.pipeline: stages < 1";
  let chan k = Printf.sprintf "c%d" k in
  let procs =
    (producer ~chan:(chan 0) ~count (), Pn.Sw)
    :: List.init stages (fun s ->
           ( transform
               ~name:(Printf.sprintf "stage%d" s)
               ~in_chan:(chan s)
               ~out_chan:(chan (s + 1))
               ~count ~work (),
             Pn.Sw ))
    @ [ (consumer ~chan:(chan stages) ~count ~port:1 (), Pn.Sw) ]
  in
  let channels =
    List.init (stages + 1) (fun k ->
        {
          Pn.cname = chan k;
          src = (if k = 0 then "producer" else Printf.sprintf "stage%d" (k - 1));
          dst =
            (if k = stages then "consumer" else Printf.sprintf "stage%d" k);
          depth;
        })
  in
  Pn.make ~name:"pipeline" procs channels

let fork_join ?(workers = 3) ?(items = 12) ?(work = 16) () =
  if workers < 1 then invalid_arg "Apps.fork_join: workers < 1";
  let per_worker = items / workers in
  if per_worker * workers <> items then
    invalid_arg "Apps.fork_join: items must divide evenly among workers";
  let in_chan w = Printf.sprintf "w%d_in" w in
  let out_chan w = Printf.sprintf "w%d_out" w in
  (* splitter: round-robin distribution *)
  let splitter =
    {
      B.name = "splitter";
      params = [];
      arrays = [];
      results = [];
      body =
        [
          B.For
            ( "r",
              i 0,
              i per_worker,
              List.init workers (fun w ->
                  B.Send
                    ( in_chan w,
                      sample_expr ((v "r" *: i workers) +: i w) )) );
        ];
    }
  in
  let worker w =
    transform
      ~name:(Printf.sprintf "worker%d" w)
      ~in_chan:(in_chan w) ~out_chan:(out_chan w) ~count:per_worker ~work ()
  in
  let joiner =
    {
      B.name = "joiner";
      params = [];
      arrays = [];
      results = [ "acc" ];
      body =
        [
          B.Assign ("acc", i 0);
          B.For
            ( "r",
              i 0,
              i per_worker,
              List.concat
                (List.init workers (fun w ->
                     [
                       B.Recv ("x", out_chan w);
                       B.Assign ("acc", v "acc" +: v "x");
                     ])) );
          B.PortOut (1, v "acc");
        ];
    }
  in
  let procs =
    (splitter, Pn.Sw)
    :: List.init workers (fun w -> (worker w, Pn.Hw))
    @ [ (joiner, Pn.Sw) ]
  in
  let channels =
    List.concat
      (List.init workers (fun w ->
           [
             {
               Pn.cname = in_chan w;
               src = "splitter";
               dst = Printf.sprintf "worker%d" w;
               depth = 2;
             };
             {
               Pn.cname = out_chan w;
               src = Printf.sprintf "worker%d" w;
               dst = "joiner";
               depth = 2;
             };
           ]))
  in
  Pn.make ~name:"fork_join" procs channels

let expected_pipeline_output ~count ~work ~stages =
  let transform_item x =
    let acc = ref x in
    for _ = 1 to work do
      acc := ((!acc * 3) + x) asr 1
    done;
    !acc
  in
  let rec through n x = if n = 0 then x else through (n - 1) (transform_item x) in
  let total = ref 0 in
  for p = 0 to count - 1 do
    total := !total + through stages ((p * 7 mod 23) - 5)
  done;
  !total
