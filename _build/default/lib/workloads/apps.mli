(** Full applications assembled from behaviours and channels — the
    system-level workloads of the co-simulation and multi-threaded
    co-processor experiments.

    All processes are pure {!Codesign_ir.Behavior} values; mapping (SW
    vs HW) is chosen by the caller and can be changed with
    {!Codesign_ir.Process_network.remap}. *)

val producer : ?name:string -> chan:string -> count:int -> unit -> Codesign_ir.Behavior.proc
(** Sends [count] deterministic samples ([(7i mod 23) - 5]) on [chan]. *)

val transform :
  ?name:string ->
  in_chan:string ->
  out_chan:string ->
  count:int ->
  ?work:int ->
  unit ->
  Codesign_ir.Behavior.proc
(** Receives [count] items, applies a MAC-flavoured transform iterated
    [work] times (default 8) per item, and forwards the result. *)

val consumer :
  ?name:string -> chan:string -> count:int -> port:int -> unit -> Codesign_ir.Behavior.proc
(** Receives [count] items, accumulates, and writes the final sum to an
    output [port]; result variable ["acc"]. *)

val pipeline :
  ?stages:int ->
  ?count:int ->
  ?work:int ->
  ?depth:int ->
  unit ->
  Codesign_ir.Process_network.t
(** producer -> [stages] transforms -> consumer (default 2 transforms,
    16 items, FIFO depth 2); everything initially mapped to software.
    The consumer's output port is 1. *)

val fork_join :
  ?workers:int ->
  ?items:int ->
  ?work:int ->
  unit ->
  Codesign_ir.Process_network.t
(** A splitter distributing [items] round-robin to [workers] transform
    workers (default 3), merged by a joiner that emits the checksum on
    port 1 — the multi-threaded co-processor shape of paper Fig. 9. *)

val expected_pipeline_output : count:int -> work:int -> stages:int -> int
(** Reference output of {!pipeline}'s consumer port (computed with plain
    OCaml arithmetic, for asserting co-simulation correctness). *)
