(* Tests for codesign_workloads: the TGFF-style generator, the DSP
   kernels (differential against the compiled ISS path), and the
   process-network applications. *)

module T = Codesign_ir.Task_graph
module B = Codesign_ir.Behavior
module Tgff = Codesign_workloads.Tgff
module Kernels = Codesign_workloads.Kernels
module Apps = Codesign_workloads.Apps

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Tgff                                                                *)
(* ------------------------------------------------------------------ *)

let test_tgff_basic () =
  let g = Tgff.generate Tgff.default_spec in
  check Alcotest.int "task count" 12 (T.n_tasks g);
  check Alcotest.bool "has edges" true (List.length g.T.edges > 0);
  check Alcotest.bool "deadline set" true (g.T.deadline > 0);
  check Alcotest.bool "deadline tight" true
    (g.T.deadline < T.total_sw_cycles g);
  (* every non-source task has a predecessor *)
  let graph = T.graph g in
  let sources = Codesign_ir.Graph_algo.sources graph in
  check Alcotest.bool "some sources" true (List.length sources >= 1)

let test_tgff_deterministic () =
  let a = Tgff.generate Tgff.default_spec in
  let b = Tgff.generate Tgff.default_spec in
  check Alcotest.bool "same graph for same seed" true (a = b);
  let c = Tgff.generate { Tgff.default_spec with Tgff.seed = 99 } in
  check Alcotest.bool "different seed differs" true (a <> c)

let test_tgff_task_consistency () =
  let g = Tgff.generate { Tgff.default_spec with Tgff.n_tasks = 30; layers = 6 } in
  Array.iter
    (fun (t : T.task) ->
      check Alcotest.bool "hw faster than sw" true
        (t.T.hw_cycles <= t.T.sw_cycles);
      check Alcotest.bool "hw_cycles positive" true (t.T.hw_cycles >= 1);
      check Alcotest.bool "ops non-empty" true (t.T.ops <> []);
      check Alcotest.bool "area consistent with ops" true
        (t.T.hw_area = Codesign_rtl.Estimate.standalone_area t.T.ops))
    g.T.tasks

let test_tgff_archetypes () =
  let g = Tgff.generate { Tgff.default_spec with Tgff.n_tasks = 40; layers = 5 } in
  let kinds =
    Array.to_list g.T.tasks
    |> List.map Tgff.archetype_of_task
    |> List.sort_uniq compare
  in
  (* with 40 tasks all four archetypes should appear *)
  check Alcotest.int "all archetypes" 4 (List.length kinds)

let test_tgff_validation () =
  (try
     ignore (Tgff.generate { Tgff.default_spec with Tgff.n_tasks = 0 });
     fail "n_tasks 0"
   with Invalid_argument _ -> ());
  try
    ignore (Tgff.generate { Tgff.default_spec with Tgff.layers = 99 });
    fail "layers > tasks"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Kernels: every kernel runs identically interpreted and compiled     *)
(* ------------------------------------------------------------------ *)

let test_kernel_differential name proc bindings () =
  let expected = B.run proc bindings in
  let actual, cpu = Codesign_isa.Codegen.run_compiled proc bindings in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    (name ^ " compiled = interpreted")
    expected actual;
  check Alcotest.bool (name ^ " does real work") true
    (Codesign_isa.Cpu.cycles cpu > 50)

let test_fir_value () =
  (* hand-computed small case: taps=2, h=[1;2], x=[3;4;5], n=3 *)
  let p = Kernels.fir ~taps:2 () in
  let r =
    B.run p
      [ ("n", 3); ("x[0]", 3); ("x[1]", 4); ("x[2]", 5); ("h[0]", 1);
        ("h[1]", 2) ]
  in
  (* p=1: 1*4+2*3=10 >>4 = 0 ; p=2: 1*5+2*4=13 >>4 = 0 — scale up: *)
  check Alcotest.int "y" 0 (List.assoc "y" r);
  let r2 =
    B.run p
      [ ("n", 2); ("x[0]", 32); ("x[1]", 64); ("h[0]", 2); ("h[1]", 1) ]
  in
  (* p=1: 2*64 + 1*32 = 160 >> 4 = 10 *)
  check Alcotest.int "y2" 10 (List.assoc "y" r2)

let test_crc_value () =
  (* crc32 of a single zero word over 8 bit-steps is deterministic; just
     pin the current value as a regression anchor and check non-trivial *)
  let p = Kernels.crc32 ~len:1 () in
  let r1 = B.run p [ ("data[0]", 0) ] in
  let r2 = B.run p [ ("data[0]", 1) ] in
  check Alcotest.bool "crc differs by input" true
    (List.assoc "crc" r1 <> List.assoc "crc" r2)

let test_matmul_value () =
  let p = Kernels.matmul ~dim:2 () in
  (* a = [1 2; 3 4], b = [5 6; 7 8]; c = [19 22; 43 50]; checksum 134 *)
  let binds =
    [ ("a[0]", 1); ("a[1]", 2); ("a[2]", 3); ("a[3]", 4);
      ("b[0]", 5); ("b[1]", 6); ("b[2]", 7); ("b[3]", 8) ]
  in
  check Alcotest.int "checksum" 134
    (List.assoc "checksum" (B.run p binds))

let test_histogram_value () =
  let p = Kernels.histogram ~bins:4 () in
  let binds =
    [ ("n", 6); ("data[0]", 0); ("data[1]", 1); ("data[2]", 1);
      ("data[3]", 5); ("data[4]", 2); ("data[5]", 9) ]
  in
  (* slots: 0,1,1,1,2,1 -> bin1 has 4 *)
  check Alcotest.int "peak" 4 (List.assoc "peak" (B.run p binds))

let test_saturating_scale_value () =
  let p = Kernels.saturating_scale () in
  let binds = [ ("n", 3); ("k", 64); ("x[0]", 100); ("x[1]", -100); ("x[2]", 1) ] in
  let r = B.run p binds in
  (* 100*64>>4 = 400 -> clip 127; -400 -> clip -128; 4 -> 4 *)
  check Alcotest.int "clipped" 2 (List.assoc "clipped" r);
  check Alcotest.int "sum" (127 - 128 + 4) (List.assoc "sum" r)

let test_dct8_energy () =
  let _, p, binds =
    List.find (fun (n, _, _) -> n = "dct8") Kernels.all
  in
  let r = B.run p binds in
  (* dc term y0 must equal (sum * 64) >> 6 = sum of inputs *)
  let sum = List.fold_left (fun a (_, v) -> a + v) 0 binds in
  check Alcotest.int "dc term" sum (List.assoc "y0" r)

let test_kernels_elaborate () =
  (* every kernel elaborates to a valid CDFG with a plausible op mix *)
  List.iter
    (fun (name, p, _) ->
      let g = B.elaborate p in
      check Alcotest.bool (name ^ " has ops") true
        (Codesign_ir.Cdfg.total_ops g > 0))
    Kernels.all

let test_kernels_hls_estimate () =
  List.iter
    (fun (name, p, _) ->
      let est = Codesign_hls.Hls.estimate p in
      check Alcotest.bool (name ^ " area > 0") true
        (est.Codesign_hls.Hls.area > 0);
      check Alcotest.bool (name ^ " cycles > 0") true
        (est.Codesign_hls.Hls.cycles > 0))
    Kernels.all

(* ------------------------------------------------------------------ *)
(* Apps                                                                *)
(* ------------------------------------------------------------------ *)

let test_pipeline_structure () =
  let net = Apps.pipeline ~stages:3 () in
  check Alcotest.int "procs" 5 (List.length net.Codesign_ir.Process_network.procs);
  check Alcotest.int "channels" 4
    (List.length net.Codesign_ir.Process_network.channels)

let test_pipeline_reference () =
  (* the plain-OCaml reference agrees with interpreting the processes *)
  let count = 5 and work = 3 and stages = 1 in
  let expected = Apps.expected_pipeline_output ~count ~work ~stages in
  (* run the three processes sequentially through explicit queues *)
  let q01 = Queue.create () and q12 = Queue.create () in
  let io_prod =
    { B.null_io with B.send = (fun _ v -> Queue.push v q01) }
  in
  ignore (B.run ~io:io_prod (Apps.producer ~chan:"c0" ~count ()) []);
  let io_tr =
    {
      B.null_io with
      B.send = (fun _ v -> Queue.push v q12);
      recv = (fun _ -> Queue.pop q01);
    }
  in
  ignore
    (B.run ~io:io_tr
       (Apps.transform ~in_chan:"c0" ~out_chan:"c1" ~count ~work ())
       []);
  let out = ref 0 in
  let io_cons =
    {
      B.null_io with
      B.recv = (fun _ -> Queue.pop q12);
      port_out = (fun _ v -> out := v);
    }
  in
  ignore (B.run ~io:io_cons (Apps.consumer ~chan:"c1" ~count ~port:1 ()) []);
  check Alcotest.int "reference matches" expected !out

let test_fork_join_structure () =
  let net = Apps.fork_join ~workers:3 ~items:12 () in
  check Alcotest.int "procs" 5 (List.length net.Codesign_ir.Process_network.procs);
  check Alcotest.int "channels" 6
    (List.length net.Codesign_ir.Process_network.channels);
  check Alcotest.int "hw workers" 3
    (List.length (Codesign_ir.Process_network.hw_procs net))

let test_fork_join_uneven_rejected () =
  try
    ignore (Apps.fork_join ~workers:3 ~items:10 ());
    fail "uneven split"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  let kernel_cases =
    List.map
      (fun (name, p, binds) ->
        Alcotest.test_case
          (name ^ " differential") `Quick
          (test_kernel_differential name p binds))
      Kernels.all
  in
  Alcotest.run "codesign_workloads"
    [
      ( "tgff",
        [
          Alcotest.test_case "basic" `Quick test_tgff_basic;
          Alcotest.test_case "deterministic" `Quick test_tgff_deterministic;
          Alcotest.test_case "task consistency" `Quick
            test_tgff_task_consistency;
          Alcotest.test_case "archetypes" `Quick test_tgff_archetypes;
          Alcotest.test_case "validation" `Quick test_tgff_validation;
        ] );
      ("kernels-differential", kernel_cases);
      ( "kernels-values",
        [
          Alcotest.test_case "fir" `Quick test_fir_value;
          Alcotest.test_case "crc32" `Quick test_crc_value;
          Alcotest.test_case "matmul" `Quick test_matmul_value;
          Alcotest.test_case "histogram" `Quick test_histogram_value;
          Alcotest.test_case "saturating scale" `Quick
            test_saturating_scale_value;
          Alcotest.test_case "dct8 dc term" `Quick test_dct8_energy;
          Alcotest.test_case "elaborate all" `Quick test_kernels_elaborate;
          Alcotest.test_case "hls estimate all" `Quick
            test_kernels_hls_estimate;
        ] );
      ( "apps",
        [
          Alcotest.test_case "pipeline structure" `Quick
            test_pipeline_structure;
          Alcotest.test_case "pipeline reference" `Quick
            test_pipeline_reference;
          Alcotest.test_case "fork_join structure" `Quick
            test_fork_join_structure;
          Alcotest.test_case "fork_join validation" `Quick
            test_fork_join_uneven_rejected;
        ] );
    ]
