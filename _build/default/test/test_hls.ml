(* Tests for the codesign_hls library: scheduling, binding, controller
   generation (verified against reference DFG evaluation), and
   whole-behaviour estimation. *)

open Codesign_hls
module C = Codesign_ir.Cdfg
module B = Codesign_ir.Behavior
module F = Codesign_rtl.Fsmd

let check = Alcotest.check
let fail = Alcotest.fail

(* A block computing: r = (a*b) + (c*d); s = (a*b) - c *)
let two_mul_block () =
  C.block_make "bb"
    [
      { C.id = 0; opcode = C.Read "a"; args = [] };
      { C.id = 1; opcode = C.Read "b"; args = [] };
      { C.id = 2; opcode = C.Read "c"; args = [] };
      { C.id = 3; opcode = C.Read "d"; args = [] };
      { C.id = 4; opcode = C.Mul; args = [ 0; 1 ] };
      { C.id = 5; opcode = C.Mul; args = [ 2; 3 ] };
      { C.id = 6; opcode = C.Add; args = [ 4; 5 ] };
      { C.id = 7; opcode = C.Sub; args = [ 4; 2 ] };
      { C.id = 8; opcode = C.Write "r"; args = [ 6 ] };
      { C.id = 9; opcode = C.Write "s"; args = [ 7 ] };
    ]

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let test_asap () =
  let b = two_mul_block () in
  let s = Sched.asap b in
  (* reads at 0 (delay 0), muls start 0 (2 cycles), add at 2 *)
  check Alcotest.int "mul1 start" 0 s.Sched.start.(4);
  check Alcotest.int "mul2 start" 0 s.Sched.start.(5);
  check Alcotest.int "add start" 2 s.Sched.start.(6);
  check Alcotest.int "sub start" 2 s.Sched.start.(7);
  check Alcotest.int "length" 3 s.Sched.length;
  Sched.verify b s

let test_alap () =
  let b = two_mul_block () in
  let s = Sched.alap b ~latency:5 in
  Sched.verify b s;
  check Alcotest.int "length" 5 s.Sched.length;
  (* with slack, ops move late: add/sub finish at 5 *)
  check Alcotest.int "add late" 4 s.Sched.start.(6);
  try
    ignore (Sched.alap b ~latency:1);
    fail "latency below cp"
  with Invalid_argument _ -> ()

let test_mobility () =
  let b = two_mul_block () in
  let m = Sched.mobility b in
  (* at the critical-path latency, ops on the critical path have zero
     mobility *)
  check Alcotest.int "mul1 no slack" 0 m.(4);
  check Alcotest.int "add no slack" 0 m.(6);
  (* a side computation off the critical path has slack: x = a*b; y = a+b *)
  let side =
    C.block_make "side"
      [
        { C.id = 0; opcode = C.Read "a"; args = [] };
        { C.id = 1; opcode = C.Read "b"; args = [] };
        { C.id = 2; opcode = C.Mul; args = [ 0; 1 ] };
        { C.id = 3; opcode = C.Add; args = [ 0; 1 ] };
        { C.id = 4; opcode = C.Write "x"; args = [ 2 ] };
        { C.id = 5; opcode = C.Write "y"; args = [ 3 ] };
      ]
  in
  let ms = Sched.mobility side in
  check Alcotest.int "mul on cp" 0 ms.(2);
  check Alcotest.bool "add off cp has slack" true (ms.(3) > 0)

let test_list_schedule_resource_bound () =
  let b = two_mul_block () in
  (* with one multiplier, the two muls serialise *)
  let s = Sched.list_schedule b ~resources:[ ("mul", 1) ] in
  Sched.verify b s;
  let m1 = s.Sched.start.(4) and m2 = s.Sched.start.(5) in
  check Alcotest.bool "muls disjoint" true (abs (m1 - m2) >= 2);
  check Alcotest.bool "longer than asap" true (s.Sched.length > 3);
  let u = Sched.usage b s in
  check Alcotest.int "peak mul usage" 1 (List.assoc "mul" u);
  (* with two multipliers, as fast as asap *)
  let s2 = Sched.list_schedule b ~resources:[ ("mul", 2) ] in
  check Alcotest.int "asap speed" 3 s2.Sched.length

let test_list_schedule_errors () =
  try
    ignore (Sched.list_schedule (two_mul_block ()) ~resources:[ ("mul", 0) ]);
    fail "zero resource"
  with Invalid_argument _ -> ()

let test_force_directed () =
  let b = two_mul_block () in
  let s = Sched.force_directed b ~latency:5 in
  Sched.verify b s;
  (* FDS with slack should spread the two muls to reduce peak usage *)
  let u = Sched.usage b s in
  check Alcotest.int "peak mul usage 1" 1 (List.assoc "mul" u);
  try
    ignore (Sched.force_directed b ~latency:1);
    fail "latency below cp"
  with Invalid_argument _ -> ()

let test_usage_asap () =
  let b = two_mul_block () in
  let u = Sched.usage b (Sched.asap b) in
  check Alcotest.int "two muls at once" 2 (List.assoc "mul" u);
  check Alcotest.int "alu peak" 2 (List.assoc "alu" u)

let prop_list_schedule_respects_bounds =
  QCheck.Test.make ~name:"list schedule never exceeds resource bounds"
    ~count:100
    QCheck.(pair (int_range 1 3) (int_range 2 14))
    (fun (mul_bound, n_muls) ->
      (* chain of n_muls independent muls feeding one sum tree *)
      let ops = ref [] in
      let id = ref 0 in
      let emit opcode args =
        let i = !id in
        incr id;
        ops := { C.id = i; opcode; args } :: !ops;
        i
      in
      let vals =
        List.init n_muls (fun k ->
            let a = emit (C.Const k) [] in
            let b = emit (C.Const (k + 1)) [] in
            emit C.Mul [ a; b ])
      in
      let sum =
        List.fold_left (fun acc v -> emit C.Add [ acc; v ]) (List.hd vals)
          (List.tl vals)
      in
      ignore (emit (C.Write "out") [ sum ]);
      let b = C.block_make "g" (List.rev !ops) in
      let s = Sched.list_schedule b ~resources:[ ("mul", mul_bound) ] in
      Sched.verify b s;
      let u = Sched.usage b s in
      match List.assoc_opt "mul" u with
      | Some peak -> peak <= mul_bound
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)
(* ------------------------------------------------------------------ *)

let test_bind_fu_sharing () =
  let b = two_mul_block () in
  (* serialise muls -> they share one FU *)
  let s = Sched.list_schedule b ~resources:[ ("mul", 1) ] in
  let bd = Bind.bind b s in
  Bind.verify b s bd;
  check Alcotest.int "one mul instance" 1 (List.assoc "mul" bd.Bind.fu_alloc);
  (* asap -> two instances *)
  let s2 = Sched.asap b in
  let bd2 = Bind.bind b s2 in
  Bind.verify b s2 bd2;
  check Alcotest.int "two mul instances" 2
    (List.assoc "mul" bd2.Bind.fu_alloc)

let test_bind_registers () =
  let b = two_mul_block () in
  let s = Sched.asap b in
  let bd = Bind.bind b s in
  check Alcotest.bool "registers allocated" true (bd.Bind.n_registers > 0);
  check Alcotest.bool "areas positive" true
    (Bind.fu_area bd > 0 && Bind.reg_area bd > 0);
  check Alcotest.int "datapath = sum" (Bind.datapath_area bd)
    (Bind.fu_area bd + Bind.reg_area bd + Bind.mux_area bd)

let prop_bind_always_verifies =
  QCheck.Test.make ~name:"binding verifies for random schedules" ~count:100
    QCheck.(int_range 1 4)
    (fun mul_bound ->
      let b = two_mul_block () in
      let s = Sched.list_schedule b ~resources:[ ("mul", mul_bound) ] in
      let bd = Bind.bind b s in
      Bind.verify b s bd;
      true)

(* ------------------------------------------------------------------ *)
(* Controller: generated FSMD matches reference evaluation             *)
(* ------------------------------------------------------------------ *)

let fsmd_matches_reference ?(env = fun _ -> 0) block sched =
  let fsmd = Controller.of_block block sched in
  let expected = Controller.eval_block_reference block ~env in
  (* initial FSMD registers: architectural variables the block reads *)
  let init =
    List.filter_map
      (fun (o : C.op) ->
        match o.C.opcode with
        | C.Read nm when not (String.contains nm ':') -> Some (nm, env nm)
        | _ -> None)
      block.C.ops
  in
  let r = F.run ~regs:init fsmd in
  List.iter
    (fun (var, v) ->
      if not (String.contains var ':') then
        check Alcotest.int ("var " ^ var) v
          (match List.assoc_opt var r.F.final_regs with
          | Some x -> x
          | None -> fail ("missing reg " ^ var)))
    expected;
  r

let test_controller_basic () =
  let b = two_mul_block () in
  let env v =
    match v with "a" -> 3 | "b" -> 4 | "c" -> 5 | "d" -> 6 | _ -> 0
  in
  let r = fsmd_matches_reference ~env b (Sched.asap b) in
  (* 3 body states + commit *)
  check Alcotest.int "cycles" 4 r.F.cycles

let test_controller_serialised () =
  let b = two_mul_block () in
  let env v =
    match v with "a" -> 3 | "b" -> 4 | "c" -> 5 | "d" -> 6 | _ -> 0
  in
  let s = Sched.list_schedule b ~resources:[ ("mul", 1) ] in
  let r = fsmd_matches_reference ~env b s in
  check Alcotest.bool "slower" true (r.F.cycles > 4)

let test_controller_write_read_same_var () =
  (* x = x + 1; y = x * 2  — intra-block write->read through value
     numbering in Behavior.elaborate *)
  let p =
    {
      B.name = "wrsame";
      params = [ "x" ];
      arrays = [];
      results = [ "x"; "y" ];
      body =
        [
          B.Assign ("x", B.Bin (B.Add, B.Var "x", B.Int 1));
          B.Assign ("y", B.Bin (B.Mul, B.Var "x", B.Int 2));
        ];
    }
  in
  let g = B.elaborate p in
  let block = List.hd g.C.blocks in
  let env = function "x" -> 10 | _ -> 0 in
  let r = fsmd_matches_reference ~env block (Sched.asap block) in
  check Alcotest.int "x" 11 (List.assoc "x" r.F.final_regs);
  check Alcotest.int "y" 22 (List.assoc "y" r.F.final_regs)

let test_controller_rejects_memory () =
  let b =
    C.block_make "m"
      [
        { C.id = 0; opcode = C.Const 1; args = [] };
        { C.id = 1; opcode = C.Load "t"; args = [ 0 ] };
      ]
  in
  try
    ignore (Controller.of_block b (Sched.asap b));
    fail "expected memory rejection"
  with Invalid_argument _ -> ()

let test_controller_ports_chans () =
  let b =
    C.block_make "io"
      [
        { C.id = 0; opcode = C.Read "chan:in"; args = [] };
        { C.id = 1; opcode = C.Const 10; args = [] };
        { C.id = 2; opcode = C.Mul; args = [ 0; 1 ] };
        { C.id = 3; opcode = C.Write "chan:out"; args = [ 2 ] };
        { C.id = 4; opcode = C.Write "port:5"; args = [ 2 ] };
      ]
  in
  let fsmd = Controller.of_block b (Sched.asap b) in
  let sent = ref [] and outs = ref [] in
  let env =
    {
      F.null_env with
      F.recv = (fun _ -> 7);
      send = (fun ch v -> sent := (ch, v) :: !sent);
      output = (fun p v -> outs := (p, v) :: !outs);
    }
  in
  ignore (F.run ~env fsmd);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sent" [ ("out", 70) ] !sent;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "port out" [ ("port:5", 70) ] !outs

(* random straight-line expression blocks: generated hardware always
   matches the reference evaluation *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> B.Int i) (int_range (-9) 9);
        oneofl [ B.Var "a"; B.Var "b" ];
      ]
  in
  let op = oneofl [ B.Add; B.Sub; B.Mul; B.And; B.Xor; B.Lt; B.Eq ] in
  let rec e n =
    if n = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (4, map3 (fun o l r -> B.Bin (o, l, r)) op (e (n - 1)) (e (n - 1)));
        ]
  in
  e 3

let prop_hls_hardware_matches_software =
  QCheck.Test.make
    ~name:"synthesised FSMD = interpreter = compiled code" ~count:100
    (QCheck.make
       ~print:(fun (e1, e2, a, b) ->
         Format.asprintf "a=%d b=%d x=%a y=%a" a b B.pp_expr e1 B.pp_expr e2)
       QCheck.Gen.(
         quad gen_expr gen_expr (int_range (-50) 50) (int_range (-50) 50)))
    (fun (e1, e2, a, b) ->
      let p =
        {
          B.name = "tri";
          params = [ "a"; "b" ];
          arrays = [];
          results = [ "x"; "y" ];
          body = [ B.Assign ("x", e1); B.Assign ("y", e2) ];
        }
      in
      let bindings = [ ("a", a); ("b", b) ] in
      (* path 1: interpreter *)
      let expected = B.run p bindings in
      (* path 2: compiled to the ISS *)
      let compiled, _ = Codesign_isa.Codegen.run_compiled p bindings in
      (* path 3: HLS-generated hardware *)
      let g = B.elaborate p in
      let block = List.hd g.C.blocks in
      let fsmd = Controller.of_block block (Sched.asap block) in
      let r = F.run ~regs:bindings fsmd in
      let hw =
        List.map
          (fun (v, _) -> (v, List.assoc v r.F.final_regs))
          expected
      in
      expected = compiled && expected = hw)

(* ------------------------------------------------------------------ *)
(* Hls top level                                                       *)
(* ------------------------------------------------------------------ *)

let fir_proc =
  {
    B.name = "fir4";
    params = [ "x0"; "x1"; "x2"; "x3" ];
    arrays = [];
    results = [ "y" ];
    body =
      [
        B.Assign
          ( "y",
            B.Bin
              ( B.Add,
                B.Bin
                  ( B.Add,
                    B.Bin (B.Mul, B.Var "x0", B.Int 2),
                    B.Bin (B.Mul, B.Var "x1", B.Int 5) ),
                B.Bin
                  ( B.Add,
                    B.Bin (B.Mul, B.Var "x2", B.Int 5),
                    B.Bin (B.Mul, B.Var "x3", B.Int 2) ) ) );
      ];
  }

let test_hls_synthesize_block () =
  let g = B.elaborate fir_proc in
  let block = List.hd g.C.blocks in
  let fsmd, report = Hls.synthesize_block block in
  check Alcotest.bool "latency sane" true (report.Hls.latency >= 3);
  check Alcotest.bool "area positive" true (report.Hls.total_area > 0);
  check Alcotest.int "total = parts"
    (report.Hls.fu_area + report.Hls.reg_area + report.Hls.mux_area
   + report.Hls.ctrl_area)
    report.Hls.total_area;
  (* default resources: 1 multiplier shared by 4 muls *)
  check Alcotest.int "mul alloc" 1 (List.assoc "mul" report.Hls.fu_alloc);
  (* and the hardware still computes the right answer *)
  let r =
    F.run ~regs:[ ("x0", 1); ("x1", 2); ("x2", 3); ("x3", 4) ] fsmd
  in
  check Alcotest.int "fir" (2 + 10 + 15 + 8) (List.assoc "y" r.F.final_regs)

let test_hls_resource_latency_tradeoff () =
  let g = B.elaborate fir_proc in
  let block = List.hd g.C.blocks in
  let fast = Hls.estimate_block ~scheduler:(Hls.List_sched [ ("mul", 4) ]) block in
  let slow = Hls.estimate_block ~scheduler:(Hls.List_sched [ ("mul", 1) ]) block in
  check Alcotest.bool "more FUs -> faster" true
    (fast.Hls.latency < slow.Hls.latency);
  check Alcotest.bool "more FUs -> bigger" true
    (fast.Hls.fu_area > slow.Hls.fu_area)

let test_hls_estimate_behavior () =
  let p =
    {
      B.name = "loopy";
      params = [];
      arrays = [];
      results = [ "s" ];
      body =
        [
          B.Assign ("s", B.Int 0);
          B.For
            ( "i",
              B.Int 0,
              B.Int 16,
              [
                B.Assign
                  ( "s",
                    B.Bin (B.Add, B.Var "s", B.Bin (B.Mul, B.Var "i", B.Var "i"))
                  );
              ] );
        ];
    }
  in
  let est = Hls.estimate p in
  check Alcotest.bool "blocks" true (est.Hls.n_blocks >= 2);
  check Alcotest.bool "cycles weighted by trip" true (est.Hls.cycles > 16);
  check Alcotest.bool "area positive" true (est.Hls.area > 0);
  check Alcotest.bool "mix has mul" true (List.mem_assoc "mul" est.Hls.mix);
  (* hardware should beat software on this kernel *)
  let _, cpu = Codesign_isa.Codegen.run_compiled p [] in
  check Alcotest.bool "hw faster than sw" true
    (est.Hls.cycles < Codesign_isa.Cpu.cycles cpu)

let test_hls_estimate_scheduler_sensitivity () =
  let est_small =
    Hls.estimate ~scheduler:(Hls.List_sched [ ("mul", 1); ("alu", 1) ]) fir_proc
  in
  let est_big =
    Hls.estimate ~scheduler:(Hls.List_sched [ ("mul", 4); ("alu", 4) ]) fir_proc
  in
  check Alcotest.bool "bigger datapath is faster" true
    (est_big.Hls.cycles <= est_small.Hls.cycles);
  check Alcotest.bool "bigger datapath costs more" true
    (est_big.Hls.area >= est_small.Hls.area)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_hls"
    [
      ( "sched",
        [
          Alcotest.test_case "asap" `Quick test_asap;
          Alcotest.test_case "alap" `Quick test_alap;
          Alcotest.test_case "mobility" `Quick test_mobility;
          Alcotest.test_case "list schedule bound" `Quick
            test_list_schedule_resource_bound;
          Alcotest.test_case "list schedule errors" `Quick
            test_list_schedule_errors;
          Alcotest.test_case "force directed" `Quick test_force_directed;
          Alcotest.test_case "usage asap" `Quick test_usage_asap;
          QCheck_alcotest.to_alcotest prop_list_schedule_respects_bounds;
        ] );
      ( "bind",
        [
          Alcotest.test_case "fu sharing" `Quick test_bind_fu_sharing;
          Alcotest.test_case "registers" `Quick test_bind_registers;
          QCheck_alcotest.to_alcotest prop_bind_always_verifies;
        ] );
      ( "controller",
        [
          Alcotest.test_case "basic" `Quick test_controller_basic;
          Alcotest.test_case "serialised" `Quick test_controller_serialised;
          Alcotest.test_case "write then read" `Quick
            test_controller_write_read_same_var;
          Alcotest.test_case "rejects memory" `Quick
            test_controller_rejects_memory;
          Alcotest.test_case "ports and channels" `Quick
            test_controller_ports_chans;
          QCheck_alcotest.to_alcotest prop_hls_hardware_matches_software;
        ] );
      ( "hls",
        [
          Alcotest.test_case "synthesize block" `Quick
            test_hls_synthesize_block;
          Alcotest.test_case "resource/latency tradeoff" `Quick
            test_hls_resource_latency_tradeoff;
          Alcotest.test_case "estimate behavior" `Quick
            test_hls_estimate_behavior;
          Alcotest.test_case "scheduler sensitivity" `Quick
            test_hls_estimate_scheduler_sensitivity;
        ] );
    ]
