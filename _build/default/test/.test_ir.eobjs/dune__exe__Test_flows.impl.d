test/test_flows.ml: Alcotest Asip Codesign Codesign_ir Codesign_workloads Coproc Cosim List Printf
