test/test_workloads.ml: Alcotest Array Codesign_hls Codesign_ir Codesign_isa Codesign_rtl Codesign_workloads List Queue
