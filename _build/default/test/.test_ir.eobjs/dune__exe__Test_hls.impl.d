test/test_hls.ml: Alcotest Array Bind Codesign_hls Codesign_ir Codesign_isa Codesign_rtl Controller Format Hls List QCheck QCheck_alcotest Sched String
