test/test_isa.ml: Alcotest Array Asm Codegen Codesign_ir Codesign_isa Cpu Format Isa List Profiler QCheck QCheck_alcotest
