test/test_sim.ml: Alcotest Channel Codesign_sim Event_queue Gen Kernel List Printf QCheck QCheck_alcotest Signal
