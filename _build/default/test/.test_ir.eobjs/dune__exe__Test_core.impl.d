test/test_core.ml: Alcotest Array Codesign Codesign_ir Codesign_workloads Cost Cosynth List Partition Printf Report String Taxonomy
