test/test_flows.mli:
