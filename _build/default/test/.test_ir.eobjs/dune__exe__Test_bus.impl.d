test/test_bus.ml: Alcotest Bus Codesign_bus Codesign_isa Codesign_rtl Codesign_sim Device Dma Fun Interface_synth Interrupt List Memory_map Printf
