test/test_rtl.ml: Alcotest Codesign_ir Codesign_rtl Estimate Fsmd Hdl_out List Logic_sim Netlist Printf QCheck QCheck_alcotest String
