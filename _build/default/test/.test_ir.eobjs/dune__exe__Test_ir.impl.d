test/test_ir.ml: Alcotest Array Behavior Cdfg Codesign_ir Format Fun Graph_algo List Printf Process_network QCheck QCheck_alcotest String Task_graph
