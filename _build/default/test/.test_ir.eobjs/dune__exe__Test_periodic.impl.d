test/test_periodic.ml: Alcotest Array Codesign Codesign_ir Codesign_workloads Cosynth Format List Periodic QCheck QCheck_alcotest String
