test/test_robustness.ml: Alcotest Array Codesign Codesign_bus Codesign_ir Codesign_isa Codesign_sim Codesign_workloads Cosim Cost Cosynth Fun List Printf QCheck QCheck_alcotest String
