test/test_experiments.ml: Alcotest Codesign_experiments Exp_ablation Exp_criteria Exp_fig1 Exp_fig2 Exp_fig3 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 String
