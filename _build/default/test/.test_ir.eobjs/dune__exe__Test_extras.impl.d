test/test_extras.ml: Alcotest Array Asm Codesign Codesign_ir Codesign_isa Codesign_workloads Encoding Format Isa List Printf QCheck QCheck_alcotest String
