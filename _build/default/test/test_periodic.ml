(* Tests for periodic, multi-application co-synthesis (Yen-Wolf's
   actual problem domain: several task graphs with periods sharing one
   PE configuration, checked over the hyperperiod). *)

open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff

let check = Alcotest.check
let fail = Alcotest.fail

let pe_lib =
  [
    { Cosynth.pt_name = "fast"; price = 100 };
    { Cosynth.pt_name = "slow"; price = 20 };
  ]

let mk_app ~seed ~n_tasks ~period =
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed; n_tasks; layers = min 3 n_tasks;
        deadline_factor = 0.0; sw_cycles_range = (50, 200) }
  in
  {
    Periodic.graph = g;
    period;
    exec =
      Array.map
        (fun (t : T.task) -> [| max 1 (t.T.sw_cycles / 4); t.T.sw_cycles |])
        g.T.tasks;
  }

let test_hyperperiod () =
  let pb =
    Periodic.problem
      [ mk_app ~seed:1 ~n_tasks:3 ~period:1000;
        mk_app ~seed:2 ~n_tasks:3 ~period:1500 ]
      pe_lib
  in
  check Alcotest.int "lcm" 3000 (Periodic.hyperperiod pb)

let test_validation () =
  (try
     ignore (Periodic.problem [] pe_lib);
     fail "no apps"
   with Invalid_argument _ -> ());
  (try
     ignore (Periodic.problem [ mk_app ~seed:1 ~n_tasks:3 ~period:0 ] pe_lib);
     fail "period 0"
   with Invalid_argument _ -> ());
  (* wildly non-harmonic periods blow up the hyperperiod *)
  try
    ignore
      (Periodic.problem
         [ mk_app ~seed:1 ~n_tasks:3 ~period:997;
           mk_app ~seed:2 ~n_tasks:3 ~period:1009;
           mk_app ~seed:3 ~n_tasks:3 ~period:1013 ]
         pe_lib);
    fail "hyperperiod explosion"
  with Invalid_argument _ -> ()

let test_check_empty_pe_set_infeasible () =
  let pb = Periodic.problem [ mk_app ~seed:1 ~n_tasks:3 ~period:1000 ] pe_lib in
  let v = Periodic.check pb ~pe_set:[] in
  check Alcotest.bool "infeasible" false v.Periodic.feasible

let test_check_loose_period_feasible_on_one_slow () =
  (* total slow-PE work per instance ~ a few hundred cycles << period *)
  let pb =
    Periodic.problem [ mk_app ~seed:1 ~n_tasks:3 ~period:5000 ] pe_lib
  in
  let v = Periodic.check pb ~pe_set:[ 1 ] in
  check Alcotest.bool "feasible" true v.Periodic.feasible;
  check Alcotest.bool "lateness negative" true (v.Periodic.max_lateness < 0);
  check Alcotest.bool "utilisation sane" true
    (v.Periodic.utilisation > 0.0 && v.Periodic.utilisation <= 1.0)

let test_check_tight_period_needs_more () =
  (* a period tighter than one instance's serial work on slow *)
  let app = mk_app ~seed:4 ~n_tasks:5 ~period:300 in
  let pb = Periodic.problem [ app ] pe_lib in
  let slow_only = Periodic.check pb ~pe_set:[ 1 ] in
  let fast = Periodic.check pb ~pe_set:[ 0; 0 ] in
  check Alcotest.bool "slow alone infeasible" false slow_only.Periodic.feasible;
  check Alcotest.bool "two fast feasible" true fast.Periodic.feasible;
  check Alcotest.bool "lateness ordered" true
    (fast.Periodic.max_lateness < slow_only.Periodic.max_lateness)

let test_more_pes_never_hurt () =
  let pb =
    Periodic.problem
      [ mk_app ~seed:5 ~n_tasks:4 ~period:600;
        mk_app ~seed:6 ~n_tasks:4 ~period:1200 ]
      pe_lib
  in
  let one = Periodic.check pb ~pe_set:[ 1 ] in
  let two = Periodic.check pb ~pe_set:[ 1; 1 ] in
  let three = Periodic.check pb ~pe_set:[ 1; 1; 0 ] in
  check Alcotest.bool "2 >= 1" true
    (two.Periodic.max_lateness <= one.Periodic.max_lateness);
  check Alcotest.bool "3 >= 2" true
    (three.Periodic.max_lateness <= two.Periodic.max_lateness)

let test_synthesize_reaches_feasibility () =
  let pb =
    Periodic.problem
      [ mk_app ~seed:7 ~n_tasks:5 ~period:500;
        mk_app ~seed:8 ~n_tasks:4 ~period:1000 ]
      pe_lib
  in
  let s = Periodic.synthesize pb in
  check Alcotest.bool "feasible" true s.Periodic.verdict.Periodic.feasible;
  check Alcotest.bool "non-empty" true (s.Periodic.pe_set <> []);
  check Alcotest.int "price consistent"
    (List.fold_left
       (fun acc t -> acc + (List.nth pe_lib t).Cosynth.price)
       0 s.Periodic.pe_set)
    s.Periodic.price

let test_synthesize_cheap_when_loose () =
  let pb =
    Periodic.problem [ mk_app ~seed:9 ~n_tasks:3 ~period:50_000 ] pe_lib
  in
  let s = Periodic.synthesize pb in
  check Alcotest.bool "single cheap PE suffices" true
    (s.Periodic.price <= 20 && s.Periodic.verdict.Periodic.feasible)

let test_synthesize_scales_price_with_load () =
  let loose =
    Periodic.synthesize
      (Periodic.problem [ mk_app ~seed:10 ~n_tasks:4 ~period:20_000 ] pe_lib)
  in
  let tight =
    Periodic.synthesize
      (Periodic.problem [ mk_app ~seed:10 ~n_tasks:4 ~period:400 ] pe_lib)
  in
  check Alcotest.bool "tight load costs more" true
    (tight.Periodic.price >= loose.Periodic.price);
  check Alcotest.bool "both feasible" true
    (loose.Periodic.verdict.Periodic.feasible
    && tight.Periodic.verdict.Periodic.feasible)

let prop_utilisation_bounded =
  QCheck.Test.make ~name:"feasible schedules never exceed capacity"
    ~count:60
    QCheck.(triple (int_range 1 300) (int_range 2 5) (int_range 300 5000))
    (fun (seed, n_tasks, period) ->
      let pb = Periodic.problem [ mk_app ~seed ~n_tasks ~period ] pe_lib in
      let v1 = Periodic.check pb ~pe_set:[ 1 ] in
      let v2 = Periodic.check pb ~pe_set:[ 0; 1 ] in
      ((not v1.Periodic.feasible) || v1.Periodic.utilisation <= 1.0 +. 1e-9)
      && ((not v2.Periodic.feasible) || v2.Periodic.utilisation <= 1.0 +. 1e-9))

let test_pp () =
  let pb = Periodic.problem [ mk_app ~seed:1 ~n_tasks:3 ~period:5000 ] pe_lib in
  let s = Periodic.synthesize pb in
  let str = Format.asprintf "%a" (fun f -> Periodic.pp_solution f pb) s in
  check Alcotest.bool "prints" true (String.length str > 20)

let () =
  Alcotest.run "codesign_periodic"
    [
      ( "periodic",
        [
          Alcotest.test_case "hyperperiod" `Quick test_hyperperiod;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "empty pe set" `Quick
            test_check_empty_pe_set_infeasible;
          Alcotest.test_case "loose period feasible" `Quick
            test_check_loose_period_feasible_on_one_slow;
          Alcotest.test_case "tight period needs more" `Quick
            test_check_tight_period_needs_more;
          Alcotest.test_case "more PEs never hurt" `Quick
            test_more_pes_never_hurt;
          Alcotest.test_case "synthesize feasible" `Quick
            test_synthesize_reaches_feasibility;
          Alcotest.test_case "cheap when loose" `Quick
            test_synthesize_cheap_when_loose;
          Alcotest.test_case "price scales with load" `Quick
            test_synthesize_scales_price_with_load;
          Alcotest.test_case "pp" `Quick test_pp;
          QCheck_alcotest.to_alcotest prop_utilisation_bounded;
        ] );
    ]
