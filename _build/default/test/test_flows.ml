(* Integration tests for the end-to-end co-design flows: ASIP synthesis
   (§4.3/4.4), the co-simulation abstraction ladder (§3.1/Fig. 3), and
   multi-threaded co-processor synthesis (§4.5/4.6). *)

open Codesign
module B = Codesign_ir.Behavior
module Pn = Codesign_ir.Process_network
module Kernels = Codesign_workloads.Kernels
module Apps = Codesign_workloads.Apps

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* ASIP                                                                *)
(* ------------------------------------------------------------------ *)

let test_asip_patterns_distinct () =
  let ids = List.map (fun p -> p.Asip.pid) Asip.patterns in
  check Alcotest.bool "unique pids" true
    (List.length (List.sort_uniq compare ids) = List.length ids)

let test_asip_occurrences_fir () =
  let _, fir, _ = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let occs = Asip.occurrences fir in
  (* the fir inner loop is a textbook MAC *)
  check Alcotest.bool "mac found" true
    (List.exists (fun (p, n) -> p.Asip.pname = "mac" && n > 0) occs)

let test_asip_rewrite_preserves_semantics () =
  (* interpreter-level check on every kernel: rewritten + ext evaluator
     produces identical results *)
  List.iter
    (fun (name, proc, binds) ->
      let occs = Asip.occurrences proc in
      let pats = List.map fst occs in
      let rewritten = Asip.rewrite proc pats in
      let expected = B.run proc binds in
      let actual = B.run ~ext:(Asip.ext_evaluator pats) rewritten binds in
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
        (name ^ " rewrite preserves semantics")
        expected actual)
    Kernels.all

let test_asip_design_fir () =
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let r = Asip.design fir binds in
  check Alcotest.bool "verified" true r.Asip.verified;
  check Alcotest.bool "selected something" true (r.Asip.selected <> []);
  check Alcotest.bool "speedup > 1.05" true (r.Asip.speedup > 1.05);
  check Alcotest.bool "area within budget" true (r.Asip.fu_area <= 800)

let test_asip_design_all_kernels_verified () =
  List.iter
    (fun (name, proc, binds) ->
      let r = Asip.design proc binds in
      check Alcotest.bool (name ^ " verified") true r.Asip.verified;
      check Alcotest.bool (name ^ " no slowdown") true
        (r.Asip.asip_cycles <= r.Asip.base_cycles))
    Kernels.all

let test_asip_budget_zero_selects_nothing () =
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let r = Asip.design ~budget:0 fir binds in
  check Alcotest.bool "nothing selected" true (r.Asip.selected = []);
  check Alcotest.int "no change" r.Asip.base_cycles r.Asip.asip_cycles

let test_asip_budget_monotone () =
  let _, fir, binds = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let small = Asip.design ~budget:100 fir binds in
  let large = Asip.design ~budget:2000 fir binds in
  check Alcotest.bool "more budget, >= speedup" true
    (large.Asip.speedup >= small.Asip.speedup -. 1e-9)

let test_asip_knapsack_respects_budget () =
  let occs =
    List.map (fun p -> (p, 100)) Asip.patterns
  in
  let sel = Asip.select ~budget:400 occs in
  let area = List.fold_left (fun a p -> a + p.Asip.area) 0 sel in
  check Alcotest.bool "within budget" true (area <= 400);
  check Alcotest.bool "non-empty" true (sel <> [])

let test_asip_reconfig () =
  (* two apps with disjoint hot patterns: a MAC-heavy one and a
     shift/xor-heavy one; a small fabric cannot host both statically *)
  let _, fir, fir_b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let _, crc, crc_b = List.find (fun (n, _, _) -> n = "crc32") Kernels.all in
  let out =
    Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:100
      [ (fir, fir_b); (crc, crc_b); (fir, fir_b); (crc, crc_b) ]
  in
  check Alcotest.bool "reconfigured at least once" true
    (out.Asip.Reconfig.reconfigurations >= 1);
  check Alcotest.bool "some winner" true
    (out.Asip.Reconfig.winner = "static"
    || out.Asip.Reconfig.winner = "dynamic")

let test_asip_reconfig_cost_flips_winner () =
  let _, fir, fir_b = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let _, crc, crc_b = List.find (fun (n, _, _) -> n = "crc32") Kernels.all in
  let apps = [ (fir, fir_b); (crc, crc_b) ] in
  let cheap = Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:0 apps in
  let dear =
    Asip.Reconfig.compare ~capacity:400 ~reconfig_cost:10_000_000 apps
  in
  (* dynamic dominates with free reconfiguration; enormous cost must not
     leave dynamic cheaper *)
  check Alcotest.bool "free reconfig: dynamic <= static" true
    (cheap.Asip.Reconfig.dynamic_cycles <= cheap.Asip.Reconfig.static_cycles);
  check Alcotest.string "expensive reconfig: static wins" "static"
    dear.Asip.Reconfig.winner

(* ------------------------------------------------------------------ *)
(* Co-simulation ladder                                                *)
(* ------------------------------------------------------------------ *)

let ladder () =
  List.map
    (fun level -> Cosim.run_echo_system ~level ~items:8 ~work:4 ())
    [ Cosim.Pin; Cosim.Transaction; Cosim.Driver; Cosim.Message ]

let test_cosim_functional_equivalence () =
  match ladder () with
  | ref :: rest ->
      check Alcotest.bool "nonzero checksum" true (ref.Cosim.checksum <> 0);
      List.iter
        (fun m ->
          check Alcotest.int
            (Cosim.level_name m.Cosim.level ^ " checksum")
            ref.Cosim.checksum m.Cosim.checksum)
        rest
  | [] -> fail "no metrics"

let test_cosim_event_cost_decreases () =
  match ladder () with
  | [ pin; tlm; drv; msg ] ->
      check Alcotest.bool "pin > tlm events" true
        (pin.Cosim.events > tlm.Cosim.events);
      check Alcotest.bool "tlm >= driver events" true
        (tlm.Cosim.events >= drv.Cosim.events);
      check Alcotest.bool "driver > message events" true
        (drv.Cosim.events > msg.Cosim.events);
      (* orders of magnitude between the extremes *)
      check Alcotest.bool "pin >> message" true
        (pin.Cosim.events > 5 * msg.Cosim.events)
  | _ -> fail "expected 4 levels"

let test_cosim_timing_error_grows () =
  match ladder () with
  | [ pin; tlm; drv; msg ] ->
      let err m =
        abs_float
          (float_of_int (m.Cosim.sim_cycles - pin.Cosim.sim_cycles)
          /. float_of_int pin.Cosim.sim_cycles)
      in
      (* every abstraction is within 2x of the reference, but the
         message level is the least accurate *)
      check Alcotest.bool "tlm reasonably close" true (err tlm < 0.5);
      check Alcotest.bool "message least accurate" true
        (err msg >= err tlm);
      check Alcotest.bool "driver within 2x" true (err drv < 1.0)
  | _ -> fail "expected 4 levels"

let test_cosim_bus_ops_visible () =
  match ladder () with
  | [ pin; tlm; drv; msg ] ->
      check Alcotest.bool "pin counts ops" true (pin.Cosim.bus_ops > 0);
      check Alcotest.bool "tlm counts ops" true (tlm.Cosim.bus_ops > 0);
      check Alcotest.bool "driver counts ops" true (drv.Cosim.bus_ops > 0);
      check Alcotest.int "message has no bus" 0 msg.Cosim.bus_ops
  | _ -> fail "expected 4 levels"

(* ------------------------------------------------------------------ *)
(* Process networks through the kernel                                 *)
(* ------------------------------------------------------------------ *)

let test_network_all_sw () =
  let net = Apps.pipeline ~stages:1 ~count:5 ~work:3 () in
  let r = Cosim.run_network net in
  let expected = Apps.expected_pipeline_output ~count:5 ~work:3 ~stages:1 in
  (match r.Cosim.port_writes with
  | [ ("consumer", 1, v) ] -> check Alcotest.int "checksum" expected v
  | _ -> fail "expected one consumer port write");
  check Alcotest.int "no hw" 0 r.Cosim.hw_area;
  check Alcotest.bool "took time" true (r.Cosim.end_time > 0);
  (* consumer's acc is also visible as a software result *)
  check Alcotest.int "sw result" expected
    (List.assoc "acc" (List.assoc "consumer" r.Cosim.sw_results))

let test_network_hw_stage_matches_sw () =
  let mk mapping =
    let net = Apps.pipeline ~stages:1 ~count:5 ~work:3 () in
    Pn.remap net [ ("stage0", mapping) ]
  in
  let rsw = Cosim.run_network (mk Pn.Sw) in
  let rhw = Cosim.run_network (mk Pn.Hw) in
  let v r =
    match r.Cosim.port_writes with
    | [ (_, _, v) ] -> v
    | _ -> fail "one write expected"
  in
  check Alcotest.int "same function" (v rsw) (v rhw);
  check Alcotest.bool "hw has area" true (rhw.Cosim.hw_area > 0);
  check Alcotest.bool "hw stage is faster" true
    (rhw.Cosim.end_time < rsw.Cosim.end_time)

let test_network_engine_serialisation () =
  (* two hw workers on one engine are slower than on two engines *)
  let net = Apps.fork_join ~workers:2 ~items:8 ~work:24 () in
  let both_one =
    Cosim.run_network
      ~hw_engines:[ ("worker0", 0); ("worker1", 0) ]
      net
  in
  let separate =
    Cosim.run_network
      ~hw_engines:[ ("worker0", 0); ("worker1", 1) ]
      net
  in
  check Alcotest.bool "parallel engines faster" true
    (separate.Cosim.end_time < both_one.Cosim.end_time);
  (* functional equality *)
  let v r =
    List.fold_left (fun a (_, _, x) -> a + x) 0 r.Cosim.port_writes
  in
  check Alcotest.int "same output" (v both_one) (v separate)

let test_network_cross_cost_charged () =
  let net = Apps.pipeline ~stages:2 ~count:6 ~work:4 () in
  let net = Pn.remap net [ ("stage0", Pn.Hw); ("stage1", Pn.Hw) ] in
  let colocated =
    Cosim.run_network
      ~hw_engines:[ ("stage0", 0); ("stage1", 0) ]
      ~cross_cost:500 net
  in
  let split =
    Cosim.run_network
      ~hw_engines:[ ("stage0", 0); ("stage1", 1) ]
      ~cross_cost:500 net
  in
  (* splitting the chatty pipeline across engines pays the crossing cost
     on every message *)
  check Alcotest.bool "crossing traffic costs time" true
    (split.Cosim.end_time > colocated.Cosim.end_time)

let test_hw_stmt_cycles_sane () =
  let _, fir, _ = List.find (fun (n, _, _) -> n = "fir") Kernels.all in
  let c = Cosim.hw_stmt_cycles fir in
  check Alcotest.bool "positive and small" true (c >= 1 && c < 100)

(* ------------------------------------------------------------------ *)
(* Coproc                                                              *)
(* ------------------------------------------------------------------ *)

let test_coproc_synthesize_basic () =
  let net = Apps.fork_join ~workers:3 ~items:6 ~work:16 () in
  let d = Coproc.synthesize ~threads:2 net in
  check Alcotest.int "threads" 2 d.Coproc.threads;
  check Alcotest.int "all workers placed" 3
    (List.length d.Coproc.assignment);
  check Alcotest.bool "latency measured" true (d.Coproc.latency > 0);
  check Alcotest.bool "area accumulated" true (d.Coproc.hw_area > 0);
  List.iter
    (fun (_, e) -> check Alcotest.bool "thread in range" true (e >= 0 && e < 2))
    d.Coproc.assignment

let test_coproc_more_threads_not_slower () =
  let net = Apps.fork_join ~workers:3 ~items:6 ~work:24 () in
  let ds = Coproc.sweep_threads ~max_threads:3 net in
  let lat = List.map (fun d -> d.Coproc.latency) ds in
  (match (lat, List.rev lat) with
  | l1 :: _, l3 :: _ ->
      check Alcotest.bool
        (Printf.sprintf "3 threads (%d) beat 1 (%d)" l3 l1)
        true (l3 < l1)
  | _ -> fail "sweep");
  (* same checksum at every thread count *)
  let sums = List.map (fun d -> d.Coproc.checksum) ds in
  check Alcotest.bool "functional invariance" true
    (List.for_all (fun s -> s = List.hd sums) sums)

let test_coproc_comm_aware_helps_pipeline () =
  (* a chatty 3-stage hw pipeline with 2 threads: comm-aware placement
     colocates adjacent stages *)
  let net = Apps.pipeline ~stages:3 ~count:8 ~work:4 () in
  let net =
    Pn.remap net
      [ ("stage0", Pn.Hw); ("stage1", Pn.Hw); ("stage2", Pn.Hw) ]
  in
  let aware = Coproc.synthesize ~threads:2 ~comm_aware:true ~cross_cost:300 net in
  let blind =
    Coproc.synthesize ~threads:2 ~comm_aware:false ~cross_cost:300 net
  in
  check Alcotest.bool
    (Printf.sprintf "comm-aware (%d xing) <= blind (%d xing) crossings"
       aware.Coproc.crossing_channels blind.Coproc.crossing_channels)
    true
    (aware.Coproc.crossing_channels <= blind.Coproc.crossing_channels);
  check Alcotest.bool "comm-aware not slower" true
    (aware.Coproc.latency <= blind.Coproc.latency)

let test_coproc_validation () =
  let all_sw = Apps.pipeline () in
  (try
     ignore (Coproc.synthesize all_sw);
     fail "no hw procs"
   with Invalid_argument _ -> ());
  let net = Apps.fork_join () in
  try
    ignore (Coproc.synthesize ~threads:0 net);
    fail "threads 0"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_flows"
    [
      ( "asip",
        [
          Alcotest.test_case "patterns distinct" `Quick
            test_asip_patterns_distinct;
          Alcotest.test_case "occurrences in fir" `Quick
            test_asip_occurrences_fir;
          Alcotest.test_case "rewrite preserves semantics" `Quick
            test_asip_rewrite_preserves_semantics;
          Alcotest.test_case "design fir" `Quick test_asip_design_fir;
          Alcotest.test_case "all kernels verified" `Quick
            test_asip_design_all_kernels_verified;
          Alcotest.test_case "zero budget" `Quick
            test_asip_budget_zero_selects_nothing;
          Alcotest.test_case "budget monotone" `Quick
            test_asip_budget_monotone;
          Alcotest.test_case "knapsack budget" `Quick
            test_asip_knapsack_respects_budget;
          Alcotest.test_case "reconfig" `Quick test_asip_reconfig;
          Alcotest.test_case "reconfig cost flips winner" `Quick
            test_asip_reconfig_cost_flips_winner;
        ] );
      ( "cosim_ladder",
        [
          Alcotest.test_case "functional equivalence" `Quick
            test_cosim_functional_equivalence;
          Alcotest.test_case "event cost decreases" `Quick
            test_cosim_event_cost_decreases;
          Alcotest.test_case "timing error grows" `Quick
            test_cosim_timing_error_grows;
          Alcotest.test_case "bus ops visible" `Quick
            test_cosim_bus_ops_visible;
        ] );
      ( "network",
        [
          Alcotest.test_case "all software" `Quick test_network_all_sw;
          Alcotest.test_case "hw stage matches sw" `Quick
            test_network_hw_stage_matches_sw;
          Alcotest.test_case "engine serialisation" `Quick
            test_network_engine_serialisation;
          Alcotest.test_case "cross cost charged" `Quick
            test_network_cross_cost_charged;
          Alcotest.test_case "hw stmt cycles" `Quick
            test_hw_stmt_cycles_sane;
        ] );
      ( "coproc",
        [
          Alcotest.test_case "synthesize" `Quick test_coproc_synthesize_basic;
          Alcotest.test_case "threads scale" `Quick
            test_coproc_more_threads_not_slower;
          Alcotest.test_case "comm-aware placement" `Quick
            test_coproc_comm_aware_helps_pipeline;
          Alcotest.test_case "validation" `Quick test_coproc_validation;
        ] );
    ]
