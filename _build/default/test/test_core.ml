(* Tests for the codesign core library: taxonomy, cost model,
   partitioning algorithms, multiprocessor co-synthesis, report
   rendering. *)

open Codesign
module T = Codesign_ir.Task_graph
module Tgff = Codesign_workloads.Tgff

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Taxonomy                                                            *)
(* ------------------------------------------------------------------ *)

let sw name host =
  {
    Taxonomy.comp_name = name;
    is_software = true;
    level = Taxonomy.Program;
    executes_on = host;
  }

let hw name level =
  { Taxonomy.comp_name = name; is_software = false; level; executes_on = None }

let test_classify_type1 () =
  (* embedded micro: SW program running on a gate-level netlist (§4.1) *)
  let sys =
    [ sw "app" (Some "mcu"); hw "mcu" Taxonomy.Gate_netlist;
      hw "glue" Taxonomy.Gate_netlist ]
  in
  check Alcotest.string "type I" "Type I"
    (Taxonomy.boundary_name (Taxonomy.classify sys))

let test_classify_type2 () =
  (* co-processor: SW and behavioural HW as peers (§4.5) *)
  let sys =
    [
      { (sw "app" None) with Taxonomy.level = Taxonomy.Behavioral };
      hw "coproc" Taxonomy.Behavioral;
    ]
  in
  check Alcotest.string "type II" "Type II"
    (Taxonomy.boundary_name (Taxonomy.classify sys))

let test_classify_mixed () =
  let sys =
    [
      sw "fw" (Some "mcu");
      { (sw "model" None) with Taxonomy.level = Taxonomy.Behavioral };
      hw "mcu" Taxonomy.Gate_netlist;
      hw "coproc" Taxonomy.Behavioral;
    ]
  in
  check Alcotest.string "mixed" "mixed"
    (Taxonomy.boundary_name (Taxonomy.classify sys))

let test_classify_validation () =
  (try
     ignore (Taxonomy.classify []);
     fail "empty"
   with Invalid_argument _ -> ());
  (try
     ignore (Taxonomy.classify [ hw "x" Taxonomy.Register_transfer ]);
     fail "no sw"
   with Invalid_argument _ -> ());
  try
    ignore (Taxonomy.classify [ sw "x" None ]);
    fail "no hw"
  with Invalid_argument _ -> ()

let test_catalogue_matches_paper () =
  let cat = Taxonomy.catalogue in
  check Alcotest.bool ">= 12 methodologies" true (List.length cat >= 12);
  (* §4.1-4.4 families are Type I; §4.5-4.6 Type II *)
  List.iter
    (fun (m : Taxonomy.methodology) ->
      let expect_t2 =
        m.Taxonomy.system_class = "application-specific co-processor"
        || m.Taxonomy.system_class = "multi-threaded co-processor"
      in
      if expect_t2 then
        check Alcotest.string (m.Taxonomy.m_name ^ " type") "Type II"
          (Taxonomy.boundary_name m.Taxonomy.m_boundary)
      else
        check Alcotest.string (m.Taxonomy.m_name ^ " type") "Type I"
          (Taxonomy.boundary_name m.Taxonomy.m_boundary))
    cat;
  (* Fig 2 containment: partitioning implies co-synthesis *)
  List.iter
    (fun (m : Taxonomy.methodology) ->
      if List.mem Taxonomy.Hw_sw_partitioning m.Taxonomy.activities then
        check Alcotest.bool
          (m.Taxonomy.m_name ^ " partitioning within cosynthesis") true
          (List.mem Taxonomy.Co_synthesis m.Taxonomy.activities))
    cat;
  (* criteria render four rows (the §5 checklist) *)
  List.iter
    (fun m ->
      check Alcotest.int "4 criteria" 4
        (List.length (Taxonomy.criteria m)))
    cat

let test_chinook_no_partitioning () =
  (* the paper: "Chinook ... does no partitioning" *)
  let chinook =
    List.find
      (fun (m : Taxonomy.methodology) ->
        m.Taxonomy.m_name = "interface co-synthesis (Chinook)")
      Taxonomy.catalogue
  in
  check Alcotest.bool "no partitioning" false
    (List.mem Taxonomy.Hw_sw_partitioning chinook.Taxonomy.activities);
  check Alcotest.bool "has cosynthesis" true
    (List.mem Taxonomy.Co_synthesis chinook.Taxonomy.activities)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let mk id sw hw area =
  T.task ~id ~name:(Printf.sprintf "t%d" id) ~sw_cycles:sw ~hw_cycles:hw
    ~hw_area:area ~parallelism:1.0 ()

let chain () =
  T.make ~name:"chain" ~deadline:70
    [ mk 0 40 5 100; mk 1 30 4 80; mk 2 50 6 120 ]
    [ { T.src = 0; dst = 1; words = 2 }; { T.src = 1; dst = 2; words = 2 } ]

let test_cost_all_sw () =
  let g = chain () in
  let e = Cost.evaluate g (Cost.all_sw g) in
  check Alcotest.int "latency = serial sum" 120 e.Cost.latency;
  check Alcotest.int "no hw area" 0 e.Cost.hw_area;
  check Alcotest.int "no comm" 0 e.Cost.comm_words;
  check Alcotest.bool "misses deadline" false e.Cost.meets_deadline;
  check (Alcotest.float 0.01) "speedup 1" 1.0 e.Cost.speedup

let test_cost_all_hw () =
  let g = chain () in
  let e = Cost.evaluate g (Cost.all_hw g) in
  check Alcotest.bool "fast" true (e.Cost.latency < 30);
  check Alcotest.bool "area > 0" true (e.Cost.hw_area > 0);
  check Alcotest.bool "meets deadline" true e.Cost.meets_deadline;
  check Alcotest.bool "speedup" true (e.Cost.speedup > 3.0)

let test_cost_comm_charged () =
  let g = chain () in
  let p = [| false; true; false |] in
  let params = { Cost.default_params with Cost.comm_cycles_per_word = 50 } in
  let cheap =
    Cost.evaluate ~params:{ params with Cost.comm_cycles_per_word = 0 } g p
  in
  let dear = Cost.evaluate ~params g p in
  check Alcotest.int "comm words" 4 dear.Cost.comm_words;
  check Alcotest.bool "communication slows the schedule" true
    (dear.Cost.latency > cheap.Cost.latency)

let test_cost_sharing_reduces_area () =
  (* two tasks with identical op mixes share everything but overhead *)
  let t0 =
    T.task ~id:0 ~name:"a" ~sw_cycles:100 ~hw_cycles:10 ~hw_area:0
      ~ops:[ ("mul", 4) ] ()
  in
  let t1 =
    T.task ~id:1 ~name:"b" ~sw_cycles:100 ~hw_cycles:10 ~hw_area:0
      ~ops:[ ("mul", 4) ] ()
  in
  let g = T.make [ t0; t1 ] [] in
  let p = [| true; true |] in
  let shared = Cost.area_of_partition g p in
  let unshared =
    Cost.area_of_partition
      ~params:{ Cost.default_params with Cost.sharing = false }
      g p
  in
  check Alcotest.bool "sharing cheaper" true (shared < unshared)

let test_cost_hw_serialisation () =
  (* two independent HW tasks: parallel engine vs single accelerator *)
  let g =
    T.make [ mk 0 100 20 10; mk 1 100 20 10 ] []
  in
  let p = [| true; true |] in
  let par = Cost.evaluate g p in
  let ser =
    Cost.evaluate
      ~params:{ Cost.default_params with Cost.hw_parallel = false }
      g p
  in
  check Alcotest.int "parallel" 20 par.Cost.latency;
  check Alcotest.int "serial" 40 ser.Cost.latency

let test_cost_parallelism_scaling () =
  let serial_task =
    T.task ~id:0 ~name:"s" ~sw_cycles:100 ~hw_cycles:10 ~hw_area:10
      ~parallelism:0.0 ()
  in
  let par_task = { serial_task with T.parallelism = 1.0 } in
  let p = Cost.default_params in
  check Alcotest.bool "serial task gains less in hw" true
    (Cost.hw_task_cycles p serial_task > Cost.hw_task_cycles p par_task)

let test_cost_modifiability () =
  let t0 =
    T.task ~id:0 ~name:"m" ~sw_cycles:10 ~hw_cycles:2 ~hw_area:10
      ~modifiable:true ()
  in
  let g = T.make [ t0 ] [] in
  let e = Cost.evaluate g [| true |] in
  check Alcotest.int "flagged" 1 e.Cost.modifiable_in_hw;
  let obj_hw = Cost.objective g e in
  let obj_sw = Cost.objective g (Cost.evaluate g [| false |]) in
  check Alcotest.bool "objective punishes modifiable-in-hw" true
    (obj_hw > obj_sw)

let test_cost_partition_size_mismatch () =
  let g = chain () in
  try
    ignore (Cost.evaluate g [| true |]);
    fail "size mismatch"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let tight_graph seed =
  Tgff.generate
    { Tgff.default_spec with Tgff.seed; n_tasks = 10; layers = 4 }

let test_partition_greedy_meets_deadline () =
  let g = tight_graph 7 in
  let r = Partition.greedy g in
  check Alcotest.bool "meets deadline" true r.Partition.eval.Cost.meets_deadline;
  check Alcotest.bool "used hw" true (r.Partition.eval.Cost.n_hw > 0);
  check Alcotest.bool "not everything" true
    (r.Partition.eval.Cost.n_hw < T.n_tasks g)

let test_partition_algorithms_beat_all_sw () =
  let g = tight_graph 3 in
  let all_sw_obj = Cost.objective g (Cost.evaluate g (Cost.all_sw g)) in
  List.iter
    (fun (name, r) ->
      check Alcotest.bool (name ^ " improves on all-SW") true
        (r.Partition.objective < all_sw_obj))
    [
      ("greedy", Partition.greedy g);
      ("kl", Partition.kl g);
      ("sa", Partition.simulated_annealing g);
      ("gclp", Partition.gclp g);
    ]

let test_partition_matches_exhaustive_on_small () =
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 5; n_tasks = 8; layers = 3 }
  in
  let opt = Partition.exhaustive g in
  List.iter
    (fun (name, r) ->
      check Alcotest.bool
        (Printf.sprintf "%s within 40%% of optimum (%f vs %f)" name
           r.Partition.objective opt.Partition.objective)
        true
        (r.Partition.objective <= opt.Partition.objective *. 1.4 +. 1e-9))
    [
      ("kl", Partition.kl g);
      ("sa", Partition.simulated_annealing g);
      ("greedy", Partition.greedy g);
      ("gclp", Partition.gclp g);
    ]

let test_partition_budget_respected () =
  let g = tight_graph 11 in
  let budget = 2000 in
  List.iter
    (fun (name, r) ->
      check Alcotest.bool (name ^ " respects budget") true
        (Cost.area_of_partition g r.Partition.partition <= budget))
    [
      ("greedy", Partition.greedy ~max_area:budget g);
      ("kl", Partition.kl ~max_area:budget g);
      ("sa", Partition.simulated_annealing ~max_area:budget g);
      ("gclp", Partition.gclp ~max_area:budget g);
    ]

let test_partition_sa_deterministic () =
  let g = tight_graph 13 in
  let a = Partition.simulated_annealing ~seed:5 g in
  let b = Partition.simulated_annealing ~seed:5 g in
  check Alcotest.bool "same seed same result" true
    (a.Partition.partition = b.Partition.partition)

let test_partition_more_budget_never_worse () =
  let g = tight_graph 17 in
  let small = Partition.greedy ~max_area:1500 g in
  let large = Partition.greedy ~max_area:15000 g in
  check Alcotest.bool "more area helps (or equal)" true
    (large.Partition.eval.Cost.latency <= small.Partition.eval.Cost.latency)

let test_partition_exhaustive_guard () =
  let g = Tgff.generate { Tgff.default_spec with Tgff.n_tasks = 25; layers = 5 } in
  try
    ignore (Partition.exhaustive g);
    fail "expected size guard"
  with Invalid_argument _ -> ()

let test_partition_evaluations_counted () =
  let g = tight_graph 19 in
  let r = Partition.greedy g in
  check Alcotest.bool "counted evals" true (r.Partition.evaluations > 0)

(* sharing ablation: with sharing-aware estimation, a budgeted partition
   fits at least as many tasks into hardware *)
let test_partition_sharing_ablation () =
  let g =
    Tgff.generate
      { Tgff.default_spec with Tgff.seed = 23; n_tasks = 12; layers = 4 }
  in
  let budget = 2500 in
  let with_sharing = Partition.greedy ~max_area:budget g in
  let without =
    Partition.greedy
      ~params:{ Cost.default_params with Cost.sharing = false }
      ~max_area:budget g
  in
  check Alcotest.bool "sharing admits >= tasks to hw" true
    (with_sharing.Partition.eval.Cost.n_hw
    >= without.Partition.eval.Cost.n_hw)

(* ------------------------------------------------------------------ *)
(* Cosynth                                                             *)
(* ------------------------------------------------------------------ *)

let pe_lib =
  [
    { Cosynth.pt_name = "fast"; price = 100 };
    { Cosynth.pt_name = "mid"; price = 40 };
    { Cosynth.pt_name = "slow"; price = 15 };
  ]

let mp_problem ?(seed = 1) ?(n_tasks = 6) ?(deadline_factor = 1.2) () =
  let g =
    Tgff.generate
      {
        Tgff.default_spec with
        Tgff.seed;
        n_tasks;
        layers = 3;
        deadline_factor;
      }
  in
  let exec =
    Array.map
      (fun (t : T.task) ->
        [| max 1 (t.T.sw_cycles / 4); max 1 (t.T.sw_cycles / 2);
           t.T.sw_cycles |])
      g.T.tasks
  in
  Cosynth.problem g pe_lib ~exec

let test_cosynth_problem_validation () =
  let g = Tgff.generate { Tgff.default_spec with Tgff.n_tasks = 3; layers = 2 } in
  (try
     ignore (Cosynth.problem g [] ~exec:[||]);
     fail "empty library"
   with Invalid_argument _ -> ());
  try
    ignore (Cosynth.problem g pe_lib ~exec:(Array.make 2 [| 1; 1; 1 |]));
    fail "bad dims"
  with Invalid_argument _ -> ()

let test_cosynth_sos_feasible_and_optimal_shape () =
  let pb = mp_problem () in
  let s = Cosynth.sos pb in
  check Alcotest.bool "feasible" true s.Cosynth.feasible;
  check Alcotest.bool "uses >= 1 pe" true (List.length s.Cosynth.pe_set >= 1);
  (* optimality: no single-PE configuration can beat it if it used > 1 *)
  check Alcotest.bool "nodes explored" true (s.Cosynth.nodes > 0)

let test_cosynth_heuristics_feasible () =
  for seed = 1 to 5 do
    let pb = mp_problem ~seed () in
    let bp = Cosynth.binpack pb in
    let sv = Cosynth.sensitivity pb in
    check Alcotest.bool
      (Printf.sprintf "binpack feasible (seed %d)" seed)
      true bp.Cosynth.feasible;
    check Alcotest.bool
      (Printf.sprintf "sensitivity feasible (seed %d)" seed)
      true sv.Cosynth.feasible
  done

let test_cosynth_exact_not_beaten () =
  (* SOS is exact: heuristics never find a cheaper feasible solution *)
  for seed = 1 to 6 do
    let pb = mp_problem ~seed ~n_tasks:5 () in
    let opt = Cosynth.sos pb in
    let bp = Cosynth.binpack pb in
    let sv = Cosynth.sensitivity pb in
    if opt.Cosynth.feasible then begin
      if bp.Cosynth.feasible then
        check Alcotest.bool
          (Printf.sprintf "binpack >= optimal price (seed %d)" seed)
          true
          (bp.Cosynth.price >= opt.Cosynth.price);
      if sv.Cosynth.feasible then
        check Alcotest.bool
          (Printf.sprintf "sensitivity >= optimal price (seed %d)" seed)
          true
          (sv.Cosynth.price >= opt.Cosynth.price)
    end
  done

let test_cosynth_makespan_consistency () =
  let pb = mp_problem () in
  let s = Cosynth.sos pb in
  let recomputed =
    Cosynth.makespan pb ~pe_set:s.Cosynth.pe_set ~mapping:s.Cosynth.mapping
  in
  check Alcotest.int "reported = recomputed" s.Cosynth.makespan recomputed;
  check Alcotest.int "price = recomputed"
    (Cosynth.price_of pb s.Cosynth.pe_set)
    s.Cosynth.price

let test_cosynth_loose_deadline_is_cheap () =
  (* with a very loose deadline one slow PE suffices *)
  let pb = mp_problem ~deadline_factor:20.0 () in
  let s = Cosynth.sos pb in
  check Alcotest.int "single cheapest PE" 15 s.Cosynth.price

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_table () =
  let t =
    Report.table ~title:"demo" ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  check Alcotest.bool "has title" true (String.length t > 0 && t.[0] = 'd');
  (* all data lines same width *)
  let lines =
    String.split_on_char '\n' t |> List.filter (fun l -> l <> "")
  in
  let widths = List.map String.length (List.tl lines) in
  check Alcotest.bool "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_formats () =
  check Alcotest.string "fi" "1_234_567" (Report.fi 1234567);
  check Alcotest.string "fi negative" "-1_000" (Report.fi (-1000));
  check Alcotest.string "fi small" "999" (Report.fi 999);
  check Alcotest.string "ff" "3.14" (Report.ff 3.14159);
  check Alcotest.string "fp" "12.5%" (Report.fp 0.125)

let test_report_pads_rows () =
  let t = Report.table ~headers:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  check Alcotest.bool "renders" true (String.length t > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "codesign_core"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "classify type I" `Quick test_classify_type1;
          Alcotest.test_case "classify type II" `Quick test_classify_type2;
          Alcotest.test_case "classify mixed" `Quick test_classify_mixed;
          Alcotest.test_case "validation" `Quick test_classify_validation;
          Alcotest.test_case "catalogue matches paper" `Quick
            test_catalogue_matches_paper;
          Alcotest.test_case "chinook has no partitioning" `Quick
            test_chinook_no_partitioning;
        ] );
      ( "cost",
        [
          Alcotest.test_case "all software" `Quick test_cost_all_sw;
          Alcotest.test_case "all hardware" `Quick test_cost_all_hw;
          Alcotest.test_case "communication charged" `Quick
            test_cost_comm_charged;
          Alcotest.test_case "sharing reduces area" `Quick
            test_cost_sharing_reduces_area;
          Alcotest.test_case "hw serialisation" `Quick
            test_cost_hw_serialisation;
          Alcotest.test_case "parallelism scaling" `Quick
            test_cost_parallelism_scaling;
          Alcotest.test_case "modifiability factor" `Quick
            test_cost_modifiability;
          Alcotest.test_case "size mismatch" `Quick
            test_cost_partition_size_mismatch;
        ] );
      ( "partition",
        [
          Alcotest.test_case "greedy meets deadline" `Quick
            test_partition_greedy_meets_deadline;
          Alcotest.test_case "all beat all-SW" `Quick
            test_partition_algorithms_beat_all_sw;
          Alcotest.test_case "near-optimal on small graphs" `Quick
            test_partition_matches_exhaustive_on_small;
          Alcotest.test_case "budget respected" `Quick
            test_partition_budget_respected;
          Alcotest.test_case "sa deterministic" `Quick
            test_partition_sa_deterministic;
          Alcotest.test_case "monotone in budget" `Quick
            test_partition_more_budget_never_worse;
          Alcotest.test_case "exhaustive guard" `Quick
            test_partition_exhaustive_guard;
          Alcotest.test_case "evaluations counted" `Quick
            test_partition_evaluations_counted;
          Alcotest.test_case "sharing ablation" `Quick
            test_partition_sharing_ablation;
        ] );
      ( "cosynth",
        [
          Alcotest.test_case "problem validation" `Quick
            test_cosynth_problem_validation;
          Alcotest.test_case "sos feasible" `Quick
            test_cosynth_sos_feasible_and_optimal_shape;
          Alcotest.test_case "heuristics feasible" `Quick
            test_cosynth_heuristics_feasible;
          Alcotest.test_case "exact never beaten" `Quick
            test_cosynth_exact_not_beaten;
          Alcotest.test_case "makespan consistency" `Quick
            test_cosynth_makespan_consistency;
          Alcotest.test_case "loose deadline cheap" `Quick
            test_cosynth_loose_deadline_is_cheap;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "formats" `Quick test_report_formats;
          Alcotest.test_case "pads rows" `Quick test_report_pads_rows;
        ] );
    ]
