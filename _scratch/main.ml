let () =
  (match Codesign_obs.Json.parse {|"\uZZZZ"|} with
   | Ok _ -> print_endline "ok"
   | Error e -> print_endline ("error: " ^ e)
   | exception e -> print_endline ("EXN: " ^ Printexc.to_string e));
  (match Codesign_obs.Json.parse {|"😀"|} with
   | Ok (Str s) -> Printf.printf "surrogate ok, %d bytes\n" (String.length s)
   | _ -> print_endline "surrogate other"
   | exception e -> print_endline ("EXN2: " ^ Printexc.to_string e))
