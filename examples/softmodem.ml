(* The closed co-design loop on a soft-modem-like stream application:

     1. specify the system as a process network (producer, three
        processing stages of very different weights, consumer);
     2. MEASURE each stage's software cost on the ISS and ESTIMATE its
        hardware cost with HLS;
     3. let the partitioner decide which stages become co-processor
        threads, under an area budget;
     4. VALIDATE the decision by co-simulating the network before and
        after — same checksum, measured speedup.

   This is the §3.2 promise of co-synthesis ("reconfigure the hardware
   and software to find the best overall organization as the design
   evolves") executed end to end, with the model-predicted choice
   checked against simulation rather than trusted.

     dune exec examples/softmodem.exe                                   *)

open Codesign
module B = Codesign_ir.Behavior
module T = Codesign_ir.Task_graph
module Pn = Codesign_ir.Process_network
module Apps = Codesign_workloads.Apps

let items = 12

(* three stages with very different computational weights *)
let stage_specs =
  [ ("equalise", 40); ("demodulate", 12); ("descramble", 3) ]

let net =
  let chan k = Printf.sprintf "c%d" k in
  let procs =
    (Apps.producer ~chan:(chan 0) ~count:items (), Pn.Sw)
    :: List.mapi
         (fun i (name, work) ->
           ( Apps.transform ~name ~in_chan:(chan i) ~out_chan:(chan (i + 1))
               ~count:items ~work (),
             Pn.Sw ))
         stage_specs
    @ [
        ( Apps.consumer
            ~chan:(chan (List.length stage_specs))
            ~count:items ~port:1 (),
          Pn.Sw );
      ]
  in
  let channels =
    List.init
      (List.length stage_specs + 1)
      (fun k ->
        {
          Pn.cname = chan k;
          src =
            (if k = 0 then "producer" else fst (List.nth stage_specs (k - 1)));
          dst =
            (if k = List.length stage_specs then "consumer"
             else fst (List.nth stage_specs k));
          depth = 2;
          latency = 0;
        })
  in
  Pn.make ~name:"softmodem" procs channels

let chan_ports =
  List.mapi
    (fun i (c : Pn.channel) -> (c.Pn.cname, 100 + i))
    net.Pn.channels

let () =
  (* 2. measure software costs, estimate hardware costs *)
  Printf.printf "Stage characterisation (SW measured on the ISS, HW \
                 estimated by HLS):\n";
  let tasks =
    List.mapi
      (fun i (name, _) ->
        let proc, _ = Pn.find_proc net name in
        let prof = Hotspot.analyze ~chan_ports proc [] in
        let est = Codesign_hls.Hls.estimate proc in
        Printf.printf "  %-12s sw %6d cycles   hw ~%4d cycles / %4d area\n"
          name prof.Hotspot.total_cycles est.Codesign_hls.Hls.cycles
          est.Codesign_hls.Hls.area;
        T.task ~id:i ~name ~sw_cycles:prof.Hotspot.total_cycles
          ~hw_cycles:est.Codesign_hls.Hls.cycles
          ~hw_area:est.Codesign_hls.Hls.area
          ~ops:(Hotspot.consistent_mix est) ())
      stage_specs
  in
  let g =
    T.make ~name:"softmodem"
      tasks
      (List.init
         (List.length tasks - 1)
         (fun i -> { T.src = i; dst = i + 1; words = items }))
  in

  (* 3. partition under a budget that cannot fit everything *)
  let budget = 800 in
  let r = Partition.kl ~max_area:budget g in
  let chosen =
    List.filteri (fun i _ -> r.Partition.partition.(i)) stage_specs
    |> List.map fst
  in
  Printf.printf
    "\nPartitioner (kl, area budget %d): move [%s] to the co-processor\n\
    \  model predicts %.2fx at %d shared area (identical stages share \
     functional units -- the Vahid-Gajski effect; realised as separate \
     threads they cost more)\n"
    budget
    (String.concat ", " chosen)
    r.Partition.eval.Cost.speedup r.Partition.eval.Cost.hw_area;

  (* 4. validate by co-simulation *)
  let sw_run = Cosim.run_network net in
  let hw_net = Pn.remap net (List.map (fun n -> (n, Pn.Hw)) chosen) in
  let hw_run = Cosim.run_network hw_net in
  let out run =
    match run.Cosim.port_writes with (_, _, v) :: _ -> v | [] -> 0
  in
  Printf.printf "\nCo-simulation:\n";
  Printf.printf "  all software:        %6d cycles, checksum %d\n"
    sw_run.Cosim.end_time (out sw_run);
  Printf.printf
    "  chosen partition:    %6d cycles, checksum %d  (measured %.2fx, hw \
     area %d)\n"
    hw_run.Cosim.end_time (out hw_run)
    (float_of_int sw_run.Cosim.end_time /. float_of_int hw_run.Cosim.end_time)
    hw_run.Cosim.hw_area;
  if out sw_run <> out hw_run then print_endline "  ** FUNCTIONAL MISMATCH **"
  else print_endline "  functional equivalence: VERIFIED";

  (* for comparison: what if we had moved the lightest stage instead? *)
  let wrong =
    Cosim.run_network (Pn.remap net [ ("descramble", Pn.Hw) ])
  in
  Printf.printf
    "  (moving only the lightest stage instead: %d cycles — the \
     partitioner's choice matters)\n"
    wrong.Cosim.end_time
